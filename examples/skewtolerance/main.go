// Skew tolerance: MPI ranks with random process skew broadcast repeatedly;
// with the host-based binomial broadcast a delayed intermediate rank stalls
// its whole subtree, while the NIC-based multicast forwards from the NIC
// even though the delayed host has not called MPI_Bcast yet.
//
//	go run ./examples/skewtolerance
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	ranks    = 16
	rounds   = 50
	msgBytes = 8
	avgSkew  = 300.0 // µs
)

func main() {
	fmt.Printf("%d MPI ranks, %d broadcasts of %d bytes, ~%.0fµs average process skew\n\n",
		ranks, rounds, msgBytes, avgSkew)

	hb := run(false)
	nb := run(true)

	fmt.Printf("avg host CPU time inside MPI_Bcast:\n")
	fmt.Printf("  host-based: %8.2fµs per call\n", hb)
	fmt.Printf("  NIC-based:  %8.2fµs per call\n", nb)
	fmt.Printf("  improvement factor: %.2fx (the paper reports up to 5.82x at 400µs skew)\n", hb/nb)
}

func run(useNB bool) float64 {
	w := mpi.NewWorld(cluster.New(ranks), useNB)
	// Identical per-rank skew streams for both protocols.
	rngs := make([]*sim.RNG, ranks)
	for i := range rngs {
		rngs[i] = sim.NewRNG(int64(1000 + i))
	}
	maxSkew := sim.Micros(4 * avgSkew) // E|U(-M/2,M/2)| = M/4

	var cpu sim.Time
	samples := 0
	w.Run(func(r *mpi.Rank) {
		buf := make([]byte, msgBytes)
		for i := 0; i < rounds; i++ {
			r.Barrier()
			if r.ID() != 0 {
				if s := rngs[r.ID()].SymmetricDuration(maxSkew); s > 0 {
					r.Proc().Compute(s) // "computation" before joining the bcast
				}
			}
			t0 := r.Now()
			r.Bcast(0, buf)
			cpu += r.Now() - t0
			samples++
		}
	})
	return cpu.Micros() / float64(samples)
}
