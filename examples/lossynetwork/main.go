// Lossy network: the NIC-based multicast is reliable end to end. This
// example injects per-link packet loss, streams multicasts through a
// 12-node tree, verifies every byte at every member, and reports how much
// work the per-child retransmission machinery did.
//
//	go run ./examples/lossynetwork
package main

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const (
	nodes    = 12
	port     = gm.PortID(1)
	group    = gm.GroupID(7)
	messages = 25
	lossRate = 0.03 // 3% per link — far beyond any real bit-error rate
)

func main() {
	cfg := cluster.DefaultConfig(nodes)
	cfg.LossRate = lossRate
	cfg.Seed = 2026
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(port)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(group, tr, port, port)

	fmt.Printf("%d-node binomial multicast tree, %.0f%% packet loss per link\n",
		nodes, lossRate*100)

	var sent [][]byte
	for i := 0; i < messages; i++ {
		msg := make([]byte, 200+i*613) // mixed single- and multi-packet sizes
		for j := range msg {
			msg[j] = byte(i*31 + j)
		}
		sent = append(sent, msg)
	}

	corrupted, delivered := 0, 0
	for n := 1; n < nodes; n++ {
		n := n
		c.Eng.Spawn("member", func(p *sim.Proc) {
			ports[n].ProvideN(messages, 1<<15)
			for i := 0; i < messages; i++ {
				ev := ports[n].Recv(p)
				delivered++
				if !bytes.Equal(ev.Data, sent[i]) {
					corrupted++
				}
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		for _, msg := range sent {
			c.Nodes[0].Ext.Mcast(p, ports[0], group, msg)
		}
		for range sent {
			ports[0].WaitSendDone(p)
		}
	})
	c.Eng.Run()
	c.Eng.Kill()

	st := c.Net.Stats()
	var retrans, dups uint64
	for _, n := range c.Nodes {
		retrans += n.Ext.Stats().Retransmits
		dups += n.Ext.Stats().Duplicates
	}
	fmt.Printf("fabric: %d packets injected, %d delivered, %d lost\n",
		st.Injected, st.Delivered, st.Dropped)
	fmt.Printf("recovery: %d per-child retransmissions, %d duplicates suppressed\n", retrans, dups)
	fmt.Printf("delivered %d/%d messages, %d corrupted\n",
		delivered, messages*(nodes-1), corrupted)
	if corrupted == 0 && delivered == messages*(nodes-1) {
		fmt.Println("every member received every message intact, in order")
	}
}
