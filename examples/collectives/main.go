// Collectives: the paper's future-work section proposes extending the
// NIC-based multicast to other collective operations. This example runs
// Allreduce and All-to-all broadcast on top of the NIC-based MPI_Bcast and
// compares against the host-based build.
//
//	go run ./examples/collectives
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const ranks = 12

func main() {
	fmt.Printf("Allreduce + All-to-all broadcast over %d ranks\n\n", ranks)
	for _, useNB := range []bool{false, true} {
		name := "host-based "
		if useNB {
			name = "NIC-based  "
		}
		el, sum := run(useNB)
		fmt.Printf("%s: allreduce sum = %v, wall time %8.2fµs\n", name, sum, el.Micros())
	}
}

func run(useNB bool) (sim.Time, float64) {
	w := mpi.NewWorld(cluster.New(ranks), useNB)
	var out float64
	var end sim.Time
	w.Run(func(r *mpi.Rank) {
		// Warm every root's group context: group creation is demand-driven
		// ("the first broadcast operation for any group will pay the cost
		// of creating group membership"), so steady-state timing excludes
		// that one-time setup, as in the paper's warm-up iterations.
		r.Barrier()
		r.Bcast(0, make([]byte, 8))   // Allreduce's broadcast leg
		r.AlltoallBcast([]byte{0, 0}) // same size class as the timed round
		r.Barrier()

		t0 := r.Now()
		sum := r.Allreduce(float64(r.ID()+1), func(a, b float64) float64 { return a + b })

		mine := []byte{byte(r.ID()), 0xEE}
		all := r.AlltoallBcast(mine)
		r.Barrier()
		if r.ID() == 0 {
			out = sum
			end = r.Now() - t0
			for i, buf := range all {
				if int(buf[0]) != i {
					panic("alltoall corrupted")
				}
			}
		}
	})
	return end, out
}
