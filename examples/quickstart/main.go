// Quickstart: build a simulated 8-node Myrinet/GM-2 cluster, prepost a
// multicast group, and broadcast one message with the NIC-based multicast —
// then do the same with host-based forwarding and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const (
	nodes = 8
	port  = gm.PortID(1)
	group = gm.GroupID(42)
)

func main() {
	fmt.Println("NIC-based multicast over simulated Myrinet/GM-2")
	fmt.Printf("cluster: %d nodes, one 16-port crossbar, LANai-9.1-class NICs\n\n", nodes)

	message := []byte("hello from the root NIC — forwarded without host involvement")

	nb := nicBased(message)
	hb := hostBased(message)

	fmt.Printf("\nlast delivery: NIC-based %.2fµs, host-based %.2fµs  (improvement %.2fx)\n",
		nb.Micros(), hb.Micros(), float64(hb)/float64(nb))
}

// nicBased broadcasts via the NIC-based multicast over the optimal tree.
func nicBased(message []byte) sim.Time {
	cfg := cluster.DefaultConfig(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(port)

	// The host builds the size-specific optimal spanning tree and preposts
	// it into every NIC's group table.
	tr := cfg.OptimalTree(0, c.Members(), len(message))
	c.InstallGroup(group, tr, port, port)
	fmt.Printf("optimal tree (depth %d, max fanout %d):\n%s\n", tr.Depth(), tr.MaxFanout(), tr)

	var last sim.Time
	for n := 1; n < nodes; n++ {
		n := n
		c.Eng.Spawn("receiver", func(p *sim.Proc) {
			ports[n].Provide(len(message)) // receive token
			ev := ports[n].Recv(p)
			fmt.Printf("  node %d received %q at t=%v\n", n, ev.Data, p.Now())
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		// One multisend request: the NIC replicates and the tree forwards.
		c.Nodes[0].Ext.McastSync(p, ports[0], group, message)
		fmt.Printf("  root: all children acknowledged at t=%v\n", p.Now())
	})
	c.Eng.Run()
	c.Eng.Kill()
	return last
}

// hostBased broadcasts the traditional way: unicasts along a binomial
// tree, with every intermediate host receiving and re-sending.
func hostBased(message []byte) sim.Time {
	c := cluster.New(nodes)
	ports := c.OpenPorts(port)
	tr := tree.Binomial(0, c.Members())

	var last sim.Time
	forward := func(p *sim.Proc, n fabric.NodeID, data []byte) {
		for _, child := range tr.Children(n) {
			ports[n].Send(p, child, port, data)
		}
	}
	for n := 1; n < nodes; n++ {
		n := fabric.NodeID(n)
		c.Eng.Spawn("node", func(p *sim.Proc) {
			ports[n].Provide(len(message))
			ev := ports[n].Recv(p)
			forward(p, n, ev.Data) // host-based forwarding
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		forward(p, 0, message)
	})
	c.Eng.Run()
	c.Eng.Kill()
	return last
}
