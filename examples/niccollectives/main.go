// NIC collectives: the paper's future work proposes expanding NIC-based
// support beyond multicast ("for example, Allreduce and Alltoall
// broadcast"), following the authors' companion NIC-barrier and
// NIC-reduction studies. This example runs the NIC-level barrier and the
// NIC-based reduction/allreduce, comparing each against its host-level
// counterpart on the same simulated cluster.
//
//	go run ./examples/niccollectives
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const (
	nodes             = 16
	rounds            = 40
	port    gm.PortID = 1
	groupID           = gm.GroupID(3)
)

func main() {
	fmt.Printf("NIC-level collectives on %d nodes, %d iterations each\n\n", nodes, rounds)

	nicBar := nicBarrier()
	hostBar := hostBarrier()
	fmt.Printf("barrier:   NIC %7.2fµs   host dissemination %7.2fµs   (%.2fx)\n",
		nicBar, hostBar, hostBar/nicBar)

	nicRed, sum := nicAllreduce()
	fmt.Printf("allreduce: NIC %7.2fµs   (sum of ranks = %d, combined by the LANai processors)\n",
		nicRed, sum)
}

func nicBarrier() float64 {
	c := cluster.New(nodes)
	ports := c.OpenPorts(port)
	for _, n := range c.Nodes {
		n.Ext.InstallBarrier(groupID, c.Members(), port, nil)
	}
	var total sim.Time
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				c.Nodes[i].Ext.Barrier(p, ports[i], groupID)
			}
			if i == 0 {
				total = p.Now()
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	return total.Micros() / rounds
}

func hostBarrier() float64 {
	c := cluster.New(nodes)
	ports := c.OpenPorts(port)
	var total sim.Time
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			steps := 0
			for k := 1; k < nodes; k <<= 1 {
				steps++
			}
			ports[i].ProvideN(rounds*steps, 16)
			for r := 0; r < rounds; r++ {
				for k := 1; k < nodes; k <<= 1 {
					ports[i].Send(p, fabric.NodeID((i+k)%nodes), port, []byte{1})
					ports[i].Recv(p)
				}
			}
			if i == 0 {
				total = p.Now()
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	return total.Micros() / rounds
}

func nicAllreduce() (float64, int64) {
	cfg := cluster.DefaultConfig(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(port)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(groupID, tr, port, port)
	c.Eng.Run() // settle the group table

	var total sim.Time
	var sum int64
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			if i != 0 {
				ports[i].ProvideN(rounds, 64)
			}
			var res []int64
			for r := 0; r < rounds; r++ {
				res = c.Nodes[i].Ext.AllreduceNIC(p, ports[i], groupID, []int64{int64(i)}, core.OpSum)
			}
			if i == 0 {
				total = p.Now()
				sum = res[0]
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	return total.Micros() / rounds, sum
}
