// Heat diffusion: a real parallel application on the simulated cluster —
// explicit 1-D heat equation, domain-decomposed across MPI ranks with
// nonblocking halo exchange, a broadcast of the run parameters, and a
// periodic Allreduce for the convergence check. The same program runs on
// stock (host-based) and modified (NIC-based multicast) MPICH-GM; the
// collective-heavy phases are where the NIC-based build pulls ahead.
//
//	go run ./examples/heatdiffusion
package main

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	ranks      = 16
	cellsEach  = 64
	steps      = 200
	checkEvery = 20
	alpha      = 0.1
)

func main() {
	fmt.Printf("1-D heat diffusion: %d ranks x %d cells, %d steps, convergence check every %d\n\n",
		ranks, cellsEach, steps, checkEvery)

	serial := runSerial()
	for _, useNB := range []bool{false, true} {
		name := "host-based broadcast"
		if useNB {
			name = "NIC-based multicast"
		}
		elapsed, result := runParallel(useNB)
		maxErr := 0.0
		for i := range serial {
			if d := math.Abs(serial[i] - result[i]); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("%-22s wall %9.1fµs   max deviation from serial %.2e\n",
			name+":", elapsed.Micros(), maxErr)
	}
}

// initialTemp seeds a hot spike in the middle of the global domain.
func initialTemp(global int) float64 {
	mid := ranks * cellsEach / 2
	if global == mid {
		return 100
	}
	return 0
}

func runSerial() []float64 {
	n := ranks * cellsEach
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = initialTemp(i)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			l, r := 0.0, 0.0
			if i > 0 {
				l = cur[i-1]
			}
			if i < n-1 {
				r = cur[i+1]
			}
			next[i] = cur[i] + alpha*(l-2*cur[i]+r)
		}
		cur, next = next, cur
	}
	return cur
}

func runParallel(useNB bool) (sim.Time, []float64) {
	w := mpi.NewWorld(cluster.New(ranks), useNB)
	final := make([]float64, ranks*cellsEach)
	var elapsed sim.Time
	w.Run(func(r *mpi.Rank) {
		// The root broadcasts the run parameters (as a real app would
		// distribute its configuration).
		params := make([]byte, 16)
		if r.ID() == 0 {
			binary.LittleEndian.PutUint64(params, math.Float64bits(alpha))
			binary.LittleEndian.PutUint64(params[8:], uint64(steps))
		}
		params = r.Bcast(0, params)
		a := math.Float64frombits(binary.LittleEndian.Uint64(params))
		nsteps := int(binary.LittleEndian.Uint64(params[8:]))

		cur := make([]float64, cellsEach+2) // halo cells at [0] and [n+1]
		next := make([]float64, cellsEach+2)
		for i := 0; i < cellsEach; i++ {
			cur[i+1] = initialTemp(r.ID()*cellsEach + i)
		}
		t0 := r.Now()
		for s := 0; s < nsteps; s++ {
			// Nonblocking halo exchange with both neighbors.
			var reqs []*mpi.Request
			if r.ID() > 0 {
				reqs = append(reqs, r.Isend(r.ID()-1, 1, f64bytes(cur[1])))
				reqs = append(reqs, r.Irecv(r.ID()-1, 1))
			}
			if r.ID() < ranks-1 {
				reqs = append(reqs, r.Isend(r.ID()+1, 1, f64bytes(cur[cellsEach])))
				reqs = append(reqs, r.Irecv(r.ID()+1, 1))
			}
			// Complete the exchange; Wait is idempotent, and the receives
			// sit at odd positions of the posting order.
			cur[0], cur[cellsEach+1] = 0, 0
			k := 0
			if r.ID() > 0 {
				reqs[k].Wait()
				cur[0] = bytesF64(reqs[k+1].Wait())
				k += 2
			}
			if r.ID() < ranks-1 {
				reqs[k].Wait()
				cur[cellsEach+1] = bytesF64(reqs[k+1].Wait())
			}
			for i := 1; i <= cellsEach; i++ {
				next[i] = cur[i] + a*(cur[i-1]-2*cur[i]+cur[i+1])
			}
			cur, next = next, cur
			// Periodic global convergence check: total heat is conserved.
			if s%checkEvery == checkEvery-1 {
				local := 0.0
				for i := 1; i <= cellsEach; i++ {
					local += cur[i]
				}
				r.Allreduce(local, func(x, y float64) float64 { return x + y })
			}
		}
		if r.ID() == 0 {
			elapsed = r.Now() - t0
		}
		// Gather the full field at rank 0 for verification.
		mine := make([]byte, 8*cellsEach)
		for i := 0; i < cellsEach; i++ {
			binary.LittleEndian.PutUint64(mine[8*i:], math.Float64bits(cur[i+1]))
		}
		parts := r.Gather(0, mine)
		if r.ID() == 0 {
			for rank, part := range parts {
				for i := 0; i < cellsEach; i++ {
					final[rank*cellsEach+i] = math.Float64frombits(
						binary.LittleEndian.Uint64(part[8*i:]))
				}
			}
		}
	})
	return elapsed, final
}

func f64bytes(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func bytesF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
