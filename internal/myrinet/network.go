package myrinet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Network is an assembled fabric: host interfaces, switches, links, and a
// routing function. Build one with NewSingleSwitch or NewClos.
type Network struct {
	eng    *sim.Engine
	params LinkParams
	hosts  []*Iface
	verts  []*vertex
	links  []*Link

	routeFn    func(src, dst NodeID) []*Link
	routeCache map[[2]NodeID][]*Link

	// transitFree recycles per-packet traversal state so the hot path —
	// one event per link hop plus the final delivery — schedules nothing
	// but a pre-bound callback: no closure, no event, and no traversal
	// state is allocated per hop in steady state.
	transitFree []*transit

	// LossRate is the per-link probability that a packet is corrupted and
	// discarded (models nonzero bit-error rates). Requires SetRNG.
	//
	// Prefer SetLossRate, which validates the rate and the RNG requirement
	// up front; setting the field directly defers the check to the first
	// transmission.
	LossRate float64
	// DropFn, when non-nil, is consulted per link traversal; returning
	// true drops the packet. It is the test hook for targeted loss.
	DropFn func(p *Packet, l *Link) bool
	// DupFn, when non-nil, is consulted once per packet as its final
	// delivery is scheduled; returning true delivers a second copy of the
	// packet one serialization time after the first (a fault-injection
	// hook: real fabrics duplicate under retransmitting switches).
	DupFn func(p *Packet, l *Link) bool
	// DelayFn, when non-nil, reports extra delivery delay for a packet at
	// its destination — the bounded-reordering fault-injection hook. A
	// packet held back long enough for a later one to overtake it arrives
	// out of order without being lost.
	DelayFn func(p *Packet, l *Link) sim.Time

	rng *sim.RNG

	// Cached fabric-wide instruments, set by SetMetrics; nil (no-op)
	// when the registry is disabled.
	mInjected   *metrics.Counter
	mDelivered  *metrics.Counter
	mDropped    *metrics.Counter
	mDuplicated *metrics.Counter
	mLinkBusyNs *metrics.Counter
}

// Iface is a host's attachment to the fabric. The NIC model sets Deliver;
// the fabric calls it when a packet has fully arrived.
type Iface struct {
	net     *Network
	id      NodeID
	up      *Link // host -> first switch
	Deliver func(*Packet)
}

// ID reports the interface's network ID.
func (ifc *Iface) ID() NodeID { return ifc.id }

// Engine returns the simulation engine driving the network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Params returns the fabric's link parameters.
func (n *Network) Params() LinkParams { return n.params }

// Hosts reports the number of host interfaces.
func (n *Network) Hosts() int { return len(n.hosts) }

// Iface returns the interface for a node.
func (n *Network) Iface(id NodeID) *Iface { return n.hosts[id] }

// Stats returns a snapshot of fabric counters.
//
// Deprecated: read the metrics registry wired via SetMetrics instead;
// this shim reports zeros when the registry is disabled.
func (n *Network) Stats() Stats {
	return Stats{
		Injected:  n.mInjected.Value(),
		Delivered: n.mDelivered.Value(),
		Dropped:   n.mDropped.Value(),
	}
}

// SetRNG installs the randomness source used for loss injection.
func (n *Network) SetRNG(rng *sim.RNG) { n.rng = rng }

// SetLossRate enables stochastic per-link loss, validating the probability
// and the RNG requirement up front so misconfiguration fails at wiring time
// rather than mid-simulation on the first transmit.
func (n *Network) SetLossRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("%w: %v", ErrBadLossRate, rate)
	}
	if rate > 0 && n.rng == nil {
		return ErrLossRateWithoutRNG
	}
	n.LossRate = rate
	return nil
}

// Links exposes every directed link of the fabric (fault injection and
// diagnostics; the slice is the network's own — do not mutate).
func (n *Network) Links() []*Link { return n.links }

// Route returns the link path from src to dst, caching computed routes.
// Routes are deterministic for a given topology.
func (n *Network) Route(src, dst NodeID) []*Link {
	key := [2]NodeID{src, dst}
	if r, ok := n.routeCache[key]; ok {
		return r
	}
	r := n.routeFn(src, dst)
	if r == nil {
		panic(fmt.Sprintf("myrinet: no route %v -> %v", src, dst))
	}
	n.routeCache[key] = r
	return r
}

// HopCount reports the number of links on the route between two nodes.
func (n *Network) HopCount(src, dst NodeID) int { return len(n.Route(src, dst)) }

// Inject begins transmitting p from its source interface. The caller is
// the NIC transmit engine; the injection link's FIFO discipline serializes
// concurrent transmissions from one NIC. Delivery (or silent loss) happens
// entirely through scheduled events.
func (ifc *Iface) Inject(p *Packet) {
	n := ifc.net
	if p.Src != ifc.id {
		panic(fmt.Sprintf("myrinet: packet src %v injected at %v", p.Src, ifc.id))
	}
	if p.Size <= 0 {
		panic("myrinet: packet with nonpositive size")
	}
	n.mInjected.Inc()
	tr := n.newTransit()
	tr.p = p
	tr.route = n.Route(p.Src, p.Dst)
	tr.i = 0
	tr.headAt = n.eng.Now()
	tr.delivering = false
	n.eng.At(tr.headAt, tr.step)
}

// transit is the traversal state of one packet in flight: which hop it is
// on and when its head arrives there. Exactly one event is outstanding per
// transit at any instant, so the state advances in place and the same
// pre-bound step callback serves every hop.
type transit struct {
	net        *Network
	p          *Packet
	route      []*Link
	i          int
	headAt     sim.Time
	delivering bool   // final store-and-forward delivery scheduled
	step       func() // run, bound once when the transit is first created
}

// newTransit recycles a traversal record or creates one (binding its step
// callback exactly once).
func (n *Network) newTransit() *transit {
	if k := len(n.transitFree); k > 0 {
		tr := n.transitFree[k-1]
		n.transitFree[k-1] = nil
		n.transitFree = n.transitFree[:k-1]
		return tr
	}
	tr := &transit{net: n}
	tr.step = tr.run
	return tr
}

// release drops the packet references and returns tr to the pool.
func (n *Network) release(tr *transit) {
	tr.p = nil
	tr.route = nil
	n.transitFree = append(n.transitFree, tr)
}

// run advances the packet onto route[i] (virtual cut-through: the head
// proceeds to the next hop after the link's latency while the tail is
// still serializing behind it), or — in the delivering phase — hands the
// fully-arrived packet to the destination NIC.
func (tr *transit) run() {
	n := tr.net
	if tr.delivering {
		// Final hop: the destination NIC needs the whole packet (its
		// receive DMA is store-and-forward), so this fires at tail arrival.
		p := tr.p
		n.release(tr)
		n.mDelivered.Inc()
		n.deliver(p)
		return
	}
	p, l := tr.p, tr.route[tr.i]
	ser := l.params.SerializationTime(p.Size)
	start := l.fac.Reserve(ser)
	if stall := start - tr.headAt; stall > 0 {
		l.mStallNs.AddInt(int64(stall))
		l.mContended.Inc()
	}
	l.mTxBytes.Add(uint64(p.Size))
	n.mLinkBusyNs.AddInt(int64(ser))
	if tr.i == 0 && p.TxDone != nil {
		// The source NIC's transmit engine finishes with the packet
		// buffer when the tail clears the injection link.
		n.eng.At(start+ser, p.TxDone)
	}
	if n.dropped(p, l) {
		l.Drops++
		l.mDrops.Inc()
		n.mDropped.Inc()
		n.release(tr)
		return
	}
	headOut := start + l.params.Latency
	if tr.i+1 < len(tr.route) {
		tr.i++
		tr.headAt = headOut
		n.eng.At(headOut, tr.step)
		return
	}
	tailIn := headOut + ser
	if n.DelayFn != nil {
		if d := n.DelayFn(p, l); d > 0 {
			tailIn += d
		}
	}
	if n.DupFn != nil && n.DupFn(p, l) {
		// A duplicate copy trails the original by one serialization time,
		// as if a retransmitting switch stage emitted the packet twice.
		n.eng.At(tailIn+ser, func() {
			n.mDuplicated.Inc()
			n.mDelivered.Inc()
			n.deliver(p)
		})
	}
	tr.delivering = true
	n.eng.At(tailIn, tr.step)
}

// deliver hands a fully-arrived packet to the destination NIC.
func (n *Network) deliver(p *Packet) {
	dst := n.hosts[p.Dst]
	if dst.Deliver == nil {
		panic(fmt.Sprintf("myrinet: no receiver attached at %v", p.Dst))
	}
	dst.Deliver(p)
}

func (n *Network) dropped(p *Packet, l *Link) bool {
	if n.DropFn != nil && n.DropFn(p, l) {
		return true
	}
	if n.LossRate > 0 {
		if n.rng == nil {
			// Backstop for direct field assignment that bypassed
			// SetLossRate; the panic value satisfies errors.Is.
			panic(ErrLossRateWithoutRNG)
		}
		return n.rng.Bernoulli(n.LossRate)
	}
	return false
}

// newNetwork allocates the shell; topology builders fill it in.
func newNetwork(eng *sim.Engine, params LinkParams) *Network {
	return &Network{
		eng:        eng,
		params:     params,
		routeCache: make(map[[2]NodeID][]*Link),
	}
}

func (n *Network) addVertex(label string) *vertex {
	v := &vertex{idx: len(n.verts), label: label}
	n.verts = append(n.verts, v)
	return v
}

func (n *Network) addHost(id NodeID) *vertex {
	v := n.addVertex(fmt.Sprintf("host%d", id))
	v.host = true
	v.hostID = id
	return v
}

// connect adds a pair of directed links between a and b.
func (n *Network) connect(a, b *vertex) (ab, ba *Link) {
	ab = &Link{from: a, to: b, params: n.params,
		fac: sim.NewFacility(n.eng, fmt.Sprintf("link:%s->%s", a.label, b.label))}
	ba = &Link{from: b, to: a, params: n.params,
		fac: sim.NewFacility(n.eng, fmt.Sprintf("link:%s->%s", b.label, a.label))}
	a.out = append(a.out, ab)
	b.out = append(b.out, ba)
	n.links = append(n.links, ab, ba)
	return ab, ba
}

// bfsRoute computes the deterministic shortest link path between hosts.
func (n *Network) bfsRoute(src, dst NodeID) []*Link {
	from := n.hosts[src].up.from
	goal := n.hosts[dst].up.from
	if from == goal {
		panic("myrinet: route to self")
	}
	prev := make([]*Link, len(n.verts))
	seen := make([]bool, len(n.verts))
	seen[from.idx] = true
	queue := []*vertex{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == goal {
			break
		}
		for _, l := range v.out {
			if !seen[l.to.idx] {
				seen[l.to.idx] = true
				prev[l.to.idx] = l
				queue = append(queue, l.to)
			}
		}
	}
	if !seen[goal.idx] {
		return nil
	}
	var rev []*Link
	for v := goal; v != from; v = prev[v.idx].from {
		rev = append(rev, prev[v.idx])
	}
	route := make([]*Link, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		route = append(route, rev[i])
	}
	return route
}
