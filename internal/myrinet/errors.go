package myrinet

import "errors"

// Sentinel errors for API misuse of the fabric layer. Misconfiguration is
// fatal (the fabric cannot limp along without its randomness source), so
// these surface either as returned errors from the validating setters or
// as panics carrying error values: recover the value and test it with
// errors.Is.
var (
	// ErrLossRateWithoutRNG reports enabling stochastic loss on a fabric
	// that has no randomness source installed (SetRNG).
	ErrLossRateWithoutRNG = errors.New("myrinet: LossRate set without SetRNG")
	// ErrBadLossRate reports a loss probability outside [0, 1].
	ErrBadLossRate = errors.New("myrinet: loss rate outside [0, 1]")
)
