// Package myrinet models a Myrinet-2000-style interconnect: point-to-point
// links into wormhole-routed crossbar switches arranged as a Clos network,
// with source-routed, virtual-cut-through packet transport.
//
// The generic fabric machinery — the graph, the transit engine, the
// partitioner, the fault hooks — lives in package fabric; this package is
// the Myrinet backend: crossbar topologies (single Xbar16, two-level Clos,
// three-level fat tree), 2 Gb/s link timing, and the (src*31+dst)
// dispersive source-routing hash. The type names below are aliases so code
// written against the pre-fabric API keeps compiling; new code should use
// package fabric directly and select this backend with Default().
package myrinet

import (
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Aliases into package fabric, kept so the original myrinet-centric API
// remains source-compatible. They are identical types, not copies.
type (
	NodeID     = fabric.NodeID
	Packet     = fabric.Packet
	Stats      = fabric.Stats
	LinkParams = fabric.LinkParams
	Link       = fabric.Link
	Iface      = fabric.Iface
	Network    = fabric.Network
	Plan       = fabric.Plan
)

// Component is the metrics component name for the fabric layer.
//
// Deprecated: use fabric.Component.
const Component = fabric.Component

// Deprecated: use the fabric package's sentinels; these aliases are the
// same error values, so errors.Is works against either name.
var (
	ErrLossRateWithoutRNG = fabric.ErrLossRateWithoutRNG
	ErrBadLossRate        = fabric.ErrBadLossRate
)

// DefaultLinkParams returns Myrinet-2000-like link characteristics:
// 2 Gb/s (4 ns per byte) and 300 ns of per-hop latency, no PFC (the
// wormhole fabric backpressures in hardware; the simulation's FIFO link
// facilities model that without explicit pause thresholds).
func DefaultLinkParams() LinkParams { return fabric.DefaultLinkParams() }

// DefaultRadix is the crossbar port count of the modeled hardware
// (Myrinet-2000 Xbar16).
const DefaultRadix = 16

// Default returns the fabric.Config preset for this backend: the paper's
// testbed topology ladder (single crossbar to 16 hosts, two-level Clos to
// 128, fat tree beyond) with Myrinet-2000 link timing.
func Default() fabric.Config {
	return fabric.Config{
		Kind:  "myrinet",
		Links: DefaultLinkParams(),
		Radix: DefaultRadix,
		Build: func(eng *sim.Engine, hosts int, cfg fabric.Config) *fabric.Network {
			ports := cfg.Radix
			if ports == 0 {
				ports = DefaultRadix
			}
			return autoTopology(eng, hosts, ports, cfg.Links)
		},
		Diameter: Diameter,
	}
}

// Diameter reports the worst-case hop count of the topology AutoTopology
// picks for the host count: 2 through one crossbar, 4 through a two-level
// Clos, 6 through the three-level fat tree.
func Diameter(hosts int) int {
	switch {
	case hosts <= 16:
		return 2
	case hosts <= 128:
		return 4
	default:
		return 6
	}
}
