package myrinet

import (
	"testing"

	"repro/internal/sim"
)

// TestAutoTopology16KHosts pins the 16384-host shape the benchmark points
// rely on: AutoTopology doubles the crossbar radix from 16 to 64 (the
// smallest fat tree carrying 16K hosts), yielding a 16-pod fat tree with
// the promised 2/4/6 hop structure, and the partitioner still produces a
// balanced plan with full-link lookahead. Build-only — no traffic — so the
// test stays fast at this scale.
func TestAutoTopology16KHosts(t *testing.T) {
	const hosts = 16384
	params := DefaultLinkParams()
	n := AutoTopology(sim.NewEngine(), hosts, params)
	if got := n.Hosts(); got != hosts {
		t.Fatalf("built %d hosts, want %d", got, hosts)
	}
	// Radix 64 fat tree: 32 hosts per edge switch, 1024 per pod.
	if hops := n.HopCount(0, 31); hops != 2 {
		t.Errorf("same-edge hop count %d, want 2", hops)
	}
	if hops := n.HopCount(0, 1000); hops != 4 {
		t.Errorf("same-pod hop count %d, want 4", hops)
	}
	if hops := n.HopCount(0, hosts-1); hops != 6 {
		t.Errorf("cross-pod hop count %d, want 6", hops)
	}

	const shards = 4
	plan := n.Partition(shards)
	if plan.Shards != shards {
		t.Fatalf("plan has %d shards, want %d", plan.Shards, shards)
	}
	counts := make([]int, shards)
	for _, s := range plan.HostShard {
		counts[s]++
	}
	for s, c := range counts {
		if c != hosts/shards {
			t.Fatalf("shard %d holds %d hosts, want %d", s, c, hosts/shards)
		}
	}
	if plan.Lookahead != params.Latency {
		t.Fatalf("lookahead %v, want the link latency %v", plan.Lookahead, params.Latency)
	}
	// Every directed shard pair must be coupled through cut links at full
	// link latency — the adaptive coordinator's matrix has no surprise
	// zero-latency entries.
	for s := 0; s < shards; s++ {
		for d := 0; d < shards; d++ {
			if s == d {
				continue
			}
			if got := plan.PairLookahead[s][d]; got != params.Latency {
				t.Fatalf("PairLookahead[%d][%d] = %v, want %v", s, d, got, params.Latency)
			}
		}
	}
}
