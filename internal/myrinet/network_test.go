package myrinet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testNet(t *testing.T, hosts int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n := NewSingleSwitch(eng, hosts, DefaultLinkParams())
	return eng, n
}

// attach installs a delivery recorder on every interface.
func attach(n *Network) *[]delivery {
	var log []delivery
	for i := 0; i < n.Hosts(); i++ {
		id := NodeID(i)
		n.Iface(id).Deliver = func(p *Packet) {
			log = append(log, delivery{at: n.Engine().Now(), pkt: p})
		}
	}
	return &log
}

type delivery struct {
	at  sim.Time
	pkt *Packet
}

func TestSingleSwitchLatencyModel(t *testing.T) {
	eng, n := testNet(t, 4)
	log := attach(n)
	p := &Packet{Src: 0, Dst: 1, Size: 1000}
	eng.At(0, func() { n.Iface(0).Inject(p) })
	eng.Run()
	if len(*log) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*log))
	}
	// Two hops (host->switch, switch->host): head latency 2*300ns, each
	// link serializes 4000ns; cut-through so serialization overlaps:
	// tail at dst = 2*latency + 2*ser - overlap... hop0: start=0, headOut=300;
	// hop1: start=300, headOut=600, tail=600+4000=4600.
	want := sim.Time(2*300 + 4000 + 300) // actually computed: 4600
	_ = want
	got := (*log)[0].at
	if got != 4600 {
		t.Fatalf("delivery at %v, want 4600ns", got)
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	// With cut-through, total time grows with hops by latency only, not by
	// full serialization per hop.
	eng := sim.NewEngine()
	n := NewClos(eng, 32, 16, DefaultLinkParams())
	var at sim.Time
	n.Iface(31).Deliver = func(p *Packet) { at = eng.Now() }
	const size = 4096
	eng.At(0, func() { n.Iface(0).Inject(&Packet{Src: 0, Dst: 31, Size: size}) })
	eng.Run()
	hops := n.HopCount(0, 31)
	if hops != 4 {
		t.Fatalf("cross-leaf route has %d hops, want 4", hops)
	}
	ser := DefaultLinkParams().SerializationTime(size)
	lat := DefaultLinkParams().Latency
	wantCutThrough := sim.Time(hops)*lat + ser
	wantStoreFwd := sim.Time(hops) * (lat + ser)
	if at != wantCutThrough {
		t.Fatalf("delivery at %v, want cut-through %v (store-and-forward would be %v)",
			at, wantCutThrough, wantStoreFwd)
	}
}

func TestLinkSerializationQueues(t *testing.T) {
	eng, n := testNet(t, 4)
	log := attach(n)
	// Two packets injected back-to-back from the same source share the
	// injection link; the second must queue behind the first.
	eng.At(0, func() {
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 2, Size: 1000})
	})
	eng.Run()
	if len(*log) != 2 {
		t.Fatalf("delivered %d, want 2", len(*log))
	}
	first, second := (*log)[0].at, (*log)[1].at
	if second-first != 4000 {
		t.Fatalf("second delivery %v after first, want 4000ns (one serialization)", second-first)
	}
}

func TestContentionOnSharedDestination(t *testing.T) {
	eng, n := testNet(t, 4)
	log := attach(n)
	// Two sources target one destination; the switch->host link serializes.
	eng.At(0, func() {
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 3, Size: 1000})
		n.Iface(1).Inject(&Packet{Src: 1, Dst: 3, Size: 1000})
	})
	eng.Run()
	if len(*log) != 2 {
		t.Fatalf("delivered %d, want 2", len(*log))
	}
	gap := (*log)[1].at - (*log)[0].at
	if gap < 3000 {
		t.Fatalf("deliveries only %v apart; destination link contention not modeled", gap)
	}
}

func TestRouteSymmetricHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	n := NewClos(eng, 48, 16, DefaultLinkParams())
	for src := NodeID(0); src < 48; src += 7 {
		for dst := NodeID(0); dst < 48; dst++ {
			if src == dst {
				continue
			}
			h1, h2 := n.HopCount(src, dst), n.HopCount(dst, src)
			if h1 != h2 {
				t.Fatalf("asymmetric hop counts %v<->%v: %d vs %d", src, dst, h1, h2)
			}
			if h1 != 2 && h1 != 4 {
				t.Fatalf("unexpected hop count %d for %v->%v", h1, src, dst)
			}
		}
	}
}

func TestCrossLeafUsesSpine(t *testing.T) {
	eng := sim.NewEngine()
	n := NewClos(eng, 32, 16, DefaultLinkParams())
	sameLeaf := n.HopCount(0, 7)
	crossLeaf := n.HopCount(0, 8)
	if sameLeaf != 2 {
		t.Errorf("same-leaf hops = %d, want 2", sameLeaf)
	}
	if crossLeaf != 4 {
		t.Errorf("cross-leaf hops = %d, want 4", crossLeaf)
	}
}

func TestClosSpreadsSpines(t *testing.T) {
	eng := sim.NewEngine()
	n := NewClos(eng, 32, 16, DefaultLinkParams())
	spines := make(map[*Link]bool)
	for dst := NodeID(8); dst < 16; dst++ {
		r := n.Route(0, dst)
		spines[r[1]] = true
	}
	if len(spines) < 2 {
		t.Fatalf("all routes from node 0 share %d spine uplink(s); want dispersion", len(spines))
	}
}

func TestAutoTopology(t *testing.T) {
	eng := sim.NewEngine()
	small := AutoTopology(eng, 16, DefaultLinkParams())
	if got := small.HopCount(0, 15); got != 2 {
		t.Errorf("16-host auto topology: %d hops, want 2 (single crossbar)", got)
	}
	big := AutoTopology(eng, 64, DefaultLinkParams())
	if got := big.HopCount(0, 63); got != 4 {
		t.Errorf("64-host auto topology: %d hops, want 4 (Clos)", got)
	}
}

func TestLossRateDropsPackets(t *testing.T) {
	eng, n := testNet(t, 2)
	n.SetRNG(sim.NewRNG(1))
	n.LossRate = 0.5
	delivered := 0
	n.Iface(1).Deliver = func(p *Packet) { delivered++ }
	const sent = 1000
	eng.At(0, func() {
		for i := 0; i < sent; i++ {
			n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 100})
		}
	})
	eng.Run()
	st := n.Stats()
	if st.Injected != sent {
		t.Fatalf("injected %d, want %d", st.Injected, sent)
	}
	if st.Delivered+st.Dropped != sent {
		t.Fatalf("delivered %d + dropped %d != %d", st.Delivered, st.Dropped, sent)
	}
	// Per-link loss 0.5 over 2 hops => ~25% survival.
	if delivered < 150 || delivered > 350 {
		t.Fatalf("delivered %d of %d with 2-hop 0.5 loss; want roughly 250", delivered, sent)
	}
}

func TestDropFnTargetsPackets(t *testing.T) {
	eng, n := testNet(t, 2)
	kill := true
	n.DropFn = func(p *Packet, l *Link) bool { return kill }
	got := 0
	n.Iface(1).Deliver = func(p *Packet) { got++ }
	eng.At(0, func() { n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 64}) })
	eng.At(sim.Millisecond, func() {
		kill = false
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 64})
	})
	eng.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want exactly the undropped packet", got)
	}
}

func TestInjectValidation(t *testing.T) {
	eng, n := testNet(t, 2)
	_ = eng
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong source", func() {
		n.Iface(0).Inject(&Packet{Src: 1, Dst: 0, Size: 10})
	})
	mustPanic("zero size", func() {
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 0})
	})
	mustPanic("route to self", func() {
		n.Route(1, 1)
	})
}

// Property: on an idle fabric, delivery time equals hops*latency +
// serialization, for any size and host pair.
func TestIdleLatencyProperty(t *testing.T) {
	f := func(rawSize uint16, rawSrc, rawDst uint8) bool {
		size := int(rawSize)%16384 + 1
		src := NodeID(rawSrc % 16)
		dst := NodeID(rawDst % 16)
		if src == dst {
			return true
		}
		eng := sim.NewEngine()
		n := NewSingleSwitch(eng, 16, DefaultLinkParams())
		var at sim.Time
		n.Iface(dst).Deliver = func(p *Packet) { at = eng.Now() }
		eng.At(0, func() { n.Iface(src).Inject(&Packet{Src: src, Dst: dst, Size: size}) })
		eng.Run()
		want := 2*DefaultLinkParams().Latency + DefaultLinkParams().SerializationTime(size)
		return at == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadPassesThroughUntouched(t *testing.T) {
	eng, n := testNet(t, 2)
	payload := []byte("frame-bytes")
	var got any
	n.Iface(1).Deliver = func(p *Packet) { got = p.Payload }
	eng.At(0, func() {
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 64, Payload: payload})
	})
	eng.Run()
	b, ok := got.([]byte)
	if !ok || string(b) != "frame-bytes" {
		t.Fatalf("payload corrupted in transit: %v", got)
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	n := NewFatTree(eng, 256, 16, DefaultLinkParams())
	cases := []struct {
		src, dst NodeID
		hops     int
		name     string
	}{
		{0, 1, 2, "same edge"},
		{0, 8, 4, "same pod, different edge"},
		{0, 63, 4, "same pod boundary"},
		{0, 64, 6, "cross pod"},
		{0, 255, 6, "far cross pod"},
	}
	for _, c := range cases {
		if got := n.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("%s (%v->%v): %d hops, want %d", c.name, c.src, c.dst, got, c.hops)
		}
	}
}

func TestFatTreeDeliversEverywhere(t *testing.T) {
	eng := sim.NewEngine()
	n := NewFatTree(eng, 200, 16, DefaultLinkParams())
	got := map[NodeID]bool{}
	for i := 0; i < 200; i++ {
		id := NodeID(i)
		n.Iface(id).Deliver = func(p *Packet) { got[p.Dst] = true }
	}
	eng.At(0, func() {
		for _, dst := range []NodeID{1, 7, 63, 64, 127, 128, 199} {
			n.Iface(0).Inject(&Packet{Src: 0, Dst: dst, Size: 100})
		}
		n.Iface(199).Inject(&Packet{Src: 199, Dst: 0, Size: 100})
	})
	eng.Run()
	for _, dst := range []NodeID{1, 7, 63, 64, 127, 128, 199, 0} {
		if !got[dst] {
			t.Fatalf("no delivery at %v", dst)
		}
	}
}

func TestFatTreeSymmetricHops(t *testing.T) {
	eng := sim.NewEngine()
	n := NewFatTree(eng, 256, 16, DefaultLinkParams())
	for _, pair := range [][2]NodeID{{0, 70}, {5, 200}, {64, 192}, {3, 12}} {
		a, b := n.HopCount(pair[0], pair[1]), n.HopCount(pair[1], pair[0])
		if a != b {
			t.Errorf("asymmetric hops %v<->%v: %d vs %d", pair[0], pair[1], a, b)
		}
	}
}

func TestFatTreeSpreadsCore(t *testing.T) {
	eng := sim.NewEngine()
	n := NewFatTree(eng, 256, 16, DefaultLinkParams())
	coreLinks := map[*Link]bool{}
	for dst := NodeID(64); dst < 128; dst++ {
		r := n.Route(0, dst)
		if len(r) == 6 {
			coreLinks[r[2]] = true // agg -> core uplink
		}
	}
	if len(coreLinks) < 4 {
		t.Fatalf("cross-pod routes use only %d core uplinks; want dispersion", len(coreLinks))
	}
}

func TestFatTreeCapacityEnforced(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("oversubscribed fat tree did not panic")
		}
	}()
	NewFatTree(eng, 16*64+1, 16, DefaultLinkParams())
}

func TestFatTreeSmallFallsBackToClos(t *testing.T) {
	eng := sim.NewEngine()
	n := NewFatTree(eng, 48, 16, DefaultLinkParams())
	if got := n.HopCount(0, 47); got != 4 {
		t.Fatalf("small fat tree did not fall back to 2-level Clos: %d hops", got)
	}
}

func TestAutoTopologyThreeTiers(t *testing.T) {
	eng := sim.NewEngine()
	if got := AutoTopology(eng, 256, DefaultLinkParams()).HopCount(0, 255); got != 6 {
		t.Errorf("256-host topology: %d hops, want 6 (fat tree)", got)
	}
}
