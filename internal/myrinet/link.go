package myrinet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// LinkParams are the physical characteristics of every link in a fabric.
// Myrinet-2000 defaults: 2 Gb/s (4 ns per byte) and a few hundred
// nanoseconds of combined cable and crossbar routing delay per hop.
type LinkParams struct {
	// Latency is the per-hop head latency: propagation plus the switch's
	// wormhole routing decision.
	Latency sim.Time
	// NsPerByte is the serialization cost; 4.0 models 2 Gb/s Myrinet-2000.
	NsPerByte float64
}

// DefaultLinkParams returns Myrinet-2000-like link characteristics.
func DefaultLinkParams() LinkParams {
	return LinkParams{Latency: 300 * sim.Nanosecond, NsPerByte: 4.0}
}

// SerializationTime reports how long a packet of the given size occupies
// a link.
func (lp LinkParams) SerializationTime(size int) sim.Time {
	return sim.PerByte(lp.NsPerByte, size)
}

// vertex is a point in the fabric graph: either a host attachment or a
// crossbar switch.
type vertex struct {
	idx    int
	host   bool
	hostID NodeID
	label  string
	out    []*Link
}

// Link is a directed physical channel between two vertices. Each link is a
// FIFO resource: one packet serializes onto it at a time.
type Link struct {
	from, to *vertex
	fac      *sim.Facility
	params   LinkParams
	// Drops counts packets lost on this link (fault injection).
	Drops uint64

	// Cached metric instruments, set by Network.SetMetrics; nil (no-op)
	// until then or when metrics are disabled.
	mTxBytes   *metrics.Counter
	mStallNs   *metrics.Counter
	mContended *metrics.Counter
	mDrops     *metrics.Counter
}

// String labels the link for diagnostics.
func (l *Link) String() string { return fmt.Sprintf("%s->%s", l.from.label, l.to.label) }

// BusyTime reports cumulative serialization time spent on the link.
func (l *Link) BusyTime() sim.Time { return l.fac.BusyTime() }
