package myrinet

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// NewFatTree builds a three-level folded-Clos (fat-tree) network of
// k-port crossbars — the shape of large Myrinet installations (GM "can
// support clusters of over 10,000 nodes"; the fabric grows by adding
// switch stages). With k-port switches the topology carries up to k³/4
// hosts: k pods, each with k/2 edge switches of k/2 hosts, k/2
// aggregation switches per pod, and (k/2)² core switches.
//
// Routes are deterministic up-down paths: same-edge traffic crosses one
// switch (2 hops), same-pod traffic three (4 hops), cross-pod traffic
// five (6 hops), with the aggregation and core stage spread by a (src,
// dst) hash — Myrinet's dispersive source routing.
func NewFatTree(eng *sim.Engine, hosts, ports int, params LinkParams) *Network {
	if ports < 4 || ports%2 != 0 {
		panic("myrinet: fat tree needs an even port count >= 4")
	}
	half := ports / 2
	hostsPerEdge := half
	hostsPerPod := half * hostsPerEdge
	pods := (hosts + hostsPerPod - 1) / hostsPerPod
	if pods <= 1 {
		return NewClos(eng, hosts, ports, params)
	}
	if pods > ports {
		panic(fmt.Sprintf("myrinet: %d hosts exceed a %d-port fat tree's capacity (%d)",
			hosts, ports, ports*hostsPerPod))
	}

	n := fabric.New(eng, params)

	// Edge and aggregation switches per pod.
	edges := make([][]*fabric.Vertex, pods)
	aggs := make([][]*fabric.Vertex, pods)
	// Intra-pod links: edgeUp[p][e][a], aggDown[p][a][e].
	edgeUp := make([][][]*Link, pods)
	aggDown := make([][][]*Link, pods)
	for p := 0; p < pods; p++ {
		edges[p] = make([]*fabric.Vertex, half)
		aggs[p] = make([]*fabric.Vertex, half)
		edgeUp[p] = make([][]*Link, half)
		aggDown[p] = make([][]*Link, half)
		for e := 0; e < half; e++ {
			edges[p][e] = n.AddSwitch(fmt.Sprintf("edge%d.%d", p, e))
			edgeUp[p][e] = make([]*Link, half)
		}
		for a := 0; a < half; a++ {
			aggs[p][a] = n.AddSwitch(fmt.Sprintf("agg%d.%d", p, a))
			aggDown[p][a] = make([]*Link, half)
		}
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				up, down := n.Connect(edges[p][e], aggs[p][a])
				edgeUp[p][e][a] = up
				aggDown[p][a][e] = down
			}
		}
	}

	// Core switches: agg index a in every pod connects to cores
	// [a*half, (a+1)*half).
	cores := make([]*fabric.Vertex, half*half)
	aggUp := make([][][]*Link, pods) // [p][a][j] to core a*half+j
	coreDown := make([][]*Link, len(cores))
	for c := range cores {
		cores[c] = n.AddSwitch(fmt.Sprintf("core%d", c))
		coreDown[c] = make([]*Link, pods)
	}
	for p := 0; p < pods; p++ {
		aggUp[p] = make([][]*Link, half)
		for a := 0; a < half; a++ {
			aggUp[p][a] = make([]*Link, half)
			for j := 0; j < half; j++ {
				c := a*half + j
				up, down := n.Connect(aggs[p][a], cores[c])
				aggUp[p][a][j] = up
				coreDown[c][p] = down
			}
		}
	}

	// Hosts.
	hostUp := make([]*Link, hosts)
	hostDown := make([]*Link, hosts)
	for i := 0; i < hosts; i++ {
		p := i / hostsPerPod
		e := (i % hostsPerPod) / hostsPerEdge
		_, up, down := n.AddHost(NodeID(i), edges[p][e])
		hostUp[i], hostDown[i] = up, down
	}

	podOf := func(h NodeID) int { return int(h) / hostsPerPod }
	edgeOf := func(h NodeID) int { return (int(h) % hostsPerPod) / hostsPerEdge }

	n.SetRoute(func(src, dst NodeID) []*Link {
		if src == dst {
			panic("myrinet: route to self")
		}
		sp, se := podOf(src), edgeOf(src)
		dp, de := podOf(dst), edgeOf(dst)
		h := int(src)*31 + int(dst)
		if sp == dp && se == de {
			return []*Link{hostUp[src], hostDown[dst]}
		}
		if sp == dp {
			a := h % half
			return []*Link{hostUp[src], edgeUp[sp][se][a], aggDown[sp][a][de], hostDown[dst]}
		}
		a := h % half
		j := (h / half) % half
		c := a*half + j
		return []*Link{
			hostUp[src],
			edgeUp[sp][se][a],
			aggUp[sp][a][j],
			coreDown[c][dp],
			aggDown[dp][a][de],
			hostDown[dst],
		}
	})
	n.SetMetrics(nil)
	return n
}
