package myrinet_test

import (
	"reflect"
	"testing"

	"repro/internal/myrinet"
	"repro/internal/sim"
)

// TestPartitionDeterministic: the partitioner is part of the determinism
// contract — the same fabric must yield the same plan every time, or
// sharded runs would not be reproducible.
func TestPartitionDeterministic(t *testing.T) {
	build := func() myrinet.Plan {
		net := myrinet.NewClos(sim.NewEngine(), 16, 8, myrinet.DefaultLinkParams())
		return net.Partition(4)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("plans differ across identical builds:\n%+v\n%+v", a, b)
	}
}

// TestPartitionBalancedContiguous: hosts land in contiguous balanced
// blocks — consecutive IDs share leaf switches, so contiguity keeps the
// short host<->leaf links interior to a shard.
func TestPartitionBalancedContiguous(t *testing.T) {
	for _, tc := range []struct{ hosts, shards int }{
		{16, 4}, {16, 2}, {12, 3}, {10, 4}, // 10/4: uneven blocks
	} {
		net := myrinet.NewClos(sim.NewEngine(), tc.hosts, 8, myrinet.DefaultLinkParams())
		plan := net.Partition(tc.shards)
		counts := make([]int, plan.Shards)
		prev := 0
		for h, s := range plan.HostShard {
			if s < prev {
				t.Fatalf("%d hosts/%d shards: host %d in shard %d after shard %d (not contiguous)",
					tc.hosts, tc.shards, h, s, prev)
			}
			prev = s
			counts[s]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("%d hosts/%d shards: unbalanced host blocks %v", tc.hosts, tc.shards, counts)
		}
	}
}

// TestPartitionClamp: requests outside [1, hosts] clamp rather than panic
// (shards > hosts is the documented shards-exceed-nodes edge case).
func TestPartitionClamp(t *testing.T) {
	net := myrinet.NewSingleSwitch(sim.NewEngine(), 4, myrinet.DefaultLinkParams())
	if got := net.Partition(0).Shards; got != 1 {
		t.Fatalf("Partition(0).Shards = %d, want 1", got)
	}
	if got := net.Partition(-3).Shards; got != 1 {
		t.Fatalf("Partition(-3).Shards = %d, want 1", got)
	}
	if got := net.Partition(64).Shards; got != 4 {
		t.Fatalf("Partition(64).Shards = %d, want 4 (clamped to hosts)", got)
	}
}

// TestPartitionLookahead: with uniform link parameters the conservative
// window width is exactly the link latency, and a multi-shard Clos always
// has cut links for it to apply to.
func TestPartitionLookahead(t *testing.T) {
	params := myrinet.DefaultLinkParams()
	net := myrinet.NewClos(sim.NewEngine(), 16, 8, params)
	for _, shards := range []int{1, 2, 4} {
		plan := net.Partition(shards)
		if plan.Lookahead != params.Latency {
			t.Fatalf("%d shards: lookahead %v, want link latency %v", shards, plan.Lookahead, params.Latency)
		}
		if shards > 1 && plan.CutLinks == 0 {
			t.Fatalf("%d shards: no cut links in a multi-shard Clos", shards)
		}
		if shards == 1 && plan.CutLinks != 0 {
			t.Fatalf("1 shard: %d cut links, want 0", plan.CutLinks)
		}
	}
}

// TestCrossShardHandoffAllocs gates the boundary-handoff hot path at zero
// allocations per packet: transits come from per-shard pools, routes from
// per-shard caches, drained messages land in a reused buffer sorted by a
// pre-boxed sorter, and tiebreak keys are plain counter draws. The engines
// are driven by hand — inject, run source shard, drain mailboxes, run
// destination shard — so the measurement isolates the per-packet path from
// the coordinator's per-run goroutine setup.
func TestCrossShardHandoffAllocs(t *testing.T) {
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	net := myrinet.NewClos(e0, 8, 4, myrinet.DefaultLinkParams())
	plan := net.Partition(2)
	net.ApplyPlan(plan, []*sim.Engine{e0, e1})
	for i := 0; i < 8; i++ {
		net.Iface(myrinet.NodeID(i)).Deliver = func(*myrinet.Packet) {}
	}
	src := myrinet.NodeID(0)
	dst := myrinet.NodeID(-1)
	for i := 0; i < 8; i++ {
		if net.HostShard(myrinet.NodeID(i)) != net.HostShard(src) {
			dst = myrinet.NodeID(i)
			break
		}
	}
	if dst < 0 {
		t.Fatal("partition put every host in one shard")
	}

	p := &myrinet.Packet{Src: src, Dst: dst, Size: 1024}
	cycle := func() {
		net.Iface(src).Inject(p)
		for {
			e0.Run()
			e1.Run()
			if net.DrainCross() == 0 {
				break
			}
		}
		e0.Run()
		e1.Run()
		// Align clocks so every iteration starts from an identical state.
		t := e0.Now()
		if e1.Now() > t {
			t = e1.Now()
		}
		e0.RunUntil(t)
		e1.RunUntil(t)
	}
	// Warm up pools, route caches, and mailbox capacity.
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("cross-shard handoff allocates %.2f per packet, want 0", avg)
	}
	if net.Stats().Delivered == 0 {
		t.Fatal("no packets delivered — cycle is not exercising the path")
	}
}
