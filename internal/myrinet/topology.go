package myrinet

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// NewSingleSwitch builds a fabric with all hosts on one crossbar — the
// shape of the paper's 16-node testbed (one Myrinet-2000 Xbar16).
func NewSingleSwitch(eng *sim.Engine, hosts int, params LinkParams) *Network {
	return fabric.SingleSwitch(eng, hosts, params)
}

// NewClos builds a two-level Clos network out of crossbars with the given
// port count (16 for Myrinet-2000). Each leaf switch carries ports/2 hosts
// and ports/2 uplinks; there are ports/2 spine switches, each linked to
// every leaf. Cross-leaf traffic is spread over spines deterministically
// by (src, dst) hash, the usual Myrinet dispersive source-routing.
func NewClos(eng *sim.Engine, hosts, ports int, params LinkParams) *Network {
	if ports < 4 || ports%2 != 0 {
		panic("myrinet: Clos needs an even port count >= 4")
	}
	hostsPerLeaf := ports / 2
	leaves := (hosts + hostsPerLeaf - 1) / hostsPerLeaf
	if leaves <= 1 {
		return NewSingleSwitch(eng, hosts, params)
	}
	n := fabric.New(eng, params)

	leafV := make([]*fabric.Vertex, leaves)
	for i := range leafV {
		leafV[i] = n.AddSwitch(fmt.Sprintf("leaf%d", i))
	}
	spines := ports / 2
	// up[l][s] is the leaf->spine link, down[s][l] the reverse.
	up := make([][]*Link, leaves)
	down := make([][]*Link, spines)
	for s := 0; s < spines; s++ {
		down[s] = make([]*Link, leaves)
	}
	for l := 0; l < leaves; l++ {
		up[l] = make([]*Link, spines)
	}
	for s := 0; s < spines; s++ {
		sv := n.AddSwitch(fmt.Sprintf("spine%d", s))
		for l := 0; l < leaves; l++ {
			u, d := n.Connect(leafV[l], sv)
			up[l][s] = u
			down[s][l] = d
		}
	}
	hostUp := make([]*Link, hosts)
	hostDown := make([]*Link, hosts)
	for i := 0; i < hosts; i++ {
		_, u, d := n.AddHost(NodeID(i), leafV[i/hostsPerLeaf])
		hostUp[i], hostDown[i] = u, d
	}
	n.SetRoute(func(src, dst NodeID) []*Link {
		if src == dst {
			panic("myrinet: route to self")
		}
		sl, dl := int(src)/hostsPerLeaf, int(dst)/hostsPerLeaf
		if sl == dl {
			return []*Link{hostUp[src], hostDown[dst]}
		}
		spine := (int(src)*31 + int(dst)) % spines
		return []*Link{hostUp[src], up[sl][spine], down[spine][dl], hostDown[dst]}
	})
	n.SetMetrics(nil)
	return n
}

// AutoTopology picks the smallest standard fabric that carries the host
// count: one crossbar up to 16 hosts (the paper's testbed), a two-level
// Clos up to 128, and a three-level fat tree beyond — matching "Myrinet
// network uses its default hardware topology, Clos network". A k-port fat
// tree tops out at k³/4 hosts (1024 for the Myrinet-2000 Xbar16), so past
// that the radix doubles until the pod count fits — the way large Myrinet
// installations scale by moving to wider crossbar line cards.
func AutoTopology(eng *sim.Engine, hosts int, params LinkParams) *Network {
	return autoTopology(eng, hosts, DefaultRadix, params)
}

func autoTopology(eng *sim.Engine, hosts, ports int, params LinkParams) *Network {
	switch {
	case hosts <= ports:
		return NewSingleSwitch(eng, hosts, params)
	case hosts <= ports*ports/2:
		return NewClos(eng, hosts, ports, params)
	default:
		for hosts > ports*ports*ports/4 {
			ports *= 2
		}
		return NewFatTree(eng, hosts, ports, params)
	}
}
