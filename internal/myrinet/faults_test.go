package myrinet

// Tests for the fault-injection hooks (DupFn duplication, DelayFn
// reordering) and the fail-fast loss-rate validation.

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestSetLossRateValidation(t *testing.T) {
	eng := sim.NewEngine()
	n := NewSingleSwitch(eng, 2, DefaultLinkParams())

	if err := n.SetLossRate(0.1); !errors.Is(err, ErrLossRateWithoutRNG) {
		t.Fatalf("loss without RNG accepted: err=%v, want ErrLossRateWithoutRNG", err)
	}
	if err := n.SetLossRate(0); err != nil {
		t.Fatalf("zero loss rate without RNG rejected: %v", err)
	}
	n.SetRNG(sim.NewRNG(1))
	for _, bad := range []float64{-0.1, 1.5} {
		if err := n.SetLossRate(bad); !errors.Is(err, ErrBadLossRate) {
			t.Fatalf("loss rate %v accepted: err=%v, want ErrBadLossRate", bad, err)
		}
	}
	if err := n.SetLossRate(0.5); err != nil {
		t.Fatalf("valid loss rate rejected: %v", err)
	}
}

// TestDupFnDeliversTwiceAndBalances checks the duplication hook: the
// matched packet arrives twice, and the conservation identity the chaos
// campaigns assert (injected + duplicated == delivered + dropped) holds.
func TestDupFnDeliversTwiceAndBalances(t *testing.T) {
	eng, n := testNet(t, 2)
	reg := metrics.New()
	n.SetMetrics(reg)
	log := attach(n)
	n.DupFn = func(p *Packet, l *Link) bool { return true }
	eng.At(0, func() { n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 1000}) })
	eng.Run()
	if len(*log) != 2 {
		t.Fatalf("duplicated packet delivered %d times, want 2", len(*log))
	}
	if (*log)[0].at >= (*log)[1].at {
		t.Fatalf("duplicate at %v not after original at %v", (*log)[1].at, (*log)[0].at)
	}
	s := reg.Snapshot()
	injected := s.Counter(Component, metrics.NodeFabric, "injected")
	duplicated := s.Counter(Component, metrics.NodeFabric, "duplicated")
	delivered := s.Counter(Component, metrics.NodeFabric, "delivered")
	dropped := s.Counter(Component, metrics.NodeFabric, "dropped")
	if injected != 1 || duplicated != 1 || delivered != 2 || dropped != 0 {
		t.Fatalf("accounting injected=%d duplicated=%d delivered=%d dropped=%d, want 1/1/2/0",
			injected, duplicated, delivered, dropped)
	}
}

// TestDelayFnReordersPackets checks the reordering hook: holding the first
// packet back lets the second overtake it on the final hop.
func TestDelayFnReordersPackets(t *testing.T) {
	eng, n := testNet(t, 2)
	log := attach(n)
	first := true
	n.DelayFn = func(p *Packet, l *Link) sim.Time {
		if first {
			first = false
			return 50 * sim.Microsecond
		}
		return 0
	}
	eng.At(0, func() {
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Payload: "a"})
		n.Iface(0).Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Payload: "b"})
	})
	eng.Run()
	if len(*log) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(*log))
	}
	if (*log)[0].pkt.Payload != "b" || (*log)[1].pkt.Payload != "a" {
		t.Fatalf("delivery order [%v %v], want [b a] (held packet overtaken)",
			(*log)[0].pkt.Payload, (*log)[1].pkt.Payload)
	}
}
