package benchkernel

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/fabric"
)

// TestShardedSpeedupMulticore is the CI smoke for the point of the whole
// parallel engine: on a machine with at least 4 free cores, the 4-shard
// multicast storm must beat the serial engine by a real margin. It skips
// cleanly on smaller machines (including the 1-CPU boxes the committed
// BENCH_sim.json numbers come from) and in -short mode, so the assertion
// only ever runs where it is meaningful. The virtual clocks must agree
// exactly — the speedup claim is only valid for identical computations.
func TestShardedSpeedupMulticore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup assertion, have %d", n)
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Skipf("need GOMAXPROCS >= 4 for a meaningful speedup assertion, have %d", n)
	}

	const (
		nodes = 512
		msgs  = 20
		size  = 1024
	)
	measure := func(shards int) (float64, int64) {
		best := 0.0
		var virt int64
		for i := 0; i < 2; i++ {
			start := time.Now()
			v, _ := MulticastStormStats(fabric.Config{}, nodes, shards, msgs, size)
			if d := time.Since(start).Seconds(); best == 0 || d < best {
				best = d
			}
			virt = int64(v)
		}
		return best, virt
	}
	serial, virtSerial := measure(1)
	sharded, virtSharded := measure(4)
	if virtSerial != virtSharded {
		t.Fatalf("virtual clocks diverged: serial %d ns, 4-shard %d ns", virtSerial, virtSharded)
	}
	speedup := serial / sharded
	t.Logf("multicast storm %d nodes: serial %.3fs, 4-shard %.3fs, speedup %.2fx (GOMAXPROCS=%d)",
		nodes, serial, sharded, speedup, runtime.GOMAXPROCS(0))
	if speedup < 1.3 {
		t.Fatalf("4-shard speedup %.2fx < 1.3x on %d cores (serial %.3fs, sharded %.3fs)",
			speedup, runtime.NumCPU(), serial, sharded)
	}
}
