package benchkernel

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestAckEconomyCutsStormAckTraffic pins the headline claim: with
// coalescing, piggybacking and tree aggregation on, a 2048-host multicast
// storm puts at least 4x fewer ack packets on the wire than the default
// per-packet discipline, while the final virtual clock does not regress.
func TestAckEconomyCutsStormAckTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-host storm is too slow for -short")
	}
	// 16-packet messages; the binomial root paces packets ~190µs apart at
	// this scale, so the ack delay must span several packet arrivals for
	// count-driven coalescing to engage (the retransmit timers budget for
	// the hold, see conn.rto and group.armTimer).
	const nodes, msgs, size = 2048, 3, 65536
	baseVirt, base := MulticastStormCounters(fabric.Config{}, nodes, msgs, size)
	econVirt, econ := MulticastStormCounters(fabric.Config{}, nodes, msgs, size,
		cluster.WithAckCoalescing(8, 2*sim.Millisecond),
		cluster.WithPiggybackAcks(),
		cluster.WithAckAggregation())

	baseAcks := base.CounterSum("core", "mcast_acks_sent") + base.CounterSum("gm", "acks_sent")
	econAcks := econ.CounterSum("core", "mcast_acks_sent") + econ.CounterSum("gm", "acks_sent")
	if baseAcks == 0 {
		t.Fatal("baseline storm recorded no ack packets")
	}
	if econAcks*4 > baseAcks {
		t.Fatalf("ack economy sent %d ack packets vs %d baseline — under the 4x reduction bar",
			econAcks, baseAcks)
	}
	// Both runs moved the same payload bytes; receivers must have accepted
	// the identical packet count.
	if b, e := base.CounterSum("core", "mcast_received"), econ.CounterSum("core", "mcast_received"); b != e {
		t.Fatalf("receive counts diverged: %d baseline vs %d economy", b, e)
	}
	// Coalescing trades per-packet acks for bounded delay; the storm as a
	// whole must not get slower (aggregation removes the root's ack
	// implosion, which is what the paper's NIC-based scheme is about).
	if econVirt > baseVirt+baseVirt/10 {
		t.Fatalf("economy storm finished at %v, >10%% slower than baseline %v", econVirt, baseVirt)
	}
	if econ.CounterSum("core", "mcast_acks_aggregated") == 0 {
		t.Fatal("interior NICs aggregated no acks")
	}
	if econ.CounterSum("gm", "retransmits")+econ.CounterSum("core", "retransmits") != 0 {
		t.Fatal("ack economy caused spurious retransmits in a clean storm")
	}
}
