// Package benchkernel holds the event-kernel and sweep benchmark bodies
// shared between `go test -bench` wrappers (internal/sim, the repo root)
// and cmd/benchjson, which runs them via testing.Benchmark and records the
// results in BENCH_sim.json. Keeping one body per workload means the
// committed baseline and the test benchmarks can never drift apart.
package benchkernel

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sim/legacy"
	"repro/internal/tree"
)

// window is the number of outstanding events the scheduling kernels keep
// in the heap — deep enough that sift costs are realistic, small enough
// that the workload stays cache-resident.
const window = 64

// Schedule measures steady-state schedule+fire throughput on the live
// kernel: every iteration fires the earliest of window outstanding events
// and schedules a replacement, so the arena free list is exercised on
// every operation.
func Schedule(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	fn := func() {}
	for i := 0; i < window; i++ {
		eng.After(sim.Time(i+1), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
		eng.After(window, fn)
	}
}

// LegacySchedule is Schedule on the seed's container/heap engine.
func LegacySchedule(b *testing.B) {
	b.ReportAllocs()
	eng := legacy.NewEngine()
	fn := func() {}
	for i := 0; i < window; i++ {
		eng.After(sim.Time(i+1), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
		eng.After(window, fn)
	}
}

// CancelReschedule measures the retransmit-timer pattern: arm, push the
// deadline out, give up, and advance — the lifecycle every reliable-send
// path puts its timer through.
func CancelReschedule(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	tm := eng.NewTimer(func() {})
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(eng.Now() + 100)
		tm.Reset(eng.Now() + 200)
		tm.Stop()
		eng.After(1, fn)
		eng.Step()
	}
}

// LegacyCancelReschedule is CancelReschedule on the seed's engine, which
// had no reusable timer handle: each arm allocates a fresh event.
func LegacyCancelReschedule(b *testing.B) {
	b.ReportAllocs()
	eng := legacy.NewEngine()
	cb := func() {}
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eng.After(100, cb)
		eng.Reschedule(ev, eng.Now()+200)
		eng.Cancel(ev)
		eng.After(1, fn)
		eng.Step()
	}
}

// stormHosts and stormSize shape the packet-heavy fabric benchmark.
const (
	stormHosts = 8
	stormSize  = 256
)

// PacketStorm measures the fabric hot path end to end: every host on one
// crossbar sends a packet to its neighbor and the engine drains the
// resulting hop and delivery events. One iteration is one such wave
// (stormHosts packets, two link traversals each).
func PacketStorm(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, stormHosts, fabric.DefaultLinkParams())
	delivered := 0
	for i := 0; i < stormHosts; i++ {
		net.Iface(fabric.NodeID(i)).Deliver = func(*fabric.Packet) { delivered++ }
	}
	pkts := make([]*fabric.Packet, stormHosts)
	for i := range pkts {
		pkts[i] = &fabric.Packet{
			Src:  fabric.NodeID(i),
			Dst:  fabric.NodeID((i + 1) % stormHosts),
			Size: stormSize,
		}
	}
	wave := func() {
		for _, p := range pkts {
			net.Iface(p.Src).Inject(p)
		}
		eng.Run()
	}
	wave() // warm the route cache, arena, and transit pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wave()
	}
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// Multicast storm — the intra-run scaling workload the conservative PDES
// mode targets: one NIC-based broadcast group spanning every node, root
// pumping pipelined multicasts through it.
const (
	mcastGroup = 7
	mcastPort  = 1
)

// MulticastStormOnce builds a cluster (partitioned across `shards` engines
// when shards > 1), installs a binomial broadcast group over all nodes, and
// drives msgs pipelined root multicasts of size bytes. It returns the final
// virtual clock, which the PDES determinism contract makes identical across
// shard counts — callers use that as a cheap cross-check that serial and
// sharded timings measured the same computation.
func MulticastStormOnce(nodes, shards, msgs, size int) sim.Time {
	return MulticastStormOn(fabric.Config{}, nodes, shards, msgs, size)
}

// MulticastStormOn is MulticastStormOnce on an explicit fabric backend; the
// zero Config selects the default Myrinet fabric.
func MulticastStormOn(fc fabric.Config, nodes, shards, msgs, size int) sim.Time {
	virt, _ := MulticastStormStats(fc, nodes, shards, msgs, size)
	return virt
}

// MulticastStormStats is MulticastStormOn returning the shard coordinator's
// statistics as well — window counts, cross-shard events, stretched/inline
// windows, and wall-clock barrier-wait accounting. A serial run (shards <=
// 1) returns a zero ShardStats.
func MulticastStormStats(fc fabric.Config, nodes, shards, msgs, size int) (sim.Time, sim.ShardStats) {
	return stormRun(fc, nodes, shards, msgs, size, nil)
}

// MulticastStormEconomy runs the storm serially with the full ack economy
// enabled — cumulative acks every `every` packets held for up to
// AckEconomyDelay, piggybacking, and NIC tree ack aggregation — and
// returns the final virtual clock. The delay is a package constant rather
// than a parameter so cmd/benchjson's generation and -check paths can
// never disagree about what timeline an ack-on baseline point pins.
func MulticastStormEconomy(fc fabric.Config, nodes, msgs, size, every int) sim.Time {
	virt, _ := stormRun(fc, nodes, 1, msgs, size, []cluster.Option{
		cluster.WithAckCoalescing(every, AckEconomyDelay),
		cluster.WithPiggybackAcks(),
		cluster.WithAckAggregation(),
	})
	return virt
}

// AckEconomyDelay is the delayed-ack hold used by the ack-on storm points:
// long enough to span several packet arrivals at the binomial root's
// replication pace even at 2048+ hosts, so coalescing is count-driven.
const AckEconomyDelay = 2 * sim.Millisecond

// MulticastStormCounters runs the storm with a private metrics registry
// wired through every layer and returns the final virtual clock plus the
// counter snapshot — the ack-economy evaluation reads ack/packet counts
// from it. Extra cluster options (e.g. WithAckEconomy) apply on top of the
// storm defaults. Serial engine only: the registry is unsynchronized.
func MulticastStormCounters(fc fabric.Config, nodes, msgs, size int, extra ...cluster.Option) (sim.Time, metrics.Snapshot) {
	reg := metrics.New()
	opts := append([]cluster.Option{cluster.WithMetrics(reg)}, extra...)
	virt, _ := stormRun(fc, nodes, 1, msgs, size, opts)
	return virt, reg.Snapshot()
}

func stormRun(fc fabric.Config, nodes, shards, msgs, size int, extra []cluster.Option) (sim.Time, sim.ShardStats) {
	opts := []cluster.Option{cluster.WithShards(shards), cluster.WithSeed(1)}
	if fc.Valid() {
		opts = append(opts, cluster.WithFabric(fc))
	}
	opts = append(opts, extra...)
	c := cluster.New(nodes, opts...)
	ports := c.OpenPorts(mcastPort)
	ready := c.InstallGroup(mcastGroup, tree.Binomial(0, c.Members()), mcastPort, mcastPort)
	for i := 1; i < nodes; i++ {
		port := ports[i]
		c.SpawnOn(fabric.NodeID(i), "recv", func(p *sim.Proc) {
			port.ProvideN(msgs+2, size+256)
			for got := 0; got < msgs; got++ {
				port.Recv(p)
			}
		})
	}
	// Phase 1: run to quiescence so the install-completion flags are behind
	// the sharded barrier before being read.
	c.Run()
	if !ready() {
		panic("benchkernel: group install incomplete after quiescence")
	}
	payload := make([]byte, size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < msgs; i++ {
			ext.McastSync(p, ports[0], mcastGroup, payload)
		}
	})
	c.Run()
	end := c.Now()
	var st sim.ShardStats
	if sh := c.Sharded(); sh != nil {
		st = sh.Stats()
	}
	c.Kill()
	return end, st
}

// MulticastStorm returns a benchmark body whose iteration is one full
// storm run (cluster build + group install + msgs multicasts).
func MulticastStorm(nodes, shards, msgs, size int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulticastStormOnce(nodes, shards, msgs, size)
		}
	}
}

// sweepOptions returns the reduced-size options the sweep benchmarks use:
// large enough to dominate goroutine fan-out costs, small enough to run
// in CI.
func sweepOptions(workers int) harness.Options {
	o := harness.DefaultOptions()
	o.Warmup = 2
	o.Iters = 8
	o.SkewIters = 8
	o.Workers = workers
	return o
}

// sweepPoints is the message-size axis the sweep benchmarks measure.
func sweepPoints() []int { return harness.MessageSizes(4096) }

// SweepSerial runs the Figure 5 GM-level sweep with the parallel runner
// forced serial.
func SweepSerial(b *testing.B) {
	o := sweepOptions(1)
	sizes := sweepPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := o.GMSweep(8, sizes); len(s) != len(sizes) {
			b.Fatal("short sweep")
		}
	}
}

// SweepParallel runs the same sweep fanned across GOMAXPROCS workers.
func SweepParallel(b *testing.B) {
	o := sweepOptions(0)
	sizes := sweepPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := o.GMSweep(8, sizes); len(s) != len(sizes) {
			b.Fatal("short sweep")
		}
	}
}
