package mpi

import (
	"bytes"
	"testing"
)

func TestSplitPartitionsByColor(t *testing.T) {
	w := newWorld(t, 8, false)
	sizes := make([]int, 8)
	ranks := make([]int, 8)
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%2, r.ID())
		sizes[r.ID()] = sub.Size()
		ranks[r.ID()] = sub.Rank()
	})
	for i := 0; i < 8; i++ {
		if sizes[i] != 4 {
			t.Fatalf("rank %d in sub-communicator of size %d, want 4", i, sizes[i])
		}
		if ranks[i] != i/2 {
			t.Fatalf("world rank %d got comm rank %d, want %d", i, ranks[i], i/2)
		}
	}
}

func TestSplitNegativeColorReturnsNull(t *testing.T) {
	w := newWorld(t, 4, false)
	var gotNil, gotComm bool
	w.Run(func(r *Rank) {
		color := 0
		if r.ID() == 3 {
			color = -1
		}
		sub := r.World().Split(color, 0)
		if r.ID() == 3 {
			gotNil = sub == nil
		} else if sub != nil && sub.Size() == 3 {
			gotComm = true
		}
	})
	if !gotNil {
		t.Error("negative color did not return a null communicator")
	}
	if !gotComm {
		t.Error("remaining ranks did not form a 3-member communicator")
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	w := newWorld(t, 4, false)
	ranks := make([]int, 4)
	w.Run(func(r *Rank) {
		// Reverse ordering via descending keys.
		sub := r.World().Split(0, -r.ID())
		ranks[r.ID()] = sub.Rank()
	})
	for i := 0; i < 4; i++ {
		if ranks[i] != 3-i {
			t.Fatalf("world rank %d got comm rank %d, want %d", i, ranks[i], 3-i)
		}
	}
}

func TestSubCommBcastNB(t *testing.T) {
	// NIC-based broadcast inside a sub-communicator: the multicast group
	// spans only the member nodes; non-members never hear it.
	w := newWorld(t, 8, true)
	msg := pattern(600)
	results := make(map[int][]byte)
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%2, r.ID())
		buf := make([]byte, len(msg))
		if sub.Rank() == 0 {
			copy(buf, msg)
		}
		results[r.ID()] = sub.Bcast(0, buf)
		r.Barrier()
	})
	for i := 0; i < 8; i++ {
		want := msg
		if i%2 == 1 {
			// Odd communicator's root is world rank 1, whose buffer is the
			// same pattern.
			want = msg
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("rank %d sub-comm bcast corrupted", i)
		}
	}
	// Each node should hold group contexts only for its own communicator.
	for i, n := range w.C.Nodes {
		if got := n.Ext.Groups(); got != 1 {
			t.Fatalf("node %d has %d group entries, want 1 (its sub-communicator's)", i, got)
		}
	}
}

func TestSubCommIsolatedTagSpace(t *testing.T) {
	// The same (src, tag) on two communicators must not cross-match.
	w := newWorld(t, 4, false)
	var fromWorld, fromSub []byte
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%2, r.ID()) // {0,2} and {1,3}
		switch r.ID() {
		case 0:
			r.Send(2, 5, []byte("world"))
			sub.Send(1, 5, []byte("sub")) // comm rank 1 of {0,2} = world 2
		case 2:
			// Receive in the opposite order from the sends; communicator
			// isolation must still route each message correctly.
			fromSub = sub.Recv(0, 5)
			fromWorld = r.Recv(0, 5)
		}
	})
	if string(fromWorld) != "world" || string(fromSub) != "sub" {
		t.Fatalf("communicator tag spaces crossed: world=%q sub=%q", fromWorld, fromSub)
	}
}

func TestSubCommCollectives(t *testing.T) {
	for _, useNB := range []bool{false, true} {
		w := newWorld(t, 6, useNB)
		sums := make([]float64, 6)
		w.Run(func(r *Rank) {
			sub := r.World().Split(r.ID()%2, r.ID())
			sub.Barrier()
			sums[r.ID()] = sub.Allreduce(float64(r.ID()), func(a, b float64) float64 { return a + b })
			sub.Barrier()
		})
		// Evens: 0+2+4 = 6; odds: 1+3+5 = 9.
		for i := 0; i < 6; i++ {
			want := 6.0
			if i%2 == 1 {
				want = 9.0
			}
			if sums[i] != want {
				t.Fatalf("rank %d allreduce = %v, want %v (NB=%v)", i, sums[i], want, useNB)
			}
		}
	}
}

func TestRepeatedSplitsGetDistinctIDs(t *testing.T) {
	w := newWorld(t, 4, false)
	var id1, id2 uint32
	w.Run(func(r *Rank) {
		a := r.World().Split(0, r.ID())
		b := r.World().Split(0, r.ID())
		if r.ID() == 0 {
			id1, id2 = a.ID(), b.ID()
		}
	})
	if id1 == id2 {
		t.Fatalf("two splits share communicator id %d", id1)
	}
}

func TestSplitOfSplit(t *testing.T) {
	w := newWorld(t, 8, true)
	okCount := 0
	w.Run(func(r *Rank) {
		half := r.World().Split(r.ID()/4, r.ID())    // {0..3}, {4..7}
		quarter := half.Split(half.Rank()/2, r.ID()) // pairs
		if quarter.Size() != 2 {
			return
		}
		buf := []byte{0}
		if quarter.Rank() == 0 {
			buf[0] = byte(r.ID() + 100)
		}
		out := quarter.Bcast(0, buf)
		if out[0] >= 100 {
			okCount++
		}
		r.Barrier()
	})
	if okCount != 8 {
		t.Fatalf("nested split broadcast reached %d of 8 ranks", okCount)
	}
}

func TestWorldRankTranslation(t *testing.T) {
	w := newWorld(t, 6, false)
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%3, r.ID())
		if got := sub.WorldRank(sub.Rank()); got != r.ID() {
			t.Errorf("rank %d round-trips to world rank %d", r.ID(), got)
		}
		if sub.ID() == worldCommID {
			t.Error("sub-communicator has the world id")
		}
	})
}

func TestCommFreeRemovesGroupContexts(t *testing.T) {
	w := newWorld(t, 6, true)
	w.Run(func(r *Rank) {
		sub := r.World().Split(0, r.ID()) // everyone, but not world
		buf := make([]byte, 64)
		if sub.Rank() == 0 {
			copy(buf, pattern(64))
		}
		sub.Bcast(0, buf)
		sub.Barrier()
		sub.Free()
	})
	for i, n := range w.C.Nodes {
		if got := n.Ext.Groups(); got != 0 {
			t.Fatalf("node %d still holds %d group entries after Free", i, got)
		}
	}
}

func TestFreeWorldPanics(t *testing.T) {
	w := newWorld(t, 2, false)
	panicked := false
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			r.World().Barrier() // partner for the barrier rank 0 never reaches
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.World().Free()
	})
	if !panicked {
		t.Fatal("freeing MPI_COMM_WORLD did not panic")
	}
}

func TestBcastAfterFreeRecreatesContext(t *testing.T) {
	w := newWorld(t, 4, true)
	results := make([][]byte, 4)
	w.Run(func(r *Rank) {
		sub := r.World().Split(0, r.ID())
		buf := make([]byte, 32)
		if sub.Rank() == 0 {
			copy(buf, pattern(32))
		}
		sub.Bcast(0, buf)
		sub.Barrier()
		sub.Free()
		// Broadcasting again pays the demand-driven creation again.
		buf2 := make([]byte, 32)
		if sub.Rank() == 0 {
			copy(buf2, pattern(32))
		}
		results[r.ID()] = sub.Bcast(0, buf2)
		sub.Barrier()
	})
	for i := range results {
		if !bytes.Equal(results[i], pattern(32)) {
			t.Fatalf("rank %d bcast after Free corrupted", i)
		}
	}
}
