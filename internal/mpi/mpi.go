// Package mpi is an MPICH-GM-like message-passing layer over the GM
// substrate: tagged point-to-point sends with an eager protocol up to
// 16,287 bytes and a rendezvous protocol above it, plus the collectives
// the paper evaluates — MPI_Bcast in both its traditional host-based
// binomial form and the modified, NIC-based-multicast form with
// demand-driven group creation — along with Barrier, Allreduce and
// All-to-all broadcast (the paper's future-work collectives).
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// EagerMax is the largest eager-mode message, the MPICH-GM constant the
// paper cites: broadcasts above it fall back to the host-based algorithm
// (rendezvous transfers use remote DMA in MPICH-GM).
const EagerMax = 16287

// mpiPort is the GM port number the MPI library opens on every node.
const mpiPort gm.PortID = 2

// eagerTokens is how many eager receive buffers the library preposts per
// rank and keeps replenished.
const eagerTokens = 128

// internal tags (user tags must be >= 0).
const (
	tagBarrier int32 = -100 - iota
	tagBcast
	tagCtl
	tagGather
	tagSplit
	tagScatter
	tagAllreduce
	tagAllgather
)

// World binds an MPI job to a simulated cluster: rank i runs on node i.
type World struct {
	C *cluster.Cluster
	// UseNB selects the NIC-based multicast broadcast; false reproduces
	// stock MPICH-GM's host-based binomial broadcast.
	UseNB bool

	ranks []*Rank
}

// NewWorld creates an MPI world over every node of the cluster.
func NewWorld(c *cluster.Cluster, useNB bool) *World {
	w := &World{C: c, UseNB: useNB}
	for i := range c.Nodes {
		r := &Rank{
			w:           w,
			id:          i,
			bcastGroups: make(map[bcastKey]*bcastGroup),
			collGroups:  make(map[uint32]gm.GroupID),
			collTrees:   make(map[uint32]bool),
			splitEpochs: make(map[uint32]int),
		}
		// Port setup schedules host->NIC events; attribute them to the
		// rank's node so their tiebreak keys are shard-stable.
		c.WithNode(fabric.NodeID(i), func() {
			r.port = c.Nodes[i].NIC.OpenPort(mpiPort)
			r.port.ProvideN(eagerTokens, EagerMax+envelopeBytes)
		})
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i (for inspection; programs receive their Rank).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Run spawns prog as one simulated process per rank and drives the
// simulation until the job goes quiet. The engines are left intact for
// inspection; Kill releases any still-parked processes.
func (w *World) Run(prog func(r *Rank)) {
	w.Spawn(prog)
	w.C.Run()
	w.C.Kill()
}

// Spawn launches prog on every rank without running the engine — callers
// that orchestrate several phases drive the engine themselves. Each rank
// runs on its node's engine, so MPI jobs execute unchanged on a sharded
// cluster.
func (w *World) Spawn(prog func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.C.SpawnOn(fabric.NodeID(r.id), fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			r.proc = p
			prog(r)
		})
	}
}

// bcastKey identifies a demand-created multicast group context: one per
// (communicator, world root rank, message-size bucket), mirroring the
// paper's per-(communicator, root) group contexts while keeping the tree
// shape matched to the message size.
type bcastKey struct {
	comm   uint32
	root   int // world rank
	bucket uint8
}

// bcastGroup is a rank's view of one created group context.
type bcastGroup struct {
	gid   gm.GroupID
	recvd int // messages received on this group so far (root: sent)
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	port *gm.Port
	proc *sim.Proc

	unexpected  []*gm.RecvEvent
	sendSeq     map[sendSeqKey]uint32
	bcastGroups map[bcastKey]*bcastGroup
	collGroups  map[uint32]gm.GroupID // comm id -> NIC collective group
	collTrees   map[uint32]bool       // comm ids whose multicast tree is installed
	world       *Comm
	splitEpochs map[uint32]int
}

type sendSeqKey struct {
	peer int
	comm uint32
	tag  int32
}

// ID reports the rank number; Size the world size.
func (r *Rank) ID() int   { return r.id }
func (r *Rank) Size() int { return r.w.Size() }

// Proc exposes the simulated process (for Sleep/Compute in programs).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now reports current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// node maps a rank to its network node.
func (r *Rank) node(rank int) fabric.NodeID { return fabric.NodeID(rank) }

func (r *Rank) nextSeq(comm uint32, peer int, tag int32) uint32 {
	if r.sendSeq == nil {
		r.sendSeq = make(map[sendSeqKey]uint32)
	}
	k := sendSeqKey{peer: peer, comm: comm, tag: tag}
	r.sendSeq[k]++
	return r.sendSeq[k]
}

// replenish reposts one eager receive token after an eager buffer was
// consumed, keeping the preposted pool full — this is why a NIC can accept
// and forward broadcast packets before the host process calls MPI_Bcast.
func (r *Rank) replenish() {
	r.port.Provide(EagerMax + envelopeBytes)
}
