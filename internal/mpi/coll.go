package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Collectives over a communicator. The rank-level methods (Rank.Bcast
// etc.) delegate to MPI_COMM_WORLD.

// Bcast broadcasts data from root to every rank of the world communicator.
func (r *Rank) Bcast(root int, data []byte) []byte { return r.World().Bcast(root, data) }

// Barrier synchronizes the world communicator.
func (r *Rank) Barrier() { r.World().Barrier() }

// Allreduce combines one float64 per world rank.
func (r *Rank) Allreduce(val float64, op func(a, b float64) float64) float64 {
	return r.World().Allreduce(val, op)
}

// AlltoallBcast has every world rank broadcast its buffer to all others.
func (r *Rank) AlltoallBcast(mine []byte) [][]byte { return r.World().AlltoallBcast(mine) }

// Bcast broadcasts data from communicator rank root to every member and
// returns each member's copy (every member must pass a same-length
// buffer, as MPI_Bcast requires a consistent count). With the world's
// UseNB set and an eager-sized message it uses the NIC-based multicast,
// creating the (communicator, root, size-class) group context on first
// use; otherwise — including all rendezvous-sized messages, which
// MPICH-GM moves by remote DMA — it runs the traditional host-based
// binomial broadcast.
func (c *Comm) Bcast(root int, data []byte) []byte {
	if c.Size() == 1 {
		return data
	}
	if c.r.w.UseNB && len(data) <= EagerMax {
		return c.bcastNB(root, data)
	}
	return c.bcastHB(root, data)
}

// bcastHB is MPICH's binomial broadcast over point-to-point messages: each
// process receives from its parent, then forwards to its children — the
// host is involved at every hop.
func (c *Comm) bcastHB(root int, data []byte) []byte {
	n := c.Size()
	rel := (c.my - root + n) % n
	buf := data
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (c.my - mask + n) % n
			buf = c.r.recv(c.id, c.members[parent], tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.my + mask) % n
			c.r.send(c.id, c.members[dst], tagBcast, buf)
		}
		mask >>= 1
	}
	return buf
}

// sizeBucket groups message sizes into power-of-two classes so one group
// context (and its size-matched optimal tree) serves a band of sizes.
func sizeBucket(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(n - 1)))
}

// groupID derives the deterministic multicast group identifier for a
// (communicator, root, size-bucket) context. All members compute it
// locally — no agreement protocol needed.
func groupID(comm uint32, worldRoot int, bucket uint8) gm.GroupID {
	id := gm.GroupID(comm*2654435761 + uint32(worldRoot)*64 + uint32(bucket) + 1)
	if id == 0 {
		id = 1
	}
	return id
}

// bcastNB is the modified broadcast: the root initiates one NIC-based
// multicast; intermediate NICs forward without host involvement; the
// destinations perform blocking receives.
func (c *Comm) bcastNB(root int, data []byte) []byte {
	r := c.r
	key := bcastKey{comm: c.id, root: c.members[root], bucket: sizeBucket(len(data))}
	bg, ok := r.bcastGroups[key]
	if !ok {
		bg = c.createGroupContext(root, key)
	}
	if c.my == root {
		ext := r.w.C.Nodes[r.id].Ext
		ext.Mcast(r.proc, r.port, bg.gid, data)
		return data
	}
	ev := r.awaitGroup(bg.gid)
	out := make([]byte, len(ev.Data))
	copy(out, ev.Data)
	r.proc.Compute(r.w.C.Cfg.HostMemcpyTime(len(ev.Data)))
	r.replenish()
	return out
}

// createGroupContext performs the demand-driven group creation the paper
// describes: "the first broadcast operation from a particular root in a
// communicator will cause a new group context to be created and the group
// membership to be updated into the NIC". The root builds the optimal
// spanning tree over the communicator's nodes for the size class, ships
// it to every member, and waits for all membership updates to complete
// before the first multicast.
func (c *Comm) createGroupContext(root int, key bcastKey) *bcastGroup {
	r := c.r
	gid := groupID(key.comm, key.root, key.bucket)
	if c.my == root {
		repSize := 1 << key.bucket
		if repSize > EagerMax {
			repSize = EagerMax
		}
		tr := r.w.C.Cfg.OptimalTree(r.node(key.root), c.nodes(), repSize)
		payload := encodeTree(uint32(gid), tr)
		if len(payload) > EagerMax {
			panic("mpi: group control message exceeds eager limit")
		}
		for dst := 0; dst < c.Size(); dst++ {
			if dst != root {
				r.sendKind(c.id, c.members[dst], tagCtl, kCtlGroup, payload)
			}
		}
		r.installGroup(gid, tr)
		for dst := 0; dst < c.Size(); dst++ {
			if dst != root {
				r.awaitMatch(c.id, c.members[dst], tagCtl, 0, kCtlAck)
				r.replenish()
			}
		}
	} else {
		ev := r.awaitMatch(c.id, c.members[root], tagCtl, 0, kCtlGroup)
		_, body := decodeEnvelope(ev.Data)
		wireGid, tr := decodeTree(body)
		if gm.GroupID(wireGid) != gid {
			panic("mpi: group id mismatch in control message")
		}
		r.installGroup(gid, tr)
		r.replenish()
		r.sendKind(c.id, c.members[root], tagCtl, kCtlAck, nil)
	}
	bg := &bcastGroup{gid: gid}
	r.bcastGroups[key] = bg
	return bg
}

// installGroup preposts the tree into the local NIC's group table and
// blocks until the firmware confirms the entry is live.
func (r *Rank) installGroup(gid gm.GroupID, tr *tree.Tree) {
	ext := r.w.C.Nodes[r.id].Ext
	done := false
	// The waiter is purely local — the rank's own install callback wakes the
	// rank's own process — so it lives on the rank's engine, which on a
	// sharded cluster is the shard owning this node.
	w := sim.NewWaiter(r.proc.Engine())
	ext.InstallGroup(gid, tr, mpiPort, mpiPort, func() {
		done = true
		w.WakeAll()
	})
	for !done {
		w.Wait(r.proc)
	}
}

// Barrier synchronizes all communicator members. With the world's UseNB
// set it runs NIC-resident (one host request, rounds among the NICs, a
// completion event — see barrierNB); otherwise the hosts run the
// dissemination algorithm themselves.
func (c *Comm) Barrier() {
	if c.Size() == 1 {
		return
	}
	if c.r.w.UseNB {
		c.barrierNB()
		return
	}
	c.barrierHB()
}

// barrierHB is the host-based dissemination barrier: ceil(log2 n) rounds
// of point-to-point messages, the host paying send and receive work in
// every round.
func (c *Comm) barrierHB() {
	n := c.Size()
	for k := 1; k < n; k <<= 1 {
		dst := (c.my + k) % n
		src := (c.my - k + n) % n
		c.r.send(c.id, c.members[dst], tagBarrier, nil)
		c.r.recv(c.id, c.members[src], tagBarrier)
	}
}

// Allreduce combines one float64 per member with op and returns the
// result on every member — one of the paper's future-work NIC-multicast
// clients. Values reduce to communicator rank 0 along a binomial tree,
// then broadcast. This closure form is permanently host-based: an opaque
// Go function cannot run in firmware, and the LANai has no FPU for
// float64 arithmetic regardless. Use AllreduceVec with a typed operator
// (coll.OpSum/OpMin/OpMax over int64 vectors) for the NIC-offloaded path.
func (c *Comm) Allreduce(val float64, op func(a, b float64) float64) float64 {
	n := c.Size()
	acc := val
	mask := 1
	for mask < n {
		if c.my&mask != 0 {
			c.r.send(c.id, c.members[c.my-mask], tagGather, encodeF64(acc))
			break
		}
		if c.my+mask < n {
			other := decodeF64(c.r.recv(c.id, c.members[c.my+mask], tagGather))
			acc = op(acc, other)
		}
		mask <<= 1
	}
	return decodeF64(c.Bcast(0, encodeF64(acc)))
}

// AlltoallBcast has every member broadcast its buffer to all others and
// returns the buffers in communicator-rank order — the paper's "Alltoall
// broadcast".
func (c *Comm) AlltoallBcast(mine []byte) [][]byte {
	out := make([][]byte, c.Size())
	for root := 0; root < c.Size(); root++ {
		buf := mine
		if root != c.my {
			buf = make([]byte, len(mine))
		}
		out[root] = c.Bcast(root, buf)
	}
	return out
}

func encodeF64(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func decodeF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Gather collects each member's equal-length buffer at the communicator
// root, which returns them in rank order (other members return nil) —
// MPI_Gather along a binomial tree with concatenated subtree payloads.
func (c *Comm) Gather(root int, mine []byte) [][]byte {
	n := c.Size()
	if n == 1 {
		return [][]byte{mine}
	}
	chunk := len(mine)
	rel := (c.my - root + n) % n
	// Accumulate this subtree's chunks in relative-rank order: receiving
	// from children nearest-first (mask ascending) appends the spans
	// [rel+1], [rel+2, rel+4), ... contiguously.
	buf := append(make([]byte, 0, chunk*n), mine...)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (c.my - mask + n) % n
			c.r.send(c.id, c.members[parent], tagGather, buf)
			return nil
		}
		if rel+mask < n {
			child := (c.my + mask) % n
			buf = append(buf, c.r.recv(c.id, c.members[child], tagGather)...)
		}
		mask <<= 1
	}
	// The root holds relative-rank order; rotate to absolute rank order.
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[(root+i)%n] = buf[i*chunk : (i+1)*chunk]
	}
	return out
}

// Scatter distributes the root's per-rank buffers (all equal length):
// each member returns its own — MPI_Scatter along the binomial broadcast
// tree, each subtree receiving only its span.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	n := c.Size()
	if n == 1 {
		return parts[0]
	}
	rel := (c.my - root + n) % n
	var span []byte
	var chunk, startMask int
	if rel == 0 {
		if len(parts) != n {
			panic(fmt.Errorf("%w: need one part per rank", ErrBadScatter))
		}
		chunk = len(parts[0])
		span = make([]byte, 0, chunk*n)
		for i := 0; i < n; i++ {
			p := parts[(root+i)%n] // relative-rank order
			if len(p) != chunk {
				panic(fmt.Errorf("%w: parts must be equal length", ErrBadScatter))
			}
			span = append(span, p...)
		}
		startMask = 1
		for startMask < n {
			startMask <<= 1
		}
		startMask >>= 1
	} else {
		mask := 1
		for rel&mask == 0 {
			mask <<= 1
		}
		span = c.r.recv(c.id, c.members[(c.my-mask+n)%n], tagScatter)
		width := min(mask, n-rel)
		chunk = len(span) / width
		startMask = mask >> 1
	}
	// My span covers relative ranks [rel, rel+width); the child at rel+m
	// owns the chunks [m, m+min(m, n-(rel+m))) of it. Cut farthest-first.
	for m := startMask; m > 0; m >>= 1 {
		if rel+m < n {
			cnt := min(m, n-(rel+m))
			child := (c.my + m) % n
			c.r.send(c.id, c.members[child], tagScatter, span[m*chunk:(m+cnt)*chunk])
			span = span[:m*chunk]
		}
	}
	return span[:chunk]
}

// Gather and Scatter on the world communicator.
func (r *Rank) Gather(root int, mine []byte) [][]byte { return r.World().Gather(root, mine) }
func (r *Rank) Scatter(root int, parts [][]byte) []byte {
	return r.World().Scatter(root, parts)
}

// Reduce combines one float64 per member at the communicator root, which
// alone receives the result (others get 0) — MPI_Reduce along the
// binomial tree.
func (c *Comm) Reduce(root int, val float64, op func(a, b float64) float64) float64 {
	n := c.Size()
	rel := (c.my - root + n) % n
	acc := val
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (c.my - mask + n) % n
			c.r.send(c.id, c.members[parent], tagGather, encodeF64(acc))
			return 0
		}
		if rel+mask < n {
			child := (c.my + mask) % n
			acc = op(acc, decodeF64(c.r.recv(c.id, c.members[child], tagGather)))
		}
		mask <<= 1
	}
	return acc
}

// Reduce on the world communicator.
func (r *Rank) Reduce(root int, val float64, op func(a, b float64) float64) float64 {
	return r.World().Reduce(root, val, op)
}
