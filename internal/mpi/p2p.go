package mpi

import (
	"fmt"

	"repro/internal/gm"
)

// Point-to-point protocol. Eager messages (<= EagerMax) are sent
// immediately and copied out of the bounce buffer at the receiver (the
// copy cost causes the paper's dip at 16,287 bytes). Larger messages use
// rendezvous: RTS, then CTS once the receiver has posted an exactly-sized
// landing buffer, then the bulk data — the shape of MPICH-GM's remote-DMA
// rendezvous. All matching is on (communicator, source, tag), in order.

// Send transmits data to world rank dst on MPI_COMM_WORLD.
func (r *Rank) Send(dst int, tag int32, data []byte) {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	r.send(worldCommID, dst, tag, data)
}

// Recv blocks for a message from world rank src on MPI_COMM_WORLD and
// returns its payload in a fresh buffer.
func (r *Rank) Recv(src int, tag int32) []byte {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	return r.recv(worldCommID, src, tag)
}

// Sendrecv exchanges messages with two world-rank peers (send first).
func (r *Rank) Sendrecv(dst int, sdata []byte, src int, tag int32) []byte {
	r.send(worldCommID, dst, tag, sdata)
	return r.recv(worldCommID, src, tag)
}

func (r *Rank) send(comm uint32, dst int, tag int32, data []byte) {
	if dst == r.id {
		panic(ErrSelfSend)
	}
	seq := r.nextSeq(comm, dst, tag)
	if len(data) <= EagerMax {
		r.port.Send(r.proc, r.node(dst), mpiPort,
			encodeEnvelope(envelope{kEager, comm, tag, seq}, data))
		return
	}
	// Rendezvous: RTS carries the length; the CTS answers with the
	// receiver's registered landing region; the bulk data then moves as a
	// remote-DMA put (gm_directed_send), followed by a FIN since directed
	// writes are silent at the receiver.
	r.port.Send(r.proc, r.node(dst), mpiPort,
		encodeEnvelope(envelope{kRTS, comm, tag, seq}, encodeU32(uint32(len(data)))))
	cts := r.awaitMatch(comm, dst, tag, seq, kCTS)
	_, ctsBody := decodeEnvelope(cts.Data)
	region := gm.RegionID(decodeU64(ctsBody))
	r.replenish() // the CTS consumed an eager token
	r.port.DirectedSendSync(r.proc, r.node(dst), mpiPort, region, 0, data)
	// The FIN echoes the rendezvous sequence number so the receiver can
	// pair it with its CTS.
	r.port.Send(r.proc, r.node(dst), mpiPort,
		encodeEnvelope(envelope{kFin, comm, tag, seq}, nil))
}

func (r *Rank) recv(comm uint32, src int, tag int32) []byte {
	ev := r.awaitMatch(comm, src, tag, 0, kEager, kRTS)
	env, body := decodeEnvelope(ev.Data)
	switch env.kind {
	case kEager:
		out := make([]byte, len(body))
		copy(out, body)
		// Copying from the bounce buffer to the final location is host CPU
		// work — the cost behind the 16,287-byte dip in Figure 4.
		r.proc.Compute(r.w.C.Cfg.HostMemcpyTime(len(body)))
		r.replenish()
		return out
	case kRTS:
		size := int(decodeU32(body))
		// Register the landing region and clear the sender to put.
		region, landing := r.port.RegisterRegion(size)
		r.replenish() // the RTS consumed an eager token
		r.port.Send(r.proc, r.node(src), mpiPort,
			encodeEnvelope(envelope{kCTS, comm, tag, env.seq}, encodeU64(uint64(region))))
		r.awaitMatch(comm, src, tag, env.seq, kFin)
		r.replenish() // ... as did the FIN
		// The remote DMA landed in place: no bounce-buffer copy charged.
		r.port.DeregisterRegion(region)
		return landing
	default:
		panic(fmt.Sprintf("mpi: impossible match kind %d", env.kind))
	}
}

// sendKind posts an internal protocol message with an explicit kind,
// bypassing the user-facing eager/rendezvous selection.
func (r *Rank) sendKind(comm uint32, dst int, tag int32, kind msgKind, body []byte) {
	seq := r.nextSeq(comm, dst, tag)
	r.port.Send(r.proc, r.node(dst), mpiPort,
		encodeEnvelope(envelope{kind, comm, tag, seq}, body))
}

// awaitMatch returns the first message from (comm, src, tag) whose kind is
// one of kinds (and, when seq != 0, whose sequence number matches),
// consulting the unexpected queue first and then blocking on the GM port.
func (r *Rank) awaitMatch(comm uint32, src int, tag int32, seq uint32, kinds ...msgKind) *gm.RecvEvent {
	match := func(ev *gm.RecvEvent) bool {
		if ev.Group != 0 || ev.Src != r.node(src) {
			return false
		}
		env, _ := decodeEnvelope(ev.Data)
		if env.comm != comm || env.tag != tag {
			return false
		}
		if seq != 0 && env.seq != seq {
			return false
		}
		for _, k := range kinds {
			if env.kind == k {
				return true
			}
		}
		return false
	}
	for i, ev := range r.unexpected {
		if match(ev) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return ev
		}
	}
	for {
		ev := r.port.Recv(r.proc)
		if match(ev) {
			return ev
		}
		r.unexpected = append(r.unexpected, ev)
	}
}

// awaitGroup returns the next message delivered on the given multicast
// group, consulting the unexpected queue first.
func (r *Rank) awaitGroup(gid gm.GroupID) *gm.RecvEvent {
	for i, ev := range r.unexpected {
		if ev.Group == gid {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return ev
		}
	}
	for {
		ev := r.port.Recv(r.proc)
		if ev.Group == gid {
			return ev
		}
		r.unexpected = append(r.unexpected, ev)
	}
}
