package mpi

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newWorld(t *testing.T, nodes int, useNB bool) *World {
	t.Helper()
	return NewWorld(cluster.New(nodes), useNB)
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*167 + 3)
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	w := newWorld(t, 2, false)
	msg := pattern(1000)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 5, msg)
		case 1:
			got = r.Recv(0, 5)
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("eager message corrupted")
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	w := newWorld(t, 2, false)
	msg := pattern(100_000) // far beyond EagerMax
	var got []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 9, msg)
		case 1:
			got = r.Recv(0, 9)
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("rendezvous message corrupted")
	}
}

func TestEagerMaxBoundary(t *testing.T) {
	for _, size := range []int{EagerMax, EagerMax + 1} {
		size := size
		w := newWorld(t, 2, false)
		msg := pattern(size)
		var got []byte
		w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, 1, msg)
			case 1:
				got = r.Recv(0, 1)
			}
		})
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d corrupted across the eager/rendezvous boundary", size)
		}
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := newWorld(t, 2, false)
	var first, second []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, []byte("tag-one"))
			r.Send(1, 2, []byte("tag-two"))
		case 1:
			// Receive in reverse tag order; the unexpected queue must hold
			// the earlier message.
			second = r.Recv(0, 2)
			first = r.Recv(0, 1)
		}
	})
	if string(first) != "tag-one" || string(second) != "tag-two" {
		t.Fatalf("tag matching broken: %q %q", first, second)
	}
}

func TestUnexpectedMessagesBuffered(t *testing.T) {
	w := newWorld(t, 2, false)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, pattern(64))
		case 1:
			r.Proc().Sleep(5 * sim.Millisecond) // arrive long after the message
			got = r.Recv(0, 7)
		}
	})
	if !bytes.Equal(got, pattern(64)) {
		t.Fatal("late receiver missed buffered message")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newWorld(t, 7, false)
	entry := make([]sim.Time, 7)
	exit := make([]sim.Time, 7)
	w.Run(func(r *Rank) {
		r.Proc().Sleep(sim.Time(r.ID()) * 100 * sim.Microsecond)
		entry[r.ID()] = r.Now()
		r.Barrier()
		exit[r.ID()] = r.Now()
	})
	var lastEntry sim.Time
	for _, e := range entry {
		if e > lastEntry {
			lastEntry = e
		}
	}
	for i, x := range exit {
		if x < lastEntry {
			t.Fatalf("rank %d left the barrier at %v before rank entry %v", i, x, lastEntry)
		}
	}
}

func testBcast(t *testing.T, nodes, size, root int, useNB bool) {
	t.Helper()
	w := newWorld(t, nodes, useNB)
	msg := pattern(size)
	results := make([][]byte, nodes)
	w.Run(func(r *Rank) {
		var buf []byte
		if r.ID() == root {
			buf = msg
		} else {
			buf = make([]byte, size)
		}
		results[r.ID()] = r.Bcast(root, buf)
	})
	for i, got := range results {
		if !bytes.Equal(got, msg) {
			t.Fatalf("rank %d bcast result corrupted (nodes=%d size=%d NB=%v)", i, nodes, size, useNB)
		}
	}
}

func TestBcastHostBased(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 8, 13, 16} {
		for _, size := range []int{1, 100, 4096, 16287} {
			testBcast(t, nodes, size, 0, false)
		}
	}
}

func TestBcastNICBased(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 8, 13, 16} {
		for _, size := range []int{1, 100, 4096, 16287} {
			testBcast(t, nodes, size, 0, true)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	testBcast(t, 8, 512, 5, false)
	testBcast(t, 8, 512, 5, true)
}

func TestBcastRendezvousFallsBackToHostBased(t *testing.T) {
	w := newWorld(t, 4, true)
	msg := pattern(50_000)
	results := make([][]byte, 4)
	w.Run(func(r *Rank) {
		buf := msg
		if r.ID() != 0 {
			buf = make([]byte, len(msg))
		}
		results[r.ID()] = r.Bcast(0, buf)
	})
	for i := range results {
		if !bytes.Equal(results[i], msg) {
			t.Fatalf("rank %d large bcast corrupted", i)
		}
	}
	// No group contexts should have been created.
	for _, n := range w.C.Nodes {
		if n.Ext.Groups() != 0 {
			t.Fatal("rendezvous-size bcast created a multicast group")
		}
	}
}

func TestBcastGroupContextReused(t *testing.T) {
	w := newWorld(t, 8, true)
	w.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			buf := make([]byte, 256)
			if r.ID() == 0 {
				copy(buf, pattern(256))
			}
			r.Bcast(0, buf)
			r.Barrier()
		}
	})
	for _, n := range w.C.Nodes {
		if got := n.Ext.Groups(); got != 1 {
			t.Fatalf("node %v has %d group contexts after 5 same-size bcasts, want 1", n.ID, got)
		}
	}
}

func TestBcastDistinctRootsGetDistinctGroups(t *testing.T) {
	w := newWorld(t, 4, true)
	w.Run(func(r *Rank) {
		for root := 0; root < 4; root++ {
			buf := make([]byte, 64)
			if r.ID() == root {
				copy(buf, pattern(64))
			}
			r.Bcast(root, buf)
			r.Barrier()
		}
	})
	for _, n := range w.C.Nodes {
		if got := n.Ext.Groups(); got != 4 {
			t.Fatalf("node %v has %d group contexts, want 4", n.ID, got)
		}
	}
}

func TestBcastRepeatedBackToBack(t *testing.T) {
	// Many NB bcasts without barriers: ordering within the group plus
	// sufficient preposted tokens must keep every rank consistent.
	const rounds = 20
	w := newWorld(t, 8, true)
	sums := make([]int, 8)
	w.Run(func(r *Rank) {
		for i := 0; i < rounds; i++ {
			buf := make([]byte, 128)
			if r.ID() == 0 {
				buf[0] = byte(i)
			}
			out := r.Bcast(0, buf)
			sums[r.ID()] += int(out[0])
		}
	})
	want := rounds * (rounds - 1) / 2
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d accumulated %d, want %d (lost or reordered bcasts)", i, s, want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, useNB := range []bool{false, true} {
		w := newWorld(t, 9, useNB)
		results := make([]float64, 9)
		w.Run(func(r *Rank) {
			results[r.ID()] = r.Allreduce(float64(r.ID()+1), func(a, b float64) float64 { return a + b })
		})
		for i, got := range results {
			if got != 45 {
				t.Fatalf("rank %d allreduce = %v, want 45 (NB=%v)", i, got, useNB)
			}
		}
	}
}

func TestAlltoallBcast(t *testing.T) {
	for _, useNB := range []bool{false, true} {
		w := newWorld(t, 5, useNB)
		results := make([][][]byte, 5)
		w.Run(func(r *Rank) {
			mine := []byte{byte(r.ID()), 0xAA, 0xBB, 0xCC}
			results[r.ID()] = r.AlltoallBcast(mine)
		})
		for rank, all := range results {
			if len(all) != 5 {
				t.Fatalf("rank %d got %d buffers", rank, len(all))
			}
			for root, buf := range all {
				if buf[0] != byte(root) {
					t.Fatalf("rank %d slot %d has wrong origin %d (NB=%v)", rank, root, buf[0], useNB)
				}
			}
		}
	}
}

func TestNegativeUserTagPanics(t *testing.T) {
	w := newWorld(t, 2, false)
	var panicked bool
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Send(1, -1, nil)
	})
	if !panicked {
		t.Fatal("negative user tag accepted")
	}
}

func TestSingletonWorld(t *testing.T) {
	w := newWorld(t, 1, true)
	w.Run(func(r *Rank) {
		r.Barrier()
		out := r.Bcast(0, []byte{42})
		if out[0] != 42 {
			t.Error("singleton bcast broken")
		}
	})
}

func TestWireEnvelopeRoundTrip(t *testing.T) {
	e := envelope{kRTS, 77, 1234, 56}
	enc := encodeEnvelope(e, []byte("payload"))
	got, body := decodeEnvelope(enc)
	if got != e || string(body) != "payload" {
		t.Fatalf("envelope round trip: %+v %q", got, body)
	}
}

func TestTreeEncodingRoundTrip(t *testing.T) {
	cfg := cluster.DefaultConfig(16)
	tr := cfg.OptimalTree(3, cluster.NewFromConfig(cfg).Members(), 256)
	enc := encodeTree(77, tr)
	gid, back := decodeTree(enc)
	if gid != 77 {
		t.Fatalf("gid %d, want 77", gid)
	}
	if back.Root != tr.Root || back.Size() != tr.Size() || back.Depth() != tr.Depth() {
		t.Fatal("tree shape changed across encoding")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		a, b := tr.Children(n), back.Children(n)
		if len(a) != len(b) {
			t.Fatalf("node %v children differ", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %v child order changed: %v vs %v", n, a, b)
			}
		}
	}
}

func TestSizeBucket(t *testing.T) {
	cases := []struct {
		n      int
		bucket uint8
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {4096, 12}, {16287, 14},
	}
	for _, c := range cases {
		if got := sizeBucket(c.n); got != c.bucket {
			t.Errorf("sizeBucket(%d) = %d, want %d", c.n, got, c.bucket)
		}
	}
}

func TestGather(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 8, 13} {
		for _, root := range []int{0, 1} {
			if root >= nodes {
				continue
			}
			w := newWorld(t, nodes, false)
			var got [][]byte
			w.Run(func(r *Rank) {
				mine := []byte{byte(r.ID()), byte(r.ID() * 3)}
				res := r.Gather(root, mine)
				if r.ID() == root {
					got = res
				} else if res != nil {
					t.Errorf("non-root %d got a gather result", r.ID())
				}
			})
			if len(got) != nodes {
				t.Fatalf("nodes=%d root=%d: gathered %d parts", nodes, root, len(got))
			}
			for i, part := range got {
				if part[0] != byte(i) || part[1] != byte(i*3) {
					t.Fatalf("nodes=%d root=%d: slot %d holds %v", nodes, root, i, part)
				}
			}
		}
	}
}

func TestScatter(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 8, 13} {
		for _, root := range []int{0, 2} {
			if root >= nodes {
				continue
			}
			w := newWorld(t, nodes, false)
			results := make([][]byte, nodes)
			w.Run(func(r *Rank) {
				var parts [][]byte
				if r.ID() == root {
					parts = make([][]byte, nodes)
					for i := range parts {
						parts[i] = []byte{byte(i), byte(i * 7), 0xEE}
					}
				}
				results[r.ID()] = r.Scatter(root, parts)
			})
			for i, res := range results {
				if len(res) != 3 || res[0] != byte(i) || res[1] != byte(i*7) {
					t.Fatalf("nodes=%d root=%d: rank %d scattered %v", nodes, root, i, res)
				}
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const nodes = 7
	w := newWorld(t, nodes, false)
	ok := true
	w.Run(func(r *Rank) {
		mine := []byte{byte(r.ID() + 50)}
		all := r.Gather(0, mine)
		var back []byte
		if r.ID() == 0 {
			back = r.Scatter(0, all)
		} else {
			back = r.Scatter(0, nil)
		}
		if back[0] != byte(r.ID()+50) {
			ok = false
		}
	})
	if !ok {
		t.Fatal("gather->scatter did not round-trip")
	}
}

func TestGatherOnSubComm(t *testing.T) {
	w := newWorld(t, 6, false)
	var evens [][]byte
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%2, r.ID())
		res := sub.Gather(0, []byte{byte(r.ID())})
		if r.ID() == 0 {
			evens = res
		}
	})
	if len(evens) != 3 || evens[0][0] != 0 || evens[1][0] != 2 || evens[2][0] != 4 {
		t.Fatalf("sub-communicator gather = %v", evens)
	}
}

func TestIsendIrecvEager(t *testing.T) {
	w := newWorld(t, 2, false)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			req := r.Isend(1, 3, pattern(500))
			req.Wait()
		case 1:
			req := r.Irecv(0, 3)
			got = req.Wait()
		}
	})
	if !bytes.Equal(got, pattern(500)) {
		t.Fatal("nonblocking eager transfer corrupted")
	}
}

func TestIrecvOverlapsComputation(t *testing.T) {
	// The message arrives while the receiver computes; Wait afterwards
	// must return almost immediately — the NIC accepted it into the
	// preposted buffers without the host.
	w := newWorld(t, 2, false)
	var computeEnd, waitEnd sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 3, pattern(1000))
		case 1:
			req := r.Irecv(0, 3)
			r.Proc().Compute(500 * sim.Microsecond)
			computeEnd = r.Now()
			req.Wait()
			waitEnd = r.Now()
		}
	})
	if gap := waitEnd - computeEnd; gap > 5*sim.Microsecond {
		t.Fatalf("Wait took %v after compute; no overlap achieved", gap)
	}
}

func TestRequestTest(t *testing.T) {
	w := newWorld(t, 2, false)
	var before, afterDelay bool
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Proc().Sleep(100 * sim.Microsecond)
			r.Send(1, 9, []byte{1})
		case 1:
			req := r.Irecv(0, 9)
			before = req.Test()
			r.Proc().Sleep(300 * sim.Microsecond)
			afterDelay = req.Test()
			req.Wait()
		}
	})
	if before {
		t.Fatal("Test reported completion before the message existed")
	}
	if !afterDelay {
		t.Fatal("Test missed an arrived message")
	}
}

func TestIsendRendezvousCompletesInWait(t *testing.T) {
	w := newWorld(t, 2, false)
	msg := pattern(40_000)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			req := r.Isend(1, 2, msg)
			if req.Test() {
				t.Error("rendezvous Isend reported done before Wait")
			}
			req.Wait()
		case 1:
			got = r.Recv(0, 2)
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("rendezvous Isend corrupted")
	}
}

func TestWaitall(t *testing.T) {
	w := newWorld(t, 3, false)
	var got [][]byte
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			got = Waitall(r.Irecv(1, 1), r.Irecv(2, 1))
		default:
			r.Send(0, 1, []byte{byte(r.ID())})
		}
	})
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("Waitall results %v", got)
	}
}

func TestIrecvNegativeTagPanics(t *testing.T) {
	w := newWorld(t, 2, false)
	panicked := false
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Irecv(1, -3)
	})
	if !panicked {
		t.Fatal("negative-tag Irecv accepted")
	}
}

func TestReduceAtRoot(t *testing.T) {
	for _, root := range []int{0, 3} {
		w := newWorld(t, 7, false)
		results := make([]float64, 7)
		w.Run(func(r *Rank) {
			results[r.ID()] = r.Reduce(root, float64(r.ID()+1), func(a, b float64) float64 { return a + b })
		})
		for i, v := range results {
			if i == root && v != 28 {
				t.Fatalf("root %d reduce = %v, want 28", root, v)
			}
			if i != root && v != 0 {
				t.Fatalf("non-root %d got %v", i, v)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	w := newWorld(t, 5, false)
	var got float64
	w.Run(func(r *Rank) {
		v := r.Reduce(0, float64(r.ID()*10), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if r.ID() == 0 {
			got = v
		}
	})
	if got != 40 {
		t.Fatalf("reduce max = %v, want 40", got)
	}
}

func TestWorldDeterministicReplay(t *testing.T) {
	run := func() uint64 {
		c := cluster.New(6)
		w := NewWorld(c, true)
		w.Run(func(r *Rank) {
			for i := 0; i < 4; i++ {
				buf := make([]byte, 256)
				if r.ID() == i%3 {
					copy(buf, pattern(256))
				}
				r.Bcast(i%3, buf)
				r.Allreduce(float64(r.ID()), func(a, b float64) float64 { return a + b })
			}
		})
		return c.Eng.EventsFired()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("MPI replay diverged: %d vs %d events", a, b)
	}
}
