package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/tree"
)

// Point-to-point messages carry a small MPI envelope ahead of the user
// payload; multicast broadcast data rides groups raw (group identity and
// ordering replace the envelope).

type msgKind uint8

const (
	kEager    msgKind = iota + 1 // eager data: envelope + payload
	kRTS                         // rendezvous request-to-send: envelope + length
	kCTS                         // rendezvous clear-to-send: envelope
	kRData                       // rendezvous data: envelope + payload
	kCtlGroup                    // group-creation control: envelope + tree
	kCtlAck                      // group-creation acknowledgment
	kFin                         // rendezvous completion: the directed write landed
)

const envelopeBytes = 1 + 4 + 4 + 4 // kind, comm, tag, seq-within-(src,comm,tag)

// envelope is the MPI matching header. comm isolates communicators: a
// message sent on one communicator can never match a receive on another.
type envelope struct {
	kind msgKind
	comm uint32
	tag  int32
	seq  uint32 // per (sender, comm, tag) counter; pairs RTS/CTS/RData legs
}

func encodeEnvelope(e envelope, body []byte) []byte {
	out := make([]byte, envelopeBytes+len(body))
	out[0] = byte(e.kind)
	binary.LittleEndian.PutUint32(out[1:], e.comm)
	binary.LittleEndian.PutUint32(out[5:], uint32(e.tag))
	binary.LittleEndian.PutUint32(out[9:], e.seq)
	copy(out[envelopeBytes:], body)
	return out
}

func decodeEnvelope(data []byte) (envelope, []byte) {
	if len(data) < envelopeBytes {
		panic(fmt.Sprintf("mpi: short message (%d bytes)", len(data)))
	}
	return envelope{
		kind: msgKind(data[0]),
		comm: binary.LittleEndian.Uint32(data[1:]),
		tag:  int32(binary.LittleEndian.Uint32(data[5:])),
		seq:  binary.LittleEndian.Uint32(data[9:]),
	}, data[envelopeBytes:]
}

func encodeU32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func decodeU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

func encodeU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func decodeU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// encodeTree flattens a spanning tree into (root, count, [node, parent]...)
// for the group-creation control message.
func encodeTree(gid uint32, tr *tree.Tree) []byte {
	parents := tr.Parents()
	out := make([]byte, 4+4+4+8*len(parents))
	binary.LittleEndian.PutUint32(out[0:], gid)
	binary.LittleEndian.PutUint32(out[4:], uint32(tr.Root))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(parents)))
	i := 12
	for _, n := range tr.Nodes() { // deterministic order
		p, ok := tr.Parent(n)
		if !ok {
			continue
		}
		binary.LittleEndian.PutUint32(out[i:], uint32(n))
		binary.LittleEndian.PutUint32(out[i+4:], uint32(p))
		i += 8
	}
	return out
}

func decodeTree(b []byte) (gid uint32, tr *tree.Tree) {
	gid = binary.LittleEndian.Uint32(b[0:])
	root := fabric.NodeID(binary.LittleEndian.Uint32(b[4:]))
	n := int(binary.LittleEndian.Uint32(b[8:]))
	parents := make(map[fabric.NodeID]fabric.NodeID, n)
	i := 12
	for k := 0; k < n; k++ {
		c := fabric.NodeID(binary.LittleEndian.Uint32(b[i:]))
		p := fabric.NodeID(binary.LittleEndian.Uint32(b[i+4:]))
		parents[c] = p
		i += 8
	}
	return gid, tree.FromParents(root, parents)
}
