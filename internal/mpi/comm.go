package mpi

import (
	"hash/fnv"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Comm is a communicator: an ordered group of world ranks with its own
// rank numbering, tag space, and (under the NIC-based broadcast) its own
// demand-created multicast group contexts — the "vast number of possible
// combinations of communicators and root nodes" the paper's demand-driven
// design exists for. A Comm value is one rank's view of the communicator.
type Comm struct {
	r       *Rank
	id      uint32
	members []int // world ranks; index is the communicator rank
	my      int   // this process's communicator rank
}

// worldCommID is the id of MPI_COMM_WORLD.
const worldCommID uint32 = 0

// World returns this rank's view of MPI_COMM_WORLD.
func (r *Rank) World() *Comm {
	if r.world == nil {
		members := make([]int, r.w.Size())
		for i := range members {
			members[i] = i
		}
		r.world = &Comm{r: r, id: worldCommID, members: members, my: r.id}
	}
	return r.world
}

// Rank reports the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.my }

// Size reports the communicator's member count.
func (c *Comm) Size() int { return len(c.members) }

// ID reports the communicator identifier (equal at every member).
func (c *Comm) ID() uint32 { return c.id }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(i int) int { return c.members[i] }

// nodes returns the member nodes in communicator-rank order.
func (c *Comm) nodes() []fabric.NodeID {
	out := make([]fabric.NodeID, len(c.members))
	for i, m := range c.members {
		out[i] = fabric.NodeID(m)
	}
	return out
}

// Send transmits data to communicator rank dst with a tag.
func (c *Comm) Send(dst int, tag int32, data []byte) {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	c.r.send(c.id, c.members[dst], tag, data)
}

// Recv blocks for a message from communicator rank src with a tag.
func (c *Comm) Recv(src int, tag int32) []byte {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	return c.r.recv(c.id, c.members[src], tag)
}

// Sendrecv posts a send to dst then receives from src (both communicator
// ranks) on the same tag.
func (c *Comm) Sendrecv(dst int, sdata []byte, src int, tag int32) []byte {
	c.r.send(c.id, c.members[dst], tag, sdata)
	return c.r.recv(c.id, c.members[src], tag)
}

// splitRecord is one member's contribution to a Split exchange.
type splitRecord struct {
	color, key, world int
}

// Split partitions the communicator like MPI_Comm_split: members calling
// with the same color form a new communicator, ordered by (key, world
// rank). A negative color returns nil (MPI_COMM_NULL). Split is
// collective: every member must call it, in the same order relative to
// other collectives on this communicator.
func (c *Comm) Split(color, key int) *Comm {
	// Epoch makes repeated splits of the same communicator produce
	// distinct child identifiers; it advances identically at every member
	// because Split is collective.
	epoch := c.r.splitEpochs[c.id]
	c.r.splitEpochs[c.id] = epoch + 1

	// Allgather everyone's (color, key) with a gather to communicator
	// rank 0 and one host-based broadcast back — a control exchange, so
	// it must not pollute the multicast group tables.
	mine := encodeSplit(splitRecord{color: color, key: key, world: c.r.id})
	blob := make([]byte, 12*c.Size())
	if c.my == 0 {
		copy(blob[:12], mine)
		for i := 1; i < c.Size(); i++ {
			copy(blob[12*i:], c.r.recv(c.id, c.members[i], tagSplit))
		}
	} else {
		c.r.send(c.id, c.members[0], tagSplit, mine)
	}
	blob = c.bcastHB(0, blob)
	records := make([]splitRecord, c.Size())
	for i := range records {
		records[i] = decodeSplit(blob[12*i:])
	}

	if color < 0 {
		return nil
	}
	var group []splitRecord
	for _, rec := range records {
		if rec.color == color {
			group = append(group, rec)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].world < group[j].world
	})
	members := make([]int, len(group))
	my := -1
	for i, rec := range group {
		members[i] = rec.world
		if rec.world == c.r.id {
			my = i
		}
	}
	return &Comm{r: c.r, id: childCommID(c.id, epoch, color), members: members, my: my}
}

// childCommID derives the deterministic identifier all members agree on.
func childCommID(parent uint32, epoch, color int) uint32 {
	h := fnv.New32a()
	var b [12]byte
	put32 := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put32(0, parent)
	put32(4, uint32(epoch))
	put32(8, uint32(color))
	h.Write(b[:])
	id := h.Sum32()
	if id == worldCommID {
		id = 1
	}
	return id
}

func encodeSplit(r splitRecord) []byte {
	out := make([]byte, 12)
	for i, v := range []int{r.color, r.key, r.world} {
		out[i*4] = byte(v)
		out[i*4+1] = byte(v >> 8)
		out[i*4+2] = byte(v >> 16)
		out[i*4+3] = byte(v >> 24)
	}
	return out
}

func decodeSplit(b []byte) splitRecord {
	get := func(i int) int {
		return int(int32(uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24))
	}
	return splitRecord{color: get(0), key: get(1), world: get(2)}
}

// Free releases the communicator's demand-created multicast group
// contexts from the local NIC, the teardown mirror of the paper's
// demand-driven creation. Free is collective and must follow a barrier so
// every member's outstanding multicast work has quiesced; the world
// communicator cannot be freed.
func (c *Comm) Free() {
	if c.id == worldCommID {
		panic(ErrFreeWorld)
	}
	// Quiesce with the host barrier: no member is inside a collective on
	// this comm, and teardown must not demand-create the NIC collective
	// context it is about to remove.
	c.barrierHB()
	r := c.r
	if gid, ok := r.collGroups[c.id]; ok {
		eng := r.collEngine()
		done := false
		w := sim.NewWaiter(r.proc.Engine())
		eng.Remove(gid, func() {
			done = true
			w.WakeAll()
		})
		for !done {
			w.Wait(r.proc)
		}
		ext := r.w.C.Nodes[r.id].Ext
		if ext.HasGroup(gid) {
			done = false
			ext.RemoveGroup(gid, func() {
				done = true
				w.WakeAll()
			})
			for !done {
				w.Wait(r.proc)
			}
		}
		delete(r.collGroups, c.id)
	}
	for key, bg := range r.bcastGroups {
		if key.comm != c.id {
			continue
		}
		ext := r.w.C.Nodes[r.id].Ext
		if ext.HasGroup(bg.gid) {
			// The barrier above synchronized the hosts, but the root's last
			// packets may still await child acknowledgments; RemoveGroup
			// rides the firmware quiesce path, deleting the entry the
			// moment the last send record retires.
			done := false
			w := sim.NewWaiter(r.proc.Engine())
			ext.RemoveGroup(bg.gid, func() {
				done = true
				w.WakeAll()
			})
			for !done {
				w.Wait(r.proc)
			}
		}
		delete(r.bcastGroups, key)
	}
}
