package mpi

import "errors"

// Sentinel errors for API misuse of the MPI layer. Following the MPI
// convention that usage errors abort the job, these surface as panics
// carrying error values: recover the value and test it with errors.Is.
var (
	// ErrNegativeTag reports a user message with a negative tag (the
	// negative space is reserved for internal protocol traffic).
	ErrNegativeTag = errors.New("mpi: negative tags are reserved")
	// ErrSelfSend reports a point-to-point send addressed to the sender.
	ErrSelfSend = errors.New("mpi: send to self")
	// ErrFreeWorld reports freeing MPI_COMM_WORLD.
	ErrFreeWorld = errors.New("mpi: cannot free MPI_COMM_WORLD")
	// ErrBadScatter reports malformed Scatter input: wrong part count or
	// unequal part lengths.
	ErrBadScatter = errors.New("mpi: malformed scatter")
)
