package mpi

import (
	"testing"

	"repro/internal/coll"
	"repro/internal/sim"
)

// runVecCollectives drives every typed collective once and returns the
// per-rank results for checking.
func wantAllreduceSum(nodes, veclen int) []int64 {
	out := make([]int64, veclen)
	for i := 0; i < nodes; i++ {
		for j := 0; j < veclen; j++ {
			out[j] += int64(100*i + j)
		}
	}
	return out
}

func rankVec(id, veclen int) []int64 {
	v := make([]int64, veclen)
	for j := range v {
		v[j] = int64(100*id + j)
	}
	return v
}

func TestAllreduceVecBothPaths(t *testing.T) {
	for name, useNB := range map[string]bool{"nic": true, "host": false} {
		t.Run(name, func(t *testing.T) {
			const nodes, veclen = 7, 3 // non-power-of-two exercises the host pre/post fold
			w := newWorld(t, nodes, useNB)
			results := make([][]int64, nodes)
			w.Run(func(r *Rank) {
				results[r.ID()] = r.AllreduceVec(rankVec(r.ID(), veclen), coll.OpSum)
			})
			want := wantAllreduceSum(nodes, veclen)
			for i, res := range results {
				if len(res) != veclen {
					t.Fatalf("rank %d got %d elements, want %d", i, len(res), veclen)
				}
				for j := range want {
					if res[j] != want[j] {
						t.Fatalf("rank %d allreduce[%d] = %d, want %d", i, j, res[j], want[j])
					}
				}
			}
		})
	}
}

func TestAllreduceVecMinMax(t *testing.T) {
	const nodes = 5
	for _, tc := range []struct {
		op   coll.Op
		want int64
	}{{coll.OpMin, 0}, {coll.OpMax, int64(100 * (nodes - 1))}} {
		w := newWorld(t, nodes, true)
		results := make([][]int64, nodes)
		w.Run(func(r *Rank) {
			results[r.ID()] = r.AllreduceVec([]int64{int64(100 * r.ID())}, tc.op)
		})
		for i, res := range results {
			if len(res) != 1 || res[0] != tc.want {
				t.Fatalf("rank %d op %v = %v, want [%d]", i, tc.op, res, tc.want)
			}
		}
	}
}

func TestReduceVecBothPaths(t *testing.T) {
	for name, useNB := range map[string]bool{"nic": true, "host": false} {
		t.Run(name, func(t *testing.T) {
			const nodes, veclen = 6, 2
			w := newWorld(t, nodes, useNB)
			results := make([][]int64, nodes)
			w.Run(func(r *Rank) {
				results[r.ID()] = r.ReduceVec(0, rankVec(r.ID(), veclen), coll.OpSum)
				r.Barrier() // non-roots return before the reduction completes
			})
			want := wantAllreduceSum(nodes, veclen)
			for j := range want {
				if results[0][j] != want[j] {
					t.Fatalf("root reduce[%d] = %d, want %d", j, results[0][j], want[j])
				}
			}
			for i := 1; i < nodes; i++ {
				if results[i] != nil {
					t.Fatalf("non-root %d got a reduce result", i)
				}
			}
		})
	}
}

func TestReduceVecNonTreeRootFallsBackToHost(t *testing.T) {
	// Rooted anywhere but the collective tree's root, the NIC path cannot
	// apply; the host binomial must still produce the result there.
	const nodes = 5
	w := newWorld(t, nodes, true)
	results := make([][]int64, nodes)
	w.Run(func(r *Rank) {
		results[r.ID()] = r.ReduceVec(2, []int64{int64(r.ID())}, coll.OpSum)
	})
	if results[2] == nil || results[2][0] != 0+1+2+3+4 {
		t.Fatalf("root-2 reduce = %v, want [10]", results[2])
	}
}

func TestAllgatherVecBothPaths(t *testing.T) {
	for name, useNB := range map[string]bool{"nic": true, "host": false} {
		t.Run(name, func(t *testing.T) {
			const nodes, veclen = 6, 3
			w := newWorld(t, nodes, useNB)
			results := make([][]int64, nodes)
			w.Run(func(r *Rank) {
				results[r.ID()] = r.AllgatherVec(rankVec(r.ID(), veclen))
			})
			for i, res := range results {
				if len(res) != nodes*veclen {
					t.Fatalf("rank %d got %d elements, want %d", i, len(res), nodes*veclen)
				}
				for m := 0; m < nodes; m++ {
					for j := 0; j < veclen; j++ {
						if res[m*veclen+j] != int64(100*m+j) {
							t.Fatalf("rank %d allgather[%d,%d] = %d, want %d", i, m, j, res[m*veclen+j], 100*m+j)
						}
					}
				}
			}
		})
	}
}

func TestAllgatherVecLargeFallsBackToHost(t *testing.T) {
	// A result past the eager limit must take the host path and still be
	// correct (gather+bcast for rendezvous sizes).
	const nodes, veclen = 4, 1200 // 4*1200*8 = 38400 bytes > EagerMax
	w := newWorld(t, nodes, true)
	results := make([][]int64, nodes)
	w.Run(func(r *Rank) {
		results[r.ID()] = r.AllgatherVec(rankVec(r.ID(), veclen))
	})
	for i, res := range results {
		if len(res) != nodes*veclen {
			t.Fatalf("rank %d got %d elements", i, len(res))
		}
		for m := 0; m < nodes; m++ {
			if res[m*veclen] != int64(100*m) || res[(m+1)*veclen-1] != int64(100*m+veclen-1) {
				t.Fatalf("rank %d block %d corrupted", i, m)
			}
		}
	}
}

func TestNBBarrierRepeated(t *testing.T) {
	// Repeated NIC barriers with skewed ranks must all complete; the first
	// creates the collective context on demand.
	const nodes, rounds = 8, 5
	w := newWorld(t, nodes, true)
	counts := make([]int, nodes)
	w.Run(func(r *Rank) {
		for i := 0; i < rounds; i++ {
			r.Proc().Compute(sim.Micros(float64(100 * (r.ID() % 3))))
			r.Barrier()
			counts[r.ID()]++
		}
	})
	for i, got := range counts {
		if got != rounds {
			t.Fatalf("rank %d completed %d/%d NIC barriers", i, got, rounds)
		}
	}
	// Barrier-only workload: the multicast group table must stay empty
	// (the collective entry lives in the coll engine's own table).
	for _, n := range w.C.Nodes {
		if n.Ext.Groups() != 0 {
			t.Fatalf("node %v grew %d multicast groups from barriers alone", n.ID, n.Ext.Groups())
		}
		if n.Coll.Groups() != 1 {
			t.Fatalf("node %v has %d collective entries, want 1", n.ID, n.Coll.Groups())
		}
	}
}

func TestSubCommVecCollectives(t *testing.T) {
	// Typed collectives inside split communicators: each half combines
	// only its own members' vectors.
	const nodes = 8
	w := newWorld(t, nodes, true)
	results := make([][]int64, nodes)
	w.Run(func(r *Rank) {
		sub := r.World().Split(r.ID()%2, r.ID())
		results[r.ID()] = sub.AllreduceVec([]int64{int64(r.ID())}, coll.OpSum)
	})
	evens, odds := int64(0+2+4+6), int64(1+3+5+7)
	for i, res := range results {
		want := evens
		if i%2 == 1 {
			want = odds
		}
		if len(res) != 1 || res[0] != want {
			t.Fatalf("rank %d sub-comm allreduce = %v, want [%d]", i, res, want)
		}
	}
}

func TestFreeRemovesCollContext(t *testing.T) {
	const nodes = 6
	w := newWorld(t, nodes, true)
	w.Run(func(r *Rank) {
		sub := r.World().Split(0, r.ID()) // all ranks, one sub-comm
		sub.Barrier()
		sub.AllreduceVec([]int64{1}, coll.OpSum)
		sub.Free()
	})
	for _, n := range w.C.Nodes {
		if got := n.Coll.Groups(); got != 0 {
			t.Fatalf("node %v holds %d collective entries after Free", n.ID, got)
		}
		if got := n.Ext.Groups(); got != 0 {
			t.Fatalf("node %v holds %d multicast groups after Free", n.ID, got)
		}
		if s := n.Coll.DebugLeaks(); s != "" {
			t.Fatalf("node %v leaked collective state after Free: %s", n.ID, s)
		}
	}
}
