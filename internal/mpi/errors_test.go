package mpi

import (
	"errors"
	"testing"
)

// recoverErr runs f and returns the recovered panic value as an error.
func recoverErr(t *testing.T, f func()) (err error) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected a panic")
		}
		e, ok := v.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", v, v)
		}
		err = e
	}()
	f()
	return nil
}

func TestSentinelErrorsAreIsable(t *testing.T) {
	w := newWorld(t, 2, false)
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		if err := recoverErr(t, func() { r.Send(1, -1, []byte("x")) }); !errors.Is(err, ErrNegativeTag) {
			t.Errorf("negative tag send: got %v, want ErrNegativeTag", err)
		}
		if err := recoverErr(t, func() { r.Recv(1, -5) }); !errors.Is(err, ErrNegativeTag) {
			t.Errorf("negative tag recv: got %v, want ErrNegativeTag", err)
		}
		if err := recoverErr(t, func() { r.Send(0, 1, []byte("x")) }); !errors.Is(err, ErrSelfSend) {
			t.Errorf("self send: got %v, want ErrSelfSend", err)
		}
		if err := recoverErr(t, func() { r.World().Free() }); !errors.Is(err, ErrFreeWorld) {
			t.Errorf("free world: got %v, want ErrFreeWorld", err)
		}
	})
}

func TestScatterErrors(t *testing.T) {
	w := newWorld(t, 2, false)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			// One part for two ranks.
			if err := recoverErr(t, func() { r.Scatter(0, [][]byte{{1}}) }); !errors.Is(err, ErrBadScatter) {
				t.Errorf("short scatter: got %v, want ErrBadScatter", err)
			}
			// Unequal part lengths.
			if err := recoverErr(t, func() { r.Scatter(0, [][]byte{{1}, {2, 3}}) }); !errors.Is(err, ErrBadScatter) {
				t.Errorf("ragged scatter: got %v, want ErrBadScatter", err)
			}
		case 1:
			// Nothing: the root panics before sending.
		}
	})
}
