package mpi

import (
	"fmt"

	"repro/internal/cluster"
)

// An MPI program on the simulated cluster: with UseNB the broadcast rides
// the NIC-based multicast (the modified MPICH-GM); the program text is
// ordinary rank-parallel code.
func Example() {
	w := NewWorld(cluster.New(4), true)
	sums := make([]float64, 4)
	w.Run(func(r *Rank) {
		buf := make([]byte, 8)
		if r.ID() == 0 {
			copy(buf, []byte("motd:ok!"))
		}
		out := r.Bcast(0, buf)
		if r.ID() == 2 {
			fmt.Printf("rank 2 got %q\n", out)
		}
		sums[r.ID()] = r.Allreduce(1, func(a, b float64) float64 { return a + b })
	})
	fmt.Printf("allreduce sum everywhere: %v\n", sums)
	// Output:
	// rank 2 got "motd:ok!"
	// allreduce sum everywhere: [4 4 4 4]
}

// Sub-communicators split the world; each half gets its own NIC multicast
// group contexts over exactly its member nodes.
func ExampleComm_Split() {
	w := NewWorld(cluster.New(6), true)
	var got []byte
	w.Run(func(r *Rank) {
		odd := r.World().Split(r.ID()%2, r.ID()) // {0,2,4} and {1,3,5}
		buf := make([]byte, 4)
		if odd.Rank() == 0 {
			copy(buf, fmt.Sprintf("grp%d", r.ID()%2))
		}
		out := odd.Bcast(0, buf)
		if r.ID() == 5 { // comm rank 2 of the odd group, root is world rank 1
			got = out
		}
		r.Barrier()
	})
	fmt.Printf("world rank 5 received %q from its sub-communicator's root\n", got)
	// Output:
	// world rank 5 received "grp1" from its sub-communicator's root
}
