package mpi

// Nonblocking point-to-point operations. True overlap comes from the
// library's preposted eager buffers: a message that arrives while the
// host computes is accepted by the NIC and parked in the unexpected
// queue, so Wait returns immediately. Rendezvous legs progress inside
// Wait, which is legal MPI progress semantics.

// Request is a pending nonblocking operation.
type Request struct {
	done   bool
	result []byte
	finish func() []byte // runs the remaining protocol legs
	probe  func() bool   // reports whether Wait would not block
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends).
func (q *Request) Wait() []byte {
	if !q.done {
		q.result = q.finish()
		q.done = true
	}
	return q.result
}

// Test reports whether the operation has completed or would complete
// without blocking; it never blocks and never advances rendezvous legs.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	return q.probe != nil && q.probe()
}

// Isend starts a nonblocking send on the communicator. Eager messages are
// fully handed to GM before returning; rendezvous handshakes complete
// inside Wait.
func (c *Comm) Isend(dst int, tag int32, data []byte) *Request {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	if len(data) <= EagerMax {
		c.r.send(c.id, c.members[dst], tag, data)
		return &Request{done: true}
	}
	return &Request{
		finish: func() []byte {
			c.r.send(c.id, c.members[dst], tag, data)
			return nil
		},
		probe: func() bool { return false }, // rendezvous progresses in Wait
	}
}

// Irecv starts a nonblocking receive on the communicator.
func (c *Comm) Irecv(src int, tag int32) *Request {
	if tag < 0 {
		panic(ErrNegativeTag)
	}
	r := c.r
	return &Request{
		finish: func() []byte { return r.recv(c.id, c.members[src], tag) },
		probe: func() bool {
			r.drainPort()
			return r.hasMatch(c.id, c.members[src], tag)
		},
	}
}

// Isend and Irecv on the world communicator.
func (r *Rank) Isend(dst int, tag int32, data []byte) *Request {
	return r.World().Isend(dst, tag, data)
}
func (r *Rank) Irecv(src int, tag int32) *Request { return r.World().Irecv(src, tag) }

// Waitall completes a set of requests.
func Waitall(reqs ...*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, q := range reqs {
		out[i] = q.Wait()
	}
	return out
}

// drainPort moves any already-delivered events into the unexpected queue
// without blocking, so Test can see them.
func (r *Rank) drainPort() {
	for {
		ev, ok := r.port.TryRecv()
		if !ok {
			return
		}
		r.unexpected = append(r.unexpected, ev)
	}
}

// hasMatch reports whether the unexpected queue holds an eager or RTS
// message for (comm, src, tag).
func (r *Rank) hasMatch(comm uint32, src int, tag int32) bool {
	for _, ev := range r.unexpected {
		if ev.Group != 0 || ev.Src != r.node(src) {
			continue
		}
		env, _ := decodeEnvelope(ev.Data)
		if env.comm == comm && env.tag == tag && (env.kind == kEager || env.kind == kRTS) {
			return true
		}
	}
	return false
}
