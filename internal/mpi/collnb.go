package mpi

import (
	"fmt"
	"hash/fnv"

	"repro/internal/coll"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// NIC-offloadable typed collectives. The float64-closure forms (Allreduce,
// Reduce) take an opaque Go function, which no firmware can execute —
// and the LANai has no FPU regardless — so they are host-only forever.
// The *Vec forms below take int64 vectors and one of the enumerated
// operators (coll.OpSum/OpMin/OpMax), which the NIC collective engine
// computes in firmware: with the world's UseNB set, Barrier, AllreduceVec,
// ReduceVec and AllgatherVec run entirely NIC-resident, the hosts seeing
// only one request and one completion event.

// collGroupID derives the deterministic collective group identifier for a
// communicator. All members compute it locally; the "coll" salt keeps it
// out of the bcast context space (groupID).
func collGroupID(comm uint32) gm.GroupID {
	h := fnv.New32a()
	h.Write([]byte{'c', 'o', 'l', 'l', byte(comm), byte(comm >> 8), byte(comm >> 16), byte(comm >> 24)})
	id := gm.GroupID(h.Sum32())
	if id == 0 {
		id = 1
	}
	return id
}

// minMemberRank is the communicator rank holding the smallest world rank —
// the root of the collective group's tree (the coll engine and
// tree.Binomial both root at the lowest node ID).
func (c *Comm) minMemberRank() int {
	best := 0
	for i, m := range c.members {
		if m < c.members[best] {
			best = i
		}
	}
	return best
}

// ensureColl creates the communicator's collective group context on first
// use, mirroring the demand-driven bcast group creation: every member
// installs the collective entry, then a host barrier confirms every
// installation before the first NIC round can reach a NIC without an
// entry (which would cost a retransmit interval). The barrier needs
// nothing else; the tree-based collectives add the multicast tree via
// ensureCollTree.
func (c *Comm) ensureColl() gm.GroupID {
	r := c.r
	if gid, ok := r.collGroups[c.id]; ok {
		return gid
	}
	gid := collGroupID(c.id)
	r.installColl(gid, c.nodes())
	c.barrierHB()
	r.collGroups[c.id] = gid
	return gid
}

// ensureCollTree additionally installs the communicator's multicast tree
// under the collective group id — the data path reduce and allgather
// combine over and multicast results down. Lazy like ensureColl: a
// communicator that only ever barriers never populates the multicast
// group table.
func (c *Comm) ensureCollTree() gm.GroupID {
	gid := c.ensureColl()
	r := c.r
	if r.collTrees[c.id] {
		return gid
	}
	root := c.nodes()[c.minMemberRank()]
	r.installGroup(gid, tree.Binomial(root, c.nodes()))
	c.barrierHB()
	r.collTrees[c.id] = true
	return gid
}

// installColl preposts the collective group entry into the local NIC and
// blocks until the firmware confirms it.
func (r *Rank) installColl(gid gm.GroupID, nodes []fabric.NodeID) {
	eng := coll.FromExt(r.w.C.Nodes[r.id].Ext)
	done := false
	w := sim.NewWaiter(r.proc.Engine())
	eng.Install(gid, nodes, mpiPort, func() {
		done = true
		w.WakeAll()
	})
	for !done {
		w.Wait(r.proc)
	}
}

func (r *Rank) collEngine() *coll.Engine {
	return coll.FromExt(r.w.C.Nodes[r.id].Ext)
}

// barrierNB is the NIC-based barrier: one host request enters, the NICs
// run every round, and a zero-byte group event reports completion —
// skewed or slow peers never stall this host in per-round sends.
func (c *Comm) barrierNB() {
	gid := c.ensureColl()
	r := c.r
	r.collEngine().PostBarrier(r.proc, r.port, gid)
	ev := r.awaitGroup(gid)
	if len(ev.Data) != 0 {
		panic(fmt.Sprintf("mpi: data event on collective group %d during barrier", gid))
	}
}

// AllreduceVec combines equal-length int64 vectors element-wise with op
// and returns the result on every member. Under UseNB, single-packet
// vectors reduce NIC-resident up the group's tree with the result
// multicast back down; otherwise MPICH's recursive-doubling algorithm
// runs on the hosts.
func (c *Comm) AllreduceVec(vec []int64, op coll.Op) []int64 {
	if c.Size() == 1 {
		return append([]int64(nil), vec...)
	}
	if c.r.w.UseNB && 8*len(vec) <= c.r.w.C.Cfg.GM.MTU {
		return c.allreduceVecNB(vec, op)
	}
	return c.allreduceVecHB(vec, op)
}

func (c *Comm) allreduceVecNB(vec []int64, op coll.Op) []int64 {
	gid := c.ensureCollTree()
	r := c.r
	r.collEngine().PostReduce(r.proc, r.port, gid, vec, op)
	ev := r.awaitGroup(gid)
	res := coll.DecodeVec(ev.Data)
	if c.my == c.minMemberRank() {
		// The combined vector arrived as this root's completion event;
		// multicast it down the preposted tree to everyone else.
		r.w.C.Nodes[r.id].Ext.Mcast(r.proc, r.port, gid, ev.Data)
	} else {
		r.proc.Compute(r.w.C.Cfg.HostMemcpyTime(len(ev.Data)))
		r.replenish() // the downward multicast consumed an eager token
	}
	return res
}

// allreduceVecHB is MPICH's host recursive doubling with the pre/post
// fold that reduces a non-power-of-two member count to the nearest power
// (large vectors fold to the tree root and broadcast instead, keeping
// every exchange acyclic under the rendezvous protocol).
func (c *Comm) allreduceVecHB(vec []int64, op coll.Op) []int64 {
	n := c.Size()
	if 8*len(vec) > EagerMax {
		root := c.minMemberRank()
		acc := c.ReduceVec(root, vec, op)
		if acc == nil {
			acc = make([]int64, len(vec))
		}
		return coll.DecodeVec(c.Bcast(root, coll.EncodeVec(acc)))
	}
	acc := append([]int64(nil), vec...)
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	switch {
	case c.my < 2*rem && c.my%2 == 0:
		c.r.send(c.id, c.members[c.my+1], tagAllreduce, coll.EncodeVec(acc))
	case c.my < 2*rem:
		foldVec(acc, coll.DecodeVec(c.r.recv(c.id, c.members[c.my-1], tagAllreduce)), op)
		newrank = c.my / 2
	default:
		newrank = c.my - rem
	}
	if newrank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			pn := newrank ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			c.r.send(c.id, c.members[partner], tagAllreduce, coll.EncodeVec(acc))
			foldVec(acc, coll.DecodeVec(c.r.recv(c.id, c.members[partner], tagAllreduce)), op)
		}
	}
	if c.my < 2*rem {
		if c.my%2 == 0 {
			acc = coll.DecodeVec(c.r.recv(c.id, c.members[c.my+1], tagAllreduce))
		} else {
			c.r.send(c.id, c.members[c.my-1], tagAllreduce, coll.EncodeVec(acc))
		}
	}
	return acc
}

func foldVec(acc, other []int64, op coll.Op) {
	if len(other) != len(acc) {
		panic(fmt.Sprintf("mpi: allreduce vector length mismatch (%d vs %d)", len(other), len(acc)))
	}
	for i := range acc {
		acc[i] = op.Apply(acc[i], other[i])
	}
}

// ReduceVec combines vectors at communicator rank root, which alone
// returns the result (others return nil). The NIC path applies when the
// root is the collective tree's root (the lowest-world-rank member) and
// the vector fits one packet; otherwise a host binomial tree runs.
func (c *Comm) ReduceVec(root int, vec []int64, op coll.Op) []int64 {
	if c.Size() == 1 {
		return append([]int64(nil), vec...)
	}
	if c.r.w.UseNB && root == c.minMemberRank() && 8*len(vec) <= c.r.w.C.Cfg.GM.MTU {
		gid := c.ensureCollTree()
		r := c.r
		r.collEngine().PostReduce(r.proc, r.port, gid, vec, op)
		if c.my != root {
			return nil // contribution posted; the NICs do the rest
		}
		return coll.DecodeVec(r.awaitGroup(gid).Data)
	}
	return c.reduceVecHB(root, vec, op)
}

func (c *Comm) reduceVecHB(root int, vec []int64, op coll.Op) []int64 {
	n := c.Size()
	rel := (c.my - root + n) % n
	acc := append([]int64(nil), vec...)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (c.my - mask + n) % n
			c.r.send(c.id, c.members[parent], tagAllreduce, coll.EncodeVec(acc))
			return nil
		}
		if rel+mask < n {
			child := (c.my + mask) % n
			foldVec(acc, coll.DecodeVec(c.r.recv(c.id, c.members[child], tagAllreduce)), op)
		}
		mask <<= 1
	}
	return acc
}

// AllgatherVec gathers every member's equal-length vector and returns the
// concatenation in communicator-rank order on every member. Under UseNB
// (result fitting the eager limit) the NICs concatenate-and-forward up
// the tree and multicast the assembled result down; otherwise the hosts
// run Bruck's algorithm (or, for rendezvous-sized results, a gather plus
// broadcast).
func (c *Comm) AllgatherVec(mine []int64) []int64 {
	n := c.Size()
	if n == 1 {
		return append([]int64(nil), mine...)
	}
	if c.r.w.UseNB && 8*n*len(mine) <= EagerMax {
		return c.allgatherVecNB(mine)
	}
	return c.allgatherVecHB(mine)
}

func (c *Comm) allgatherVecNB(mine []int64) []int64 {
	gid := c.ensureCollTree()
	r := c.r
	r.collEngine().PostAllgather(r.proc, r.port, gid, mine)
	ev := r.awaitGroup(gid)
	res := c.fromSorted(coll.DecodeVec(ev.Data), len(mine))
	if c.my == c.minMemberRank() {
		r.w.C.Nodes[r.id].Ext.Mcast(r.proc, r.port, gid, ev.Data)
	} else {
		r.proc.Compute(r.w.C.Cfg.HostMemcpyTime(len(ev.Data)))
		r.replenish()
	}
	return res
}

// fromSorted reorders the engine's flat result (sorted-node order) into
// communicator-rank order. For the common ascending-member communicator
// the two orders coincide and the vector is returned as-is.
func (c *Comm) fromSorted(flat []int64, veclen int) []int64 {
	ascending := true
	for i := 1; i < len(c.members); i++ {
		if c.members[i] < c.members[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		return flat
	}
	// sortedPos[i] = position of member i in the sorted member set.
	out := make([]int64, len(flat))
	for i, m := range c.members {
		pos := 0
		for _, o := range c.members {
			if o < m {
				pos++
			}
		}
		copy(out[i*veclen:(i+1)*veclen], flat[pos*veclen:(pos+1)*veclen])
	}
	return out
}

// allgatherVecHB is Bruck's algorithm: ceil(log2 n) exchange steps, each
// doubling the span of collected blocks, then a rotation into rank order.
// Rendezvous-sized transfers fall back to gather+broadcast, whose
// exchanges are acyclic (Bruck's ring of simultaneous sends would
// deadlock blocking rendezvous handshakes).
func (c *Comm) allgatherVecHB(mine []int64) []int64 {
	n := c.Size()
	veclen := len(mine)
	if 8*veclen*((n+1)/2) > EagerMax {
		root := 0
		parts := c.Gather(root, coll.EncodeVec(mine))
		var blob []byte
		if c.my == root {
			for _, p := range parts {
				blob = append(blob, p...)
			}
		} else {
			blob = make([]byte, 8*veclen*n)
		}
		return coll.DecodeVec(c.Bcast(root, blob))
	}
	// Collected blocks, relative order: block k is rank (my+k)%n's vector.
	buf := append(make([]int64, 0, n*veclen), mine...)
	for pof2 := 1; pof2 < n; pof2 <<= 1 {
		cnt := pof2
		if n-pof2 < cnt {
			cnt = n - pof2
		}
		dst := (c.my - pof2 + n) % n
		src := (c.my + pof2) % n
		c.r.send(c.id, c.members[dst], tagAllgather, coll.EncodeVec(buf[:cnt*veclen]))
		buf = append(buf, coll.DecodeVec(c.r.recv(c.id, c.members[src], tagAllgather))...)
	}
	out := make([]int64, n*veclen)
	for k := 0; k < n; k++ {
		abs := (c.my + k) % n
		copy(out[abs*veclen:(abs+1)*veclen], buf[k*veclen:(k+1)*veclen])
	}
	return out
}

// World-communicator conveniences.
func (r *Rank) AllreduceVec(vec []int64, op coll.Op) []int64 {
	return r.World().AllreduceVec(vec, op)
}
func (r *Rank) ReduceVec(root int, vec []int64, op coll.Op) []int64 {
	return r.World().ReduceVec(root, vec, op)
}
func (r *Rank) AllgatherVec(mine []int64) []int64 { return r.World().AllgatherVec(mine) }
