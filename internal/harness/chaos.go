package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/chaos"
)

// ChaosSweep runs each scenario at every cluster size under the parallel
// sweep runner, returning results scenario-major in deterministic order.
// Each point is an independent experiment (own cluster, own seeded RNGs),
// so results are byte-identical whether the sweep runs serial or fanned
// out — the property the campaign's reproducibility contract rests on. A
// shared metrics registry (Options.Metrics) forces the sweep serial, as
// everywhere in the harness.
func (o Options) ChaosSweep(scenarios []chaos.Scenario, nodeCounts []int, msgs, size int) []chaos.Result {
	type point struct {
		sc    chaos.Scenario
		nodes int
	}
	var pts []point
	for _, sc := range scenarios {
		for _, n := range nodeCounts {
			pts = append(pts, point{sc, n})
		}
	}
	return parallelMap(o.workerCount(len(pts)), pts, func(_ int, p point) chaos.Result {
		return chaos.RunScenario(p.sc, chaos.Config{
			Nodes:    p.nodes,
			Msgs:     msgs,
			Size:     size,
			Seed:     o.Seed,
			Metrics:  o.Metrics,
			Fabric:   o.Fabric,
			AckEvery: o.AckEconomy,
		})
	})
}

// WriteChaosTable renders a campaign's per-scenario pass/fail and
// recovery-latency table, with invariant violations itemized under any
// failing row.
func WriteChaosTable(w io.Writer, title string, results []chaos.Result) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tnodes\tverdict\trecovery\tdrops\tdups\tpaused\tretrans\ttimeouts\tnacks")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Scenario, r.Nodes, verdict, r.Recovery,
			r.Drops, r.Dups, r.PausedDrops, r.Retransmits, r.Timeouts, r.Nacks)
	}
	tw.Flush()
	for _, r := range results {
		if r.Pass {
			continue
		}
		fmt.Fprintf(w, "\n%s @ %d nodes violated:\n", r.Scenario, r.Nodes)
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  - %s\n", v)
		}
	}
}

// ChaosFailures counts failing results.
func ChaosFailures(results []chaos.Result) int {
	n := 0
	for _, r := range results {
		if !r.Pass {
			n++
		}
	}
	return n
}

// CollChaosSweep runs each collective scenario at every cluster size under
// the parallel sweep runner, returning results scenario-major in
// deterministic order — the collective-engine counterpart of ChaosSweep.
func (o Options) CollChaosSweep(scenarios []chaos.CollScenario, nodeCounts []int, rounds, veclen int) []chaos.CollResult {
	type point struct {
		sc    chaos.CollScenario
		nodes int
	}
	var pts []point
	for _, sc := range scenarios {
		for _, n := range nodeCounts {
			pts = append(pts, point{sc, n})
		}
	}
	return parallelMap(o.workerCount(len(pts)), pts, func(_ int, p point) chaos.CollResult {
		return chaos.RunCollScenario(p.sc, chaos.CollConfig{
			Nodes:    p.nodes,
			Rounds:   rounds,
			Veclen:   veclen,
			Seed:     o.Seed,
			Metrics:  o.Metrics,
			Fabric:   o.Fabric,
			AckEvery: o.AckEconomy,
		})
	})
}

// WriteCollChaosTable renders a collective campaign's per-scenario
// pass/fail and recovery-latency table, with invariant violations
// itemized under any failing row.
func WriteCollChaosTable(w io.Writer, title string, results []chaos.CollResult) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tnodes\tverdict\trecovery\tdrops\tdups\tpaused\tretrans\tcolldups")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%v\t%d\t%d\t%d\t%d\t%d\n",
			r.Scenario, r.Nodes, verdict, r.Recovery,
			r.Drops, r.Dups, r.PausedDrops, r.Retransmits, r.CollDups)
	}
	tw.Flush()
	for _, r := range results {
		if r.Pass {
			continue
		}
		fmt.Fprintf(w, "\n%s @ %d nodes violated:\n", r.Scenario, r.Nodes)
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  - %s\n", v)
		}
	}
}

// CollChaosFailures counts failing collective results.
func CollChaosFailures(results []chaos.CollResult) int {
	n := 0
	for _, r := range results {
		if !r.Pass {
			n++
		}
	}
	return n
}
