package harness

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

func collFast() Options {
	o := DefaultOptions()
	o.Warmup = 2
	o.Iters = 8
	o.SkewIters = 12
	return o
}

// The NIC-resident barrier's advantage over host-based dissemination
// grows with system size — the engine's headline scaling signature.
func TestCollBarrierScalingSignature(t *testing.T) {
	o := collFast()
	f16 := CollPoint{HB: o.CollLatency("barrier", 16, 1, false), NB: o.CollLatency("barrier", 16, 1, true)}.Factor()
	f64 := CollPoint{HB: o.CollLatency("barrier", 64, 1, false), NB: o.CollLatency("barrier", 64, 1, true)}.Factor()
	if f16 < 1.5 {
		t.Errorf("16-node barrier factor %.2f, want >= 1.5", f16)
	}
	if f64 <= f16 {
		t.Errorf("barrier factor not growing with size: 16 nodes %.2f vs 64 nodes %.2f", f16, f64)
	}
}

// CollScaleSweep covers every requested (collective, size) point with
// positive latencies, and flags exactly the allgather points whose flat
// result exceeds the eager ceiling.
func TestCollScaleSweepShape(t *testing.T) {
	o := collFast()
	o.Iters = 3
	pts := o.CollScaleSweep(CollNames, []int{8, 16}, 2)
	if len(pts) != len(CollNames)*2 {
		t.Fatalf("got %d points, want %d", len(pts), len(CollNames)*2)
	}
	for _, p := range pts {
		if p.HB <= 0 || p.NB <= 0 {
			t.Errorf("%s @ %d: nonpositive latency HB=%.2f NB=%.2f", p.Collective, p.Nodes, p.HB, p.NB)
		}
		if p.NBFallback {
			t.Errorf("%s @ %d flagged as fallback below the eager ceiling", p.Collective, p.Nodes)
		}
	}
}

func TestAllgatherNICEligible(t *testing.T) {
	if !AllgatherNICEligible(16, 1) {
		t.Error("16-node veclen-1 allgather should ride the NIC path")
	}
	// 8*2048*1 = 16384 > EagerMax: the 2048-host row is the documented
	// host-fallback point.
	if AllgatherNICEligible(2048, 1) {
		t.Errorf("2048-node veclen-1 allgather (16384 B > EagerMax %d) must not claim the NIC path", mpi.EagerMax)
	}
}

// Unknown collective names must fail loudly, not measure garbage.
func TestCollLatencyUnknownPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown collective did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "unknown collective") {
			panic(r)
		}
	}()
	collFast().CollLatency("alltoall", 4, 1, false)
}

// Barrier skew-tolerance signature: time inside the barrier grows with
// skew for both variants (the last arrival gates everyone), the NIC
// variant stays ahead, and the runs are deterministic.
func TestBarrierSkewSignature(t *testing.T) {
	o := collFast()
	pts := o.BarrierSkewSweep(16, []float64{0, 200})
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.NB >= p.HB {
			t.Errorf("skew %.0f: NIC barrier %.1fus not ahead of host %.1fus", p.AvgSkewUs, p.NB, p.HB)
		}
	}
	if pts[1].HB <= pts[0].HB || pts[1].NB <= pts[0].NB {
		t.Errorf("barrier time did not grow with skew: %+v", pts)
	}
	again := o.BarrierSkewCPUTime(16, 200, true)
	if again != pts[1].NB {
		t.Fatalf("non-deterministic skew measurement: %.3f vs %.3f", again, pts[1].NB)
	}
}
