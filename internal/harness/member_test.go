package harness

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

func memberTestScenarios(t *testing.T) []chaos.MemberScenario {
	t.Helper()
	var out []chaos.MemberScenario
	for _, name := range []string{"churn-clean", "churn-under-loss"} {
		sc, ok := chaos.FindMember(name)
		if !ok {
			t.Fatalf("scenario %s missing from membership library", name)
		}
		out = append(out, sc)
	}
	return out
}

// The membership campaign must be byte-identical whether it runs serial
// or fanned out — the reproducibility contract memberbench advertises.
func TestMemberSweepDeterministicAcrossWorkers(t *testing.T) {
	scs := memberTestScenarios(t)

	serial := DefaultOptions()
	serial.Seed = 7
	serial.Workers = 1
	fanned := DefaultOptions()
	fanned.Seed = 7
	fanned.Workers = 4

	var a, b bytes.Buffer
	WriteMemberTable(&a, "campaign", serial.MemberSweep(scs, []int{6, 8}, []int{4, 8}, 10, 2048))
	WriteMemberTable(&b, "campaign", fanned.MemberSweep(scs, []int{6, 8}, []int{4, 8}, 10, 2048))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel sweeps diverged:\n--- serial ---\n%s--- parallel ---\n%s", a.String(), b.String())
	}
	if MemberFailures(nil) != 0 {
		t.Fatal("empty result set reported failures")
	}
}

// A shared registry forces the sweep serial and must end up holding the
// campaign's membership instrumentation.
func TestMemberSweepSharedMetrics(t *testing.T) {
	o := DefaultOptions()
	o.Seed = 7
	o.Workers = 4 // must be overridden to serial by the shared registry
	o.Metrics = metrics.New()
	results := o.MemberSweep(memberTestScenarios(t), []int{8}, []int{8}, 10, 2048)
	if n := MemberFailures(results); n != 0 {
		t.Fatalf("%d membership points failed under shared metrics", n)
	}
	s := o.Metrics.Snapshot()
	if s.CounterSum("member", "transitions") == 0 {
		t.Fatal("shared registry saw no membership transitions")
	}
	if s.CounterSum("member", "joins")+s.CounterSum("member", "leaves") == 0 {
		t.Fatal("shared registry saw no joins or leaves")
	}
}

// A FAIL row must be followed by its itemized violations.
func TestWriteMemberTableItemizesFailures(t *testing.T) {
	res := []chaos.MemberResult{{
		Scenario:    "doomed",
		Nodes:       8,
		Transitions: 5,
		Violations:  []string{"node 3: delivered a payload from a departed epoch"},
	}}
	var buf bytes.Buffer
	WriteMemberTable(&buf, "campaign", res)
	for _, want := range []string{"FAIL", "doomed @ 8 nodes / 5 transitions violated:", "departed epoch"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("table output missing %q:\n%s", want, buf.String())
		}
	}
}
