package harness

import (
	"fmt"

	"repro/internal/clos"
	"repro/internal/fabric"
	"repro/internal/myrinet"
)

// FabricPreset resolves a backend name — the value of the benches' shared
// -fabric flag — to its preset. The empty string means the default Myrinet
// backend, so flag plumbing can pass the flag through unconditionally.
func FabricPreset(name string) (fabric.Config, error) {
	switch name {
	case "", "myrinet":
		return myrinet.Default(), nil
	case "clos":
		return clos.Default(), nil
	}
	return fabric.Config{}, fmt.Errorf("unknown fabric %q (want myrinet or clos)", name)
}

// FabricNames lists the selectable backends, for usage strings.
func FabricNames() string { return "myrinet, clos" }
