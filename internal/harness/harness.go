// Package harness reproduces the paper's measurement methodology for every
// figure in its evaluation: synchronizing warm-up iterations, timed
// iterations averaged into a latency, the designated-leaf acknowledgment
// scheme with the maximum taken over leaf choices, and the process-skew
// CPU-time protocol. Each figure has a Run function returning the same
// rows/series the paper plots.
package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/tree"
)

// Options control a measurement run. The paper used 20 warm-up and 10,000
// timed iterations on real hardware; the simulation is deterministic, so
// far fewer timed iterations give converged averages.
type Options struct {
	Warmup int
	Iters  int
	// SkewIters is used by the skew experiments (paper: 5,000).
	SkewIters int
	Seed      int64
	// Mut, when non-nil, adjusts the cluster configuration (fault
	// injection, buffer pools, cost ablations).
	Mut func(*cluster.Config)
	// NBTree, when non-nil, overrides the NIC-based multicast's spanning
	// tree (the tree-shape ablation); nil uses the size-specific optimal
	// tree.
	NBTree func(cfg *cluster.Config, root fabric.NodeID, members []fabric.NodeID, size int) *tree.Tree
	// Metrics, when non-nil, is wired through every cluster the harness
	// builds, so a Reporter can diff it between experiments. Because the
	// registry is unsynchronized, a non-nil Metrics forces sweeps serial
	// regardless of Workers.
	Metrics *metrics.Registry
	// Workers bounds the goroutines a sweep fans its points across:
	// 0 means GOMAXPROCS, 1 forces serial. Results are identical either
	// way — each point is an independent experiment. A Mut closure must
	// tolerate concurrent calls when Workers != 1.
	Workers int
	// Shards runs every cluster the harness builds on a conservative
	// parallel engine with that many shards (0 or 1 = classic serial).
	// Results are byte-identical to serial; only wall-clock time changes.
	// Sweeps cap their worker fan-out so Workers x Shards stays within
	// GOMAXPROCS rather than oversubscribing the machine twice.
	Shards int
	// Fabric selects the interconnect backend every cluster the harness
	// builds runs on (zero value: the classic Myrinet fabric). Use
	// FabricPreset to resolve a -fabric CLI flag.
	Fabric fabric.Config
	// AckEconomy > 1 enables the full ack-economy stack on every cluster
	// the harness builds: cumulative acks every AckEconomy packets,
	// piggybacking, and NIC tree ack aggregation. 0 or 1 keeps the
	// timeline-pinned per-packet ack default.
	AckEconomy int
}

// nbTree resolves the NIC-based multicast tree for a run.
func (o Options) nbTree(cfg *cluster.Config, root fabric.NodeID, members []fabric.NodeID, size int) *tree.Tree {
	if o.NBTree != nil {
		return o.NBTree(cfg, root, members, size)
	}
	return cfg.OptimalTree(root, members, size)
}

// DefaultOptions returns the harness defaults.
func DefaultOptions() Options {
	return Options{Warmup: 20, Iters: 100, SkewIters: 120, Seed: 1}
}

func (o Options) config(nodes int) *cluster.Config {
	cfg := cluster.DefaultConfig(nodes)
	if o.Fabric.Valid() {
		cfg.Fabric = o.Fabric
		cfg.Link = o.Fabric.Links
	}
	cfg.Seed = o.Seed
	cfg.Metrics = o.Metrics
	cfg.Shards = o.Shards
	cluster.WithAckEconomy(o.AckEconomy)(cfg)
	if o.Mut != nil {
		o.Mut(cfg)
	}
	return cfg
}

// Point is one (message size, host-based, NIC-based) measurement; the unit
// is microseconds.
type Point struct {
	Size int
	HB   float64
	NB   float64
}

// Factor reports the paper's improvement factor HB/NB at this point.
func (p Point) Factor() float64 {
	if p.NB == 0 {
		return 0
	}
	return p.HB / p.NB
}

// Series is a sweep over message sizes at a fixed configuration.
type Series []Point

// MessageSizes is the paper's sweep: 1 byte to 16 KB by powers of two
// (Figures 3 and 5 annotate 1, 4, 16, ..., 16384).
func MessageSizes(max int) []int {
	var out []int
	for s := 1; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// runToCompletion drives a measurement cluster until quiet and verifies
// every process finished — a stalled process means a protocol bug, which
// must fail loudly rather than report garbage latencies. Cluster.Run
// dispatches to the serial engine or the sharded coordinator, so every
// harness experiment runs unchanged in either mode.
func runToCompletion(c *cluster.Cluster) {
	c.Run()
	if n := c.LiveProcs(); n != 0 {
		c.Kill()
		panic(fmt.Sprintf("harness: measurement stalled with %d live processes", n))
	}
	c.Kill()
}
