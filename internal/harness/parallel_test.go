package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func detTestOptions(workers int) Options {
	o := DefaultOptions()
	o.Warmup = 1
	o.Iters = 4
	o.SkewIters = 4
	o.Workers = workers
	return o
}

// renderAllSweeps runs all four parallelized sweeps and renders them with
// the same table writers the commands use, so a byte comparison covers
// every float the sweeps produce.
func renderAllSweeps(o Options) []byte {
	var buf bytes.Buffer
	WriteSeries(&buf, "gm", o.GMSweep(4, []int{1, 64, 1024}))
	WriteSeries(&buf, "mpi", o.MPISweep(4, []int{1, 64, 1024}))
	WriteSkew(&buf, "skew", o.SkewSweep(4, 4, []float64{0, 100}))
	WriteScale(&buf, "scale", o.ScaleSweep([]int{4, 8}, 64))
	return buf.Bytes()
}

func TestParallelSweepOutputMatchesSerial(t *testing.T) {
	want := renderAllSweeps(detTestOptions(1))
	got := renderAllSweeps(detTestOptions(4))
	if !bytes.Equal(got, want) {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

func TestParallelMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := parallelMap(8, items, func(_, v int) int { return v * 2 })
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestParallelMapPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic value %v does not carry the original message", r)
		}
	}()
	parallelMap(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(_, v int) int {
		if v == 5 {
			panic("boom")
		}
		return v
	})
}

func TestWorkerCountForcesSerialWithSharedMetrics(t *testing.T) {
	o := Options{Workers: 8, Metrics: metrics.New()}
	if got := o.workerCount(16); got != 1 {
		t.Fatalf("workerCount with a shared registry = %d, want 1", got)
	}
	o.Metrics = nil
	if got := o.workerCount(16); got != 8 {
		t.Fatalf("workerCount = %d, want 8", got)
	}
	if got := o.workerCount(3); got != 3 {
		t.Fatalf("workerCount clamped = %d, want 3", got)
	}
}
