package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Collective scaling experiment — the collective-engine counterpart of the
// broadcast ScaleSweep: the average completion latency of MPI_Barrier,
// MPI_Allreduce and MPI_Allgather in their traditional host-based forms
// versus the NIC-resident collective engine, across system sizes up to
// thousands of hosts. Both variants ride the full MPI layer, so the
// comparison includes every host-side cost the paper's methodology counts.

// CollNames lists the collectives the scaling sweep measures.
var CollNames = []string{"barrier", "allreduce", "allgather"}

// CollPoint is one (collective, system size) comparison; units are
// microseconds per operation.
type CollPoint struct {
	Collective string
	Nodes      int
	HB         float64 // host-based algorithm (dissemination / recursive doubling / Bruck)
	NB         float64 // NIC-resident collective engine
	// NBFallback marks a point where the MPI layer's NIC path does not
	// apply (an allgather result past the eager limit) and the NB column
	// therefore measured the host fallback.
	NBFallback bool
}

// Factor reports HB/NB.
func (p CollPoint) Factor() float64 {
	if p.NB == 0 {
		return 0
	}
	return p.HB / p.NB
}

// AllgatherNICEligible reports whether the MPI layer's NIC allgather path
// applies at this system size: the flat result must fit one eager-mode
// receive buffer to ride the preposted token pool down the multicast tree.
func AllgatherNICEligible(nodes, veclen int) bool {
	return 8*nodes*veclen <= mpi.EagerMax
}

// CollLatency measures the average latency of one collective at the MPI
// layer: every rank runs Warmup+Iters back-to-back operations (the
// collective itself keeps the ranks synchronized) and the per-call time is
// averaged over ranks and iterations. Per-rank accumulators keep the
// measurement race-free on sharded clusters.
func (o Options) CollLatency(collective string, nodes, veclen int, useNB bool) float64 {
	switch collective {
	case "barrier", "allreduce", "allgather":
	default:
		// Checked before the cluster spins up: a panic inside a rank's
		// process goroutine would be unrecoverable for the caller.
		panic(fmt.Sprintf("harness: unknown collective %q", collective))
	}
	c := cluster.NewFromConfig(o.config(nodes))
	w := mpi.NewWorld(c, useNB)
	total := o.Warmup + o.Iters
	perRank := make([]sim.Time, nodes)

	w.Run(func(r *mpi.Rank) {
		vec := make([]int64, veclen)
		for j := range vec {
			vec[j] = int64(100*r.ID() + j)
		}
		op := func() {
			switch collective {
			case "barrier":
				r.Barrier()
			case "allreduce":
				r.AllreduceVec(vec, coll.OpSum)
			case "allgather":
				r.AllgatherVec(vec)
			default:
				panic(fmt.Sprintf("harness: unknown collective %q", collective))
			}
		}
		for i := 0; i < o.Warmup; i++ {
			op()
		}
		var mine sim.Time
		for i := o.Warmup; i < total; i++ {
			t0 := r.Now()
			op()
			mine += r.Now() - t0
		}
		perRank[r.ID()] = mine
	})

	var sum sim.Time
	for _, t := range perRank {
		sum += t
	}
	return sum.Micros() / float64(nodes*o.Iters)
}

// CollScaleSweep compares host-based and NIC-resident collectives across
// system sizes. Points run in parallel per Options.Workers.
func (o Options) CollScaleSweep(collectives []string, nodeCounts []int, veclen int) []CollPoint {
	var pts []CollPoint
	for _, name := range collectives {
		for _, n := range nodeCounts {
			pts = append(pts, CollPoint{Collective: name, Nodes: n})
		}
	}
	return parallelMap(o.workerCount(len(pts)), pts, func(_ int, p CollPoint) CollPoint {
		p.HB = o.CollLatency(p.Collective, p.Nodes, veclen, false)
		p.NB = o.CollLatency(p.Collective, p.Nodes, veclen, true)
		p.NBFallback = p.Collective == "allgather" && !AllgatherNICEligible(p.Nodes, veclen)
		return p
	})
}

// CollScaleNodeCounts is the default sweep: the paper-scale 512, 1024 and
// 2048-host systems (three-level Clos territory on either fabric).
func CollScaleNodeCounts() []int { return []int{512, 1024, 2048} }

// BarrierSkewCPUTime measures the average host time spent inside
// MPI_Barrier under random process skew, the Figure-6 protocol applied to
// the barrier: ranks synchronize with a barrier, draw a skew, compute for
// it, then the time inside the next barrier is averaged over ranks and
// iterations. Skew draws come from per-rank generators seeded
// independently of the protocol under test, so the host-based and
// NIC-based runs see identical skew patterns.
func (o Options) BarrierSkewCPUTime(nodes int, avgSkewUs float64, useNB bool) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	w := mpi.NewWorld(c, useNB)
	maxSkew := sim.Micros(4 * avgSkewUs)
	perRank := make([]sim.Time, nodes)

	rngs := make([]*sim.RNG, nodes)
	for i := range rngs {
		rngs[i] = sim.NewRNG(o.Seed*1_000_003 + int64(i))
	}

	w.Run(func(r *mpi.Rank) {
		for i := 0; i < o.Warmup; i++ {
			r.Barrier()
		}
		var mine sim.Time
		for i := 0; i < o.SkewIters; i++ {
			r.Barrier()
			if s := rngs[r.ID()].SymmetricDuration(maxSkew); s > 0 {
				r.Proc().Compute(s)
			}
			t0 := r.Now()
			r.Barrier()
			mine += r.Now() - t0
		}
		perRank[r.ID()] = mine
	})

	var sum sim.Time
	for _, t := range perRank {
		sum += t
	}
	return sum.Micros() / float64(nodes*o.SkewIters)
}

// BarrierSkewSweep runs the skewed-barrier comparison across average
// skews for one system size — the barrier's skew-tolerance figure.
func (o Options) BarrierSkewSweep(nodes int, avgSkewsUs []float64) []SkewPoint {
	return parallelMap(o.workerCount(len(avgSkewsUs)), avgSkewsUs, func(_ int, s float64) SkewPoint {
		return SkewPoint{
			AvgSkewUs: s,
			HB:        o.BarrierSkewCPUTime(nodes, s, false),
			NB:        o.BarrierSkewCPUTime(nodes, s, true),
		}
	})
}
