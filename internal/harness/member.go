package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/chaos"
)

// MemberSweep runs each membership scenario at every (group size, churn
// rate) point under the parallel sweep runner, returning results
// scenario-major, then size-major, in deterministic order. Churn rate is
// expressed as the number of join/leave transitions the plan schedules
// over the fixed message stream. Each point is an independent experiment
// (own cluster, own churn plan, own seeded injector), so the campaign is
// byte-identical serial or fanned out; a shared Options.Metrics registry
// forces it serial, as everywhere in the harness.
func (o Options) MemberSweep(scenarios []chaos.MemberScenario, nodeCounts, transitionCounts []int, msgs, size int) []chaos.MemberResult {
	type point struct {
		sc          chaos.MemberScenario
		nodes       int
		transitions int
	}
	var pts []point
	for _, sc := range scenarios {
		for _, n := range nodeCounts {
			for _, tr := range transitionCounts {
				pts = append(pts, point{sc, n, tr})
			}
		}
	}
	return parallelMap(o.workerCount(len(pts)), pts, func(_ int, p point) chaos.MemberResult {
		return chaos.RunMemberScenario(p.sc, chaos.MemberConfig{
			Nodes:       p.nodes,
			Msgs:        msgs,
			Size:        size,
			Transitions: p.transitions,
			Seed:        o.Seed,
			Metrics:     o.Metrics,
			Fabric:      o.Fabric,
		})
	})
}

// WriteMemberTable renders a membership campaign's per-point verdicts:
// committed epochs, rejected requests, recovery latency, and the epoch
// machinery's traffic, with invariant violations itemized under any
// failing row.
func WriteMemberTable(w io.Writer, title string, results []chaos.MemberResult) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tnodes\tchurn\tverdict\tepochs\trejected\trecovery\tdrops\tdups\tretrans\tstale\tfuture\tackdrop")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Scenario, r.Nodes, r.Transitions, verdict, r.Epochs, r.Rejected,
			r.Recovery, r.Drops, r.Dups, r.Retransmits,
			r.StaleEpochDrops, r.FutureDrops, r.AckedAsDropped)
	}
	tw.Flush()
	for _, r := range results {
		if r.Pass {
			continue
		}
		fmt.Fprintf(w, "\n%s @ %d nodes / %d transitions violated:\n", r.Scenario, r.Nodes, r.Transitions)
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  - %s\n", v)
		}
	}
}

// MemberFailures counts failing results.
func MemberFailures(results []chaos.MemberResult) int {
	n := 0
	for _, r := range results {
		if !r.Pass {
			n++
		}
	}
	return n
}
