package harness

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

func chaosTestScenarios(t *testing.T) []chaos.Scenario {
	t.Helper()
	var out []chaos.Scenario
	for _, name := range []string{"root-link-outage", "dup-storm"} {
		sc, ok := chaos.Find(name)
		if !ok {
			t.Fatalf("scenario %s missing from library", name)
		}
		out = append(out, sc)
	}
	return out
}

// TestChaosSweepDeterministicAcrossWorkers renders the same campaign
// serial and fanned out and requires byte-identical tables — the
// reproducibility contract chaosbench advertises.
func TestChaosSweepDeterministicAcrossWorkers(t *testing.T) {
	scs := chaosTestScenarios(t)
	nodes := []int{4, 8}

	serial := DefaultOptions()
	serial.Seed = 7
	serial.Workers = 1
	fanned := DefaultOptions()
	fanned.Seed = 7
	fanned.Workers = 4

	var a, b bytes.Buffer
	WriteChaosTable(&a, "campaign", serial.ChaosSweep(scs, nodes, 6, 4096))
	WriteChaosTable(&b, "campaign", fanned.ChaosSweep(scs, nodes, 6, 4096))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel sweeps diverged:\n--- serial ---\n%s--- parallel ---\n%s", a.String(), b.String())
	}
	if ChaosFailures(nil) != 0 {
		t.Fatal("empty result set reported failures")
	}
}

// TestChaosSweepSharedMetrics wires a shared registry through the sweep
// (which forces it serial) and checks the campaign's traffic landed in it.
func TestChaosSweepSharedMetrics(t *testing.T) {
	o := DefaultOptions()
	o.Seed = 7
	o.Workers = 4 // must be overridden to serial by the shared registry
	o.Metrics = metrics.New()
	results := o.ChaosSweep(chaosTestScenarios(t), []int{4}, 6, 4096)
	if n := ChaosFailures(results); n != 0 {
		t.Fatalf("%d scenarios failed under shared metrics", n)
	}
	s := o.Metrics.Snapshot()
	if s.CounterSum("net", "injected") == 0 {
		t.Fatal("shared registry saw no fabric traffic")
	}
	if s.CounterSum("net", "duplicated") == 0 {
		t.Fatal("shared registry saw no injected faults (dup-storm duplicates from t=0)")
	}
}

// TestWriteChaosTableItemizesFailures pins the failure rendering: a FAIL
// row must be followed by its itemized violations.
func TestWriteChaosTableItemizesFailures(t *testing.T) {
	res := []chaos.Result{{
		Scenario:   "doomed",
		Nodes:      4,
		Violations: []string{"node 2: lost a byte"},
	}}
	var buf bytes.Buffer
	WriteChaosTable(&buf, "campaign", res)
	out := buf.String()
	for _, want := range []string{"FAIL", "doomed @ 4 nodes violated:", "node 2: lost a byte"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
