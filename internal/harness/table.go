package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/plot"
)

// WriteSeries renders a Series as an aligned text table: one row per
// message size with host-based latency, NIC-based latency, and the
// improvement factor — the rows behind one curve pair of Figures 3/4/5.
func WriteSeries(w io.Writer, title string, s Series) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "size(B)\tHB(µs)\tNB(µs)\tfactor\t\n")
	for _, p := range s {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t\n", p.Size, p.HB, p.NB, p.Factor())
	}
	tw.Flush()
}

// WriteSkew renders Figure 6 rows: average skew against average host CPU
// time for both schemes, plus the improvement factor.
func WriteSkew(w io.Writer, title string, pts []SkewPoint) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "skew(µs)\tHB-cpu(µs)\tNB-cpu(µs)\tfactor\t\n")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.0f\t%.2f\t%.2f\t%.2f\t\n", p.AvgSkewUs, p.HB, p.NB, p.Factor())
	}
	tw.Flush()
}

// WriteFig7 renders Figure 7 rows: improvement factor per system size.
func WriteFig7(w io.Writer, title string, pts []Fig7Point) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "nodes\tsize(B)\tfactor\t\n")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t\n", p.Nodes, p.Size, p.Factor)
	}
	tw.Flush()
}

// WriteScale renders the scalability sweep.
func WriteScale(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "nodes\tHB(µs)\tNB(µs)\tfactor\t\n")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t\n", p.Nodes, p.HB, p.NB, p.Factor())
	}
	tw.Flush()
}

// WriteCollScale renders the collective scaling sweep: one row per
// (collective, system size) with host-based latency, NIC-engine latency
// and the improvement factor. Points where the MPI layer's NIC path does
// not apply (allgather results past the eager limit) are annotated — the
// NB column there measured the host fallback.
func WriteCollScale(w io.Writer, title string, pts []CollPoint) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "collective\tnodes\tHB(µs)\tNB(µs)\tfactor\t\t\n")
	for _, p := range pts {
		note := ""
		if p.NBFallback {
			note = "host fallback (result > eager limit)"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%s\t\n",
			p.Collective, p.Nodes, p.HB, p.NB, p.Factor(), note)
	}
	tw.Flush()
}

// PlotFactors renders the improvement-factor curves of several series on
// one ASCII chart — the shape of the paper's (b) panels.
func PlotFactors(w io.Writer, title string, named map[string]Series) {
	c := &plot.Chart{Title: title, XLabel: "message size", YLabel: "improvement factor HB/NB", Width: 64, Height: 14}
	var ticks map[int]string
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		s := named[name]
		y := make([]float64, len(s))
		for i, p := range s {
			y[i] = p.Factor()
		}
		c.Add(name, y)
		if ticks == nil && len(s) > 0 {
			ticks = map[int]string{0: sizeLabel(s[0].Size), len(s) - 1: sizeLabel(s[len(s)-1].Size)}
			mid := len(s) / 2
			ticks[mid] = sizeLabel(s[mid].Size)
		}
	}
	c.XTicks = ticks
	c.Render(w)
}

// PlotSkew renders Figure 6's CPU-time curves for both schemes.
func PlotSkew(w io.Writer, title string, pts []SkewPoint) {
	c := &plot.Chart{Title: title, XLabel: "avg skew (µs)", YLabel: "host CPU µs", Width: 64, Height: 14}
	hb := make([]float64, len(pts))
	nb := make([]float64, len(pts))
	ticks := map[int]string{}
	for i, p := range pts {
		hb[i] = p.HB
		nb[i] = p.NB
		if i == 0 || i == len(pts)-1 {
			ticks[i] = fmt.Sprintf("%.0f", p.AvgSkewUs)
		}
	}
	c.Add("host-based", hb)
	c.Add("NIC-based", nb)
	c.XTicks = ticks
	c.Render(w)
}

func sizeLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
