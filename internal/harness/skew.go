package harness

import (
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// SkewPoint is one measurement of Figure 6: the average host CPU time
// spent inside MPI_Bcast under a given average process skew.
type SkewPoint struct {
	AvgSkewUs float64
	HB        float64 // µs of host CPU time per broadcast
	NB        float64
}

// Factor reports the improvement factor HB/NB.
func (p SkewPoint) Factor() float64 {
	if p.NB == 0 {
		return 0
	}
	return p.HB / p.NB
}

// SkewCPUTime measures the average host CPU time of MPI_Bcast with random
// process skew, reproducing the paper's protocol: all processes
// synchronize with MPI_Barrier; every non-root process draws a skew
// uniformly between the negative and positive half of a maximum value;
// processes with positive skew compute for that long before calling
// MPI_Bcast; the time spent performing MPI_Bcast is averaged over
// processes and iterations. avgSkewUs is the mean absolute skew, so the
// maximum value is four times it (E|U(-M/2, M/2)| = M/4).
//
// Skew draws come from per-rank generators seeded independently of the
// protocol under test, so the HB and NB runs see identical skew patterns.
func (o Options) SkewCPUTime(nodes, size int, avgSkewUs float64, useNB bool) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	w := mpi.NewWorld(c, useNB)
	maxSkew := sim.Micros(4 * avgSkewUs)
	msg := payload(size)

	rngs := make([]*sim.RNG, nodes)
	for i := range rngs {
		rngs[i] = sim.NewRNG(o.Seed*1_000_003 + int64(i))
	}

	var totalCPU sim.Time
	samples := 0
	w.Run(func(r *mpi.Rank) {
		buf := make([]byte, size)
		if r.ID() == 0 {
			copy(buf, msg)
		}
		for i := 0; i < o.Warmup; i++ {
			r.Barrier()
			r.Bcast(0, buf)
		}
		for i := 0; i < o.SkewIters; i++ {
			r.Barrier()
			if r.ID() != 0 {
				if s := rngs[r.ID()].SymmetricDuration(maxSkew); s > 0 {
					r.Proc().Compute(s)
				}
			}
			t0 := r.Now()
			r.Bcast(0, buf)
			totalCPU += r.Now() - t0
			samples++
		}
	})
	return totalCPU.Micros() / float64(samples)
}

// SkewSweep runs the skewed-broadcast CPU-time comparison across average
// skews for one system and message size. Points run in parallel per
// Options.Workers. (The package-level SkewSweep function is the default
// x-axis for this sweep.)
func (o Options) SkewSweep(nodes, size int, avgSkewsUs []float64) []SkewPoint {
	return parallelMap(o.workerCount(len(avgSkewsUs)), avgSkewsUs, func(_ int, s float64) SkewPoint {
		return SkewPoint{
			AvgSkewUs: s,
			HB:        o.SkewCPUTime(nodes, size, s, false),
			NB:        o.SkewCPUTime(nodes, size, s, true),
		}
	})
}

// Fig6 sweeps average skew for one message size on a 16-node system,
// reproducing one curve pair of Figures 6(a)/6(b).
func (o Options) Fig6(nodes, size int, avgSkewsUs []float64) []SkewPoint {
	return o.SkewSweep(nodes, size, avgSkewsUs)
}

// Fig7Point is one bar of Figure 7: the CPU-time improvement factor at a
// fixed 400 µs average skew for a given system size.
type Fig7Point struct {
	Nodes  int
	Size   int
	Factor float64
}

// Fig7 sweeps system sizes at 400 µs average skew, reproducing Figure 7.
// The (nodes, size) grid points run in parallel per Options.Workers.
func (o Options) Fig7(nodeCounts []int, sizes []int) []Fig7Point {
	var pts []Fig7Point
	for _, n := range nodeCounts {
		for _, s := range sizes {
			pts = append(pts, Fig7Point{Nodes: n, Size: s})
		}
	}
	return parallelMap(o.workerCount(len(pts)), pts, func(_ int, p Fig7Point) Fig7Point {
		hb := o.SkewCPUTime(p.Nodes, p.Size, 400, false)
		nb := o.SkewCPUTime(p.Nodes, p.Size, 400, true)
		p.Factor = hb / nb
		return p
	})
}

// SkewSweep returns the paper's Figure 6 x-axis: 0 to 400 µs average skew.
func SkewSweep() []float64 { return []float64{0, 50, 100, 150, 200, 250, 300, 350, 400} }
