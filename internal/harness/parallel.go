package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel sweep execution. Every sweep point the harness measures is an
// independent experiment: it builds its own cluster (its own engine, its
// own RNGs seeded from Options.Seed) and returns plain numbers. Points
// therefore fan out across goroutines with no shared mutable state, and —
// because each point's result is a pure function of (Options, point
// parameters) — the reassembled output is byte-identical to a serial run.
//
// The one shared-state exception is Options.Metrics: the metrics package
// is deliberately unsynchronized (one engine runs at a time), so wiring a
// shared Registry through every cluster forces the sweep serial.

// workerCount resolves how many goroutines a sweep over n points may use:
// Options.Workers when positive, else GOMAXPROCS, clamped to n, and forced
// to 1 whenever a shared metrics registry is wired. When each point itself
// runs sharded (Options.Shards > 1), every point already occupies Shards
// OS threads, so the fan-out is further capped to keep workers x Shards
// within GOMAXPROCS: intra-run and inter-run parallelism share one CPU
// budget instead of multiplying into oversubscription.
func (o Options) workerCount(n int) int {
	if o.Metrics != nil {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.Shards > 1 {
		if cap := runtime.GOMAXPROCS(0) / o.Shards; w > cap {
			w = cap
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelMap evaluates fn over items on up to workers goroutines and
// returns the results in input order. workers <= 1 runs serially on the
// calling goroutine. A panic in any point is re-raised in the caller after
// all workers stop.
func parallelMap[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("harness: sweep point panicked: %v", panicked))
	}
	return out
}
