package harness

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Scalability experiment — the paper's future work ("we intend to study
// its scalability in large scale systems"). Beyond 16 nodes the fabric
// becomes a Clos of 16-port crossbars, and the metric is the average time
// until the last host has the complete message.

// ScalePoint is one system size's comparison.
type ScalePoint struct {
	Nodes int
	HB    float64 // µs, host-based multicast
	NB    float64 // µs, NIC-based multicast
}

// Factor reports HB/NB.
func (p ScalePoint) Factor() float64 {
	if p.NB == 0 {
		return 0
	}
	return p.HB / p.NB
}

// lastDelivery measures the average latency until the last destination's
// host holds the message, from recorded delivery timestamps. Only one
// designated node (the highest network ID) acknowledges each broadcast —
// acknowledgment implosion at the root NIC would contend with the
// replicas still being transmitted and distort the very thing being
// measured, which is why the paper's methodology uses a single leaf ack.
func (o Options) lastDelivery(nodes, size int, nb bool) float64 {
	cfg := o.config(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(benchPort)
	var tr *tree.Tree
	if nb {
		tr = o.nbTree(cfg, 0, c.Members(), size)
		c.InstallGroup(gmGroup, tr, benchPort, benchPort)
	} else {
		tr = tree.Binomial(0, c.Members())
	}
	total := o.Warmup + o.Iters
	starts := make([]sim.Time, total)
	nodesList := tr.Nodes()
	designated := nodesList[len(nodesList)-1]

	// Per-node arrival rows: destinations run on different engines when the
	// cluster is sharded, so the per-iteration max is folded after the run
	// barrier rather than updated from concurrent processes.
	arrivals := make([][]sim.Time, nodes)
	for _, n := range tr.Nodes() {
		if n == 0 {
			continue
		}
		n := n
		children := tr.Children(n)
		row := make([]sim.Time, total)
		arrivals[n] = row
		c.SpawnOn(n, "dest", func(p *sim.Proc) {
			ports[n].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ev := ports[n].Recv(p)
				if !nb {
					for _, ch := range children {
						ports[n].Send(p, ch, benchPort, ev.Data)
					}
				}
				row[i] = p.Now()
				if n == designated {
					ports[n].Send(p, 0, benchPort, ack1)
				}
			}
		})
	}
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ports[0].ProvideN(total, 4)
		for i := 0; i < total; i++ {
			starts[i] = p.Now()
			if nb {
				c.Nodes[0].Ext.Mcast(p, ports[0], gmGroup, msg)
			} else {
				for _, ch := range tr.Children(0) {
					ports[0].Send(p, ch, benchPort, msg)
				}
			}
			ports[0].Recv(p) // the designated node's acknowledgment
		}
	})
	runToCompletion(c)

	sum := 0.0
	for i := o.Warmup; i < total; i++ {
		var worst sim.Time
		for _, row := range arrivals {
			if row != nil && row[i] > worst {
				worst = row[i]
			}
		}
		sum += (worst - starts[i]).Micros()
	}
	return sum / float64(o.Iters)
}

// ScaleSweep compares the schemes across system sizes for one message
// size, including Clos-routed systems beyond one crossbar. Points run in
// parallel per Options.Workers.
func (o Options) ScaleSweep(nodeCounts []int, size int) []ScalePoint {
	return parallelMap(o.workerCount(len(nodeCounts)), nodeCounts, func(_, n int) ScalePoint {
		return ScalePoint{
			Nodes: n,
			HB:    o.lastDelivery(n, size, false),
			NB:    o.lastDelivery(n, size, true),
		}
	})
}

// ScaleNodeCounts is the default sweep: one crossbar (8, 16), two-level
// Clos (32-128), and a three-level fat tree (256).
func ScaleNodeCounts() []int { return []int{8, 16, 32, 64, 128, 256} }
