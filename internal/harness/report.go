package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/lanai"
	"repro/internal/metrics"
)

// Reporter turns a shared metrics registry into per-experiment reports.
// Mark pins a baseline; Report prints everything accumulated since the
// last mark (counters and histograms subtract, gauges carry their latest
// values) and advances it. A nil Reporter is inert, so callers thread it
// unconditionally and construct it only when metrics were requested.
type Reporter struct {
	// JSON switches Report from the human table to machine-readable JSON.
	JSON bool

	reg  *metrics.Registry
	prev metrics.Snapshot
}

// NewReporter returns a reporter over reg, or nil when reg is nil or
// disabled (every method on a nil Reporter is a no-op).
func NewReporter(reg *metrics.Registry) *Reporter {
	if !reg.Enabled() {
		return nil
	}
	return &Reporter{reg: reg, prev: reg.Snapshot()}
}

// Enabled reports whether the reporter will produce output.
func (r *Reporter) Enabled() bool { return r != nil }

// Mark advances the baseline without reporting, discarding anything
// accumulated since the previous mark (e.g. warm-up traffic).
func (r *Reporter) Mark() {
	if r == nil {
		return
	}
	r.prev = r.reg.Snapshot()
}

// Delta returns the metrics accumulated since the last mark without
// advancing it.
func (r *Reporter) Delta() metrics.Snapshot {
	if r == nil {
		return metrics.Snapshot{}
	}
	return r.reg.Snapshot().Diff(r.prev)
}

// Report writes the delta since the last mark under title and advances
// the mark, so consecutive calls partition the run into experiments.
func (r *Reporter) Report(w io.Writer, title string) {
	if r == nil {
		return
	}
	d := r.Delta()
	if r.JSON {
		fmt.Fprintf(w, "{\"experiment\": %q, \"metrics\": ", title)
		d.WriteJSON(w)
		fmt.Fprintln(w, "}")
	} else {
		fmt.Fprintf(w, "\n-- metrics: %s --\n", title)
		d.WriteTable(w)
		WriteBreakdown(w, d)
	}
	r.prev = r.reg.Snapshot()
}

// WriteBreakdown accounts one experiment's work layer by layer — wire
// occupancy, NIC processor and DMA engine busy time, protocol traffic, and
// NIC-resident forwarding — the decomposition behind the paper's host- vs
// NIC-based comparison.
func WriteBreakdown(w io.Writer, d metrics.Snapshot) {
	ns := func(v uint64) string {
		switch f := float64(v); {
		case f >= 1e6:
			return fmt.Sprintf("%.3fms", f/1e6)
		case f >= 1e3:
			return fmt.Sprintf("%.2fµs", f/1e3)
		default:
			return fmt.Sprintf("%.0fns", f)
		}
	}
	fmt.Fprintln(w, "per-layer breakdown:")
	fmt.Fprintf(w, "  link:       %s busy, %d pkts delivered, %s stalled (up %s / switch %s), %d dropped\n",
		ns(d.CounterSum(fabric.Component, "link_busy_ns")),
		d.CounterSum(fabric.Component, "delivered"),
		ns(d.CounterSum(fabric.Component, "uplink_stall_ns")+d.CounterSum(fabric.Component, "switch_stall_ns")),
		ns(d.CounterSum(fabric.Component, "uplink_stall_ns")),
		ns(d.CounterSum(fabric.Component, "switch_stall_ns")),
		d.CounterSum(fabric.Component, "dropped"))
	fmt.Fprintf(w, "  NIC CPU:    %s busy\n", ns(d.CounterSum(lanai.Component, "cpu_busy_ns")))
	fmt.Fprintf(w, "  DMA:        %s send-side, %s recv-side, %d recv-buffer stalls\n",
		ns(d.CounterSum(lanai.Component, "sdma_busy_ns")),
		ns(d.CounterSum(lanai.Component, "rdma_busy_ns")),
		d.CounterSum(lanai.Component, "recvbuf_stalls"))
	tokenWait := d.HistMerged(gm.Component, "token_wait_ns")
	fmt.Fprintf(w, "  protocol:   %d data sent, %d acks, %d retransmits, %d timeouts, token wait mean %s\n",
		d.CounterSum(gm.Component, "data_sent"),
		d.CounterSum(gm.Component, "acks_sent"),
		d.CounterSum(gm.Component, "retransmits"),
		d.CounterSum(gm.Component, "timeouts"),
		ns(uint64(tokenWait.Mean())))
	fanout := d.HistMerged(core.Component, "fanout")
	ackLat := d.HistMerged(core.Component, "ack_latency_ns")
	fmt.Fprintf(w, "  forwarding: %d forwards (%d before full arrival), %d header rewrites, mean fanout %.1f, ack latency mean %s\n",
		d.CounterSum(core.Component, "mcast_forwarded"),
		d.CounterSum(core.Component, "forwards_before_full"),
		d.CounterSum(core.Component, "header_rewrites"),
		fanout.Mean(),
		ns(uint64(ackLat.Mean())))
}
