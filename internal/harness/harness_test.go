package harness

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/tree"
)

// fast returns low-iteration options: the simulation is deterministic, so
// shape assertions converge with few iterations.
func fast() Options {
	o := DefaultOptions()
	o.Iters = 25
	o.SkewIters = 40
	return o
}

func TestMessageSizes(t *testing.T) {
	s := MessageSizes(16384)
	if s[0] != 1 || s[len(s)-1] != 16384 || len(s) != 15 {
		t.Fatalf("unexpected sweep %v", s)
	}
}

func TestPointFactor(t *testing.T) {
	p := Point{Size: 1, HB: 30, NB: 15}
	if p.Factor() != 2 {
		t.Fatalf("factor = %v, want 2", p.Factor())
	}
	if (Point{}).Factor() != 0 {
		t.Fatal("zero point factor must be 0")
	}
}

// Figure 3 signature: NIC-based multisend beats host-based multiple
// unicasts clearly for small messages and levels off at or slightly below
// parity for large ones.
func TestFig3Signature(t *testing.T) {
	o := fast()
	small := Point{Size: 64, HB: o.MultisendHB(4, 64), NB: o.MultisendNB(4, 64)}
	if f := small.Factor(); f < 1.5 {
		t.Errorf("small-message multisend factor %.2f, want >= 1.5 (paper: up to 2.05)", f)
	}
	large := Point{Size: 16384, HB: o.MultisendHB(4, 16384), NB: o.MultisendNB(4, 16384)}
	if f := large.Factor(); f < 0.90 || f > 1.05 {
		t.Errorf("large-message multisend factor %.2f, want ~1 or slightly below", f)
	}
	if small.Factor() <= large.Factor() {
		t.Errorf("multisend improvement does not decay with size: %.2f vs %.2f",
			small.Factor(), large.Factor())
	}
}

// Figure 3 also shows improvement growing with destination count.
func TestFig3MoreDestinationsMoreImprovement(t *testing.T) {
	o := fast()
	f3 := Point{HB: o.MultisendHB(3, 32), NB: o.MultisendNB(3, 32)}.Factor()
	f8 := Point{HB: o.MultisendHB(8, 32), NB: o.MultisendNB(8, 32)}.Factor()
	if f8 <= f3 {
		t.Errorf("8-destination factor %.2f not above 3-destination %.2f", f8, f3)
	}
}

// Figure 5 signature: clear win for small messages, a dip at the single-
// packet large sizes (2-4 KB), and recovery at 16 KB through pipelining.
func TestFig5Signature(t *testing.T) {
	o := fast()
	factor := func(size int) float64 {
		return Point{HB: o.MulticastHB(16, size), NB: o.MulticastNB(16, size)}.Factor()
	}
	small := factor(128)
	dip := factor(4096)
	big := factor(16384)
	if small < 1.4 {
		t.Errorf("small-message multicast factor %.2f, want >= 1.4 (paper: 1.48)", small)
	}
	if dip >= small {
		t.Errorf("no dip at 4KB relative to small messages: small=%.2f dip=%.2f", small, dip)
	}
	// The paper's 16 KB factor (1.86) exceeds its 4 KB dip; our host-based
	// baseline pipelines DMA against the wire within each hop, so the
	// recovery is muted — but 16 KB must at least hold the dip level and
	// stay a clear NIC-based win (see EXPERIMENTS.md).
	if big < dip-0.10 {
		t.Errorf("16KB factor %.2f fell below the 4KB dip %.2f", big, dip)
	}
	if big < 1.4 {
		t.Errorf("16KB multicast factor %.2f, want >= 1.4 (paper: 1.86, via pipelining)", big)
	}
}

// Figure 5 improvement grows with system size for small messages.
func TestFig5ScalesWithSystemSize(t *testing.T) {
	o := fast()
	f4 := Point{HB: o.MulticastHB(4, 64), NB: o.MulticastNB(4, 64)}.Factor()
	f16 := Point{HB: o.MulticastHB(16, 64), NB: o.MulticastNB(16, 64)}.Factor()
	if f16 <= f4*0.95 {
		t.Errorf("16-node factor %.2f not above 4-node %.2f", f16, f4)
	}
}

// Figure 4 signature: MPI-level broadcast improves comparably to GM level.
func TestFig4Signature(t *testing.T) {
	o := fast()
	small := Point{HB: o.MPIBcast(8, 16, false), NB: o.MPIBcast(8, 16, true)}
	if f := small.Factor(); f < 1.3 {
		t.Errorf("MPI small-message factor %.2f, want >= 1.3 (paper: up to 1.78)", f)
	}
	eager := Point{HB: o.MPIBcast(8, 8192, false), NB: o.MPIBcast(8, 8192, true)}
	if f := eager.Factor(); f < 1.2 {
		t.Errorf("MPI 8KB factor %.2f, want >= 1.2 (paper: up to 2.02)", f)
	}
}

// Section 6.1: installing the multicast extension must not perturb unicast.
func TestUnicastNoRegression(t *testing.T) {
	o := fast()
	for _, size := range []int{4, 4096} {
		plain := o.UnicastOneWay(size, false)
		ext := o.UnicastOneWay(size, true)
		if plain != ext {
			t.Errorf("size %d: unicast latency changed with extension: %.3f vs %.3f",
				size, plain, ext)
		}
	}
}

// Figure 6 signature: host-based CPU time grows with skew; NIC-based stays
// flat or falls; the improvement factor grows with skew.
func TestFig6Signature(t *testing.T) {
	o := fast()
	hb0 := o.SkewCPUTime(16, 4, 0, false)
	hb400 := o.SkewCPUTime(16, 4, 400, false)
	nb0 := o.SkewCPUTime(16, 4, 0, true)
	nb400 := o.SkewCPUTime(16, 4, 400, true)
	if hb400 <= hb0 {
		t.Errorf("host-based CPU time did not grow with skew: %.1f -> %.1f", hb0, hb400)
	}
	if nb400 > nb0*1.2 {
		t.Errorf("NIC-based CPU time grew with skew: %.1f -> %.1f", nb0, nb400)
	}
	if f0, f400 := hb0/nb0, hb400/nb400; f400 <= f0 {
		t.Errorf("improvement factor did not grow with skew: %.2f -> %.2f", f0, f400)
	}
}

// Figure 7 signature: at fixed 400us skew the factor grows with system size.
func TestFig7Signature(t *testing.T) {
	o := fast()
	pts := o.Fig7([]int{4, 16}, []int{4})
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Factor <= pts[0].Factor {
		t.Errorf("skew improvement does not grow with size: %d nodes %.2f vs %d nodes %.2f",
			pts[0].Nodes, pts[0].Factor, pts[1].Nodes, pts[1].Factor)
	}
}

// Ablation: the tree shape matters — the optimal tree must beat a binomial
// tree under NIC-based multicast for small messages.
func TestAblationTreeShape(t *testing.T) {
	o := fast()
	opt := o.MulticastNB(16, 32)
	o.NBTree = func(cfg *cluster.Config, root fabric.NodeID, members []fabric.NodeID, size int) *tree.Tree {
		return tree.Binomial(root, members)
	}
	bin := o.MulticastNB(16, 32)
	if opt >= bin {
		t.Errorf("optimal tree (%.1fus) not faster than binomial (%.1fus) for small messages", opt, bin)
	}
}

// The measurement harness itself is deterministic.
func TestHarnessDeterminism(t *testing.T) {
	o := fast()
	a := o.MulticastNB(8, 256)
	b := o.MulticastNB(8, 256)
	if a != b || math.IsNaN(a) {
		t.Fatalf("non-deterministic measurement: %v vs %v", a, b)
	}
}

// Reliability under injected loss: the NIC-based multicast still completes
// and reports sane latencies with a lossy fabric.
func TestMulticastUnderLossStillMeasurable(t *testing.T) {
	o := fast()
	o.Iters = 10
	o.Warmup = 5
	clean := o.MulticastNB(8, 512)
	o.Mut = func(c *cluster.Config) { c.LossRate = 0.01; c.Seed = 3 }
	lossy := o.MulticastNB(8, 512)
	if lossy < clean {
		t.Errorf("lossy run (%.1fus) faster than clean run (%.1fus)?", lossy, clean)
	}
}

func TestSkewSweepShape(t *testing.T) {
	s := SkewSweep()
	if s[0] != 0 || s[len(s)-1] != 400 {
		t.Fatalf("skew sweep %v does not span 0..400", s)
	}
}

// Scalability (the paper's future-work claim): the NIC-based advantage
// grows with system size, including across the Clos transition at >16
// nodes.
func TestScalabilitySignature(t *testing.T) {
	o := fast()
	pts := o.ScaleSweep([]int{8, 32, 128}, 64)
	for i := 1; i < len(pts); i++ {
		if pts[i].Factor() <= pts[i-1].Factor() {
			t.Fatalf("factor not growing with size: %d nodes %.2f vs %d nodes %.2f",
				pts[i-1].Nodes, pts[i-1].Factor(), pts[i].Nodes, pts[i].Factor())
		}
		if pts[i].NB <= pts[i-1].NB {
			t.Fatalf("NB latency not growing with size: %v", pts)
		}
	}
	if last := pts[len(pts)-1]; last.Factor() < 3.0 {
		t.Errorf("128-node factor %.2f, want >= 3.0", last.Factor())
	}
}

// NIC-level barrier (future-work collective): faster than the host-level
// dissemination barrier at every size, with the gap growing with nodes.
func TestNICBarrierSignature(t *testing.T) {
	o := fast()
	for _, nodes := range []int{4, 16} {
		nic := o.NICBarrier(nodes)
		host := o.HostBarrier(nodes)
		if nic >= host {
			t.Errorf("%d nodes: NIC barrier %.1fus not faster than host barrier %.1fus",
				nodes, nic, host)
		}
	}
}

// Bandwidth sanity: large-message unicast goodput sits in the GM-era band
// (wire is 250 MB/s; protocol efficiency lands in the 150-250 range), and
// multicast aggregate bandwidth exceeds the unicast wire rate because the
// NICs replicate inside the fabric.
func TestBandwidthEnvelope(t *testing.T) {
	o := fast()
	uni := o.UnicastBandwidth(65536)
	if uni < 120 || uni > 250 {
		t.Errorf("unicast streaming bandwidth %.1f MB/s outside [120, 250]", uni)
	}
	agg := o.MulticastAggregateBandwidth(16, 8192)
	if agg <= uni {
		t.Errorf("multicast aggregate %.1f MB/s not above unicast %.1f MB/s", agg, uni)
	}
}
