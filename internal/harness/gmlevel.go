package harness

import (
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

const benchPort gm.PortID = 1

// gmGroup is the GroupID the GM-level experiments install.
const gmGroup gm.GroupID = 1

// MultisendNB measures the NIC-based multisend: one multisend request per
// iteration to ndest destinations, waiting for the acknowledgment from the
// last destination (the send token returning means every destination's NIC
// acknowledged). Returns the averaged latency in microseconds — Figure 3's
// NB curves.
func (o Options) MultisendNB(ndest, size int) float64 {
	c := cluster.NewFromConfig(o.config(ndest + 1))
	ports := c.OpenPorts(benchPort)
	tr := tree.Flat(0, c.Members())
	c.InstallGroup(gmGroup, tr, benchPort, benchPort)
	total := o.Warmup + o.Iters
	for d := 1; d <= ndest; d++ {
		d := d
		c.SpawnOn(fabric.NodeID(d), "dest", func(p *sim.Proc) {
			ports[d].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ports[d].Recv(p)
			}
		})
	}
	var avg float64
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < o.Warmup; i++ {
			ext.McastSync(p, ports[0], gmGroup, msg)
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			ext.McastSync(p, ports[0], gmGroup, msg)
		}
		avg = (p.Now() - t0).Micros() / float64(o.Iters)
	})
	runToCompletion(c)
	return avg
}

// MultisendHB measures the traditional host-based multiple unicasts that
// Figure 3 compares against: ndest send requests posted per iteration,
// waiting for all acknowledgments.
func (o Options) MultisendHB(ndest, size int) float64 {
	c := cluster.NewFromConfig(o.config(ndest + 1))
	ports := c.OpenPorts(benchPort)
	total := o.Warmup + o.Iters
	for d := 1; d <= ndest; d++ {
		d := d
		c.SpawnOn(fabric.NodeID(d), "dest", func(p *sim.Proc) {
			ports[d].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ports[d].Recv(p)
			}
		})
	}
	var avg float64
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		iter := func() {
			for d := 1; d <= ndest; d++ {
				ports[0].Send(p, fabric.NodeID(d), benchPort, msg)
			}
			for d := 1; d <= ndest; d++ {
				ports[0].WaitSendDone(p)
			}
		}
		for i := 0; i < o.Warmup; i++ {
			iter()
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			iter()
		}
		avg = (p.Now() - t0).Micros() / float64(o.Iters)
	})
	runToCompletion(c)
	return avg
}

// Fig3 sweeps the multisend comparison over message sizes for one
// destination count, reproducing one curve pair of Figures 3(a)/3(b).
// Points run in parallel per Options.Workers.
func (o Options) Fig3(ndest int, sizes []int) Series {
	return Series(parallelMap(o.workerCount(len(sizes)), sizes, func(_, s int) Point {
		return Point{Size: s, HB: o.MultisendHB(ndest, s), NB: o.MultisendNB(ndest, s)}
	}))
}

// multicastNBOnce measures the NIC-based multicast over the size-specific
// optimal tree with one designated leaf returning an application-level
// 1-byte acknowledgment, the paper's Figure 5 protocol.
func (o Options) multicastNBOnce(nodes, size int, designated fabric.NodeID) float64 {
	cfg := o.config(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(benchPort)
	tr := o.nbTree(cfg, 0, c.Members(), size)
	c.InstallGroup(gmGroup, tr, benchPort, benchPort)
	total := o.Warmup + o.Iters
	for _, n := range tr.Nodes() {
		if n == 0 {
			continue
		}
		n := n
		c.SpawnOn(n, "dest", func(p *sim.Proc) {
			ports[n].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ports[n].Recv(p)
				if n == designated {
					ports[n].Send(p, 0, benchPort, ack1)
				}
			}
		})
	}
	var avg float64
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		ports[0].ProvideN(total, 4)
		iter := func() {
			ext.Mcast(p, ports[0], gmGroup, msg)
			ports[0].Recv(p) // designated leaf's acknowledgment
		}
		for i := 0; i < o.Warmup; i++ {
			iter()
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			iter()
		}
		avg = (p.Now() - t0).Micros() / float64(o.Iters)
	})
	runToCompletion(c)
	return avg
}

// multicastHBOnce measures the traditional host-based multicast: unicasts
// forwarded by the host process at every node of a binomial tree.
func (o Options) multicastHBOnce(nodes, size int, designated fabric.NodeID) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	ports := c.OpenPorts(benchPort)
	tr := tree.Binomial(0, c.Members())
	total := o.Warmup + o.Iters
	for _, n := range tr.Nodes() {
		if n == 0 {
			continue
		}
		n := n
		children := tr.Children(n)
		c.SpawnOn(n, "node", func(p *sim.Proc) {
			ports[n].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ev := ports[n].Recv(p)
				for _, ch := range children {
					ports[n].Send(p, ch, benchPort, ev.Data)
				}
				if n == designated {
					ports[n].Send(p, 0, benchPort, ack1)
				}
			}
		})
	}
	var avg float64
	msg := payload(size)
	children := tr.Children(0)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ports[0].ProvideN(total, 4)
		iter := func() {
			for _, ch := range children {
				ports[0].Send(p, ch, benchPort, msg)
			}
			ports[0].Recv(p)
		}
		for i := 0; i < o.Warmup; i++ {
			iter()
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			iter()
		}
		avg = (p.Now() - t0).Micros() / float64(o.Iters)
	})
	runToCompletion(c)
	return avg
}

// MulticastNB takes the maximum over designated-leaf choices, as the paper
// does ("the same test was repeated with different leaf nodes returning
// the acknowledgment; the maximum from all the tests was taken").
func (o Options) MulticastNB(nodes, size int) float64 {
	cfg := o.config(nodes)
	tr := o.nbTree(cfg, 0, membersOf(nodes), size)
	var worst []float64
	for _, leaf := range tr.Leaves() {
		worst = append(worst, o.multicastNBOnce(nodes, size, leaf))
	}
	return stats.Max(worst)
}

// MulticastHB is the host-based counterpart over the binomial tree.
func (o Options) MulticastHB(nodes, size int) float64 {
	tr := tree.Binomial(0, membersOf(nodes))
	var worst []float64
	for _, leaf := range tr.Leaves() {
		worst = append(worst, o.multicastHBOnce(nodes, size, leaf))
	}
	return stats.Max(worst)
}

// GMSweep runs the GM-level multicast comparison across message sizes for
// one system size. Points run in parallel per Options.Workers.
func (o Options) GMSweep(nodes int, sizes []int) Series {
	return Series(parallelMap(o.workerCount(len(sizes)), sizes, func(_, s int) Point {
		return Point{Size: s, HB: o.MulticastHB(nodes, s), NB: o.MulticastNB(nodes, s)}
	}))
}

// Fig5 sweeps the GM-level multicast comparison over message sizes for one
// system size, reproducing one curve pair of Figures 5(a)/5(b).
func (o Options) Fig5(nodes int, sizes []int) Series {
	return o.GMSweep(nodes, sizes)
}

// UnicastOneWay measures the plain GM one-way latency, used for the
// no-regression check of Section 6.1 and for calibration reporting.
func (o Options) UnicastOneWay(size int, withExtension bool) float64 {
	cfg := o.config(2)
	var c *cluster.Cluster
	if withExtension {
		c = cluster.NewFromConfig(cfg)
	} else {
		c = cluster.NewPlain(cfg)
	}
	ports := c.OpenPorts(benchPort)
	total := o.Warmup + o.Iters
	var avg float64
	c.SpawnOn(1, "echo", func(p *sim.Proc) {
		ports[1].ProvideN(total, size)
		for i := 0; i < total; i++ {
			ports[1].Recv(p)
			ports[1].Send(p, 0, benchPort, ack1)
		}
	})
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ports[0].ProvideN(total, 4)
		iter := func() {
			ports[0].Send(p, 1, benchPort, msg)
			ports[0].Recv(p)
		}
		for i := 0; i < o.Warmup; i++ {
			iter()
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			iter()
		}
		avg = (p.Now() - t0).Micros() / float64(o.Iters) / 2 // half round trip
	})
	runToCompletion(c)
	return avg
}

var ack1 = []byte{0xA5}

func payload(size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func membersOf(n int) []fabric.NodeID {
	out := make([]fabric.NodeID, n)
	for i := range out {
		out[i] = fabric.NodeID(i)
	}
	return out
}

// NICBarrier measures the average latency of the NIC-level barrier — the
// future-work collective — over the given node count.
func (o Options) NICBarrier(nodes int) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	ports := c.OpenPorts(benchPort)
	for _, n := range c.Nodes {
		n.Ext.InstallBarrier(gmGroup, c.Members(), benchPort, nil)
	}
	total := o.Warmup + o.Iters
	var avg float64
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(fabric.NodeID(i), "p", func(p *sim.Proc) {
			for r := 0; r < total; r++ {
				c.Nodes[i].Ext.Barrier(p, ports[i], gmGroup)
			}
			if i == 0 {
				avg = p.Now().Micros() / float64(total)
			}
		})
	}
	runToCompletion(c)
	return avg
}

// HostBarrier measures a host-level dissemination barrier over GM
// unicasts, the baseline for the NIC-level barrier.
func (o Options) HostBarrier(nodes int) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	ports := c.OpenPorts(benchPort)
	total := o.Warmup + o.Iters
	rounds := 0
	for k := 1; k < nodes; k <<= 1 {
		rounds++
	}
	var avg float64
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(fabric.NodeID(i), "p", func(p *sim.Proc) {
			ports[i].ProvideN(total*rounds, 16)
			for r := 0; r < total; r++ {
				for k := 1; k < nodes; k <<= 1 {
					dst := fabric.NodeID((i + k) % nodes)
					ports[i].Send(p, dst, benchPort, ack1)
					ports[i].Recv(p)
				}
			}
			if i == 0 {
				avg = p.Now().Micros() / float64(total)
			}
		})
	}
	runToCompletion(c)
	return avg
}

// LossRecovery measures multicast latency on a lossy fabric under the
// three recovery configurations: fixed timeout (the paper's), NACK fast
// recovery, and adaptive RTT-estimated timeouts (both extensions).
func (o Options) LossRecovery(nodes, size int, lossRate float64, mode string) float64 {
	o2 := o
	o2.Mut = func(c *cluster.Config) {
		if o.Mut != nil {
			o.Mut(c)
		}
		c.LossRate = lossRate
		switch mode {
		case "fixed":
		case "nack":
			c.GM.EnableNacks = true
		case "adaptive":
			c.GM.AdaptiveRTO = true
		case "nack+adaptive":
			c.GM.EnableNacks = true
			c.GM.AdaptiveRTO = true
		default:
			panic("harness: unknown recovery mode " + mode)
		}
	}
	return o2.MulticastNB(nodes, size)
}

// UnicastBandwidth measures streaming goodput (MB/s) for back-to-back
// messages of one size over a single connection — the classic GM
// bandwidth microbenchmark.
func (o Options) UnicastBandwidth(size int) float64 {
	c := cluster.NewFromConfig(o.config(2))
	ports := c.OpenPorts(benchPort)
	total := o.Warmup + o.Iters
	var mbps float64
	c.SpawnOn(1, "recv", func(p *sim.Proc) {
		ports[1].ProvideN(total, size)
		for i := 0; i < total; i++ {
			ports[1].Recv(p)
		}
	})
	msg := payload(size)
	c.SpawnOn(0, "send", func(p *sim.Proc) {
		for i := 0; i < o.Warmup; i++ {
			ports[0].SendSync(p, 1, benchPort, msg)
		}
		t0 := p.Now()
		for i := 0; i < o.Iters; i++ {
			ports[0].Send(p, 1, benchPort, msg)
		}
		for i := 0; i < o.Iters; i++ {
			ports[0].WaitSendDone(p)
		}
		elapsed := p.Now() - t0
		mbps = float64(size*o.Iters) / elapsed.Micros()
	})
	runToCompletion(c)
	return mbps
}

// MulticastAggregateBandwidth measures the total bytes-delivered rate of
// a NIC-based multicast stream: payload bytes times receivers, divided by
// the streaming time — the fabric-level win of forwarding at the NICs.
func (o Options) MulticastAggregateBandwidth(nodes, size int) float64 {
	cfg := o.config(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(benchPort)
	tr := o.nbTree(cfg, 0, c.Members(), size)
	c.InstallGroup(gmGroup, tr, benchPort, benchPort)
	total := o.Warmup + o.Iters
	// Per-node finish times: receivers run on different engines when the
	// cluster is sharded, so a shared max would be a data race. The max is
	// folded after the run barrier instead.
	finished := make([]sim.Time, nodes)
	for _, n := range tr.Nodes() {
		if n == 0 {
			continue
		}
		n := n
		c.SpawnOn(n, "recv", func(p *sim.Proc) {
			ports[n].ProvideN(total, size)
			for i := 0; i < total; i++ {
				ports[n].Recv(p)
			}
			finished[n] = p.Now()
		})
	}
	var t0 sim.Time
	msg := payload(size)
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < o.Warmup; i++ {
			ext.McastSync(p, ports[0], gmGroup, msg)
		}
		t0 = p.Now()
		for i := 0; i < o.Iters; i++ {
			ext.Mcast(p, ports[0], gmGroup, msg)
		}
		for i := 0; i < o.Iters; i++ {
			ports[0].WaitSendDone(p)
		}
	})
	runToCompletion(c)
	var last sim.Time
	for _, t := range finished {
		if t > last {
			last = t
		}
	}
	return float64(size*o.Iters*(nodes-1)) / (last - t0).Micros()
}
