package harness

import (
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// ackTag is the user-level tag the designated rank replies on.
const ackTag int32 = 1

// mpiBcastOnce measures MPI_Bcast latency with one designated rank
// returning an application-level acknowledgment to the root.
func (o Options) mpiBcastOnce(nodes, size int, useNB bool, designated int) float64 {
	c := cluster.NewFromConfig(o.config(nodes))
	w := mpi.NewWorld(c, useNB)
	total := o.Warmup + o.Iters
	msg := payload(size)
	var avg float64
	w.Run(func(r *mpi.Rank) {
		buf := make([]byte, size)
		if r.ID() == 0 {
			copy(buf, msg)
		}
		if r.ID() == 0 {
			iter := func() {
				r.Bcast(0, buf)
				r.Recv(designated, ackTag)
			}
			for i := 0; i < o.Warmup; i++ {
				iter()
			}
			t0 := r.Now()
			for i := 0; i < o.Iters; i++ {
				iter()
			}
			avg = (r.Now() - t0).Micros() / float64(o.Iters)
			return
		}
		for i := 0; i < total; i++ {
			r.Bcast(0, buf)
			if r.ID() == designated {
				r.Send(0, ackTag, ack1)
			}
		}
	})
	return avg
}

// MPIBcast takes the maximum over designated-rank choices, the paper's
// Figure 4 protocol ("the maximum latency obtained was taken as the
// broadcast latency").
func (o Options) MPIBcast(nodes, size int, useNB bool) float64 {
	var worst []float64
	for d := 1; d < nodes; d++ {
		worst = append(worst, o.mpiBcastOnce(nodes, size, useNB, d))
	}
	return stats.Max(worst)
}

// MPISweep runs the MPI-level broadcast comparison across message sizes
// for one system size, capping each size at the largest eager message
// (16,287 bytes) as the paper does. Points run in parallel per
// Options.Workers.
func (o Options) MPISweep(nodes int, sizes []int) Series {
	return Series(parallelMap(o.workerCount(len(sizes)), sizes, func(_, s int) Point {
		if s > mpi.EagerMax {
			s = mpi.EagerMax
		}
		return Point{
			Size: s,
			HB:   o.MPIBcast(nodes, s, false),
			NB:   o.MPIBcast(nodes, s, true),
		}
	}))
}

// Fig4 sweeps the MPI-level broadcast comparison over message sizes for
// one system size, reproducing one curve pair of Figures 4(a)/4(b).
func (o Options) Fig4(nodes int, sizes []int) Series {
	return o.MPISweep(nodes, sizes)
}

// MPISizes returns the paper's Figure 4 sweep: powers of two up to 8 KB,
// then the 16,287-byte largest eager message.
func MPISizes() []int {
	sizes := MessageSizes(8192)
	return append(sizes, mpi.EagerMax)
}
