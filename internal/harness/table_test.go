package harness

import (
	"strings"
	"testing"
)

func sample() Series {
	return Series{
		{Size: 1, HB: 20, NB: 10},
		{Size: 1024, HB: 40, NB: 30},
		{Size: 16384, HB: 300, NB: 200},
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	WriteSeries(&b, "title", sample())
	out := b.String()
	for _, want := range []string{"title", "size(B)", "16384", "2.00", "1.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSkewAndFig7(t *testing.T) {
	var b strings.Builder
	WriteSkew(&b, "skew", []SkewPoint{{AvgSkewUs: 0, HB: 30, NB: 15}, {AvgSkewUs: 400, HB: 160, NB: 12}})
	if !strings.Contains(b.String(), "13.33") {
		t.Fatalf("skew table missing factor:\n%s", b.String())
	}
	b.Reset()
	WriteFig7(&b, "f7", []Fig7Point{{Nodes: 4, Size: 4, Factor: 5.5}})
	if !strings.Contains(b.String(), "5.50") {
		t.Fatalf("fig7 table wrong:\n%s", b.String())
	}
	b.Reset()
	WriteScale(&b, "sc", []ScalePoint{{Nodes: 8, HB: 40, NB: 20}})
	if !strings.Contains(b.String(), "2.00") {
		t.Fatalf("scale table wrong:\n%s", b.String())
	}
}

func TestPlotHelpers(t *testing.T) {
	var b strings.Builder
	PlotFactors(&b, "factors", map[string]Series{"16 nodes": sample()})
	out := b.String()
	for _, want := range []string{"factors", "16 nodes", "1B", "16K"} {
		if !strings.Contains(out, want) {
			t.Fatalf("factor plot missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	PlotSkew(&b, "skew", []SkewPoint{{AvgSkewUs: 0, HB: 30, NB: 15}, {AvgSkewUs: 400, HB: 160, NB: 12}})
	if !strings.Contains(b.String(), "host-based") || !strings.Contains(b.String(), "NIC-based") {
		t.Fatalf("skew plot missing series:\n%s", b.String())
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{1: "1B", 512: "512B", 1024: "1K", 16384: "16K", 3000: "3000B"}
	for n, want := range cases {
		if got := sizeLabel(n); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSkewPointFactor(t *testing.T) {
	p := SkewPoint{HB: 100, NB: 25}
	if p.Factor() != 4 {
		t.Fatalf("factor %v", p.Factor())
	}
	if (SkewPoint{HB: 1}).Factor() != 0 {
		t.Fatal("zero NB factor must be 0")
	}
	if (ScalePoint{HB: 1}).Factor() != 0 {
		t.Fatal("zero NB scale factor must be 0")
	}
}

func TestSweepHelpers(t *testing.T) {
	if n := ScaleNodeCounts(); n[0] != 8 || n[len(n)-1] != 256 {
		t.Fatalf("scale node counts %v", n)
	}
	s := MPISizes()
	if s[len(s)-1] != 16287 {
		t.Fatalf("MPI sizes must end at the eager limit: %v", s)
	}
}

// Fig3/Fig4/Fig5/Fig6/LossRecovery full-series wrappers, at tiny sizes so
// the suite stays fast.
func TestFigureSweepWrappers(t *testing.T) {
	o := DefaultOptions()
	o.Iters = 6
	o.Warmup = 3
	o.SkewIters = 8
	if s := o.Fig3(3, []int{4, 512}); len(s) != 2 || s[0].Factor() <= 1 {
		t.Fatalf("Fig3 sweep wrong: %+v", s)
	}
	if s := o.Fig5(4, []int{64}); len(s) != 1 || s[0].NB <= 0 {
		t.Fatalf("Fig5 sweep wrong: %+v", s)
	}
	if s := o.Fig4(4, []int{64, 20000}); len(s) != 2 || s[1].Size != 16287 {
		t.Fatalf("Fig4 sweep must cap at the eager limit: %+v", s)
	}
	if pts := o.Fig6(4, 4, []float64{0, 100}); len(pts) != 2 || pts[1].HB <= 0 {
		t.Fatalf("Fig6 sweep wrong: %+v", pts)
	}
	if us := o.LossRecovery(4, 512, 0.01, "nack"); us <= 0 {
		t.Fatalf("LossRecovery returned %v", us)
	}
}

func TestLossRecoveryUnknownModePanics(t *testing.T) {
	o := DefaultOptions()
	o.Iters = 2
	o.Warmup = 1
	defer func() {
		if recover() == nil {
			t.Error("unknown recovery mode accepted")
		}
	}()
	o.LossRecovery(4, 64, 0.01, "bogus")
}
