package core

import (
	"fmt"

	"repro/internal/gm"
	"repro/internal/lanai"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/tree"
)

// bufToken aliases the NIC packet-buffer handle.
type bufToken = *lanai.Buf

// Ext is the multicast firmware extension for one NIC. Install installs it
// into the GM firmware's extension hook; the unicast paths never touch it.
type Ext struct {
	nic    *gm.NIC
	cfg    Config
	groups map[gm.GroupID]*group
	coll   Collective // NIC-resident collective engine (internal/coll)
	m      instruments
}

// install is the option-independent core of Install and the deprecated
// shims. Multicast counters go to the registry wired via the hardware
// NIC's SetMetrics; when none is wired, a private always-on registry
// backs the legacy Stats accessor.
func install(nic *gm.NIC, cfg Config) *Ext {
	e := &Ext{
		nic:    nic,
		cfg:    cfg,
		groups: make(map[gm.GroupID]*group),
	}
	e.initMetrics(metrics.Ensure(nic.HW.Registry()))
	nic.SetExtension(e)
	return e
}

// FromNIC returns the extension installed on a NIC.
func FromNIC(nic *gm.NIC) *Ext {
	e, ok := nic.Extension().(*Ext)
	if !ok {
		panic(fmt.Errorf("%w: NIC %v", ErrNoExtension, nic.ID()))
	}
	return e
}

// NIC returns the firmware NIC the extension runs on.
func (e *Ext) NIC() *gm.NIC { return e.nic }

// Groups reports how many group-table entries are installed.
func (e *Ext) Groups() int { return len(e.groups) }

// HasGroup reports whether a group is installed.
func (e *Ext) HasGroup(id gm.GroupID) bool {
	_, ok := e.groups[id]
	return ok
}

// GroupOutstanding reports one group's unretired send records (0 for an
// unknown group).
//
// Deprecated: polling this from the host to quiesce a group races the
// firmware (records can be created between polls) and burns simulated
// time. Use QuiesceGroup, which runs a callback exactly when the entry's
// outstanding send work has drained.
func (e *Ext) GroupOutstanding(id gm.GroupID) int {
	if g, ok := e.groups[id]; ok {
		return len(g.records)
	}
	return 0
}

// GroupEpoch reports a group's active epoch (0 for static groups and for
// unknown groups) and whether the entry is live — a joining NIC's staged
// entry exists but is not live until its first commit.
func (e *Ext) GroupEpoch(id gm.GroupID) (epoch uint32, live bool) {
	if g, ok := e.groups[id]; ok {
		return g.epoch, g.live
	}
	return 0, false
}

// QuiesceGroup runs fn (in firmware context) as soon as the group's
// outstanding send-side work — unretired send records and packets still
// staging or replicating — has drained; immediately if it already has, or
// if the group is unknown. This replaces the old idiom of polling
// GroupOutstanding from the host: the callback fires at the exact
// firmware event that retires the last record, with no race window and
// no polling traffic.
func (e *Ext) QuiesceGroup(id gm.GroupID, fn func()) {
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, ok := e.groups[id]
			if !ok {
				if fn != nil {
					fn()
				}
				return
			}
			e.m.quiesceReqs.Inc()
			g.onQuiesce(func() {
				if fn != nil {
					fn()
				}
			})
		})
	})
}

// OutstandingRecords reports unretired multicast send records across all
// groups, plus packets still staging toward a record — zero once every
// child of every packet has acknowledged.
func (e *Ext) OutstandingRecords() int {
	n := 0
	for _, g := range e.groups {
		n += len(g.records) + g.staging
	}
	return n
}

// PendingGroupTimers reports how many group retransmit timers are armed —
// nonzero after quiescence means a leaked timer.
func (e *Ext) PendingGroupTimers() int {
	armed := 0
	for _, g := range e.groups {
		if g.timer.Pending() {
			armed++
		}
	}
	return armed
}

// PendingAckTimers reports how many per-group delayed-ack timers are
// armed — nonzero after quiescence means a coalesced aggregate ack was
// never flushed (Config.AggregateAcks).
func (e *Ext) PendingAckTimers() int {
	armed := 0
	for _, g := range e.groups {
		if g.ackTimer != nil && g.ackTimer.Pending() {
			armed++
		}
	}
	return armed
}

// InstallGroup preposts one group's tree information into the NIC group
// table — "the host generates a spanning tree and inserts it into a group
// table stored in the NIC". port is the local port that receives the
// group's messages; rootPort is the sending port at the root. The tree
// must satisfy the ID-sorted deadlock invariant. fn, if non-nil, runs when
// the entry is live.
func (e *Ext) InstallGroup(id gm.GroupID, tr *tree.Tree, port, rootPort gm.PortID, fn func()) {
	e.InstallGroupEpoch(id, tr, port, rootPort, 0, fn)
}

// InstallGroupEpoch is InstallGroup with the entry tagged to a specific
// epoch — the initial installation path of the dynamic-membership
// subsystem (internal/member), whose later updates arrive through
// PrepareGroupEpoch/CommitGroupEpoch. Static groups use epoch 0.
func (e *Ext) InstallGroupEpoch(id gm.GroupID, tr *tree.Tree, port, rootPort gm.PortID, epoch uint32, fn func()) {
	if err := tr.Validate(); err != nil {
		panic(fmt.Errorf("%w: group %d: %v", ErrInvalidTree, id, err))
	}
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			if _, dup := e.groups[id]; dup {
				panic(fmt.Errorf("%w: group %d at %v", ErrGroupInstalled, id, e.nic.ID()))
			}
			g := localView(e, id, tr, port, rootPort)
			g.epoch = epoch
			e.groups[id] = g
			if fn != nil {
				fn()
			}
		})
	})
}

// PrepareGroupEpoch stages the next epoch's view of a group without
// activating it — phase one of the two-phase membership roll. A nil tree
// stages this node's departure. On a NIC without an entry (a joining
// node) a non-live entry is created: it accepts no traffic until the
// commit. Staging freezes a root's pump at message boundaries, so no
// message straddles the epoch change. The staged epoch must advance the
// live entry's epoch (serial-number order); fn runs when the stage is in
// the table.
func (e *Ext) PrepareGroupEpoch(id gm.GroupID, tr *tree.Tree, port, rootPort gm.PortID, epoch uint32, fn func()) {
	if tr != nil {
		if err := tr.Validate(); err != nil {
			panic(fmt.Errorf("%w: group %d: %v", ErrInvalidTree, id, err))
		}
	}
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, ok := e.groups[id]
			if !ok {
				if tr == nil {
					panic(fmt.Errorf("%w: preparing departure of group %d at %v",
						ErrNoSuchGroup, id, e.nic.ID()))
				}
				g = localView(e, id, tr, port, rootPort)
				g.live = false
				g.epoch = epoch
				e.groups[id] = g
			} else if g.live && !gm.EpochAfter(epoch, g.epoch) {
				panic(fmt.Errorf("%w: group %d at %v prepared for epoch %d, live epoch is %d",
					ErrEpochRegressed, id, e.nic.ID(), epoch, g.epoch))
			}
			g.next = &pendingView{
				epoch: epoch, remove: tr == nil, tr: tr,
				port: port, rootPort: rootPort,
			}
			// Freezing the pump may itself complete a pending quiesce
			// (queued-but-unstarted messages now belong to the next epoch).
			g.checkQuiesce()
			if fn != nil {
				fn()
			}
		})
	})
}

// CommitGroupEpoch activates a staged view — phase two of the membership
// roll, issued by the coordinator only after every old-epoch member has
// quiesced. The entry must be drained (no records, nothing staging);
// committing a busy entry panics, because the coordinator's quiesce phase
// is what guarantees no old-epoch frame is ever attributed to the new
// sequence space. A staged departure deletes the entry; a staged update
// activates it and restarts a frozen root pump, whose queued messages
// flow in the new epoch. fn runs after activation.
func (e *Ext) CommitGroupEpoch(id gm.GroupID, epoch uint32, fn func()) {
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, ok := e.groups[id]
			if !ok {
				panic(fmt.Errorf("%w: committing group %d at %v", ErrNoSuchGroup, id, e.nic.ID()))
			}
			v := g.next
			if v == nil || v.epoch != epoch {
				panic(fmt.Errorf("%w: group %d at %v has no prepared view for epoch %d",
					ErrNotPrepared, id, e.nic.ID(), epoch))
			}
			if len(g.records) > 0 || g.staging > 0 {
				panic(fmt.Errorf("%w: committing epoch %d of group %d at %v with %d records, %d staging",
					ErrGroupBusy, epoch, id, e.nic.ID(), len(g.records), g.staging))
			}
			if v.remove {
				if len(g.queue) > 0 {
					panic(fmt.Errorf("%w: removing group %d at %v with %d queued send tokens",
						ErrGroupBusy, id, e.nic.ID(), len(g.queue)))
				}
				g.timer.Stop()
				if g.ackTimer != nil {
					// Flush a coalesced receipt floor before the entry goes:
					// the final ack lets the old-epoch parent retire cleanly.
					e.flushAckUp(g)
					g.ackTimer.Stop()
				}
				delete(e.groups, id)
			} else {
				g.activate(v)
				e.m.epochCommits.Inc()
				if g.isRoot() {
					g.pump()
				}
			}
			if fn != nil {
				fn()
			}
		})
	})
}

// RemoveGroup deletes a group's entry from the NIC table once its
// outstanding work has drained — the teardown half of demand-driven group
// management (an MPI layer frees it with the communicator). Removal of a
// busy group is routed through the quiesce path: the entry is deleted by
// the firmware event that retires its last send record, so removing under
// live traffic is safe and never abandons children awaiting
// retransmission. fn runs after the entry is gone.
func (e *Ext) RemoveGroup(id gm.GroupID, fn func()) {
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, ok := e.groups[id]
			if !ok {
				panic(fmt.Errorf("%w: removing group %d at %v", ErrNoSuchGroup, id, e.nic.ID()))
			}
			g.onQuiesce(func() {
				g.timer.Stop()
				if g.ackTimer != nil {
					e.flushAckUp(g)
					g.ackTimer.Stop()
				}
				delete(e.groups, id)
				if fn != nil {
					fn()
				}
			})
		})
	})
}

// HandleRx implements gm.Extension: multicast frames are consumed here,
// everything else passes through to the base protocol untouched.
func (e *Ext) HandleRx(fr *gm.Frame) bool {
	switch fr.Kind {
	case gm.KindMcastData:
		e.rxData(fr)
		return true
	case gm.KindMcastAck:
		e.rxAck(fr)
		return true
	case gm.KindMcastNack:
		e.rxNack(fr)
		return true
	case gm.KindBarrier, gm.KindBarrierAck, gm.KindReduce, gm.KindReduceAck,
		gm.KindGather, gm.KindGatherAck, gm.KindRing, gm.KindRingAck:
		if e.coll != nil {
			return e.coll.HandleRx(fr)
		}
		// No collective engine wired: consume (these kinds belong to the
		// extension's identifier space) and count the drop.
		e.m.notMemberDrops.Inc()
		return true
	default:
		return false
	}
}

// rxData processes one arriving multicast packet: sequence-check against
// the group's receive sequence number, deliver to the local host buffer,
// and — the heart of the scheme — requeue it to this node's children
// straight from the NIC receive buffer, without host involvement and
// without waiting for the rest of the message.
func (e *Ext) rxData(fr *gm.Frame) {
	nic := e.nic
	buf, ok := nic.HW.RecvBufs.TryAcquire()
	if !ok {
		nic.HW.CountRxNoBuffer()
		return
	}
	nic.HW.CPUDo(nic.Cfg.RecvProcCost, func() {
		g, member := e.groups[fr.Group]
		if !member {
			// A departed NIC has no entry at all; a dynamic-epoch frame
			// reaching one is acked-as-dropped so the sender's window never
			// deadlocks on a node that left. Static (epoch 0) traffic keeps
			// the silent not-a-member drop. Epoch 0 is RESERVED for static
			// groups — the membership coordinator skips it when its epoch
			// counter wraps past MaxUint32 — so this test stays a correct
			// static/dynamic discriminator for arbitrarily long-lived groups.
			e.m.notMemberDrops.Inc()
			if fr.Epoch != 0 {
				e.ackDropped(fr)
			}
			buf.Release()
			return
		}
		if !g.live || fr.Epoch != g.epoch {
			e.dropEpochMismatch(g, fr)
			buf.Release()
			return
		}
		switch {
		case gm.SeqBefore(fr.Seq, g.recvSeq):
			e.m.duplicates.Inc()
			if e.cfg.AggregateAcks {
				// The cumulative field must carry the subtree floor, never
				// the local receipt floor: re-acking recvSeq-1 would retire
				// parent records for packets this subtree has not delivered,
				// and root completion would stop implying tree delivery.
				e.reAckAggregate(g)
			} else {
				e.ackParent(g, g.recvSeq-1)
			}
			buf.Release()
		case gm.SeqAfter(fr.Seq, g.recvSeq):
			e.m.oooDrops.Inc()
			if nic.Cfg.EnableNacks {
				if e.cfg.AggregateAcks {
					if g.ackPending > 0 {
						e.m.acksSuppressed.Add(uint64(g.ackPending))
						g.ackPending = 0
						g.ackTimer.Stop()
					}
					e.nackParent(g, g.ackBound())
				} else {
					e.nackParent(g, g.recvSeq-1)
				}
			}
			buf.Release()
		default:
			port := nic.Port(g.port)
			asm, ok := port.MatchAssembly(g.root, fr.SrcPort, fr.MsgID, fr.MsgLen, g.id)
			if !ok {
				// No receive token: refuse; the parent retransmits.
				// "The responsibility of making receive tokens available
				// ... is left to client programs."
				e.m.noTokenDrops.Inc()
				buf.Release()
				return
			}
			g.recvSeq++
			e.m.mcastReceived.Inc()
			if nic.Trace.Enabled() {
				nic.Trace.Log(nic.Engine().Now(), nic.ID(), trace.RX, "%v", fr)
			}
			if e.cfg.AggregateAcks {
				e.noteDelivered(g)
			} else {
				e.ackParent(g, fr.Seq)
			}

			// The NIC buffer stays busy until the payload reaches host
			// memory AND (for per-packet forwarding) the last child
			// replica has been transmitted.
			forwarding := len(g.children) > 0 && e.cfg.Forward == ForwardPerPacket
			uses := 1
			if forwarding {
				uses++
			}
			release := func() {
				uses--
				if uses == 0 {
					buf.Release()
				}
			}
			payload, off := fr.Payload, fr.Offset
			nic.HW.NICToHost(len(payload), func() {
				asm.Deposit(off, payload)
				release()
			})
			switch {
			case forwarding:
				e.forward(g, fr, release)
			case len(g.children) > 0:
				// Store-and-forward ablation: queue until the whole
				// message has arrived, then forward from host memory.
				e.storeAndForward(g, fr)
			}
		}
	})
}

// forward requeues a received packet to the node's children. The receive
// token is transformed into a send token (no draw from the free send-token
// pool — the paper's deadlock-avoiding choice), the forwarded packet keeps
// its group sequence number, and a send record per child is created so
// timeouts retransmit from the host replica. In the RetransmitHoldBuffer
// ablation the NIC receive buffer is instead pinned until every child
// acknowledges.
func (e *Ext) forward(g *group, fr *gm.Frame, release func()) {
	nic := e.nic
	g.sendSeq = fr.Seq
	g.staging++ // in flight toward children until recordForwarded files it
	if fr.Offset+len(fr.Payload) < fr.MsgLen {
		// The message's tail has not arrived yet — this forward is the
		// per-packet pipelining the paper's scheme exists to enable.
		e.m.fwdBeforeFull.Inc()
	}
	e.m.fanout.Observe(int64(len(g.children)))
	out := fr.Clone() // header rewrite; payload shared with the host replica
	nic.HW.CPUDo(e.cfg.ForwardSetupCost, func() {
		var sendTo func(i int)
		sendTo = func(i int) {
			replica := out.Clone()
			replica.SrcNode = nic.ID()
			replica.DstNode = g.children[i]
			nic.Inject(replica, func() {
				e.m.mcastSent.Inc()
				e.m.mcastForwarded.Inc()
				if i+1 == len(g.children) {
					if e.cfg.Retransmit == RetransmitHoldBuffer {
						g.recordForwarded(fr, release)
					} else {
						release()
						g.recordForwarded(fr, nil)
					}
					return
				}
				e.m.headerRewrites.Inc()
				nic.HW.CPUDo(e.cfg.HeaderRewriteCost, func() { sendTo(i + 1) })
			})
		}
		sendTo(0)
	})
}

// sfState gathers a message's packets in the store-and-forward ablation.
type sfState struct {
	frames []*gm.Frame
	got    int
}

// storeAndForward queues an accepted packet; when the last byte of the
// message has arrived, every packet is re-read from the host replica and
// forwarded in order — what NIC-based per-packet pipelining avoids.
func (e *Ext) storeAndForward(g *group, fr *gm.Frame) {
	if g.sf == nil {
		g.sf = make(map[uint64]*sfState)
	}
	st := g.sf[fr.MsgID]
	if st == nil {
		st = &sfState{}
		g.sf[fr.MsgID] = st
	}
	st.frames = append(st.frames, fr)
	st.got += len(fr.Payload)
	if st.got < fr.MsgLen {
		return
	}
	delete(g.sf, fr.MsgID)
	nic := e.nic
	for _, qf := range st.frames {
		f := qf
		g.sendSeq = f.Seq
		g.staging++
		nic.HW.SendBufs.Acquire(func(buf bufToken) {
			nic.HW.HostToNIC(len(f.Payload), func() {
				nic.HW.CPUDo(e.cfg.ForwardSetupCost, func() {
					g.enqueueChain(func() {
						g.replicateForward(f, buf)
					})
				})
			})
		})
	}
}

// replicateForward transmits one store-and-forward packet to all children.
func (g *group) replicateForward(fr *gm.Frame, buf bufToken) {
	nic := g.ext.nic
	var sendTo func(i int)
	sendTo = func(i int) {
		replica := fr.Clone()
		replica.SrcNode = nic.ID()
		replica.DstNode = g.children[i]
		nic.Inject(replica, func() {
			g.ext.m.mcastSent.Inc()
			g.ext.m.mcastForwarded.Inc()
			if i+1 == len(g.children) {
				buf.Release()
				g.recordForwarded(fr, nil)
				g.nextChain()
				return
			}
			g.ext.m.headerRewrites.Inc()
			nic.HW.CPUDo(g.ext.cfg.HeaderRewriteCost, func() { sendTo(i + 1) })
		})
	}
	sendTo(0)
}

// recordForwarded files the forwarder's send record for a packet. release,
// when non-nil, pins a NIC receive buffer until the record retires (the
// RetransmitHoldBuffer ablation).
func (g *group) recordForwarded(fr *gm.Frame, release func()) {
	g.staging--
	pending := g.pendingChildren(fr.Seq)
	if len(pending) == 0 {
		// All children acked before the last replica's callback ran.
		if release != nil {
			release()
		}
		g.checkQuiesce()
		return
	}
	g.records = append(g.records, &mcastRecord{
		seq: fr.Seq, frame: fr, sentAt: g.ext.nic.Engine().Now(),
		pending: pending, release: release,
	})
	g.armTimer()
}

// dropEpochMismatch refuses a multicast data frame from another epoch.
// Stale frames (an epoch the entry has moved past) are acked-as-dropped
// back to whoever transmitted them, carrying the frame's own epoch: a
// sender still holding old-epoch send records retires them instead of
// retransmitting into a view that will never accept them. Frames from a
// future epoch — data racing ahead of this NIC's commit, or anything
// aimed at a staged-but-not-live joining entry — are dropped silently;
// the parent's retransmission arrives after the commit lands. The
// stale/future split is serial-number arithmetic (gm.EpochBefore), so a
// group whose epoch counter wraps past MaxUint32 keeps classifying
// correctly — a raw < here would ack brand-new post-wrap frames as stale
// and silently starve the group.
func (e *Ext) dropEpochMismatch(g *group, fr *gm.Frame) {
	if g.live && gm.EpochBefore(fr.Epoch, g.epoch) {
		e.m.staleEpochDrops.Inc()
		e.ackDropped(fr)
		return
	}
	e.m.futureEpochDrops.Inc()
}

// ackDropped acknowledges a refused stale-epoch frame to its transmitter
// under the frame's own epoch — "acked as dropped". The cumulative ack
// retires the sender's record for this packet (and everything before it,
// which the departed receiver equally will never take).
func (e *Ext) ackDropped(fr *gm.Frame) {
	e.m.ackedAsDropped.Inc()
	e.m.acksSent.Inc()
	e.nic.Inject(&gm.Frame{
		Kind:    gm.KindMcastAck,
		SrcNode: e.nic.ID(),
		DstNode: fr.SrcNode,
		Group:   fr.Group,
		Epoch:   fr.Epoch,
		Ack:     fr.Seq,
	}, nil)
}

// noteDelivered runs the aggregation state machine after this node
// accepted one in-sequence packet (Config.AggregateAcks): a leaf
// coalesces its receipt floor under gm's AckEvery/AckDelay bounds, an
// interior node stays silent — its per-packet ack is absorbed into the
// aggregate that goes up when child acks advance the subtree floor.
func (e *Ext) noteDelivered(g *group) {
	if g.isRoot() {
		return
	}
	if len(g.children) > 0 {
		e.m.acksAggregated.Inc()
		return
	}
	if !e.nic.Cfg.AckCoalescing() {
		e.ackUp(g)
		return
	}
	g.ackPending++
	if g.ackPending >= e.nic.Cfg.AckEvery {
		e.flushAckUp(g)
		return
	}
	if !g.ackTimer.Pending() {
		g.ackTimer.ResetAfter(e.nic.Cfg.EffectiveAckDelay())
	}
}

// ackUp emits the aggregate cumulative acknowledgment upward when the
// subtree floor has advanced past what the parent already knows.
func (e *Ext) ackUp(g *group) {
	bound := g.ackBound()
	if !gm.SeqAfter(bound, g.upAcked) {
		return
	}
	g.upAcked = bound
	e.ackParent(g, bound)
}

// flushAckUp drains a leaf's coalesced receipt floor (count threshold,
// delay timer, or teardown), counting the per-packet acks it avoided.
func (e *Ext) flushAckUp(g *group) {
	if g.ackPending == 0 {
		return
	}
	if g.ackPending > 1 {
		e.m.acksSuppressed.Add(uint64(g.ackPending - 1))
	}
	g.ackPending = 0
	g.ackTimer.Stop()
	e.ackUp(g)
}

// reAckAggregate answers a duplicate under aggregation: the parent is
// retransmitting, so repeat the current subtree floor even when it has
// not advanced, folding in any coalesced leaf pending first.
func (e *Ext) reAckAggregate(g *group) {
	if g.ackPending > 0 {
		e.m.acksSuppressed.Add(uint64(g.ackPending))
		g.ackPending = 0
		g.ackTimer.Stop()
	}
	bound := g.ackBound()
	if gm.SeqAfter(bound, g.upAcked) {
		g.upAcked = bound
	}
	e.ackParent(g, bound)
}

// ackParent sends a cumulative group acknowledgment toward the root.
func (e *Ext) ackParent(g *group, ack uint32) {
	if g.isRoot() {
		return
	}
	e.m.acksSent.Inc()
	e.nic.Inject(&gm.Frame{
		Kind:    gm.KindMcastAck,
		SrcNode: e.nic.ID(),
		DstNode: g.parent,
		Group:   g.id,
		Epoch:   g.epoch,
		Ack:     ack,
	}, nil)
}

// nackParent asks the tree parent for an immediate per-group go-back
// (fast recovery, mirroring the unicast nack path).
func (e *Ext) nackParent(g *group, lastGood uint32) {
	if g.isRoot() {
		return
	}
	e.m.nacksSent.Inc()
	e.nic.Inject(&gm.Frame{
		Kind:    gm.KindMcastNack,
		SrcNode: e.nic.ID(),
		DstNode: g.parent,
		Group:   g.id,
		Epoch:   g.epoch,
		Ack:     lastGood,
	}, nil)
}

// rxNack processes a group negative acknowledgment from one child: honor
// the cumulative part, then retransmit to the unacknowledged children
// immediately, bounded by the holdoff.
func (e *Ext) rxNack(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		g, ok := e.groups[fr.Group]
		if !ok {
			return
		}
		if !g.live || fr.Epoch != g.epoch {
			// An ack or nack minted under another epoch must not touch this
			// epoch's sequence space — each commit resets it, so the raw
			// numbers would alias.
			e.m.staleEpochAcks.Inc()
			return
		}
		e.m.nacksRecv.Inc()
		g.handleAck(fr.SrcNode, fr.Ack)
		g.fastRetransmit()
		if e.cfg.AggregateAcks {
			// Even a nack's cumulative part can advance the subtree floor.
			e.ackUp(g)
		}
	})
}

// rxAck processes a group acknowledgment from one child.
func (e *Ext) rxAck(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		g, ok := e.groups[fr.Group]
		if !ok {
			return // stale ack for a group we no longer know
		}
		if !g.live || fr.Epoch != g.epoch {
			e.m.staleEpochAcks.Inc()
			return
		}
		e.m.acksRecv.Inc()
		g.handleAck(fr.SrcNode, fr.Ack)
		if e.cfg.AggregateAcks {
			// A child's progress may advance this subtree's floor; forward
			// the aggregate right away so the root's window keeps moving.
			e.ackUp(g)
		}
	})
}
