package core

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// NIC-level barrier — the companion collective the paper's future work
// points at ("we intend to expand the NIC-based support to other
// collective operations"; the authors' earlier "Fast NIC-Level Barrier
// over Myrinet/GM" is reference [6]). The host posts one barrier request;
// the NICs run the dissemination algorithm among themselves — ceil(log2 n)
// rounds of tiny messages, each reliable via stop-and-wait
// acknowledgment — and post a completion event when the barrier opens.
// The host is not involved in any round.

// barrierKey identifies one round of one barrier instance.
type barrierKey struct {
	seq   uint32
	round int
}

// barrierGroup is one NIC's view of an installed barrier group.
type barrierGroup struct {
	ext     *Ext
	id      gm.GroupID
	members []fabric.NodeID // sorted by network ID
	myIdx   int
	port    gm.PortID

	seq    uint32 // current barrier instance
	round  int
	active bool
	rounds int

	recvd  map[barrierKey]bool
	timers map[barrierKey]*sim.Timer // stop-and-wait; stopped only by acks
}

func (b *barrierGroup) peerOut(r int) fabric.NodeID {
	return b.members[(b.myIdx+(1<<r))%len(b.members)]
}

// InstallBarrier preposts a barrier group (the member set; no tree) into
// the NIC. Members must be identical and identically ordered at every
// node; id shares the multicast group identifier space.
func (e *Ext) InstallBarrier(id gm.GroupID, members []fabric.NodeID, port gm.PortID, fn func()) {
	ms := append([]fabric.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	myIdx := -1
	for i, m := range ms {
		if m == e.nic.ID() {
			myIdx = i
		}
	}
	if myIdx < 0 {
		panic(fmt.Errorf("%w: node %v installing barrier %d", ErrNotMember, e.nic.ID(), id))
	}
	rounds := 0
	for k := 1; k < len(ms); k <<= 1 {
		rounds++
	}
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			if _, dup := e.barriers[id]; dup {
				panic(fmt.Errorf("%w: barrier %d at %v", ErrGroupInstalled, id, e.nic.ID()))
			}
			e.barriers[id] = &barrierGroup{
				ext: e, id: id, members: ms, myIdx: myIdx, port: port,
				rounds: rounds,
				recvd:  make(map[barrierKey]bool),
				timers: make(map[barrierKey]*sim.Timer),
			}
			if fn != nil {
				fn()
			}
		})
	})
}

// Barrier blocks the calling process until every member of the barrier
// group has entered the barrier. One host request enters; the NICs do the
// rest; a zero-byte group event signals completion.
func (e *Ext) Barrier(proc *sim.Proc, port *gm.Port, id gm.GroupID) {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Barrier", ErrWrongNIC))
	}
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			b, ok := e.barriers[id]
			if !ok {
				panic(fmt.Errorf("%w: Barrier on group %d at %v", ErrNoSuchGroup, id, nic.ID()))
			}
			if b.active {
				panic(fmt.Errorf("%w: concurrent Barrier on group %d at %v", ErrGroupBusy, id, nic.ID()))
			}
			b.enter()
		})
	})
	// Completion arrives as a zero-length group event on the port.
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) == 0 {
			return
		}
		// Not ours: this port is dedicated to barrier use by contract.
		panic("core: unexpected traffic on barrier port")
	}
}

// enter starts a new barrier instance on the firmware side.
func (b *barrierGroup) enter() {
	b.seq++
	b.round = 0
	b.active = true
	// Early arrivals for instances we have passed can never be consumed.
	for k := range b.recvd {
		if k.seq < b.seq {
			delete(b.recvd, k)
		}
	}
	if len(b.members) == 1 {
		b.complete()
		return
	}
	b.sendRound(0)
	b.advance()
}

// sendRound transmits this node's message for round r with stop-and-wait
// retransmission until acknowledged.
func (b *barrierGroup) sendRound(r int) {
	nic := b.ext.nic
	k := barrierKey{b.seq, r}
	fr := &gm.Frame{
		Kind:    gm.KindBarrier,
		SrcNode: nic.ID(),
		DstNode: b.peerOut(r),
		Group:   b.id,
		Seq:     b.seq,
		Offset:  r,
	}
	var attempt func()
	tm := nic.Engine().NewTimer(func() {
		b.ext.m.retransmits.Inc()
		attempt()
	})
	attempt = func() {
		nic.Inject(fr.Clone(), nil)
		b.ext.m.barrierSent.Inc()
		tm.ResetAfter(nic.Cfg.RetransmitTimeout)
	}
	b.timers[k] = tm
	attempt()
}

// advance consumes arrived round messages in order, sending each next
// round, and completes the barrier after the last round's arrival.
func (b *barrierGroup) advance() {
	if !b.active {
		return
	}
	for b.round < b.rounds && b.recvd[barrierKey{b.seq, b.round}] {
		delete(b.recvd, barrierKey{b.seq, b.round})
		b.round++
		if b.round < b.rounds {
			b.sendRound(b.round)
		}
	}
	if b.round == b.rounds {
		b.complete()
	}
}

// complete posts the zero-byte completion event to the host. Pending
// stop-and-wait timers deliberately survive completion: a peer that has
// not acknowledged our round message still needs it — cancelling here
// would abandon a lost packet a slower member depends on.
func (b *barrierGroup) complete() {
	b.active = false
	b.ext.m.barriersDone.Inc()
	port := b.ext.nic.Port(b.port)
	port.PostGroupEvent(&gm.RecvEvent{Group: b.id})
}

// rxBarrier handles an arriving barrier round message.
func (e *Ext) rxBarrier(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		b, ok := e.barriers[fr.Group]
		if !ok {
			e.m.notMemberDrops.Inc()
			return
		}
		// Always acknowledge — duplicates included — so the peer's
		// stop-and-wait stops waiting.
		nic.Inject(&gm.Frame{
			Kind:    gm.KindBarrierAck,
			SrcNode: nic.ID(),
			DstNode: fr.SrcNode,
			Group:   fr.Group,
			Seq:     fr.Seq,
			Offset:  fr.Offset,
		}, nil)
		k := barrierKey{fr.Seq, fr.Offset}
		if fr.Seq < b.seq || (fr.Seq == b.seq && !b.active && fr.Seq != 0) {
			// Stale round of an already-completed instance.
			return
		}
		b.recvd[k] = true
		if b.active && fr.Seq == b.seq {
			b.advance()
		}
	})
}

// rxBarrierAck stops the stop-and-wait timer for one round message (the
// only way a barrier timer ends; duplicates are no-ops).
func (e *Ext) rxBarrierAck(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		b, ok := e.barriers[fr.Group]
		if !ok {
			return
		}
		k := barrierKey{fr.Seq, fr.Offset}
		if t, ok := b.timers[k]; ok {
			t.Stop()
			delete(b.timers, k)
		}
	})
}

// DebugBarrierState renders a barrier group's internal state (tests).
func (e *Ext) DebugBarrierState(id gm.GroupID) string {
	b, ok := e.barriers[id]
	if !ok {
		return "no group"
	}
	return fmt.Sprintf("seq=%d round=%d/%d active=%v recvd=%v timers=%d",
		b.seq, b.round, b.rounds, b.active, b.recvd, len(b.timers))
}
