package core_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const testPort gm.PortID = 1

// rig assembles a cluster with one open port per node and an installed
// group over all nodes using the given tree builder.
type rig struct {
	c     *cluster.Cluster
	ports []*gm.Port
	tr    *tree.Tree
	gid   gm.GroupID
}

func newRig(t *testing.T, nodes int, build func(root fabric.NodeID, members []fabric.NodeID) *tree.Tree, mut func(*cluster.Config)) *rig {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	if mut != nil {
		mut(cfg)
	}
	c := cluster.NewFromConfig(cfg)
	r := &rig{c: c, ports: c.OpenPorts(testPort), gid: 7}
	r.tr = build(0, c.Members())
	ready := c.InstallGroup(r.gid, r.tr, testPort, testPort)
	// Land the installs before any test process runs: a proc spawned at the
	// ambient domain would otherwise race the per-node install events at
	// equal timestamps (e.g. an epoch roll preparing a group whose install
	// has not fired yet).
	c.Run()
	if !ready() {
		t.Fatal("group install incomplete after quiescence")
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	r.c.Eng.Run()
	r.c.Eng.Kill()
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + 17)
	}
	return b
}

// spawnReceivers starts a receiving process on every non-root member that
// collects `count` messages into got[node].
func (r *rig) spawnReceivers(count, bufcap int) *map[fabric.NodeID][][]byte {
	got := make(map[fabric.NodeID][][]byte)
	for _, n := range r.tr.Nodes() {
		if n == r.tr.Root {
			continue
		}
		n := n
		r.c.Eng.Spawn("recv", func(p *sim.Proc) {
			port := r.ports[n]
			port.ProvideN(count, bufcap)
			for i := 0; i < count; i++ {
				ev := port.Recv(p)
				got[n] = append(got[n], ev.Data)
			}
		})
	}
	return &got
}

func TestMultisendFlatDeliversToAll(t *testing.T) {
	r := newRig(t, 9, tree.Flat, nil)
	msg := pattern(256)
	got := r.spawnReceivers(1, 1024)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, msg)
	})
	r.run(t)
	if len(*got) != 8 {
		t.Fatalf("delivered to %d nodes, want 8", len(*got))
	}
	for n, msgs := range *got {
		if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
			t.Fatalf("node %v got corrupted data", n)
		}
	}
	// Flat tree: no forwarding anywhere.
	for _, n := range r.c.Nodes {
		if n.Ext.Stats().McastForwarded != 0 {
			t.Fatalf("flat multisend forwarded packets at %v", n.ID)
		}
	}
	if sent := r.c.Nodes[0].Ext.Stats().McastSent; sent != 8 {
		t.Fatalf("root sent %d replicas, want 8", sent)
	}
}

func TestMulticastBinomialForwarding(t *testing.T) {
	r := newRig(t, 16, tree.Binomial, nil)
	msg := pattern(10000) // three packets
	got := r.spawnReceivers(1, 1<<14)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, msg)
	})
	r.run(t)
	if len(*got) != 15 {
		t.Fatalf("delivered to %d nodes, want 15", len(*got))
	}
	for n, msgs := range *got {
		if !bytes.Equal(msgs[0], msg) {
			t.Fatalf("node %v corrupted", n)
		}
	}
	forwarded := uint64(0)
	for _, n := range r.c.Nodes {
		forwarded += n.Ext.Stats().McastForwarded
	}
	if forwarded == 0 {
		t.Fatal("binomial multicast never used NIC-based forwarding")
	}
	// Completion implies every record retired everywhere.
	for _, n := range r.c.Nodes {
		if out := n.Ext.OutstandingRecords(); out != 0 {
			t.Fatalf("node %v still holds %d records after completion", n.ID, out)
		}
	}
}

func TestMulticastOptimalTree(t *testing.T) {
	cfg := cluster.DefaultConfig(16)
	build := func(root fabric.NodeID, members []fabric.NodeID) *tree.Tree {
		return cfg.OptimalTree(root, members, 64)
	}
	r := newRig(t, 16, build, nil)
	msg := pattern(64)
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, msg)
	})
	r.run(t)
	if len(*got) != 15 {
		t.Fatalf("delivered to %d nodes, want 15", len(*got))
	}
}

func TestMulticastOrderedPerGroup(t *testing.T) {
	r := newRig(t, 8, tree.Binomial, nil)
	const count = 12
	got := r.spawnReceivers(count, 512)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r.c.Nodes[0].Ext.Mcast(p, r.ports[0], r.gid, []byte{byte(i), 42})
		}
		for i := 0; i < count; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	for n, msgs := range *got {
		if len(msgs) != count {
			t.Fatalf("node %v got %d messages, want %d", n, len(msgs), count)
		}
		for i, m := range msgs {
			if m[0] != byte(i) {
				t.Fatalf("node %v message %d out of order (saw %d)", n, i, m[0])
			}
		}
	}
}

func TestMulticastUnderRandomLoss(t *testing.T) {
	r := newRig(t, 12, tree.Binomial, func(c *cluster.Config) {
		c.LossRate = 0.03
		c.Seed = 5
	})
	const count = 8
	msgs := make([][]byte, count)
	for i := range msgs {
		msgs[i] = pattern(500 + i*997)
		msgs[i][0] = byte(i)
	}
	got := r.spawnReceivers(count, 1<<14)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r.c.Nodes[0].Ext.Mcast(p, r.ports[0], r.gid, msgs[i])
		}
		for i := 0; i < count; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	if len(*got) != 11 {
		t.Fatalf("delivered to %d nodes, want 11", len(*got))
	}
	retrans := uint64(0)
	for n, g := range *got {
		if len(g) != count {
			t.Fatalf("node %v got %d messages under loss, want %d", n, len(g), count)
		}
		for i := range g {
			if !bytes.Equal(g[i], msgs[i]) {
				t.Fatalf("node %v message %d corrupted under loss", n, i)
			}
		}
	}
	for _, n := range r.c.Nodes {
		retrans += n.Ext.Stats().Retransmits
	}
	if retrans == 0 {
		t.Fatal("3% loss over 12 nodes produced zero retransmissions — loss not exercised")
	}
}

func TestRetransmitOnlyToUnackedChildren(t *testing.T) {
	// Drop the first replica to exactly one child of the root; only that
	// child should be retransmitted to.
	r := newRig(t, 4, tree.Flat, nil)
	dropped := false
	r.c.Net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*gm.Frame)
		if ok && fr.Kind == gm.KindMcastData && fr.DstNode == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(64))
	})
	r.run(t)
	if len(*got) != 3 {
		t.Fatalf("delivered to %d nodes, want 3", len(*got))
	}
	st := r.c.Nodes[0].Ext.Stats()
	if st.Retransmits != 1 {
		t.Fatalf("root retransmitted %d packets, want exactly 1 (only the unacked child)", st.Retransmits)
	}
	// 3 first transmissions + 1 retransmission.
	if st.McastSent != 4 {
		t.Fatalf("root sent %d replicas, want 4", st.McastSent)
	}
}

func TestLateReceiveTokenStallsOnlySubtree(t *testing.T) {
	// Chain 0->1->2: node 1 posts its token late; node 2 can't hear until
	// node 1's NIC accepts (forwarding needs the in-sequence accept), but
	// everything must recover once the token appears.
	r := newRig(t, 3, tree.Chain, nil)
	var at1, at2 sim.Time
	r.c.Eng.Spawn("n1", func(p *sim.Proc) {
		p.Sleep(3 * sim.Millisecond)
		r.ports[1].Provide(256)
		r.ports[1].Recv(p)
		at1 = p.Now()
	})
	r.c.Eng.Spawn("n2", func(p *sim.Proc) {
		r.ports[2].Provide(256)
		r.ports[2].Recv(p)
		at2 = p.Now()
	})
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(32))
	})
	r.run(t)
	if at1 < 3*sim.Millisecond || at2 == 0 {
		t.Fatalf("deliveries at %v and %v; recovery after late token failed", at1, at2)
	}
	if r.c.Nodes[1].Ext.Stats().NoTokenDrops == 0 {
		t.Fatal("expected tokenless drops at the intermediate node")
	}
}

func TestForwardingPipelinesMultiPacketMessages(t *testing.T) {
	// Chain 0->1->2 with a 4-packet message: the leaf must finish well
	// before twice the full-message one-way time, which is what
	// store-and-forward at the intermediate host would cost.
	size := 16384
	r := newRig(t, 3, tree.Chain, nil)
	var leafAt sim.Time
	got := r.spawnReceivers(1, 1<<15)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(size))
	})
	r.run(t)
	_ = got
	leafAt = r.c.Eng.Now() // upper bound; refine via direct measure below

	// Measure one-hop full-message latency for reference.
	single := newRig(t, 2, tree.Chain, nil)
	var oneHop sim.Time
	single.c.Eng.Spawn("recv", func(p *sim.Proc) {
		single.ports[1].Provide(1 << 15)
		single.ports[1].Recv(p)
		oneHop = p.Now()
	})
	single.c.Eng.Spawn("root", func(p *sim.Proc) {
		single.c.Nodes[0].Ext.McastSync(p, single.ports[0], single.gid, pattern(size))
	})
	single.run(t)

	if leafAt >= 2*oneHop {
		t.Fatalf("two-hop delivery %v >= 2x one-hop %v: no pipelining", leafAt, oneHop)
	}
}

func TestUnicastUnaffectedByExtension(t *testing.T) {
	// Identical unicast workload on a plain cluster and on one with the
	// multicast extension installed: completion times must match exactly.
	run := func(plain bool) sim.Time {
		cfg := cluster.DefaultConfig(2)
		var c *cluster.Cluster
		if plain {
			c = cluster.NewPlain(cfg)
		} else {
			c = cluster.NewFromConfig(cfg)
		}
		ports := c.OpenPorts(testPort)
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[1].ProvideN(5, 8192)
			for i := 0; i < 5; i++ {
				ports[1].Recv(p)
			}
		})
		c.Eng.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				ports[0].SendSync(p, 1, testPort, pattern(1000*(i+1)))
			}
		})
		c.Eng.Run()
		c.Eng.Kill()
		return c.Eng.Now()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("unicast timing changed with extension installed: %v vs %v", a, b)
	}
}

func TestConcurrentBroadcastsNoDeadlock(t *testing.T) {
	// Several roots broadcast simultaneously on ID-sorted trees with tiny
	// NIC buffer pools — the deadlock scenario the paper's sorting rule
	// prevents. Everything must complete.
	const nodes = 8
	cfg := cluster.DefaultConfig(nodes)
	cfg.NIC.SendBuffers = 2
	cfg.NIC.RecvBuffers = 2
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	roots := []fabric.NodeID{0, 3, 5}
	for i, root := range roots {
		tr := tree.Binomial(root, c.Members())
		c.InstallGroup(gm.GroupID(100+i), tr, testPort, testPort)
	}
	completed := 0
	delivered := 0
	for n := 0; n < nodes; n++ {
		n := n
		expect := 0
		for _, root := range roots {
			if fabric.NodeID(n) != root {
				expect++
			}
		}
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].ProvideN(expect*3, 4096)
			for i := 0; i < expect*3; i++ {
				ports[n].Recv(p)
				delivered++
			}
		})
	}
	for i, root := range roots {
		i, root := i, root
		c.Eng.Spawn("root", func(p *sim.Proc) {
			for j := 0; j < 3; j++ {
				c.Nodes[root].Ext.McastSync(p, ports[root], gm.GroupID(100+i), pattern(2048))
			}
			completed++
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	if completed != len(roots) {
		t.Fatalf("%d of %d roots completed; deadlock?", completed, len(roots))
	}
	want := 3 * (len(roots)*nodes - len(roots))
	if delivered != want {
		t.Fatalf("delivered %d messages, want %d", delivered, want)
	}
}

func TestMcastValidation(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	// Wrong port's NIC.
	r.c.Eng.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Mcast from foreign port did not panic")
			}
		}()
		r.c.Nodes[0].Ext.Mcast(p, r.ports[1], r.gid, []byte{1})
	})
	r.run(t)
}

func TestNonMemberDropsMcast(t *testing.T) {
	// A group over nodes {0,1,2} of a 4-node cluster: node 3 must never
	// see a delivery, and stray packets to it are counted.
	cfg := cluster.DefaultConfig(4)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	members := []fabric.NodeID{0, 1, 2}
	tr := tree.Flat(0, members)
	c.InstallGroup(9, tr, testPort, testPort)
	for _, n := range []int{1, 2} {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(256)
			ports[n].Recv(p)
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 9, pattern(32))
	})
	c.Eng.Run()
	c.Eng.Kill()
	if got := ports[3].PendingRecvs(); got != 0 {
		t.Fatalf("non-member received %d multicast messages", got)
	}
}

func TestGroupInstallValidatesTree(t *testing.T) {
	cfg := cluster.DefaultConfig(4)
	c := cluster.NewFromConfig(cfg)
	c.OpenPorts(testPort)
	// Hand-build an invalid tree (child < parent under non-root).
	defer func() {
		if recover() == nil {
			t.Error("invalid tree accepted by InstallGroup")
		}
	}()
	bad := tree.Chain(0, c.Members())
	// Chain is valid; force mismatch by installing twice under same ID.
	c.InstallGroup(5, bad, testPort, testPort)
	c.InstallGroup(5, bad, testPort, testPort)
	c.Eng.Run()
}

// Property: any message size and member subset delivers identical bytes to
// every member over both binomial and optimal trees.
func TestMulticastIntegrityProperty(t *testing.T) {
	f := func(rawSize uint16, rawNodes, seed uint8) bool {
		nodes := int(rawNodes)%14 + 2
		size := int(rawSize) % 20000
		cfg := cluster.DefaultConfig(nodes)
		cfg.Seed = int64(seed) + 1
		c := cluster.NewFromConfig(cfg)
		ports := c.OpenPorts(testPort)
		tr := tree.Binomial(0, c.Members())
		c.InstallGroup(3, tr, testPort, testPort)
		msg := pattern(size)
		okCount := 0
		for n := 1; n < nodes; n++ {
			n := n
			c.Eng.Spawn("recv", func(p *sim.Proc) {
				ports[n].Provide(1 << 15)
				ev := ports[n].Recv(p)
				if bytes.Equal(ev.Data, msg) {
					okCount++
				}
			})
		}
		c.Eng.Spawn("root", func(p *sim.Proc) {
			c.Nodes[0].Ext.McastSync(p, ports[0], 3, msg)
		})
		c.Eng.Run()
		c.Eng.Kill()
		return okCount == nodes-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveGroup(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(1, 256)
	removed := false
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(32))
		// Quiesced: all children acknowledged. Tear the group down.
		r.c.Nodes[0].Ext.RemoveGroup(r.gid, func() { removed = true })
	})
	r.run(t)
	if len(*got) != 3 {
		t.Fatalf("delivered to %d before removal, want 3", len(*got))
	}
	if !removed {
		t.Fatal("RemoveGroup callback never ran")
	}
	if r.c.Nodes[0].Ext.HasGroup(r.gid) {
		t.Fatal("group still installed after removal")
	}
	// Re-install under the same ID must now succeed.
	r.c.Nodes[0].Ext.InstallGroup(r.gid, r.tr, testPort, testPort, nil)
	r.c.Eng.Run()
	if !r.c.Nodes[0].Ext.HasGroup(r.gid) {
		t.Fatal("re-install after removal failed")
	}
}

func TestRemoveUnknownGroupPanics(t *testing.T) {
	r := newRig(t, 2, tree.Flat, nil)
	r.c.Nodes[0].Ext.RemoveGroup(999, nil)
	defer func() {
		if recover() == nil {
			t.Error("removing unknown group did not panic")
		}
	}()
	r.c.Eng.Run()
}

func TestMcastAfterRemovalDropsAsNonMember(t *testing.T) {
	// A stale packet arriving after group removal is counted and dropped,
	// not crashed on.
	r := newRig(t, 3, tree.Flat, nil)
	r.c.Eng.Spawn("recv1", func(p *sim.Proc) {
		r.ports[1].Provide(256)
		r.ports[1].Recv(p)
		// Node 2 removes its entry while node 1 still participates.
	})
	r.c.Eng.Spawn("recv2", func(p *sim.Proc) {
		r.ports[2].Provide(256)
		r.ports[2].Recv(p)
		r.c.Nodes[2].Ext.RemoveGroup(r.gid, nil)
		p.Sleep(sim.Millisecond)
	})
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(16))
		// Wait for node 2's removal to land, then multicast again: node 2
		// is no longer a member and must drop the packet.
		p.Sleep(500 * sim.Microsecond)
		r.c.Nodes[0].Ext.Mcast(p, r.ports[0], r.gid, pattern(16))
	})
	r.c.Eng.RunUntil(20 * sim.Millisecond)
	r.c.Eng.Kill()
	if r.c.Nodes[2].Ext.Stats().NotMemberDrops == 0 {
		t.Fatal("stale multicast to removed group not counted as non-member drop")
	}
}

func TestMulticastAcrossClosFabric(t *testing.T) {
	// 64 nodes span a two-level Clos: the multicast tree crosses leaf and
	// spine switches; everything must still deliver intact and in order.
	cfg := cluster.DefaultConfig(64)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := cfg.OptimalTree(0, c.Members(), 512)
	c.InstallGroup(31, tr, testPort, testPort)
	msg := pattern(512)
	delivered := 0
	for n := 1; n < 64; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].ProvideN(2, 1024)
			for i := 0; i < 2; i++ {
				if bytes.Equal(ports[n].Recv(p).Data, msg) {
					delivered++
				}
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			c.Nodes[0].Ext.McastSync(p, ports[0], 31, msg)
		}
	})
	c.Eng.Run()
	c.Eng.Kill()
	if delivered != 63*2 {
		t.Fatalf("delivered %d/126 across the Clos", delivered)
	}
}

func TestMulticastAcrossFatTree(t *testing.T) {
	// 200 nodes need the three-level fat tree; cross-pod forwarding hops
	// through six links.
	cfg := cluster.DefaultConfig(200)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := cfg.OptimalTree(0, c.Members(), 64)
	c.InstallGroup(32, tr, testPort, testPort)
	delivered := 0
	for n := 1; n < 200; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(128)
			ports[n].Recv(p)
			delivered++
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 32, pattern(64))
	})
	c.Eng.Run()
	c.Eng.Kill()
	if delivered != 199 {
		t.Fatalf("delivered %d/199 across the fat tree", delivered)
	}
}
