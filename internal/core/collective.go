package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// Collective is the NIC-resident collective engine installed alongside the
// multicast extension (internal/coll implements it). The extension routes
// collective wire kinds (barrier, reduce, gather, ring) to it and merges
// its counters into the legacy Stats view; the engine in turn reads the
// extension's group table for tree neighborhoods (GroupView) and reuses
// Mcast for result distribution. The split keeps the import direction
// one-way: coll imports core, never the reverse.
type Collective interface {
	// HandleRx consumes one collective wire frame (firmware context).
	HandleRx(fr *gm.Frame) bool
	// InstallBarrier preposts a barrier group (member set, no tree).
	InstallBarrier(id gm.GroupID, members []fabric.NodeID, port gm.PortID, fn func())
	// Barrier blocks until every member has entered the barrier.
	Barrier(proc *sim.Proc, port *gm.Port, id gm.GroupID)
	// Reduce combines vectors up the group's tree; the root blocks for
	// and returns the result, other members return nil.
	Reduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64
	// Allreduce is Reduce followed by a multicast of the result down the
	// same tree; every member returns the combined vector.
	Allreduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64
	// CollStats snapshots the engine's counters for the Stats merge.
	CollStats() CollStats
	// Outstanding reports unacknowledged collective send records.
	Outstanding() int
	// PendingTimers reports armed collective retransmit timers.
	PendingTimers() int
}

// CollStats is the collective-engine counter snapshot merged into Stats.
type CollStats struct {
	BarrierSent    uint64
	BarriersDone   uint64
	ReduceSent     uint64
	ReduceCombines uint64
	GatherSent     uint64
	GathersDone    uint64
	Retransmits    uint64
	Duplicates     uint64
	NotMemberDrops uint64
}

// SetCollective wires a collective engine into the extension. Installed
// once, right after the extension itself (cluster wiring does both).
func (e *Ext) SetCollective(c Collective) { e.coll = c }

// CollectiveEngine returns the wired collective engine (nil if none).
func (e *Ext) CollectiveEngine() Collective { return e.coll }

func (e *Ext) mustColl() Collective {
	if e.coll == nil {
		panic(fmt.Errorf("%w: NIC %v", ErrNoCollective, e.nic.ID()))
	}
	return e.coll
}

// GroupView exposes one group-table entry's tree neighborhood to the
// collective engine (firmware context): the combine-and-forward collectives
// reduce up and multisend down the same preposted tree the multicast uses.
func (e *Ext) GroupView(id gm.GroupID) (root, parent fabric.NodeID, children []fabric.NodeID, port gm.PortID, ok bool) {
	g, ok := e.groups[id]
	if !ok {
		return 0, 0, nil, 0, false
	}
	return g.root, g.parent, g.children, g.port, true
}

// The methods below are compatibility shims forwarding to the collective
// engine, preserving the API surface from when barrier and reduce were
// implemented inside this package.

// InstallBarrier preposts a barrier group (the member set; no tree) into
// the NIC. Members must be identical at every node; id shares the
// multicast group identifier space.
func (e *Ext) InstallBarrier(id gm.GroupID, members []fabric.NodeID, port gm.PortID, fn func()) {
	e.mustColl().InstallBarrier(id, members, port, fn)
}

// Barrier blocks the calling process until every member of the barrier
// group has entered the barrier. One host request enters; the NICs do the
// rest; a zero-byte group event signals completion.
func (e *Ext) Barrier(proc *sim.Proc, port *gm.Port, id gm.GroupID) {
	e.mustColl().Barrier(proc, port, id)
}

// Reduce contributes this node's vector to a reduction over the group's
// tree and, at the root, blocks until the combined result arrives.
// Non-roots return nil as soon as their contribution is posted.
func (e *Ext) Reduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64 {
	return e.mustColl().Reduce(proc, port, id, vec, op)
}

// AllreduceNIC reduces to the root over the tree, then multicasts the
// result back down it: every member returns the combined vector. The
// caller must have preposted a receive token (>= 8*len(vec) bytes) on
// non-root members for the downward multicast.
func (e *Ext) AllreduceNIC(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64 {
	return e.mustColl().Allreduce(proc, port, id, vec, op)
}
