package core

import (
	"fmt"

	"repro/internal/gm"
	"repro/internal/sim"
)

// Host-side API of the NIC-based multicast: the calls a GM client program
// makes. A multicast consumes one host send token exactly like a unicast
// send — the single host request is the whole point of the multisend.

// Mcast posts one multicast of data on the given group from port. The
// caller must be the group's root. The call blocks only until the request
// is posted; completion (every packet acknowledged by every child) is
// observable via port.WaitSendDone. The caller must not mutate data until
// then — it is the registered host replica retransmissions read from.
func (e *Ext) Mcast(proc *sim.Proc, port *gm.Port, id gm.GroupID, data []byte) {
	e.McastEpoch(proc, port, id, data, nil)
}

// McastEpoch posts a multicast like Mcast and additionally reports, via
// the firmware callback onEpoch, the group epoch the message stages
// under. Under dynamic membership a message posted during an epoch roll
// is held by the frozen pump and flows entirely in the next epoch; the
// callback is the authoritative attribution (the epoch whose membership
// the message is delivered to), which host-side bookkeeping cannot know
// at post time.
func (e *Ext) McastEpoch(proc *sim.Proc, port *gm.Port, id gm.GroupID, data []byte, onEpoch func(epoch uint32)) {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Mcast", ErrWrongNIC))
	}
	port.TakeSendToken(proc)
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			g, ok := e.groups[id]
			if !ok {
				panic(fmt.Errorf("%w: Mcast on group %d at %v", ErrNoSuchGroup, id, nic.ID()))
			}
			if !g.isRoot() {
				panic(fmt.Errorf("%w: group %d at %v", ErrNotRoot, id, nic.ID()))
			}
			g.enqueue(&mcastToken{
				data:    data,
				msgID:   nic.NewMsgID(),
				onDone:  port.ReturnSendToken,
				onEpoch: onEpoch,
			})
		})
	})
}

// McastSync multicasts and waits until every child of every packet in the
// message has acknowledged — the root-side completion the paper's
// multisend benchmarks time ("wait for an acknowledgment from the last
// destination").
func (e *Ext) McastSync(proc *sim.Proc, port *gm.Port, id gm.GroupID, data []byte) {
	e.Mcast(proc, port, id, data)
	port.WaitSendDone(proc)
}
