package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// NIC-based reduction — the other collective the paper's future work names
// ("for example, Allreduce"), after the authors' companion study
// "NIC-Based Reduction in Myrinet Clusters: Is It Beneficial?" [4].
// Contributions flow up the preposted spanning tree: each NIC combines its
// children's vectors with its own host's contribution — paying the slow
// LANai's per-element arithmetic cost — and forwards one combined vector
// to its parent. The root's host receives the result; AllreduceNIC then
// multicasts it back down the same tree.
//
// Vectors are int64s: the LANai has no floating-point unit, which is
// exactly the trade-off the companion paper investigates.

// ReduceOp is a NIC-computable combining operation.
type ReduceOp uint8

const (
	OpSum ReduceOp = iota + 1
	OpMin
	OpMax
)

func (op ReduceOp) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic(fmt.Errorf("%w: unknown op %d", ErrBadReduce, op))
	}
}

// reduceState accumulates one reduction instance at one NIC.
type reduceState struct {
	op   ReduceOp
	acc  []int64
	got  int // contributions combined (children + own host)
	need int
}

// Reduce contributes this node's vector to reduction instance over the
// group's tree and, at the root, blocks until the combined result arrives.
// Non-roots return nil as soon as their contribution is posted (their
// buffer is immediately reusable, like MPI_Reduce). All members must call
// Reduce with equal-length vectors and the same op, in the same order.
// Vectors must fit one packet (MTU/8 elements).
func (e *Ext) Reduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64 {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Reduce", ErrWrongNIC))
	}
	if len(vec)*8 > e.nic.Cfg.MTU {
		panic(fmt.Errorf("%w: vector of %d elements exceeds one packet", ErrBadReduce, len(vec)))
	}
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	isRoot := false
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			g, ok := e.groups[id]
			if !ok {
				panic(fmt.Errorf("%w: Reduce on group %d at %v", ErrNoSuchGroup, id, nic.ID()))
			}
			g.redSeq++
			e.contribute(g, g.redSeq, op, vec)
		})
	})
	// Only the root's host consumes the result event.
	if e.hasGroupRoot(id) {
		isRoot = true
	}
	if !isRoot {
		return nil
	}
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) > 0 {
			return decodeVec(ev.Data)
		}
		panic("core: unexpected traffic on reduce port")
	}
}

// hasGroupRoot reports whether this NIC is the root of the group. The
// group table is firmware state, but tree placement is static and known
// to the host that installed it; this helper models that knowledge.
func (e *Ext) hasGroupRoot(id gm.GroupID) bool {
	g, ok := e.groups[id]
	return ok && g.isRoot()
}

// contribute merges one vector into the instance's accumulator, charging
// the LANai's per-element cost, and forwards when complete.
func (e *Ext) contribute(g *group, seq uint32, op ReduceOp, vec []int64) {
	nic := e.nic
	st := g.red[seq]
	if st == nil {
		st = &reduceState{op: op, need: len(g.children) + 1}
		g.red[seq] = st
	}
	if st.op != op {
		panic(fmt.Errorf("%w: op mismatch on group %d instance %d", ErrBadReduce, g.id, seq))
	}
	cost := sim.Time(len(vec)) * e.cfg.ReduceElemCost
	nic.HW.CPUDo(cost, func() {
		if st.acc == nil {
			st.acc = append([]int64(nil), vec...)
		} else {
			if len(vec) != len(st.acc) {
				panic(fmt.Errorf("%w: length mismatch on group %d", ErrBadReduce, g.id))
			}
			for i := range st.acc {
				st.acc[i] = op.apply(st.acc[i], vec[i])
			}
		}
		st.got++
		e.m.reduceCombines.Inc()
		if st.got < st.need {
			return
		}
		delete(g.red, seq)
		if g.isRoot() {
			port := nic.Port(g.port)
			port.PostGroupEvent(&gm.RecvEvent{Group: g.id, Data: encodeVec(st.acc)})
			return
		}
		e.sendReduce(g, seq, st)
	})
}

// sendReduce ships the combined vector to the tree parent with
// stop-and-wait reliability.
func (e *Ext) sendReduce(g *group, seq uint32, st *reduceState) {
	nic := e.nic
	fr := &gm.Frame{
		Kind:    gm.KindReduce,
		SrcNode: nic.ID(),
		DstNode: g.parent,
		Group:   g.id,
		Seq:     seq,
		Offset:  int(st.op),
		Payload: encodeVec(st.acc),
	}
	key := barrierKey{seq, -1} // reduce shares the timer map keyspace via round -1
	var attempt func()
	tm := nic.Engine().NewTimer(func() {
		e.m.retransmits.Inc()
		attempt()
	})
	attempt = func() {
		nic.Inject(fr.Clone(), nil)
		e.m.reduceSent.Inc()
		tm.ResetAfter(nic.Cfg.RetransmitTimeout)
	}
	g.redTimers[key] = tm
	attempt()
}

// rxReduce handles a child's combined contribution.
func (e *Ext) rxReduce(fr *gm.Frame) {
	nic := e.nic
	buf, ok := nic.HW.RecvBufs.TryAcquire()
	if !ok {
		nic.HW.CountRxNoBuffer()
		return
	}
	nic.HW.CPUDo(nic.Cfg.RecvProcCost, func() {
		defer buf.Release()
		g, ok := e.groups[fr.Group]
		if !ok {
			e.m.notMemberDrops.Inc()
			return
		}
		// Ack unconditionally; duplicates must stop the child's timer too.
		nic.Inject(&gm.Frame{
			Kind:    gm.KindReduceAck,
			SrcNode: nic.ID(),
			DstNode: fr.SrcNode,
			Group:   fr.Group,
			Seq:     fr.Seq,
		}, nil)
		key := redDupKey{fr.SrcNode, fr.Seq}
		if g.redSeen[key] {
			e.m.duplicates.Inc()
			return
		}
		g.redSeen[key] = true
		e.contribute(g, fr.Seq, ReduceOp(fr.Offset), decodeVec(fr.Payload))
	})
}

// rxReduceAck stops a pending reduce retransmission timer.
func (e *Ext) rxReduceAck(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		g, ok := e.groups[fr.Group]
		if !ok {
			return
		}
		key := barrierKey{fr.Seq, -1}
		if t, ok := g.redTimers[key]; ok {
			t.Stop()
			delete(g.redTimers, key)
		}
	})
}

// AllreduceNIC reduces to the root over the tree, then multicasts the
// result back down it: every member returns the combined vector. The
// caller must have preposted a receive token (>= 8*len(vec) bytes) on
// non-root members for the downward multicast.
func (e *Ext) AllreduceNIC(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op ReduceOp) []int64 {
	if res := e.Reduce(proc, port, id, vec, op); res != nil {
		e.Mcast(proc, port, id, encodeVec(res))
		return res
	}
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) > 0 {
			return decodeVec(ev.Data)
		}
		panic("core: unexpected traffic on allreduce port")
	}
}

func encodeVec(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

func decodeVec(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// redDupKey deduplicates retransmitted child contributions.
type redDupKey struct {
	child fabric.NodeID
	seq   uint32
}
