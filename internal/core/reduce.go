package core

import "fmt"

// NIC-computable reduction operators. The actual collective machinery —
// dissemination/tree barrier, combine-and-forward reduce/allreduce, and
// allgather — lives in internal/coll; the operator type stays here so the
// Collective interface (and the extension's compatibility shims) can name
// it without a dependency cycle.
//
// Vectors are int64s: the LANai has no floating-point unit, which is
// exactly the trade-off the companion reduction paper ("NIC-Based
// Reduction in Myrinet Clusters: Is It Beneficial?") investigates.

// ReduceOp is a NIC-computable combining operation.
type ReduceOp uint8

const (
	OpSum ReduceOp = iota + 1
	OpMin
	OpMax
)

// Apply combines two elements under the operator.
func (op ReduceOp) Apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic(fmt.Errorf("%w: unknown op %d", ErrBadReduce, op))
	}
}
