package core_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Regression (dynamic-membership satellite): RemoveGroup used to panic
// ErrGroupBusy when the group still had unacknowledged records. It now
// rides the quiesce path — the entry is deleted by the firmware event
// that retires the last record. On the old firmware this test dies in the
// panic; on the new one the message still completes and the teardown
// lands afterwards.
func TestRemoveGroupBusyDefersUntilDrained(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(1, 20000)
	removed := false
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		ext := r.c.Nodes[0].Ext
		ext.Mcast(p, r.ports[0], r.gid, pattern(16384))
		// The multi-packet message is still in flight: the removal must
		// defer, not panic and not drop the message.
		ext.RemoveGroup(r.gid, func() {
			removed = true
			if ext.GroupOutstanding(r.gid) != 0 {
				t.Error("group removed while records were outstanding")
			}
		})
		r.ports[0].WaitSendDone(p)
	})
	r.run(t)
	if len(*got) != 3 {
		t.Fatalf("message delivered to %d nodes, want 3", len(*got))
	}
	if !removed {
		t.Fatal("deferred removal never ran")
	}
	if r.c.Nodes[0].Ext.HasGroup(r.gid) {
		t.Fatal("group still installed after drained removal")
	}
}

// QuiesceGroup on an idle group fires immediately; on a busy one it fires
// at the exact event that retires the last record.
func TestQuiesceGroupWaitsForDrain(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(1, 20000)
	idleRan, busyRan := false, false
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		ext := r.c.Nodes[0].Ext
		ext.QuiesceGroup(r.gid, func() { idleRan = true })
		ext.QuiesceGroup(999, func() {}) // unknown groups complete immediately
		ext.Mcast(p, r.ports[0], r.gid, pattern(16384))
		ext.QuiesceGroup(r.gid, func() {
			busyRan = true
			if n := ext.GroupOutstanding(r.gid); n != 0 {
				t.Errorf("quiesce fired with %d records outstanding", n)
			}
		})
		r.ports[0].WaitSendDone(p)
		if !busyRan {
			t.Error("send completed but the quiesce callback had not fired")
		}
	})
	r.run(t)
	if !idleRan {
		t.Fatal("idle-group quiesce never fired")
	}
	if len(*got) != 3 {
		t.Fatalf("message delivered to %d nodes, want 3", len(*got))
	}
}

// rollEpoch prepares and commits the same tree at a new epoch on the
// given nodes, waiting for each firmware phase to land everywhere before
// starting the next.
func rollEpoch(p *sim.Proc, r *rig, epoch uint32, nodes ...int) {
	left := 0
	for _, n := range nodes {
		left++
		r.c.Nodes[n].Ext.PrepareGroupEpoch(r.gid, r.tr, testPort, testPort, epoch, func() { left-- })
	}
	for left > 0 {
		p.Sleep(sim.Microsecond)
	}
	for _, n := range nodes {
		left++
		r.c.Nodes[n].Ext.CommitGroupEpoch(r.gid, epoch, func() { left-- })
	}
	for left > 0 {
		p.Sleep(sim.Microsecond)
	}
}

// A full prepare/commit roll across all members: traffic flows before and
// after, the epoch advances, and the sequence space restarts cleanly.
func TestEpochRollCarriesTraffic(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(2, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		ext := r.c.Nodes[0].Ext
		ext.McastSync(p, r.ports[0], r.gid, pattern(64))
		rollEpoch(p, r, 1, 0, 1, 2, 3)
		if ep, live := ext.GroupEpoch(r.gid); ep != 1 || !live {
			t.Errorf("root group at epoch %d live=%v after commit, want 1/true", ep, live)
		}
		ext.McastSync(p, r.ports[0], r.gid, pattern(64))
	})
	r.run(t)
	for n, msgs := range *got {
		if len(msgs) != 2 {
			t.Fatalf("node %d got %d messages across the roll, want 2", n, len(msgs))
		}
	}
	for _, n := range []int{0, 1, 2, 3} {
		if c := r.c.Nodes[n].Ext.Stats().EpochCommits; c != 1 {
			t.Fatalf("node %d counted %d epoch commits, want 1", n, c)
		}
	}
}

// A frame from an older epoch arriving at a NIC that has moved on is
// acked-as-dropped: the payload is not delivered, but the sender's window
// advances — the departed-NIC rule that keeps the root from deadlocking.
func TestStaleEpochFrameAckedAsDropped(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		rollEpoch(p, r, 1, 2) // node 2 moves ahead; everyone else stays at 0
		// McastSync returning proves node 2's rejection still acked.
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(64))
	})
	r.run(t)
	if len(*got) != 2 {
		t.Fatalf("delivered to %d nodes, want 2 (node 2 must reject)", len(*got))
	}
	if _, ok := (*got)[2]; ok {
		t.Fatal("stale-epoch frame was delivered at the node that moved ahead")
	}
	st := r.c.Nodes[2].Ext.Stats()
	if st.StaleEpochDrops == 0 || st.AckedAsDropped == 0 {
		t.Fatalf("stale frame not counted: %+v", st)
	}
}

// A frame from a *future* epoch (the receiver has not committed yet) is
// silently dropped; the parent keeps retransmitting and delivery
// completes once the receiver commits — nothing is lost across the gap.
func TestFutureEpochFrameDeliveredAfterCommit(t *testing.T) {
	r := newRig(t, 4, tree.Flat, nil)
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		rollEpoch(p, r, 1, 0, 1, 3) // node 2 lags at epoch 0
		r.c.Nodes[0].Ext.Mcast(p, r.ports[0], r.gid, pattern(64))
		p.Sleep(300 * sim.Microsecond)
		if r.c.Nodes[2].Ext.Stats().FutureEpochDrops == 0 {
			t.Error("lagging node accepted (or never saw) a future-epoch frame")
		}
		rollEpoch(p, r, 1, 2) // node 2 catches up; retransmits now land
		r.ports[0].WaitSendDone(p)
	})
	r.run(t)
	if len(*got) != 3 {
		t.Fatalf("delivered to %d nodes, want all 3 after the laggard commits", len(*got))
	}
}

// newRigEpoch is newRig with the group installed at a caller-chosen
// initial epoch — the wraparound tests start at the top of the uint32
// epoch space.
func newRigEpoch(t *testing.T, nodes int, epoch uint32) *rig {
	t.Helper()
	c := cluster.NewFromConfig(cluster.DefaultConfig(nodes))
	r := &rig{c: c, ports: c.OpenPorts(testPort), gid: 7}
	r.tr = tree.Flat(0, c.Members())
	left := 0
	for _, n := range c.Members() {
		left++
		c.Nodes[n].Ext.InstallGroupEpoch(r.gid, r.tr, testPort, testPort, epoch, func() { left-- })
	}
	c.Run()
	if left != 0 {
		t.Fatalf("%d installs incomplete after quiescence", left)
	}
	return r
}

// Regression (epoch wraparound): the epoch counter lives in uint32
// serial-number space. After the group rolls past MaxUint32 to epoch 1
// (the coordinator skips the static-reserved 0), a frame still stamped
// MaxUint32 arriving at a moved-on NIC must classify as STALE and be
// acked-as-dropped. A raw `<` comparison classifies it as future and
// drops it silently, so the sender retransmits forever — this test then
// fails with node 2 undelivered frames never acked and zero
// StaleEpochDrops.
func TestStaleClassificationAcrossEpochWrap(t *testing.T) {
	const top = ^uint32(0) // MaxUint32: the last epoch before the wrap
	r := newRigEpoch(t, 4, top)
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		rollEpoch(p, r, 1, 2) // node 2 wraps to epoch 1; everyone else stays at MaxUint32
		// McastSync returning proves node 2's rejection was acked (stale),
		// not silently dropped (future) — the wrap-unsafe failure mode.
		r.c.Nodes[0].Ext.McastSync(p, r.ports[0], r.gid, pattern(64))
	})
	r.run(t)
	if len(*got) != 2 {
		t.Fatalf("delivered to %d nodes, want 2 (node 2 must reject as stale)", len(*got))
	}
	if _, ok := (*got)[2]; ok {
		t.Fatal("pre-wrap frame was delivered at the node that wrapped ahead")
	}
	st := r.c.Nodes[2].Ext.Stats()
	if st.StaleEpochDrops == 0 || st.AckedAsDropped == 0 {
		t.Fatalf("pre-wrap frame not classified stale across the wrap: %+v", st)
	}
	if st.FutureEpochDrops != 0 {
		t.Fatalf("pre-wrap frame misclassified as future %d times", st.FutureEpochDrops)
	}
}

// Regression (epoch wraparound, the other direction): a post-wrap frame
// (epoch 1) reaching a NIC still at MaxUint32 must classify as FUTURE —
// silently dropped until this NIC commits, after which the parent's
// retransmissions land. A raw `<` would call it stale and ack it as
// dropped, permanently losing the payload at the laggard.
func TestFutureClassificationAcrossEpochWrap(t *testing.T) {
	const top = ^uint32(0)
	r := newRigEpoch(t, 4, top)
	got := r.spawnReceivers(1, 256)
	r.c.Eng.Spawn("root", func(p *sim.Proc) {
		rollEpoch(p, r, 1, 0, 1, 3) // node 2 lags at MaxUint32
		if ep, live := r.c.Nodes[0].Ext.GroupEpoch(r.gid); ep != 1 || !live {
			t.Errorf("root at epoch %d live=%v after the wrap, want 1/true", ep, live)
		}
		r.c.Nodes[0].Ext.Mcast(p, r.ports[0], r.gid, pattern(64))
		p.Sleep(300 * sim.Microsecond)
		st := r.c.Nodes[2].Ext.Stats()
		if st.FutureEpochDrops == 0 {
			t.Error("laggard accepted (or never saw) a post-wrap future-epoch frame")
		}
		if st.AckedAsDropped != 0 {
			t.Error("laggard acked-as-dropped a future frame — wrap misclassification")
		}
		rollEpoch(p, r, 1, 2) // node 2 wraps too; retransmits now land
		r.ports[0].WaitSendDone(p)
	})
	r.run(t)
	if len(*got) != 3 {
		t.Fatalf("delivered to %d nodes, want all 3 after the laggard wraps", len(*got))
	}
}

// Committing an epoch nobody prepared, or regressing a live epoch, are
// firmware protocol violations and panic with the sentinel errors.
func TestEpochProtocolViolationsPanic(t *testing.T) {
	check := func(name string, want error, drive func(r *rig)) {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, 2, tree.Flat, nil)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic (want %v)", name, want)
				}
			}()
			drive(r)
			r.c.Eng.Run()
		})
	}
	check("commit-unprepared", core.ErrNotPrepared, func(r *rig) {
		r.c.Nodes[0].Ext.CommitGroupEpoch(r.gid, 3, nil)
	})
	check("epoch-regression", core.ErrEpochRegressed, func(r *rig) {
		r.c.Nodes[0].Ext.PrepareGroupEpoch(r.gid, r.tr, testPort, testPort, 0, nil)
	})
	check("departure-of-unknown-group", core.ErrNoSuchGroup, func(r *rig) {
		r.c.Nodes[0].Ext.PrepareGroupEpoch(gm.GroupID(999), nil, testPort, testPort, 1, nil)
	})
}
