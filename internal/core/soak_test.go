package core_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// TestSoakMixedTraffic is the kitchen-sink integration test: on one lossy
// 12-node cluster, simultaneously run
//   - two multicast groups with different roots and tree shapes,
//   - background unicast ping-pong pairs,
//   - a NIC-level barrier group,
//   - a NIC-based reduction group,
//
// and verify every channel's integrity and ordering at the end. This is
// the closest the suite gets to a production cluster's concurrent life.
func TestSoakMixedTraffic(t *testing.T) {
	const (
		nodes     = 12
		rounds    = 6
		mcPortA   = gm.PortID(1)
		mcPortB   = gm.PortID(2)
		uniPort   = gm.PortID(3)
		barPort   = gm.PortID(4)
		redPort   = gm.PortID(5)
		groupA    = gm.GroupID(101)
		groupB    = gm.GroupID(102)
		barGroup  = gm.GroupID(103)
		redGroup  = gm.GroupID(104)
		rootA     = 0
		rootB     = 5
		lossRate  = 0.015
		timeLimit = 2 * sim.Second
	)
	cfg := cluster.DefaultConfig(nodes)
	cfg.LossRate = lossRate
	cfg.Seed = 2003
	c := cluster.NewFromConfig(cfg)

	portsA := c.OpenPorts(mcPortA)
	portsB := c.OpenPorts(mcPortB)
	portsU := c.OpenPorts(uniPort)
	portsBar := c.OpenPorts(barPort)
	portsRed := c.OpenPorts(redPort)

	c.InstallGroup(groupA, tree.Binomial(rootA, c.Members()), mcPortA, mcPortA)
	treeB := cfg.OptimalTree(fabric.NodeID(rootB), c.Members(), 2000)
	c.InstallGroup(groupB, treeB, mcPortB, mcPortB)
	c.InstallGroup(redGroup, tree.Binomial(0, c.Members()), redPort, redPort)
	for _, n := range c.Nodes {
		n.Ext.InstallBarrier(barGroup, c.Members(), barPort, nil)
	}

	msgsA := make([][]byte, rounds)
	msgsB := make([][]byte, rounds)
	for i := range msgsA {
		msgsA[i] = pattern(3000 + 777*i)
		msgsA[i][0] = byte(i)
		msgsB[i] = pattern(600 + 333*i)
		msgsB[i][0] = byte(100 + i)
	}

	okA, okB := 0, 0
	// Multicast group A receivers.
	for n := 0; n < nodes; n++ {
		if n == rootA {
			continue
		}
		n := n
		c.Eng.Spawn("recvA", func(p *sim.Proc) {
			portsA[n].ProvideN(rounds, 1<<14)
			for i := 0; i < rounds; i++ {
				ev := portsA[n].Recv(p)
				if bytes.Equal(ev.Data, msgsA[i]) {
					okA++
				}
			}
		})
	}
	// Multicast group B receivers.
	for n := 0; n < nodes; n++ {
		if n == rootB {
			continue
		}
		n := n
		c.Eng.Spawn("recvB", func(p *sim.Proc) {
			portsB[n].ProvideN(rounds, 1<<13)
			for i := 0; i < rounds; i++ {
				ev := portsB[n].Recv(p)
				if bytes.Equal(ev.Data, msgsB[i]) {
					okB++
				}
			}
		})
	}
	// Roots.
	c.Eng.Spawn("rootA", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			c.Nodes[rootA].Ext.McastSync(p, portsA[rootA], groupA, msgsA[i])
		}
	})
	c.Eng.Spawn("rootB", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			c.Nodes[rootB].Ext.Mcast(p, portsB[rootB], groupB, msgsB[i])
		}
		for i := 0; i < rounds; i++ {
			portsB[rootB].WaitSendDone(p)
		}
	})
	// Unicast ping-pong pairs on the remaining port.
	pingOK := 0
	for pair := 0; pair < nodes/2; pair++ {
		a, b := pair, nodes-1-pair
		if a >= b {
			continue
		}
		c.Eng.Spawn("ping", func(p *sim.Proc) {
			portsU[a].ProvideN(rounds, 512)
			for i := 0; i < rounds; i++ {
				portsU[a].Send(p, fabric.NodeID(b), uniPort, []byte{byte(i), byte(a)})
				ev := portsU[a].Recv(p)
				if ev.Data[0] == byte(i) {
					pingOK++
				}
			}
		})
		c.Eng.Spawn("pong", func(p *sim.Proc) {
			portsU[b].ProvideN(rounds, 512)
			for i := 0; i < rounds; i++ {
				ev := portsU[b].Recv(p)
				portsU[b].Send(p, fabric.NodeID(a), uniPort, ev.Data)
			}
		})
	}
	// Barrier + reduce participants on every node.
	barDone := 0
	var redResults []int64
	for n := 0; n < nodes; n++ {
		n := n
		c.Eng.Spawn("collective", func(p *sim.Proc) {
			if n != 0 {
				portsRed[n].ProvideN(rounds, 128)
			}
			for i := 0; i < rounds; i++ {
				c.Nodes[n].Ext.Barrier(p, portsBar[n], barGroup)
				res := c.Nodes[n].Ext.AllreduceNIC(p, portsRed[n], redGroup, []int64{int64(n)}, core.OpSum)
				if n == 0 {
					redResults = append(redResults, res[0])
				}
			}
			barDone++
		})
	}

	c.Eng.RunUntil(timeLimit)
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("soak stalled with %d live processes at %v", live, c.Eng.Now())
	}
	c.Eng.Kill()

	if okA != (nodes-1)*rounds {
		t.Errorf("group A delivered %d/%d intact in-order messages", okA, (nodes-1)*rounds)
	}
	if okB != (nodes-1)*rounds {
		t.Errorf("group B delivered %d/%d intact in-order messages", okB, (nodes-1)*rounds)
	}
	if want := (nodes / 2) * rounds; pingOK != want {
		t.Errorf("ping-pong completed %d/%d rounds", pingOK, want)
	}
	if barDone != nodes {
		t.Errorf("%d/%d nodes finished the barrier/reduce loop", barDone, nodes)
	}
	wantSum := int64(nodes * (nodes - 1) / 2)
	for i, s := range redResults {
		if s != wantSum {
			t.Errorf("reduce round %d sum %d, want %d", i, s, wantSum)
		}
	}
	// The loss rate must actually have exercised recovery somewhere.
	var retrans uint64
	for _, n := range c.Nodes {
		retrans += n.Ext.Stats().Retransmits + n.NIC.Stats().Retransmits
	}
	if retrans == 0 {
		t.Error("soak with 1.5% loss saw zero retransmissions")
	}
}
