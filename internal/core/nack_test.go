package core_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// mcastLossyRun multicasts a three-packet message down a chain with the
// middle packet dropped on the first hop, returning the leaf delivery time.
func mcastLossyRun(t *testing.T, nacks bool) (sim.Time, uint64) {
	t.Helper()
	cfg := cluster.DefaultConfig(3)
	cfg.GM.EnableNacks = nacks
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := tree.Chain(0, c.Members())
	c.InstallGroup(21, tr, testPort, testPort)
	dropped := false
	c.Net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*gm.Frame)
		if ok && fr.Kind == gm.KindMcastData && fr.Seq == 2 && fr.DstNode == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	msg := pattern(3 * 4096)
	var leafAt sim.Time
	for n := 1; n < 3; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(1 << 15)
			ev := ports[n].Recv(p)
			if !bytes.Equal(ev.Data, msg) {
				t.Errorf("node %d corrupted", n)
			}
			if n == 2 {
				leafAt = p.Now()
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 21, msg)
	})
	c.Eng.Run()
	c.Eng.Kill()
	return leafAt, c.Nodes[1].Ext.Stats().McastNacksSent
}

func TestMcastNacksSpeedUpRecovery(t *testing.T) {
	slow, slowNacks := mcastLossyRun(t, false)
	fast, fastNacks := mcastLossyRun(t, true)
	if slowNacks != 0 {
		t.Fatalf("nacks sent while disabled: %d", slowNacks)
	}
	if fastNacks == 0 {
		t.Fatal("no group nacks sent with fast recovery enabled")
	}
	if fast >= slow {
		t.Fatalf("group nack recovery (%v) not faster than timeout (%v)", fast, slow)
	}
}

func TestMcastNacksUnderRandomLossStillCorrect(t *testing.T) {
	cfg := cluster.DefaultConfig(10)
	cfg.GM.EnableNacks = true
	cfg.LossRate = 0.04
	cfg.Seed = 17
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(22, tr, testPort, testPort)
	const count = 6
	msgs := make([][]byte, count)
	for i := range msgs {
		msgs[i] = pattern(600 + 1800*i)
		msgs[i][0] = byte(i)
	}
	bad := 0
	for n := 1; n < 10; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].ProvideN(count, 1<<14)
			for i := 0; i < count; i++ {
				if !bytes.Equal(ports[n].Recv(p).Data, msgs[i]) {
					bad++
				}
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			c.Nodes[0].Ext.Mcast(p, ports[0], 22, msgs[i])
		}
		for i := 0; i < count; i++ {
			ports[0].WaitSendDone(p)
		}
	})
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("stalled with %d live procs", live)
	}
	c.Eng.Kill()
	if bad != 0 {
		t.Fatalf("%d corrupted or reordered deliveries with nacks under loss", bad)
	}
}
