package core_test

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// recoverErr runs f and returns the recovered panic value as an error.
func recoverErr(t *testing.T, f func()) (err error) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected a panic")
		}
		e, ok := v.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", v, v)
		}
		err = e
	}()
	f()
	return nil
}

func TestErrNoExtension(t *testing.T) {
	c := cluster.New(2, cluster.WithoutExtension())
	if err := recoverErr(t, func() { core.FromNIC(c.Nodes[0].NIC) }); !errors.Is(err, core.ErrNoExtension) {
		t.Errorf("FromNIC without extension: got %v, want ErrNoExtension", err)
	}
}

func TestErrInvalidTree(t *testing.T) {
	c := cluster.New(4)
	// Child 1 under non-root parent 2 violates the ID-sorted invariant;
	// InstallGroup refuses it synchronously.
	bad := tree.FromParents(0, map[fabric.NodeID]fabric.NodeID{2: 0, 1: 2})
	if err := recoverErr(t, func() {
		c.Nodes[0].Ext.InstallGroup(9, bad, 1, 1, nil)
	}); !errors.Is(err, core.ErrInvalidTree) {
		t.Errorf("invalid tree: got %v, want ErrInvalidTree", err)
	}
}

// Misuse detected inside the simulated firmware (HostPost/CPUDo callbacks)
// panics out of Engine.Run rather than the posting call; these tests
// recover at the Run boundary.

func TestErrGroupInstalled(t *testing.T) {
	c := cluster.New(4)
	tr := tree.Chain(0, c.Members())
	c.Nodes[0].Ext.InstallGroup(7, tr, 1, 1, nil)
	c.Nodes[0].Ext.InstallGroup(7, tr, 1, 1, nil)
	if err := recoverErr(t, func() { c.Eng.Run() }); !errors.Is(err, core.ErrGroupInstalled) {
		t.Errorf("double install: got %v, want ErrGroupInstalled", err)
	}
}

func TestErrNoSuchGroupOnRemove(t *testing.T) {
	c := cluster.New(2)
	c.Nodes[0].Ext.RemoveGroup(42, nil)
	if err := recoverErr(t, func() { c.Eng.Run() }); !errors.Is(err, core.ErrNoSuchGroup) {
		t.Errorf("remove unknown group: got %v, want ErrNoSuchGroup", err)
	}
}

func TestHostCallSynchronousErrors(t *testing.T) {
	c := cluster.New(4)
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Chain(0, c.Members()), 1, 1)
	c.Eng.Spawn("host", func(p *sim.Proc) {
		for !ready() {
			p.Sleep(sim.Micros(1))
		}
		ext0 := c.Nodes[0].Ext
		// Port on node 1 presented to node 0's extension.
		if err := recoverErr(t, func() { ext0.Mcast(p, ports[1], 7, []byte("x")) }); !errors.Is(err, core.ErrWrongNIC) {
			t.Errorf("wrong-NIC mcast: got %v, want ErrWrongNIC", err)
		}
		if err := recoverErr(t, func() { ext0.Barrier(p, ports[1], 7) }); !errors.Is(err, core.ErrWrongNIC) {
			t.Errorf("wrong-NIC barrier: got %v, want ErrWrongNIC", err)
		}
		// A reduce vector larger than one packet is refused up front.
		huge := make([]int64, c.Cfg.GM.MTU)
		if err := recoverErr(t, func() { ext0.Reduce(p, ports[0], 7, huge, core.OpSum) }); !errors.Is(err, core.ErrBadReduce) {
			t.Errorf("oversized reduce: got %v, want ErrBadReduce", err)
		}
	})
	c.Eng.Run()
	c.Eng.Kill()
}

func TestErrNoSuchGroupOnMcast(t *testing.T) {
	c := cluster.New(2)
	ports := c.OpenPorts(1)
	c.Eng.Spawn("host", func(p *sim.Proc) {
		c.Nodes[0].Ext.Mcast(p, ports[0], 99, []byte("x"))
	})
	if err := recoverErr(t, func() { c.Eng.Run() }); !errors.Is(err, core.ErrNoSuchGroup) {
		t.Errorf("mcast on unknown group: got %v, want ErrNoSuchGroup", err)
	}
}

func TestErrNotRoot(t *testing.T) {
	c := cluster.New(4)
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Chain(0, c.Members()), 1, 1)
	c.Eng.Spawn("host", func(p *sim.Proc) {
		for !ready() {
			p.Sleep(sim.Micros(1))
		}
		c.Nodes[1].Ext.Mcast(p, ports[1], 7, []byte("x"))
	})
	if err := recoverErr(t, func() { c.Eng.Run() }); !errors.Is(err, core.ErrNotRoot) {
		t.Errorf("non-root mcast: got %v, want ErrNotRoot", err)
	}
}

func TestBarrierErrors(t *testing.T) {
	c := cluster.New(4)
	members := c.Members()
	if err := recoverErr(t, func() {
		c.Nodes[3].Ext.InstallBarrier(5, members[:2], 1, nil)
	}); !errors.Is(err, core.ErrNotMember) {
		t.Errorf("non-member barrier install: got %v, want ErrNotMember", err)
	}

	ports := c.OpenPorts(1)
	c.Eng.Spawn("b", func(p *sim.Proc) {
		c.Nodes[0].Ext.Barrier(p, ports[0], 5)
	})
	if err := recoverErr(t, func() { c.Eng.Run() }); !errors.Is(err, core.ErrNoSuchGroup) {
		t.Errorf("barrier on uninstalled group: got %v, want ErrNoSuchGroup", err)
	}
}
