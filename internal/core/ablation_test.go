package core_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tree"
)

// ablationRun multicasts a message under the given core configuration and
// returns the completion time plus per-node delivered payloads.
func ablationRun(t *testing.T, mut func(*core.Config), size, nodes int) (sim.Time, int) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	mut(&cfg.Mcast)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(11, tr, testPort, testPort)
	msg := pattern(size)
	okCount := 0
	// done is the time the last host received the message: root-side
	// completion only covers the root's own children (reliability is
	// hop-by-hop), so downstream ablations are visible only here.
	var done sim.Time
	for n := 1; n < nodes; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(1 << 16)
			ev := ports[n].Recv(p)
			if bytes.Equal(ev.Data, msg) {
				okCount++
			}
			if p.Now() > done {
				done = p.Now()
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 11, msg)
	})
	c.Eng.Run()
	c.Eng.Kill()
	return done, okCount
}

func TestAblationModeTokensCorrectAndSlower(t *testing.T) {
	base, okBase := ablationRun(t, func(c *core.Config) {}, 256, 8)
	tok, okTok := ablationRun(t, func(c *core.Config) { c.Multisend = core.ModeTokens }, 256, 8)
	if okBase != 7 || okTok != 7 {
		t.Fatalf("deliveries base=%d tokens=%d, want 7/7", okBase, okTok)
	}
	// Per-token processing repeats the send-event cost per destination;
	// the callback scheme must finish sooner for small messages.
	if tok <= base {
		t.Fatalf("token-mode multisend (%v) not slower than callback mode (%v)", tok, base)
	}
}

func TestAblationStoreAndForwardCorrectAndSlower(t *testing.T) {
	size := 16384 // four packets: pipelining matters
	base, okBase := ablationRun(t, func(c *core.Config) {}, size, 8)
	sf, okSF := ablationRun(t, func(c *core.Config) { c.Forward = core.ForwardStoreAndForward }, size, 8)
	if okBase != 7 || okSF != 7 {
		t.Fatalf("deliveries base=%d sf=%d, want 7/7", okBase, okSF)
	}
	if sf <= base {
		t.Fatalf("store-and-forward (%v) not slower than per-packet pipelining (%v)", sf, base)
	}
}

func TestAblationStoreAndForwardSinglePacketEquivalent(t *testing.T) {
	// With a single-packet message there is nothing to pipeline; both
	// forwarding modes should deliver (times may differ slightly because
	// store-and-forward re-reads host memory).
	_, ok := ablationRun(t, func(c *core.Config) { c.Forward = core.ForwardStoreAndForward }, 512, 8)
	if ok != 7 {
		t.Fatalf("single-packet store-and-forward delivered %d, want 7", ok)
	}
}

func TestAblationHoldBufferCorrect(t *testing.T) {
	_, ok := ablationRun(t, func(c *core.Config) { c.Retransmit = core.RetransmitHoldBuffer }, 8192, 8)
	if ok != 7 {
		t.Fatalf("hold-buffer mode delivered %d, want 7", ok)
	}
}

func TestAblationHoldBufferThrottlesStreaming(t *testing.T) {
	// A long stream through a chain with few receive buffers: pinning each
	// buffer until children ack throttles the receiver — "holding on to
	// one or more receive buffers will slow down the receiver".
	run := func(mode core.RetransmitSource) sim.Time {
		cfg := cluster.DefaultConfig(4)
		cfg.NIC.RecvBuffers = 2
		cfg.Mcast.Retransmit = mode
		c := cluster.NewFromConfig(cfg)
		ports := c.OpenPorts(testPort)
		tr := tree.Chain(0, c.Members())
		c.InstallGroup(12, tr, testPort, testPort)
		const count = 6
		msg := pattern(12288)
		for n := 1; n < 4; n++ {
			n := n
			c.Eng.Spawn("recv", func(p *sim.Proc) {
				ports[n].ProvideN(count, 1<<14)
				for i := 0; i < count; i++ {
					ports[n].Recv(p)
				}
			})
		}
		var done sim.Time
		c.Eng.Spawn("root", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				c.Nodes[0].Ext.Mcast(p, ports[0], 12, msg)
			}
			for i := 0; i < count; i++ {
				ports[0].WaitSendDone(p)
			}
			done = p.Now()
		})
		c.Eng.Run()
		c.Eng.Kill()
		if live := c.Eng.LiveProcs(); live != 0 {
			t.Fatalf("mode %v stalled with %d live procs", mode, live)
		}
		return done
	}
	fast := run(core.RetransmitFromHost)
	slow := run(core.RetransmitHoldBuffer)
	if slow <= fast {
		t.Fatalf("hold-buffer streaming (%v) not slower than host-replica retransmit (%v)", slow, fast)
	}
}

func TestAblationModeTokensUnderLoss(t *testing.T) {
	cfg := cluster.DefaultConfig(6)
	cfg.Mcast.Multisend = core.ModeTokens
	cfg.LossRate = 0.04
	cfg.Seed = 11
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(testPort)
	tr := tree.Flat(0, c.Members())
	c.InstallGroup(13, tr, testPort, testPort)
	msg := pattern(5000)
	ok := 0
	for n := 1; n < 6; n++ {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(1 << 14)
			if bytes.Equal(ports[n].Recv(p).Data, msg) {
				ok++
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 13, msg)
	})
	c.Eng.Run()
	c.Eng.Kill()
	if ok != 5 {
		t.Fatalf("token mode under loss delivered %d, want 5", ok)
	}
}
