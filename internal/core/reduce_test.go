package core_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const reduceGID gm.GroupID = 70

// reduceRig builds a cluster with a binomial group installed and settled.
func reduceRig(t *testing.T, nodes int, mut func(*cluster.Config)) (*cluster.Cluster, []*gm.Port) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	if mut != nil {
		mut(cfg)
	}
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(8)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(reduceGID, tr, 8, 8)
	c.Eng.Run() // settle installations before spawning hosts
	return c, ports
}

func TestNICReduceSum(t *testing.T) {
	const nodes = 9
	c, ports := reduceRig(t, nodes, nil)
	var result []int64
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			vec := []int64{int64(i + 1), int64(10 * (i + 1))}
			res := c.Nodes[i].Ext.Reduce(p, ports[i], reduceGID, vec, core.OpSum)
			if i == 0 {
				result = res
			} else if res != nil {
				t.Errorf("non-root %d got a result", i)
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	// 1+2+...+9 = 45; tens column 450.
	if len(result) != 2 || result[0] != 45 || result[1] != 450 {
		t.Fatalf("reduce sum = %v, want [45 450]", result)
	}
}

func TestNICReduceMinMax(t *testing.T) {
	const nodes = 6
	for _, tc := range []struct {
		op   core.ReduceOp
		want int64
	}{{core.OpMin, -5}, {core.OpMax, 0}} {
		c, ports := reduceRig(t, nodes, nil)
		var result []int64
		for i := 0; i < nodes; i++ {
			i := i
			c.Eng.Spawn("p", func(p *sim.Proc) {
				res := c.Nodes[i].Ext.Reduce(p, ports[i], reduceGID, []int64{int64(-i)}, tc.op)
				if i == 0 {
					result = res
				}
			})
		}
		c.Eng.Run()
		c.Eng.Kill()
		if len(result) != 1 || result[0] != tc.want {
			t.Fatalf("op %v = %v, want %d", tc.op, result, tc.want)
		}
	}
}

func TestNICAllreduce(t *testing.T) {
	const nodes = 8
	c, ports := reduceRig(t, nodes, nil)
	results := make([][]int64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			if i != 0 {
				ports[i].Provide(64) // token for the downward multicast
			}
			results[i] = c.Nodes[i].Ext.AllreduceNIC(p, ports[i], reduceGID, []int64{1}, core.OpSum)
		})
	}
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("allreduce stalled with %d live procs", live)
	}
	c.Eng.Kill()
	for i, res := range results {
		if len(res) != 1 || res[0] != nodes {
			t.Fatalf("rank %d allreduce = %v, want [%d]", i, res, nodes)
		}
	}
}

func TestNICReduceRepeatedInstances(t *testing.T) {
	const nodes, rounds = 5, 6
	c, ports := reduceRig(t, nodes, nil)
	sums := make([]int64, 0, rounds)
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				res := c.Nodes[i].Ext.Reduce(p, ports[i], reduceGID, []int64{int64(r)}, core.OpSum)
				if i == 0 {
					sums = append(sums, res[0])
				}
			}
		})
	}
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("repeated reduce stalled with %d live procs", live)
	}
	c.Eng.Kill()
	for r, s := range sums {
		if s != int64(r*nodes) {
			t.Fatalf("round %d sum = %d, want %d", r, s, r*nodes)
		}
	}
}

func TestNICReduceUnderLoss(t *testing.T) {
	const nodes = 7
	c, ports := reduceRig(t, nodes, func(cfg *cluster.Config) {
		cfg.LossRate = 0.05
		cfg.Seed = 41
	})
	var result []int64
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			res := c.Nodes[i].Ext.Reduce(p, ports[i], reduceGID, []int64{1}, core.OpSum)
			if i == 0 {
				result = res
			}
		})
	}
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("lossy reduce stalled with %d live procs", live)
	}
	c.Eng.Kill()
	if len(result) != 1 || result[0] != nodes {
		t.Fatalf("lossy reduce = %v, want [%d] — duplicates double-counted or lost", result, nodes)
	}
}

func TestNICReduceVectorTooLargePanics(t *testing.T) {
	c, ports := reduceRig(t, 2, nil)
	c.Eng.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversized reduce vector did not panic")
			}
		}()
		c.Nodes[0].Ext.Reduce(p, ports[0], reduceGID, make([]int64, 4096), core.OpSum)
	})
	c.Eng.Run()
	c.Eng.Kill()
}

func TestNICReduceChargesLANaiCost(t *testing.T) {
	// Larger vectors must take longer: the per-element combining cost on
	// the slow NIC processor is the companion paper's central trade-off.
	run := func(elems int) sim.Time {
		c, ports := reduceRig(t, 8, nil)
		for i := 0; i < 8; i++ {
			i := i
			c.Eng.Spawn("p", func(p *sim.Proc) {
				c.Nodes[i].Ext.Reduce(p, ports[i], reduceGID, make([]int64, elems), core.OpSum)
			})
		}
		c.Eng.Run()
		c.Eng.Kill()
		return c.Eng.Now()
	}
	small, large := run(4), run(400)
	if large <= small {
		t.Fatalf("400-element reduce (%v) not slower than 4-element (%v)", large, small)
	}
}
