package core

import "repro/internal/gm"

// Option configures the multicast extension at install time.
type Option func(*gm.NIC, *Config)

// WithConfig replaces the extension's entire cost/mode configuration.
func WithConfig(cfg Config) Option {
	return func(_ *gm.NIC, c *Config) { *c = cfg }
}

// WithMultisend selects the root's replica-transmission mechanism.
func WithMultisend(m MultisendMode) Option {
	return func(_ *gm.NIC, c *Config) { c.Multisend = m }
}

// WithForward selects how intermediate NICs forward (per-packet
// pipelining vs the store-and-forward ablation).
func WithForward(f ForwardMode) Option {
	return func(_ *gm.NIC, c *Config) { c.Forward = f }
}

// WithRetransmitSource selects where retransmitted data is read from.
func WithRetransmitSource(r RetransmitSource) Option {
	return func(_ *gm.NIC, c *Config) { c.Retransmit = r }
}

// WithNacks enables fast recovery on the underlying GM firmware: sequence
// holes trigger negative acknowledgments instead of waiting out timers.
func WithNacks() Option {
	return func(n *gm.NIC, _ *Config) { n.Cfg.EnableNacks = true }
}

// WithAdaptiveRTO enables measured round-trip retransmission timeouts on
// the underlying GM firmware.
func WithAdaptiveRTO() Option {
	return func(n *gm.NIC, _ *Config) { n.Cfg.AdaptiveRTO = true }
}

// Install loads the multicast extension onto a GM NIC. The default
// configuration is DefaultConfig; options adjust it (and may flip
// firmware-level protocol switches on the NIC itself):
//
//	core.Install(nic, core.WithNacks(), core.WithAdaptiveRTO())
func Install(nic *gm.NIC, opts ...Option) *Ext {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(nic, &cfg)
	}
	return install(nic, cfg)
}

// InstallWithConfig loads the multicast extension with an explicit
// configuration.
//
// Deprecated: use Install with WithConfig.
func InstallWithConfig(nic *gm.NIC, cfg Config) *Ext {
	return install(nic, cfg)
}
