package core_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

const barrierGID gm.GroupID = 50

// barrierRig builds a cluster with a barrier group over all nodes on a
// dedicated port.
func barrierRig(t *testing.T, nodes int, mut func(*cluster.Config)) (*cluster.Cluster, []*gm.Port) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	if mut != nil {
		mut(cfg)
	}
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(9) // dedicated barrier port
	for _, n := range c.Nodes {
		n.Ext.InstallBarrier(barrierGID, c.Members(), 9, nil)
	}
	return c, ports
}

func TestNICBarrierSynchronizes(t *testing.T) {
	const nodes = 7
	c, ports := barrierRig(t, nodes, nil)
	entry := make([]sim.Time, nodes)
	exit := make([]sim.Time, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 40 * sim.Microsecond) // staggered arrival
			entry[i] = p.Now()
			c.Nodes[i].Ext.Barrier(p, ports[i], barrierGID)
			exit[i] = p.Now()
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	var lastEntry sim.Time
	for _, e := range entry {
		if e > lastEntry {
			lastEntry = e
		}
	}
	for i, x := range exit {
		if x < lastEntry {
			t.Fatalf("node %d left the barrier at %v before the last entry %v", i, x, lastEntry)
		}
	}
}

func TestNICBarrierRepeated(t *testing.T) {
	const nodes, rounds = 5, 8
	c, ports := barrierRig(t, nodes, nil)
	done := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(sim.Time((i*7+r*13)%50) * sim.Microsecond)
				c.Nodes[i].Ext.Barrier(p, ports[i], barrierGID)
				done[i]++
			}
		})
	}
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("barrier deadlocked with %d live procs", live)
	}
	c.Eng.Kill()
	for i, d := range done {
		if d != rounds {
			t.Fatalf("node %d completed %d barriers, want %d", i, d, rounds)
		}
	}
	if got := c.Nodes[0].Ext.Stats().BarriersDone; got != rounds {
		t.Fatalf("node 0 counted %d barrier completions, want %d", got, rounds)
	}
}

func TestNICBarrierUnderLoss(t *testing.T) {
	c, ports := barrierRig(t, 6, func(cfg *cluster.Config) {
		cfg.LossRate = 0.05
		cfg.Seed = 23
	})
	completed := 0
	for i := 0; i < 6; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			for r := 0; r < 4; r++ {
				c.Nodes[i].Ext.Barrier(p, ports[i], barrierGID)
				completed++
			}
		})
	}
	c.Eng.Run()
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("lossy barrier stalled with %d live procs", live)
	}
	c.Eng.Kill()
	if completed != 24 {
		t.Fatalf("completed %d barrier exits, want 24", completed)
	}
	retr := uint64(0)
	for _, n := range c.Nodes {
		retr += n.Ext.Stats().Retransmits
	}
	if retr == 0 {
		t.Fatal("5% loss produced no barrier retransmissions — reliability untested")
	}
}

func TestNICBarrierFasterThanHostDissemination(t *testing.T) {
	// The NIC barrier removes per-round host involvement; compare against
	// a host-level dissemination barrier over GM unicasts.
	const nodes = 8
	nic := func() sim.Time {
		c, ports := barrierRig(t, nodes, nil)
		var done sim.Time
		for i := 0; i < nodes; i++ {
			i := i
			c.Eng.Spawn("p", func(p *sim.Proc) {
				for r := 0; r < 10; r++ {
					c.Nodes[i].Ext.Barrier(p, ports[i], barrierGID)
				}
				if p.Now() > done {
					done = p.Now()
				}
			})
		}
		c.Eng.Run()
		c.Eng.Kill()
		return done
	}()
	host := func() sim.Time {
		cfg := cluster.DefaultConfig(nodes)
		c := cluster.NewFromConfig(cfg)
		ports := c.OpenPorts(9)
		var done sim.Time
		for i := 0; i < nodes; i++ {
			i := i
			c.Eng.Spawn("p", func(p *sim.Proc) {
				ports[i].ProvideN(10*4, 16)
				for r := 0; r < 10; r++ {
					for k := 1; k < nodes; k <<= 1 {
						dst := fabric.NodeID((i + k) % nodes)
						ports[i].Send(p, dst, 9, []byte{1})
						ports[i].Recv(p)
					}
				}
				if p.Now() > done {
					done = p.Now()
				}
			})
		}
		c.Eng.Run()
		c.Eng.Kill()
		return done
	}()
	if nic >= host {
		t.Fatalf("NIC barrier (%v) not faster than host dissemination (%v)", nic, host)
	}
}

func TestBarrierValidation(t *testing.T) {
	cfg := cluster.DefaultConfig(3)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(9)
	// Installing a barrier this node is not a member of panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-member install did not panic")
			}
		}()
		c.Nodes[0].Ext.InstallBarrier(60, []fabric.NodeID{1, 2}, 9, nil)
	}()
	// Barrier on an uninstalled group panics (inside the firmware event).
	c.Eng.Spawn("p", func(p *sim.Proc) {
		c.Nodes[0].Ext.Barrier(p, ports[0], 61)
	})
	defer func() {
		if recover() == nil {
			t.Error("uninstalled barrier did not panic")
		}
	}()
	c.Eng.Run()
}

func TestSingletonBarrier(t *testing.T) {
	c, ports := barrierRig(t, 1, nil)
	passed := false
	c.Eng.Spawn("p", func(p *sim.Proc) {
		c.Nodes[0].Ext.Barrier(p, ports[0], barrierGID)
		passed = true
	})
	c.Eng.Run()
	c.Eng.Kill()
	if !passed {
		t.Fatal("single-member barrier never opened")
	}
}
