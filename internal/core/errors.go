package core

import "errors"

// Sentinel errors for API misuse of the multicast extension. Misuse is
// fatal in the firmware model, so these surface as panics carrying error
// values: recover the value and test it with errors.Is.
var (
	// ErrNoExtension reports FromNIC on a NIC without the extension.
	ErrNoExtension = errors.New("core: NIC has no multicast extension")
	// ErrInvalidTree reports installing a group whose tree violates the
	// ID-sorted deadlock invariant.
	ErrInvalidTree = errors.New("core: invalid multicast tree")
	// ErrGroupInstalled reports installing a group (or barrier group)
	// that already has a table entry.
	ErrGroupInstalled = errors.New("core: group already installed")
	// ErrNoSuchGroup reports operating on a group this NIC has no table
	// entry for.
	ErrNoSuchGroup = errors.New("core: no such group")
	// ErrGroupBusy reports tearing down (or re-entering) a group with
	// outstanding work.
	ErrGroupBusy = errors.New("core: group has outstanding work")
	// ErrNotMember reports installing a barrier on a node outside the
	// group's membership.
	ErrNotMember = errors.New("core: node is not a group member")
	// ErrWrongNIC reports a collective call through a port that lives on
	// a different NIC than the extension.
	ErrWrongNIC = errors.New("core: port belongs to a different NIC")
	// ErrNotRoot reports a multicast send from a non-root member.
	ErrNotRoot = errors.New("core: multicast send from non-root")
	// ErrBadReduce reports a malformed reduction: unknown operator,
	// oversized vector, or operator/length mismatch across contributions.
	ErrBadReduce = errors.New("core: malformed reduction")
	// ErrEpochRegressed reports preparing a group epoch that does not
	// advance the entry's live epoch.
	ErrEpochRegressed = errors.New("core: group epoch did not advance")
	// ErrNotPrepared reports committing an epoch no prepare staged.
	ErrNotPrepared = errors.New("core: no prepared view for epoch")
	// ErrNoCollective reports a collective call on a NIC whose extension
	// has no collective engine wired (SetCollective).
	ErrNoCollective = errors.New("core: NIC has no collective engine")
)
