package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// mcastToken is the firmware descriptor for one outgoing multicast message
// at the root — the analogue of a GM send token, "queued by group".
type mcastToken struct {
	data    []byte
	msgID   uint64
	nextOff int
	pending int // packets with at least one unacknowledged child
	staged  bool
	onDone  func()
	// onEpoch, when non-nil, fires once with the group epoch the message
	// stages under. A token never straddles epochs: an epoch change freezes
	// the pump at message boundaries, so the first chunk's epoch is the
	// whole message's epoch.
	onEpoch func(epoch uint32)
	stamped bool
}

func (t *mcastToken) remaining() int { return len(t.data) - t.nextOff }

// mcastRecord is the send record for one multicast packet: one sequence
// number shared by every child, with the set of children that have not yet
// acknowledged it. Retransmission reads the payload from the host-memory
// replica (the frame keeps the registered host slice).
type mcastRecord struct {
	seq     uint32
	frame   *gm.Frame
	sentAt  sim.Time
	pending map[fabric.NodeID]bool
	tok     *mcastToken // non-nil at the root
	// release, when non-nil, frees the pinned NIC receive buffer on
	// retirement (RetransmitHoldBuffer ablation).
	release func()
}

// group is one NIC's group-table entry: this node's place in the preposted
// spanning tree plus the paper's per-group sequence state — "1) a receive
// sequence number ... 2) a send sequence number ... 3) an array of
// sequence numbers to record the acknowledged sequence number from each
// child".
type group struct {
	ext      *Ext
	id       gm.GroupID
	root     fabric.NodeID
	parent   fabric.NodeID
	children []fabric.NodeID
	port     gm.PortID // local port receiving this group's messages
	rootPort gm.PortID // port the root sends from (stable across hops)

	// Sender side (root, or forwarder toward its children).
	sendSeq uint32
	acked   map[fabric.NodeID]uint32
	records []*mcastRecord
	queue   []*mcastToken // root only: multicast send tokens by group
	staging int
	// timer is the reusable group retransmit timer (see conn.timer in gm).
	timer *sim.Timer

	// lastFast is when the last nack-triggered retransmission fired;
	// fastArmed distinguishes "never fired" from "fired at sim time 0"
	// (a bare zero-check would let a t=0 nack burst defeat the holdoff).
	lastFast  sim.Time
	fastArmed bool
	// backoff counts consecutive timeouts; the retransmit interval doubles
	// with each until the configured cap, resetting on ack progress.
	backoff int

	// Replica chains (one per packet) execute strictly in sequence at the
	// root: interleaving packet k+1's first replica ahead of packet k's
	// later replicas would starve the later children's subtrees of early
	// packets and defeat pipelined forwarding.
	chains      []func()
	chainActive bool

	// Receiver side.
	recvSeq uint32 // next expected from parent

	// Ack aggregation (Config.AggregateAcks). upAcked is the highest
	// cumulative value this node has sent its parent; a leaf additionally
	// coalesces its receipt floor — ackPending counts accepted packets not
	// yet acknowledged upward, and ackTimer bounds the hold (gm's
	// AckEvery/AckDelay). Interior nodes need no timer: their aggregate
	// advances only when child acks arrive, and is emitted right then.
	upAcked    uint32
	ackPending int
	ackTimer   *sim.Timer

	// sf gathers per-message packets in the store-and-forward ablation.
	sf map[uint64]*sfState

	// Dynamic membership (internal/member). epoch tags the active view;
	// data and acks carry it so frames from another epoch are rejected.
	// live is false for an entry staged by a joining node before its first
	// commit: the view exists (so a commit can activate it) but accepts no
	// traffic. next holds the prepared-but-uncommitted view; while it is
	// non-nil the root pump freezes at message boundaries so no message
	// straddles the epoch change. quiesceFns run when the entry's
	// outstanding send work has drained (see quiescedNow).
	epoch      uint32
	live       bool
	next       *pendingView
	quiesceFns []func()
}

func (g *group) isRoot() bool { return g.root == g.ext.nic.ID() }

// pendingView is a prepared-but-uncommitted group-table update: the next
// epoch's tree neighborhood (or, with a nil tree, the node's departure).
type pendingView struct {
	epoch    uint32
	remove   bool
	tr       *tree.Tree
	port     gm.PortID
	rootPort gm.PortID
}

// localView extracts this NIC's tree neighborhood from a full tree.
func localView(ext *Ext, id gm.GroupID, tr *tree.Tree, port, rootPort gm.PortID) *group {
	self := ext.nic.ID()
	g := &group{
		ext:      ext,
		id:       id,
		root:     tr.Root,
		children: append([]fabric.NodeID(nil), tr.Children(self)...),
		port:     port,
		rootPort: rootPort,
		sendSeq:  0,
		recvSeq:  1,
		live:     true,
		acked:    make(map[fabric.NodeID]uint32),
	}
	g.timer = ext.nic.Engine().NewTimer(g.onTimeout)
	if ext.cfg.AggregateAcks && ext.nic.Cfg.AckCoalescing() {
		g.ackTimer = ext.nic.Engine().NewTimer(func() { ext.flushAckUp(g) })
	}
	if p, ok := tr.Parent(self); ok {
		g.parent = p
	} else {
		g.parent = self
	}
	return g
}

// windowOpen mirrors the unicast window: outstanding multicast packets per
// group are bounded by the same configuration.
func (g *group) windowOpen() bool {
	return len(g.records)+g.staging < g.ext.nic.Cfg.Window
}

// enqueue admits a root send token and starts the pump.
func (g *group) enqueue(t *mcastToken) {
	if !g.isRoot() {
		panic("core: multicast send token enqueued at non-root")
	}
	g.queue = append(g.queue, t)
	g.pump()
}

// pump stages packets at the root: one SDMA per chunk, then a replica
// transmitted to each child through the header-rewrite callback chain.
// While an epoch change is prepared (g.next non-nil) the pump freezes at
// message boundaries: the message being staged finishes in its epoch, but
// no new message starts, so the commit can reset the sequence space
// without ever splitting one message across two epochs.
func (g *group) pump() {
	nic := g.ext.nic
	for len(g.queue) > 0 && g.windowOpen() {
		t := g.queue[0]
		if g.next != nil && t.nextOff == 0 {
			break // frozen for an epoch change; resume after commit
		}
		if !t.stamped {
			t.stamped = true
			if t.onEpoch != nil {
				t.onEpoch(g.epoch)
			}
		}
		chunk := t.remaining()
		if chunk > nic.Cfg.MTU {
			chunk = nic.Cfg.MTU
		}
		g.sendSeq++
		fr := &gm.Frame{
			Kind:    gm.KindMcastData,
			SrcNode: nic.ID(),
			SrcPort: g.rootPort,
			DstPort: g.port,
			Seq:     g.sendSeq,
			MsgID:   t.msgID,
			MsgLen:  len(t.data),
			Offset:  t.nextOff,
			Group:   g.id,
			Epoch:   g.epoch,
		}
		if chunk > 0 {
			fr.Payload = t.data[t.nextOff : t.nextOff+chunk]
		}
		t.nextOff += chunk
		t.pending++
		if t.remaining() == 0 {
			t.staged = true
			g.queue = g.queue[1:]
		}
		g.staging++
		g.stageRoot(fr, t)
	}
}

// stageRoot runs one packet through the root's multisend path. In the
// implemented ModeCallback, it acquires one send buffer, downloads the
// chunk from the host once (the SDMA of the next chunk overlaps the
// previous chunk's replica chain), then replicates in strict packet order.
// In the ModeTokens ablation, each destination gets its own firmware send
// token with its own buffer, DMA and per-token processing.
func (g *group) stageRoot(fr *gm.Frame, t *mcastToken) {
	if g.ext.cfg.Multisend == ModeTokens {
		g.stageRootTokens(fr, t)
		return
	}
	nic := g.ext.nic
	nic.HW.SendBufs.Acquire(func(buf bufToken) {
		nic.HW.HostToNIC(len(fr.Payload), func() {
			nic.HW.CPUDo(nic.Cfg.TxSetupCost, func() {
				g.enqueueChain(func() {
					g.replicate(fr, buf, func() {
						g.staging--
						g.recordSent(fr, t)
						g.nextChain()
						g.pump()
					})
				})
			})
		})
	})
}

// stageRootTokens implements design alternative 1: one send token per
// destination, each repeating the token processing and host DMA. It saves
// only the posting of multiple host send events relative to host-based
// multiple unicasts.
func (g *group) stageRootTokens(fr *gm.Frame, t *mcastToken) {
	nic := g.ext.nic
	remaining := len(g.children)
	g.ext.m.fanout.Observe(int64(remaining))
	if remaining == 0 {
		g.staging--
		g.recordSent(fr, t)
		g.pump()
		return
	}
	for _, c := range g.children {
		child := c
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() { // per-token processing
			nic.HW.SendBufs.Acquire(func(buf bufToken) {
				nic.HW.HostToNIC(len(fr.Payload), func() {
					nic.HW.CPUDo(nic.Cfg.TxSetupCost, func() {
						replica := fr.Clone()
						replica.SrcNode = nic.ID()
						replica.DstNode = child
						nic.Inject(replica, func() {
							buf.Release()
							g.ext.m.mcastSent.Inc()
							remaining--
							if remaining == 0 {
								g.staging--
								g.recordSent(fr, t)
								g.pump()
							}
						})
					})
				})
			})
		})
	}
}

// enqueueChain runs fn now if no replica chain is active, else queues it.
// Chains enqueue in packet order (the SDMA and CPU stages are FIFO), so
// packets replicate to the children strictly in sequence.
func (g *group) enqueueChain(fn func()) {
	if g.chainActive {
		g.chains = append(g.chains, fn)
		return
	}
	g.chainActive = true
	fn()
}

// nextChain starts the next queued replica chain, if any.
func (g *group) nextChain() {
	if len(g.chains) == 0 {
		g.chainActive = false
		return
	}
	fn := g.chains[0]
	g.chains = g.chains[1:]
	fn()
}

// replicate transmits fr to every child in tree order from a single NIC
// buffer: when the transmit engine finishes one replica, the callback
// handler rewrites the header (HeaderRewriteCost) and requeues the buffer
// for the next destination. The buffer is released after the last replica,
// then done runs.
func (g *group) replicate(fr *gm.Frame, buf bufToken, done func()) {
	nic := g.ext.nic
	children := g.children
	g.ext.m.fanout.Observe(int64(len(children)))
	if len(children) == 0 {
		buf.Release()
		done()
		return
	}
	var sendTo func(i int)
	sendTo = func(i int) {
		replica := fr.Clone()
		replica.SrcNode = nic.ID()
		replica.DstNode = children[i]
		nic.Inject(replica, func() {
			g.ext.m.mcastSent.Inc()
			if i+1 == len(children) {
				buf.Release()
				done()
				return
			}
			g.ext.m.headerRewrites.Inc()
			nic.HW.CPUDo(g.ext.cfg.HeaderRewriteCost, func() { sendTo(i + 1) })
		})
	}
	sendTo(0)
}

// recordSent files the send record covering all children and arms the
// group's retransmit timer.
func (g *group) recordSent(fr *gm.Frame, t *mcastToken) {
	r := &mcastRecord{
		seq: fr.Seq, frame: fr, sentAt: g.ext.nic.Engine().Now(),
		pending: g.pendingChildren(fr.Seq), tok: t,
	}
	if len(r.pending) == 0 {
		// No children (degenerate group), or every child acked before the
		// transmit callback ran: complete immediately.
		g.retire(r)
		g.checkQuiesce()
		return
	}
	g.records = append(g.records, r)
	g.armTimer()
}

// pendingChildren builds the unacknowledged-children set for a new record,
// honoring acknowledgments that raced ahead of the transmit callback.
func (g *group) pendingChildren(seq uint32) map[fabric.NodeID]bool {
	pending := make(map[fabric.NodeID]bool, len(g.children))
	for _, c := range g.children {
		if gm.SeqBefore(g.acked[c], seq) {
			pending[c] = true
		}
	}
	return pending
}

// ackBound reports the highest sequence number this node's entire subtree
// is known to have delivered: the node's own receipt floor serial-min'd
// with every child's cumulative acknowledgment. This is the value an
// aggregating node forwards upward (Config.AggregateAcks).
func (g *group) ackBound() uint32 {
	bound := g.recvSeq - 1
	for _, c := range g.children {
		if a := g.acked[c]; gm.SeqBefore(a, bound) {
			bound = a
		}
	}
	return bound
}

// handleAck processes a cumulative group acknowledgment from one child.
// Sequence comparisons use serial-number arithmetic so long-lived groups
// survive the uint32 wrap.
func (g *group) handleAck(child fabric.NodeID, ack uint32) {
	if prev := g.acked[child]; gm.SeqAfter(ack, prev) {
		g.acked[child] = ack
	}
	for _, r := range g.records {
		if gm.SeqLEQ(r.seq, ack) {
			delete(r.pending, child)
		}
	}
	// Cumulative acks make fully-acknowledged records a prefix, but retire
	// by predicate anyway; order among survivors is preserved.
	now := g.ext.nic.Engine().Now()
	out := g.records[:0]
	retired := false
	for _, r := range g.records {
		if len(r.pending) == 0 {
			g.ext.m.ackLatencyNs.Observe(int64(now - r.sentAt))
			g.retire(r)
			retired = true
			continue
		}
		out = append(out, r)
	}
	g.records = out
	if retired {
		g.backoff = 0 // forward progress resets the backoff
	}
	g.armTimer()
	if g.isRoot() {
		g.pump()
	}
	g.checkQuiesce()
}

// retire completes a record; at the root this may finish the send token,
// and in the hold-buffer ablation it frees the pinned receive buffer.
func (g *group) retire(r *mcastRecord) {
	if r.release != nil {
		r.release()
		r.release = nil
	}
	if r.tok == nil {
		return
	}
	r.tok.pending--
	if r.tok.staged && r.tok.pending == 0 && r.tok.onDone != nil {
		r.tok.onDone()
	}
}

// armTimer mirrors the unicast connection timer (including exponential
// backoff) over group records.
func (g *group) armTimer() {
	eng := g.ext.nic.Engine()
	if len(g.records) == 0 {
		g.timer.Stop()
		g.backoff = 0
		return
	}
	capf := g.ext.nic.Cfg.BackoffCap
	if capf <= 0 {
		capf = 64
	}
	mult := 1 << min(g.backoff, 30)
	if mult > capf {
		mult = capf
	}
	rto := g.ext.nic.Cfg.RetransmitTimeout
	if g.ext.cfg.AggregateAcks && g.ext.nic.Cfg.AckCoalescing() {
		// A coalescing leaf may lawfully sit on its aggregate ack for the
		// full delay; a timer that does not budget for it retransmits
		// spuriously into a healthy tree.
		rto += g.ext.nic.Cfg.EffectiveAckDelay()
	}
	deadline := g.records[0].sentAt + rto*sim.Time(mult)
	if deadline < eng.Now() {
		deadline = eng.Now()
	}
	g.timer.Reset(deadline)
}

// onTimeout retransmits, per child, every outstanding packet that child
// has not acknowledged — "the retransmission of the packet and the
// following ones will be performed only for the destinations which have
// not acknowledged". Data comes back over SDMA from the host replica; the
// NIC receive buffer was released long ago.
func (g *group) onTimeout() {
	if len(g.records) == 0 {
		return
	}
	g.backoff++
	nic := g.ext.nic
	g.ext.m.timeouts.Inc()
	now := nic.Engine().Now()
	for _, r := range g.records {
		r.sentAt = now
		for _, c := range g.children {
			if !r.pending[c] {
				continue
			}
			child := c
			fr := r.frame
			g.ext.m.retransmits.Inc()
			if nic.Trace.Enabled() {
				nic.Trace.Log(nic.Engine().Now(), nic.ID(), trace.Retrans,
					"grp=%d seq=%d to unacked child %v", g.id, fr.Seq, child)
			}
			nic.HW.CPUDo(nic.Cfg.RetransmitCost, func() {
				nic.HW.SendBufs.Acquire(func(buf bufToken) {
					nic.HW.HostToNIC(len(fr.Payload), func() {
						replica := fr.Clone()
						replica.SrcNode = nic.ID()
						replica.DstNode = child
						nic.Inject(replica, func() {
							buf.Release()
							g.ext.m.mcastSent.Inc()
						})
					})
				})
			})
		}
	}
	g.armTimer()
}

// fastRetransmit performs an immediate per-child go-back in response to a
// group nack, at most once per holdoff.
func (g *group) fastRetransmit() {
	now := g.ext.nic.Engine().Now()
	if len(g.records) == 0 {
		return
	}
	if g.fastArmed && now-g.lastFast < g.ext.nic.Cfg.NackHoldoff {
		return
	}
	g.fastArmed = true
	g.lastFast = now
	g.onTimeout()
}

// quiescedNow reports whether the entry's outstanding send-side work has
// drained: no unretired send records, no packets staging or mid-replica-
// chain. Queued root send tokens only block quiescence when no epoch
// change is prepared — a frozen pump holds whole messages back for the
// next epoch, so they are not old-epoch work.
func (g *group) quiescedNow() bool {
	return len(g.records) == 0 && g.staging == 0 &&
		(g.next != nil || len(g.queue) == 0)
}

// onQuiesce runs fn as soon as the entry is quiesced — immediately when it
// already is. Firmware-context counterpart of Ext.QuiesceGroup.
func (g *group) onQuiesce(fn func()) {
	if g.quiescedNow() {
		fn()
		return
	}
	g.quiesceFns = append(g.quiesceFns, fn)
}

// checkQuiesce fires registered quiesce callbacks once the entry drains.
// Called wherever records retire or staging completes.
func (g *group) checkQuiesce() {
	if len(g.quiesceFns) == 0 || !g.quiescedNow() {
		return
	}
	fns := g.quiesceFns
	g.quiesceFns = nil
	for _, fn := range fns {
		fn()
	}
}

// activate installs a prepared view as the entry's live state: the next
// epoch's tree neighborhood, with the per-epoch sequence space reset. The
// entry must be drained (CommitGroupEpoch checks).
func (g *group) activate(v *pendingView) {
	self := g.ext.nic.ID()
	g.root = v.tr.Root
	g.children = append(g.children[:0], v.tr.Children(self)...)
	if p, ok := v.tr.Parent(self); ok {
		g.parent = p
	} else {
		g.parent = self
	}
	g.port, g.rootPort = v.port, v.rootPort
	g.epoch = v.epoch
	g.live = true
	g.sendSeq, g.recvSeq = 0, 1
	g.acked = make(map[fabric.NodeID]uint32)
	g.backoff = 0
	g.fastArmed = false
	g.lastFast = 0
	// The aggregate floor belongs to the old epoch's sequence space; the
	// coordinator's quiesce phase guarantees nothing is pending here.
	g.upAcked = 0
	g.ackPending = 0
	if g.ackTimer != nil {
		g.ackTimer.Stop()
	}
	g.next = nil
}

func (g *group) String() string {
	return fmt.Sprintf("group %d @%v root=%v parent=%v children=%v",
		g.id, g.ext.nic.ID(), g.root, g.parent, g.children)
}
