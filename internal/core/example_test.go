package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// The complete NIC-based multicast workflow: build a cluster, prepost a
// spanning tree into the NIC group tables, have destinations provide
// receive tokens, and multicast from the root with one host request.
func Example() {
	cfg := cluster.DefaultConfig(4)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(1)

	// The host constructs the tree (here binomial) and preposts it.
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(7, tr, 1, 1)

	for n := 1; n < 4; n++ {
		n := n
		c.Eng.Spawn("member", func(p *sim.Proc) {
			ports[n].Provide(64) // receive token, as for any GM message
			ev := ports[n].Recv(p)
			fmt.Printf("node %d received %q\n", n, ev.Data)
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], gm.GroupID(7), []byte("hello"))
	})
	c.Eng.Run()
	c.Eng.Kill()
	// Binomial send order is farthest-subtree-first, so node 2 hears before
	// node 1, and node 3 receives via node 2's NIC-based forward.
	//
	// Output:
	// node 2 received "hello"
	// node 1 received "hello"
	// node 3 received "hello"
}
