// Package core implements the paper's contribution: a high performance and
// reliable NIC-based multicast for GM-2, consisting of
//
//   - a NIC-based multisend mechanism — one host request makes the NIC
//     transmit replicas of each packet to a list of destinations, rewriting
//     the header in a transmit-completion callback (GM-2's packet
//     descriptor callbacks) instead of reprocessing a host request per
//     destination;
//
//   - a NIC-based forwarding mechanism — an intermediate NIC looks the
//     arriving packet's group up in its preposted group table and requeues
//     it to its children straight out of the receive buffer, without host
//     involvement and without waiting for the rest of the message
//     (per-packet pipelining);
//
//   - group-based reliability — per group the NIC tracks a receive
//     sequence number, a send sequence number and an array of acknowledged
//     sequence numbers per child; timeouts retransmit only to children
//     that have not acknowledged, reading the data back from the message
//     replica in registered host memory so NIC receive buffers are
//     released as soon as forwarding completes;
//
//   - deadlock avoidance without credit-based flow control — spanning
//     trees are built over destinations sorted by network ID (package
//     tree) so receive-token dependencies cannot form a cycle.
//
// The package installs itself into package gm as a firmware Extension,
// leaving the unicast protocol untouched.
package core

import "repro/internal/sim"

// MultisendMode selects how the root transmits message replicas — the
// design alternatives of Section 5, "Sending of Multiple Message Replicas".
type MultisendMode int

const (
	// ModeCallback is the implemented choice: one send token; after each
	// transmission the packet-descriptor callback rewrites the header and
	// requeues the same NIC buffer for the next destination.
	ModeCallback MultisendMode = iota
	// ModeTokens is design alternative 1: the NIC generates one send token
	// per destination from the single host request. Each replica repeats
	// the per-token processing and its own host DMA; the paper argues this
	// "saves nothing more than the posting of multiple send events".
	ModeTokens
)

// ForwardMode selects how an intermediate NIC forwards — the pipelining
// ablation.
type ForwardMode int

const (
	// ForwardPerPacket forwards each packet as it arrives (the paper's
	// scheme: "an intermediate NIC can forward the packets of a message
	// without waiting for the arrival of the complete message").
	ForwardPerPacket ForwardMode = iota
	// ForwardStoreAndForward holds packets until the whole message has
	// arrived, the behaviour the host-based scheme is stuck with.
	ForwardStoreAndForward
)

// RetransmitSource selects where retransmitted data comes from — Section
// 5's "which replica of the message should be made available".
type RetransmitSource int

const (
	// RetransmitFromHost releases the NIC receive buffer as soon as
	// forwarding completes and re-reads retransmissions from the message
	// replica in registered host memory (the implemented choice).
	RetransmitFromHost RetransmitSource = iota
	// RetransmitHoldBuffer is the naive alternative: keep the NIC receive
	// buffer until every child acknowledges. "Holding on to one or more
	// receive buffers will slow down the receiver or even block the
	// network."
	RetransmitHoldBuffer
)

// Config holds the multicast firmware costs, charged on the LANai CPU.
type Config struct {
	// Multisend, Forward and Retransmit select among the design
	// alternatives of Section 5; the defaults are the paper's choices and
	// the alternatives exist for the ablation benchmarks.
	Multisend  MultisendMode
	Forward    ForwardMode
	Retransmit RetransmitSource

	// HeaderRewriteCost is the callback-handler cost of changing a packet
	// header and requeueing the same NIC buffer for the next destination —
	// the "small overhead ... represented with the wide bars" in Figure 2b.
	HeaderRewriteCost sim.Time
	// ForwardSetupCost is the cost, at an intermediate NIC, of looking up
	// the group table and transforming the receive token into a send token
	// for the first child.
	ForwardSetupCost sim.Time
	// GroupInstallCost is the cost of inserting one group's membership and
	// tree information into the NIC group table.
	GroupInstallCost sim.Time
	// ReduceElemCost is the LANai's per-element combining cost for
	// NIC-based reduction — the slow-NIC-processor trade-off the
	// companion reduction paper weighs.
	ReduceElemCost sim.Time

	// AggregateAcks turns on NIC tree ack aggregation: an interior NIC
	// absorbs its children's cumulative acks and forwards one aggregate —
	// the serial-min floor its whole subtree has delivered — upward only
	// when that floor advances, while leaves coalesce their receipt floor
	// under gm's AckEvery/AckDelay bounds. The root then sees O(fanout)
	// ack events per window instead of O(N), and a record retiring at the
	// root proves the entire subtree delivered. Off by default (per-packet
	// hop-by-hop acks, the timeline-pinned behavior).
	AggregateAcks bool
}

// DefaultConfig returns costs calibrated alongside gm.DefaultConfig.
func DefaultConfig() Config {
	return Config{
		HeaderRewriteCost: sim.Micros(0.55),
		ForwardSetupCost:  sim.Micros(3.0),
		GroupInstallCost:  sim.Micros(1.5),
		ReduceElemCost:    sim.Micros(0.08),
	}
}

// Stats count multicast-specific incidents on one NIC.
type Stats struct {
	McastSent      uint64 // multicast data packets transmitted (replicas counted)
	McastReceived  uint64 // multicast data packets accepted in sequence
	McastForwarded uint64 // packets requeued to children without host involvement
	McastAcksSent  uint64
	McastAcksRecv  uint64
	// McastAcksSuppressed counts leaf per-packet acks held back by
	// coalescing; McastAcksAggregated counts interior per-packet acks
	// absorbed into subtree aggregates (Config.AggregateAcks).
	McastAcksSuppressed uint64
	McastAcksAggregated uint64
	Retransmits         uint64 // per destination per packet
	Duplicates          uint64
	OutOfOrderDrops     uint64
	NoTokenDrops        uint64
	NotMemberDrops      uint64 // packets for groups this NIC has no entry for
	McastNacksSent      uint64
	McastNacksRecv      uint64
	StaleEpochDrops     uint64 // data frames from an epoch the entry moved past
	FutureEpochDrops    uint64 // data frames ahead of this NIC's commit
	StaleEpochAcks      uint64 // acks/nacks ignored for carrying another epoch
	AckedAsDropped      uint64 // stale frames refused but acknowledged
	EpochCommits        uint64 // epoch activations applied to the group table
	BarrierSent         uint64 // NIC-level barrier round messages transmitted
	BarriersDone        uint64 // barrier instances completed at this NIC
	ReduceSent          uint64 // combined reduction vectors sent up the tree
	ReduceCombines      uint64 // per-contribution combining steps performed
}
