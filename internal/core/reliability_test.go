package core

// Internal regression tests for the group recovery path: the nack-holdoff
// fix at t=0 and group sequence-number wraparound under loss. These build
// the stack by hand (core cannot import cluster) so they can reach into
// group state.

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/lanai"
	"repro/internal/sim"
	"repro/internal/tree"
)

type coreRig struct {
	eng   *sim.Engine
	net   *fabric.Network
	exts  []*Ext
	ports []*gm.Port
}

func newCoreRig(t *testing.T, nodes int, mut func(*gm.Config)) *coreRig {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, nodes, fabric.DefaultLinkParams())
	gcfg := gm.DefaultConfig()
	if mut != nil {
		mut(&gcfg)
	}
	r := &coreRig{eng: eng, net: net}
	for i := 0; i < nodes; i++ {
		hw := lanai.New(eng, net.Iface(fabric.NodeID(i)), lanai.DefaultParams())
		nic := gm.NewNIC(hw, gcfg)
		r.exts = append(r.exts, InstallWithConfig(nic, DefaultConfig()))
		r.ports = append(r.ports, nic.OpenPort(1))
	}
	return r
}

// installGroup preposts the tree on every member and drains the install
// events.
func (r *coreRig) installGroup(t *testing.T, tr *tree.Tree) {
	t.Helper()
	done := 0
	for _, n := range tr.Nodes() {
		r.exts[n].InstallGroup(1, tr, 1, 1, func() { done++ })
	}
	r.eng.Run()
	if done != tr.Size() {
		t.Fatalf("group installed on %d of %d members", done, tr.Size())
	}
}

// TestGroupFastRetransmitHoldoffAtTimeZero is the group-table counterpart
// of the unicast holdoff fix: a multicast nack burst at simulation time
// zero must trigger exactly one per-child go-back round, not one per nack.
func TestGroupFastRetransmitHoldoffAtTimeZero(t *testing.T) {
	r := newCoreRig(t, 2, nil)
	tr := tree.Flat(0, []fabric.NodeID{0, 1})
	g := localView(r.exts[0], 1, tr, 1, 1)
	g.records = append(g.records, &mcastRecord{
		seq: 1,
		frame: &gm.Frame{
			Kind: gm.KindMcastData, SrcNode: 0, SrcPort: 1, DstPort: 99,
			Seq: 1, Group: 1,
		},
		pending: map[fabric.NodeID]bool{1: true},
	})
	if now := r.eng.Now(); now != 0 {
		t.Fatalf("test requires virtual time 0, engine at %v", now)
	}
	g.fastRetransmit()
	g.fastRetransmit() // second nack of the burst, same instant
	if got := r.exts[0].m.timeouts.Value(); got != 1 {
		t.Fatalf("t=0 group nack burst triggered %d go-back rounds, want 1 (holdoff ignored at time zero)", got)
	}
}

// TestGroupSequenceWraparoundUnderLoss streams a multicast past the uint32
// sequence wrap down a 2-ary tree with deterministic loss. Raw ordered
// comparisons would strand the forwarders (post-wrap packets look "old"
// and cumulative acks look "behind"); serial-number arithmetic must
// deliver every message to every receiver and retire every record.
func TestGroupSequenceWraparoundUnderLoss(t *testing.T) {
	const nodes = 4
	r := newCoreRig(t, nodes, nil)
	members := make([]fabric.NodeID, nodes)
	for i := range members {
		members[i] = fabric.NodeID(i)
	}
	tr := tree.KAry(0, members, 2) // node 1 is an interior forwarder
	r.installGroup(t, tr)

	const start = uint32(0xFFFFFFFB) // five packets before the wrap
	for _, e := range r.exts {
		g := e.groups[1]
		if g == nil {
			t.Fatal("group not installed")
		}
		g.sendSeq = start - 1 // pump pre-increments: first packet gets start
		g.recvSeq = start
		for _, c := range g.children {
			g.acked[c] = start - 1
		}
	}

	traversals := 0
	r.net.DropFn = func(p *fabric.Packet, _ *fabric.Link) bool {
		if fr, ok := p.Payload.(*gm.Frame); ok && fr.Kind == gm.KindMcastData {
			traversals++
			return traversals%6 == 0 // deterministic loss straddling the wrap
		}
		return false
	}

	const msgs = 4
	msg := make([]byte, 3*4096) // three packets each: 12 packets, wrapping
	for i := range msg {
		msg[i] = byte(i*13 + 5)
	}
	recvd := make([]int, nodes)
	for n := 1; n < nodes; n++ {
		n := n
		r.eng.Spawn("recv", func(p *sim.Proc) {
			r.ports[n].ProvideN(msgs, len(msg))
			for i := 0; i < msgs; i++ {
				ev := r.ports[n].Recv(p)
				if !bytes.Equal(ev.Data, msg) {
					t.Errorf("node %d: message %d corrupted across the wrap", n, i)
				}
				recvd[n]++
			}
		})
	}
	r.eng.Spawn("root", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			r.exts[0].Mcast(p, r.ports[0], 1, msg)
		}
		for i := 0; i < msgs; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	// Bounded run: the pre-fix comparison bug retransmits forever rather
	// than failing, so Run() would hang the suite.
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	live := r.eng.LiveProcs()
	r.eng.Kill()
	if live != 0 {
		t.Fatalf("%d processes still blocked after 1s — multicast deadlocked at the wrap", live)
	}
	for n := 1; n < nodes; n++ {
		if recvd[n] != msgs {
			t.Fatalf("node %d received %d of %d messages", n, recvd[n], msgs)
		}
	}
	for i, e := range r.exts {
		if out := e.OutstandingRecords(); out != 0 {
			t.Fatalf("node %d leaked %d multicast records across the wrap", i, out)
		}
		g := e.groups[1]
		if i > 0 && gm.SeqAfter(start, g.recvSeq) {
			t.Fatalf("node %d never crossed the wrap: recvSeq=%d", i, g.recvSeq)
		}
	}
}
