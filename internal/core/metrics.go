package core

import "repro/internal/metrics"

// Component is the metrics component name for the multicast extension.
const Component = "core"

// instruments are the multicast counters and distributions for one NIC,
// cached so the forwarding hot path does no registry lookups. With a
// disabled registry every field is nil and updates are no-ops; when no
// registry is wired at all, Install falls back to a private enabled
// registry so the legacy Stats accessor still counts.
type instruments struct {
	mcastSent        *metrics.Counter
	mcastReceived    *metrics.Counter
	mcastForwarded   *metrics.Counter
	acksSent         *metrics.Counter
	acksRecv         *metrics.Counter
	acksSuppressed   *metrics.Counter
	acksAggregated   *metrics.Counter
	retransmits      *metrics.Counter
	timeouts         *metrics.Counter
	duplicates       *metrics.Counter
	oooDrops         *metrics.Counter
	noTokenDrops     *metrics.Counter
	notMemberDrops   *metrics.Counter
	nacksSent        *metrics.Counter
	nacksRecv        *metrics.Counter
	staleEpochDrops  *metrics.Counter
	futureEpochDrops *metrics.Counter
	staleEpochAcks   *metrics.Counter
	ackedAsDropped   *metrics.Counter
	epochCommits     *metrics.Counter
	quiesceReqs      *metrics.Counter

	// headerRewrites counts transmit-callback header rewrites (the
	// multisend mechanism's defining per-replica cost); fwdBeforeFull
	// counts packets forwarded to children before their message had fully
	// arrived (per-packet pipelining at work); fanout observes the child
	// count of each replicated packet; ackLatencyNs observes, per retired
	// send record, the delay from (re)transmission to the ack that
	// cleared its last pending child.
	headerRewrites *metrics.Counter
	fwdBeforeFull  *metrics.Counter
	fanout         *metrics.Histogram
	ackLatencyNs   *metrics.Histogram
}

func (e *Ext) initMetrics(reg *metrics.Registry) {
	id := int(e.nic.ID())
	e.m = instruments{
		mcastSent:        reg.Counter(Component, id, "mcast_sent"),
		mcastReceived:    reg.Counter(Component, id, "mcast_received"),
		mcastForwarded:   reg.Counter(Component, id, "mcast_forwarded"),
		acksSent:         reg.Counter(Component, id, "mcast_acks_sent"),
		acksRecv:         reg.Counter(Component, id, "mcast_acks_received"),
		acksSuppressed:   reg.Counter(Component, id, "mcast_acks_suppressed"),
		acksAggregated:   reg.Counter(Component, id, "mcast_acks_aggregated"),
		retransmits:      reg.Counter(Component, id, "retransmits"),
		timeouts:         reg.Counter(Component, id, "timeouts"),
		duplicates:       reg.Counter(Component, id, "duplicates"),
		oooDrops:         reg.Counter(Component, id, "out_of_order_drops"),
		noTokenDrops:     reg.Counter(Component, id, "no_token_drops"),
		notMemberDrops:   reg.Counter(Component, id, "not_member_drops"),
		nacksSent:        reg.Counter(Component, id, "mcast_nacks_sent"),
		nacksRecv:        reg.Counter(Component, id, "mcast_nacks_received"),
		staleEpochDrops:  reg.Counter(Component, id, "stale_epoch_drops"),
		futureEpochDrops: reg.Counter(Component, id, "future_epoch_drops"),
		staleEpochAcks:   reg.Counter(Component, id, "stale_epoch_acks"),
		ackedAsDropped:   reg.Counter(Component, id, "acked_as_dropped"),
		epochCommits:     reg.Counter(Component, id, "epoch_commits"),
		quiesceReqs:      reg.Counter(Component, id, "quiesce_requests"),
		headerRewrites:   reg.Counter(Component, id, "header_rewrites"),
		fwdBeforeFull:    reg.Counter(Component, id, "forwards_before_full"),
		fanout:           reg.Histogram(Component, id, "fanout"),
		ackLatencyNs:     reg.Histogram(Component, id, "ack_latency_ns"),
	}
}

// Stats returns a snapshot of multicast counters, merged with the
// collective engine's counters when one is wired (the collective fields —
// BarrierSent, BarriersDone, ReduceSent, ReduceCombines — lived here
// before internal/coll subsumed those paths, and Retransmits, Duplicates
// and NotMemberDrops each cover both subsystems).
//
// Deprecated: the counters now live in the metrics registry (components
// "core" and "coll"); read them through a Snapshot. This accessor remains
// for callers that predate the registry.
func (e *Ext) Stats() Stats {
	var cs CollStats
	if e.coll != nil {
		cs = e.coll.CollStats()
	}
	return Stats{
		McastSent:           e.m.mcastSent.Value(),
		McastReceived:       e.m.mcastReceived.Value(),
		McastForwarded:      e.m.mcastForwarded.Value(),
		McastAcksSent:       e.m.acksSent.Value(),
		McastAcksRecv:       e.m.acksRecv.Value(),
		McastAcksSuppressed: e.m.acksSuppressed.Value(),
		McastAcksAggregated: e.m.acksAggregated.Value(),
		Retransmits:         e.m.retransmits.Value() + cs.Retransmits,
		Duplicates:          e.m.duplicates.Value() + cs.Duplicates,
		OutOfOrderDrops:     e.m.oooDrops.Value(),
		NoTokenDrops:        e.m.noTokenDrops.Value(),
		NotMemberDrops:      e.m.notMemberDrops.Value() + cs.NotMemberDrops,
		McastNacksSent:      e.m.nacksSent.Value(),
		McastNacksRecv:      e.m.nacksRecv.Value(),
		StaleEpochDrops:     e.m.staleEpochDrops.Value(),
		FutureEpochDrops:    e.m.futureEpochDrops.Value(),
		StaleEpochAcks:      e.m.staleEpochAcks.Value(),
		AckedAsDropped:      e.m.ackedAsDropped.Value(),
		EpochCommits:        e.m.epochCommits.Value(),
		BarrierSent:         cs.BarrierSent,
		BarriersDone:        cs.BarriersDone,
		ReduceSent:          cs.ReduceSent,
		ReduceCombines:      cs.ReduceCombines,
	}
}
