package cluster_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/benchkernel"
	"repro/internal/cluster"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// goldenRun drives the capture workload the pinned hashes below were
// recorded with — a traced, optionally lossy multicast stream over a
// binomial group — and digests the full packet timeline plus the final
// clock and event count into one comparable string.
func goldenRun(t *testing.T, nodes int, seed int64, loss float64, msgs int, extra ...cluster.Option) string {
	t.Helper()
	tr := trace.NewRecorder()
	opts := append([]cluster.Option{
		cluster.WithTrace(tr),
		cluster.WithSeed(seed),
		cluster.WithLossRate(loss),
	}, extra...)
	c := cluster.New(nodes, opts...)
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Binomial(0, c.Members()), 1, 1)
	c.Eng.Spawn("root", func(p *sim.Proc) {
		for !ready() {
			p.Sleep(sim.Micros(1))
		}
		ext := c.Nodes[0].Ext
		for i := 0; i < msgs; i++ {
			ext.McastSync(p, ports[0], 7, make([]byte, 2000))
		}
	})
	for i := 1; i < nodes; i++ {
		port := ports[i]
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			port.ProvideN(msgs+3, 1<<12)
			for got := 0; got < msgs; got++ {
				port.Recv(p)
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	if tr.Len() == 0 {
		t.Fatal("capture workload recorded no trace events")
	}
	var buf bytes.Buffer
	tr.WriteTimeline(&buf)
	return fmt.Sprintf("%x t=%d ev=%d", sha256.Sum256(buf.Bytes()), c.Eng.Now(), c.Eng.EventsFired())
}

// Timelines captured on main immediately before the fabric extraction, by
// running goldenRun's exact workload against the monolithic myrinet
// package. They pin the refactor's central promise: moving the transit
// engine, partitioner, and topology builders behind the fabric interface
// changed no Myrinet behavior, to the byte.
const (
	golden8  = "a752ca158a2cc6545a80cd18e33e7a361235199328b457dc2c2b8883af991818 t=1243188 ev=549"
	golden16 = "45b49d6dcb5ae84d34ae0436ceaaa1eeeff84cc3e1c7aba274c8fd3baa8e38d2 t=215328 ev=910"
)

func TestMyrinetTimelineGoldens(t *testing.T) {
	if got := goldenRun(t, 8, 7, 0.02, 5); got != golden8 {
		t.Errorf("8-node lossy timeline diverged from pre-refactor capture:\n got %s\nwant %s", got, golden8)
	}
	if got := goldenRun(t, 16, 3, 0, 4); got != golden16 {
		t.Errorf("16-node clean timeline diverged from pre-refactor capture:\n got %s\nwant %s", got, golden16)
	}
}

// TestWithFabricShimEquivalence proves the new fabric-selection API is a
// pure re-spelling of the legacy defaults: explicitly passing the Myrinet
// preset reproduces the pinned timelines bit-for-bit, and a link-parameter
// override lands identically whether it travels through the preset's Links
// field or the deprecated Config.Link knob.
func TestWithFabricShimEquivalence(t *testing.T) {
	if got := goldenRun(t, 8, 7, 0.02, 5, cluster.WithFabric(myrinet.Default())); got != golden8 {
		t.Errorf("WithFabric(myrinet.Default()) diverged from the default build:\n got %s\nwant %s", got, golden8)
	}

	slow := myrinet.DefaultLinkParams()
	slow.Latency *= 3
	slow.NsPerByte *= 2
	fc := myrinet.Default()
	fc.Links = slow
	viaPreset := goldenRun(t, 8, 7, 0.02, 5, cluster.WithFabric(fc))
	viaLegacyKnob := goldenRun(t, 8, 7, 0.02, 5,
		cluster.WithMutate(func(cfg *cluster.Config) { cfg.Link = slow }))
	if viaPreset != viaLegacyKnob {
		t.Errorf("link override differs by spelling:\n preset %s\n legacy %s", viaPreset, viaLegacyKnob)
	}
	if viaPreset == golden8 {
		t.Error("tripled link latency left the timeline unchanged; override never applied")
	}
}

// TestMulticastStormClockGoldens pins the storm kernel's final virtual
// clocks across the auto-topology tiers (single crossbar, Clos, fat tree)
// to the values captured before the refactor.
func TestMulticastStormClockGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("storm goldens are slow")
	}
	want := map[int]sim.Time{16: 166954, 64: 220606, 256: 274858}
	for _, n := range []int{16, 64, 256} {
		if got := benchkernel.MulticastStormOnce(n, 1, 6, 700); got != want[n] {
			t.Errorf("%d-node storm finished at %d, pre-refactor capture %d", n, got, want[n])
		}
	}
}
