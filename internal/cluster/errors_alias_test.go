package cluster_test

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

// TestSentinelAliases pins the error-consolidation contract: every
// fabric-generic sentinel lives in the fabric package, and the deprecated
// re-exports in myrinet, cluster, and chaos are aliases of the same values
// — so errors.Is matches across package spellings, old callers keep
// compiling, and wrapped errors unwrap to either name.
func TestSentinelAliases(t *testing.T) {
	pairs := []struct {
		name       string
		old, canon error
	}{
		{"myrinet.ErrLossRateWithoutRNG", myrinet.ErrLossRateWithoutRNG, fabric.ErrLossRateWithoutRNG},
		{"myrinet.ErrBadLossRate", myrinet.ErrBadLossRate, fabric.ErrBadLossRate},
		{"cluster.ErrShardsWithLossRate", cluster.ErrShardsWithLossRate, fabric.ErrShardsWithLossRate},
		{"cluster.ErrShardsWithTrace", cluster.ErrShardsWithTrace, fabric.ErrShardsWithTrace},
		{"chaos.ErrShardsStateful", chaos.ErrShardsStateful, fabric.ErrShardsStateful},
	}
	for _, p := range pairs {
		if !errors.Is(p.old, p.canon) {
			t.Errorf("%s does not match its fabric sentinel via errors.Is", p.name)
		}
		if !errors.Is(p.canon, p.old) {
			t.Errorf("%s: fabric sentinel does not match the deprecated alias via errors.Is", p.name)
		}
	}
}

// TestSentinelsReachCallers checks the sentinels still flow out of the
// code paths that raise them, matchable by errors.Is under either name.
func TestSentinelsReachCallers(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, 2, fabric.DefaultLinkParams())
	if err := net.SetLossRate(1.5); !errors.Is(err, fabric.ErrBadLossRate) || !errors.Is(err, myrinet.ErrBadLossRate) {
		t.Errorf("SetLossRate(1.5) = %v, want ErrBadLossRate under both names", err)
	}
	if err := net.SetLossRate(0.5); !errors.Is(err, fabric.ErrLossRateWithoutRNG) || !errors.Is(err, myrinet.ErrLossRateWithoutRNG) {
		t.Errorf("SetLossRate without RNG = %v, want ErrLossRateWithoutRNG under both names", err)
	}

	panics := func(build func()) (err error) {
		defer func() {
			r := recover()
			e, ok := r.(error)
			if !ok {
				t.Fatalf("panicked with non-error %v", r)
			}
			err = e
		}()
		build()
		return nil
	}
	if err := panics(func() { cluster.New(8, cluster.WithShards(2), cluster.WithLossRate(0.01)) }); !errors.Is(err, fabric.ErrShardsWithLossRate) {
		t.Errorf("sharded lossy cluster panicked with %v, want fabric.ErrShardsWithLossRate", err)
	}
}
