package cluster_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// fireRec is one fired event as the equivalence probe sees it.
type fireRec struct {
	when sim.Time
	key  uint64
}

// hookAll records every fired event on every engine of c. Records are
// per-engine (each engine's hook appends only its own slice, so sharded
// runs record race-free); merge() flattens and sorts them by (when, key) —
// the canonical timeline order both serial and sharded runs must agree on.
type hookAll struct {
	perEngine [][]fireRec
}

func hookCluster(c *cluster.Cluster) *hookAll {
	h := &hookAll{perEngine: make([][]fireRec, len(c.Engines()))}
	for i, e := range c.Engines() {
		i := i
		e.SetFireHook(func(when sim.Time, key uint64) {
			h.perEngine[i] = append(h.perEngine[i], fireRec{when, key})
		})
	}
	return h
}

func (h *hookAll) merge() []fireRec {
	var all []fireRec
	for _, recs := range h.perEngine {
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].when != all[j].when {
			return all[i].when < all[j].when
		}
		return all[i].key < all[j].key
	})
	return all
}

// gmShardRun drives a NIC-based multicast workload — install a binomial
// tree, then five pipelined multicasts from the root — on a cluster with
// the given shard count, returning the merged event timeline, each node's
// delivery times, and the final clock.
func gmShardRun(t *testing.T, nodes, shards int, msgs int) ([]fireRec, [][]sim.Time, sim.Time) {
	t.Helper()
	c := cluster.New(nodes, cluster.WithShards(shards), cluster.WithSeed(11))
	h := hookCluster(c)
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Binomial(0, c.Members()), 1, 1)

	deliveries := make([][]sim.Time, nodes)
	for i := 1; i < nodes; i++ {
		i := i
		port := ports[i]
		c.SpawnOn(fabric.NodeID(i), fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
			port.ProvideN(msgs+2, 1<<12)
			for got := 0; got < msgs; got++ {
				port.Recv(p)
				deliveries[i] = append(deliveries[i], p.Now())
			}
		})
	}

	// Phase 1: firmware installs the group on every member; receivers post
	// their tokens and park. Run to quiescence — the sharded barrier after
	// which cross-shard completion flags are safe to read.
	c.Run()
	if !ready() {
		t.Fatalf("group install incomplete after quiescence (shards=%d)", shards)
	}

	// Phase 2: root multicasts.
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < msgs; i++ {
			ext.McastSync(p, ports[0], 7, make([]byte, 2000))
		}
	})
	c.Run()
	end := c.Now()
	c.Kill()
	return h.merge(), deliveries, end
}

// TestShardedGMEquivalence is the acceptance bar for the conservative PDES
// mode: for identical seeds, the sharded engine's full event timeline —
// every (timestamp, tiebreak key) pair — and every delivery time must be
// byte-identical to the serial engine's, across shard counts, on a
// multi-switch fabric where real cross-shard traffic occurs.
func TestShardedGMEquivalence(t *testing.T) {
	const nodes, msgs = 32, 5
	serialTL, serialDel, serialEnd := gmShardRun(t, nodes, 1, msgs)
	if len(serialTL) == 0 {
		t.Fatal("serial run fired no events; equivalence check is vacuous")
	}
	for _, shards := range []int{2, 4} {
		tl, del, end := gmShardRun(t, nodes, shards, msgs)
		if end != serialEnd {
			t.Errorf("shards=%d: final clock %v != serial %v", shards, end, serialEnd)
		}
		if len(tl) != len(serialTL) {
			t.Fatalf("shards=%d: %d events fired, serial fired %d", shards, len(tl), len(serialTL))
		}
		for i := range tl {
			if tl[i] != serialTL[i] {
				t.Fatalf("shards=%d: timeline diverges at event %d: got (%v, %#x), serial (%v, %#x)",
					shards, i, tl[i].when, tl[i].key, serialTL[i].when, serialTL[i].key)
			}
		}
		for n := range del {
			if len(del[n]) != len(serialDel[n]) {
				t.Fatalf("shards=%d: node %d got %d deliveries, serial %d", shards, n, len(del[n]), len(serialDel[n]))
			}
			for i := range del[n] {
				if del[n][i] != serialDel[n][i] {
					t.Errorf("shards=%d: node %d delivery %d at %v, serial %v", shards, n, i, del[n][i], serialDel[n][i])
				}
			}
		}
	}
}

// TestShardsExceedNodes pins the edge case: asking for more shards than
// nodes clamps to one shard per node and still reproduces the serial
// timeline.
func TestShardsExceedNodes(t *testing.T) {
	const nodes, msgs = 4, 3
	serialTL, _, serialEnd := gmShardRun(t, nodes, 1, msgs)
	tl, _, end := gmShardRun(t, nodes, 16, msgs)
	if end != serialEnd {
		t.Errorf("final clock %v != serial %v", end, serialEnd)
	}
	if len(tl) != len(serialTL) {
		t.Fatalf("%d events fired, serial fired %d", len(tl), len(serialTL))
	}
	for i := range tl {
		if tl[i] != serialTL[i] {
			t.Fatalf("timeline diverges at event %d", i)
		}
	}
}

// TestShardOptionValidation pins the sentinel panics for configurations
// sharding cannot honor.
func TestShardOptionValidation(t *testing.T) {
	mustPanic := func(name string, want error, build func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			err, ok := r.(error)
			if !ok || err != want {
				t.Errorf("%s: panicked with %v, want %v", name, r, want)
			}
		}()
		build()
	}
	mustPanic("loss", cluster.ErrShardsWithLossRate, func() {
		cluster.New(8, cluster.WithShards(2), cluster.WithLossRate(0.01))
	})
}
