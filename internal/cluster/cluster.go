// Package cluster assembles complete simulated Myrinet/GM nodes — host,
// LANai NIC hardware, GM firmware, and the NIC-based multicast extension —
// onto a fabric, and centralizes the calibrated timing configuration that
// stands in for the paper's testbed (16 quad-SMP 700 MHz Pentium-III nodes,
// 66 MHz/64-bit PCI, LANai 9.1, Myrinet-2000).
package cluster

import (
	"sync/atomic"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/lanai"
	"repro/internal/metrics"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// Config aggregates every tunable of the simulated testbed.
type Config struct {
	Nodes int
	Link  fabric.LinkParams
	NIC   lanai.Params
	GM    gm.Config
	Mcast core.Config

	// Fabric selects the interconnect backend (myrinet.Default(),
	// clos.Default(), or a preset with edited fields). The zero value means
	// the classic Myrinet fabric. Link always holds the effective link
	// parameters — WithFabric copies the preset's links there, so sweeps
	// that mutate Link keep working on every backend.
	Fabric fabric.Config

	// HostMemcpyNsPerByte is the host CPU's copy bandwidth, paid when the
	// MPI layer copies an eager message from the bounce buffer to its
	// final location (the cause of the paper's dip at 16,287 bytes).
	HostMemcpyNsPerByte float64

	// LossRate is the per-link packet-loss probability; Seed feeds the
	// simulation's single RNG.
	LossRate float64
	Seed     int64

	// Trace, when non-nil, is attached to every NIC so the run can be
	// rendered as a packet timeline.
	Trace *trace.Recorder

	// Metrics, when non-nil, is wired through every layer (fabric, NIC
	// hardware, GM firmware, multicast extension). Leave nil for the
	// legacy behaviour (per-NIC private registries backing the deprecated
	// Stats accessors); set metrics.Disabled() for true no-op
	// instruments.
	Metrics *metrics.Registry

	// Shards partitions the fabric over this many engines for conservative
	// parallel execution (0 or 1 means the classic serial engine; the count
	// is clamped to the node count). Sharded output is byte-identical to
	// serial for the same seed. Sharding is incompatible with stochastic
	// loss and tracing, whose shared state would make cross-shard order
	// observable — build panics with ErrShardsWithLossRate /
	// ErrShardsWithTrace.
	Shards int

	// PartitionObjective selects what the fabric partitioner optimizes when
	// Shards > 1: the zero value (fabric.ObjectiveMaxLookahead) places cuts
	// on the highest-latency links so conservative windows come out wide;
	// fabric.ObjectiveMinCut is the original cut-count heuristic, kept for
	// comparison. Either way timelines stay byte-identical to serial — the
	// objective only moves the cuts, never the event order.
	PartitionObjective fabric.Objective

	// noExt skips installing the multicast extension (WithoutExtension).
	noExt bool
}

// DefaultConfig returns the calibrated testbed for n nodes.
func DefaultConfig(n int) *Config {
	g := gm.DefaultConfig()
	// LANai 9.1 at 133 MHz is an order of magnitude slower than the hosts;
	// its per-request and per-packet firmware costs dominate the multicast
	// trade-offs. Calibrated so unicast one-way sits near 8 µs (GM on
	// LANai 9.1) and the figure improvement factors land in range.
	g.SendEventCost = sim.Micros(3.4)
	g.TxSetupCost = sim.Micros(0.8)
	g.RecvProcCost = sim.Micros(2.2)
	g.AckProcCost = sim.Micros(0.9)
	return &Config{
		Nodes:               n,
		Link:                myrinet.DefaultLinkParams(),
		NIC:                 lanai.DefaultParams(),
		GM:                  g,
		Mcast:               core.DefaultConfig(),
		HostMemcpyNsPerByte: 0.9, // ~1.1 GB/s PIII-era copy bandwidth
		Seed:                1,
	}
}

// Node is one complete cluster member.
type Node struct {
	ID   fabric.NodeID
	HW   *lanai.NIC
	NIC  *gm.NIC
	Ext  *core.Ext
	Coll *coll.Engine
}

// Cluster is an assembled simulated testbed.
type Cluster struct {
	Cfg *Config
	// Eng is the serial engine — nil when the cluster is sharded, so code
	// that has not been taught about shards fails loudly instead of
	// silently desynchronizing one shard. Use Run/RunUntil/SpawnOn/Now and
	// friends, which dispatch to either mode.
	Eng   *sim.Engine
	Net   *fabric.Network
	RNG   *sim.RNG
	Nodes []*Node

	engines []*sim.Engine
	fab     fabric.Config // resolved backend (Fabric or the Myrinet default)
	plan    fabric.Plan
	sh      *sim.Sharded // nil when serial

	prevWindows   uint64 // metrics fold bookkeeping
	prevCross     uint64
	prevStretched uint64
	prevInline    uint64
	prevEmpty     uint64
	prevEvents    []uint64
	prevWait      []int64
}

// Sentinel errors for configurations sharding cannot honor; build panics
// with values satisfying errors.Is against these.
//
// Deprecated: these are aliases of the fabric package's sentinels (the
// incompatibility is a property of the sharded fabric, not of this
// assembly layer); errors.Is works against either name.
var (
	ErrShardsWithLossRate = fabric.ErrShardsWithLossRate
	ErrShardsWithTrace    = fabric.ErrShardsWithTrace
)

// New builds a cluster of n nodes: engine, fabric (single crossbar up to
// 16 nodes, a Clos of 16-port crossbars beyond — the testbed's default
// topology), and one full node per host, with the multicast extension
// installed. Options adjust the calibrated default configuration:
//
//	cluster.New(16, cluster.WithMetrics(reg), cluster.WithLossRate(1e-4))
func New(n int, opts ...Option) *Cluster {
	cfg := DefaultConfig(n)
	for _, o := range opts {
		o(cfg)
	}
	cfg.Nodes = n // the positional node count always wins
	return build(cfg)
}

// NewFromConfig builds a cluster from a fully-specified configuration.
//
// Deprecated: use New with WithConfig (or finer-grained options).
func NewFromConfig(cfg *Config) *Cluster { return build(cfg) }

// NewPlain builds a cluster without the multicast extension — the stock-GM
// baseline used to verify the extension has no impact on unicast traffic.
//
// Deprecated: use New with WithoutExtension (plus WithConfig if needed).
func NewPlain(cfg *Config) *Cluster {
	c := *cfg
	c.noExt = true
	return build(&c)
}

// build assembles the cluster described by cfg, wiring the metrics
// registry (if any) through every layer before firmware is attached.
// Sharded and serial builds follow the identical code path — same fabric,
// same domain registration, same construction order — so event tiebreak
// keys (and therefore timelines) agree bit for bit across shard counts.
func build(cfg *Config) *Cluster {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes // the shards-exceed-nodes edge case degenerates
	}
	if shards > 1 {
		if cfg.LossRate > 0 {
			panic(ErrShardsWithLossRate)
		}
		if cfg.Trace != nil {
			panic(ErrShardsWithTrace)
		}
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	fab := cfg.Fabric
	if !fab.Valid() {
		fab = myrinet.Default()
	}
	// Config.Link is the single source of truth for link parameters: the
	// preset seeded it (WithFabric), and any later mutation — a sweep
	// perturbing latency, a test forcing loss-free links — applies to
	// whichever backend builds the topology.
	fab.Links = cfg.Link
	net := fab.Build(engines[0], cfg.Nodes, fab)
	plan := net.PartitionObjective(shards, cfg.PartitionObjective)
	net.ApplyPlan(plan, engines[:plan.Shards])
	rng := sim.NewRNG(cfg.Seed)
	net.SetRNG(rng)
	if err := net.SetLossRate(cfg.LossRate); err != nil {
		panic(err) // errors.Is-testable sentinel (ErrBadLossRate)
	}
	net.SetMetrics(cfg.Metrics)
	c := &Cluster{Cfg: cfg, Net: net, RNG: rng, engines: engines, fab: fab, plan: plan}
	if plan.Shards == 1 {
		c.Eng = engines[0]
	} else {
		c.sh = sim.NewShardedMatrix(engines, plan.PairLookahead, net.DrainCross)
		c.sh.SetPending(net.CrossPending)
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := fabric.NodeID(i)
		eng := engines[plan.HostShard[i]]
		var node *Node
		// Construction runs under the host's domain so any keys it draws
		// are attributed to the node, not the ambient domain — ambient
		// sequences live per engine and would diverge across shard counts.
		eng.WithDomain(net.HostDomain(id), func() {
			hw := lanai.New(eng, net.Iface(id), cfg.NIC)
			hw.SetMetrics(cfg.Metrics)
			nic := gm.NewNIC(hw, cfg.GM)
			nic.Trace = cfg.Trace
			node = &Node{ID: id, HW: hw, NIC: nic}
			if !cfg.noExt {
				node.Ext = core.InstallWithConfig(nic, cfg.Mcast)
				node.Coll = coll.Install(node.Ext, coll.FromCore(cfg.Mcast))
			}
		})
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Shards reports how many engines the cluster runs on.
func (c *Cluster) Shards() int { return c.plan.Shards }

// Fabric reports the resolved backend configuration the cluster was built
// with (the Myrinet preset when none was selected).
func (c *Cluster) Fabric() fabric.Config { return c.fab }

// Sharded exposes the shard coordinator (nil when serial) — benchmarks use
// it for window/barrier statistics.
func (c *Cluster) Sharded() *sim.Sharded { return c.sh }

// EngineOf reports the engine that owns a node's events.
func (c *Cluster) EngineOf(id fabric.NodeID) *sim.Engine {
	return c.engines[c.plan.HostShard[id]]
}

// Engines exposes the per-shard engines.
func (c *Cluster) Engines() []*sim.Engine { return c.engines }

// WithNode runs fn attributed to the node: on the node's engine, under the
// node's event domain. Every ambient (outside-any-event) operation that
// schedules work on a node — installing groups, opening ports, spawning
// host processes — must go through it (or SpawnOn) so tiebreak keys stay
// shard-stable.
func (c *Cluster) WithNode(id fabric.NodeID, fn func()) {
	c.EngineOf(id).WithDomain(c.Net.HostDomain(id), fn)
}

// SpawnOn starts a simulated host process on a node, on the node's engine
// and under its domain. It is the sharded-safe replacement for
// c.Eng.Spawn; spawn only between runs (at a barrier), never from a
// process on another shard.
func (c *Cluster) SpawnOn(id fabric.NodeID, name string, fn func(p *sim.Proc)) *sim.Proc {
	var p *sim.Proc
	eng := c.EngineOf(id)
	eng.WithDomain(c.Net.HostDomain(id), func() {
		p = eng.Spawn(name, fn)
	})
	return p
}

// Run fires events until the whole cluster is quiescent, serial or
// sharded; afterwards every shard's clock sits at the same time a serial
// run would end at.
func (c *Cluster) Run() {
	if c.sh != nil {
		c.sh.Run()
		c.foldShardMetrics()
		return
	}
	c.Eng.Run()
}

// RunUntil fires every event with timestamp <= t and advances all clocks
// to t.
func (c *Cluster) RunUntil(t sim.Time) {
	if c.sh != nil {
		c.sh.RunUntil(t)
		c.foldShardMetrics()
		return
	}
	c.Eng.RunUntil(t)
}

// Now reports the cluster's virtual time (all shard clocks agree between
// runs).
func (c *Cluster) Now() sim.Time {
	if c.sh != nil {
		return c.sh.Now()
	}
	return c.Eng.Now()
}

// Kill unwinds all live processes across every shard.
func (c *Cluster) Kill() {
	if c.sh != nil {
		c.sh.Kill()
		return
	}
	c.Eng.Kill()
}

// LiveProcs totals unfinished processes across shards.
func (c *Cluster) LiveProcs() int {
	if c.sh != nil {
		return c.sh.LiveProcs()
	}
	return c.Eng.LiveProcs()
}

// Pending totals scheduled, not-yet-fired events across shards.
func (c *Cluster) Pending() int {
	if c.sh != nil {
		return c.sh.Pending()
	}
	return c.Eng.Pending()
}

// EventsFired totals fired events across shards.
func (c *Cluster) EventsFired() uint64 {
	if c.sh != nil {
		return c.sh.EventsFired()
	}
	return c.Eng.EventsFired()
}

// foldShardMetrics publishes the coordinator's deterministic accounting —
// per-shard fired events, window / stretched-window / inline-window /
// skipped-drain and cross-shard event counts — into the metrics registry
// after each run. Wall-clock barrier waits are cheap enough to track
// unconditionally now, so they fold in by default; they are wall-clock
// (nondeterministic) values and live in histograms, which the determinism
// checks already exclude.
func (c *Cluster) foldShardMetrics() {
	reg := c.Cfg.Metrics
	if c.sh == nil || !reg.Enabled() {
		return
	}
	st := c.sh.Stats()
	reg.Counter("sim", metrics.NodeFabric, "windows").Add(st.Windows - c.prevWindows)
	reg.Counter("sim", metrics.NodeFabric, "cross_events").Add(st.CrossEvents - c.prevCross)
	reg.Counter("sim", metrics.NodeFabric, "windows_stretched").Add(st.Stretched - c.prevStretched)
	reg.Counter("sim", metrics.NodeFabric, "windows_inline").Add(st.Inline - c.prevInline)
	reg.Counter("sim", metrics.NodeFabric, "drains_skipped").Add(st.EmptyDrains - c.prevEmpty)
	c.prevWindows, c.prevCross = st.Windows, st.CrossEvents
	c.prevStretched, c.prevInline, c.prevEmpty = st.Stretched, st.Inline, st.EmptyDrains
	if c.prevEvents == nil {
		c.prevEvents = make([]uint64, st.Shards)
		c.prevWait = make([]int64, st.Shards)
	}
	for s := 0; s < st.Shards; s++ {
		reg.Counter("sim", s, "events_fired").Add(st.Events[s] - c.prevEvents[s])
		c.prevEvents[s] = st.Events[s]
		if len(st.WaitNs) == st.Shards {
			reg.Histogram("sim", s, "barrier_wait_ns").Observe(st.WaitNs[s] - c.prevWait[s])
			c.prevWait[s] = st.WaitNs[s]
		}
	}
}

// Registry reports the metrics registry the cluster was built with (nil
// when none was wired).
func (c *Cluster) Registry() *metrics.Registry { return c.Cfg.Metrics }

// OpenPorts opens the same port number on every node and returns the
// ports indexed by node.
func (c *Cluster) OpenPorts(id gm.PortID) []*gm.Port {
	ports := make([]*gm.Port, len(c.Nodes))
	for i, n := range c.Nodes {
		i, n := i, n
		c.WithNode(n.ID, func() { ports[i] = n.NIC.OpenPort(id) })
	}
	return ports
}

// InstallGroup preposts a group's tree into the NIC group table of every
// member. Installation is asynchronous firmware work; the returned ready
// function reports completion. The completion count is written from every
// member's shard, so on a sharded cluster poll ready only from outside the
// run (typically: InstallGroup, then Run to quiescence, then check).
func (c *Cluster) InstallGroup(id gm.GroupID, tr *tree.Tree, port, rootPort gm.PortID) (ready func() bool) {
	total := int64(tr.Size())
	done := new(atomic.Int64)
	for _, n := range tr.Nodes() {
		n := n
		c.WithNode(n, func() {
			c.Nodes[n].Ext.InstallGroup(id, tr, port, rootPort, func() { done.Add(1) })
		})
	}
	return func() bool { return done.Load() == total }
}

// InstallCollGroup installs a collective group over every listed member's
// collective engine. Like InstallGroup, installation is asynchronous
// firmware work; poll the returned ready function only from outside a run.
func (c *Cluster) InstallCollGroup(id gm.GroupID, members []fabric.NodeID, port gm.PortID, opts ...coll.Option) (ready func() bool) {
	total := int64(len(members))
	done := new(atomic.Int64)
	for _, n := range members {
		n := n
		c.WithNode(n, func() {
			c.Nodes[n].Coll.Install(id, members, port, func() { done.Add(1) }, opts...)
		})
	}
	return func() bool { return done.Load() == total }
}

// Members returns node IDs [0, n) — the usual full-system group.
func (c *Cluster) Members() []fabric.NodeID {
	out := make([]fabric.NodeID, len(c.Nodes))
	for i := range out {
		out[i] = fabric.NodeID(i)
	}
	return out
}

// HostMemcpyTime reports the host-CPU cost of copying n bytes.
func (cfg *Config) HostMemcpyTime(n int) sim.Time {
	return sim.PerByte(cfg.HostMemcpyNsPerByte, n)
}

// Postal derives analytic postal-model parameters (Lambda, Gap) for a
// message of the given size, the quantities the paper's optimal-tree
// construction divides: "a) the total amount of time for a node to send a
// message until the receiver receives it, and b) the average time for the
// sender to send a message to one additional destination".
//
// Lambda is the time from one NIC emitting a packet until the receiving
// NIC can itself start replicating it onward: serialization, the per-hop
// link latencies, receive processing, and the receive-token → send-token
// transform. Host-to-host latency is deliberately not used — NIC-based
// forwarding never waits for the host, so the forwarding pivot is
// NIC-to-NIC. Gap is the per-additional-destination cost of the NIC-based
// multisend: header rewrite plus wire serialization, per packet.
//
// The ratio Lambda/Gap then reproduces the paper's observations: large for
// small messages (wide, shallow trees), and about 1 for single-packet 2-4
// KB messages, where "the shape of the resulting optimal tree is not
// significantly different from the binomial tree".
func (cfg *Config) Postal(size int) tree.PostalParams {
	g, lp := cfg.GM, cfg.Link
	npkts := g.Packets(size)
	first := size
	if first > g.MTU {
		first = g.MTU
	}

	// Worst-case hop count of whatever topology the selected backend
	// builds for this node count (the Myrinet ladder when no backend is
	// chosen: crossbar 2, two-level Clos 4, fat tree 6).
	diameter := cfg.Fabric.Diameter
	if diameter == nil {
		diameter = myrinet.Diameter
	}
	hops := sim.Time(diameter(cfg.Nodes))
	ser := lp.SerializationTime(g.WireSize(first))

	lambda := ser + hops*lp.Latency + g.RecvProcCost + cfg.Mcast.ForwardSetupCost
	gap := sim.Time(npkts) * (cfg.Mcast.HeaderRewriteCost + ser)
	return tree.PostalParams{Lambda: lambda, Gap: gap}
}

// OptimalTree builds the message-size-specific latency-optimal tree for a
// root over members. Single-packet messages use the Bar-Noy–Kipnis postal
// tree from the cluster's (Lambda, Gap). Multi-packet messages account for
// what the postal model cannot express — an intermediate NIC forwards each
// packet as it arrives, so a node's sustained output is its link bandwidth
// divided by its fan-out — and use the balanced k-ary tree whose analytic
// pipelined finish time is smallest. This is the paper's own rationale:
// "using NIC-based forwarding an intermediate NIC can forward the packets
// of a message without waiting for the arrival of the complete message".
func (cfg *Config) OptimalTree(root fabric.NodeID, members []fabric.NodeID, size int) *tree.Tree {
	if cfg.GM.Packets(size) == 1 {
		return tree.Optimal(root, members, cfg.Postal(size))
	}
	n := len(members)
	best, bestT := 1, cfg.pipelinedFinish(n, 1, size)
	for f := 2; f < n; f++ {
		if t := cfg.pipelinedFinish(n, f, size); t < bestT {
			best, bestT = f, t
		}
	}
	return tree.KAry(root, members, best)
}

// pipelinedFinish estimates when the last node holds the complete message
// if it is streamed per-packet down a balanced f-ary tree of n nodes: the
// root emits f replicas of each packet (serialization plus header rewrite
// per replica), and each tree level adds one per-packet forwarding delay.
func (cfg *Config) pipelinedFinish(n, f, size int) sim.Time {
	g, lp := cfg.GM, cfg.Link
	npkts := g.Packets(size)
	chunk := size
	if chunk > g.MTU {
		chunk = g.MTU
	}
	ser := lp.SerializationTime(g.WireSize(chunk))
	perReplica := ser + cfg.Mcast.HeaderRewriteCost
	rootEmit := sim.Time(f) * sim.Time(npkts) * perReplica

	depth := 0
	for covered := 1; covered < n; depth++ {
		covered += pow(f, depth+1)
	}
	hop := g.RecvProcCost + cfg.Mcast.ForwardSetupCost + ser + 2*lp.Latency
	return rootEmit + sim.Time(depth)*hop
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return out
		}
	}
	return out
}
