package cluster

import (
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Option adjusts a cluster configuration before assembly. Options are
// applied in order on top of DefaultConfig(n), so later options override
// earlier ones; WithConfig replaces the whole configuration and is
// normally first when used at all.
type Option func(*Config)

// WithConfig replaces the entire configuration (the node count passed to
// New still wins).
func WithConfig(cfg *Config) Option {
	return func(c *Config) { *c = *cfg }
}

// WithMutate applies an arbitrary configuration mutation — the escape
// hatch for experiment sweeps that perturb one calibrated cost.
func WithMutate(f func(*Config)) Option {
	return func(c *Config) {
		if f != nil {
			f(c)
		}
	}
}

// WithFabric selects the interconnect backend from a preset —
// myrinet.Default(), clos.Default(), or a preset with edited fields. The
// preset's link parameters become the cluster's Link configuration, so
// later options or mutations that adjust Link apply on top of the
// backend's defaults:
//
//	cluster.New(256, cluster.WithFabric(clos.Default()))
func WithFabric(fc fabric.Config) Option {
	return func(c *Config) {
		c.Fabric = fc
		c.Link = fc.Links
	}
}

// WithMetrics wires the registry through every layer of every node:
// fabric link counters, LANai busy time and buffer-pool occupancy, GM
// protocol counters, and multicast forwarding statistics.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithoutMetrics wires a disabled registry through the stack: every
// instrument is a true no-op and the legacy Stats accessors read zero.
// Benchmarks use it to pin down the cost of the instrumentation itself.
func WithoutMetrics() Option {
	return func(c *Config) { c.Metrics = metrics.Disabled() }
}

// WithShards partitions the cluster over n engines for conservative
// parallel execution. Output is byte-identical to the serial engine for
// the same seed; n is clamped to the node count, and n <= 1 selects the
// classic serial engine. Incompatible with WithLossRate and WithTrace
// (build panics with a sentinel error).
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithPartitionObjective selects the fabric partitioner's objective for
// sharded runs: fabric.ObjectiveMaxLookahead (the default — cut the
// slowest links, widening conservative sync windows) or
// fabric.ObjectiveMinCut (the original fewest-cut-links heuristic, kept as
// a comparison knob). Timelines are byte-identical either way.
func WithPartitionObjective(obj fabric.Objective) Option {
	return func(c *Config) { c.PartitionObjective = obj }
}

// WithSeed sets the simulation RNG seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithLossRate sets the per-link packet-loss probability.
func WithLossRate(rate float64) Option {
	return func(c *Config) { c.LossRate = rate }
}

// WithTrace attaches a trace recorder to every NIC.
func WithTrace(tr *trace.Recorder) Option {
	return func(c *Config) { c.Trace = tr }
}

// WithNacks enables fast recovery (negative acknowledgments) in the GM
// firmware of every node.
func WithNacks() Option {
	return func(c *Config) { c.GM.EnableNacks = true }
}

// WithAdaptiveRTO enables measured round-trip retransmission timeouts in
// the GM firmware of every node.
func WithAdaptiveRTO() Option {
	return func(c *Config) { c.GM.AdaptiveRTO = true }
}

// WithoutExtension skips installing the multicast extension — the
// stock-GM baseline.
func WithoutExtension() Option {
	return func(c *Config) { c.noExt = true }
}

// WithAckCoalescing enables cumulative delayed acknowledgments in the GM
// firmware of every node: a receiver acks every `every` packets or after
// `delay` (0 picks the default bound), whichever comes first. The coll
// engine's tree allgather reuses the same knob as its chunk window.
func WithAckCoalescing(every int, delay sim.Time) Option {
	return func(c *Config) {
		c.GM.AckEvery = every
		c.GM.AckDelay = delay
	}
}

// WithPiggybackAcks lets reverse-direction data frames carry pending
// cumulative acks in their headers, suppressing standalone ack packets.
// Only does anything on top of WithAckCoalescing.
func WithPiggybackAcks() Option {
	return func(c *Config) { c.GM.PiggybackAcks = true }
}

// WithAckAggregation turns on NIC tree ack aggregation in the multicast
// extension: interior NICs absorb children's acks and forward one
// subtree-floor aggregate upward, so the root sees O(fanout) ack events
// instead of O(N).
func WithAckAggregation() Option {
	return func(c *Config) { c.Mcast.AggregateAcks = true }
}

// WithAckEconomy enables the whole ack-economy stack at once — delayed
// cumulative acks every `every` packets, piggybacking, and tree ack
// aggregation. every <= 1 is a no-op (the timeline-pinned default).
func WithAckEconomy(every int) Option {
	return func(c *Config) {
		if every <= 1 {
			return
		}
		c.GM.AckEvery = every
		c.GM.PiggybackAcks = true
		c.Mcast.AggregateAcks = true
	}
}
