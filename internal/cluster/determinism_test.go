package cluster_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// runTraced drives one multicast workload (with retransmission pressure
// from a lossy fabric) and returns the full packet timeline. The metrics
// option is the only thing varied between runs.
func runTraced(t *testing.T, opt cluster.Option) []byte {
	t.Helper()
	tr := trace.NewRecorder()
	c := cluster.New(8, opt,
		cluster.WithTrace(tr),
		cluster.WithSeed(7),
		cluster.WithLossRate(0.02),
	)
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Binomial(0, c.Members()), 1, 1)
	c.Eng.Spawn("root", func(p *sim.Proc) {
		for !ready() {
			p.Sleep(sim.Micros(1))
		}
		ext := c.Nodes[0].Ext
		for i := 0; i < 5; i++ {
			ext.McastSync(p, ports[0], 7, make([]byte, 2000))
		}
	})
	for i := 1; i < 8; i++ {
		port := ports[i]
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			port.ProvideN(8, 1<<12)
			for got := 0; got < 5; got++ {
				port.Recv(p)
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()

	if tr.Len() == 0 {
		t.Fatal("workload recorded no trace events; determinism check is vacuous")
	}
	var buf bytes.Buffer
	tr.WriteTimeline(&buf)
	return buf.Bytes()
}

// TestMetricsDoNotPerturbSimulation proves the observability layer is pure
// measurement: the packet-level timeline of a lossy multicast run is
// byte-identical whether metrics are fully enabled or compiled down to
// no-ops. Instrument updates never touch the engine, so any divergence
// here is a bug in the metrics threading.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	on := runTraced(t, cluster.WithMetrics(metrics.New()))
	off := runTraced(t, cluster.WithoutMetrics())
	legacy := runTraced(t, cluster.WithMutate(func(cfg *cluster.Config) { cfg.Metrics = nil }))

	if !bytes.Equal(on, off) {
		t.Errorf("timeline with metrics enabled differs from disabled (%d vs %d bytes)", len(on), len(off))
	}
	if !bytes.Equal(on, legacy) {
		t.Errorf("timeline with metrics enabled differs from legacy private registries (%d vs %d bytes)", len(on), len(legacy))
	}
}
