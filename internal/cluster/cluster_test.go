package cluster

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

func TestNewBuildsFullNodes(t *testing.T) {
	c := New(8)
	if len(c.Nodes) != 8 {
		t.Fatalf("built %d nodes, want 8", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != fabric.NodeID(i) {
			t.Fatalf("node %d has ID %v", i, n.ID)
		}
		if n.HW == nil || n.NIC == nil || n.Ext == nil {
			t.Fatalf("node %d incompletely assembled", i)
		}
	}
}

func TestNewPlainOmitsExtension(t *testing.T) {
	c := NewPlain(DefaultConfig(2))
	if c.Nodes[0].Ext != nil {
		t.Fatal("plain cluster has multicast extension")
	}
	if c.Nodes[0].NIC.Extension() != nil {
		t.Fatal("plain NIC has firmware extension installed")
	}
}

func TestTopologySelection(t *testing.T) {
	small := New(16)
	if got := small.Net.HopCount(0, 15); got != 2 {
		t.Errorf("16 nodes: %d hops, want 2 (single crossbar)", got)
	}
	big := New(24)
	if got := big.Net.HopCount(0, 23); got != 4 {
		t.Errorf("24 nodes: %d hops, want 4 (Clos)", got)
	}
}

func TestInstallGroupReportsReadiness(t *testing.T) {
	c := New(4)
	c.OpenPorts(1)
	tr := tree.Binomial(0, c.Members())
	ready := c.InstallGroup(9, tr, 1, 1)
	if ready() {
		t.Fatal("group reported ready before the firmware ran")
	}
	c.Eng.Run()
	if !ready() {
		t.Fatal("group not ready after the engine drained")
	}
	for _, n := range c.Nodes {
		if !n.Ext.HasGroup(9) {
			t.Fatalf("node %v missing group entry", n.ID)
		}
	}
}

func TestHostMemcpyTime(t *testing.T) {
	cfg := DefaultConfig(2)
	if got := cfg.HostMemcpyTime(1000); got != sim.PerByte(cfg.HostMemcpyNsPerByte, 1000) {
		t.Fatalf("memcpy time %v inconsistent", got)
	}
}

func TestPostalRatioShrinksWithSize(t *testing.T) {
	cfg := DefaultConfig(16)
	small := cfg.Postal(4).Ratio()
	large := cfg.Postal(4096).Ratio()
	if small <= large {
		t.Fatalf("postal ratio %0.2f (4B) not above %0.2f (4KB)", small, large)
	}
	if large > 2.0 {
		t.Fatalf("4KB postal ratio %.2f; paper expects near-binomial (~1)", large)
	}
}

func TestOptimalTreeShapes(t *testing.T) {
	cfg := DefaultConfig(16)
	members := NewFromConfig(cfg).Members()
	smallTree := cfg.OptimalTree(0, members, 4)
	if err := smallTree.Validate(); err != nil {
		t.Fatal(err)
	}
	bigTree := cfg.OptimalTree(0, members, 16384)
	if err := bigTree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Small messages: wide and shallow; multi-packet: low fan-out for
	// pipelining (never the near-flat shape).
	if smallTree.Depth() > 3 {
		t.Errorf("small-message tree depth %d, want shallow", smallTree.Depth())
	}
	if f := bigTree.MaxFanout(); f > 3 {
		t.Errorf("16KB tree fanout %d; pipelining needs low fan-out", f)
	}
	if bigTree.Depth() <= smallTree.Depth() {
		t.Errorf("16KB tree (depth %d) not deeper than 4B tree (depth %d)",
			bigTree.Depth(), smallTree.Depth())
	}
}

// The analytic postal Lambda should track a measured one-hop NIC-to-NIC
// forwarding pivot within a loose band; this guards against the analytic
// model drifting from the simulated data path after recalibration.
func TestPostalLambdaMatchesSimulatedHop(t *testing.T) {
	cfg := DefaultConfig(3)
	c := NewFromConfig(cfg)
	ports := c.OpenPorts(1)
	tr := tree.Chain(0, c.Members())
	c.InstallGroup(3, tr, 1, 1)
	var mid, leaf sim.Time
	for _, n := range []int{1, 2} {
		n := n
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[n].Provide(64)
			ports[n].Recv(p)
			if n == 1 {
				mid = p.Now()
			} else {
				leaf = p.Now()
			}
		})
	}
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], 3, []byte{1, 2, 3, 4})
	})
	c.Eng.Run()
	c.Eng.Kill()
	hop := (leaf - mid).Micros() // host-observed inter-hop spacing
	lambda := cfg.Postal(4).Lambda.Micros()
	if hop < lambda*0.5 || hop > lambda*2.0 {
		t.Fatalf("measured forwarding hop %.2fus vs analytic lambda %.2fus: model drifted", hop, lambda)
	}
}

func TestDeterministicClusters(t *testing.T) {
	run := func() uint64 {
		c := New(4)
		ports := c.OpenPorts(1)
		c.Eng.Spawn("recv", func(p *sim.Proc) {
			ports[1].Provide(128)
			ports[1].Recv(p)
		})
		c.Eng.Spawn("send", func(p *sim.Proc) {
			ports[0].SendSync(p, 1, 1, []byte{9, 9})
		})
		c.Eng.Run()
		c.Eng.Kill()
		return c.Eng.EventsFired()
	}
	if run() != run() {
		t.Fatal("cluster construction is nondeterministic")
	}
}

func TestGroupIDTypeIsStable(t *testing.T) {
	// Compile-time contract used by the MPI layer's deterministic IDs.
	var g gm.GroupID = 1 + 15*64 + 63
	if g == 0 {
		t.Fatal("impossible")
	}
}
