package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tree"
)

// The GM endpoints collective campaigns use. Both collective contexts
// share one port, the way internal/mpi multiplexes its port across
// communicators.
const (
	CollPort gm.PortID = 1

	// CollGroupTree pairs the dissemination barrier with the
	// concatenate-and-forward tree allgather; CollGroupRing pairs the
	// binomial tree barrier with the ring allgather. Alternating rounds
	// between them puts every collective algorithm the engine implements
	// under fire in one campaign.
	CollGroupTree gm.GroupID = 1
	CollGroupRing gm.GroupID = 2
)

// MatchKinds builds a Match selecting exactly the given frame kinds —
// the scalpel collective scenarios use to fault one protocol's traffic
// while leaving the rest of the stack clean.
func MatchKinds(kinds ...gm.Kind) Match {
	return func(p *fabric.Packet, _ *fabric.Link) bool {
		fr, ok := p.Payload.(*gm.Frame)
		if !ok {
			return false
		}
		for _, k := range kinds {
			if fr.Kind == k {
				return true
			}
		}
		return false
	}
}

// MatchCollData matches collective protocol frames (barrier rounds,
// reduce vectors, allgather chunks, ring hops), leaving their acks and
// all point-to-point/multicast traffic untouched.
func MatchCollData(p *fabric.Packet, l *fabric.Link) bool {
	return MatchKinds(gm.KindBarrier, gm.KindReduce, gm.KindGather, gm.KindRing)(p, l)
}

// MatchCollAcks matches collective acknowledgments — losing these
// exercises the stop-and-wait retransmit and duplicate-rejection paths
// on the receiving side.
func MatchCollAcks(p *fabric.Packet, l *fabric.Link) bool {
	return MatchKinds(gm.KindBarrierAck, gm.KindReduceAck, gm.KindGatherAck, gm.KindRingAck)(p, l)
}

// CollConfig parameterizes one collective scenario run.
type CollConfig struct {
	// Nodes is the cluster size; every node runs Rounds rounds of
	// barrier + allreduce + allgather over Veclen-element vectors,
	// alternating between the tree-algorithm and ring-algorithm groups.
	Nodes  int
	Rounds int
	Veclen int

	// Seed feeds the cluster RNG and (hashed with the scenario name) the
	// injector RNG — same seed, same scenario, same result.
	Seed int64

	// Deadline bounds each run in virtual time; collectives that have not
	// quiesced by then failed to recover.
	Deadline sim.Time

	// Metrics optionally receives the faulted run's instrument traffic.
	// The checks always use a private snapshot diff.
	Metrics *metrics.Registry

	// Shards runs each scenario's clusters on a conservative parallel
	// engine (0 or 1 = serial); stateless fault rules only, as with
	// Config.Shards.
	Shards int

	// Fabric selects the interconnect backend (zero value: Myrinet).
	Fabric fabric.Config

	// AckEvery > 1 runs every scenario with the full ack economy enabled
	// (cumulative acks, piggybacking, tree aggregation, windowed gather);
	// 0 or 1 keeps the per-packet ack default.
	AckEvery int
}

func (c CollConfig) withDefaults() CollConfig {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Veclen <= 0 {
		c.Veclen = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 500 * sim.Millisecond
	}
	return c
}

// CollScenario is one named fault script for a collective run.
type CollScenario struct {
	Name string
	Desc string

	Inject func(f *CollFault)
}

// CollFault is the context a collective scenario's Inject runs in.
type CollFault struct {
	Inj     *Injector
	Cluster *cluster.Cluster
	Cfg     CollConfig

	// CleanSpan is the fault-free baseline's completion time on this
	// exact cluster; windows are placed relative to it via At, as in the
	// multicast campaigns.
	CleanSpan sim.Time
}

// At maps a fraction of the fault-free run's span to an absolute virtual
// time (see Fault.At).
func (f *CollFault) At(frac float64) sim.Time {
	return sim.Time(float64(f.CleanSpan) * frac)
}

// Root returns the node rooting both collective trees (the lowest member
// id) — the node whose outage every tree collective must survive.
func (f *CollFault) Root() fabric.NodeID {
	return f.Cluster.Nodes[0].ID
}

// CollLibrary returns the collective scenario set, in fixed order.
func CollLibrary() []CollScenario {
	return []CollScenario{
		{
			Name: "coll-barrier-burst-loss",
			Desc: "every barrier round frame dropped for the first half of live traffic; the shared stop-and-wait timer must carry both barrier algorithms through",
			Inject: func(f *CollFault) {
				f.Inj.DropWindow("barrier-burst", f.At(0.05), f.At(0.5),
					MatchKinds(gm.KindBarrier))
			},
		},
		{
			Name: "coll-reduce-dup-storm",
			Desc: "every 2nd reduce frame and reduce ack duplicated all run; the contribution bitsets and done-set must reject every copy during the combine",
			Inject: func(f *CollFault) {
				f.Inj.Duplicate("reduce-dup", 0, 0, 2,
					MatchKinds(gm.KindReduce, gm.KindReduceAck))
			},
		},
		{
			Name: "coll-gather-burst-loss",
			Desc: "allgather chunk and ring hop frames dropped through the middle of the run; chunked batch transfers must resume where the ack left off",
			Inject: func(f *CollFault) {
				f.Inj.DropWindow("gather-burst", f.At(0.2), f.At(0.7),
					MatchKinds(gm.KindGather, gm.KindRing))
			},
		},
		{
			Name: "coll-ack-loss",
			Desc: "collective acks of every class dropped early in the run; retransmitted rounds, vectors and chunks must be re-acked and deduplicated",
			Inject: func(f *CollFault) {
				f.Inj.DropWindow("ack-loss", f.At(0.05), f.At(0.6), MatchCollAcks)
			},
		},
		{
			Name: "coll-root-pause",
			Desc: "the tree root's NIC goes deaf mid-run; contributions queued at the children must survive on stop-and-wait until the firmware returns",
			Inject: func(f *CollFault) {
				f.Inj.PauseNIC(f.Cluster.Nodes[f.Root()].HW, f.At(0.15), f.At(0.45))
			},
		},
		{
			Name: "coll-bursty-links",
			Desc: "Gilbert–Elliott bursty loss over collective data frames on all links, all run",
			Inject: func(f *CollFault) {
				f.Inj.GilbertElliott("ge-coll", 0.02, 0.25, 0.001, 0.5, MatchCollData)
			},
		},
		{
			Name: "coll-dup-storm",
			Desc: "every 3rd packet of any kind duplicated all run; collective and multicast dedup must agree that nothing is delivered twice",
			Inject: func(f *CollFault) {
				f.Inj.Duplicate("dup3", 0, 0, 3, MatchAll)
			},
		},
	}
}

// FindColl returns the collective scenario with the given name.
func FindColl(name string) (CollScenario, bool) {
	for _, sc := range CollLibrary() {
		if sc.Name == name {
			return sc, true
		}
	}
	return CollScenario{}, false
}

// CollResult is one collective scenario's verdict.
type CollResult struct {
	Scenario string
	Desc     string
	Nodes    int
	Rounds   int

	Pass       bool
	Violations []string

	CleanFinish sim.Time
	FaultFinish sim.Time
	Recovery    sim.Time

	// Faulted-run observations. Retransmits sums every reliability layer
	// (collective stop-and-wait, multicast tree, unicast); CollDups counts
	// duplicate collective frames the engine rejected.
	Drops       uint64
	Dups        uint64
	PausedDrops uint64
	Retransmits uint64
	CollDups    uint64

	Rules []RuleHit
}

// RunCollScenario executes one collective scenario: a fault-free baseline
// and the faulted run, both checked against the collective invariant set
// (correct results at every node every round, full quiescence, no leaked
// collective records, timers or instances, all NIC resources returned,
// balanced fabric accounting).
func RunCollScenario(sc CollScenario, cfg CollConfig) CollResult {
	cfg = cfg.withDefaults()
	clean := collRunOnce(sc, cfg, false, 0)
	fault := collRunOnce(sc, cfg, true, clean.finish)

	res := CollResult{
		Scenario:    sc.Name,
		Desc:        sc.Desc,
		Nodes:       cfg.Nodes,
		Rounds:      cfg.Rounds,
		CleanFinish: clean.finish,
		FaultFinish: fault.finish,
		Drops:       fault.drops,
		Dups:        fault.dups,
		PausedDrops: fault.pausedDrops,
		Retransmits: fault.retransmits,
		CollDups:    fault.collDups,
		Rules:       fault.rules,
	}
	if res.FaultFinish > res.CleanFinish {
		res.Recovery = res.FaultFinish - res.CleanFinish
	}
	for _, v := range clean.violations {
		res.Violations = append(res.Violations, "baseline: "+v)
	}
	res.Violations = append(res.Violations, fault.violations...)
	res.Pass = len(res.Violations) == 0
	return res
}

// collOutcome is one collective run's raw observations.
type collOutcome struct {
	finish     sim.Time
	violations []string

	drops, dups, pausedDrops uint64
	retransmits, collDups    uint64
	rules                    []RuleHit
}

// collVec is the deterministic contribution of node i in round r.
func collVec(r, i, veclen int) []int64 {
	v := make([]int64, veclen)
	for j := range v {
		v[j] = int64(1000*r + 100*i + j)
	}
	return v
}

// collRunOnce builds a fresh cluster with both collective contexts
// installed, drives the alternating-group collective workload under the
// scenario's faults, and checks every invariant.
func collRunOnce(sc CollScenario, cfg CollConfig, faulted bool, cleanSpan sim.Time) collOutcome {
	reg := cfg.Metrics
	if reg == nil || !faulted {
		reg = metrics.New()
	}
	ccfg := cluster.DefaultConfig(cfg.Nodes)
	if cfg.Fabric.Valid() {
		ccfg.Fabric = cfg.Fabric
		ccfg.Link = cfg.Fabric.Links
	}
	ccfg.Seed = cfg.Seed
	ccfg.Metrics = reg
	ccfg.Shards = cfg.Shards
	cluster.WithAckEconomy(cfg.AckEvery)(ccfg)
	c := cluster.NewFromConfig(ccfg)
	ports := c.OpenPorts(CollPort)

	// Both groups need the multicast tree (reduce/allgather neighborhoods
	// and the downward result multicasts) alongside the collective entry.
	c.InstallGroup(CollGroupTree, tree.Binomial(0, c.Members()), CollPort, CollPort)
	c.InstallGroup(CollGroupRing, tree.Binomial(0, c.Members()), CollPort, CollPort)
	readyTree := c.InstallCollGroup(CollGroupTree, c.Members(), CollPort)
	readyRing := c.InstallCollGroup(CollGroupRing, c.Members(), CollPort,
		coll.WithBarrierAlgo(coll.BarrierTree), coll.WithGatherAlgo(coll.GatherRing))
	c.Run() // settle both group tables before traffic and fault windows
	var out collOutcome
	if !readyTree() || !readyRing() {
		out.violations = append(out.violations, "collective group installation did not settle")
		c.Kill()
		return out
	}

	var inj *Injector
	if faulted && sc.Inject != nil {
		inj = NewInjector(c.Net, scenarioSeed(cfg.Seed, sc.Name))
		sc.Inject(&CollFault{Inj: inj, Cluster: c, Cfg: cfg, CleanSpan: cleanSpan})
	}

	// Expected results per round: the allreduce sum and the flat
	// allgather concatenation over every member's contribution.
	wantSum := make([][]int64, cfg.Rounds)
	wantFlat := make([][]int64, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		wantSum[r] = make([]int64, cfg.Veclen)
		for i := 0; i < cfg.Nodes; i++ {
			v := collVec(r, i, cfg.Veclen)
			wantFlat[r] = append(wantFlat[r], v...)
			for j := range v {
				wantSum[r][j] += v[j]
			}
		}
	}

	nodeViol := make([][]string, cfg.Nodes)
	finish := make([]sim.Time, cfg.Nodes)
	before := reg.Snapshot()
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		c.SpawnOn(fabric.NodeID(i), "coll-chaos", func(p *sim.Proc) {
			nd := c.Nodes[i]
			for r := 0; r < cfg.Rounds; r++ {
				gid := CollGroupTree
				if r%2 == 1 {
					gid = CollGroupRing
				}
				// Rotating per-round skew so a different member is last
				// into every barrier.
				p.Compute(sim.Micros(float64(((i + r) % cfg.Nodes) * 11)))
				nd.Coll.Barrier(p, ports[i], gid)

				if i != 0 {
					// The root multicasts the allreduce result down the
					// tree; size a receive token for it before entering.
					ports[i].Provide(8 * cfg.Veclen)
				}
				sum := nd.Coll.Allreduce(p, ports[i], gid, collVec(r, i, cfg.Veclen), coll.OpSum)
				if !vecEqual(sum, wantSum[r]) {
					nodeViol[i] = append(nodeViol[i], fmt.Sprintf(
						"node %d round %d: allreduce = %v, want %v", i, r, sum, wantSum[r]))
				}

				flat := nd.Coll.Allgather(p, ports[i], gid, collVec(r, i, cfg.Veclen))
				if !vecEqual(flat, wantFlat[r]) {
					nodeViol[i] = append(nodeViol[i], fmt.Sprintf(
						"node %d round %d: allgather result corrupted", i, r))
				}
			}
			finish[i] = p.Now()
		})
	}
	c.RunUntil(cfg.Deadline)

	for _, t := range finish {
		if t > out.finish {
			out.finish = t
		}
	}
	for _, vs := range nodeViol {
		out.violations = append(out.violations, vs...)
	}
	d := reg.Snapshot().Diff(before)
	out.violations = append(out.violations, CheckCollRun(c, ccfg, ports, d, cfg.Deadline)...)
	out.drops = d.CounterSum("net", "dropped")
	out.dups = d.CounterSum("net", "duplicated")
	out.pausedDrops = d.CounterSum("lanai", "rx_paused_drops")
	out.retransmits = d.CounterSum("coll", "retransmits") +
		d.CounterSum("core", "retransmits") + d.CounterSum("gm", "retransmits")
	out.collDups = d.CounterSum("coll", "duplicates")
	if inj != nil {
		out.rules = inj.RuleHits()
	}

	c.Kill()
	return out
}

func vecEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckCollRun evaluates the collective invariant set against a finished
// run: full-cluster quiescence, NIC/port resource return, the collective
// engine's own state (no unacked records, no armed retransmit timers, no
// open barrier/reduce/allgather instances), and fabric packet
// conservation. diff must be the run's metrics delta on a registry
// private to the run. Exported so other harnesses can hold collective
// workloads to the same bar.
func CheckCollRun(c *cluster.Cluster, ccfg *cluster.Config, ports []*gm.Port, diff metrics.Snapshot, deadline sim.Time) []string {
	var v []string
	v = append(v, checkQuiescence(c, Config{Deadline: deadline})...)
	v = append(v, checkResources(c, ports, ccfg)...)
	v = append(v, checkCollState(c)...)
	injected := diff.CounterSum("net", "injected")
	duplicated := diff.CounterSum("net", "duplicated")
	delivered := diff.CounterSum("net", "delivered")
	dropped := diff.CounterSum("net", "dropped")
	if injected+duplicated != delivered+dropped {
		v = append(v, fmt.Sprintf(
			"fabric accounting broken: injected %d + duplicated %d != delivered %d + dropped %d",
			injected, duplicated, delivered, dropped))
	}
	return v
}

// checkCollState verifies every NIC's collective engine drained: stop-
// and-wait recovery must leave no unacked records, no armed timers, and
// no open collective instances behind.
func checkCollState(c *cluster.Cluster) []string {
	var v []string
	for i, n := range c.Nodes {
		if n.Coll == nil {
			continue
		}
		if s := n.Coll.DebugLeaks(); s != "" {
			v = append(v, fmt.Sprintf("node %d: leaked collective state: %s", i, s))
		}
		if r := n.Coll.Outstanding(); r != 0 {
			v = append(v, fmt.Sprintf("node %d: %d unacked collective records", i, r))
		}
		if t := n.Coll.PendingTimers(); t != 0 {
			v = append(v, fmt.Sprintf("node %d: %d collective retransmit timers still armed", i, t))
		}
	}
	return v
}
