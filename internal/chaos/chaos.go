// Package chaos is a deterministic, scenario-scripted fault-injection
// subsystem for the simulated Myrinet/GM stack. It layers named, scheduled
// fault rules over the fabric's injection hooks (fabric.DropFn for loss,
// plus the DupFn duplication and DelayFn reordering hooks) and the NIC's
// Pause/Resume firmware-reload hook, then drives measurement campaigns
// that assert a reliability invariant set after every run: each receiver
// got every byte exactly once and in order, sender buffers were fully
// released, no lanai packet buffers or retransmit timers leaked, and the
// fabric's packet accounting balances.
//
// Everything is deterministic: rules draw randomness from a private RNG
// seeded per scenario, so two campaigns with the same seed produce
// byte-identical results — the property that lets a recovery-path bug be
// pinned to the exact scenario that exposed it.
package chaos

import (
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/lanai"
	"repro/internal/sim"
)

// ErrShardsStateful is the sentinel a rule-install panics with when the
// fabric is sharded and the rule keeps cross-traversal state (stochastic
// drops, Gilbert-Elliott, every-nth duplication or reordering): hook
// callbacks run on whichever shard owns the link, so a shared RNG or
// counter would be both racy and nondeterministic. Pure time-window rules
// (unconditional drops, every-packet reordering) remain available.
//
// Deprecated: alias of fabric.ErrShardsStateful (the constraint belongs to
// the sharded fabric, not this package); errors.Is works against either.
var ErrShardsStateful = fabric.ErrShardsStateful

// Match selects the packets/link traversals a rule applies to.
type Match func(p *fabric.Packet, l *fabric.Link) bool

// MatchAll applies a rule to every traversal.
func MatchAll(*fabric.Packet, *fabric.Link) bool { return true }

// MatchNode matches packets sourced by or destined to one node — dropping
// them isolates the node from the fabric.
func MatchNode(id fabric.NodeID) Match {
	return func(p *fabric.Packet, _ *fabric.Link) bool {
		return p.Src == id || p.Dst == id
	}
}

// MatchHostLink matches traversals of the links attaching one host (either
// direction) — a cable fault rather than a node fault.
func MatchHostLink(id fabric.NodeID) Match {
	return func(_ *fabric.Packet, l *fabric.Link) bool { return l.Touches(id) }
}

// MatchSwitch matches traversals of any link touching the named switch
// vertex (e.g. "xbar0") — a crossbar failure.
func MatchSwitch(label string) Match {
	return func(_ *fabric.Packet, l *fabric.Link) bool {
		return l.FromLabel() == label || l.ToLabel() == label
	}
}

// MatchData matches data-bearing frames (unicast, directed, multicast),
// leaving control traffic untouched.
func MatchData(p *fabric.Packet, _ *fabric.Link) bool {
	fr, ok := p.Payload.(*gm.Frame)
	if !ok {
		return false
	}
	switch fr.Kind {
	case gm.KindData, gm.KindDirected, gm.KindMcastData:
		return true
	}
	return false
}

// MatchAcks matches acknowledgment and nack frames — losing these
// exercises the duplicate-detection and re-ack paths.
func MatchAcks(p *fabric.Packet, _ *fabric.Link) bool {
	fr, ok := p.Payload.(*gm.Frame)
	if !ok {
		return false
	}
	switch fr.Kind {
	case gm.KindAck, gm.KindMcastAck, gm.KindNack, gm.KindMcastNack:
		return true
	}
	return false
}

// window is a half-open activity interval [from, until); until zero means
// no end.
type window struct{ from, until sim.Time }

func (w window) contains(t sim.Time) bool {
	return t >= w.from && (w.until == 0 || t < w.until)
}

// dropRule drops matched traversals inside its window, always (prob 1) or
// stochastically; step, when non-nil, replaces the probability with a
// stateful per-traversal decision (Gilbert–Elliott).
type dropRule struct {
	name  string
	win   window
	match Match
	prob  float64
	step  func() bool
	hits  atomic.Uint64
}

// dupRule duplicates every nth matched packet inside its window.
type dupRule struct {
	name  string
	win   window
	match Match
	every int
	seen  int
	hits  atomic.Uint64
}

// delayRule holds back every nth matched packet by delay — bounded
// reordering: the held packet arrives after later ones overtake it.
type delayRule struct {
	name  string
	win   window
	match Match
	every int
	delay sim.Time
	seen  int
	hits  atomic.Uint64
}

// Injector owns a fabric's fault-injection hooks. Create one per cluster
// with NewInjector; add rules before (or during) the run.
type Injector struct {
	net *fabric.Network
	eng *sim.Engine
	rng *sim.RNG

	drops  []*dropRule
	dups   []*dupRule
	delays []*delayRule
}

// NewInjector installs a fresh injector as the fabric's DropFn, DupFn, and
// DelayFn. seed feeds the injector's private randomness (stochastic rules),
// independent of the cluster's RNG so adding a rule never perturbs
// unrelated stochastic behaviour.
func NewInjector(net *fabric.Network, seed int64) *Injector {
	inj := &Injector{net: net, eng: net.Engine(), rng: sim.NewRNG(seed)}
	net.DropFn = inj.drop
	net.DupFn = inj.dup
	net.DelayFn = inj.delay
	return inj
}

// DropWindow drops every matched traversal inside [from, until).
func (in *Injector) DropWindow(name string, from, until sim.Time, match Match) {
	in.drops = append(in.drops, &dropRule{
		name: name, win: window{from, until}, match: match, prob: 1,
	})
}

// DropProb drops matched traversals with the given probability inside
// [from, until) (until 0 = forever).
func (in *Injector) DropProb(name string, from, until sim.Time, prob float64, match Match) {
	if prob < 1 && in.net.Shards() > 1 {
		panic(ErrShardsStateful)
	}
	in.drops = append(in.drops, &dropRule{
		name: name, win: window{from, until}, match: match, prob: prob,
	})
}

// GilbertElliott installs the classic two-state burst-loss channel over
// matched traversals: a good state with light loss and a bad state with
// heavy loss, with per-traversal transition probabilities pGoodBad and
// pBadGood. One state machine covers all matched links, which correlates
// losses across a burst the way a real interference event does.
func (in *Injector) GilbertElliott(name string, pGoodBad, pBadGood, lossGood, lossBad float64, match Match) {
	if in.net.Shards() > 1 {
		panic(ErrShardsStateful)
	}
	bad := false
	step := func() bool {
		if bad {
			if in.rng.Bernoulli(pBadGood) {
				bad = false
			}
		} else if in.rng.Bernoulli(pGoodBad) {
			bad = true
		}
		if bad {
			return in.rng.Bernoulli(lossBad)
		}
		return in.rng.Bernoulli(lossGood)
	}
	in.drops = append(in.drops, &dropRule{
		name: name, win: window{}, match: match, step: step,
	})
}

// Duplicate delivers a second copy of every nth matched packet inside
// [from, until).
func (in *Injector) Duplicate(name string, from, until sim.Time, every int, match Match) {
	if in.net.Shards() > 1 {
		// Even every=1 duplication is off-limits sharded: the fabric's
		// duplicate-delivery closure cannot cross a shard boundary.
		panic(ErrShardsStateful)
	}
	if every < 1 {
		every = 1
	}
	in.dups = append(in.dups, &dupRule{
		name: name, win: window{from, until}, match: match, every: every,
	})
}

// Reorder holds every nth matched packet back by delay inside [from,
// until), letting later packets overtake it — bounded reordering.
func (in *Injector) Reorder(name string, from, until sim.Time, every int, delay sim.Time, match Match) {
	if every > 1 && in.net.Shards() > 1 {
		panic(ErrShardsStateful)
	}
	if every < 1 {
		every = 1
	}
	in.delays = append(in.delays, &delayRule{
		name: name, win: window{from, until}, match: match, every: every, delay: delay,
	})
}

// PauseNIC schedules a firmware reload on hw: the NIC goes deaf at from
// and recovers at until. The events go to the NIC's own engine under its
// node's key domain, so the reload lands identically on serial and sharded
// clusters.
func (in *Injector) PauseNIC(hw *lanai.NIC, from, until sim.Time) {
	dom := in.net.HostDomain(hw.ID)
	hw.Eng.AtDomain(dom, from, hw.Pause)
	hw.Eng.AtDomain(dom, until, hw.Resume)
}

// RuleHits reports per-rule activation counts in rule-installation order,
// for the campaign report.
func (in *Injector) RuleHits() []RuleHit {
	var out []RuleHit
	for _, r := range in.drops {
		out = append(out, RuleHit{Name: r.name, Kind: "drop", Hits: r.hits.Load()})
	}
	for _, r := range in.dups {
		out = append(out, RuleHit{Name: r.name, Kind: "dup", Hits: r.hits.Load()})
	}
	for _, r := range in.delays {
		out = append(out, RuleHit{Name: r.name, Kind: "delay", Hits: r.hits.Load()})
	}
	return out
}

// RuleHit is one rule's activation count.
type RuleHit struct {
	Name string
	Kind string
	Hits uint64
}

// drop implements fabric.DropFn over the installed rules. Stochastic
// rules consume randomness only when their window and match apply, so
// adding an inert rule never shifts another rule's stream.
// Hooks read the clock of the shard that owns the link (LinkNow): within a
// synchronization window the shards' clocks legitimately differ, and the
// traversal's own shard is the only one whose time is meaningful here.
func (in *Injector) drop(p *fabric.Packet, l *fabric.Link) bool {
	now := in.net.LinkNow(l)
	for _, r := range in.drops {
		if !r.win.contains(now) || !r.match(p, l) {
			continue
		}
		lost := false
		switch {
		case r.step != nil:
			lost = r.step()
		case r.prob >= 1:
			lost = true
		default:
			lost = in.rng.Bernoulli(r.prob)
		}
		if lost {
			r.hits.Add(1)
			return true
		}
	}
	return false
}

// dup implements fabric.DupFn over the installed rules.
func (in *Injector) dup(p *fabric.Packet, l *fabric.Link) bool {
	now := in.net.LinkNow(l)
	for _, r := range in.dups {
		if !r.win.contains(now) || !r.match(p, l) {
			continue
		}
		r.seen++
		if r.seen%r.every == 0 {
			r.hits.Add(1)
			return true
		}
	}
	return false
}

// delay implements fabric.DelayFn over the installed rules; concurrent
// rules add up.
func (in *Injector) delay(p *fabric.Packet, l *fabric.Link) sim.Time {
	now := in.net.LinkNow(l)
	var total sim.Time
	for _, r := range in.delays {
		if !r.win.contains(now) || !r.match(p, l) {
			continue
		}
		if r.every == 1 {
			// Stateless fast path — the form permitted on sharded fabrics.
			r.hits.Add(1)
			total += r.delay
			continue
		}
		r.seen++
		if r.seen%r.every == 0 {
			r.hits.Add(1)
			total += r.delay
		}
	}
	return total
}
