package chaos_test

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

func testConfig() chaos.Config {
	return chaos.Config{Nodes: 8, Msgs: 10, Size: 10000, Seed: 7}
}

// TestLibraryScenariosPass runs every library scenario through the full
// invariant checker: exactly-once in-order delivery at every receiver,
// all buffers and tokens returned, no leaked timers, balanced fabric
// accounting.
func TestLibraryScenariosPass(t *testing.T) {
	lib := chaos.Library()
	if len(lib) < 8 {
		t.Fatalf("scenario library has %d scenarios, want at least 8", len(lib))
	}
	for _, sc := range lib {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunScenario(sc, testConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker", sc.Name)
			}
		})
	}
}

// TestScenariosActuallyInject guards against a library scenario whose
// fault window silently misses the traffic — a pass proves nothing if no
// fault ever engaged.
func TestScenariosActuallyInject(t *testing.T) {
	for _, sc := range chaos.Library() {
		res := chaos.RunScenario(sc, testConfig())
		var ruleHits uint64
		for _, r := range res.Rules {
			ruleHits += r.Hits
		}
		if ruleHits+res.PausedDrops == 0 {
			t.Errorf("scenario %s: no fault rule ever fired (window misses the traffic?)", sc.Name)
		}
	}
}

// TestScenarioRecoveryCost checks that a disruptive outage actually costs
// recovery time relative to the clean baseline — the recovery-latency
// column is measuring something real.
func TestScenarioRecoveryCost(t *testing.T) {
	sc, ok := chaos.Find("interior-kill")
	if !ok {
		t.Fatal("interior-kill scenario missing from library")
	}
	res := chaos.RunScenario(sc, testConfig())
	if !res.Pass {
		t.Fatalf("interior-kill failed: %v", res.Violations)
	}
	if res.Drops == 0 {
		t.Fatal("interior-kill dropped nothing")
	}
	if res.Recovery <= 0 {
		t.Fatalf("interior-kill recovery latency %v, want > 0 (clean %v, faulted %v)",
			res.Recovery, res.CleanFinish, res.FaultFinish)
	}
	if res.Retransmits == 0 {
		t.Fatal("interior-kill recovered without retransmits — fault never bit")
	}
}

// TestScenarioDeterminism runs the most stochastic scenario twice with the
// same seed and requires identical results, and a third time with another
// seed to show the seed actually steers the fault stream.
func TestScenarioDeterminism(t *testing.T) {
	sc, ok := chaos.Find("burst-loss")
	if !ok {
		t.Fatal("burst-loss scenario missing from library")
	}
	a := chaos.RunScenario(sc, testConfig())
	b := chaos.RunScenario(sc, testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
	cfg := testConfig()
	cfg.Seed = 8
	c := chaos.RunScenario(sc, cfg)
	if c.Drops == a.Drops && c.FaultFinish == a.FaultFinish {
		t.Fatalf("different seeds produced identical drop count %d and finish %v — seed ignored",
			a.Drops, a.FaultFinish)
	}
}

// TestDegenerateTreeFallback exercises the InteriorNode fallback on a
// cluster too small to have interior nodes.
func TestDegenerateTreeFallback(t *testing.T) {
	sc, ok := chaos.Find("interior-kill")
	if !ok {
		t.Fatal("interior-kill scenario missing from library")
	}
	cfg := testConfig()
	cfg.Nodes = 2 // root plus one leaf: no interior nodes exist
	res := chaos.RunScenario(sc, cfg)
	if !res.Pass {
		t.Fatalf("interior-kill on 2 nodes failed: %v", res.Violations)
	}
}

// TestBaselineCleanRun pins the fault-free path: a nil Inject must pass
// with zero fault traffic and zero recovery latency.
func TestBaselineCleanRun(t *testing.T) {
	res := chaos.RunScenario(chaos.Scenario{Name: "baseline"}, testConfig())
	if !res.Pass {
		t.Fatalf("baseline failed: %v", res.Violations)
	}
	if res.Drops != 0 || res.Dups != 0 || res.Retransmits != 0 {
		t.Fatalf("baseline saw fault traffic: drops=%d dups=%d retransmits=%d",
			res.Drops, res.Dups, res.Retransmits)
	}
	if res.Recovery != 0 {
		t.Fatalf("baseline recovery latency %v, want 0", res.Recovery)
	}
}

// TestDeadlineFailureDetected proves the checker can fail: a permanent
// outage of a receiver must be reported as a missed deadline, not papered
// over.
func TestDeadlineFailureDetected(t *testing.T) {
	sc := chaos.Scenario{
		Name: "permanent-kill",
		Inject: func(f *chaos.Fault) {
			f.Inj.DropWindow("forever", 100*sim.Microsecond, 0, chaos.MatchNode(f.LeafNode()))
		},
	}
	cfg := testConfig()
	cfg.Deadline = 20 * sim.Millisecond // keep the doomed run short
	res := chaos.RunScenario(sc, cfg)
	if res.Pass {
		t.Fatal("permanently-isolated receiver still passed the invariant checker")
	}
}
