package chaos_test

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
)

func collTestConfig() chaos.CollConfig {
	return chaos.CollConfig{Nodes: 8, Rounds: 4, Veclen: 4, Seed: 7}
}

// TestCollLibraryScenariosPass runs every collective scenario through the
// full invariant checker: correct allreduce/allgather results at every
// node every round, quiescence, no leaked collective records or timers,
// all NIC resources returned, balanced fabric accounting.
func TestCollLibraryScenariosPass(t *testing.T) {
	lib := chaos.CollLibrary()
	if len(lib) < 5 {
		t.Fatalf("collective scenario library has %d scenarios, want at least 5", len(lib))
	}
	for _, sc := range lib {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunCollScenario(sc, collTestConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker", sc.Name)
			}
		})
	}
}

// TestCollScenariosActuallyInject guards against a scenario whose fault
// window silently misses the collective traffic.
func TestCollScenariosActuallyInject(t *testing.T) {
	for _, sc := range chaos.CollLibrary() {
		res := chaos.RunCollScenario(sc, collTestConfig())
		var ruleHits uint64
		for _, r := range res.Rules {
			ruleHits += r.Hits
		}
		if ruleHits+res.PausedDrops == 0 {
			t.Errorf("scenario %s: no fault rule ever fired (window misses the traffic?)", sc.Name)
		}
	}
}

// TestCollRecoveryExercised pins that the headline scenarios actually
// drive the recovery machinery they claim to: burst loss must force
// stop-and-wait retransmissions, and the dup storm must be absorbed by
// the engine's duplicate rejection.
func TestCollRecoveryExercised(t *testing.T) {
	sc, ok := chaos.FindColl("coll-barrier-burst-loss")
	if !ok {
		t.Fatal("coll-barrier-burst-loss missing from library")
	}
	res := chaos.RunCollScenario(sc, collTestConfig())
	if !res.Pass {
		t.Fatalf("coll-barrier-burst-loss failed: %v", res.Violations)
	}
	if res.Drops == 0 {
		t.Fatal("coll-barrier-burst-loss dropped nothing")
	}
	if res.Retransmits == 0 {
		t.Fatal("coll-barrier-burst-loss recovered without retransmits — fault never bit")
	}

	sc, ok = chaos.FindColl("coll-reduce-dup-storm")
	if !ok {
		t.Fatal("coll-reduce-dup-storm missing from library")
	}
	res = chaos.RunCollScenario(sc, collTestConfig())
	if !res.Pass {
		t.Fatalf("coll-reduce-dup-storm failed: %v", res.Violations)
	}
	if res.Dups == 0 {
		t.Fatal("coll-reduce-dup-storm duplicated nothing")
	}
	if res.CollDups == 0 {
		t.Fatal("dup storm produced no engine-side duplicate rejections")
	}
}

// TestCollScenarioDeterminism runs the most stochastic collective
// scenario twice with the same seed and requires identical results, and
// once more with another seed to show the seed steers the fault stream.
func TestCollScenarioDeterminism(t *testing.T) {
	sc, ok := chaos.FindColl("coll-bursty-links")
	if !ok {
		t.Fatal("coll-bursty-links missing from library")
	}
	a := chaos.RunCollScenario(sc, collTestConfig())
	b := chaos.RunCollScenario(sc, collTestConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
	cfg := collTestConfig()
	cfg.Seed = 9
	c := chaos.RunCollScenario(sc, cfg)
	if c.Drops == a.Drops && c.FaultFinish == a.FaultFinish {
		t.Fatalf("different seeds produced identical drop count %d and finish %v — seed ignored",
			a.Drops, a.FaultFinish)
	}
}

// TestCollBaselineCleanRun pins the fault-free path: a nil Inject must
// pass with zero fault traffic and zero recovery latency.
func TestCollBaselineCleanRun(t *testing.T) {
	res := chaos.RunCollScenario(chaos.CollScenario{Name: "baseline"}, collTestConfig())
	if !res.Pass {
		t.Fatalf("baseline failed: %v", res.Violations)
	}
	if res.Drops != 0 || res.Dups != 0 || res.Retransmits != 0 {
		t.Fatalf("baseline saw fault traffic: drops=%d dups=%d retransmits=%d",
			res.Drops, res.Dups, res.Retransmits)
	}
	if res.Recovery != 0 {
		t.Fatalf("baseline recovery latency %v, want 0", res.Recovery)
	}
}

// TestCollShardedStatelessScenario runs a stateless collective scenario
// on a sharded cluster and requires the same verdict and finish time as
// the serial run — the campaign's reproducibility contract extends to
// the parallel engine.
func TestCollShardedStatelessScenario(t *testing.T) {
	sc, ok := chaos.FindColl("coll-barrier-burst-loss")
	if !ok {
		t.Fatal("coll-barrier-burst-loss missing from library")
	}
	serial := chaos.RunCollScenario(sc, collTestConfig())
	cfg := collTestConfig()
	cfg.Shards = 2
	sharded := chaos.RunCollScenario(sc, cfg)
	if !sharded.Pass {
		t.Fatalf("sharded run failed: %v", sharded.Violations)
	}
	if serial.FaultFinish != sharded.FaultFinish || serial.Drops != sharded.Drops {
		t.Fatalf("sharded run diverged from serial: finish %v vs %v, drops %d vs %d",
			sharded.FaultFinish, serial.FaultFinish, sharded.Drops, serial.Drops)
	}
}
