package chaos_test

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

func memberConfig() chaos.MemberConfig {
	return chaos.MemberConfig{Nodes: 8, Msgs: 16, Size: 4096, Transitions: 10, Seed: 7}
}

// Every membership scenario must satisfy the membership invariant (each
// payload delivered exactly once, in order, to exactly its epoch's
// members) plus the full quiescence/resource/accounting invariant set —
// including churn-under-loss, the ISSUE's required Gilbert–Elliott run
// with at least 8 transitions.
func TestMemberLibraryScenariosPass(t *testing.T) {
	lib := chaos.MemberLibrary()
	if len(lib) < 4 {
		t.Fatalf("membership scenario library has %d scenarios, want at least 4", len(lib))
	}
	for _, sc := range lib {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunMemberScenario(sc, memberConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker", sc.Name)
			}
			// Finalize always commits, so a full run records more epochs
			// than the initial one alone.
			if res.Epochs < 2 {
				t.Fatalf("scenario %s committed only %d epochs — churn never ran", sc.Name, res.Epochs)
			}
		})
	}
}

// The loss scenarios must actually engage their faults while the group
// churns, and the ISSUE's transition floor must hold.
func TestMemberScenariosActuallyInject(t *testing.T) {
	cfg := memberConfig()
	if cfg.Transitions < 8 {
		t.Fatalf("campaign config schedules %d transitions, ISSUE floor is 8", cfg.Transitions)
	}
	for _, sc := range chaos.MemberLibrary() {
		if sc.Inject == nil {
			continue
		}
		res := chaos.RunMemberScenario(sc, cfg)
		var ruleHits uint64
		for _, r := range res.Rules {
			ruleHits += r.Hits
		}
		if ruleHits == 0 && sc.Name != "churn-coordinator-outage" {
			t.Errorf("scenario %s: no fault rule ever fired", sc.Name)
		}
		if sc.Name == "churn-under-loss" && res.Drops == 0 {
			t.Errorf("churn-under-loss dropped nothing — the burst channel missed the run")
		}
	}
}

// Regression: PauseNIC events armed before member.RunOn must fire DURING
// the run, not during the install barrier. RunOn's phase-1 quiescence
// used to drain the whole event heap, so the coordinator-outage pause
// (300µs–1ms) fired before any membership process existed and the
// scenario quietly ran fault-free — unnoticed because PauseNIC is not a
// hit-counted rule. The schedule explorer surfaced it (a pause that
// outlasted the deadline still "passed"). A faulted run that truly hits
// a 1ms outage cannot finish before the NIC resumes.
func TestCoordinatorOutageOverlapsRun(t *testing.T) {
	sc, ok := chaos.FindMember("churn-coordinator-outage")
	if !ok {
		t.Fatal("churn-coordinator-outage missing from membership library")
	}
	res := chaos.RunMemberScenario(sc, memberConfig())
	if !res.Pass {
		t.Fatalf("scenario failed: %v", res.Violations)
	}
	const pauseEnd = sim.Millisecond
	if res.FaultFinish < pauseEnd {
		t.Fatalf("faulted run finished at %v, before the outage lifted at %v — the pause never overlapped the run",
			res.FaultFinish, pauseEnd)
	}
	if res.FaultFinish <= res.CleanFinish {
		t.Fatalf("faulted finish %v not after clean finish %v — the outage cost nothing",
			res.FaultFinish, res.CleanFinish)
	}
}

// Same seed, same verdict — the membership campaigns must be exactly
// reproducible, faults and all.
func TestMemberScenarioDeterminism(t *testing.T) {
	sc, ok := chaos.FindMember("churn-under-loss")
	if !ok {
		t.Fatal("churn-under-loss missing from membership library")
	}
	a := chaos.RunMemberScenario(sc, memberConfig())
	b := chaos.RunMemberScenario(sc, memberConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
	cfg := memberConfig()
	cfg.Seed = 8
	c := chaos.RunMemberScenario(sc, cfg)
	if c.Drops == a.Drops && c.FaultFinish == a.FaultFinish {
		t.Fatalf("different seeds produced identical drops %d and finish %v — seed ignored",
			a.Drops, a.FaultFinish)
	}
}

// The epoch filters must be reached end-to-end, not just in the core
// unit tests: under bursty loss, a retransmitted or delayed frame can
// arrive at a node that has not yet committed the sender's epoch and be
// dropped by the future-epoch rule until the commit lands. Whether a
// given run opens that window depends on where the burst channel bites,
// so this sweeps a few seeds and requires the rejection path to fire at
// least once across them (the stale-epoch and acked-as-dropped rules
// are pinned directly by internal/core's epoch tests).
func TestMemberEpochFiltersEngage(t *testing.T) {
	sc, ok := chaos.FindMember("churn-under-loss")
	if !ok {
		t.Fatal("churn-under-loss missing from membership library")
	}
	var filtered uint64
	for seed := int64(1); seed <= 4 && filtered == 0; seed++ {
		cfg := memberConfig()
		cfg.Seed = seed
		res := chaos.RunMemberScenario(sc, cfg)
		if !res.Pass {
			t.Fatalf("seed %d: churn-under-loss failed: %v", seed, res.Violations)
		}
		filtered += res.StaleEpochDrops + res.FutureDrops + res.AckedAsDropped
	}
	if filtered == 0 {
		t.Error("no seed ever exercised the epoch rejection path under churn+loss")
	}
}
