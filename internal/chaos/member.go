package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/member"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The GM endpoints membership campaigns use: data on one port, the
// membership protocol on another.
const (
	MemberDataPort gm.PortID = 1
	MemberCtrlPort gm.PortID = 2
)

// MemberConfig parameterizes one membership scenario run.
type MemberConfig struct {
	// Nodes is the cluster size; Msgs multicasts of Size bytes stream from
	// the root while Transitions join/leave requests churn the group.
	Nodes       int
	Msgs        int
	Size        int
	Transitions int
	Fanout      int

	// Seed feeds the cluster RNG, the churn-plan RNG, and (hashed with the
	// scenario name) the fault injector — same seed, same everything.
	Seed int64

	// Deadline bounds each run in virtual time. Churn runs outlast static
	// ones (every transition is a cluster-wide barrier), so the default is
	// a full simulated second.
	Deadline sim.Time

	// Metrics optionally receives the faulted run's instrument traffic.
	// The checks always use a private snapshot diff; a shared registry is
	// unsynchronized and forces serial campaigns.
	Metrics *metrics.Registry

	// Shards runs each scenario's clusters on a conservative parallel
	// engine (0 or 1 = serial); stateless fault rules only, as with
	// Config.Shards.
	Shards int

	// Fabric selects the interconnect backend (zero value: Myrinet), as
	// with Config.Fabric.
	Fabric fabric.Config
}

func (c MemberConfig) withDefaults() MemberConfig {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Msgs <= 0 {
		c.Msgs = 20
	}
	if c.Size <= 0 {
		c.Size = 4096
	}
	if c.Transitions <= 0 {
		// The ISSUE's floor: at least 8 membership transitions under fire.
		c.Transitions = 10
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = sim.Second
	}
	return c
}

// MemberScenario is one named fault script for a membership run.
type MemberScenario struct {
	Name string
	Desc string

	Nacks    bool
	Adaptive bool

	Inject func(f *MemberFault)
}

// MemberFault is the context a membership scenario's Inject runs in. The
// group's tree changes every epoch, so unlike Fault there is no stable
// tree to aim at — faults target nodes, links, or the whole fabric.
type MemberFault struct {
	Inj     *Injector
	Cluster *cluster.Cluster
	Cfg     MemberConfig
	Root    fabric.NodeID
}

// MemberLibrary returns the membership scenario set, in fixed order.
func MemberLibrary() []MemberScenario {
	return []MemberScenario{
		{
			Name: "churn-clean",
			Desc: "fault-free churn: the two-phase epoch roll alone must not disturb delivery",
		},
		{
			Name: "churn-under-loss",
			Desc: "Gilbert–Elliott bursty loss on all links while the group churns",
			Inject: func(f *MemberFault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name:     "churn-under-loss-nacks",
			Desc:     "same bursty channel with nack fast recovery and adaptive RTO",
			Nacks:    true,
			Adaptive: true,
			Inject: func(f *MemberFault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name: "churn-coordinator-outage",
			Desc: "the coordinator's NIC goes deaf for 700µs mid-churn; requests and phase replies must survive on GM's reliable unicast",
			Inject: func(f *MemberFault) {
				f.Inj.PauseNIC(f.Cluster.Nodes[f.Root].HW, 300*sim.Microsecond, sim.Millisecond)
			},
		},
		{
			Name: "churn-dup-storm",
			Desc: "every 3rd packet duplicated all run; stale and duplicate epoch traffic must be rejected, never delivered",
			Inject: func(f *MemberFault) {
				f.Inj.Duplicate("dup3", 0, 0, 3, MatchAll)
			},
		},
	}
}

// FindMember returns the membership scenario with the given name.
func FindMember(name string) (MemberScenario, bool) {
	for _, sc := range MemberLibrary() {
		if sc.Name == name {
			return sc, true
		}
	}
	return MemberScenario{}, false
}

// MemberResult is one membership scenario's verdict.
type MemberResult struct {
	Scenario    string
	Desc        string
	Nodes       int
	Msgs        int
	Transitions int

	Pass       bool
	Violations []string

	CleanFinish sim.Time
	FaultFinish sim.Time
	Recovery    sim.Time

	// Faulted-run observations: committed epochs (including the finalize
	// transition), rejected requests, and the epoch machinery's traffic.
	Epochs          int
	Rejected        int
	Drops           uint64
	Dups            uint64
	Retransmits     uint64
	Timeouts        uint64
	Nacks           uint64
	StaleEpochDrops uint64
	FutureDrops     uint64
	AckedAsDropped  uint64

	Rules []RuleHit
}

// RunMemberScenario executes one membership scenario: a fault-free
// baseline and the faulted run, both checked against the membership
// invariant (every payload multicast in epoch E delivered exactly once,
// in order, to exactly E's members) plus the full-stack quiescence,
// resource, and accounting invariants.
func RunMemberScenario(sc MemberScenario, cfg MemberConfig) MemberResult {
	cfg = cfg.withDefaults()
	clean := memberRunOnce(sc, cfg, false)
	fault := memberRunOnce(sc, cfg, true)

	res := MemberResult{
		Scenario:        sc.Name,
		Desc:            sc.Desc,
		Nodes:           cfg.Nodes,
		Msgs:            cfg.Msgs,
		Transitions:     cfg.Transitions,
		CleanFinish:     clean.finish,
		FaultFinish:     fault.finish,
		Epochs:          fault.epochs,
		Rejected:        fault.rejected,
		Drops:           fault.drops,
		Dups:            fault.dups,
		Retransmits:     fault.retransmits,
		Timeouts:        fault.timeouts,
		Nacks:           fault.nacks,
		StaleEpochDrops: fault.staleDrops,
		FutureDrops:     fault.futureDrops,
		AckedAsDropped:  fault.ackedDropped,
		Rules:           fault.rules,
	}
	if res.FaultFinish > res.CleanFinish {
		res.Recovery = res.FaultFinish - res.CleanFinish
	}
	for _, v := range clean.violations {
		res.Violations = append(res.Violations, "baseline: "+v)
	}
	res.Violations = append(res.Violations, fault.violations...)
	res.Pass = len(res.Violations) == 0
	return res
}

// memberOutcome is one membership run's raw observations.
type memberOutcome struct {
	finish     sim.Time
	violations []string

	epochs, rejected                      int
	drops, dups                           uint64
	retransmits, timeouts, nacks          uint64
	staleDrops, futureDrops, ackedDropped uint64
	rules                                 []RuleHit
}

// memberRunOnce builds a fresh cluster, drives a churn plan through the
// membership subsystem under the scenario's faults, and checks every
// invariant.
func memberRunOnce(sc MemberScenario, cfg MemberConfig, faulted bool) memberOutcome {
	reg := cfg.Metrics
	if reg == nil || !faulted {
		reg = metrics.New()
	}
	ccfg := cluster.DefaultConfig(cfg.Nodes)
	if cfg.Fabric.Valid() {
		ccfg.Fabric = cfg.Fabric
		ccfg.Link = cfg.Fabric.Links
	}
	ccfg.Seed = cfg.Seed
	ccfg.Metrics = reg
	ccfg.Shards = cfg.Shards
	ccfg.GM.EnableNacks = sc.Nacks
	ccfg.GM.AdaptiveRTO = sc.Adaptive
	c := cluster.NewFromConfig(ccfg)

	// The plan derives from the seed alone, so baseline and faulted runs
	// churn identically and differ only in what the fabric does to them.
	plan, err := workload.GenerateChurn(workload.ChurnSpec{
		Nodes:        cfg.Nodes,
		Transitions:  cfg.Transitions,
		Msgs:         cfg.Msgs,
		MeanSize:     cfg.Size,
		MeanGap:      15 * sim.Microsecond,
		MeanChurnGap: 60 * sim.Microsecond,
	}, sim.NewRNG(scenarioSeed(cfg.Seed, "member-plan")))
	if err != nil {
		return memberOutcome{violations: []string{err.Error()}}
	}

	var inj *Injector
	if faulted && sc.Inject != nil {
		inj = NewInjector(c.Net, scenarioSeed(cfg.Seed, sc.Name))
		sc.Inject(&MemberFault{Inj: inj, Cluster: c, Cfg: cfg, Root: fabric.NodeID(plan.Root)})
	}

	data := c.OpenPorts(MemberDataPort)
	ctrl := c.OpenPorts(MemberCtrlPort)
	before := reg.Snapshot()
	res := member.RunOn(c, member.Config{
		DataPort: MemberDataPort,
		CtrlPort: MemberCtrlPort,
		Fanout:   cfg.Fanout,
		Deadline: cfg.Deadline,
	}, plan, data, ctrl)

	var out memberOutcome
	out.finish = res.Finish
	out.epochs = len(res.Epochs)
	out.rejected = res.Rejected
	d := reg.Snapshot().Diff(before)
	out.violations = append(out.violations, CheckMemberRun(c, ccfg, res, data, ctrl, d, cfg.Deadline)...)
	out.drops = d.CounterSum("net", "dropped")
	out.dups = d.CounterSum("net", "duplicated")
	out.retransmits = d.CounterSum("core", "retransmits") + d.CounterSum("gm", "retransmits")
	out.timeouts = d.CounterSum("core", "timeouts") + d.CounterSum("gm", "timeouts")
	out.nacks = d.CounterSum("core", "mcast_nacks_sent") + d.CounterSum("gm", "nacks_sent")
	out.staleDrops = d.CounterSum("core", "stale_epoch_drops")
	out.futureDrops = d.CounterSum("core", "future_epoch_drops")
	out.ackedDropped = d.CounterSum("core", "acked_as_dropped")
	if inj != nil {
		out.rules = inj.RuleHits()
	}

	c.Kill()
	return out
}

// CheckMemberRun evaluates the full membership invariant set against a
// finished run: the membership invariant itself (Result.Verify — every
// payload multicast in epoch E delivered exactly once, in order, to
// exactly E's members), cluster quiescence (no blocked procs, no leaked
// timers), NIC/port resource return on both the data and control ports,
// and the delivery-derived packet-accounting census. diff must be the
// run's metrics delta (Snapshot().Diff(before)) on a registry private to
// the run. It is the checker the chaos campaigns apply after every
// scenario, exported so the schedule explorer can hold every permuted
// trace to exactly the same bar.
func CheckMemberRun(c *cluster.Cluster, ccfg *cluster.Config, res *member.Result, data, ctrl []*gm.Port, diff metrics.Snapshot, deadline sim.Time) []string {
	var v []string
	v = append(v, res.Verify()...)
	v = append(v, checkQuiescence(c, Config{Deadline: deadline})...)
	v = append(v, checkResources(c, data, ccfg)...)
	for i, p := range ctrl {
		if got, want := p.FreeSendTokens(), ccfg.GM.SendTokens; got != want {
			v = append(v, fmt.Sprintf(
				"node %d: %d/%d control send tokens not returned", i, want-got, want))
		}
		if r := p.PendingRecvs(); r != 0 {
			v = append(v, fmt.Sprintf(
				"node %d: %d control deliveries never consumed", i, r))
		}
	}
	v = append(v, checkMemberAccounting(diff, res, ccfg)...)
	return v
}

// ScenarioSeed mixes a campaign seed with a scenario name (FNV-1a), the
// derivation every chaos run uses to give each scenario an independent
// but reproducible fault stream. Exported for the schedule explorer,
// which derives its churn-plan and fault seeds the same way.
func ScenarioSeed(seed int64, name string) int64 { return scenarioSeed(seed, name) }

// checkMemberAccounting verifies the fabric conserved packets and that
// the NICs accepted exactly the packets of the deliveries the membership
// ground truth prescribes — acked-as-dropped rejections must not leak
// into the accepted count.
func checkMemberAccounting(d metrics.Snapshot, res *member.Result, ccfg *cluster.Config) []string {
	var v []string
	injected := d.CounterSum("net", "injected")
	duplicated := d.CounterSum("net", "duplicated")
	delivered := d.CounterSum("net", "delivered")
	dropped := d.CounterSum("net", "dropped")
	if injected+duplicated != delivered+dropped {
		v = append(v, fmt.Sprintf(
			"fabric accounting broken: injected %d + duplicated %d != delivered %d + dropped %d",
			injected, duplicated, delivered, dropped))
	}
	if res.Finish == 0 {
		return v // incomplete run: the packet census is meaningless
	}
	var want uint64
	for _, ds := range res.Deliveries {
		for _, del := range ds {
			size := member.SentinelSize
			if int(del.Idx) < len(res.SendSize) {
				size = res.SendSize[del.Idx]
			}
			want += uint64(ccfg.GM.Packets(size))
		}
	}
	if got := d.CounterSum("core", "mcast_received"); got != want {
		v = append(v, fmt.Sprintf(
			"NICs accepted %d multicast packets, the recorded deliveries require exactly %d", got, want))
	}
	return v
}
