package chaos

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Port and Group are the GM endpoint ids every campaign uses.
const (
	Port  gm.PortID  = 1
	Group gm.GroupID = 1
)

// Config parameterizes one scenario run. The zero value gets sensible
// campaign defaults from withDefaults.
type Config struct {
	// Nodes is the cluster size; Msgs multicast messages of Size bytes are
	// streamed from node 0 down a Fanout-ary tree (fanout 2 guarantees
	// interior forwarding nodes from 4 nodes up).
	Nodes  int
	Msgs   int
	Size   int
	Fanout int

	// Seed feeds both the cluster RNG and (hashed with the scenario name)
	// the injector RNG. Same seed, same scenario, same result — always.
	Seed int64

	// Deadline bounds the faulted run in virtual time; a protocol that has
	// not quiesced by then failed to recover.
	Deadline sim.Time

	// Metrics, when non-nil, also receives the faulted run's instrument
	// traffic (for -metrics reporting). The invariant checker always uses
	// a private registry-backed snapshot diff, so this is optional — but a
	// shared registry is unsynchronized, so it forces serial campaigns.
	Metrics *metrics.Registry

	// Shards runs each scenario's clusters on a conservative parallel
	// engine (0 or 1 = serial). Only stateless fault rules — unconditional
	// drop windows, every-packet reordering, NIC pauses — are compatible;
	// a stochastic scenario panics with ErrShardsStateful at install time.
	Shards int

	// Fabric selects the interconnect backend the campaign runs over (the
	// zero value: the classic Myrinet fabric). The invariant set is
	// fabric-agnostic, so the same scenarios validate every backend.
	Fabric fabric.Config

	// AckEvery > 1 runs every scenario with the full ack economy enabled
	// (cumulative acks every AckEvery packets, piggybacking, and tree ack
	// aggregation), proving the fault invariants hold with coalescing on.
	// 0 or 1 keeps the per-packet ack default.
	AckEvery int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Msgs <= 0 {
		c.Msgs = 12
	}
	if c.Size <= 0 {
		c.Size = 10000
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 500 * sim.Millisecond
	}
	return c
}

// Scenario is one named fault script. Inject installs the faults; the
// runner supplies the cluster, the multicast tree, and a seeded injector
// through the Fault context. A nil Inject is a fault-free baseline.
type Scenario struct {
	Name string
	Desc string

	// Nacks/Adaptive select the recovery configuration under test (fast
	// recovery via nacks, RTT-adaptive timeouts).
	Nacks    bool
	Adaptive bool

	Inject func(f *Fault)
}

// Fault is the context a scenario's Inject runs in.
type Fault struct {
	Inj     *Injector
	Cluster *cluster.Cluster
	Tree    *tree.Tree
	Cfg     Config

	// CleanSpan is the fault-free baseline's completion time on this exact
	// cluster, measured by the run that always precedes fault injection.
	// Scenarios place their windows relative to it (see At), so the same
	// script stresses live traffic on a microsecond-scale Clos run and a
	// millisecond-scale Myrinet one alike.
	CleanSpan sim.Time
}

// At maps a fraction of the fault-free run's span to an absolute virtual
// time: At(0.3) lands 30% into live traffic on any fabric, At(1.5) in the
// recovery tail. Hard-coded microsecond windows tuned to one fabric's
// speed miss the whole run on a faster one.
func (f *Fault) At(frac float64) sim.Time {
	return sim.Time(float64(f.CleanSpan) * frac)
}

// InteriorNode returns the first non-root tree node that has children —
// the forwarding node whose failure hurts an entire subtree.
func (f *Fault) InteriorNode() fabric.NodeID {
	for _, n := range f.Tree.Nodes() {
		if n != f.Tree.Root && len(f.Tree.Children(n)) > 0 {
			return n
		}
	}
	// Degenerate tree (too small for interior nodes): fall back to the
	// last leaf so the scenario still exercises an outage.
	return f.LeafNode()
}

// RootSwitch returns the label of the switch the multicast root attaches
// to — the fabric-generic spelling of "the crossbar goes dark" ("xbar0"
// on a single-switch Myrinet fabric, "tor0" or a leaf on a Clos), so
// switch-outage scenarios bite on every backend.
func (f *Fault) RootSwitch() string {
	return f.Cluster.Net.Iface(f.Tree.Root).Uplink().ToLabel()
}

// LeafNode returns the last tree node without children — deterministic,
// and never the root.
func (f *Fault) LeafNode() fabric.NodeID {
	nodes := f.Tree.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		if len(f.Tree.Children(nodes[i])) == 0 {
			return nodes[i]
		}
	}
	return nodes[len(nodes)-1]
}

// Result is one scenario's verdict: the invariant violations (empty on
// pass), recovery latency versus the fault-free baseline, and the fault
// and recovery traffic observed.
type Result struct {
	Scenario string
	Desc     string
	Nodes    int
	Msgs     int
	Size     int

	Pass       bool
	Violations []string

	// CleanFinish is the fault-free completion time, FaultFinish the
	// faulted one; Recovery is the difference — the time the fault cost.
	CleanFinish sim.Time
	FaultFinish sim.Time
	Recovery    sim.Time

	// Fault-run traffic: fabric drops and duplicates, NIC-paused discards,
	// receive-buffer overruns, and the protocol's recovery work.
	Drops       uint64
	Dups        uint64
	PausedDrops uint64
	RxNoBuffer  uint64
	Retransmits uint64
	Timeouts    uint64
	Nacks       uint64

	// Rules reports per-fault-rule activation counts.
	Rules []RuleHit
}

// RunScenario executes one scenario: a fault-free baseline run (for the
// recovery-latency reference) and the faulted run, both checked against
// the full invariant set.
func RunScenario(sc Scenario, cfg Config) Result {
	cfg = cfg.withDefaults()
	clean := runOnce(sc, cfg, false, 0)
	fault := runOnce(sc, cfg, true, clean.finish)

	res := Result{
		Scenario:    sc.Name,
		Desc:        sc.Desc,
		Nodes:       cfg.Nodes,
		Msgs:        cfg.Msgs,
		Size:        cfg.Size,
		CleanFinish: clean.finish,
		FaultFinish: fault.finish,
		Drops:       fault.drops,
		Dups:        fault.dups,
		PausedDrops: fault.pausedDrops,
		RxNoBuffer:  fault.rxNoBuffer,
		Retransmits: fault.retransmits,
		Timeouts:    fault.timeouts,
		Nacks:       fault.nacks,
		Rules:       fault.rules,
	}
	if res.FaultFinish > res.CleanFinish {
		res.Recovery = res.FaultFinish - res.CleanFinish
	}
	for _, v := range clean.violations {
		res.Violations = append(res.Violations, "baseline: "+v)
	}
	res.Violations = append(res.Violations, fault.violations...)
	res.Pass = len(res.Violations) == 0
	return res
}

// outcome is one run's raw observations.
type outcome struct {
	finish     sim.Time
	violations []string

	drops, dups, pausedDrops, rxNoBuffer uint64
	retransmits, timeouts, nacks         uint64
	rules                                []RuleHit
}

// scenarioSeed mixes the campaign seed with an FNV-1a hash of the scenario
// name so each scenario gets an independent but reproducible fault stream.
func scenarioSeed(seed int64, name string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h&0x7fffffffffffffff)
}

// Payload builds the deterministic byte pattern of message idx — receivers
// recompute it to verify every byte arrived intact and in the right
// message slot.
func Payload(idx, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(idx*131 + i*29 + 7)
	}
	return b
}

// runOnce builds a fresh cluster, streams the multicast workload under the
// scenario's faults (if faulted), and checks the invariant set.
func runOnce(sc Scenario, cfg Config, faulted bool, cleanSpan sim.Time) outcome {
	// The baseline always uses a private registry; the faulted run uses
	// the caller's shared one when provided (counter diffs isolate it).
	reg := cfg.Metrics
	if reg == nil || !faulted {
		reg = metrics.New()
	}
	ccfg := cluster.DefaultConfig(cfg.Nodes)
	if cfg.Fabric.Valid() {
		ccfg.Fabric = cfg.Fabric
		ccfg.Link = cfg.Fabric.Links
	}
	ccfg.Seed = cfg.Seed
	ccfg.Metrics = reg
	ccfg.Shards = cfg.Shards
	ccfg.GM.EnableNacks = sc.Nacks
	ccfg.GM.AdaptiveRTO = sc.Adaptive
	cluster.WithAckEconomy(cfg.AckEvery)(ccfg)
	c := cluster.NewFromConfig(ccfg)
	ports := c.OpenPorts(Port)
	tr := tree.KAry(0, c.Members(), cfg.Fanout)
	c.InstallGroup(Group, tr, Port, Port)

	var inj *Injector
	if faulted && sc.Inject != nil {
		inj = NewInjector(c.Net, scenarioSeed(cfg.Seed, sc.Name))
		sc.Inject(&Fault{Inj: inj, Cluster: c, Tree: tr, Cfg: cfg, CleanSpan: cleanSpan})
	}

	msgs := make([][]byte, cfg.Msgs)
	for i := range msgs {
		msgs[i] = Payload(i, cfg.Size)
	}

	// Per-node violation lists, merged in node order after the run so the
	// report is deterministic regardless of event interleaving.
	nodeViol := make([][]string, cfg.Nodes)
	finish := make([]sim.Time, cfg.Nodes)
	for _, n := range tr.Nodes() {
		if n == tr.Root {
			continue
		}
		n := n
		c.SpawnOn(n, "chaos-recv", func(p *sim.Proc) {
			ports[n].ProvideN(cfg.Msgs, cfg.Size)
			for i := 0; i < cfg.Msgs; i++ {
				ev := ports[n].Recv(p)
				if ev.MsgID != uint64(i+1) {
					nodeViol[n] = append(nodeViol[n], fmt.Sprintf(
						"node %d: delivery %d carried msg id %d — lost, duplicated, or reordered message",
						n, i+1, ev.MsgID))
				} else if !bytes.Equal(ev.Data, msgs[i]) {
					nodeViol[n] = append(nodeViol[n], fmt.Sprintf(
						"node %d: msg %d payload corrupted", n, i+1))
				}
			}
			finish[n] = p.Now()
		})
	}
	c.SpawnOn(tr.Root, "chaos-root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < cfg.Msgs; i++ {
			ext.Mcast(p, ports[0], Group, msgs[i])
		}
		for i := 0; i < cfg.Msgs; i++ {
			ports[0].WaitSendDone(p)
		}
		finish[0] = p.Now()
	})

	before := reg.Snapshot()
	c.RunUntil(cfg.Deadline)

	var out outcome
	for _, t := range finish {
		if t > out.finish {
			out.finish = t
		}
	}
	for _, vs := range nodeViol {
		out.violations = append(out.violations, vs...)
	}
	out.violations = append(out.violations, checkQuiescence(c, cfg)...)
	out.violations = append(out.violations, checkResources(c, ports, ccfg)...)

	d := reg.Snapshot().Diff(before)
	out.violations = append(out.violations, checkAccounting(d, cfg, ccfg)...)
	out.drops = d.CounterSum("net", "dropped")
	out.dups = d.CounterSum("net", "duplicated")
	out.pausedDrops = d.CounterSum("lanai", "rx_paused_drops")
	out.rxNoBuffer = d.CounterSum("lanai", "rx_nobuffer")
	out.retransmits = d.CounterSum("core", "retransmits") + d.CounterSum("gm", "retransmits")
	out.timeouts = d.CounterSum("core", "timeouts") + d.CounterSum("gm", "timeouts")
	out.nacks = d.CounterSum("core", "mcast_nacks_sent") + d.CounterSum("gm", "nacks_sent")
	if inj != nil {
		out.rules = inj.RuleHits()
	}

	c.Kill()
	return out
}

// checkQuiescence verifies the run fully drained before the deadline: no
// process still blocked (a starved receiver means a lost message; a stuck
// root means send tokens never came back) and no event still scheduled (an
// armed retransmit timer past quiescence means a leaked send record).
func checkQuiescence(c *cluster.Cluster, cfg Config) []string {
	var v []string
	if n := c.LiveProcs(); n != 0 {
		v = append(v, fmt.Sprintf(
			"did not recover by deadline %v: %d processes still blocked", cfg.Deadline, n))
	}
	if n := c.Pending(); n != 0 {
		v = append(v, fmt.Sprintf(
			"%d events still scheduled after quiescence (leaked timer or unfinished recovery)", n))
	}
	return v
}

// checkResources verifies every NIC-level resource returned to its idle
// state: all send records retired, all retransmit timers disarmed, all
// lanai packet buffers back in their pools, and every host-level send
// token returned.
func checkResources(c *cluster.Cluster, ports []*gm.Port, ccfg *cluster.Config) []string {
	var v []string
	for i, n := range c.Nodes {
		if r := n.NIC.OutstandingRecords(); r != 0 {
			v = append(v, fmt.Sprintf("node %d: %d unicast send records leaked", i, r))
		}
		if t := n.NIC.PendingRetransmitTimers(); t != 0 {
			v = append(v, fmt.Sprintf("node %d: %d unicast retransmit timers still armed", i, t))
		}
		if t := n.NIC.PendingAckTimers(); t != 0 {
			v = append(v, fmt.Sprintf("node %d: %d delayed-ack timers still armed (coalesced ack leaked)", i, t))
		}
		if n.Ext != nil {
			if r := n.Ext.OutstandingRecords(); r != 0 {
				v = append(v, fmt.Sprintf("node %d: %d multicast send records leaked", i, r))
			}
			if t := n.Ext.PendingGroupTimers(); t != 0 {
				v = append(v, fmt.Sprintf("node %d: %d group retransmit timers still armed", i, t))
			}
			if t := n.Ext.PendingAckTimers(); t != 0 {
				v = append(v, fmt.Sprintf("node %d: %d aggregate-ack timers still armed (coalesced ack leaked)", i, t))
			}
		}
		if free, cap := n.HW.SendBufs.Free(), n.HW.SendBufs.Cap(); free != cap {
			v = append(v, fmt.Sprintf("node %d: %d/%d NIC send buffers leaked", i, cap-free, cap))
		}
		if free, cap := n.HW.RecvBufs.Free(), n.HW.RecvBufs.Cap(); free != cap {
			v = append(v, fmt.Sprintf("node %d: %d/%d NIC recv buffers leaked", i, cap-free, cap))
		}
		if q := n.HW.SendBufs.Queued() + n.HW.RecvBufs.Queued(); q != 0 {
			v = append(v, fmt.Sprintf("node %d: %d buffer waiters still queued", i, q))
		}
		if n.HW.Paused() {
			v = append(v, fmt.Sprintf("node %d: NIC still paused after run", i))
		}
		if got, want := ports[i].FreeSendTokens(), ccfg.GM.SendTokens; got != want {
			v = append(v, fmt.Sprintf("node %d: %d/%d send tokens not returned", i, want-got, want))
		}
		if r := ports[i].PendingRecvs(); r != 0 {
			v = append(v, fmt.Sprintf("node %d: %d extra deliveries queued (duplicate accepted?)", i, r))
		}
	}
	return v
}

// checkAccounting verifies the metrics agree with the workload: the fabric
// conserved packets (every injected or duplicated packet was either
// delivered or dropped) and the receivers accepted exactly the workload's
// packet count — no more (duplicates accepted), no less (loss papered
// over).
func checkAccounting(d metrics.Snapshot, cfg Config, ccfg *cluster.Config) []string {
	var v []string
	injected := d.CounterSum("net", "injected")
	duplicated := d.CounterSum("net", "duplicated")
	delivered := d.CounterSum("net", "delivered")
	dropped := d.CounterSum("net", "dropped")
	if injected+duplicated != delivered+dropped {
		v = append(v, fmt.Sprintf(
			"fabric accounting broken: injected %d + duplicated %d != delivered %d + dropped %d",
			injected, duplicated, delivered, dropped))
	}
	want := uint64(cfg.Nodes-1) * uint64(cfg.Msgs) * uint64(ccfg.GM.Packets(cfg.Size))
	if got := d.CounterSum("core", "mcast_received"); got != want {
		v = append(v, fmt.Sprintf(
			"receivers accepted %d multicast packets, workload requires exactly %d", got, want))
	}
	return v
}
