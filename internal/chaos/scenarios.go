package chaos

import "repro/internal/sim"

// The scenario library. Fault windows are placed over the first couple of
// milliseconds because the default campaign workload starts streaming at
// t=0 and finishes within about a millisecond when nothing goes wrong —
// every window below overlaps live traffic. All windows close long before
// the run deadline, so a correct protocol always has room to recover; a
// run that still misses the deadline has a recovery bug, not a tight
// schedule.

// Library returns the named scenario set, in fixed order. Campaigns run
// all of them unless filtered.
func Library() []Scenario {
	return []Scenario{
		{
			Name: "root-link-outage",
			Desc: "root's host link dark for 1ms; every packet and ack in transit dies",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("root-link", 300*sim.Microsecond, 1300*sim.Microsecond,
					MatchHostLink(f.Tree.Root))
			},
		},
		{
			Name: "interior-kill",
			Desc: "interior forwarding node isolated for 1.2ms; its whole subtree starves",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("interior-node", 300*sim.Microsecond, 1500*sim.Microsecond,
					MatchNode(f.InteriorNode()))
			},
		},
		{
			Name: "switch-outage",
			Desc: "crossbar xbar0 black for 800µs — a full-fabric blackout on single-switch clusters",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("xbar0", 400*sim.Microsecond, 1200*sim.Microsecond,
					MatchSwitch("xbar0"))
			},
		},
		{
			Name: "burst-loss",
			Desc: "Gilbert–Elliott bursty channel on all links (fixed-timeout recovery)",
			Inject: func(f *Fault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name:     "burst-loss-nacks",
			Desc:     "same bursty channel with nack fast recovery and adaptive RTO",
			Nacks:    true,
			Adaptive: true,
			Inject: func(f *Fault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name: "dup-storm",
			Desc: "every 3rd packet of any kind delivered twice for the whole run",
			Inject: func(f *Fault) {
				f.Inj.Duplicate("dup3", 0, 0, 3, MatchAll)
			},
		},
		{
			Name:  "reorder",
			Desc:  "every 5th data packet held back 25µs, overtaken by its successors",
			Nacks: true,
			Inject: func(f *Fault) {
				f.Inj.Reorder("hold5", 0, 0, 5, 25*sim.Microsecond, MatchData)
			},
		},
		{
			Name: "leaf-nic-pause",
			Desc: "a leaf NIC reloads firmware for 1.2ms, discarding all arrivals",
			Inject: func(f *Fault) {
				leaf := f.LeafNode()
				f.Inj.PauseNIC(f.Cluster.Nodes[leaf].HW, 300*sim.Microsecond, 1500*sim.Microsecond)
			},
		},
		{
			Name: "root-nic-pause",
			Desc: "the root NIC goes deaf for 900µs; every ack in flight is discarded",
			Inject: func(f *Fault) {
				f.Inj.PauseNIC(f.Cluster.Nodes[f.Tree.Root].HW, 300*sim.Microsecond, 1200*sim.Microsecond)
			},
		},
		{
			Name: "ack-loss",
			Desc: "all acknowledgment and nack frames dropped for 1.2ms; data flows untouched",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("acks", 300*sim.Microsecond, 1500*sim.Microsecond, MatchAcks)
			},
		},
		{
			Name:  "cascade",
			Desc:  "interior node isolated while the fabric duplicates and reorders traffic",
			Nacks: true,
			Inject: func(f *Fault) {
				f.Inj.DropWindow("interior-node", 400*sim.Microsecond, 1100*sim.Microsecond,
					MatchNode(f.InteriorNode()))
				f.Inj.Duplicate("dup7", 0, 0, 7, MatchAll)
				f.Inj.Reorder("hold9", 0, 0, 9, 15*sim.Microsecond, MatchData)
			},
		},
	}
}

// Find returns the library scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
