package chaos

// The scenario library. Fault windows are fractions of the fault-free
// baseline's measured span (Fault.At): the workload starts streaming at
// t=0, so At(0.3)..At(1.5) always brackets live traffic and the early
// recovery tail, whether a run takes a millisecond on the Myrinet fabric
// or a fraction of that on a Clos backend. All windows close long before
// the run deadline, so a correct protocol always has room to recover; a
// run that still misses the deadline has a recovery bug, not a tight
// schedule.

// Library returns the named scenario set, in fixed order. Campaigns run
// all of them unless filtered.
func Library() []Scenario {
	return []Scenario{
		{
			Name: "root-link-outage",
			Desc: "root's host link dark through most of the stream; every packet and ack in transit dies",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("root-link", f.At(0.3), f.At(1.3),
					MatchHostLink(f.Tree.Root))
			},
		},
		{
			Name: "interior-kill",
			Desc: "interior forwarding node isolated through the second half of the stream; its whole subtree starves",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("interior-node", f.At(0.3), f.At(1.5),
					MatchNode(f.InteriorNode()))
			},
		},
		{
			Name: "switch-outage",
			Desc: "the root's switch black mid-stream — a full-fabric blackout on single-switch clusters",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("root-switch", f.At(0.4), f.At(1.2),
					MatchSwitch(f.RootSwitch()))
			},
		},
		{
			Name: "burst-loss",
			Desc: "Gilbert–Elliott bursty channel on all links (fixed-timeout recovery)",
			Inject: func(f *Fault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name:     "burst-loss-nacks",
			Desc:     "same bursty channel with nack fast recovery and adaptive RTO",
			Nacks:    true,
			Adaptive: true,
			Inject: func(f *Fault) {
				f.Inj.GilbertElliott("ge-all", 0.02, 0.25, 0.001, 0.5, MatchAll)
			},
		},
		{
			Name: "dup-storm",
			Desc: "every 3rd packet of any kind delivered twice for the whole run",
			Inject: func(f *Fault) {
				f.Inj.Duplicate("dup3", 0, 0, 3, MatchAll)
			},
		},
		{
			Name:  "reorder",
			Desc:  "every 5th data packet held back, overtaken by its successors",
			Nacks: true,
			Inject: func(f *Fault) {
				f.Inj.Reorder("hold5", 0, 0, 5, f.At(0.025), MatchData)
			},
		},
		{
			Name: "leaf-nic-pause",
			Desc: "a leaf NIC reloads firmware through the second half of the stream, discarding all arrivals",
			Inject: func(f *Fault) {
				leaf := f.LeafNode()
				f.Inj.PauseNIC(f.Cluster.Nodes[leaf].HW, f.At(0.3), f.At(1.5))
			},
		},
		{
			Name: "root-nic-pause",
			Desc: "the root NIC goes deaf mid-stream; every ack in flight is discarded",
			Inject: func(f *Fault) {
				f.Inj.PauseNIC(f.Cluster.Nodes[f.Tree.Root].HW, f.At(0.3), f.At(1.2))
			},
		},
		{
			Name: "ack-loss",
			Desc: "all acknowledgment and nack frames dropped through the stream's tail; data flows untouched",
			Inject: func(f *Fault) {
				f.Inj.DropWindow("acks", f.At(0.3), f.At(1.5), MatchAcks)
			},
		},
		{
			Name:  "cascade",
			Desc:  "interior node isolated while the fabric duplicates and reorders traffic",
			Nacks: true,
			Inject: func(f *Fault) {
				f.Inj.DropWindow("interior-node", f.At(0.4), f.At(1.1),
					MatchNode(f.InteriorNode()))
				f.Inj.Duplicate("dup7", 0, 0, 7, MatchAll)
				f.Inj.Reorder("hold9", 0, 0, 9, f.At(0.015), MatchData)
			},
		},
	}
}

// Find returns the library scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
