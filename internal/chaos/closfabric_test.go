package chaos_test

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/clos"
)

func closConfig() chaos.Config {
	return chaos.Config{Nodes: 8, Msgs: 10, Size: 10000, Seed: 7, Fabric: clos.Default()}
}

// TestLibraryScenariosPassOnClos runs the entire fault-scenario library on
// the Clos backend through the full invariant checker — the cross-fabric
// reliability bar: exactly-once in-order delivery, all buffers and tokens
// returned, no leaked timers, balanced packet accounting, now over ECMP
// paths and PFC backpressure instead of the Myrinet crossbar.
func TestLibraryScenariosPassOnClos(t *testing.T) {
	for _, sc := range chaos.Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunScenario(sc, closConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker on clos", sc.Name)
			}
		})
	}
}

// TestLibraryScenariosPassOnMultiLeafClos repeats the sweep at a size that
// forces a multi-switch leaf-spine, so recovery paths cross ECMP-selected
// trunks rather than one shared crossbar.
func TestLibraryScenariosPassOnMultiLeafClos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-leaf campaign is slow")
	}
	cfg := closConfig()
	cfg.Nodes = 40
	cfg.Msgs = 6
	for _, sc := range chaos.Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunScenario(sc, cfg)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker on 40-node clos", sc.Name)
			}
		})
	}
}

// TestMemberLibraryPassesOnClos runs every membership-churn scenario on
// the Clos backend: epochs roll the group under faults while payloads
// stream, and the membership invariant — epoch-E payloads reach exactly
// E's members, exactly once, in order — must hold on the new fabric.
func TestMemberLibraryPassesOnClos(t *testing.T) {
	for _, sc := range chaos.MemberLibrary() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunMemberScenario(sc, chaos.MemberConfig{
				Nodes: 8, Msgs: 12, Size: 4096, Transitions: 6, Seed: 7,
				Fabric: clos.Default(),
			})
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the membership invariants on clos", sc.Name)
			}
		})
	}
}

// TestScenariosActuallyInjectOnClos guards the cross-fabric campaign
// against vacuous passes: every scenario's fault rules must engage on the
// Clos backend too — in particular switch-outage, which targets the
// root's switch by label and would silently miss if it still assumed the
// Myrinet crossbar's name.
func TestScenariosActuallyInjectOnClos(t *testing.T) {
	for _, sc := range chaos.Library() {
		res := chaos.RunScenario(sc, closConfig())
		var ruleHits uint64
		for _, r := range res.Rules {
			ruleHits += r.Hits
		}
		if ruleHits+res.PausedDrops == 0 {
			t.Errorf("scenario %s: no fault rule ever fired on clos", sc.Name)
		}
	}
}

// TestClosCampaignDeterminism pins the reproducibility contract on the new
// backend: the most stochastic scenario, run twice at the same seed on
// Clos, must produce identical results down to every counter.
func TestClosCampaignDeterminism(t *testing.T) {
	sc, ok := chaos.Find("burst-loss")
	if !ok {
		t.Fatal("burst-loss scenario missing from library")
	}
	a := chaos.RunScenario(sc, closConfig())
	b := chaos.RunScenario(sc, closConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed on clos, different results:\n%+v\nvs\n%+v", a, b)
	}
	myr := chaos.RunScenario(sc, testConfig())
	if a.FaultFinish == myr.FaultFinish && a.Drops == myr.Drops {
		t.Fatalf("clos and myrinet campaigns identical (finish %v, %d drops) — Fabric config ignored",
			a.FaultFinish, a.Drops)
	}
}
