package chaos_test

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
)

// economyConfig is testConfig with the full ack economy switched on:
// cumulative acks every 4 packets, piggybacking, and NIC tree ack
// aggregation. The invariant checker additionally verifies that no
// delayed-ack or aggregate-ack timer outlives the run.
func economyConfig() chaos.Config {
	cfg := testConfig()
	cfg.AckEvery = 4
	return cfg
}

// TestLibraryScenariosPassWithAckEconomy re-runs every chaos scenario —
// loss bursts, interior kills, dup storms, pauses — with coalesced,
// piggybacked, and tree-aggregated acks. Exactly-once in-order delivery,
// resource return, and timer hygiene must all survive the economy: a
// coalesced cumulative ack that is lost or delayed must never wedge the
// go-back-N recovery machinery.
func TestLibraryScenariosPassWithAckEconomy(t *testing.T) {
	for _, sc := range chaos.Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunScenario(sc, economyConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker with the ack economy on", sc.Name)
			}
		})
	}
}

// TestAckEconomyScenarioDeterminism pins that the economy's delayed-ack
// timers and fused ack processing do not perturb the deterministic
// schedule: the same seeded scenario must produce bit-identical results.
func TestAckEconomyScenarioDeterminism(t *testing.T) {
	sc, ok := chaos.Find("burst-loss")
	if !ok {
		t.Fatal("burst-loss scenario missing from library")
	}
	a := chaos.RunScenario(sc, economyConfig())
	b := chaos.RunScenario(sc, economyConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results with ack economy:\n%+v\nvs\n%+v", a, b)
	}
	if !a.Pass {
		t.Fatalf("burst-loss failed with ack economy: %v", a.Violations)
	}
}

// TestCollLibraryScenariosPassWithAckEconomy runs the collective chaos
// campaign with the ack economy on: the stop-and-wait substrate under
// barrier/allreduce/allgather traffic reuses the same cumulative-ack
// discipline, so every collective scenario must still produce correct
// results at every node and leak no timers or records.
func TestCollLibraryScenariosPassWithAckEconomy(t *testing.T) {
	cfg := collTestConfig()
	cfg.AckEvery = 4
	for _, sc := range chaos.CollLibrary() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := chaos.RunCollScenario(sc, cfg)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if !res.Pass {
				t.Fatalf("scenario %s failed the invariant checker with the ack economy on", sc.Name)
			}
		})
	}
}
