// Package member implements dynamic group membership for the NIC-based
// multicast extension: an epoch-based join/leave protocol that reinstalls
// the spanning tree under live traffic without dropping, duplicating, or
// reordering any payload.
//
// A coordinator runs on the group root's host. Nodes request join/leave
// over reliable GM unicast on a dedicated control port. For each
// transition the coordinator recomputes the tree incrementally
// (tree.Incremental keeps surviving edges stable) and rolls the cluster
// to a new epoch in two phases:
//
//  1. prepare — every participant (union of old and new membership)
//     stages the epoch-stamped view with Ext.PrepareGroupEpoch. Staging
//     freezes the root's send pump at a message boundary, so no message
//     ever straddles two epochs.
//  2. quiesce + commit — the coordinator drains the old epoch's in-flight
//     traffic with Ext.QuiesceGroup, walking the OLD tree top-down in BFS
//     level order (a node's "drained" is only stable once its parent has
//     drained), then commits the staged view everywhere with
//     Ext.CommitGroupEpoch. Senders switch epochs atomically with the
//     root's commit; stale-epoch frames arriving at departed NICs are
//     acked-as-dropped so the sender's window never deadlocks.
//
// Run drives a workload.ChurnPlan through a cluster and records, per
// epoch, exactly which nodes were members — the ground truth for the
// membership invariant checked by Result.Verify: every payload multicast
// in epoch E is delivered exactly once, in order, to exactly E's members.
package member

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// Control message kinds, carried on the membership control port.
const (
	ctrlJoin        uint32 = iota + 1 // node -> coordinator: request join
	ctrlLeave                         // node -> coordinator: request leave
	ctrlPrepare                       // coordinator -> participant: stage epoch view
	ctrlPrepared                      // participant -> coordinator: view staged
	ctrlQuiesce                       // coordinator -> old member: drain old epoch
	ctrlDrained                       // old member -> coordinator: drained
	ctrlCommit                        // coordinator -> participant: activate epoch
	ctrlCommitted                     // participant -> coordinator: activated
	ctrlFinalize                      // sender -> coordinator: no more churn; grow to full membership
	ctrlShutdownReq                   // sender -> coordinator: all traffic delivered
	ctrlShutdown                      // coordinator -> agent: exit
)

// ctrlMsg is the single wire form for all control traffic. Unused fields
// encode as zero-length; the codec is symmetric and versionless (both
// ends are the same binary in the simulator).
type ctrlMsg struct {
	kind  uint32
	node  fabric.NodeID
	epoch uint32
	root  fabric.NodeID
	// members is the new epoch's full membership (root included),
	// ascending; parents is the new tree in wire form (child -> parent),
	// exactly what tree.FromParents reconstructs.
	members []fabric.NodeID
	parents map[fabric.NodeID]fabric.NodeID
}

func (m ctrlMsg) encode() []byte {
	buf := make([]byte, 0, 24+4*len(m.members)+8*len(m.parents))
	var w [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(m.kind)
	put(uint32(m.node))
	put(m.epoch)
	put(uint32(m.root))
	put(uint32(len(m.members)))
	for _, n := range m.members {
		put(uint32(n))
	}
	put(uint32(len(m.parents)))
	children := make([]fabric.NodeID, 0, len(m.parents))
	for c := range m.parents {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	for _, c := range children {
		put(uint32(c))
		put(uint32(m.parents[c]))
	}
	return buf
}

// ErrBadCtrlMsg is the sentinel every decodeCtrl failure wraps: truncated
// payloads, count fields promising more elements than the remaining bytes
// can hold, unknown kinds, and trailing garbage all report errors.Is-able
// against it. The agent loop counts the violation and drops the message
// instead of crashing — a corrupt control payload must never take the
// membership service down.
var ErrBadCtrlMsg = errors.New("member: malformed control message")

func decodeCtrl(b []byte) (ctrlMsg, error) {
	var m ctrlMsg
	off := 0
	get := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	fields := [4]*uint32{&m.kind, nil, &m.epoch, nil}
	var node, root uint32
	fields[1], fields[3] = &node, &root
	for _, f := range fields {
		v, ok := get()
		if !ok {
			return m, fmt.Errorf("%w: short header (%d bytes)", ErrBadCtrlMsg, len(b))
		}
		*f = v
	}
	if m.kind < ctrlJoin || m.kind > ctrlShutdown {
		return m, fmt.Errorf("%w: unknown kind %d", ErrBadCtrlMsg, m.kind)
	}
	m.node, m.root = fabric.NodeID(node), fabric.NodeID(root)
	nm, ok := get()
	if !ok {
		return m, fmt.Errorf("%w: truncated member count", ErrBadCtrlMsg)
	}
	// Validate count fields against the bytes actually present BEFORE
	// allocating: a corrupt count is attacker-sized (up to 4 billion) and
	// pre-sizing a slice or map from it is an out-of-memory panic.
	if uint64(nm)*4 > uint64(len(b)-off) {
		return m, fmt.Errorf("%w: member count %d exceeds %d remaining bytes", ErrBadCtrlMsg, nm, len(b)-off)
	}
	if nm > 0 {
		m.members = make([]fabric.NodeID, 0, nm)
	}
	for i := uint32(0); i < nm; i++ {
		v, _ := get()
		m.members = append(m.members, fabric.NodeID(v))
	}
	np, ok := get()
	if !ok {
		return m, fmt.Errorf("%w: truncated parent count", ErrBadCtrlMsg)
	}
	if uint64(np)*8 > uint64(len(b)-off) {
		return m, fmt.Errorf("%w: parent count %d exceeds %d remaining bytes", ErrBadCtrlMsg, np, len(b)-off)
	}
	if np > 0 {
		m.parents = make(map[fabric.NodeID]fabric.NodeID, np)
	}
	for i := uint32(0); i < np; i++ {
		c, _ := get()
		p, _ := get()
		m.parents[fabric.NodeID(c)] = fabric.NodeID(p)
	}
	if off != len(b) {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadCtrlMsg, len(b)-off)
	}
	return m, nil
}
