package member

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fabric"
)

func wireMsgs() []ctrlMsg {
	return []ctrlMsg{
		{kind: ctrlJoin, node: 3},
		{kind: ctrlLeave, node: 5},
		{kind: ctrlQuiesce, epoch: 7},
		{kind: ctrlCommit, epoch: ^uint32(0)}, // top-of-space epoch survives the trip
		{
			kind: ctrlPrepare, epoch: 42, root: 0,
			members: []fabric.NodeID{0, 1, 2, 5},
			parents: map[fabric.NodeID]fabric.NodeID{1: 0, 2: 0, 5: 1},
		},
		{kind: ctrlShutdown},
	}
}

// Every well-formed message round-trips exactly.
func TestCtrlRoundTrip(t *testing.T) {
	for _, m := range wireMsgs() {
		got, err := decodeCtrl(m.encode())
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mutated message:\nsent %+v\ngot  %+v", m, got)
		}
	}
}

// Regression (codec hardening): every truncation of every valid encoding
// decodes to ErrBadCtrlMsg — no panic, no silent partial parse.
func TestCtrlDecodeTruncations(t *testing.T) {
	for _, m := range wireMsgs() {
		full := m.encode()
		for cut := 0; cut < len(full); cut++ {
			_, err := decodeCtrl(full[:cut])
			if err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded cleanly (%+v)", cut, len(full), m)
			}
			if !errors.Is(err, ErrBadCtrlMsg) {
				t.Fatalf("truncation error not errors.Is(ErrBadCtrlMsg): %v", err)
			}
		}
	}
}

// Regression (codec hardening): a corrupt count field promising billions
// of elements must be rejected by bounds-checking against the remaining
// bytes BEFORE any allocation — the old decoder pre-sized a map from the
// raw count, an out-of-memory panic vector.
func TestCtrlDecodeHugeCounts(t *testing.T) {
	base := ctrlMsg{kind: ctrlPrepare, epoch: 3, members: []fabric.NodeID{0, 1}, parents: map[fabric.NodeID]fabric.NodeID{1: 0}}
	full := base.encode()
	for _, tc := range []struct {
		name string
		off  int // byte offset of the count field to corrupt
	}{
		{"member-count", 16},
		{"parent-count", 16 + 4 + 4*2},
	} {
		b := append([]byte(nil), full...)
		binary.LittleEndian.PutUint32(b[tc.off:], ^uint32(0))
		_, err := decodeCtrl(b)
		if err == nil {
			t.Fatalf("%s = MaxUint32 decoded cleanly", tc.name)
		}
		if !errors.Is(err, ErrBadCtrlMsg) {
			t.Fatalf("%s: error not errors.Is(ErrBadCtrlMsg): %v", tc.name, err)
		}
	}
}

// Unknown kinds and trailing garbage are rejected, not passed through.
func TestCtrlDecodeRejectsJunk(t *testing.T) {
	if _, err := decodeCtrl(ctrlMsg{kind: 99}.encode()); !errors.Is(err, ErrBadCtrlMsg) {
		t.Fatalf("unknown kind: got %v, want ErrBadCtrlMsg", err)
	}
	if _, err := decodeCtrl(ctrlMsg{kind: 0}.encode()); !errors.Is(err, ErrBadCtrlMsg) {
		t.Fatalf("zero kind: got %v, want ErrBadCtrlMsg", err)
	}
	withTrailer := append(ctrlMsg{kind: ctrlJoin, node: 1}.encode(), 0xde, 0xad)
	if _, err := decodeCtrl(withTrailer); !errors.Is(err, ErrBadCtrlMsg) {
		t.Fatalf("trailing bytes: got %v, want ErrBadCtrlMsg", err)
	}
}

// Fuzz-style sweep: random byte soup and randomly mutated valid encodings
// must either decode cleanly or return the sentinel — never panic, never
// return a naked error. Deterministic seed, so failures replay.
func TestCtrlDecodeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	valid := wireMsgs()
	for i := 0; i < 20000; i++ {
		var b []byte
		if i%2 == 0 {
			b = make([]byte, rng.Intn(64))
			rng.Read(b)
		} else {
			b = valid[rng.Intn(len(valid))].encode()
			for flips := rng.Intn(4) + 1; flips > 0; flips-- {
				if len(b) == 0 {
					break
				}
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
		}
		m, err := decodeCtrl(b) // must not panic
		if err != nil && !errors.Is(err, ErrBadCtrlMsg) {
			t.Fatalf("iteration %d: error not wrapping ErrBadCtrlMsg: %v", i, err)
		}
		if err == nil && (m.kind < ctrlJoin || m.kind > ctrlShutdown) {
			t.Fatalf("iteration %d: clean decode of out-of-range kind %d", i, m.kind)
		}
	}
}

// FuzzDecodeCtrl is the native fuzz entry point (go test -fuzz=FuzzDecodeCtrl
// ./internal/member). The seed corpus covers every message shape; the
// property is panic-freedom plus the sentinel-error contract.
func FuzzDecodeCtrl(f *testing.F) {
	for _, m := range wireMsgs() {
		f.Add(m.encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeCtrl(b)
		if err != nil && !errors.Is(err, ErrBadCtrlMsg) {
			t.Fatalf("error not wrapping ErrBadCtrlMsg: %v", err)
		}
		if err == nil {
			// A clean decode must survive a re-encode/re-decode round trip
			// unchanged (byte order of the input may be non-canonical, but
			// the message itself must be stable).
			m2, err2 := decodeCtrl(m.encode())
			if err2 != nil {
				t.Fatalf("re-decode of clean message failed: %v", err2)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("round trip mutated message:\nfirst  %+v\nsecond %+v", m, m2)
			}
		}
	})
}
