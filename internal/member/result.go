package member

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Delivery is one multicast payload arriving at one node's host.
type Delivery struct {
	Idx uint32
	At  sim.Time
}

// EpochRecord is the ground truth for one committed epoch: exactly which
// nodes were members while it was current.
type EpochRecord struct {
	Epoch   uint32
	Members []fabric.NodeID // ascending, root included
	// Node/Join describe the transition that created the epoch (Node is
	// -1 for the initial epoch 0, the root for the finalize transition).
	Node fabric.NodeID
	Join bool
	At   sim.Time
	// RebuildNs is request-accepted to commit-complete; DisruptNs is the
	// root pump's freeze-to-thaw stall (the traffic disruption gap).
	RebuildNs, DisruptNs int64
}

// Result is everything a membership run observed.
type Result struct {
	Nodes int
	Root  fabric.NodeID
	// Epochs holds one record per committed epoch, in commit order,
	// starting with the initial epoch 0.
	Epochs []EpochRecord
	// SendEpoch[i] is the epoch the firmware staged payload i in;
	// SendStamped[i] records whether the stamp callback fired at all (a
	// run that ends early leaves payloads unstamped). The flag is separate
	// from the value because every uint32 — including 0 and MaxUint32 —
	// is a legitimate epoch once the counter wraps; a sentinel value would
	// alias a real epoch. SendSize[i] is payload i's on-wire length after
	// clamping.
	SendEpoch     []uint32
	SendStamped   []bool
	SendSize      []int
	SentinelEpoch uint32
	// SentinelStamped records whether the sentinel's stamp callback fired.
	SentinelStamped bool
	// Deliveries[n] is node n's delivery sequence in arrival order,
	// sentinel included.
	Deliveries [][]Delivery
	// Violations collects protocol errors observed during the run
	// (corrupt payloads, stray control traffic). Verify appends to and
	// returns this list.
	Violations  []string
	Rejected    int
	Transitions int
	// Finish is when the sender saw every completion; zero if the run
	// hit the deadline first.
	Finish sim.Time

	// failMu guards Violations during the run: on a sharded cluster the
	// per-node receive loops report from different engines concurrently.
	failMu sync.Mutex
}

func (r *Result) fail(format string, args ...any) {
	r.failMu.Lock()
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	r.failMu.Unlock()
}

// Verify checks the membership invariant — every payload multicast in
// epoch E was delivered exactly once, in order, to exactly E's members —
// and returns all violations (nil means the run was correct).
func (r *Result) Verify() []string {
	errs := append([]string(nil), r.Violations...)
	if r.Finish == 0 {
		errs = append(errs, "run did not complete before the deadline")
		return errs
	}
	memberAt := make(map[uint32]map[fabric.NodeID]bool, len(r.Epochs))
	for _, e := range r.Epochs {
		set := make(map[fabric.NodeID]bool, len(e.Members))
		for _, n := range e.Members {
			set[n] = true
		}
		memberAt[e.Epoch] = set
	}
	for i, ep := range r.SendEpoch {
		if !r.SendStamped[i] {
			errs = append(errs, fmt.Sprintf("payload %d was never staged", i))
		} else if memberAt[ep] == nil {
			errs = append(errs, fmt.Sprintf("payload %d staged in unrecorded epoch %d", i, ep))
		}
	}
	if !r.SentinelStamped {
		errs = append(errs, "sentinel was never staged")
	} else if set := memberAt[r.SentinelEpoch]; set == nil || len(set) != r.Nodes {
		errs = append(errs, fmt.Sprintf("sentinel staged in epoch %d without full membership", r.SentinelEpoch))
	}
	if len(errs) > 0 {
		return errs
	}

	for n := 0; n < r.Nodes; n++ {
		id := fabric.NodeID(n)
		if id == r.Root {
			continue
		}
		var want []uint32
		for i, ep := range r.SendEpoch {
			if memberAt[ep][id] {
				want = append(want, uint32(i))
			}
		}
		if memberAt[r.SentinelEpoch][id] {
			want = append(want, sentinelIdx)
		}
		got := r.Deliveries[id]
		if len(got) != len(want) {
			errs = append(errs, fmt.Sprintf("node %d: delivered %d payloads, membership says %d",
				n, len(got), len(want)))
			continue
		}
		for i := range want {
			if got[i].Idx != want[i] {
				errs = append(errs, fmt.Sprintf("node %d: delivery %d is payload %d, want %d (order or membership violation)",
					n, i, got[i].Idx, want[i]))
				break
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}

// EpochMembers returns the recorded membership of an epoch (nil if the
// epoch was never committed).
func (r *Result) EpochMembers(epoch uint32) []fabric.NodeID {
	for _, e := range r.Epochs {
		if e.Epoch == epoch {
			return e.Members
		}
	}
	return nil
}

// DeliveredPayloads counts all non-sentinel deliveries across the
// cluster — the denominator for disruption statistics.
func (r *Result) DeliveredPayloads() int {
	total := 0
	for _, ds := range r.Deliveries {
		for _, d := range ds {
			if d.Idx != sentinelIdx {
				total++
			}
		}
	}
	return total
}

// String summarizes the run for logs. The epoch count is the number of
// committed EpochRecords (commit order), not max-epoch+1 — the latter is
// meaningless once the counter wraps or starts above 0.
func (r *Result) String() string {
	sizes := make([]int, 0, len(r.Epochs))
	for _, e := range r.Epochs {
		sizes = append(sizes, len(e.Members))
	}
	sort.Ints(sizes)
	return fmt.Sprintf("member: %d transitions over %d epochs, group size %d..%d, %d payloads delivered, %d rejected, finish %v",
		r.Transitions, len(r.Epochs), sizes[0], sizes[len(sizes)-1], r.DeliveredPayloads(), r.Rejected, r.Finish)
}
