package member

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func churnPlan(t *testing.T, spec workload.ChurnSpec, seed int64) workload.ChurnPlan {
	t.Helper()
	plan, err := workload.GenerateChurn(spec, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runPlan(t *testing.T, nodes int, plan workload.ChurnPlan) *Result {
	t.Helper()
	c := cluster.NewFromConfig(cluster.DefaultConfig(nodes))
	res := Run(c, Config{}, plan)
	if errs := res.Verify(); errs != nil {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("membership invariant violated: %s", res)
	}
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("%d procs still alive after shutdown", live)
	}
	for _, n := range c.Nodes {
		if out := n.Ext.OutstandingRecords(); out != 0 {
			t.Fatalf("node %d leaked %d send records", n.ID, out)
		}
		if timers := n.Ext.PendingGroupTimers(); timers != 0 {
			t.Fatalf("node %d leaked %d group timers", n.ID, timers)
		}
	}
	return res
}

// A transition-free plan exercises install, traffic, finalize, sentinel,
// and shutdown without any epoch roll beyond the finalize itself.
func TestRunStaticGroup(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{Nodes: 6, Transitions: 0, Msgs: 8, MeanSize: 2048}, 3)
	res := runPlan(t, 6, plan)
	for i, ep := range res.SendEpoch {
		if ep != 0 {
			t.Fatalf("payload %d staged in epoch %d, want 0 (no churn before finalize)", i, ep)
		}
	}
	if res.Transitions != 1 {
		t.Fatalf("%d transitions recorded, want only the finalize", res.Transitions)
	}
}

// The core tentpole test: joins and leaves under live traffic, every
// payload delivered exactly once, in order, to exactly its epoch's
// membership.
func TestRunChurnUnderTraffic(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{
		Nodes: 8, Transitions: 10, Msgs: 24, MeanSize: 4096,
		MeanGap: 15 * sim.Microsecond, MeanChurnGap: 60 * sim.Microsecond,
	}, 11)
	res := runPlan(t, 8, plan)
	if res.Transitions < 10 {
		t.Fatalf("only %d transitions committed, want >= 10", res.Transitions)
	}
	// The schedule must actually have rolled epochs while traffic flowed.
	rolled := false
	for _, ep := range res.SendEpoch {
		if ep != 0 {
			rolled = true
		}
	}
	if !rolled {
		t.Fatal("every payload stayed in epoch 0 — churn never interleaved with traffic")
	}
	for _, e := range res.Epochs[1:] {
		if e.RebuildNs <= 0 || e.DisruptNs < 0 {
			t.Fatalf("epoch %d: implausible rebuild %dns / disruption %dns", e.Epoch, e.RebuildNs, e.DisruptNs)
		}
	}
}

// Membership runs must be a pure function of the plan: identical results
// on a fresh cluster, field for field.
func TestRunDeterminism(t *testing.T) {
	spec := workload.ChurnSpec{
		Nodes: 7, Transitions: 8, Msgs: 16, MeanSize: 1024,
		MeanGap: 10 * sim.Microsecond, MeanChurnGap: 50 * sim.Microsecond,
	}
	a := runPlan(t, 7, churnPlan(t, spec, 21))
	b := runPlan(t, 7, churnPlan(t, spec, 21))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of the same plan diverged:\n%s\n%s", a, b)
	}
}

// checkMembersUnique asserts every committed epoch's membership is
// strictly ascending with no duplicate entries — the shape a coordinator
// that mutated pending-transition state on a duplicate request would
// break first.
func checkMembersUnique(t *testing.T, res *Result) {
	t.Helper()
	for _, e := range res.Epochs {
		for i := 1; i < len(e.Members); i++ {
			if e.Members[i] <= e.Members[i-1] {
				t.Fatalf("epoch %d membership not strictly ascending: %v", e.Epoch, e.Members)
			}
		}
	}
}

// Regression (raced requests): a duplicate join from a node that is
// already a member — including an exactly-simultaneous raced copy — is
// rejected, never applied twice. The membership lists stay duplicate-free
// and the invariant holds.
func TestDuplicateJoinFromMemberRejected(t *testing.T) {
	plan := workload.ChurnPlan{
		Root:    0,
		Initial: []int{1, 2},
		Events: []workload.ChurnEvent{
			{Node: 3, Join: true, At: 20 * sim.Microsecond},
			{Node: 3, Join: true, At: 20 * sim.Microsecond}, // raced duplicate, same instant
			{Node: 3, Join: true, At: 90 * sim.Microsecond}, // late duplicate, 3 already in
		},
		Sends: []workload.Message{
			{Src: 0, Dst: workload.GroupDst, Size: 512, At: 10 * sim.Microsecond},
			{Src: 0, Dst: workload.GroupDst, Size: 512, At: 120 * sim.Microsecond},
		},
	}
	res := runPlan(t, 6, plan)
	if res.Rejected != 2 {
		t.Fatalf("rejected %d requests, want 2 (both duplicate joins)", res.Rejected)
	}
	// The accepted join plus the finalize.
	if res.Transitions != 2 {
		t.Fatalf("%d transitions committed, want 2", res.Transitions)
	}
	checkMembersUnique(t, res)
}

// Regression (raced requests): a leave from a node that was never a
// member, and a second leave from a node that already left, are both
// rejected instead of corrupting the view.
func TestLeaveFromNonMemberRejected(t *testing.T) {
	plan := workload.ChurnPlan{
		Root:    0,
		Initial: []int{1, 2, 3},
		Events: []workload.ChurnEvent{
			{Node: 2, Join: false, At: 20 * sim.Microsecond},
			{Node: 4, Join: false, At: 25 * sim.Microsecond}, // never a member
			{Node: 2, Join: false, At: 90 * sim.Microsecond}, // already left
		},
		Sends: []workload.Message{
			{Src: 0, Dst: workload.GroupDst, Size: 512, At: 10 * sim.Microsecond},
			{Src: 0, Dst: workload.GroupDst, Size: 512, At: 120 * sim.Microsecond},
		},
	}
	res := runPlan(t, 6, plan)
	if res.Rejected != 2 {
		t.Fatalf("rejected %d requests, want 2 (non-member leave + double leave)", res.Rejected)
	}
	if res.Transitions != 2 {
		t.Fatalf("%d transitions committed, want 2 (the leave + finalize)", res.Transitions)
	}
	checkMembersUnique(t, res)
	// Node 2 must actually be out: the accepted-leave epoch excludes it.
	post := res.Epochs[1]
	for _, m := range post.Members {
		if m == 2 {
			t.Fatalf("epoch %d still contains the departed node 2: %v", post.Epoch, post.Members)
		}
	}
}

// Regression (epoch wraparound): a run whose epoch counter starts near
// MaxUint32 rolls straight through the wrap — the coordinator skips the
// static-reserved epoch 0, frames stamped MaxUint32 still classify
// correctly against post-wrap views, and Verify's staging bookkeeping
// does not alias MaxUint32 with "never staged" (the old sentinel value).
func TestEpochWraparoundUnderChurn(t *testing.T) {
	const first = ^uint32(0) - 2
	plan := churnPlan(t, workload.ChurnSpec{
		Nodes: 8, Transitions: 8, Msgs: 20, MeanSize: 1024,
		MeanGap: 10 * sim.Microsecond, MeanChurnGap: 40 * sim.Microsecond,
	}, 11)
	c := cluster.NewFromConfig(cluster.DefaultConfig(8))
	res := Run(c, Config{FirstEpoch: first}, plan)
	if errs := res.Verify(); errs != nil {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("membership invariant violated across the epoch wrap: %s", res)
	}
	if res.Transitions < 4 {
		t.Fatalf("only %d transitions committed — the counter never wrapped", res.Transitions)
	}
	sawTop, sawPostWrap := false, false
	for _, e := range res.Epochs {
		if e.Epoch == 0 {
			t.Fatal("epoch 0 was allocated to a dynamic transition — reserved for static groups")
		}
		if e.Epoch == ^uint32(0) {
			sawTop = true
		}
		if e.Epoch >= 1 && e.Epoch <= 8 {
			sawPostWrap = true
		}
	}
	if !sawTop || !sawPostWrap {
		t.Fatalf("run did not cross the wrap (top=%v postWrap=%v): epochs %v", sawTop, sawPostWrap, res.Epochs)
	}
	// MaxUint32 is a legitimate SendEpoch value here; the stamped flags —
	// not a sentinel — must say every payload was staged.
	for i, ok := range res.SendStamped {
		if !ok {
			t.Fatalf("payload %d reported unstamped", i)
		}
	}
}

// Leaving nodes stop receiving mid-run and rejoining nodes resume — the
// delivery sets must actually differ across nodes when churn happened.
func TestChurnActuallyExcludesDepartedNodes(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{
		Nodes: 8, Transitions: 12, Msgs: 30, MeanSize: 1024,
		MeanGap: 10 * sim.Microsecond, MeanChurnGap: 40 * sim.Microsecond,
	}, 5)
	res := runPlan(t, 8, plan)
	partial := false
	for n := 1; n < res.Nodes; n++ {
		if got := len(res.Deliveries[n]); got < len(plan.Sends)+1 {
			partial = true
		}
	}
	if !partial {
		t.Fatal("every node received every payload — departures never took effect")
	}
}
