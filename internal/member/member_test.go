package member

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func churnPlan(t *testing.T, spec workload.ChurnSpec, seed int64) workload.ChurnPlan {
	t.Helper()
	plan, err := workload.GenerateChurn(spec, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runPlan(t *testing.T, nodes int, plan workload.ChurnPlan) *Result {
	t.Helper()
	c := cluster.NewFromConfig(cluster.DefaultConfig(nodes))
	res := Run(c, Config{}, plan)
	if errs := res.Verify(); errs != nil {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("membership invariant violated: %s", res)
	}
	if live := c.Eng.LiveProcs(); live != 0 {
		t.Fatalf("%d procs still alive after shutdown", live)
	}
	for _, n := range c.Nodes {
		if out := n.Ext.OutstandingRecords(); out != 0 {
			t.Fatalf("node %d leaked %d send records", n.ID, out)
		}
		if timers := n.Ext.PendingGroupTimers(); timers != 0 {
			t.Fatalf("node %d leaked %d group timers", n.ID, timers)
		}
	}
	return res
}

// A transition-free plan exercises install, traffic, finalize, sentinel,
// and shutdown without any epoch roll beyond the finalize itself.
func TestRunStaticGroup(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{Nodes: 6, Transitions: 0, Msgs: 8, MeanSize: 2048}, 3)
	res := runPlan(t, 6, plan)
	for i, ep := range res.SendEpoch {
		if ep != 0 {
			t.Fatalf("payload %d staged in epoch %d, want 0 (no churn before finalize)", i, ep)
		}
	}
	if res.Transitions != 1 {
		t.Fatalf("%d transitions recorded, want only the finalize", res.Transitions)
	}
}

// The core tentpole test: joins and leaves under live traffic, every
// payload delivered exactly once, in order, to exactly its epoch's
// membership.
func TestRunChurnUnderTraffic(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{
		Nodes: 8, Transitions: 10, Msgs: 24, MeanSize: 4096,
		MeanGap: 15 * sim.Microsecond, MeanChurnGap: 60 * sim.Microsecond,
	}, 11)
	res := runPlan(t, 8, plan)
	if res.Transitions < 10 {
		t.Fatalf("only %d transitions committed, want >= 10", res.Transitions)
	}
	// The schedule must actually have rolled epochs while traffic flowed.
	rolled := false
	for _, ep := range res.SendEpoch {
		if ep != 0 {
			rolled = true
		}
	}
	if !rolled {
		t.Fatal("every payload stayed in epoch 0 — churn never interleaved with traffic")
	}
	for _, e := range res.Epochs[1:] {
		if e.RebuildNs <= 0 || e.DisruptNs < 0 {
			t.Fatalf("epoch %d: implausible rebuild %dns / disruption %dns", e.Epoch, e.RebuildNs, e.DisruptNs)
		}
	}
}

// Membership runs must be a pure function of the plan: identical results
// on a fresh cluster, field for field.
func TestRunDeterminism(t *testing.T) {
	spec := workload.ChurnSpec{
		Nodes: 7, Transitions: 8, Msgs: 16, MeanSize: 1024,
		MeanGap: 10 * sim.Microsecond, MeanChurnGap: 50 * sim.Microsecond,
	}
	a := runPlan(t, 7, churnPlan(t, spec, 21))
	b := runPlan(t, 7, churnPlan(t, spec, 21))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of the same plan diverged:\n%s\n%s", a, b)
	}
}

// Leaving nodes stop receiving mid-run and rejoining nodes resume — the
// delivery sets must actually differ across nodes when churn happened.
func TestChurnActuallyExcludesDepartedNodes(t *testing.T) {
	plan := churnPlan(t, workload.ChurnSpec{
		Nodes: 8, Transitions: 12, Msgs: 30, MeanSize: 1024,
		MeanGap: 10 * sim.Microsecond, MeanChurnGap: 40 * sim.Microsecond,
	}, 5)
	res := runPlan(t, 8, plan)
	partial := false
	for n := 1; n < res.Nodes; n++ {
		if got := len(res.Deliveries[n]); got < len(plan.Sends)+1 {
			partial = true
		}
	}
	if !partial {
		t.Fatal("every node received every payload — departures never took effect")
	}
}
