package member

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// agent is the per-node membership handler: it stages, drains, and
// commits epoch views against the local NIC on the coordinator's orders.
type agent struct {
	s *System
	n fabric.NodeID
	// staged/stagedEpoch track the view this node staged in the in-flight
	// transition. The explicit flag (rather than a 0-means-none sentinel)
	// keeps the check correct for every epoch value in the wrapping
	// uint32 epoch space.
	staged      bool
	stagedEpoch uint32
}

// agentLoop is every node's control-port service loop. The root's loop
// additionally runs the coordinator: request and phase-reply kinds are
// routed to it, while prepare/quiesce/commit addressed to the root itself
// arrive as self-posted events and take the same agent path as on any
// other node.
func (s *System) agentLoop(p *sim.Proc, n fabric.NodeID) {
	a := &agent{s: s, n: n}
	port := s.ctrl[n]
	port.ProvideN(4, s.ctrlBufCap())
	// The initial epoch-0 installs finished before any agent spawned (RunOn
	// runs the cluster to quiescence between installing and spawning), so a
	// prepare can never overtake an install of the same group.
	for {
		ev := port.Recv(p)
		port.Provide(s.ctrlBufCap())
		m, err := decodeCtrl(ev.Data)
		if err != nil {
			s.res.fail("node %d: %v", n, err)
			continue
		}
		switch m.kind {
		case ctrlPrepare:
			a.onPrepare(p, m)
		case ctrlQuiesce:
			a.onQuiesce(p, m)
		case ctrlCommit:
			a.onCommit(p, m)
		case ctrlShutdown:
			return
		default:
			if n != s.root {
				s.res.fail("node %d: unexpected control kind %d", n, m.kind)
				continue
			}
			s.co.handle(p, m)
			if s.co.done {
				return
			}
		}
	}
}

// onPrepare stages the new epoch's view. A node in the new membership
// stages the rebuilt tree (an update if it is already a member, a fresh
// non-live install if it is joining); a node absent from the new
// membership stages its own departure (nil tree). Either way the local
// group entry freezes at a message boundary until commit.
func (a *agent) onPrepare(p *sim.Proc, m ctrlMsg) {
	s := a.s
	var tr *tree.Tree
	for _, mem := range m.members {
		if mem == a.n {
			tr = tree.FromParents(m.root, m.parents)
			break
		}
	}
	s.await(p, func(done func()) {
		s.c.Nodes[a.n].Ext.PrepareGroupEpoch(s.cfg.Group, tr, s.cfg.DataPort, s.cfg.DataPort, m.epoch, done)
	})
	a.staged, a.stagedEpoch = true, m.epoch
	if a.n == s.root {
		s.co.freezeAt = p.Now()
	}
	s.sendCtrl(p, a.n, s.root, ctrlMsg{kind: ctrlPrepared, node: a.n, epoch: m.epoch})
}

// onQuiesce drains the old epoch's in-flight traffic at this node and
// reports. The coordinator only asks once this node's parent in the OLD
// tree has drained, so "drained" here is stable: nothing upstream can
// re-arm this node's send records afterwards.
func (a *agent) onQuiesce(p *sim.Proc, m ctrlMsg) {
	s := a.s
	s.await(p, func(done func()) {
		s.c.Nodes[a.n].Ext.QuiesceGroup(s.cfg.Group, done)
	})
	s.sendCtrl(p, a.n, s.root, ctrlMsg{kind: ctrlDrained, node: a.n, epoch: m.epoch})
}

// onCommit activates the staged view (or completes this node's
// departure) and reports. The root's commit is what un-freezes the send
// pump into the new epoch.
func (a *agent) onCommit(p *sim.Proc, m ctrlMsg) {
	s := a.s
	if a.staged && a.stagedEpoch == m.epoch {
		s.await(p, func(done func()) {
			s.c.Nodes[a.n].Ext.CommitGroupEpoch(s.cfg.Group, m.epoch, done)
		})
		a.staged = false
	}
	if a.n == s.root {
		s.co.thawAt = p.Now()
	}
	s.sendCtrl(p, a.n, s.root, ctrlMsg{kind: ctrlCommitted, node: a.n, epoch: m.epoch})
}
