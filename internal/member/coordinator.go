package member

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Coordinator phases. One transition is in flight at a time; requests
// arriving mid-transition queue.
const (
	phaseIdle = iota
	phasePreparing
	phaseQuiescing
	phaseCommitting
)

// coord is the membership coordinator state machine, driven by the root
// node's control loop.
type coord struct {
	s *System

	members map[fabric.NodeID]bool // current membership, root included
	tr      *tree.Tree             // current epoch's tree
	epoch   uint32

	phase   int
	reqNode fabric.NodeID // the transition's subject (root for finalize)
	reqJoin bool
	target  []fabric.NodeID // new membership, ascending, root included
	nextTr  *tree.Tree
	parts   []fabric.NodeID        // union(old, new) membership
	waitFor map[fabric.NodeID]bool // outstanding replies this phase/level
	levels  [][]fabric.NodeID      // old tree in BFS level order
	lvl     int
	startAt sim.Time // request accepted: rebuild latency starts here
	// freezeAt/thawAt bracket the root pump's stall — the traffic
	// disruption gap. Stamped by the root's own agent handlers.
	freezeAt, thawAt sim.Time

	pending      []ctrlMsg // requests queued behind the in-flight transition
	reqsSeen     int       // join/leave requests received (incl. rejected)
	wantFinalize bool
	wantShutdown bool
	done         bool
}

func newCoord(s *System, initial []fabric.NodeID, tr *tree.Tree) *coord {
	co := &coord{s: s, tr: tr, members: make(map[fabric.NodeID]bool, len(initial))}
	for _, m := range initial {
		co.members[m] = true
	}
	return co
}

// handle processes one coordinator-addressed control message.
func (co *coord) handle(p *sim.Proc, m ctrlMsg) {
	switch m.kind {
	case ctrlJoin, ctrlLeave:
		co.reqsSeen++
		if co.phase != phaseIdle {
			co.pending = append(co.pending, m)
			return
		}
		co.request(p, m)
	case ctrlFinalize:
		co.wantFinalize = true
	case ctrlShutdownReq:
		co.wantShutdown = true
	case ctrlPrepared:
		co.reply(p, phasePreparing, m)
	case ctrlDrained:
		co.reply(p, phaseQuiescing, m)
	case ctrlCommitted:
		co.reply(p, phaseCommitting, m)
	default:
		co.s.res.fail("coordinator: unexpected control kind %d", m.kind)
	}
	co.idle(p)
}

// idle drains deferred work whenever the coordinator returns to idle:
// queued requests first, then a pending finalize (only once every
// scheduled request has been seen), then shutdown.
func (co *coord) idle(p *sim.Proc) {
	for co.phase == phaseIdle && !co.done {
		switch {
		case len(co.pending) > 0:
			m := co.pending[0]
			co.pending = co.pending[1:]
			co.request(p, m)
		case co.wantFinalize && co.reqsSeen == len(co.s.plan.Events):
			co.wantFinalize = false
			co.finalize(p)
		case co.s.finalized && co.wantShutdown:
			co.shutdown(p)
		default:
			return
		}
	}
}

// nextEpoch is the epoch the in-flight (or next) transition commits.
// Epoch 0 is reserved for static groups — the NIC rx path discriminates
// static from dynamic traffic by frame epoch 0, so the counter skips it
// when wrapping past MaxUint32 (serial-number space; see gm.EpochAfter).
func (co *coord) nextEpoch() uint32 {
	e := co.epoch + 1
	if e == 0 {
		e = 1
	}
	return e
}

// request validates one join/leave against the ACTUAL current membership
// (requests may arrive reordered across nodes relative to the plan) and
// starts a transition. Invalid requests — joining a member, leaving a
// non-member, leaving as root, or a leave that would empty the group —
// are rejected and counted.
func (co *coord) request(p *sim.Proc, m ctrlMsg) {
	join := m.kind == ctrlJoin
	bad := m.node == co.s.root ||
		int(m.node) < 0 || int(m.node) >= len(co.s.c.Nodes) ||
		join == co.members[m.node] ||
		(!join && len(co.members) <= 2)
	if bad {
		co.s.mRejected.Inc()
		co.s.res.Rejected++
		return
	}
	target := make([]fabric.NodeID, 0, len(co.members)+1)
	for n := range co.members {
		if !join && n == m.node {
			continue
		}
		target = append(target, n)
	}
	if join {
		target = append(target, m.node)
	}
	co.begin(p, m.node, join, target)
}

// finalize grows the group to full cluster membership (a single
// transition) so the sentinel reaches every node. A no-op if everyone is
// already a member.
func (co *coord) finalize(p *sim.Proc) {
	if len(co.members) == len(co.s.c.Nodes) {
		co.s.finalized = true
		co.s.finalWait.WakeAll()
		return
	}
	target := make([]fabric.NodeID, 0, len(co.s.c.Nodes))
	for n := range co.s.c.Nodes {
		target = append(target, fabric.NodeID(n))
	}
	co.begin(p, co.s.root, true, target)
}

// begin starts the two-phase epoch roll toward the target membership:
// rebuild the tree incrementally, then PREPARE every participant (union
// of old and new membership).
func (co *coord) begin(p *sim.Proc, node fabric.NodeID, join bool, target []fabric.NodeID) {
	sort.Slice(target, func(i, j int) bool { return target[i] < target[j] })
	co.reqNode, co.reqJoin = node, join
	co.target = target
	co.nextTr = tree.Incremental(co.tr, co.s.root, target, co.s.cfg.Fanout)
	co.startAt = p.Now()

	union := make(map[fabric.NodeID]bool, len(target)+1)
	for n := range co.members {
		union[n] = true
	}
	for _, n := range target {
		union[n] = true
	}
	co.parts = co.parts[:0]
	for n := range union {
		co.parts = append(co.parts, n)
	}
	sort.Slice(co.parts, func(i, j int) bool { return co.parts[i] < co.parts[j] })

	co.phase = phasePreparing
	co.waitFor = make(map[fabric.NodeID]bool, len(co.parts))
	msg := ctrlMsg{
		kind:    ctrlPrepare,
		epoch:   co.nextEpoch(),
		root:    co.s.root,
		members: co.target,
		parents: co.nextTr.Parents(),
	}
	for _, n := range co.parts {
		co.waitFor[n] = true
	}
	for _, n := range co.parts {
		co.s.sendCtrl(p, co.s.root, n, msg)
	}
}

// reply retires one outstanding phase reply and advances the machine
// when the wait set empties.
func (co *coord) reply(p *sim.Proc, wantPhase int, m ctrlMsg) {
	if co.phase != wantPhase || m.epoch != co.nextEpoch() || !co.waitFor[m.node] {
		co.s.res.fail("coordinator: stray reply kind=%d node=%d epoch=%d in phase %d",
			m.kind, m.node, m.epoch, co.phase)
		return
	}
	delete(co.waitFor, m.node)
	if len(co.waitFor) > 0 {
		return
	}
	switch co.phase {
	case phasePreparing:
		// Everyone staged and frozen. Drain the OLD epoch top-down in BFS
		// level order over the OLD tree: a node's drain is only stable
		// once its parent has drained (the root's frozen pump is the
		// ground case), so each level must fully report before the next
		// is asked.
		co.phase = phaseQuiescing
		co.levels = bfsLevels(co.tr)
		co.lvl = 0
		co.quiesceLevel(p)
	case phaseQuiescing:
		co.lvl++
		if co.lvl < len(co.levels) {
			co.quiesceLevel(p)
			return
		}
		co.phase = phaseCommitting
		co.waitFor = make(map[fabric.NodeID]bool, len(co.parts))
		for _, n := range co.parts {
			co.waitFor[n] = true
		}
		msg := ctrlMsg{kind: ctrlCommit, epoch: co.nextEpoch()}
		// Commit remote participants before the root: the root's commit
		// un-freezes the pump, and a head start for the others shortens
		// the future-epoch retransmit window (correct either way — a NIC
		// that has not committed yet silently drops the new epoch's
		// frames and the parent retransmits).
		for _, n := range co.parts {
			if n != co.s.root {
				co.s.sendCtrl(p, co.s.root, n, msg)
			}
		}
		co.s.sendCtrl(p, co.s.root, co.s.root, msg)
	case phaseCommitting:
		co.finish(p)
	}
}

// quiesceLevel asks every old member in the current BFS level to drain.
func (co *coord) quiesceLevel(p *sim.Proc) {
	level := co.levels[co.lvl]
	co.waitFor = make(map[fabric.NodeID]bool, len(level))
	for _, n := range level {
		co.waitFor[n] = true
	}
	msg := ctrlMsg{kind: ctrlQuiesce, epoch: co.nextEpoch()}
	for _, n := range level {
		co.s.sendCtrl(p, co.s.root, n, msg)
	}
}

// finish records the committed epoch: the new membership becomes ground
// truth for the membership invariant, and the rebuild latency and
// traffic-disruption gap feed the histograms.
func (co *coord) finish(p *sim.Proc) {
	co.epoch = co.nextEpoch()
	co.members = make(map[fabric.NodeID]bool, len(co.target))
	for _, n := range co.target {
		co.members[n] = true
	}
	co.tr = co.nextTr
	co.phase = phaseIdle

	rebuild := int64(p.Now() - co.startAt)
	disrupt := int64(co.thawAt - co.freezeAt)
	co.s.mTransitions.Inc()
	if co.reqNode != co.s.root {
		if co.reqJoin {
			co.s.mJoins.Inc()
		} else {
			co.s.mLeaves.Inc()
		}
	}
	co.s.mRebuildNs.Observe(rebuild)
	co.s.mDisruptNs.Observe(disrupt)
	co.s.res.Transitions++
	co.s.res.Epochs = append(co.s.res.Epochs, EpochRecord{
		Epoch:     co.epoch,
		Members:   append([]fabric.NodeID(nil), co.target...),
		Node:      co.reqNode,
		Join:      co.reqJoin,
		At:        p.Now(),
		RebuildNs: rebuild,
		DisruptNs: disrupt,
	})
	if co.reqNode == co.s.root {
		// This was the finalize transition.
		co.s.finalized = true
		co.s.finalWait.WakeAll()
	}
}

// shutdown broadcasts exit to every other agent and retires the
// coordinator's own loop.
func (co *coord) shutdown(p *sim.Proc) {
	msg := ctrlMsg{kind: ctrlShutdown}
	for n := range co.s.c.Nodes {
		if id := fabric.NodeID(n); id != co.s.root {
			co.s.sendCtrl(p, co.s.root, id, msg)
		}
	}
	co.done = true
}

// bfsLevels returns the tree's nodes grouped by depth, root first.
func bfsLevels(t *tree.Tree) [][]fabric.NodeID {
	var out [][]fabric.NodeID
	level := []fabric.NodeID{t.Root}
	for len(level) > 0 {
		out = append(out, level)
		var next []fabric.NodeID
		for _, n := range level {
			next = append(next, t.Children(n)...)
		}
		level = next
	}
	return out
}
