package member

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Config parameterizes a membership run.
type Config struct {
	// Group is the dynamic group's ID (default 7).
	Group gm.GroupID
	// DataPort carries multicast payloads; CtrlPort carries the
	// membership protocol. Defaults 1 and 2.
	DataPort, CtrlPort gm.PortID
	// Fanout bounds the rebuilt tree's out-degree (default 2).
	Fanout int
	// Deadline bounds the simulated run (default 500ms).
	Deadline sim.Time
	// FirstEpoch is the epoch the initial view is installed as (default
	// 0). Epochs live in uint32 serial-number space and the coordinator
	// skips 0 when wrapping (it is reserved for static groups), so a test
	// can start near MaxUint32 and drive the counter through wraparound.
	FirstEpoch uint32
}

func (c Config) withDefaults() Config {
	if c.Group == 0 {
		c.Group = 7
	}
	if c.DataPort == 0 {
		c.DataPort = 1
	}
	if c.CtrlPort == 0 {
		c.CtrlPort = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.Deadline <= 0 {
		c.Deadline = 500 * sim.Millisecond
	}
	return c
}

// sentinelIdx marks the end-of-run multicast, sent after the group has
// been finalized to full membership so every node's receiver can exit.
const sentinelIdx = ^uint32(0)

// SentinelSize is the sentinel's payload length — campaigns that audit
// packet accounting need it to price the final multicast.
const SentinelSize = 16

// System wires a cluster, a churn plan, and the membership protocol
// together for one run.
type System struct {
	c    *cluster.Cluster
	cfg  Config
	plan workload.ChurnPlan
	root fabric.NodeID

	data []*gm.Port
	ctrl []*gm.Port

	co  *coord
	res *Result

	// installsLeft counts pending epoch-0 installs; the callbacks fire on
	// different shards' engines concurrently, hence the atomic. Read only
	// after a run barrier.
	installsLeft atomic.Int64
	finalized    bool
	finalWait    *sim.Waiter

	mTransitions *metrics.Counter
	mJoins       *metrics.Counter
	mLeaves      *metrics.Counter
	mRejected    *metrics.Counter
	mRebuildNs   *metrics.Histogram
	mDisruptNs   *metrics.Histogram
}

// Run executes a churn plan on the cluster: it installs the initial
// epoch-0 group, spawns the per-node membership agents, the coordinator
// (on the root), the per-node receivers, the join/leave request
// processes, and the root sender, then runs the engine to the deadline.
// The returned Result holds the per-epoch membership ground truth and
// every delivery; call Verify to check the membership invariant.
func Run(c *cluster.Cluster, cfg Config, plan workload.ChurnPlan) *Result {
	cfg = cfg.withDefaults()
	return RunOn(c, cfg, plan, c.OpenPorts(cfg.DataPort), c.OpenPorts(cfg.CtrlPort))
}

// RunOn is Run against ports the caller already opened (one data and one
// control port per node) — the chaos campaigns use it so they can audit
// port-level resources after the run.
func RunOn(c *cluster.Cluster, cfg Config, plan workload.ChurnPlan, data, ctrl []*gm.Port) *Result {
	cfg = cfg.withDefaults()
	if plan.Root != 0 {
		panic(fmt.Sprintf("member: plan root %d unsupported (coordinator lives on node 0)", plan.Root))
	}
	if len(plan.Initial) == 0 || len(plan.Sends) == 0 {
		panic("member: plan has no initial members or no sends")
	}
	n := len(c.Nodes)
	root := fabric.NodeID(plan.Root)
	s := &System{
		c:    c,
		cfg:  cfg,
		plan: plan,
		root: root,
		data: data,
		ctrl: ctrl,
		// finalWait is only ever touched from root-node processes (the
		// coordinator wakes it, the sender waits on it), so it lives on the
		// root's engine — on a sharded cluster that is the root's shard.
		finalWait: sim.NewWaiter(c.EngineOf(root)),
	}
	reg := metrics.Ensure(c.Cfg.Metrics)
	s.mTransitions = reg.Counter("member", int(s.root), "transitions")
	s.mJoins = reg.Counter("member", int(s.root), "joins")
	s.mLeaves = reg.Counter("member", int(s.root), "leaves")
	s.mRejected = reg.Counter("member", int(s.root), "rejected_requests")
	s.mRebuildNs = reg.Histogram("member", int(s.root), "rebuild_ns")
	s.mDisruptNs = reg.Histogram("member", int(s.root), "disruption_ns")

	initial := make([]fabric.NodeID, 0, len(plan.Initial)+1)
	initial = append(initial, s.root)
	for _, m := range plan.Initial {
		initial = append(initial, fabric.NodeID(m))
	}
	tr := tree.Incremental(nil, s.root, initial, cfg.Fanout)

	s.res = &Result{
		Nodes:       n,
		Root:        s.root,
		SendEpoch:   make([]uint32, len(plan.Sends)),
		SendStamped: make([]bool, len(plan.Sends)),
		SendSize:    make([]int, len(plan.Sends)),
		Deliveries:  make([][]Delivery, n),
	}
	s.res.Epochs = append(s.res.Epochs, EpochRecord{
		Epoch:   cfg.FirstEpoch,
		Members: append([]fabric.NodeID(nil), initial...),
		Node:    -1,
	})

	s.co = newCoord(s, initial, tr)
	s.co.epoch = cfg.FirstEpoch

	// Phase 1: install the initial epoch-0 view on the root and every
	// initial member, then run to quiescence so every entry is live before
	// any process starts. The quiescent barrier is also what makes reading
	// installsLeft safe on a sharded cluster: the install callbacks fire on
	// the members' engines, and only the barrier orders those writes before
	// this goroutine's read.
	for _, m := range initial {
		m := m
		s.installsLeft.Add(1)
		c.WithNode(m, func() {
			c.Nodes[m].Ext.InstallGroupEpoch(cfg.Group, tr, cfg.DataPort, cfg.DataPort, cfg.FirstEpoch, func() {
				s.installsLeft.Add(-1)
			})
		})
	}
	// The barrier must NOT drain the whole event heap (c.Run()): a fault
	// injector may already have armed absolute-time events — a NIC pause
	// deep in the run, say — and firing them here would advance the clock
	// past every fault window before a single membership process exists,
	// silently turning timed faults into no-ops. Bounded windows fire only
	// what installation itself schedules; the same RunUntil sequence runs
	// on serial and sharded clusters, so engine equivalence holds.
	installBudget := c.Now() + sim.Millisecond
	for s.installsLeft.Load() != 0 && c.Now() < installBudget {
		c.RunUntil(c.Now() + sim.Microsecond)
	}
	if left := s.installsLeft.Load(); left != 0 {
		panic(fmt.Sprintf("member: %d epoch-0 installs still pending after quiescence", left))
	}

	// Phase 2: spawn every process on its own node's engine and run to the
	// deadline.
	for id := 0; id < n; id++ {
		id := fabric.NodeID(id)
		c.SpawnOn(id, fmt.Sprintf("member-agent-%d", id), func(p *sim.Proc) {
			s.agentLoop(p, id)
		})
	}
	for id := 1; id < n; id++ {
		id := fabric.NodeID(id)
		c.SpawnOn(id, fmt.Sprintf("member-recv-%d", id), func(p *sim.Proc) {
			s.recvLoop(p, id)
		})
	}
	for i, ev := range plan.Events {
		i, ev := i, ev
		c.SpawnOn(fabric.NodeID(ev.Node), fmt.Sprintf("member-req-%d", i), func(p *sim.Proc) {
			s.requestProc(p, ev)
		})
	}
	c.SpawnOn(s.root, "member-send", func(p *sim.Proc) { s.senderLoop(p) })

	c.RunUntil(c.Now() + cfg.Deadline)
	return s.res
}

// ctrlBufCap is the receive-buffer capacity for control messages; the
// largest carries the full membership plus the full parent table.
func (s *System) ctrlBufCap() int { return 28 + 12*len(s.c.Nodes) }

// maxPayload is the receive-token capacity for data messages.
func (s *System) maxPayload() int {
	max := SentinelSize
	for _, m := range s.plan.Sends {
		if sz := clampSize(m.Size); sz > max {
			max = sz
		}
	}
	return max
}

// clampSize bumps payloads to the 8-byte floor needed for the index
// header plus at least one pattern byte.
func clampSize(sz int) int {
	if sz < 8 {
		return 8
	}
	return sz
}

// mkPayload builds the deterministic payload for message idx: a 4-byte
// little-endian index followed by an index-keyed byte pattern.
func mkPayload(idx uint32, size int) []byte {
	size = clampSize(size)
	b := make([]byte, size)
	binary.LittleEndian.PutUint32(b, idx)
	for i := 4; i < size; i++ {
		b[i] = byte(int(idx)*131 + i*29 + 7)
	}
	return b
}

// sendCtrl delivers a control message from node 'from' to node 'to'.
// Self-delivery (the coordinator messaging the root's own agent, or vice
// versa) cannot use gm.Send — self-sends panic — so it rides
// Port.PostGroupEvent through the same receive loop.
func (s *System) sendCtrl(p *sim.Proc, from, to fabric.NodeID, m ctrlMsg) {
	data := m.encode()
	if from == to {
		s.ctrl[from].PostGroupEvent(&gm.RecvEvent{
			Src: from, SrcPort: s.cfg.CtrlPort, Group: s.cfg.Group, Data: data,
		})
		return
	}
	s.ctrl[from].Send(p, to, s.cfg.CtrlPort, data)
}

// await runs a firmware operation that completes via callback and blocks
// the calling proc until it fires.
func (s *System) await(p *sim.Proc, post func(done func())) {
	ok := false
	w := sim.NewWaiter(p.Engine())
	post(func() {
		ok = true
		w.WakeAll()
	})
	for !ok {
		w.Wait(p)
	}
}

// requestProc sends one join/leave request from its node at its
// scheduled time.
func (s *System) requestProc(p *sim.Proc, ev workload.ChurnEvent) {
	if ev.At > p.Now() {
		p.Sleep(ev.At - p.Now())
	}
	kind := ctrlLeave
	if ev.Join {
		kind = ctrlJoin
	}
	node := fabric.NodeID(ev.Node)
	s.sendCtrl(p, node, s.root, ctrlMsg{kind: kind, node: node})
}

// senderLoop multicasts the plan's payloads from the root, recording the
// epoch each message was actually staged in (the firmware stamps it at
// the message boundary — authoritative for the membership invariant).
// After the last payload it asks the coordinator to finalize membership
// to the full cluster, multicasts the sentinel every receiver exits on,
// waits for all completions, and requests shutdown.
func (s *System) senderLoop(p *sim.Proc) {
	ext := s.c.Nodes[s.root].Ext
	port := s.data[s.root]
	for i, m := range s.plan.Sends {
		if m.At > p.Now() {
			p.Sleep(m.At - p.Now())
		}
		idx := uint32(i)
		buf := mkPayload(idx, m.Size)
		s.res.SendSize[i] = len(buf)
		ext.McastEpoch(p, port, s.cfg.Group, buf, func(epoch uint32) {
			s.res.SendEpoch[idx] = epoch
			s.res.SendStamped[idx] = true
		})
	}
	s.sendCtrl(p, s.root, s.root, ctrlMsg{kind: ctrlFinalize})
	for !s.finalized {
		s.finalWait.Wait(p)
	}
	ext.McastEpoch(p, port, s.cfg.Group, mkPayload(sentinelIdx, SentinelSize), func(epoch uint32) {
		s.res.SentinelEpoch = epoch
		s.res.SentinelStamped = true
	})
	for i := 0; i < len(s.plan.Sends)+1; i++ {
		port.WaitSendDone(p)
	}
	s.res.Finish = p.Now()
	s.sendCtrl(p, s.root, s.root, ctrlMsg{kind: ctrlShutdownReq})
}

// recvLoop consumes multicast deliveries at one non-root node, recording
// order and checking payload integrity. It exits on the sentinel, which
// reaches every node because the group is finalized to full membership
// before the sentinel is sent.
func (s *System) recvLoop(p *sim.Proc, id fabric.NodeID) {
	port := s.data[id]
	port.ProvideN(len(s.plan.Sends)+1, s.maxPayload())
	for {
		ev := port.Recv(p)
		if len(ev.Data) < 8 {
			s.res.fail("node %d: runt delivery of %d bytes", id, len(ev.Data))
			continue
		}
		idx := binary.LittleEndian.Uint32(ev.Data)
		for i := 4; i < len(ev.Data); i++ {
			if ev.Data[i] != byte(int(idx)*131+i*29+7) {
				s.res.fail("node %d: payload %d corrupt at byte %d", id, idx, i)
				break
			}
		}
		s.res.Deliveries[id] = append(s.res.Deliveries[id], Delivery{Idx: idx, At: p.Now()})
		if idx == sentinelIdx {
			return
		}
	}
}
