package trace

import (
	"strings"
	"testing"

	"repro/internal/fabric"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Log(1, 0, TX, "ignored")
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
}

func TestDisabledRecorderDropsEvents(t *testing.T) {
	r := &Recorder{}
	r.Log(1, 0, TX, "dropped")
	if r.Len() != 0 {
		t.Fatal("disabled recorder stored an event")
	}
	r.Enable()
	r.Log(2, 0, TX, "kept")
	if r.Len() != 1 {
		t.Fatal("enabled recorder dropped an event")
	}
	r.Disable()
	r.Log(3, 0, TX, "dropped again")
	if r.Len() != 1 {
		t.Fatal("disabled recorder stored an event")
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder()
	r.Log(1, 0, TX, "a")
	r.Log(2, 1, RX, "b")
	r.Log(3, 0, Drop, "c")
	r.Log(4, 2, TX, "d")
	if got := len(r.Filter(TX)); got != 2 {
		t.Fatalf("Filter(TX) = %d events, want 2", got)
	}
	if got := len(r.Filter(TX, Drop)); got != 3 {
		t.Fatalf("Filter(TX, Drop) = %d events, want 3", got)
	}
	if got := len(r.Filter()); got != 4 {
		t.Fatalf("Filter() = %d events, want all 4", got)
	}
}

func TestByNode(t *testing.T) {
	r := NewRecorder()
	r.Log(1, 0, TX, "a")
	r.Log(2, 1, RX, "b")
	r.Log(3, 0, Ack, "c")
	groups := r.ByNode()
	if len(groups[fabric.NodeID(0)]) != 2 || len(groups[fabric.NodeID(1)]) != 1 {
		t.Fatalf("ByNode grouping wrong: %v", groups)
	}
}

func TestCapTruncates(t *testing.T) {
	r := NewRecorder()
	r.Cap = 2
	for i := 0; i < 5; i++ {
		r.Log(1, 0, TX, "x")
	}
	if r.Len() != 2 || r.Truncated() != 3 {
		t.Fatalf("len=%d truncated=%d, want 2/3", r.Len(), r.Truncated())
	}
	var b strings.Builder
	r.WriteTimeline(&b)
	if !strings.Contains(b.String(), "truncated") {
		t.Fatal("timeline does not report truncation")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Cap = 1
	r.Log(1, 0, TX, "a")
	r.Log(2, 0, TX, "b")
	r.Reset()
	if r.Len() != 0 || r.Truncated() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestWriteTimelineFormat(t *testing.T) {
	r := NewRecorder()
	r.Log(1500, 3, Fwd, "grp=7 seq=2 -> n5")
	var b strings.Builder
	r.WriteTimeline(&b)
	out := b.String()
	for _, want := range []string{"n3", "fwd", "grp=7 seq=2 -> n5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline %q missing %q", out, want)
		}
	}
}

func TestWriteLanes(t *testing.T) {
	r := NewRecorder()
	r.Log(1, 2, TX, "first")
	r.Log(2, 0, RX, "second")
	var b strings.Builder
	r.WriteLanes(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lane view has %d lines, want header + 2 events", len(lines))
	}
	if !strings.Contains(lines[0], "n0") || !strings.Contains(lines[0], "n2") {
		t.Fatalf("lane header %q missing node columns", lines[0])
	}
	// Node 0's lane comes before node 2's: the RX mark should appear at a
	// smaller column offset than the TX mark.
	txCol := strings.Index(lines[1], "tx")
	rxCol := strings.Index(lines[2], "rx")
	if rxCol >= txCol {
		t.Fatalf("lane columns not ordered by node: tx@%d rx@%d", txCol, rxCol)
	}
}
