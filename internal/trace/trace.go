// Package trace records protocol-level events with virtual timestamps so
// a run can be rendered as a packet timeline — the tool one actually
// debugs a NIC firmware with. Recording is off unless a Recorder is
// attached to the NICs, and costs nothing in virtual time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Category classifies events for filtering.
type Category string

const (
	TX      Category = "tx"      // packet handed to the transmit engine
	RX      Category = "rx"      // packet accepted from the wire
	Drop    Category = "drop"    // packet refused (sequence, token, buffer)
	Fwd     Category = "fwd"     // NIC-based forward of a multicast packet
	Ack     Category = "ack"     // acknowledgment sent or processed
	Retrans Category = "retrans" // timeout or nack retransmission
	Host    Category = "host"    // host-visible event (delivery, post)
)

// Event is one timestamped record.
type Event struct {
	At   sim.Time
	Node fabric.NodeID
	Cat  Category
	Msg  string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  n%-3d %-8s %s", e.At, int(e.Node), e.Cat, e.Msg)
}

// Recorder accumulates events. The zero value records nothing until
// Enable; NewRecorder returns an enabled one.
type Recorder struct {
	enabled bool
	events  []Event
	// Cap bounds memory for long runs; 0 means unbounded. When full, new
	// events are dropped and Truncated reports how many.
	Cap       int
	truncated int
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{enabled: true} }

// Enable turns recording on; Disable turns it off.
func (r *Recorder) Enable()  { r.enabled = true }
func (r *Recorder) Disable() { r.enabled = false }

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Log records one event. Safe to call on a nil recorder.
func (r *Recorder) Log(at sim.Time, node fabric.NodeID, cat Category, format string, args ...any) {
	if r == nil || !r.enabled {
		return
	}
	if r.Cap > 0 && len(r.events) >= r.Cap {
		r.truncated++
		return
	}
	r.events = append(r.events, Event{At: at, Node: node, Cat: cat, Msg: fmt.Sprintf(format, args...)})
}

// Events returns all recorded events in insertion order (which is
// timestamp order, since simulation time is monotone during recording).
func (r *Recorder) Events() []Event { return r.events }

// Len reports the recorded event count; Truncated how many were dropped
// at the cap.
func (r *Recorder) Len() int       { return len(r.events) }
func (r *Recorder) Truncated() int { return r.truncated }

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.events = nil
	r.truncated = 0
}

// Filter returns the events matching any of the given categories, and all
// events when none are given.
func (r *Recorder) Filter(cats ...Category) []Event {
	if len(cats) == 0 {
		return r.events
	}
	want := make(map[Category]bool, len(cats))
	for _, c := range cats {
		want[c] = true
	}
	var out []Event
	for _, e := range r.events {
		if want[e.Cat] {
			out = append(out, e)
		}
	}
	return out
}

// ByNode groups events per node, each group in time order.
func (r *Recorder) ByNode() map[fabric.NodeID][]Event {
	out := make(map[fabric.NodeID][]Event)
	for _, e := range r.events {
		out[e.Node] = append(out[e.Node], e)
	}
	return out
}

// WriteTimeline renders all events in time order, one per line.
func (r *Recorder) WriteTimeline(w io.Writer) {
	for _, e := range r.events {
		fmt.Fprintln(w, e)
	}
	if r.truncated > 0 {
		fmt.Fprintf(w, "... %d events truncated at cap %d\n", r.truncated, r.Cap)
	}
}

// WriteLanes renders a per-node lane view: nodes as columns sorted by ID,
// events as rows in time order, with each event marked in its node's lane
// — a text Gantt of the multicast.
func (r *Recorder) WriteLanes(w io.Writer) {
	nodes := make([]fabric.NodeID, 0)
	seen := map[fabric.NodeID]bool{}
	for _, e := range r.events {
		if !seen[e.Node] {
			seen[e.Node] = true
			nodes = append(nodes, e.Node)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	lane := make(map[fabric.NodeID]int, len(nodes))
	var header strings.Builder
	header.WriteString(fmt.Sprintf("%12s  ", "time"))
	for i, n := range nodes {
		lane[n] = i
		header.WriteString(fmt.Sprintf("%-6s", fmt.Sprintf("n%d", int(n))))
	}
	fmt.Fprintln(w, header.String())
	for _, e := range r.events {
		var row strings.Builder
		row.WriteString(fmt.Sprintf("%12s  ", e.At))
		for range nodes[:lane[e.Node]] {
			row.WriteString("      ")
		}
		mark := string(e.Cat)
		if len(mark) > 5 {
			mark = mark[:5]
		}
		row.WriteString(fmt.Sprintf("%-6s", mark))
		fmt.Fprintf(w, "%s %s\n", row.String(), e.Msg)
	}
}
