// Package tree constructs multicast spanning trees: the binomial tree the
// traditional host-based broadcast uses, and the latency-optimal tree of
// Bar-Noy & Kipnis's postal model that the paper's NIC-based multicast
// uses. All constructions first sort destinations by network ID and keep
// every child's ID greater than its parent's (unless the parent is the
// root) — the paper's deadlock-avoidance rule for receive-token cycles.
package tree

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Tree is a rooted multicast spanning tree. Children of each node are
// ordered: the first child is sent to first.
type Tree struct {
	Root     fabric.NodeID
	children map[fabric.NodeID][]fabric.NodeID
	parent   map[fabric.NodeID]fabric.NodeID
	nodes    []fabric.NodeID // all members, root first, then sorted
}

func newTree(root fabric.NodeID, dests []fabric.NodeID) *Tree {
	t := &Tree{
		Root:     root,
		children: make(map[fabric.NodeID][]fabric.NodeID, len(dests)+1),
		parent:   make(map[fabric.NodeID]fabric.NodeID, len(dests)),
		nodes:    append([]fabric.NodeID{root}, dests...),
	}
	return t
}

// sortedDests validates and returns the destination set sorted by network
// ID with the root removed — "we sort the list of destinations linearly by
// their network IDs before tree construction".
func sortedDests(root fabric.NodeID, members []fabric.NodeID) []fabric.NodeID {
	seen := map[fabric.NodeID]bool{root: true}
	dests := make([]fabric.NodeID, 0, len(members))
	for _, m := range members {
		if m == root {
			continue
		}
		if seen[m] {
			panic(fmt.Sprintf("tree: duplicate member %v", m))
		}
		seen[m] = true
		dests = append(dests, m)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return dests
}

func (t *Tree) link(parent, child fabric.NodeID) {
	t.children[parent] = append(t.children[parent], child)
	t.parent[child] = parent
}

// Children returns a node's children in send order.
func (t *Tree) Children(n fabric.NodeID) []fabric.NodeID { return t.children[n] }

// Parent returns a node's parent; the root reports itself with ok=false.
func (t *Tree) Parent(n fabric.NodeID) (fabric.NodeID, bool) {
	p, ok := t.parent[n]
	return p, ok
}

// Nodes returns all members (root first, destinations in sorted order).
func (t *Tree) Nodes() []fabric.NodeID { return t.nodes }

// Size reports the member count including the root.
func (t *Tree) Size() int { return len(t.nodes) }

// Depth reports the longest root-to-leaf path length in edges.
func (t *Tree) Depth() int {
	var walk func(n fabric.NodeID) int
	walk = func(n fabric.NodeID) int {
		max := 0
		for _, c := range t.children[n] {
			if d := walk(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	return walk(t.Root)
}

// MaxFanout reports the largest child count of any node.
func (t *Tree) MaxFanout() int {
	max := 0
	for _, cs := range t.children {
		if len(cs) > max {
			max = len(cs)
		}
	}
	return max
}

// Leaves returns all members with no children.
func (t *Tree) Leaves() []fabric.NodeID {
	var out []fabric.NodeID
	for _, n := range t.nodes {
		if len(t.children[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural soundness and the deadlock-avoidance
// invariant: every member except the root has exactly one parent, the
// graph is a single tree, and each child's network ID exceeds its parent's
// unless the parent is the root.
func (t *Tree) Validate() error {
	reached := map[fabric.NodeID]bool{}
	var walk func(n fabric.NodeID) error
	walk = func(n fabric.NodeID) error {
		if reached[n] {
			return fmt.Errorf("tree: node %v reached twice (cycle or diamond)", n)
		}
		reached[n] = true
		for _, c := range t.children[n] {
			if p, ok := t.parent[c]; !ok || p != n {
				return fmt.Errorf("tree: child %v has inconsistent parent", c)
			}
			if n != t.Root && c <= n {
				return fmt.Errorf("tree: child %v not greater than non-root parent %v", c, n)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if len(reached) != len(t.nodes) {
		return fmt.Errorf("tree: reached %d of %d members", len(reached), len(t.nodes))
	}
	return nil
}

// String renders the tree as an indented outline.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n fabric.NodeID, depth int)
	walk = func(n fabric.NodeID, depth int) {
		fmt.Fprintf(&b, "%s%v\n", strings.Repeat("  ", depth), n)
		for _, c := range t.children[n] {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// Binomial builds the binomial spanning tree the traditional host-based
// broadcast uses, over the sorted destination list so parent/child IDs
// satisfy the deadlock-avoidance ordering.
func Binomial(root fabric.NodeID, members []fabric.NodeID) *Tree {
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	// Index 0 is the root; indices 1..n-1 are the sorted destinations.
	at := func(i int) fabric.NodeID {
		if i == 0 {
			return root
		}
		return dests[i-1]
	}
	n := len(dests) + 1
	for i := 1; i < n; i++ {
		// Parent of i clears i's lowest set bit.
		p := i & (i - 1)
		t.link(at(p), at(i))
	}
	// Binomial send order: each parent sends to its farthest subtree
	// first (largest stride). The loop above appends nearest-first;
	// reverse each child list to match the conventional schedule.
	for k := range t.children {
		cs := t.children[k]
		for i, j := 0, len(cs)-1; i < j; i, j = i+1, j-1 {
			cs[i], cs[j] = cs[j], cs[i]
		}
	}
	return t
}

// Chain builds a linear pipeline tree (each node forwards to the next
// sorted destination) — useful in tests and as a degenerate shape.
func Chain(root fabric.NodeID, members []fabric.NodeID) *Tree {
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	prev := root
	for _, d := range dests {
		t.link(prev, d)
		prev = d
	}
	return t
}

// Flat builds a one-level tree: the root sends to every destination
// directly. This is the shape of the paper's multisend experiments.
func Flat(root fabric.NodeID, members []fabric.NodeID) *Tree {
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	for _, d := range dests {
		t.link(root, d)
	}
	return t
}

// KAry builds a balanced k-ary tree over the sorted destinations in heap
// layout (node at index i parents indices k·i+1 … k·i+k), so parent
// indices precede child indices and the ID-sorting invariant holds. Low
// fan-outs keep every node's injection link un-oversubscribed, which is
// what per-packet pipelined forwarding of multi-packet messages needs.
func KAry(root fabric.NodeID, members []fabric.NodeID, k int) *Tree {
	if k < 1 {
		panic("tree: k-ary fanout must be >= 1")
	}
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	at := func(i int) fabric.NodeID {
		if i == 0 {
			return root
		}
		return dests[i-1]
	}
	n := len(dests) + 1
	for i := 1; i < n; i++ {
		t.link(at((i-1)/k), at(i))
	}
	return t
}

// FromParents rebuilds a tree from its parent relation, attaching each
// node's children in ascending ID order. Trees whose construction emits
// children in ascending order per sender (Optimal, Chain, Flat) round-trip
// exactly; use it to decode trees shipped over the wire.
func FromParents(root fabric.NodeID, parents map[fabric.NodeID]fabric.NodeID) *Tree {
	members := make([]fabric.NodeID, 0, len(parents)+1)
	members = append(members, root)
	for n := range parents {
		if n != root {
			members = append(members, n)
		}
	}
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	for _, d := range dests { // ascending ID: children lists come out sorted
		p, ok := parents[d]
		if !ok {
			panic(fmt.Sprintf("tree: member %v has no parent", d))
		}
		t.link(p, d)
	}
	return t
}

// Incremental rebuilds a spanning tree after membership churn, reusing
// every edge of prev whose endpoints both survive into the new membership
// and whose orientation still satisfies the deadlock invariant under the
// new root. Orphans (nodes whose old parent left) and new joiners attach
// greedily to the eligible member with the fewest children — preferring
// members below maxFanout (<= 0 means unbounded), breaking ties toward
// the lowest ID — so a single join or leave perturbs only the subtrees it
// must. A nil prev builds the greedy tree from scratch. Children attach
// in ascending ID order, so the result round-trips exactly through
// Parents/FromParents (the wire form the membership protocol ships).
func Incremental(prev *Tree, root fabric.NodeID, members []fabric.NodeID, maxFanout int) *Tree {
	dests := sortedDests(root, members)
	member := make(map[fabric.NodeID]bool, len(dests)+1)
	member[root] = true
	for _, d := range dests {
		member[d] = true
	}

	// First pass: carry surviving edges over. The parent must survive, and
	// the edge must still be legal: any child under the (new) root, else
	// strictly ID-increasing.
	parents := make(map[fabric.NodeID]fabric.NodeID, len(dests))
	fanout := make(map[fabric.NodeID]int, len(dests)+1)
	if prev != nil {
		for _, d := range dests {
			p, ok := prev.parent[d]
			if !ok && d != prev.Root {
				continue // not in the old tree: a joiner
			}
			if d == prev.Root {
				continue // the old root needs a fresh attachment point
			}
			if !member[p] || (p != root && p >= d) {
				continue // parent departed, or edge now violates ordering
			}
			parents[d] = p
			fanout[p]++
		}
	}

	// Second pass: attach orphans and joiners in ascending ID order, each
	// to the least-loaded eligible member (root, or any member with a
	// smaller ID — the invariant guarantees candidates exist).
	for _, d := range dests {
		if _, ok := parents[d]; ok {
			continue
		}
		best := root
		bestLoad := fanout[root]
		bestFull := maxFanout > 0 && bestLoad >= maxFanout
		for _, c := range dests {
			if c >= d {
				break // dests ascending: no further candidates
			}
			load := fanout[c]
			full := maxFanout > 0 && load >= maxFanout
			// Prefer any under-fanout candidate to a full one; among
			// equals, fewest children, then lowest ID (iteration order).
			if (bestFull && !full) || (bestFull == full && load < bestLoad) {
				best, bestLoad, bestFull = c, load, full
			}
		}
		parents[d] = best
		fanout[best]++
	}

	t := newTree(root, dests)
	for _, d := range dests { // ascending: children lists come out sorted
		t.link(parents[d], d)
	}
	return t
}

// SharedEdges counts the parent→child edges two trees have in common —
// how much of a rebuilt tree Incremental actually reused.
func SharedEdges(a, b *Tree) int {
	if a == nil || b == nil {
		return 0
	}
	n := 0
	for c, p := range a.parent {
		if q, ok := b.parent[c]; ok && q == p {
			n++
		}
	}
	return n
}

// Parents returns the tree's parent relation, the wire-portable form.
func (t *Tree) Parents() map[fabric.NodeID]fabric.NodeID {
	out := make(map[fabric.NodeID]fabric.NodeID, len(t.parent))
	for c, p := range t.parent {
		out[c] = p
	}
	return out
}

// PostalParams characterize one hop of the postal model for a given
// message size: Lambda is the end-to-end delivery time (send call until
// the receiver can itself forward), Gap the extra time a sender spends per
// additional destination. The paper computes the fan-out ratio from
// exactly these two quantities.
type PostalParams struct {
	Lambda sim.Time
	Gap    sim.Time
}

// Ratio reports Lambda/Gap, the average fan-out degree of the optimal tree.
func (p PostalParams) Ratio() float64 {
	if p.Gap <= 0 {
		return float64(p.Lambda)
	}
	return float64(p.Lambda) / float64(p.Gap)
}

// senderHeap orders senders by the time they can emit their next copy,
// breaking ties toward the earliest-joined sender for determinism.
type sender struct {
	node  fabric.NodeID
	ready sim.Time
	order int
}

type senderHeap []*sender

func (h senderHeap) Len() int { return len(h) }
func (h senderHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].order < h[j].order
}
func (h senderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *senderHeap) Push(x any)   { *h = append(*h, x.(*sender)) }
func (h *senderHeap) Pop() any     { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }

// Optimal builds the latency-optimal broadcast tree of Bar-Noy and Kipnis:
// destinations are assigned, in sorted order, to whichever member can emit
// the next copy earliest; a node that received the message at time t joins
// the sender pool ready at t. The result maximizes the number of nodes
// sending at any time. Large Lambda/Gap produces wide shallow trees (small
// messages on a NIC-based multisend); a ratio near 1 degenerates toward a
// binomial shape, exactly as Section 6.1 of the paper observes.
func Optimal(root fabric.NodeID, members []fabric.NodeID, pp PostalParams) *Tree {
	if pp.Lambda <= 0 {
		panic("tree: postal Lambda must be positive")
	}
	if pp.Gap <= 0 {
		pp.Gap = 1
	}
	if pp.Gap > pp.Lambda {
		// A sender is always ready again by the time its copy lands.
		pp.Lambda = pp.Gap
	}
	dests := sortedDests(root, members)
	t := newTree(root, dests)
	h := &senderHeap{{node: root, ready: 0, order: 0}}
	heap.Init(h)
	for i, d := range dests {
		s := heap.Pop(h).(*sender)
		t.link(s.node, d)
		emit := s.ready
		s.ready = emit + pp.Gap
		heap.Push(h, s)
		heap.Push(h, &sender{node: d, ready: emit + pp.Lambda, order: i + 1})
	}
	return t
}
