package tree

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func ids(ns ...int) []fabric.NodeID {
	out := make([]fabric.NodeID, len(ns))
	for i, n := range ns {
		out[i] = fabric.NodeID(n)
	}
	return out
}

func seq(n int) []fabric.NodeID {
	out := make([]fabric.NodeID, n)
	for i := range out {
		out[i] = fabric.NodeID(i)
	}
	return out
}

func TestBinomialShape16(t *testing.T) {
	b := Binomial(0, seq(16))
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := b.Depth(); d != 4 {
		t.Errorf("16-node binomial depth %d, want 4", d)
	}
	if f := b.MaxFanout(); f != 4 {
		t.Errorf("16-node binomial root fanout %d, want 4", f)
	}
	if got := len(b.Children(0)); got != 4 {
		t.Errorf("root has %d children, want 4", got)
	}
}

func TestBinomialNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 12, 13} {
		b := Binomial(0, seq(n))
		if err := b.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if b.Size() != n {
			t.Fatalf("n=%d: size %d", n, b.Size())
		}
	}
}

func TestBinomialArbitraryRoot(t *testing.T) {
	b := Binomial(5, seq(16))
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Root != 5 {
		t.Fatalf("root %v, want 5", b.Root)
	}
	if _, ok := b.Parent(5); ok {
		t.Fatal("root has a parent")
	}
}

func TestChain(t *testing.T) {
	c := Chain(2, ids(2, 7, 4, 9))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 3 {
		t.Fatalf("chain depth %d, want 3", c.Depth())
	}
	if c.MaxFanout() != 1 {
		t.Fatalf("chain fanout %d, want 1", c.MaxFanout())
	}
	// Sorted order: 2 -> 4 -> 7 -> 9.
	if got := c.Children(2); len(got) != 1 || got[0] != 4 {
		t.Fatalf("chain first hop %v, want [4]", got)
	}
}

func TestFlat(t *testing.T) {
	f := Flat(0, seq(9))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Depth() != 1 {
		t.Fatalf("flat depth %d, want 1", f.Depth())
	}
	if len(f.Children(0)) != 8 {
		t.Fatalf("flat root has %d children, want 8", len(f.Children(0)))
	}
}

func TestOptimalLargeRatioIsShallow(t *testing.T) {
	// Lambda >> Gap: the root can spray all destinations before the first
	// child is even ready; tree is nearly flat.
	o := Optimal(0, seq(16), PostalParams{Lambda: sim.Micros(10), Gap: sim.Micros(0.7)})
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := o.Depth(); d > 2 {
		t.Errorf("high-ratio optimal tree depth %d, want <= 2\n%s", d, o)
	}
	if f := len(o.Children(0)); f < 8 {
		t.Errorf("high-ratio optimal root fanout %d, want >= 8", f)
	}
}

func TestOptimalUnitRatioResemblesBinomial(t *testing.T) {
	// Lambda == Gap: every sender alternates, doubling the informed set —
	// exactly a binomial schedule ("the shape of the resulting optimal
	// tree is not significantly different from the binomial tree").
	o := Optimal(0, seq(16), PostalParams{Lambda: sim.Micros(5), Gap: sim.Micros(5)})
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	b := Binomial(0, seq(16))
	if o.Depth() != b.Depth() {
		t.Errorf("unit-ratio optimal depth %d, binomial %d", o.Depth(), b.Depth())
	}
	if len(o.Children(0)) != len(b.Children(0)) {
		t.Errorf("unit-ratio optimal root fanout %d, binomial %d",
			len(o.Children(0)), len(b.Children(0)))
	}
}

func TestOptimalDepthMonotoneInRatio(t *testing.T) {
	// A smaller Lambda/Gap ratio (costlier per-destination sends) must
	// never produce a shallower tree: depth is non-decreasing in gap.
	prev := 0
	for _, gapUs := range []float64{0.5, 1, 2, 5, 10} {
		o := Optimal(0, seq(64), PostalParams{Lambda: sim.Micros(10), Gap: sim.Micros(gapUs)})
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.Depth() < prev {
			t.Fatalf("depth %d with gap %vus is shallower than depth %d with a smaller gap",
				o.Depth(), gapUs, prev)
		}
		prev = o.Depth()
	}
}

func TestOptimalFinishTimeBeatsBinomial(t *testing.T) {
	// Simulate both schedules under the postal model and compare the time
	// the last node is informed. With ratio > 1 the optimal tree must win
	// (or tie); this is the entire reason the NIC-based multicast re-shapes
	// the tree for small messages.
	pp := PostalParams{Lambda: sim.Micros(8), Gap: sim.Micros(1)}
	finish := func(tr *Tree) sim.Time {
		var worst sim.Time
		var walk func(n fabric.NodeID, ready sim.Time)
		walk = func(n fabric.NodeID, ready sim.Time) {
			if ready > worst {
				worst = ready
			}
			emit := ready
			for _, c := range tr.Children(n) {
				walk(c, emit+pp.Lambda)
				emit += pp.Gap
			}
		}
		walk(tr.Root, 0)
		return worst
	}
	opt := finish(Optimal(0, seq(16), pp))
	bin := finish(Binomial(0, seq(16)))
	if opt > bin {
		t.Fatalf("optimal tree finishes at %v, later than binomial %v", opt, bin)
	}
	if opt == bin {
		t.Logf("optimal == binomial at %v (acceptable tie)", opt)
	}
}

func TestSortedDestsRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate member did not panic")
		}
	}()
	Binomial(0, ids(0, 1, 1))
}

func TestRootOnlyTree(t *testing.T) {
	b := Binomial(3, ids(3))
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1 || b.Depth() != 0 {
		t.Fatalf("singleton tree size=%d depth=%d", b.Size(), b.Depth())
	}
}

func TestTwoNodeTrees(t *testing.T) {
	for _, build := range []func() *Tree{
		func() *Tree { return Binomial(1, ids(1, 9)) },
		func() *Tree { return Chain(1, ids(1, 9)) },
		func() *Tree { return Flat(1, ids(1, 9)) },
		func() *Tree { return Optimal(1, ids(1, 9), PostalParams{Lambda: 10, Gap: 1}) },
	} {
		tr := build()
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(tr.Children(1)) != 1 || tr.Children(1)[0] != 9 {
			t.Fatalf("two-node tree wrong: %s", tr)
		}
	}
}

func TestLeaves(t *testing.T) {
	b := Binomial(0, seq(8))
	leaves := b.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("8-node binomial has %d leaves, want 4", len(leaves))
	}
	for _, l := range leaves {
		if len(b.Children(l)) != 0 {
			t.Fatalf("leaf %v has children", l)
		}
	}
}

// Property: all constructions over random member sets validate, include
// every member exactly once, and respect the ID-sorting invariant.
func TestConstructionProperty(t *testing.T) {
	f := func(raw []uint8, rootPick uint8, lamUs, gapUs uint8) bool {
		seen := map[fabric.NodeID]bool{}
		var members []fabric.NodeID
		for _, r := range raw {
			id := fabric.NodeID(r % 64)
			if !seen[id] {
				seen[id] = true
				members = append(members, id)
			}
		}
		if len(members) == 0 {
			return true
		}
		root := members[int(rootPick)%len(members)]
		pp := PostalParams{
			Lambda: sim.Micros(float64(lamUs%20) + 1),
			Gap:    sim.Micros(float64(gapUs%10) + 0.1),
		}
		for _, tr := range []*Tree{
			Binomial(root, members),
			Chain(root, members),
			Flat(root, members),
			Optimal(root, members, pp),
		} {
			if err := tr.Validate(); err != nil {
				t.Log(err)
				return false
			}
			if tr.Size() != len(members) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPostalRatio(t *testing.T) {
	pp := PostalParams{Lambda: 1000, Gap: 100}
	if r := pp.Ratio(); r != 10 {
		t.Fatalf("ratio = %v, want 10", r)
	}
}

func TestOptimalSendOrderMatchesSchedule(t *testing.T) {
	// The first child in each list must be the one sent to first —
	// the measurement harness picks "the leaf that hears last" from this.
	o := Optimal(0, seq(8), PostalParams{Lambda: sim.Micros(6), Gap: sim.Micros(1)})
	cs := o.Children(0)
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatalf("root children %v not in assignment order", cs)
		}
	}
}

func TestKAryShapes(t *testing.T) {
	for _, tc := range []struct {
		n, k, depth, fanout int
	}{
		{16, 2, 4, 2},
		{16, 3, 3, 3},
		{16, 15, 1, 15},
		{2, 1, 1, 1},
		{9, 2, 3, 2},
	} {
		tr := KAry(0, seq(tc.n), tc.k)
		if err := tr.Validate(); err != nil {
			t.Fatalf("k=%d n=%d: %v", tc.k, tc.n, err)
		}
		if d := tr.Depth(); d != tc.depth {
			t.Errorf("n=%d k=%d depth %d, want %d", tc.n, tc.k, d, tc.depth)
		}
		if f := tr.MaxFanout(); f != tc.fanout {
			t.Errorf("n=%d k=%d fanout %d, want %d", tc.n, tc.k, f, tc.fanout)
		}
	}
}

func TestKAryChainEqualsChain(t *testing.T) {
	k := KAry(0, seq(6), 1)
	c := Chain(0, seq(6))
	if k.Depth() != c.Depth() || k.MaxFanout() != 1 {
		t.Fatalf("1-ary tree is not a chain: depth %d fanout %d", k.Depth(), k.MaxFanout())
	}
}

func TestKAryInvalidFanoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	KAry(0, seq(4), 0)
}

func TestFromParentsRoundTrip(t *testing.T) {
	for _, build := range []func() *Tree{
		func() *Tree { return Chain(2, ids(2, 5, 9, 11)) },
		func() *Tree { return Flat(1, ids(1, 3, 4, 8)) },
		func() *Tree { return Optimal(0, seq(12), PostalParams{Lambda: 900, Gap: 100}) },
		func() *Tree { return KAry(0, seq(10), 2) },
	} {
		orig := build()
		back := FromParents(orig.Root, orig.Parents())
		if err := back.Validate(); err != nil {
			t.Fatal(err)
		}
		if back.Size() != orig.Size() || back.Depth() != orig.Depth() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.Size(), back.Depth(), orig.Size(), orig.Depth())
		}
		for _, n := range orig.Nodes() {
			op, ook := orig.Parent(n)
			bp, bok := back.Parent(n)
			if ook != bok || op != bp {
				t.Fatalf("node %v parent changed: %v/%v vs %v/%v", n, op, ook, bp, bok)
			}
		}
	}
}

func TestFromParentsForeignParentFailsValidation(t *testing.T) {
	// A parent that is not itself a member produces a disconnected tree,
	// which Validate (run by InstallGroup) must reject.
	tr := FromParents(0, map[fabric.NodeID]fabric.NodeID{5: 0, 7: 5, 9: 99})
	if err := tr.Validate(); err == nil {
		t.Fatal("disconnected parent relation passed validation")
	}
}

func TestNodesOrder(t *testing.T) {
	tr := Binomial(4, ids(9, 4, 1, 7))
	nodes := tr.Nodes()
	if nodes[0] != 4 {
		t.Fatalf("first node %v, want root 4", nodes[0])
	}
	for i := 2; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatalf("destinations not sorted: %v", nodes)
		}
	}
}

func TestStringRendersOutline(t *testing.T) {
	out := Chain(0, seq(3)).String()
	if out == "" {
		t.Fatal("empty rendering")
	}
	for _, want := range []string{"n0", "n1", "n2", "  "} {
		if !containsStr(out, want) {
			t.Fatalf("rendering %q missing %q", out, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRatioZeroGap(t *testing.T) {
	pp := PostalParams{Lambda: 500, Gap: 0}
	if pp.Ratio() != 500 {
		t.Fatalf("zero-gap ratio %v", pp.Ratio())
	}
}

func TestValidateCatchesForeignChild(t *testing.T) {
	tr := Binomial(0, seq(4))
	// Corrupt: link a child that is not a member.
	tr.children[3] = append(tr.children[3], 99)
	tr.parent[99] = 3
	if err := tr.Validate(); err == nil {
		t.Fatal("validation accepted a foreign child")
	}
}

func TestValidateCatchesIDInversion(t *testing.T) {
	tr := Chain(0, seq(4))
	// Corrupt: make 3's parent 2's child list contain 1 (1 < 2, non-root).
	tr.children[2] = []fabric.NodeID{1}
	tr.parent[1] = 2
	if err := tr.Validate(); err == nil {
		t.Fatal("validation accepted child <= non-root parent")
	}
}
