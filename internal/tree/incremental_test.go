package tree

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestIncrementalFromScratchMatchesFanout(t *testing.T) {
	tr := Incremental(nil, 0, seq(9), 2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 9 {
		t.Fatalf("size %d, want 9", tr.Size())
	}
	if f := tr.MaxFanout(); f > 2 {
		t.Fatalf("fanout %d exceeds the requested bound 2", f)
	}
}

func TestIncrementalJoinKeepsSurvivingEdges(t *testing.T) {
	base := Incremental(nil, 0, seq(8), 2)
	grown := Incremental(base, 0, seq(9), 2)
	if err := grown.Validate(); err != nil {
		t.Fatal(err)
	}
	// A single join must not disturb any existing edge: all 7 old edges
	// survive and node 8 attaches somewhere.
	if shared := SharedEdges(base, grown); shared != 7 {
		t.Fatalf("join rebuilt the tree: only %d/7 old edges survive", shared)
	}
	if _, ok := grown.Parent(8); !ok {
		t.Fatal("joiner 8 not attached")
	}
}

func TestIncrementalLeaveOnlyReattachesOrphans(t *testing.T) {
	base := Incremental(nil, 0, seq(10), 2)
	left := fabric.NodeID(1) // an interior node with children
	members := make([]fabric.NodeID, 0, 9)
	for _, n := range base.Nodes() {
		if n != left {
			members = append(members, n)
		}
	}
	shrunk := Incremental(base, 0, members, 2)
	if err := shrunk.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := shrunk.Parent(left); ok || shrunk.Size() != 9 {
		t.Fatalf("departed node still present: size %d", shrunk.Size())
	}
	// Every edge not touching the departed node or its orphans survives.
	orphans := map[fabric.NodeID]bool{}
	for _, c := range base.Children(left) {
		orphans[c] = true
	}
	for _, n := range base.Nodes() {
		p, ok := base.Parent(n)
		if !ok || n == left || p == left || orphans[n] {
			continue
		}
		if q, ok := shrunk.Parent(n); !ok || q != p {
			t.Fatalf("untouched edge %d->%d rebuilt to parent %v", p, n, q)
		}
	}
}

// The wire protocol ships trees as parent maps; an Incremental tree must
// survive the round trip exactly, or coordinator and agents would hold
// different trees.
func TestIncrementalRoundTripsThroughParents(t *testing.T) {
	rng := sim.NewRNG(17)
	var tr *Tree
	members := map[fabric.NodeID]bool{0: true, 1: true, 2: true}
	for step := 0; step < 40; step++ {
		n := fabric.NodeID(1 + rng.Intn(11))
		if members[n] && len(members) > 2 {
			delete(members, n)
		} else {
			members[n] = true
		}
		list := make([]fabric.NodeID, 0, len(members))
		for m := range members {
			list = append(list, m)
		}
		tr = Incremental(tr, 0, list, 2)
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rt := FromParents(tr.Root, tr.Parents())
		if !reflect.DeepEqual(tr, rt) {
			t.Fatalf("step %d: tree does not round-trip through Parents()", step)
		}
	}
}

// Property: for any membership evolution, Incremental yields a valid
// tree deterministically (the fanout bound is best-effort — carried
// edges can fill every eligible candidate — so it is not asserted here).
func TestIncrementalProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := sim.NewRNG(seed)
		var a, b *Tree
		members := []fabric.NodeID{0, 3, 5}
		for i := 0; i < int(steps)%20+1; i++ {
			n := fabric.NodeID(1 + rng.Intn(15))
			found := -1
			for j, m := range members {
				if m == n {
					found = j
				}
			}
			if found >= 0 && len(members) > 2 {
				members = append(members[:found], members[found+1:]...)
			} else if found < 0 {
				members = append(members, n)
			}
			a = Incremental(a, 0, members, 3)
			b = Incremental(b, 0, members, 3)
			if err := a.Validate(); err != nil {
				return false
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
