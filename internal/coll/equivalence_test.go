package coll_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/clos"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Engine-equivalence property test for the collective engine: every
// collective algorithm, run on both fabric backends, must produce the
// exact same event timeline — every (timestamp, tiebreak key) pair fired
// by any engine — whether the cluster runs legacy-serial, explicit
// serial, 2-sharded or 4-sharded. This is PR-7's equivalence property
// extended to the collective platform: the conservative parallel engine
// may only change wall-clock time, never the simulated timeline.

type tlRec struct {
	when sim.Time
	key  uint64
}

// recordTimelines attaches a fire hook to every engine and returns a
// closure producing the merged (when, key)-sorted timeline.
func recordTimelines(c *cluster.Cluster) func() []tlRec {
	per := make([][]tlRec, len(c.Engines()))
	for i, e := range c.Engines() {
		i := i
		e.SetFireHook(func(when sim.Time, key uint64) {
			per[i] = append(per[i], tlRec{when, key})
		})
	}
	return func() []tlRec {
		var all []tlRec
		for _, recs := range per {
			all = append(all, recs...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].when != all[j].when {
				return all[i].when < all[j].when
			}
			return all[i].key < all[j].key
		})
		return all
	}
}

var modes = []struct {
	name   string
	shards int
}{
	{"legacy", 0},
	{"serial", 1},
	{"2-shard", 2},
	{"4-shard", 4},
}

var fabrics = []struct {
	name string
	cfg  fabric.Config
}{
	{"myrinet", myrinet.Default()},
	{"clos", clos.Default()},
}

func diffTimelines(t *testing.T, label string, want, got []tlRec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: fired %d events, baseline fired %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: timeline diverges at event %d: got (%v, %#x), want (%v, %#x)",
				label, i, got[i].when, got[i].key, want[i].when, want[i].key)
		}
	}
}

// collCase is one collective algorithm's workload: three rounds with a
// rotating skew, returning whatever per-node data the collective yields
// (completion times for barriers, result vectors for the rest) so result
// equality is checked alongside timeline equality.
type collCase struct {
	name string
	opts []coll.Option
	run  func(p *sim.Proc, c *cluster.Cluster, i int, port *gm.Port) []int64
}

const eqRounds = 3

func eqSkew(p *sim.Proc, i, r, nodes int) {
	p.Compute(sim.Micros(float64(((i + r) % nodes) * 13)))
}

func collCases() []collCase {
	barrier := func(p *sim.Proc, c *cluster.Cluster, i int, port *gm.Port) []int64 {
		var out []int64
		for r := 0; r < eqRounds; r++ {
			eqSkew(p, i, r, len(c.Nodes))
			c.Nodes[i].Coll.Barrier(p, port, collGID)
			out = append(out, int64(p.Now()))
		}
		return out
	}
	gather := func(p *sim.Proc, c *cluster.Cluster, i int, port *gm.Port) []int64 {
		var out []int64
		for r := 0; r < eqRounds; r++ {
			eqSkew(p, i, r, len(c.Nodes))
			vec := []int64{int64(1000*r + 100*i), int64(1000*r + 100*i + 1)}
			out = append(out, c.Nodes[i].Coll.Allgather(p, port, collGID, vec)...)
		}
		return out
	}
	return []collCase{
		{name: "barrier-dissemination", run: barrier},
		{
			name: "barrier-tree",
			opts: []coll.Option{coll.WithBarrierAlgo(coll.BarrierTree)},
			run:  barrier,
		},
		{
			name: "reduce",
			run: func(p *sim.Proc, c *cluster.Cluster, i int, port *gm.Port) []int64 {
				var out []int64
				for r := 0; r < eqRounds; r++ {
					eqSkew(p, i, r, len(c.Nodes))
					vec := []int64{int64(1000*r + 100*i), 7}
					res := c.Nodes[i].Coll.Reduce(p, port, collGID, vec, coll.OpSum)
					out = append(out, res...)
					// Non-roots return as soon as they contribute; the
					// barrier keeps successive instances distinct rounds.
					c.Nodes[i].Coll.Barrier(p, port, collGID)
				}
				return out
			},
		},
		{
			name: "allreduce",
			run: func(p *sim.Proc, c *cluster.Cluster, i int, port *gm.Port) []int64 {
				var out []int64
				for r := 0; r < eqRounds; r++ {
					eqSkew(p, i, r, len(c.Nodes))
					if i != 0 {
						port.Provide(16)
					}
					vec := []int64{int64(1000*r + 100*i), int64(i)}
					out = append(out, c.Nodes[i].Coll.Allreduce(p, port, collGID, vec, coll.OpMax)...)
				}
				return out
			},
		},
		{name: "allgather-tree", run: gather},
		{
			name: "allgather-ring",
			opts: []coll.Option{coll.WithGatherAlgo(coll.GatherRing)},
			run:  gather,
		},
	}
}

// runCollCase executes one (case, fabric, mode, seed) point and returns
// the merged timeline, the per-node results, and the finish time.
func runCollCase(t *testing.T, cc collCase, fb fabric.Config, shards int, seed int64, nodes int) ([]tlRec, [][]int64, sim.Time) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.Fabric = fb
	cfg.Link = fb.Links
	c := cluster.NewFromConfig(cfg)
	tl := recordTimelines(c)
	ports := c.OpenPorts(7)
	c.InstallGroup(collGID, tree.Binomial(0, c.Members()), 7, 7)
	ready := c.InstallCollGroup(collGID, c.Members(), 7, cc.opts...)
	c.Run() // settle both group tables before the workload starts
	if !ready() {
		t.Fatal("collective group installation did not settle")
	}
	results := make([][]int64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "eq", func(p *sim.Proc) {
			results[i] = cc.run(p, c, i, ports[i])
		})
	}
	c.Run()
	if live := c.LiveProcs(); live != 0 {
		t.Fatalf("workload stalled with %d live procs", live)
	}
	for _, n := range c.Nodes {
		if s := n.Coll.DebugLeaks(); s != "" {
			t.Fatalf("node %v leaked collective state: %s", n.ID, s)
		}
	}
	return tl(), results, c.Now()
}

// TestCollEquivalenceMatrix is the full matrix: every collective × both
// fabrics × {legacy, serial, 2, 4 shards}, byte-identical timelines and
// identical results required everywhere.
func TestCollEquivalenceMatrix(t *testing.T) {
	const nodes = 12
	for _, fb := range fabrics {
		fb := fb
		for _, cc := range collCases() {
			cc := cc
			t.Run(fb.name+"/"+cc.name, func(t *testing.T) {
				for _, seed := range []int64{1, 2} {
					var baseTL []tlRec
					var baseRes [][]int64
					var baseNow sim.Time
					for mi, m := range modes {
						tl, res, now := runCollCase(t, cc, fb.cfg, m.shards, seed, nodes)
						if mi == 0 {
							baseTL, baseRes, baseNow = tl, res, now
							if len(baseTL) == 0 {
								t.Fatalf("seed %d: baseline fired no events", seed)
							}
							continue
						}
						label := fmt.Sprintf("seed %d %s", seed, m.name)
						diffTimelines(t, label, baseTL, tl)
						if !reflect.DeepEqual(res, baseRes) {
							t.Errorf("%s: collective results diverged from baseline", label)
						}
						if now != baseNow {
							t.Errorf("%s: finished at %v, baseline at %v", label, now, baseNow)
						}
					}
				}
			})
		}
	}
}
