package coll

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// Barrier wire encoding (KindBarrier): Seq is the instance; Offset is the
// dissemination round (>= 0), or one of the tree-sweep markers below.
const (
	auxTreeUp   int32 = -1 // arrival, child -> parent
	auxTreeDown int32 = -2 // release, parent -> child
)

// Barrier blocks the calling process until every member of the group has
// entered the barrier. One host request enters; the NICs run every round;
// a zero-byte group event signals completion. The port must be dedicated
// to collective use.
func (e *Engine) Barrier(proc *sim.Proc, port *gm.Port, id gm.GroupID) {
	e.PostBarrier(proc, port, id)
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) == 0 {
			return
		}
		panic("coll: unexpected traffic on barrier port")
	}
}

// PostBarrier enters the barrier without blocking for completion — the
// split entry point for callers multiplexing a port (internal/mpi), who
// observe completion as a zero-byte group event in their own receive loop.
func (e *Engine) PostBarrier(proc *sim.Proc, port *gm.Port, id gm.GroupID) {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Barrier", core.ErrWrongNIC))
	}
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			g, ok := e.groups[id]
			if !ok || g.members == nil {
				panic(fmt.Errorf("%w: Barrier on group %d at %v", core.ErrNoSuchGroup, id, nic.ID()))
			}
			if g.barActive {
				panic(fmt.Errorf("%w: concurrent Barrier on group %d at %v", core.ErrGroupBusy, id, nic.ID()))
			}
			g.enterBarrier()
		})
	})
}

// enterBarrier starts a new barrier instance on the firmware side.
func (g *Group) enterBarrier() {
	g.barSeq++
	g.barActive = true
	if len(g.members) == 1 {
		g.completeBarrier()
		return
	}
	if g.barrierAlgo == BarrierTree {
		swapBitsets(&g.upCur, &g.upNext)
		g.tryTreeUp()
		return
	}
	g.barRound = 0
	g.recvdCur, g.recvdNext = g.recvdNext, 0
	g.sendRound(0)
	g.advanceBarrier()
}

// peerOut is the dissemination partner signalled in round r.
func (g *Group) peerOut(r int) fabric.NodeID {
	return g.members[(g.myIdx+(1<<r))%len(g.members)]
}

// sendRound transmits this node's message for one dissemination round.
func (g *Group) sendRound(r int) {
	g.eng.m.barrierSent.Inc()
	g.eng.m.barrierRounds.Inc()
	g.sendRel(skBarrier, gm.KindBarrier, g.peerOut(r), g.barSeq, int32(r), r, 0, nil)
}

// advanceBarrier consumes arrived round messages in order, sending each
// next round, and completes the barrier after the last round's arrival.
func (g *Group) advanceBarrier() {
	if !g.barActive {
		return
	}
	for g.barRound < g.rounds && g.recvdCur&(1<<uint(g.barRound)) != 0 {
		g.barRound++
		if g.barRound < g.rounds {
			g.sendRound(g.barRound)
		}
	}
	if g.barRound == g.rounds {
		g.completeBarrier()
	}
}

// tryTreeUp sends this subtree's arrival up once every child has arrived
// (root: releases down instead).
func (g *Group) tryTreeUp() {
	if !g.barActive || g.upCur.count() < len(g.barChildren) {
		return
	}
	self := g.eng.nic.ID()
	if g.barParent == self {
		g.treeRelease()
		return
	}
	g.eng.m.barrierSent.Inc()
	g.sendRel(skBarrier, gm.KindBarrier, g.barParent, g.barSeq, auxTreeUp, int(auxTreeUp), 0, nil)
}

// treeRelease sweeps the release down to every child and completes.
func (g *Group) treeRelease() {
	for _, c := range g.barChildren {
		g.eng.m.barrierSent.Inc()
		g.sendRel(skBarrier, gm.KindBarrier, c, g.barSeq, auxTreeDown, int(auxTreeDown), 0, nil)
	}
	g.completeBarrier()
}

// completeBarrier posts the zero-byte completion event to the host.
// Pending stop-and-wait records deliberately survive completion: a peer
// that has not acknowledged our message still needs it — dropping it here
// would abandon a lost packet a slower member depends on.
func (g *Group) completeBarrier() {
	g.barActive = false
	g.eng.m.barriersDone.Inc()
	port := g.eng.nic.Port(g.port)
	port.PostGroupEvent(&gm.RecvEvent{Group: g.id})
}

// rxBarrier handles an arriving barrier message of either algorithm.
func (e *Engine) rxBarrier(fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		g, ok := e.groups[fr.Group]
		if !ok || g.members == nil {
			// Not installed (yet): no ack, so the peer's stop-and-wait
			// redelivers after this node's install lands.
			e.m.notMemberDrops.Inc()
			return
		}
		// Always acknowledge — duplicates included — so the peer's
		// stop-and-wait stops waiting.
		nic.Inject(&gm.Frame{
			Kind:    gm.KindBarrierAck,
			SrcNode: nic.ID(),
			DstNode: fr.SrcNode,
			Group:   fr.Group,
			Seq:     fr.Seq,
			Offset:  fr.Offset,
		}, nil)
		aux := int32(fr.Offset)
		switch {
		case aux == auxTreeDown:
			g.rxTreeDown(fr)
		case aux == auxTreeUp:
			g.rxTreeUp(fr)
		default:
			g.rxDissemination(fr, int(aux))
		}
	})
}

// rxDissemination files one dissemination round arrival. A peer can be at
// most one instance ahead (see Group.recvdNext), so arrivals are for the
// current instance, the next one, or stale duplicates.
func (g *Group) rxDissemination(fr *gm.Frame, round int) {
	if round < 0 || round >= g.rounds {
		g.eng.m.duplicates.Inc()
		return
	}
	switch {
	case fr.Seq == g.barSeq+1:
		g.recvdNext |= 1 << uint(round)
	case fr.Seq == g.barSeq && g.barActive:
		g.recvdCur |= 1 << uint(round)
		g.advanceBarrier()
	default:
		g.eng.m.duplicates.Inc() // stale round of a completed instance
	}
}

// rxTreeUp files a child's arrival in the tree barrier.
func (g *Group) rxTreeUp(fr *gm.Frame) {
	idx := childIndex(g.barChildren, fr.SrcNode)
	if idx < 0 {
		g.eng.m.duplicates.Inc()
		return
	}
	switch {
	case fr.Seq == g.barSeq+1:
		g.upNext.setBit(idx)
	case fr.Seq == g.barSeq && g.barActive:
		if !g.upCur.setBit(idx) {
			g.tryTreeUp()
		}
	default:
		g.eng.m.duplicates.Inc()
	}
}

// rxTreeDown handles the parent's release: forward it to this subtree's
// children and complete.
func (g *Group) rxTreeDown(fr *gm.Frame) {
	if fr.Seq != g.barSeq || !g.barActive {
		g.eng.m.duplicates.Inc() // retransmitted release of a completed instance
		return
	}
	g.treeRelease()
}
