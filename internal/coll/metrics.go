package coll

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// Component is the metrics component name for the collective engine.
const Component = "coll"

// instruments are the collective counters and distributions for one NIC,
// cached so the firmware hot path does no registry lookups (nil fields are
// no-ops under a disabled registry).
type instruments struct {
	barrierSent    *metrics.Counter // barrier round/up/down messages transmitted
	barrierRounds  *metrics.Counter // dissemination rounds entered
	barriersDone   *metrics.Counter // barrier instances completed at this NIC
	reduceSent     *metrics.Counter // combined vectors sent up the tree
	reduceCombines *metrics.Counter // per-contribution combining steps
	reducesDone    *metrics.Counter // reduction instances completed (root)
	gatherSent     *metrics.Counter // allgather batch chunks sent up the tree
	gathersDone    *metrics.Counter // allgather instances completed at this NIC
	ringSent       *metrics.Counter // ring-allgather hops transmitted
	retransmits    *metrics.Counter // stop-and-wait retransmissions
	acksSuppressed *metrics.Counter // per-chunk gather acks avoided by coalescing
	duplicates     *metrics.Counter // duplicate collective frames dropped
	notMemberDrops *metrics.Counter // frames for groups this NIC has no entry for
	bytesForwarded *metrics.Counter // payload bytes moved up the tree / around the ring
	combineNs      *metrics.Histogram
}

func (e *Engine) initMetrics(reg *metrics.Registry) {
	id := int(e.nic.ID())
	e.m = instruments{
		barrierSent:    reg.Counter(Component, id, "barrier_sent"),
		barrierRounds:  reg.Counter(Component, id, "barrier_rounds"),
		barriersDone:   reg.Counter(Component, id, "barriers_done"),
		reduceSent:     reg.Counter(Component, id, "reduce_sent"),
		reduceCombines: reg.Counter(Component, id, "reduce_combines"),
		reducesDone:    reg.Counter(Component, id, "reduces_done"),
		gatherSent:     reg.Counter(Component, id, "gather_sent"),
		gathersDone:    reg.Counter(Component, id, "gathers_done"),
		ringSent:       reg.Counter(Component, id, "ring_sent"),
		retransmits:    reg.Counter(Component, id, "retransmits"),
		acksSuppressed: reg.Counter(Component, id, "acks_suppressed"),
		duplicates:     reg.Counter(Component, id, "duplicates"),
		notMemberDrops: reg.Counter(Component, id, "not_member_drops"),
		bytesForwarded: reg.Counter(Component, id, "bytes_forwarded"),
		combineNs:      reg.Histogram(Component, id, "combine_ns"),
	}
}

// CollStats snapshots the engine's counters for core's legacy Stats merge.
func (e *Engine) CollStats() core.CollStats {
	return core.CollStats{
		BarrierSent:    e.m.barrierSent.Value(),
		BarriersDone:   e.m.barriersDone.Value(),
		ReduceSent:     e.m.reduceSent.Value(),
		ReduceCombines: e.m.reduceCombines.Value(),
		GatherSent:     e.m.gatherSent.Value() + e.m.ringSent.Value(),
		GathersDone:    e.m.gathersDone.Value(),
		Retransmits:    e.m.retransmits.Value(),
		Duplicates:     e.m.duplicates.Value(),
		NotMemberDrops: e.m.notMemberDrops.Value(),
	}
}
