package coll_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/tree"
)

const collGID gm.GroupID = 77

// rig builds a cluster with both group tables installed — the multicast
// tree (reduce/allreduce/tree-allgather neighborhoods and downward
// multicasts) and the collective entry — on one dedicated port.
func rig(t *testing.T, nodes int, mut func(*cluster.Config), opts ...coll.Option) (*cluster.Cluster, []*gm.Port) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	if mut != nil {
		mut(cfg)
	}
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(7)
	c.InstallGroup(collGID, tree.Binomial(0, c.Members()), 7, 7)
	ready := c.InstallCollGroup(collGID, c.Members(), 7, opts...)
	c.Run()
	if !ready() {
		t.Fatal("collective group installation did not settle")
	}
	return c, ports
}

// checkClean asserts every NIC's collective state drained: no unacked
// records, no armed timers, no open instances.
func checkClean(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	if live := c.LiveProcs(); live != 0 {
		t.Fatalf("collective stalled with %d live procs", live)
	}
	for _, n := range c.Nodes {
		if s := n.Coll.DebugLeaks(); s != "" {
			t.Errorf("node %v leaked collective state: %s", n.ID, s)
		}
		if out := n.Coll.Outstanding(); out != 0 {
			t.Errorf("node %v has %d unacked records", n.ID, out)
		}
		if p := n.Coll.PendingTimers(); p != 0 {
			t.Errorf("node %v has %d armed retransmit timers", n.ID, p)
		}
	}
}

// TestBarrierAlgos runs repeated skewed barriers under both algorithms and
// asserts barrier semantics: nobody completes an instance before the last
// member has entered it.
func TestBarrierAlgos(t *testing.T) {
	for name, algo := range map[string]coll.BarrierAlgo{
		"dissemination": coll.BarrierDissemination,
		"tree":          coll.BarrierTree,
	} {
		t.Run(name, func(t *testing.T) {
			const nodes, rounds = 9, 4
			c, ports := rig(t, nodes, nil, coll.WithBarrierAlgo(algo))
			entered := make([][]sim.Time, nodes)
			done := make([][]sim.Time, nodes)
			for i := 0; i < nodes; i++ {
				i := i
				c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
					for r := 0; r < rounds; r++ {
						p.Compute(sim.Micros(float64(((i + r) % nodes) * 37))) // rotating skew
						entered[i] = append(entered[i], p.Engine().Now())
						c.Nodes[i].Coll.Barrier(p, ports[i], collGID)
						done[i] = append(done[i], p.Engine().Now())
					}
				})
			}
			c.Run()
			checkClean(t, c)
			for r := 0; r < rounds; r++ {
				var last sim.Time
				for i := 0; i < nodes; i++ {
					if len(entered[i]) != rounds {
						t.Fatalf("node %d completed %d/%d barriers", i, len(entered[i]), rounds)
					}
					if entered[i][r] > last {
						last = entered[i][r]
					}
				}
				for i := 0; i < nodes; i++ {
					if done[i][r] < last {
						t.Errorf("round %d: node %d left at %v before last entry %v", r, i, done[i][r], last)
					}
				}
			}
			var sent uint64
			for _, n := range c.Nodes {
				sent += n.Ext.Stats().BarrierSent
			}
			if sent == 0 {
				t.Error("no barrier traffic recorded")
			}
		})
	}
}

// TestBarrierUnderLoss exercises the stop-and-wait recovery of both
// algorithms on a lossy fabric.
func TestBarrierUnderLoss(t *testing.T) {
	for name, algo := range map[string]coll.BarrierAlgo{
		"dissemination": coll.BarrierDissemination,
		"tree":          coll.BarrierTree,
	} {
		t.Run(name, func(t *testing.T) {
			const nodes, rounds = 6, 5
			c, ports := rig(t, nodes, func(cfg *cluster.Config) {
				cfg.LossRate = 0.08
				cfg.Seed = 17
			}, coll.WithBarrierAlgo(algo))
			completed := make([]int, nodes)
			for i := 0; i < nodes; i++ {
				i := i
				c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
					for r := 0; r < rounds; r++ {
						c.Nodes[i].Coll.Barrier(p, ports[i], collGID)
						completed[i]++
					}
				})
			}
			c.Run()
			checkClean(t, c)
			for i, got := range completed {
				if got != rounds {
					t.Errorf("node %d completed %d/%d lossy barriers", i, got, rounds)
				}
			}
			var retrans uint64
			for _, n := range c.Nodes {
				retrans += n.Ext.Stats().Retransmits
			}
			if retrans == 0 {
				t.Error("lossy run recorded no retransmissions — loss not exercised")
			}
		})
	}
}

// wantFlat is the expected allgather result when member i contributes
// {100*i, 100*i + 1, ...}.
func wantFlat(nodes, veclen int) []int64 {
	out := make([]int64, 0, nodes*veclen)
	for i := 0; i < nodes; i++ {
		for j := 0; j < veclen; j++ {
			out = append(out, int64(100*i+j))
		}
	}
	return out
}

func runAllgather(t *testing.T, c *cluster.Cluster, ports []*gm.Port, veclen int) {
	t.Helper()
	nodes := len(c.Nodes)
	results := make([][]int64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
			vec := make([]int64, veclen)
			for j := range vec {
				vec[j] = int64(100*i + j)
			}
			results[i] = c.Nodes[i].Coll.Allgather(p, ports[i], collGID, vec)
		})
	}
	c.Run()
	checkClean(t, c)
	want := wantFlat(nodes, veclen)
	for i, res := range results {
		if len(res) != len(want) {
			t.Fatalf("node %d allgather returned %d elements, want %d", i, len(res), len(want))
		}
		for j := range want {
			if res[j] != want[j] {
				t.Fatalf("node %d allgather[%d] = %d, want %d", i, j, res[j], want[j])
			}
		}
	}
}

func TestAllgatherTree(t *testing.T) {
	c, ports := rig(t, 8, nil)
	runAllgather(t, c, ports, 3)
}

// TestAllgatherTreeMultiChunk forces interior batches past one MTU so the
// chunked stop-and-wait upward path is exercised.
func TestAllgatherTreeMultiChunk(t *testing.T) {
	c, ports := rig(t, 8, nil)
	runAllgather(t, c, ports, 400) // 3208-byte entries; subtree batches span several packets
}

func TestAllgatherRing(t *testing.T) {
	c, ports := rig(t, 7, nil, coll.WithGatherAlgo(coll.GatherRing))
	runAllgather(t, c, ports, 4)
}

func TestAllgatherUnderLoss(t *testing.T) {
	for name, opts := range map[string][]coll.Option{
		"tree": nil,
		"ring": {coll.WithGatherAlgo(coll.GatherRing)},
	} {
		t.Run(name, func(t *testing.T) {
			c, ports := rig(t, 6, func(cfg *cluster.Config) {
				cfg.LossRate = 0.05
				cfg.Seed = 23
			}, opts...)
			runAllgather(t, c, ports, 5)
		})
	}
}

// TestAllgatherRepeated runs several back-to-back instances; sequence
// bookkeeping (doneSet) must keep them separate.
func TestAllgatherRepeated(t *testing.T) {
	const nodes, rounds, veclen = 5, 4, 2
	c, ports := rig(t, nodes, nil)
	bad := false
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				vec := []int64{int64(1000*r + 100*i), int64(1000*r + 100*i + 1)}
				res := c.Nodes[i].Coll.Allgather(p, ports[i], collGID, vec)
				for m := 0; m < nodes; m++ {
					for j := 0; j < veclen; j++ {
						if res[m*veclen+j] != int64(1000*r+100*m+j) {
							bad = true
						}
					}
				}
			}
		})
	}
	c.Run()
	checkClean(t, c)
	if bad {
		t.Fatal("repeated allgather instances bled into each other")
	}
}

// TestEngineAllreduce drives the engine's own blocking Allreduce (the mpi
// layer has its own split-phase path).
func TestEngineAllreduce(t *testing.T) {
	const nodes = 6
	c, ports := rig(t, nodes, nil)
	results := make([][]int64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
			if i != 0 {
				ports[i].Provide(64)
			}
			results[i] = c.Nodes[i].Coll.Allreduce(p, ports[i], collGID, []int64{int64(i), 1}, coll.OpMax)
		})
	}
	c.Run()
	checkClean(t, c)
	for i, res := range results {
		if len(res) != 2 || res[0] != nodes-1 || res[1] != 1 {
			t.Fatalf("node %d allreduce = %v, want [%d 1]", i, res, nodes-1)
		}
	}
}

// TestRemoveDrainsGroupTable asserts collective-ordered teardown leaves no
// entries (auto-mirrored ones included).
func TestRemoveDrainsGroupTable(t *testing.T) {
	const nodes = 5
	c, ports := rig(t, nodes, nil)
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
			c.Nodes[i].Coll.Barrier(p, ports[i], collGID)
		})
	}
	c.Run()
	for _, n := range c.Nodes {
		n := n
		c.WithNode(n.ID, func() { n.Coll.Remove(collGID, nil) })
	}
	c.Run()
	for _, n := range c.Nodes {
		if got := n.Coll.Groups(); got != 0 {
			t.Errorf("node %v still holds %d collective entries after Remove", n.ID, got)
		}
	}
}

// TestShardedBarrierMatchesSerial is the quick in-package determinism
// check; the full byte-identical-timeline matrix lives in
// equivalence_test.go.
func TestShardedBarrierMatchesSerial(t *testing.T) {
	run := func(shards int) sim.Time {
		c, ports := rig(t, 8, func(cfg *cluster.Config) { cfg.Shards = shards })
		for i := 0; i < 8; i++ {
			i := i
			c.SpawnOn(c.Nodes[i].ID, "p", func(p *sim.Proc) {
				for r := 0; r < 3; r++ {
					c.Nodes[i].Coll.Barrier(p, ports[i], collGID)
				}
			})
		}
		c.Run()
		checkClean(t, c)
		return c.Now()
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != serial {
			t.Errorf("%d-shard barrier finished at %v, serial at %v", shards, got, serial)
		}
	}
}
