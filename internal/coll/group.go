package coll

import (
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// Send-record classes: one shared stop-and-wait mechanism serves every
// collective, discriminated by class when matching acknowledgments.
const (
	skBarrier uint8 = iota
	skReduce
	skGather
	skRing
)

// upRecord is one outstanding collective transmission awaiting its ack.
// The frame is embedded (not pointed to) so records recycle through the
// group's free list without allocating; only the injected wire clone is
// per-transmission.
type upRecord struct {
	class  uint8
	seq    uint32 // collective instance
	aux    int32  // ack-matching discriminant: round / byte offset / chunk index
	dst    fabric.NodeID
	frame  gm.Frame
	sentAt sim.Time
}

// Group is one NIC's collective group entry.
type Group struct {
	eng  *Engine
	id   gm.GroupID
	port gm.PortID

	// members is the sorted member set (nil for an auto-mirrored entry
	// that only ever relays tree collectives); myIdx is this node's index.
	members []fabric.NodeID
	myIdx   int
	auto    bool

	barrierAlgo BarrierAlgo
	gatherAlgo  GatherAlgo

	// Binomial neighborhood for the tree barrier (derived from members at
	// install; independent of the multicast tree, which barrier-only
	// groups do not require).
	barParent   fabric.NodeID
	barChildren []fabric.NodeID

	// Stop-and-wait machinery: outstanding records, a free list, and one
	// reusable retransmit timer over all of them (PR-2 kernel discipline —
	// no per-message timer allocation).
	out   []*upRecord
	free  []*upRecord
	timer *sim.Timer

	// Dissemination barrier. recvdCur/recvdNext are per-round arrival
	// bitmasks for the current instance and the next (a peer can run at
	// most one instance ahead — it cannot complete instance s+1 before
	// every member, us included, has entered s+1).
	barSeq              uint32
	barRound            int
	barActive           bool
	rounds              int
	recvdCur, recvdNext uint32

	// Tree barrier: child-arrival bitsets for current/next instance.
	upCur, upNext bitset

	// Reduce instances in flight, plus the completed-instance set that
	// replaces the old never-cleaned duplicate map.
	redSeq  uint32
	red     map[uint32]*reduceInst
	redDone doneSet

	// Tree allgather: open instances, per-(child, instance) chunk
	// reassembly, and per-instance outgoing batch transfers.
	agSeq  uint32
	ag     map[uint32]*gatherInst
	asm    map[asmKey]*chunkAsm
	agOut  map[uint32]*gatherSend
	agDone doneSet

	// Ring allgather instances.
	ring     map[uint32]*ringInst
	ringDone doneSet
}

// getRec takes a record from the free list (or allocates the pool's next).
func (g *Group) getRec() *upRecord {
	if n := len(g.free); n > 0 {
		r := g.free[n-1]
		g.free = g.free[:n-1]
		return r
	}
	return &upRecord{}
}

// sendRel transmits one collective frame with stop-and-wait reliability:
// the record joins the group's outstanding list and the shared retransmit
// timer covers it until the matching ack arrives.
func (g *Group) sendRel(class uint8, kind gm.Kind, dst fabric.NodeID, seq uint32, aux int32, off int, msgLen int, payload []byte) {
	nic := g.eng.nic
	rec := g.getRec()
	rec.class, rec.seq, rec.aux, rec.dst = class, seq, aux, dst
	rec.frame = gm.Frame{
		Kind:    kind,
		SrcNode: nic.ID(),
		DstNode: dst,
		Group:   g.id,
		Seq:     seq,
		Offset:  off,
		MsgLen:  msgLen,
		Payload: payload,
	}
	rec.sentAt = nic.Engine().Now()
	g.out = append(g.out, rec)
	nic.Inject(rec.frame.Clone(), nil)
	g.armTimer()
}

// armTimer (re)arms the shared timer at the earliest outstanding
// record's deadline, or stops it when nothing is outstanding.
func (g *Group) armTimer() {
	if len(g.out) == 0 {
		g.timer.Stop()
		return
	}
	earliest := g.out[0].sentAt
	for _, r := range g.out[1:] {
		if r.sentAt < earliest {
			earliest = r.sentAt
		}
	}
	eng := g.eng.nic.Engine()
	deadline := earliest + g.eng.nic.Cfg.RetransmitTimeout
	if deadline < eng.Now() {
		deadline = eng.Now()
	}
	g.timer.Reset(deadline)
}

// onTimeout retransmits every record whose stop-and-wait interval has
// elapsed, then rearms for the next deadline.
func (g *Group) onTimeout() {
	if len(g.out) == 0 {
		return
	}
	nic := g.eng.nic
	now := nic.Engine().Now()
	rto := nic.Cfg.RetransmitTimeout
	for _, rec := range g.out {
		if now-rec.sentAt < rto {
			continue
		}
		rec.sentAt = now
		g.eng.m.retransmits.Inc()
		nic.Inject(rec.frame.Clone(), nil)
	}
	g.armTimer()
}

// ackRecord retires the outstanding record matching an acknowledgment;
// reports whether one was found. class, seq and aux identify the logical
// transmission; src disambiguates same-keyed sends to different peers
// (a tree barrier's release goes to every child under one key).
func (g *Group) ackRecord(class uint8, seq uint32, aux int32, src fabric.NodeID) bool {
	for i, rec := range g.out {
		if rec.class != class || rec.seq != seq || rec.aux != aux || rec.dst != src {
			continue
		}
		copy(g.out[i:], g.out[i+1:])
		g.out[len(g.out)-1] = nil
		g.out = g.out[:len(g.out)-1]
		rec.frame.Payload = nil
		g.free = append(g.free, rec)
		g.armTimer()
		return true
	}
	return false
}

// ackRecordsCumulative retires every outstanding record of one class and
// instance to src whose chunk starts below the cumulative byte mark —
// the windowed-gather half of the ack economy, where one coalesced ack
// covers several chunks. Reports how many records retired.
func (g *Group) ackRecordsCumulative(class uint8, seq uint32, upTo int32, src fabric.NodeID) int {
	retired := 0
	out := g.out[:0]
	for _, rec := range g.out {
		if rec.class == class && rec.seq == seq && rec.dst == src && rec.aux < upTo {
			rec.frame.Payload = nil
			g.free = append(g.free, rec)
			retired++
			continue
		}
		out = append(out, rec)
	}
	for i := len(out); i < len(g.out); i++ {
		g.out[i] = nil
	}
	g.out = out
	if retired > 0 {
		g.armTimer()
	}
	return retired
}

// rxAck handles any collective acknowledgment kind: retire the record,
// then run per-class continuation (the tree allgather sends its next
// batch chunk when the previous one is acknowledged).
func (e *Engine) rxAck(class uint8, fr *gm.Frame) {
	nic := e.nic
	nic.HW.CPUDo(nic.Cfg.AckProcCost, func() {
		g, ok := e.groups[fr.Group]
		if !ok {
			return // stale ack for a group we no longer know
		}
		if class == skGather && nic.Cfg.AckCoalescing() {
			// Windowed gather: the ack's Offset is the receiver's cumulative
			// contiguous byte count, retiring every chunk below it at once.
			g.ackRecordsCumulative(skGather, fr.Seq, int32(fr.Offset), fr.SrcNode)
			g.gatherWindowAcked(fr.Seq, fr.Offset)
			return
		}
		aux := int32(fr.Offset)
		if class == skReduce {
			aux = 0 // reduce acks echo only the instance
		}
		if !g.ackRecord(class, fr.Seq, aux, fr.SrcNode) {
			return // duplicate ack
		}
		switch class {
		case skGather:
			g.gatherChunkAcked(fr.Seq)
		case skRing:
			g.ringHopAcked(fr.Seq)
		}
	})
}

// doneSet tracks completed collective instances compactly: a cumulative
// low-water mark plus a small overflow set for out-of-order completions
// (instances can finish out of order when contributions race). This
// replaces the old per-(child, instance) duplicate map that was never
// cleaned — state is O(gap), not O(history).
type doneSet struct {
	through uint32 // every instance <= through (serially) is complete
	above   map[uint32]bool
}

func (d *doneSet) mark(s uint32) {
	if s == d.through+1 {
		d.through++
		for d.above[d.through+1] {
			delete(d.above, d.through+1)
			d.through++
		}
		return
	}
	if gm.SeqAfter(s, d.through) {
		if d.above == nil {
			d.above = make(map[uint32]bool)
		}
		d.above[s] = true
	}
}

func (d *doneSet) has(s uint32) bool {
	return !gm.SeqAfter(s, d.through) || d.above[s]
}

// open reports in-flight overflow entries (leak check).
func (d *doneSet) open() int { return len(d.above) }

// bitset is a tiny growable bitmask (child-arrival tracking for trees of
// any fanout).
type bitset []uint64

func (b *bitset) grow(n int) {
	words := (n + 63) / 64
	for len(*b) < words {
		*b = append(*b, 0)
	}
}

// setBit sets bit i, reporting whether it was already set.
func (b *bitset) setBit(i int) bool {
	b.grow(i + 1)
	w, m := i/64, uint64(1)<<(i%64)
	prior := (*b)[w]&m != 0
	(*b)[w] |= m
	return prior
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (b *bitset) clear() {
	for i := range *b {
		(*b)[i] = 0
	}
}

// swap moves next's bits into cur (instance rollover), clearing next.
func swapBitsets(cur, next *bitset) {
	*cur, *next = *next, *cur
	next.clear()
}

// childIndex finds src in a child list (-1 if absent).
func childIndex(children []fabric.NodeID, src fabric.NodeID) int {
	for i, c := range children {
		if c == src {
			return i
		}
	}
	return -1
}
