package coll_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Scale tests: the collective engine's tree allgather has no eager-size
// ceiling — the root concatenates 8·N bytes in MTU chunks and multicasts
// the flat result — so unlike the MPI layer's NIC path it must work at
// the paper-scale 512–2048-host systems on both fabrics, and the sharded
// engine must reproduce the serial timeline there too.

// runGatherAtScale runs one engine-level allgather round at the given
// size and returns the merged timeline and the finish time. Every node's
// result vector is checked in place.
func runGatherAtScale(t *testing.T, fb fabric.Config, nodes, shards int) ([]tlRec, sim.Time) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	cfg.Seed = 1
	cfg.Shards = shards
	cfg.Fabric = fb
	cfg.Link = fb.Links
	c := cluster.NewFromConfig(cfg)
	tl := recordTimelines(c)
	ports := c.OpenPorts(7)
	c.InstallGroup(collGID, tree.Binomial(0, c.Members()), 7, 7)
	ready := c.InstallCollGroup(collGID, c.Members(), 7)
	c.Run()
	if !ready() {
		t.Fatal("collective group installation did not settle")
	}
	want := make([]int64, nodes)
	for i := range want {
		want[i] = int64(100 * i)
	}
	for i := 0; i < nodes; i++ {
		i := i
		c.SpawnOn(c.Nodes[i].ID, "gather", func(p *sim.Proc) {
			got := c.Nodes[i].Coll.Allgather(p, ports[i], collGID, []int64{int64(100 * i)})
			if len(got) != nodes {
				t.Errorf("node %d: allgather returned %d entries, want %d", i, len(got), nodes)
				return
			}
			for j, v := range got {
				if v != want[j] {
					t.Errorf("node %d: entry %d = %d, want %d", i, j, v, want[j])
					return
				}
			}
		})
	}
	c.Run()
	if live := c.LiveProcs(); live != 0 {
		t.Fatalf("allgather stalled with %d live procs", live)
	}
	for _, n := range c.Nodes {
		if s := n.Coll.DebugLeaks(); s != "" {
			t.Fatalf("node %v leaked collective state: %s", n.ID, s)
		}
	}
	return tl(), c.Now()
}

// TestAllgatherAtScale drives the engine's tree allgather at 512 hosts on
// both fabrics, requiring the 4-shard run's timeline to be byte-identical
// to the serial run's.
func TestAllgatherAtScale(t *testing.T) {
	const nodes = 512
	for _, fb := range fabrics {
		fb := fb
		t.Run(fb.name, func(t *testing.T) {
			serialTL, serialNow := runGatherAtScale(t, fb.cfg, nodes, 1)
			if len(serialTL) == 0 {
				t.Fatal("serial run fired no events")
			}
			shardTL, shardNow := runGatherAtScale(t, fb.cfg, nodes, 4)
			diffTimelines(t, "4-shard", serialTL, shardTL)
			if shardNow != serialNow {
				t.Fatalf("4-shard run finished at %v, serial at %v", shardNow, serialNow)
			}
		})
	}
}

// TestAllgatherAt2048 is the largest point: 2048 hosts — past the MPI
// layer's eager ceiling, where only the engine's chunked path can run —
// sharded, on both fabrics. Skipped under -short.
func TestAllgatherAt2048(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-host allgather skipped in short mode")
	}
	for _, fb := range fabrics {
		fb := fb
		t.Run(fb.name, func(t *testing.T) {
			if _, now := runGatherAtScale(t, fb.cfg, 2048, 4); now == 0 {
				t.Fatal("run finished at time zero")
			}
		})
	}
}
