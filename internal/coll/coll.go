// Package coll is the NIC-resident collective engine: the generalization
// of the multicast firmware (internal/core) to arbitrary collectives that
// the paper's future work — and the authors' follow-up barrier paper
// ("Efficient and Scalable Barrier over Quadrics and Myrinet with a New
// NIC-Based Collective Message Passing Protocol") — describes. One host
// request enters a collective; the NICs run every round among themselves
// and post a completion event when the operation finishes. The host is not
// involved in any round, so slow or skewed processes on other nodes do
// not stall progress (skew tolerance).
//
// The engine owns a per-NIC collective group table keyed alongside the
// multicast group identifier space, with a pluggable algorithm per
// collective:
//
//   - Barrier: dissemination (ceil(log2 n) rounds of tiny messages) or a
//     gather/release sweep up and down a binomial tree;
//   - Reduce/Allreduce: combine-and-forward up the preposted multicast
//     tree, then (allreduce) one NIC-based multicast back down it;
//   - Allgather: concatenate-and-forward up the tree with the result
//     multicast down, or a ring for large vectors (n-1 hops, each NIC
//     forwarding its predecessor's chunks without host involvement).
//
// Every round is reliable via the same stop-and-wait discipline the
// multicast uses: one reusable retransmit timer per group over a pooled
// record list, so the steady-state hot path allocates nothing beyond the
// injected wire clones.
package coll

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Op aliases the NIC-computable reduction operator defined in core (the
// Collective interface names it, so it cannot live here).
type Op = core.ReduceOp

const (
	OpSum = core.OpSum
	OpMin = core.OpMin
	OpMax = core.OpMax
)

// BarrierAlgo selects a group's barrier algorithm.
type BarrierAlgo uint8

const (
	// BarrierDissemination runs ceil(log2 n) rounds; in round r each NIC
	// signals the member 2^r positions ahead and waits for the member 2^r
	// behind. Latency is log n fabric hops with no single hot spot.
	BarrierDissemination BarrierAlgo = iota
	// BarrierTree gathers arrivals up a binomial tree rooted at the
	// lowest-ID member and releases down it: 2 log n hops but half the
	// messages of dissemination.
	BarrierTree
)

// GatherAlgo selects a group's allgather algorithm.
type GatherAlgo uint8

const (
	// GatherTree concatenates index-tagged contributions up the group's
	// preposted tree; the root multicasts the assembled result back down.
	GatherTree GatherAlgo = iota
	// GatherRing passes each member's vector around a ring of the sorted
	// member list: n-1 hops, bandwidth-optimal for large vectors.
	GatherRing
)

// Config holds the collective firmware costs, charged on the LANai CPU.
type Config struct {
	// GroupInstallCost is the cost of inserting one collective group's
	// entry into the NIC table.
	GroupInstallCost sim.Time
	// ReduceElemCost is the LANai's per-element combining cost.
	ReduceElemCost sim.Time
	// GatherNsPerByte is the LANai's per-byte cost of concatenating
	// allgather contributions (an SDRAM copy on the NIC).
	GatherNsPerByte float64
}

// DefaultConfig returns costs calibrated alongside core.DefaultConfig.
func DefaultConfig() Config {
	return FromCore(core.DefaultConfig())
}

// FromCore derives the collective costs from the multicast extension's
// configuration, so one calibration governs both firmware subsystems.
func FromCore(cc core.Config) Config {
	return Config{
		GroupInstallCost: cc.GroupInstallCost,
		ReduceElemCost:   cc.ReduceElemCost,
		GatherNsPerByte:  1.5,
	}
}

// Engine is one NIC's collective engine. It registers itself with the
// multicast extension (core.Ext.SetCollective), which routes collective
// wire kinds here and exposes its group table for tree neighborhoods.
type Engine struct {
	ext    *core.Ext
	nic    *gm.NIC
	cfg    Config
	groups map[gm.GroupID]*Group
	m      instruments
}

// Install creates the collective engine for one NIC and wires it into the
// multicast extension. It is a pure constructor: no simulation events are
// scheduled, so installing it never perturbs existing timelines.
func Install(ext *core.Ext, cfg Config) *Engine {
	e := &Engine{
		ext:    ext,
		nic:    ext.NIC(),
		cfg:    cfg,
		groups: make(map[gm.GroupID]*Group),
	}
	e.initMetrics(metrics.Ensure(e.nic.HW.Registry()))
	ext.SetCollective(e)
	return e
}

// FromExt returns the collective engine wired into an extension.
func FromExt(ext *core.Ext) *Engine {
	e, ok := ext.CollectiveEngine().(*Engine)
	if !ok {
		panic(fmt.Errorf("%w: NIC %v", core.ErrNoCollective, ext.NIC().ID()))
	}
	return e
}

// FromNIC returns the collective engine installed on a NIC.
func FromNIC(nic *gm.NIC) *Engine { return FromExt(core.FromNIC(nic)) }

// NIC returns the firmware NIC the engine runs on.
func (e *Engine) NIC() *gm.NIC { return e.nic }

// Groups reports how many collective group entries are installed
// (auto-mirrored tree entries included).
func (e *Engine) Groups() int { return len(e.groups) }

// Option adjusts one collective group entry at install time.
type Option func(*Group)

// WithBarrierAlgo selects the group's barrier algorithm.
func WithBarrierAlgo(a BarrierAlgo) Option { return func(g *Group) { g.barrierAlgo = a } }

// WithGatherAlgo selects the group's allgather algorithm.
func WithGatherAlgo(a GatherAlgo) Option { return func(g *Group) { g.gatherAlgo = a } }

// HandleRx consumes one collective wire frame (called by core's extension
// hook in firmware context).
func (e *Engine) HandleRx(fr *gm.Frame) bool {
	switch fr.Kind {
	case gm.KindBarrier:
		e.rxBarrier(fr)
	case gm.KindBarrierAck:
		e.rxAck(skBarrier, fr)
	case gm.KindReduce:
		e.rxReduce(fr)
	case gm.KindReduceAck:
		e.rxAck(skReduce, fr)
	case gm.KindGather:
		e.rxGather(fr)
	case gm.KindGatherAck:
		e.rxAck(skGather, fr)
	case gm.KindRing:
		e.rxRing(fr)
	case gm.KindRingAck:
		e.rxAck(skRing, fr)
	default:
		return false
	}
	return true
}

// Outstanding reports unacknowledged collective send records across all
// groups — zero once every peer has acknowledged every round.
func (e *Engine) Outstanding() int {
	n := 0
	for _, g := range e.groups {
		n += len(g.out)
	}
	return n
}

// PendingTimers reports how many group retransmit timers are armed —
// nonzero after quiescence means a leaked timer.
func (e *Engine) PendingTimers() int {
	armed := 0
	for _, g := range e.groups {
		if g.timer.Pending() {
			armed++
		}
	}
	return armed
}

// DebugLeaks renders any collective state that should have drained once
// all collectives completed and all acks arrived: unacked records, armed
// timers, open instances, partial reassemblies, queued ring hops. Empty
// means clean — the chaos invariant checker asserts exactly that.
func (e *Engine) DebugLeaks() string {
	s := ""
	for id, g := range e.groups {
		if len(g.out) > 0 {
			s += fmt.Sprintf("group %d: %d unacked records; ", id, len(g.out))
		}
		if g.timer.Pending() {
			s += fmt.Sprintf("group %d: retransmit timer armed; ", id)
		}
		if g.barActive {
			s += fmt.Sprintf("group %d: barrier instance %d open; ", id, g.barSeq)
		}
		if len(g.red) > 0 {
			s += fmt.Sprintf("group %d: %d open reduce instances; ", id, len(g.red))
		}
		if len(g.ag) > 0 || len(g.asm) > 0 || len(g.agOut) > 0 {
			s += fmt.Sprintf("group %d: allgather state %d/%d/%d; ", id, len(g.ag), len(g.asm), len(g.agOut))
		}
		if len(g.ring) > 0 {
			s += fmt.Sprintf("group %d: %d open ring instances; ", id, len(g.ring))
		}
	}
	return s
}

// Install preposts one collective group entry: the sorted member set plus
// the per-collective algorithm selection. Members must be identical at
// every node; id shares the multicast group identifier space, and the
// tree-based collectives (reduce, allreduce, tree allgather) additionally
// require a multicast group with the same id installed via
// core.Ext.InstallGroup. port receives the group's completion events. fn,
// if non-nil, runs (in firmware context) when the entry is live.
func (e *Engine) Install(id gm.GroupID, members []fabric.NodeID, port gm.PortID, fn func(), opts ...Option) {
	ms := append([]fabric.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	myIdx := -1
	for i, m := range ms {
		if m == e.nic.ID() {
			myIdx = i
		}
	}
	if myIdx < 0 {
		panic(fmt.Errorf("%w: node %v installing collective group %d", core.ErrNotMember, e.nic.ID(), id))
	}
	rounds := 0
	for k := 1; k < len(ms); k <<= 1 {
		rounds++
	}
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, exists := e.groups[id]
			if exists && !g.auto {
				panic(fmt.Errorf("%w: collective group %d at %v", core.ErrGroupInstalled, id, e.nic.ID()))
			}
			if !exists {
				g = e.newGroup(id)
			}
			g.auto = false
			g.members = ms
			g.myIdx = myIdx
			g.rounds = rounds
			g.port = port
			for _, opt := range opts {
				opt(g)
			}
			if g.barrierAlgo == BarrierTree {
				tr := tree.Binomial(ms[0], ms)
				self := e.nic.ID()
				g.barChildren = append([]fabric.NodeID(nil), tr.Children(self)...)
				if p, ok := tr.Parent(self); ok {
					g.barParent = p
				} else {
					g.barParent = self
				}
			}
			if fn != nil {
				fn()
			}
		})
	})
}

// Remove deletes a collective group entry. Removal is collective and must
// follow the last collective on the group (an MPI layer frees it with the
// communicator after a barrier): any still-unacknowledged trailing records
// are dropped with the entry — their peers are removing their entries too,
// so the retransmit conversation ends on both sides. fn, if non-nil, runs
// (in firmware context) after the entry is gone.
func (e *Engine) Remove(id gm.GroupID, fn func()) {
	e.nic.HW.HostPost(func() {
		e.nic.HW.CPUDo(e.cfg.GroupInstallCost, func() {
			g, ok := e.groups[id]
			if !ok {
				panic(fmt.Errorf("%w: removing collective group %d at %v", core.ErrNoSuchGroup, id, e.nic.ID()))
			}
			g.timer.Stop()
			delete(e.groups, id)
			if fn != nil {
				fn()
			}
		})
	})
}

// InstallBarrier implements core.Collective; it is Install with the
// default algorithm selection, preserving the pre-coll API surface.
func (e *Engine) InstallBarrier(id gm.GroupID, members []fabric.NodeID, port gm.PortID, fn func()) {
	e.Install(id, members, port, fn)
}

// groupFor returns the group entry, auto-creating a memberless mirror
// entry (firmware context). The tree collectives need only the multicast
// group table's neighborhood, so a NIC that never saw a coll Install can
// still combine-and-forward — the entry exists to hold instance state.
func (e *Engine) groupFor(id gm.GroupID) *Group {
	g, ok := e.groups[id]
	if !ok {
		g = e.newGroup(id)
		g.auto = true
	}
	return g
}

func (e *Engine) newGroup(id gm.GroupID) *Group {
	g := &Group{eng: e, id: id, myIdx: -1}
	g.timer = e.nic.Engine().NewTimer(g.onTimeout)
	e.groups[id] = g
	return g
}

// treeView reads the group's tree neighborhood from the multicast group
// table (fresh on every use, so membership epoch rolls are honored). The
// port is the multicast group's host port — tree collectives deliver
// their completion events there, so they work on NICs that only ever
// relay (no coll Install).
func (e *Engine) treeView(id gm.GroupID) (root, parent fabric.NodeID, children []fabric.NodeID, port gm.PortID, ok bool) {
	return e.ext.GroupView(id)
}

// EncodeVec serializes an int64 vector little-endian (8 bytes/element).
func EncodeVec(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// DecodeVec deserializes an EncodeVec payload.
func DecodeVec(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
