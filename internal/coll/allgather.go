package coll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/sim"
)

// Allgather: every member contributes a vector and every member receives
// the concatenation, ordered by member index.
//
// Tree (default): concatenate-and-forward up the group's multicast tree.
// Each NIC batches its own entry with its children's, forwards the batch
// to its parent in MTU-sized chunks under stop-and-wait, and the root
// assembles the flat result and multicasts it back down the preposted
// tree. Latency is O(log n) hops but the root-adjacent links carry O(n)
// bytes — right for small vectors.
//
// Ring: each member forwards chunks to its successor; after n-1 hops
// everyone holds everything. Per-link traffic is uniform (n-1 chunks of
// one vector each), so large vectors avoid the tree's root hot-spot.

// Batch entry encoding (tree upward path):
//
//	[u32 member index][u32 element count][count * 8 bytes]
//
// repeated per contributing member. A batch larger than one MTU moves in
// chunks: KindGather frames carry Seq=instance, Offset=byte offset within
// the batch, MsgLen=total batch bytes.

// gatherInst is one open tree-allgather instance at one NIC: collected
// entries from this subtree, awaiting len(children)+1 contributions.
type gatherInst struct {
	need    int
	got     int
	from    bitset // child dedup
	entries []byte
	veclen  int // local contribution's element count (root validation)
}

// asmKey identifies one child's in-flight batch transfer.
type asmKey struct {
	child fabric.NodeID
	seq   uint32
}

// chunkAsm reassembles one child's chunked batch in arrival order.
type chunkAsm struct {
	buf     []byte
	got     int // contiguous bytes received
	unacked int // accepted chunks not yet acknowledged (ack economy)
}

// gatherSend is this NIC's outgoing batch. By default chunks move one at
// a time, each released by the previous chunk's acknowledgment. Under the
// ack economy (gm.Config.AckEvery) a window of AckEvery chunks flies at
// once: off is then the next unsent byte and acked the receiver's
// cumulative contiguous mark.
type gatherSend struct {
	batch []byte
	off   int
	acked int
}

// ringInst is one ring-allgather instance at one NIC.
type ringInst struct {
	flat    []int64
	have    []bool
	haveCnt int
	posted  bool // local host has contributed
	done    bool
	veclen  int
	queue   []int32 // member indices whose chunks await forwarding
	sending bool    // a hop is in flight (stop-and-wait: one at a time)
}

func appendEntry(buf []byte, idx int, vec []int64) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(idx))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(vec)))
	buf = append(buf, hdr[:]...)
	return append(buf, EncodeVec(vec)...)
}

// Allgather gathers every member's vector and blocks until this node
// holds the full concatenation (member order). All members must call it
// with equal-length vectors, in the same order. The port must be
// dedicated to collective use for the duration.
func (e *Engine) Allgather(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64) []int64 {
	g := e.requireMember(id, "Allgather")
	n := len(g.members)
	tree := g.gatherAlgo == GatherTree
	root := tree && e.isGroupRoot(id)
	if tree && !root {
		// The root multicasts the flat result down the preposted tree;
		// size a receive token for it before entering.
		port.Provide(8 * n * len(vec))
	}
	e.PostAllgather(proc, port, id, vec)
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) > 0 {
			if root {
				e.ext.Mcast(proc, port, id, ev.Data)
			}
			return DecodeVec(ev.Data)
		}
		panic("coll: unexpected traffic on allgather port")
	}
}

// PostAllgather contributes this node's vector without blocking — the
// split entry point for callers multiplexing a port. Every member
// (ring), or the root (tree), observes the flat result as a group event;
// tree non-roots receive it via the downward multicast the blocking
// wrapper issues from the root.
func (e *Engine) PostAllgather(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64) {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Allgather", core.ErrWrongNIC))
	}
	g := e.requireMember(id, "Allgather")
	if g.gatherAlgo == GatherRing && len(vec)*8 > e.nic.Cfg.MTU {
		panic(fmt.Errorf("%w: ring allgather vector of %d elements exceeds one packet", core.ErrBadReduce, len(vec)))
	}
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			if g.gatherAlgo == GatherRing {
				g.ringSeqBump()
				g.ringContribute(g.agSeq, vec)
				return
			}
			g.agSeq++
			g.treeContribute(g.agSeq, vec)
		})
	})
}

// requireMember returns the group entry, panicking unless this NIC is an
// installed member (sync check — caller-side misuse, not a race).
func (e *Engine) requireMember(id gm.GroupID, op string) *Group {
	g, ok := e.groups[id]
	if !ok || g.members == nil {
		panic(fmt.Errorf("%w: %s on group %d at %v", core.ErrNoSuchGroup, op, id, e.nic.ID()))
	}
	return g
}

// --- tree variant ---

// treeContribute files the local host's entry into the open instance.
func (g *Group) treeContribute(seq uint32, vec []int64) {
	e := g.eng
	_, _, children, _, ok := e.treeView(g.id)
	if !ok {
		e.m.notMemberDrops.Inc()
		return
	}
	st := g.openGather(seq, len(children))
	st.veclen = len(vec)
	entry := appendEntry(nil, g.myIdx, vec)
	cost := sim.PerByte(e.cfg.GatherNsPerByte, len(entry))
	e.nic.HW.CPUDo(cost, func() {
		st.entries = append(st.entries, entry...)
		st.got++
		g.finishGatherMaybe(seq, st)
	})
}

func (g *Group) openGather(seq uint32, nchildren int) *gatherInst {
	st := g.ag[seq]
	if st == nil {
		st = &gatherInst{need: nchildren + 1}
		if g.ag == nil {
			g.ag = make(map[uint32]*gatherInst)
		}
		g.ag[seq] = st
	}
	return st
}

// finishGatherMaybe closes the instance once every contribution is in:
// the root decodes and publishes the flat result; interior nodes start
// forwarding their batch upward.
func (g *Group) finishGatherMaybe(seq uint32, st *gatherInst) {
	if st.got < st.need {
		return
	}
	e := g.eng
	root, parent, _, _, ok := e.treeView(g.id)
	if !ok {
		e.m.notMemberDrops.Inc()
		return
	}
	delete(g.ag, seq)
	g.agDone.mark(seq)
	if root == e.nic.ID() {
		flat := g.assembleFlat(st)
		e.m.gathersDone.Inc()
		port := e.nic.Port(g.port)
		port.PostGroupEvent(&gm.RecvEvent{Group: g.id, Data: EncodeVec(flat)})
		return
	}
	if g.agOut == nil {
		g.agOut = make(map[uint32]*gatherSend)
	}
	g.agOut[seq] = &gatherSend{batch: st.entries}
	if e.nic.Cfg.AckCoalescing() {
		g.pumpGather(seq, g.agOut[seq], parent)
	} else {
		g.sendGatherChunk(seq, g.agOut[seq], parent)
	}
}

// assembleFlat decodes the root's collected entries into member order.
func (g *Group) assembleFlat(st *gatherInst) []int64 {
	n := len(g.members)
	flat := make([]int64, n*st.veclen)
	buf := st.entries
	for len(buf) > 0 {
		if len(buf) < 8 {
			panic(fmt.Errorf("coll: truncated allgather entry header on group %d", g.id))
		}
		idx := int(binary.LittleEndian.Uint32(buf[0:4]))
		cnt := int(binary.LittleEndian.Uint32(buf[4:8]))
		buf = buf[8:]
		if idx < 0 || idx >= n || cnt != st.veclen || len(buf) < 8*cnt {
			panic(fmt.Errorf("coll: malformed allgather entry (member %d, %d elems) on group %d", idx, cnt, g.id))
		}
		copy(flat[idx*st.veclen:], DecodeVec(buf[:8*cnt]))
		buf = buf[8*cnt:]
	}
	return flat
}

// sendGatherChunk transmits the next MTU-sized slice of the outgoing
// batch under stop-and-wait.
func (g *Group) sendGatherChunk(seq uint32, gs *gatherSend, parent fabric.NodeID) {
	e := g.eng
	n := len(gs.batch) - gs.off
	if n > e.nic.Cfg.MTU {
		n = e.nic.Cfg.MTU
	}
	e.m.gatherSent.Inc()
	e.m.bytesForwarded.Add(uint64(n))
	chunk := gs.batch[gs.off : gs.off+n]
	g.sendRel(skGather, gm.KindGather, parent, seq, int32(gs.off), gs.off, len(gs.batch), chunk)
}

// pumpGather keeps up to AckEvery chunks of the outgoing batch in flight
// (the ack economy's windowed variant of sendGatherChunk): the receiver
// acknowledges cumulatively every AckEvery-th chunk and at batch
// completion, and gatherWindowAcked re-pumps as the window reopens.
func (g *Group) pumpGather(seq uint32, gs *gatherSend, parent fabric.NodeID) {
	e := g.eng
	mtu := e.nic.Cfg.MTU
	window := e.nic.Cfg.AckEvery
	for gs.off < len(gs.batch) && (gs.off-gs.acked+mtu-1)/mtu < window {
		n := len(gs.batch) - gs.off
		if n > mtu {
			n = mtu
		}
		e.m.gatherSent.Inc()
		e.m.bytesForwarded.Add(uint64(n))
		chunk := gs.batch[gs.off : gs.off+n]
		g.sendRel(skGather, gm.KindGather, parent, seq, int32(gs.off), gs.off, len(gs.batch), chunk)
		gs.off += n
	}
}

// gatherWindowAcked folds a cumulative gather acknowledgment into the
// windowed transfer: advance the contiguous mark, retire the transfer
// when the whole batch is covered, else refill the window.
func (g *Group) gatherWindowAcked(seq uint32, got int) {
	gs := g.agOut[seq]
	if gs == nil {
		return
	}
	if got > gs.acked {
		gs.acked = got
	}
	if gs.acked >= len(gs.batch) {
		delete(g.agOut, seq)
		return
	}
	_, parent, _, _, ok := g.eng.treeView(g.id)
	if !ok {
		delete(g.agOut, seq) // group torn down mid-transfer
		return
	}
	g.pumpGather(seq, gs, parent)
}

// gatherChunkAcked advances the outgoing batch past the acknowledged
// chunk, sending the next one (or retiring the transfer).
func (g *Group) gatherChunkAcked(seq uint32) {
	gs := g.agOut[seq]
	if gs == nil {
		return
	}
	n := len(gs.batch) - gs.off
	if n > g.eng.nic.Cfg.MTU {
		n = g.eng.nic.Cfg.MTU
	}
	gs.off += n
	if gs.off >= len(gs.batch) {
		delete(g.agOut, seq)
		return
	}
	_, parent, _, _, ok := g.eng.treeView(g.id)
	if !ok {
		delete(g.agOut, seq) // group torn down mid-transfer
		return
	}
	g.sendGatherChunk(seq, gs, parent)
}

// rxGather reassembles a child's chunked batch, merging it into the open
// instance once complete.
func (e *Engine) rxGather(fr *gm.Frame) {
	nic := e.nic
	buf, ok := nic.HW.RecvBufs.TryAcquire()
	if !ok {
		nic.HW.CountRxNoBuffer()
		return
	}
	nic.HW.CPUDo(nic.Cfg.RecvProcCost, func() {
		defer buf.Release()
		_, _, children, _, ok := e.treeView(fr.Group)
		if !ok {
			// No group entry yet: stay silent so the child retransmits
			// after our install lands.
			e.m.notMemberDrops.Inc()
			return
		}
		g := e.groupFor(fr.Group)
		coalesce := nic.Cfg.AckCoalescing()
		// Default acks echo the chunk offset (exact-match retire); economy
		// acks carry the cumulative contiguous byte mark instead, so one
		// covers a whole window of chunks.
		ackAt := func(off int) {
			nic.Inject(&gm.Frame{
				Kind:    gm.KindGatherAck,
				SrcNode: nic.ID(),
				DstNode: fr.SrcNode,
				Group:   fr.Group,
				Seq:     fr.Seq,
				Offset:  off,
			}, nil)
		}
		if g.agDone.has(fr.Seq) {
			// Late chunk retransmit of a completed instance.
			if coalesce {
				ackAt(fr.MsgLen)
			} else {
				ackAt(fr.Offset)
			}
			e.m.duplicates.Inc()
			return
		}
		key := asmKey{child: fr.SrcNode, seq: fr.Seq}
		casm := g.asm[key]
		if casm == nil {
			casm = &chunkAsm{buf: make([]byte, 0, fr.MsgLen)}
			if g.asm == nil {
				g.asm = make(map[asmKey]*chunkAsm)
			}
			g.asm[key] = casm
		}
		switch {
		case fr.Offset == casm.got:
			casm.buf = append(casm.buf, fr.Payload...)
			casm.got += len(fr.Payload)
			if !coalesce {
				ackAt(fr.Offset)
				break
			}
			casm.unacked++
			if casm.unacked >= nic.Cfg.AckEvery || casm.got >= fr.MsgLen {
				e.m.acksSuppressed.Add(uint64(casm.unacked - 1))
				casm.unacked = 0
				ackAt(casm.got)
			}
			// Held chunks need no receiver timer: the sender's window fills
			// exactly at the ack threshold, and its stop-and-wait timer plus
			// the duplicate re-ack below break any loss-induced stall.
		case fr.Offset < casm.got:
			// Duplicate chunk; re-ack so the child advances. Under the
			// economy the cumulative mark also covers anything held.
			if coalesce {
				e.m.acksSuppressed.Add(uint64(casm.unacked))
				casm.unacked = 0
				ackAt(casm.got)
			} else {
				ackAt(fr.Offset)
			}
			e.m.duplicates.Inc()
			return
		default:
			// A gap cannot happen under one-at-a-time stop-and-wait, and
			// under the windowed economy the sender's timer recovers it;
			// drop without ack.
			e.m.duplicates.Inc()
			return
		}
		if casm.got < fr.MsgLen {
			return
		}
		delete(g.asm, key)
		idx := childIndex(children, fr.SrcNode)
		if idx < 0 {
			e.m.duplicates.Inc()
			return
		}
		st := g.openGather(fr.Seq, len(children))
		if st.from.setBit(idx) {
			e.m.duplicates.Inc()
			return
		}
		batch := casm.buf
		cost := sim.PerByte(e.cfg.GatherNsPerByte, len(batch))
		nic.HW.CPUDo(cost, func() {
			st.entries = append(st.entries, batch...)
			st.got++
			g.finishGatherMaybe(fr.Seq, st)
		})
	})
}

// --- ring variant ---

// ringSeqBump opens the next ring instance number for the local post.
// (Remote chunks for it may already have arrived and created the
// instance; the sequence space is shared, advanced once per post.)
func (g *Group) ringSeqBump() { g.agSeq++ }

func (g *Group) openRing(seq uint32, veclen int) *ringInst {
	st := g.ring[seq]
	if st == nil {
		n := len(g.members)
		st = &ringInst{
			flat:   make([]int64, n*veclen),
			have:   make([]bool, n),
			veclen: veclen,
		}
		if g.ring == nil {
			g.ring = make(map[uint32]*ringInst)
		}
		g.ring[seq] = st
	}
	return st
}

// ringContribute places the local vector and starts it around the ring.
func (g *Group) ringContribute(seq uint32, vec []int64) {
	st := g.openRing(seq, len(vec))
	st.posted = true
	g.ringPlace(st, g.myIdx, vec)
	if len(g.members) > 1 {
		st.queue = append(st.queue, int32(g.myIdx))
		g.pumpRing(seq, st)
	}
	g.ringFinishMaybe(seq, st)
}

// ringPlace copies member idx's chunk into the flat result.
func (g *Group) ringPlace(st *ringInst, idx int, vec []int64) {
	if st.have[idx] {
		return
	}
	st.have[idx] = true
	st.haveCnt++
	copy(st.flat[idx*st.veclen:], vec)
}

// pumpRing forwards the next queued chunk to the successor — one hop in
// flight at a time, each released by the previous hop's ack.
func (g *Group) pumpRing(seq uint32, st *ringInst) {
	if st.sending || len(st.queue) == 0 {
		return
	}
	idx := int(st.queue[0])
	st.queue = st.queue[1:]
	st.sending = true
	succ := g.members[(g.myIdx+1)%len(g.members)]
	e := g.eng
	e.m.ringSent.Inc()
	e.m.bytesForwarded.Add(uint64(8 * st.veclen))
	chunk := st.flat[idx*st.veclen : (idx+1)*st.veclen]
	g.sendRel(skRing, gm.KindRing, succ, seq, int32(idx), idx, 0, EncodeVec(chunk))
}

// ringHopAcked releases the next hop after the previous one is
// acknowledged, retiring the instance once drained.
func (g *Group) ringHopAcked(seq uint32) {
	st := g.ring[seq]
	if st == nil {
		return
	}
	st.sending = false
	g.pumpRing(seq, st)
	g.ringFinishMaybe(seq, st)
}

// ringFinishMaybe publishes the flat result once every chunk is present
// and deletes the instance once its forwards have drained.
func (g *Group) ringFinishMaybe(seq uint32, st *ringInst) {
	if !st.done && st.posted && st.haveCnt == len(g.members) {
		st.done = true
		g.ringDone.mark(seq)
		e := g.eng
		e.m.gathersDone.Inc()
		port := e.nic.Port(g.port)
		port.PostGroupEvent(&gm.RecvEvent{Group: g.id, Data: EncodeVec(st.flat)})
	}
	if st.done && len(st.queue) == 0 && !st.sending {
		delete(g.ring, seq)
	}
}

// rxRing handles a predecessor's chunk: place it, forward it onward
// unless it originated at our successor (it has gone full circle).
func (e *Engine) rxRing(fr *gm.Frame) {
	nic := e.nic
	buf, ok := nic.HW.RecvBufs.TryAcquire()
	if !ok {
		nic.HW.CountRxNoBuffer()
		return
	}
	nic.HW.CPUDo(nic.Cfg.RecvProcCost, func() {
		defer buf.Release()
		g, ok := e.groups[fr.Group]
		if !ok || g.members == nil {
			e.m.notMemberDrops.Inc()
			return
		}
		nic.Inject(&gm.Frame{
			Kind:    gm.KindRingAck,
			SrcNode: nic.ID(),
			DstNode: fr.SrcNode,
			Group:   fr.Group,
			Seq:     fr.Seq,
			Offset:  fr.Offset,
		}, nil)
		if g.ringDone.has(fr.Seq) {
			e.m.duplicates.Inc()
			return
		}
		n := len(g.members)
		idx := fr.Offset
		veclen := len(fr.Payload) / 8
		if idx < 0 || idx >= n || veclen == 0 {
			e.m.duplicates.Inc()
			return
		}
		st := g.openRing(fr.Seq, veclen)
		if st.have[idx] {
			e.m.duplicates.Inc()
			return
		}
		vec := DecodeVec(fr.Payload)
		cost := sim.PerByte(e.cfg.GatherNsPerByte, len(fr.Payload))
		nic.HW.CPUDo(cost, func() {
			g.ringPlace(st, idx, vec)
			// Forward unless the chunk originated at our successor —
			// it has completed the circle.
			if idx != (g.myIdx+1)%n {
				st.queue = append(st.queue, int32(idx))
				g.pumpRing(fr.Seq, st)
			}
			g.ringFinishMaybe(fr.Seq, st)
		})
	})
}
