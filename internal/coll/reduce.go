package coll

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/sim"
)

// Combine-and-forward reduction over the group's preposted multicast
// tree: each NIC combines its children's vectors with its own host's
// contribution — paying the slow LANai's per-element arithmetic cost —
// and forwards one combined vector to its parent. The root's host
// receives the result; Allreduce then multicasts it back down.

// reduceInst accumulates one reduction instance at one NIC.
type reduceInst struct {
	op   Op
	acc  []int64
	got  int // contributions combined (children + own host)
	need int
	from bitset // child-arrival dedup
}

// Reduce contributes this node's vector to a reduction over the group's
// tree and, at the root, blocks until the combined result arrives.
// Non-roots return nil as soon as their contribution is posted (their
// buffer is immediately reusable, like MPI_Reduce). All members must call
// Reduce with equal-length vectors and the same op, in the same order.
// Vectors must fit one packet (MTU/8 elements).
func (e *Engine) Reduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op Op) []int64 {
	e.PostReduce(proc, port, id, vec, op)
	if !e.isGroupRoot(id) {
		return nil
	}
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) > 0 {
			return DecodeVec(ev.Data)
		}
		panic("coll: unexpected traffic on reduce port")
	}
}

// PostReduce contributes without blocking — the split entry point for
// callers multiplexing a port. The root observes the result as a group
// event carrying the encoded vector.
func (e *Engine) PostReduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op Op) {
	if port.NIC() != e.nic {
		panic(fmt.Errorf("%w: Reduce", core.ErrWrongNIC))
	}
	if len(vec)*8 > e.nic.Cfg.MTU {
		panic(fmt.Errorf("%w: vector of %d elements exceeds one packet", core.ErrBadReduce, len(vec)))
	}
	proc.Compute(e.nic.Cfg.HostSendPost)
	nic := e.nic
	nic.HW.HostPost(func() {
		nic.HW.CPUDo(nic.Cfg.SendEventCost, func() {
			if _, _, _, _, ok := e.treeView(id); !ok {
				panic(fmt.Errorf("%w: Reduce on group %d at %v", core.ErrNoSuchGroup, id, nic.ID()))
			}
			g := e.groupFor(id)
			g.redSeq++
			g.contribute(g.redSeq, op, vec, -1)
		})
	})
}

// isGroupRoot reports whether this NIC roots the group's tree. The group
// table is firmware state, but tree placement is static and known to the
// host that installed it; this helper models that knowledge.
func (e *Engine) isGroupRoot(id gm.GroupID) bool {
	root, _, _, _, ok := e.treeView(id)
	return ok && root == e.nic.ID()
}

// contribute merges one vector into the instance's accumulator, charging
// the LANai's per-element cost, and forwards when complete. fromChild is
// the contributing child's index (-1 for the local host's contribution).
func (g *Group) contribute(seq uint32, op Op, vec []int64, fromChild int) {
	e := g.eng
	root, parent, children, port, ok := e.treeView(g.id)
	if !ok {
		e.m.notMemberDrops.Inc()
		return
	}
	st := g.red[seq]
	if st == nil {
		st = &reduceInst{op: op, need: len(children) + 1}
		if g.red == nil {
			g.red = make(map[uint32]*reduceInst)
		}
		g.red[seq] = st
	}
	if st.op != op {
		panic(fmt.Errorf("%w: op mismatch on group %d instance %d", core.ErrBadReduce, g.id, seq))
	}
	if fromChild >= 0 && st.from.setBit(fromChild) {
		e.m.duplicates.Inc()
		return
	}
	cost := sim.Time(len(vec)) * e.cfg.ReduceElemCost
	e.nic.HW.CPUDo(cost, func() {
		if st.acc == nil {
			st.acc = append([]int64(nil), vec...)
		} else {
			if len(vec) != len(st.acc) {
				panic(fmt.Errorf("%w: length mismatch on group %d", core.ErrBadReduce, g.id))
			}
			for i := range st.acc {
				st.acc[i] = op.Apply(st.acc[i], vec[i])
			}
		}
		st.got++
		e.m.reduceCombines.Inc()
		e.m.combineNs.Observe(int64(cost))
		if st.got < st.need {
			return
		}
		delete(g.red, seq)
		g.redDone.mark(seq)
		if root == e.nic.ID() {
			e.m.reducesDone.Inc()
			e.nic.Port(port).PostGroupEvent(&gm.RecvEvent{Group: g.id, Data: EncodeVec(st.acc)})
			return
		}
		e.m.reduceSent.Inc()
		e.m.bytesForwarded.Add(uint64(8 * len(st.acc)))
		g.sendRel(skReduce, gm.KindReduce, parent, seq, 0, int(st.op), 0, EncodeVec(st.acc))
	})
}

// rxReduce handles a child's combined contribution.
func (e *Engine) rxReduce(fr *gm.Frame) {
	nic := e.nic
	buf, ok := nic.HW.RecvBufs.TryAcquire()
	if !ok {
		nic.HW.CountRxNoBuffer()
		return
	}
	nic.HW.CPUDo(nic.Cfg.RecvProcCost, func() {
		defer buf.Release()
		_, _, children, _, ok := e.treeView(fr.Group)
		if !ok {
			e.m.notMemberDrops.Inc()
			return
		}
		// Ack unconditionally; duplicates must stop the child's timer too.
		nic.Inject(&gm.Frame{
			Kind:    gm.KindReduceAck,
			SrcNode: nic.ID(),
			DstNode: fr.SrcNode,
			Group:   fr.Group,
			Seq:     fr.Seq,
		}, nil)
		g := e.groupFor(fr.Group)
		if g.redDone.has(fr.Seq) {
			e.m.duplicates.Inc()
			return
		}
		idx := childIndex(children, fr.SrcNode)
		if idx < 0 {
			e.m.duplicates.Inc() // not our child under the current view
			return
		}
		g.contribute(fr.Seq, Op(fr.Offset), DecodeVec(fr.Payload), idx)
	})
}

// Allreduce reduces to the root over the tree, then multicasts the result
// back down it: every member returns the combined vector. The caller must
// have preposted a receive token (>= 8*len(vec) bytes) on non-root
// members for the downward multicast.
func (e *Engine) Allreduce(proc *sim.Proc, port *gm.Port, id gm.GroupID, vec []int64, op Op) []int64 {
	if res := e.Reduce(proc, port, id, vec, op); res != nil {
		e.ext.Mcast(proc, port, id, EncodeVec(res))
		return res
	}
	for {
		ev := port.Recv(proc)
		if ev.Group == id && len(ev.Data) > 0 {
			return DecodeVec(ev.Data)
		}
		panic("coll: unexpected traffic on allreduce port")
	}
}
