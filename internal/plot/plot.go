// Package plot renders small ASCII line charts — enough to see the
// paper's curve shapes (improvement factors over message size, CPU time
// over skew) straight in a terminal, next to the numeric tables.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a fixed-size character canvas with labeled axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area in characters (defaults 60x16).
	Width, Height int
	// XTicks labels selected x positions (index -> label).
	XTicks map[int]string
	series []Series
}

// Add appends a curve; all curves share x indices 0..len(Y)-1.
func (c *Chart) Add(name string, y []float64) {
	c.series = append(c.series, Series{Name: name, Y: y})
}

// markers cycles distinct glyphs per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	maxN := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		if len(s.Y) > maxN {
			maxN = len(s.Y)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if maxN == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom so extremes don't sit on the frame.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int {
		if maxN == 1 {
			return 0
		}
		return i * (width - 1) / (maxN - 1)
	}
	row := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - f)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		prevC, prevR := -1, -1
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				prevC = -1
				continue
			}
			cc, rr := col(i), row(v)
			if prevC >= 0 {
				drawLine(grid, prevC, prevR, cc, rr, '.')
			}
			grid[rr][cc] = m
			prevC, prevR = cc, rr
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yTop := fmt.Sprintf("%.2f", hi)
	yBot := fmt.Sprintf("%.2f", lo)
	labelWidth := len(yTop)
	if len(yBot) > labelWidth {
		labelWidth = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	if len(c.XTicks) > 0 {
		ticks := []byte(strings.Repeat(" ", width+labelWidth+12)) // slack so edge labels fit
		for i, lab := range c.XTicks {
			pos := labelWidth + 2 + col(i)
			for j := 0; j < len(lab) && pos+j < len(ticks); j++ {
				ticks[pos+j] = lab[j]
			}
		}
		fmt.Fprintln(w, strings.TrimRight(string(ticks), " "))
	}
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "  %s", strings.Join(legend, "   "))
		if c.XLabel != "" {
			fmt.Fprintf(w, "   [x: %s]", c.XLabel)
		}
		if c.YLabel != "" {
			fmt.Fprintf(w, " [y: %s]", c.YLabel)
		}
		fmt.Fprintln(w)
	}
}

// drawLine traces a Bresenham segment with a soft glyph, leaving existing
// markers intact.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, glyph byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			grid[y0][x0] = glyph
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
