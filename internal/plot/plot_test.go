package plot

import (
	"math"
	"strings"
	"testing"
)

func render(c *Chart) string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

func TestRenderBasics(t *testing.T) {
	c := &Chart{Title: "factors", Width: 40, Height: 10, XLabel: "size", YLabel: "x"}
	c.Add("NB", []float64{1.0, 1.5, 2.0, 1.2, 1.5})
	out := render(c)
	for _, want := range []string{"factors", "*", "2.", "NB", "[x: size]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis + legend.
	if len(lines) < 12 {
		t.Fatalf("only %d lines rendered", len(lines))
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{Width: 30, Height: 8}
	c.Add("a", []float64{1, 2, 3})
	c.Add("b", []float64{3, 2, 1})
	out := render(c)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected two marker glyphs:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(&Chart{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart rendered %q", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{Width: 20, Height: 6}
	c.Add("flat", []float64{5, 5, 5})
	out := render(c)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	c := &Chart{Width: 20, Height: 6}
	c.Add("gappy", []float64{1, math.NaN(), 3})
	out := render(c)
	if !strings.Contains(out, "*") {
		t.Fatalf("series with NaN not drawn:\n%s", out)
	}
}

func TestXTicksAppear(t *testing.T) {
	c := &Chart{Width: 30, Height: 5, XTicks: map[int]string{0: "1B", 2: "16K"}}
	c.Add("s", []float64{1, 2, 3})
	out := render(c)
	if !strings.Contains(out, "1B") || !strings.Contains(out, "16K") {
		t.Fatalf("x ticks missing:\n%s", out)
	}
}

func TestExtremesStayInFrame(t *testing.T) {
	c := &Chart{Width: 25, Height: 7}
	c.Add("s", []float64{-100, 0, 1000})
	out := render(c)
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if len(l) > 25+12 {
			t.Fatalf("row wider than frame: %q", l)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	c := &Chart{Width: 10, Height: 4}
	c.Add("p", []float64{7})
	if out := render(c); !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}
