package workload_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/clos"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/member"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Engine-equivalence property test: every registered workload pattern,
// run at several seeds on both fabric backends, must produce the exact
// same event timeline — every (timestamp, tiebreak key) pair fired by any
// engine — under four execution modes:
//
//	legacy  — Config.Shards left zero, the path every pre-existing caller
//	          takes (pins that sharding support didn't change defaults)
//	serial  — an explicit WithShards(1)
//	2-shard — conservative parallel, two engines
//	4-shard — conservative parallel, four engines
//
// Sharded modes exercise the adaptive coordinator end to end — per-pair
// lookahead matrix, window stretching, inline single-shard windows,
// skipped drains — so this is the property pinning that adaptivity moves
// only wall-clock behavior, never the timeline. Reports/results are
// compared too: the timeline proves the engines agree, the report proves
// the workload-visible numbers do.

type tlRec struct {
	when sim.Time
	key  uint64
}

// recordTimelines attaches a fire hook to every engine and returns a
// closure producing the merged (when, key)-sorted timeline.
func recordTimelines(c *cluster.Cluster) func() []tlRec {
	per := make([][]tlRec, len(c.Engines()))
	for i, e := range c.Engines() {
		i := i
		e.SetFireHook(func(when sim.Time, key uint64) {
			per[i] = append(per[i], tlRec{when, key})
		})
	}
	return func() []tlRec {
		var all []tlRec
		for _, recs := range per {
			all = append(all, recs...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].when != all[j].when {
				return all[i].when < all[j].when
			}
			return all[i].key < all[j].key
		})
		return all
	}
}

// modes lists the execution modes under test as Config.Shards values.
var modes = []struct {
	name   string
	shards int
}{
	{"legacy", 0},
	{"serial", 1},
	{"2-shard", 2},
	{"4-shard", 4},
}

// fabrics lists the interconnect backends the equivalence property must
// hold on. The uniform-latency Myrinet fabric and the 3x-faster PFC Clos
// fabric stress different window widths and cross-shard densities.
var fabrics = []struct {
	name string
	cfg  fabric.Config
}{
	{"myrinet", myrinet.Default()},
	{"clos", clos.Default()},
}

func diffTimelines(t *testing.T, label string, want, got []tlRec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: fired %d events, baseline fired %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: timeline diverges at event %d: got (%v, %#x), want (%v, %#x)",
				label, i, got[i].when, got[i].key, want[i].when, want[i].key)
		}
	}
}

func TestEngineEquivalenceAcrossPatterns(t *testing.T) {
	const nodes = 16
	p2p := []workload.Pattern{workload.Uniform, workload.Permutation, workload.Hotspot, workload.Neighbor}
	for _, fb := range fabrics {
		fb := fb
		for _, pat := range p2p {
			pat := pat
			t.Run(fb.name+"/"+string(pat), func(t *testing.T) {
				for _, seed := range []int64{1, 2, 3} {
					var baseTL []tlRec
					var baseRep workload.Report
					for mi, m := range modes {
						cfg := cluster.DefaultConfig(nodes)
						cfg.Seed = seed
						cfg.Shards = m.shards
						cfg.Fabric = fb.cfg
						cfg.Link = fb.cfg.Links
						var tl func() []tlRec
						rep, err := workload.RunWith(cfg, workload.Spec{
							Pattern:  pat,
							Messages: 60,
							MeanSize: 2048,
							MeanGap:  5 * sim.Microsecond,
						}, func(c *cluster.Cluster) { tl = recordTimelines(c) })
						if err != nil {
							t.Fatalf("seed %d %s: %v", seed, m.name, err)
						}
						if mi == 0 {
							baseTL, baseRep = tl(), rep
							if len(baseTL) == 0 {
								t.Fatalf("seed %d: baseline fired no events", seed)
							}
							continue
						}
						diffTimelines(t, fmt.Sprintf("seed %d %s", seed, m.name), baseTL, tl())
						if rep != baseRep {
							t.Errorf("seed %d %s: report %+v != baseline %+v", seed, m.name, rep, baseRep)
						}
					}
				}
			})
		}
	}
}

// TestEngineEquivalenceChurn covers the remaining registered pattern:
// Churn rides the membership subsystem (group schedule, two-phase epoch
// rolls) rather than the point-to-point runner, and its Result carries
// the full delivery and epoch ground truth — all of it must match.
func TestEngineEquivalenceChurn(t *testing.T) {
	const nodes = 12
	for _, fb := range fabrics {
		fb := fb
		t.Run(fb.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3} {
				var baseTL []tlRec
				var base *member.Result
				for mi, m := range modes {
					plan, err := workload.GenerateChurn(workload.ChurnSpec{
						Nodes:        nodes,
						Transitions:  4,
						Msgs:         10,
						MeanSize:     1024,
						MeanGap:      15 * sim.Microsecond,
						MeanChurnGap: 60 * sim.Microsecond,
					}, sim.NewRNG(seed))
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					c := cluster.New(nodes, cluster.WithSeed(seed),
						cluster.WithShards(m.shards), cluster.WithFabric(fb.cfg))
					tl := recordTimelines(c)
					res := member.Run(c, member.Config{}, plan)
					if vs := res.Verify(); len(vs) != 0 {
						t.Fatalf("seed %d %s: churn run violated invariants: %v", seed, m.name, vs)
					}
					if mi == 0 {
						baseTL, base = tl(), res
						continue
					}
					diffTimelines(t, fmt.Sprintf("seed %d %s", seed, m.name), baseTL, tl())
					if res.Finish != base.Finish {
						t.Errorf("seed %d %s: finish %v != baseline %v", seed, m.name, res.Finish, base.Finish)
					}
					if !reflect.DeepEqual(res.Epochs, base.Epochs) {
						t.Errorf("seed %d %s: epoch ground truth diverged", seed, m.name)
					}
					if !reflect.DeepEqual(res.Deliveries, base.Deliveries) {
						t.Errorf("seed %d %s: delivery sequences diverged", seed, m.name)
					}
					if !reflect.DeepEqual(res.SendEpoch, base.SendEpoch) {
						t.Errorf("seed %d %s: send-epoch stamps diverged", seed, m.name)
					}
				}
			}
		})
	}
}
