package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestGenerateValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(Spec{Nodes: 1, Messages: 5}, rng); err == nil {
		t.Error("single-node workload accepted")
	}
	if _, err := Generate(Spec{Nodes: 4, Messages: 0}, rng); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Generate(Spec{Nodes: 4, Messages: 5, Pattern: "bogus"}, rng); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := Generate(Spec{Nodes: 4, Messages: 5, Pattern: Uniform, Sizes: "bogus"}, rng); err == nil {
		t.Error("unknown size distribution accepted")
	}
}

func TestGenerateNeverSelfSends(t *testing.T) {
	for _, pat := range Patterns() {
		if pat == Churn {
			continue // group schedule, not point-to-point: see churn_test.go
		}
		msgs, err := Generate(Spec{Nodes: 5, Messages: 500, Pattern: pat, MeanSize: 64}, sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if m.Src == m.Dst {
				t.Fatalf("pattern %s produced a self-send", pat)
			}
			if m.Src < 0 || m.Src >= 5 || m.Dst < 0 || m.Dst >= 5 {
				t.Fatalf("pattern %s out of range: %+v", pat, m)
			}
		}
	}
}

func TestHotspotConcentratesTraffic(t *testing.T) {
	msgs, err := Generate(Spec{Nodes: 8, Messages: 2000, Pattern: Hotspot, MeanSize: 16}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	tot := Summarize(msgs)
	if frac := float64(tot.PerDst[0]) / float64(tot.Messages); frac < 0.5 {
		t.Fatalf("hotspot node got only %.0f%% of traffic", frac*100)
	}
}

func TestPermutationIsOneToOne(t *testing.T) {
	msgs, err := Generate(Spec{Nodes: 6, Messages: 600, Pattern: Permutation, MeanSize: 16}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	dstOf := map[int]int{}
	for _, m := range msgs {
		if prev, ok := dstOf[m.Src]; ok && prev != m.Dst {
			t.Fatalf("source %d sent to both %d and %d", m.Src, prev, m.Dst)
		}
		dstOf[m.Src] = m.Dst
	}
}

func TestBimodalSizes(t *testing.T) {
	msgs, err := Generate(Spec{Nodes: 4, Messages: 1000, Pattern: Uniform,
		MeanSize: 1024, Sizes: Bimodal}, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for _, m := range msgs {
		switch m.Size {
		case 256:
			small++
		case 16384:
			large++
		default:
			t.Fatalf("unexpected bimodal size %d", m.Size)
		}
	}
	if small < large {
		t.Fatalf("bimodal mix inverted: %d small, %d large", small, large)
	}
}

func TestInjectionTimesAdvancePerSource(t *testing.T) {
	msgs, err := Generate(Spec{Nodes: 3, Messages: 300, Pattern: Uniform,
		MeanSize: 16, MeanGap: 10 * sim.Microsecond}, sim.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]sim.Time{}
	for _, m := range msgs {
		if m.At < last[m.Src] {
			t.Fatal("injection times went backwards for a source")
		}
		last[m.Src] = m.At
	}
}

// Property: generation is deterministic per seed and every message is
// well-formed.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, patPick, sizePick uint8, count uint8) bool {
		pats := []Pattern{Uniform, Permutation, Hotspot, Neighbor} // Churn: churn_test.go
		sizes := []SizeDist{Fixed, Bimodal, UniformSize}
		spec := Spec{
			Nodes:    6,
			Messages: int(count)%64 + 1,
			Pattern:  pats[int(patPick)%len(pats)],
			MeanSize: 512,
			Sizes:    sizes[int(sizePick)%len(sizes)],
			MeanGap:  5 * sim.Microsecond,
		}
		a, err1 := Generate(spec, sim.NewRNG(seed))
		b, err2 := Generate(spec, sim.NewRNG(seed))
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i].Size <= 0 || a[i].Src == a[i].Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUniformWorkload(t *testing.T) {
	cfg := cluster.DefaultConfig(8)
	rep, err := Run(cfg, Spec{Pattern: Uniform, Messages: 200, MeanSize: 1024,
		MeanGap: 5 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != 200 {
		t.Fatalf("report counts %d messages", rep.Messages)
	}
	if rep.MeanLatencyUs <= 0 || rep.MaxLatencyUs < rep.MeanLatencyUs {
		t.Fatalf("implausible latencies: mean %.1f max %.1f", rep.MeanLatencyUs, rep.MaxLatencyUs)
	}
	if rep.ThroughMB <= 0 {
		t.Fatal("no throughput reported")
	}
	if rep.Retransmits != 0 {
		t.Fatalf("lossless uniform run retransmitted %d times", rep.Retransmits)
	}
}

func TestRunHotspotCongestsVsUniform(t *testing.T) {
	base := Spec{Messages: 400, MeanSize: 4096, MeanGap: 2 * sim.Microsecond}
	uni := base
	uni.Pattern = Uniform
	hot := base
	hot.Pattern = Hotspot
	ru, err := Run(cluster.DefaultConfig(8), uni)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(cluster.DefaultConfig(8), hot)
	if err != nil {
		t.Fatal(err)
	}
	if rh.MeanLatencyUs <= ru.MeanLatencyUs {
		t.Fatalf("hotspot latency %.1fus not above uniform %.1fus — no contention modeled",
			rh.MeanLatencyUs, ru.MeanLatencyUs)
	}
}

func TestRunUnderLossRecovers(t *testing.T) {
	cfg := cluster.DefaultConfig(6)
	cfg.LossRate = 0.02
	cfg.Seed = 9
	rep, err := Run(cfg, Spec{Pattern: Neighbor, Messages: 150, MeanSize: 2048,
		MeanGap: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retransmits == 0 {
		t.Fatal("lossy workload completed without retransmissions")
	}
}
