package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGenerateChurnValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := GenerateChurn(ChurnSpec{Nodes: 2, Transitions: 4, Msgs: 4}, rng); err == nil {
		t.Error("two-node churn accepted (no non-root member can survive a leave)")
	}
	if _, err := GenerateChurn(ChurnSpec{Nodes: 6, Transitions: -1, Msgs: 4}, rng); err == nil {
		t.Error("negative transition count accepted")
	}
	if _, err := GenerateChurn(ChurnSpec{Nodes: 6, Transitions: 4, Msgs: 0}, rng); err == nil {
		t.Error("empty churn workload accepted")
	}
	if _, err := Generate(Spec{Nodes: 6, Messages: 4, Pattern: Churn}, rng); err == nil {
		t.Error("Generate accepted the churn pattern; it must direct callers to GenerateChurn")
	}
}

// replay walks a plan's schedule and reports the non-root member count
// after each event, failing on malformed transitions.
func replay(t *testing.T, plan ChurnPlan, nodes int) {
	t.Helper()
	in := make(map[int]bool, nodes)
	for _, m := range plan.Initial {
		if m <= 0 || m >= nodes {
			t.Fatalf("initial member %d out of range", m)
		}
		if in[m] {
			t.Fatalf("initial member %d duplicated", m)
		}
		in[m] = true
	}
	members := len(plan.Initial)
	if members == 0 {
		t.Fatal("plan starts with an empty group")
	}
	var clock sim.Time
	for i, e := range plan.Events {
		if e.Node <= 0 || e.Node >= nodes {
			t.Fatalf("event %d references node %d (root or out of range)", i, e.Node)
		}
		if e.At < clock {
			t.Fatalf("event %d time went backwards", i)
		}
		clock = e.At
		if e.Join == in[e.Node] {
			t.Fatalf("event %d: node %d %v but already in that state", i, e.Node, e.Join)
		}
		in[e.Node] = e.Join
		if e.Join {
			members++
		} else {
			members--
		}
		if members < 1 {
			t.Fatalf("event %d left the group with no non-root members", i)
		}
	}
}

// Property (the ISSUE's satellite): the join/leave schedule is
// deterministic per seed and never leaves the group empty while traffic
// is pending — in fact never empty at all, which is stronger and easier
// to rely on.
func TestChurnScheduleProperty(t *testing.T) {
	f := func(seed int64, transitions, msgs uint8) bool {
		spec := ChurnSpec{
			Nodes:       7,
			Transitions: int(transitions)%24 + 1,
			Msgs:        int(msgs)%16 + 1,
			MeanSize:    512,
		}
		a, err1 := GenerateChurn(spec, sim.NewRNG(seed))
		b, err2 := GenerateChurn(spec, sim.NewRNG(seed))
		if err1 != nil || err2 != nil {
			return false
		}
		// Byte-for-byte determinism across generations with the same seed.
		if a.Root != b.Root || len(a.Initial) != len(b.Initial) ||
			len(a.Events) != len(b.Events) || len(a.Sends) != len(b.Sends) {
			return false
		}
		for i := range a.Initial {
			if a.Initial[i] != b.Initial[i] {
				return false
			}
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				return false
			}
		}
		for i := range a.Sends {
			if a.Sends[i] != b.Sends[i] {
				return false
			}
		}
		if len(a.Events) != spec.Transitions {
			return false
		}
		for _, m := range a.Sends {
			if m.Src != a.Root || m.Dst != GroupDst || m.Size <= 0 {
				return false
			}
		}
		replay(t, a, spec.Nodes)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// A schedule drawn to leave the last member must convert to a join, and
// the event count stays exactly as requested.
func TestChurnNeverEmptiesMinimalGroup(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		plan, err := GenerateChurn(ChurnSpec{
			Nodes: 3, Transitions: 12, Msgs: 3, InitialMembers: 1,
		}, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Events) != 12 {
			t.Fatalf("seed %d: %d events, want 12", seed, len(plan.Events))
		}
		replay(t, plan, 3)
	}
}
