package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Report is the outcome of running a workload on a cluster.
type Report struct {
	Messages  int
	Bytes     int
	Elapsed   sim.Time
	ThroughMB float64 // aggregate goodput in MB/s of virtual time
	// MeanLatencyUs is the mean message latency (injection to host
	// delivery) in microseconds.
	MeanLatencyUs float64
	MaxLatencyUs  float64
	Retransmits   uint64
	RxNoBuffer    uint64
	MaxCPUUtil    float64 // busiest NIC processor utilization
}

// Run drives the workload on a fresh cluster built from cfg and reports
// aggregate behaviour. An optional background broadcast group can be
// layered on by the caller before invoking Run via the returned cluster —
// here we keep it to point-to-point traffic.
func Run(cfg *cluster.Config, spec Spec) (Report, error) {
	return RunWith(cfg, spec, nil)
}

// RunWith is Run with a callback invoked after the cluster is built and
// before any process spawns or event fires — engine-equivalence tests
// attach fire hooks here; nil behaves exactly like Run.
func RunWith(cfg *cluster.Config, spec Spec, attach func(*cluster.Cluster)) (Report, error) {
	spec.Nodes = cfg.Nodes
	c := cluster.NewFromConfig(cfg)
	if attach != nil {
		attach(c)
	}
	msgs, err := Generate(spec, c.RNG)
	if err != nil {
		return Report{}, err
	}
	ports := c.OpenPorts(1)

	// Count per-destination expectations and pre-post tokens. Sinks run on
	// their own node's engine, so each destination accumulates latencies in
	// its own slice (a shared append would race on a sharded cluster) and
	// the slices fold in node order after the run.
	tot := Summarize(msgs)
	perDst := make([][]sim.Time, cfg.Nodes)
	for d, n := range tot.PerDst {
		d, n := d, n
		c.SpawnOn(fabric.NodeID(d), "sink", func(p *sim.Proc) {
			ports[d].ProvideN(n, 64*1024)
			for i := 0; i < n; i++ {
				ev := ports[d].Recv(p)
				// The first 8 payload bytes carry the injection time.
				if len(ev.Data) >= 8 {
					t0 := sim.Time(0)
					for b := 7; b >= 0; b-- {
						t0 = t0<<8 | sim.Time(ev.Data[b])
					}
					perDst[d] = append(perDst[d], p.Now()-t0)
				}
			}
		})
	}
	// One source process per node replays its injection schedule.
	perSrc := make(map[int][]Message)
	for _, m := range msgs {
		perSrc[m.Src] = append(perSrc[m.Src], m)
	}
	for s, list := range perSrc {
		s, list := s, list
		c.SpawnOn(fabric.NodeID(s), "src", func(p *sim.Proc) {
			for _, m := range list {
				if m.At > p.Now() {
					p.Sleep(m.At - p.Now())
				}
				size := m.Size
				if size < 8 {
					size = 8
				}
				buf := make([]byte, size)
				t0 := p.Now()
				for b := 0; b < 8; b++ {
					buf[b] = byte(t0 >> (8 * b))
				}
				ports[s].Send(p, fabric.NodeID(m.Dst), 1, buf)
			}
			for range list {
				ports[s].WaitSendDone(p)
			}
		})
	}
	c.Run()
	if live := c.LiveProcs(); live != 0 {
		c.Kill()
		return Report{}, fmt.Errorf("workload: stalled with %d live processes", live)
	}
	c.Kill()

	end := c.Now()
	rep := Report{
		Messages: tot.Messages,
		Bytes:    tot.Bytes,
		Elapsed:  end,
	}
	if end > 0 {
		rep.ThroughMB = float64(tot.Bytes) / end.Micros()
	}
	var sum, worst sim.Time
	count := 0
	for _, ls := range perDst {
		for _, l := range ls {
			sum += l
			count++
			if l > worst {
				worst = l
			}
		}
	}
	if count > 0 {
		rep.MeanLatencyUs = sum.Micros() / float64(count)
		rep.MaxLatencyUs = worst.Micros()
	}
	for _, n := range c.Nodes {
		rep.Retransmits += n.NIC.Stats().Retransmits
		rep.RxNoBuffer += n.HW.Stats().RxNoBuffer
		if u := n.HW.CPU.Utilization(); u > rep.MaxCPUUtil {
			rep.MaxCPUUtil = u
		}
	}
	return rep, nil
}
