package workload

import (
	"fmt"

	"repro/internal/sim"
)

// GroupDst marks a Message as a multicast to the current group membership
// rather than a point-to-point transfer.
const GroupDst = -1

// ChurnSpec configures a churn workload: multicast traffic from a fixed
// root interleaved with a deterministic join/leave schedule.
type ChurnSpec struct {
	Nodes int
	// Transitions is the number of join/leave events to schedule.
	Transitions int
	// Msgs multicasts of ~MeanSize bytes are posted by the root.
	Msgs     int
	MeanSize int
	Sizes    SizeDist
	// MeanGap spaces the multicasts; MeanChurnGap spaces the membership
	// events. Both draw uniformly from [0, 2*mean).
	MeanGap      sim.Time
	MeanChurnGap sim.Time
	// InitialMembers is the number of non-root members at start
	// (default: half the non-root nodes, at least one).
	InitialMembers int
}

// ChurnEvent is one membership transition request: node asks to join
// (Join true) or leave the group at time At.
type ChurnEvent struct {
	Node int
	Join bool
	At   sim.Time
}

// ChurnPlan is a generated churn workload: the initial membership, the
// transition schedule, and the multicast sends (Src is always the root,
// Dst always GroupDst). The plan is a pure function of (spec, rng seed).
type ChurnPlan struct {
	Root    int
	Initial []int // initial non-root members, ascending
	Events  []ChurnEvent
	Sends   []Message
}

// LastAt reports the latest time in the plan (send or event).
func (p ChurnPlan) LastAt() sim.Time {
	var last sim.Time
	for _, m := range p.Sends {
		if m.At > last {
			last = m.At
		}
	}
	for _, e := range p.Events {
		if e.At > last {
			last = e.At
		}
	}
	return last
}

// GenerateChurn produces a churn plan deterministically from the RNG. The
// root (node 0) never leaves, and the schedule never empties the group of
// non-root members — a multicast must always have someone to deliver to
// while traffic is pending. Events reference nodes 1..Nodes-1; a drawn
// leave that would empty the group becomes a join of a non-member, and
// vice versa when everyone is already a member.
func GenerateChurn(spec ChurnSpec, rng *sim.RNG) (ChurnPlan, error) {
	if spec.Nodes < 3 {
		return ChurnPlan{}, fmt.Errorf("workload: churn needs at least 3 nodes, have %d", spec.Nodes)
	}
	if spec.Transitions < 0 {
		return ChurnPlan{}, fmt.Errorf("workload: negative transition count %d", spec.Transitions)
	}
	if spec.Msgs <= 0 {
		return ChurnPlan{}, fmt.Errorf("workload: nonpositive message count %d", spec.Msgs)
	}
	if spec.MeanSize <= 0 {
		spec.MeanSize = 1024
	}
	if spec.Sizes == "" {
		spec.Sizes = Fixed
	}
	if spec.MeanGap <= 0 {
		spec.MeanGap = 20 * sim.Microsecond
	}
	if spec.MeanChurnGap <= 0 {
		spec.MeanChurnGap = 100 * sim.Microsecond
	}
	initial := spec.InitialMembers
	if initial <= 0 {
		initial = (spec.Nodes - 1) / 2
	}
	if initial < 1 {
		initial = 1
	}
	if initial > spec.Nodes-1 {
		initial = spec.Nodes - 1
	}

	plan := ChurnPlan{Root: 0}
	in := make(map[int]bool, spec.Nodes)
	// Initial membership: a deterministic random subset of the non-root
	// nodes, ascending for a canonical representation.
	for _, i := range rng.Perm(spec.Nodes - 1)[:initial] {
		in[i+1] = true
	}
	for n := 1; n < spec.Nodes; n++ {
		if in[n] {
			plan.Initial = append(plan.Initial, n)
		}
	}

	members := initial
	var clock sim.Time
	for i := 0; i < spec.Transitions; i++ {
		clock += rng.Duration(2 * spec.MeanChurnGap)
		n := 1 + rng.Intn(spec.Nodes-1)
		join := !in[n]
		if !join && members == 1 {
			// Leaving would empty the group while traffic may be pending:
			// convert to a join of the lowest-ID non-member.
			for m := 1; m < spec.Nodes; m++ {
				if !in[m] {
					n, join = m, true
					break
				}
			}
		}
		in[n] = !in[n]
		if join {
			members++
		} else {
			members--
		}
		plan.Events = append(plan.Events, ChurnEvent{Node: n, Join: join, At: clock})
	}

	var sendClock sim.Time
	for i := 0; i < spec.Msgs; i++ {
		var size int
		switch spec.Sizes {
		case Fixed:
			size = spec.MeanSize
		case Bimodal:
			if rng.Float64() < 0.9 {
				size = maxInt(1, spec.MeanSize/4)
			} else {
				size = spec.MeanSize * 16
			}
		case UniformSize:
			size = 1 + rng.Intn(2*spec.MeanSize)
		default:
			return ChurnPlan{}, fmt.Errorf("workload: unknown size distribution %q", spec.Sizes)
		}
		sendClock += rng.Duration(2 * spec.MeanGap)
		plan.Sends = append(plan.Sends, Message{Src: plan.Root, Dst: GroupDst, Size: size, At: sendClock})
	}
	return plan, nil
}
