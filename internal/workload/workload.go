// Package workload generates synthetic traffic patterns for driving the
// simulated cluster: the classical HPC communication patterns (uniform
// random, permutation, hotspot, nearest-neighbor halo, broadcast storm)
// plus message-size distributions. The benchmark harness reproduces the
// paper's microbenchmarks; this package exists for whole-fabric studies
// (cmd/gmsim) — utilization, contention, and the multicast schemes under
// background load.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Message is one point-to-point transfer the generator asks for.
type Message struct {
	Src, Dst int
	Size     int
	// At is the injection time offset from the workload's start.
	At sim.Time
}

// Pattern names a traffic pattern.
type Pattern string

const (
	// Uniform sends each message between a uniformly random pair.
	Uniform Pattern = "uniform"
	// Permutation fixes a random one-to-one mapping src->dst.
	Permutation Pattern = "permutation"
	// Hotspot directs most traffic at one node.
	Hotspot Pattern = "hotspot"
	// Neighbor sends to (rank+1) mod n — a 1-D halo exchange.
	Neighbor Pattern = "neighbor"
	// Churn interleaves multicast traffic from a fixed root with a
	// deterministic join/leave schedule — the dynamic-membership workload.
	// Generated via GenerateChurn (it needs a group schedule, not a
	// point-to-point message list).
	Churn Pattern = "churn"
)

// Patterns lists the supported patterns.
func Patterns() []Pattern { return []Pattern{Uniform, Permutation, Hotspot, Neighbor, Churn} }

// SizeDist names a message-size distribution.
type SizeDist string

const (
	// Fixed uses MeanSize for every message.
	Fixed SizeDist = "fixed"
	// Bimodal mixes small control messages with large bulk ones, the
	// classic HPC mix (90% small, 10% large around 16x the mean).
	Bimodal SizeDist = "bimodal"
	// UniformSize draws uniformly from [1, 2*MeanSize).
	UniformSize SizeDist = "uniformsize"
)

// Spec configures a workload.
type Spec struct {
	Nodes    int
	Pattern  Pattern
	Messages int
	// MeanSize is the target mean message size in bytes.
	MeanSize int
	Sizes    SizeDist
	// MeanGap is the mean inter-injection gap per source; injections are
	// spread uniformly in [0, 2*MeanGap).
	MeanGap sim.Time
	// HotFraction (Hotspot only) is the fraction of traffic aimed at
	// node 0; the rest is uniform. Defaults to 0.8 when zero.
	HotFraction float64
}

// Generate produces the message list for a spec, deterministically from
// the RNG.
func Generate(spec Spec, rng *sim.RNG) ([]Message, error) {
	if spec.Nodes < 2 {
		return nil, fmt.Errorf("workload: need at least 2 nodes, have %d", spec.Nodes)
	}
	if spec.Messages <= 0 {
		return nil, fmt.Errorf("workload: nonpositive message count %d", spec.Messages)
	}
	if spec.MeanSize <= 0 {
		spec.MeanSize = 1024
	}
	if spec.Sizes == "" {
		spec.Sizes = Fixed
	}
	hot := spec.HotFraction
	if hot == 0 {
		hot = 0.8
	}

	if spec.Pattern == Churn {
		return nil, fmt.Errorf("workload: pattern %q produces a group schedule, use GenerateChurn", Churn)
	}

	var perm []int
	if spec.Pattern == Permutation {
		perm = derangement(spec.Nodes, rng)
	}

	clock := make([]sim.Time, spec.Nodes)
	msgs := make([]Message, 0, spec.Messages)
	for i := 0; i < spec.Messages; i++ {
		src := rng.Intn(spec.Nodes)
		var dst int
		switch spec.Pattern {
		case Uniform:
			dst = otherThan(src, spec.Nodes, rng)
		case Permutation:
			dst = perm[src]
		case Hotspot:
			if src != 0 && rng.Float64() < hot {
				dst = 0
			} else {
				dst = otherThan(src, spec.Nodes, rng)
			}
		case Neighbor:
			dst = (src + 1) % spec.Nodes
		default:
			return nil, fmt.Errorf("workload: unknown pattern %q", spec.Pattern)
		}

		var size int
		switch spec.Sizes {
		case Fixed:
			size = spec.MeanSize
		case Bimodal:
			if rng.Float64() < 0.9 {
				size = maxInt(1, spec.MeanSize/4)
			} else {
				size = spec.MeanSize * 16
			}
		case UniformSize:
			size = 1 + rng.Intn(2*spec.MeanSize)
		default:
			return nil, fmt.Errorf("workload: unknown size distribution %q", spec.Sizes)
		}

		if spec.MeanGap > 0 {
			clock[src] += rng.Duration(2 * spec.MeanGap)
		}
		msgs = append(msgs, Message{Src: src, Dst: dst, Size: size, At: clock[src]})
	}
	return msgs, nil
}

// otherThan draws a uniform destination different from src.
func otherThan(src, n int, rng *sim.RNG) int {
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// derangement returns a random permutation with no fixed points, so a
// permutation pattern never asks a node to send to itself.
func derangement(n int, rng *sim.RNG) []int {
	for {
		p := rng.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Totals summarizes a generated workload.
type Totals struct {
	Messages int
	Bytes    int
	PerDst   map[int]int
}

// Summarize tallies a message list.
func Summarize(msgs []Message) Totals {
	t := Totals{PerDst: make(map[int]int)}
	for _, m := range msgs {
		t.Messages++
		t.Bytes += m.Size
		t.PerDst[m.Dst]++
	}
	return t
}
