package fabric

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// LinkParams are the physical characteristics of every link in a fabric.
// Myrinet-2000 defaults: 2 Gb/s (4 ns per byte) and a few hundred
// nanoseconds of combined cable and crossbar routing delay per hop.
type LinkParams struct {
	// Latency is the per-hop head latency: propagation plus the switch's
	// wormhole routing decision.
	Latency sim.Time
	// NsPerByte is the serialization cost; 4.0 models 2 Gb/s Myrinet-2000.
	NsPerByte float64

	// PauseBytes and ResumeBytes enable PFC-style link-level backpressure
	// when PauseBytes > 0: a sender whose link already has PauseBytes of
	// traffic reserved-but-undrained parks instead of queueing deeper, and
	// parked senders wake (in FIFO order) once the backlog drains to
	// ResumeBytes. The hysteresis models a lossless fabric's PAUSE/resume
	// thresholds: buffers stay bounded and loss comes only from injected
	// faults, never congestion. Zero (the Myrinet default) disables the
	// mechanism entirely — the hot path takes no extra branches or
	// allocations.
	PauseBytes  int
	ResumeBytes int
}

// DefaultLinkParams returns Myrinet-2000-like link characteristics.
func DefaultLinkParams() LinkParams {
	return LinkParams{Latency: 300 * sim.Nanosecond, NsPerByte: 4.0}
}

// SerializationTime reports how long a packet of the given size occupies
// a link.
func (lp LinkParams) SerializationTime(size int) sim.Time {
	return sim.PerByte(lp.NsPerByte, size)
}

// Vertex is a point in the fabric graph: either a host attachment or a
// switch. Every vertex is an event domain (sim tiebreak-key namespace,
// domain = idx+1) and belongs to exactly one shard — the engine that fires
// every event happening "at" the vertex. Topology builders obtain vertices
// from AddSwitch/AddHost; the fields stay private to the fabric.
type Vertex struct {
	idx    int
	host   bool
	hostID NodeID
	label  string
	out    []*Link
	domain uint32
	shard  int
}

// Label reports the vertex's diagnostic name ("host3", "xbar0", ...).
func (v *Vertex) Label() string { return v.label }

// Link is a directed physical channel between two vertices. Each link is a
// FIFO resource: one packet serializes onto it at a time.
type Link struct {
	from, to *Vertex
	fac      *sim.Facility
	params   LinkParams
	// Drops counts packets lost on this link (fault injection).
	Drops uint64

	// PFC backpressure state, live only when params.PauseBytes > 0. All of
	// it is touched exclusively by events on the from-vertex's shard, so
	// sharded runs need no locks. queued counts bytes reserved on the link
	// whose drain event has not yet fired; inflight is the FIFO of those
	// reservation sizes (head index qHead avoids shifting); waiters are the
	// parked transits in arrival order; drainFn is the pre-bound drain
	// callback so steady-state flow control allocates nothing per packet.
	queued   int
	inflight []int
	qHead    int
	waiters  []*transit
	drainFn  func()

	// Cached metric instruments, set by Network.SetMetrics; nil (no-op)
	// until then or when metrics are disabled.
	mTxBytes   *metrics.Counter
	mStallNs   *metrics.Counter
	mContended *metrics.Counter
	mDrops     *metrics.Counter
	mPauses    *metrics.Counter
	mPauseNs   *metrics.Counter
}

// String labels the link for diagnostics.
func (l *Link) String() string { return fmt.Sprintf("%s->%s", l.from.label, l.to.label) }

// FromLabel and ToLabel name the link's endpoints ("host3", "xbar0", ...),
// letting fault injection target a specific link or switch by name.
func (l *Link) FromLabel() string { return l.from.label }
func (l *Link) ToLabel() string   { return l.to.label }

// FromHost reports the host attached at the link's source, if any — true
// exactly for a host's uplink into the fabric.
func (l *Link) FromHost() (NodeID, bool) {
	if l.from.host {
		return l.from.hostID, true
	}
	return 0, false
}

// ToHost reports the host attached at the link's destination, if any —
// true exactly for a host's downlink out of the fabric.
func (l *Link) ToHost() (NodeID, bool) {
	if l.to.host {
		return l.to.hostID, true
	}
	return 0, false
}

// Touches reports whether the link attaches directly to the given host
// (either direction).
func (l *Link) Touches(id NodeID) bool {
	return (l.from.host && l.from.hostID == id) || (l.to.host && l.to.hostID == id)
}

// BusyTime reports cumulative serialization time spent on the link.
func (l *Link) BusyTime() sim.Time { return l.fac.BusyTime() }

// QueuedBytes reports the bytes currently reserved-but-undrained on the
// link under PFC backpressure (always 0 when PauseBytes is unset).
func (l *Link) QueuedBytes() int { return l.queued }
