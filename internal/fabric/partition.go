package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Plan is a deterministic assignment of fabric vertices to shards, plus the
// conservative-synchronization lookahead the assignment admits: the minimum
// latency of any link whose endpoints land in different shards. Every event
// of a vertex fires on its shard's engine, so a packet handoff across a cut
// link is the only cross-shard interaction — and it cannot take effect
// sooner than Lookahead after it is sent, which is exactly the window width
// a conservative parallel run may execute without synchronizing.
type Plan struct {
	Shards int
	// Lookahead is the minimum cut-link latency (the fabric's uniform link
	// latency in practice, since every link shares LinkParams).
	Lookahead sim.Time
	// VertexShard maps vertex index -> shard; HostShard maps host NodeID ->
	// shard (a convenience view of the same assignment).
	VertexShard []int
	HostShard   []int
	// CutLinks counts directed links crossing shards — the quantity the
	// partitioning heuristic minimizes.
	CutLinks int
}

// Partition assigns the fabric's vertices to the given number of shards
// with a deterministic min-cut-flavored heuristic:
//
//   - Hosts are split into contiguous balanced blocks (shard =
//     host*shards/hosts). Topology builders lay hosts out so that
//     consecutive IDs share a leaf switch (and, in the fat tree, a pod), so
//     contiguous blocks keep the short host<->leaf links interior.
//   - Each switch then joins the shard it has the most links to, counting
//     only already-assigned neighbors, processed in BFS-from-hosts order so
//     leaves commit before spines. Ties rotate by vertex index, spreading
//     equally-pulled spine switches across shards instead of piling them
//     onto shard 0.
//
// The request is clamped to [1, hosts]: more shards than hosts would leave
// empty engines (the shard-count-exceeds-nodes edge case degenerates to one
// host per shard).
//
// The heuristic is topology-agnostic: it sees only the vertex/link graph,
// so any backend built through the fabric builder API shards the same way.
func (n *Network) Partition(shards int) Plan {
	if shards < 1 {
		shards = 1
	}
	if h := len(n.hosts); shards > h {
		shards = h
	}
	plan := Plan{
		Shards:      shards,
		VertexShard: make([]int, len(n.verts)),
		HostShard:   make([]int, len(n.hosts)),
	}
	assigned := make([]bool, len(n.verts))
	var frontier []*Vertex
	for i := range n.hosts {
		s := i * shards / len(n.hosts)
		plan.HostShard[i] = s
		hv := n.hosts[i].up.from
		plan.VertexShard[hv.idx] = s
		assigned[hv.idx] = true
		frontier = append(frontier, hv)
	}

	// BFS from the hosts so each switch is placed after the neighbors that
	// anchor it; weight[s] counts links into already-assigned members of s.
	weight := make([]int, shards)
	for len(frontier) > 0 {
		var next []*Vertex
		for _, v := range frontier {
			for _, l := range v.out {
				w := l.to
				if assigned[w.idx] {
					continue
				}
				for s := range weight {
					weight[s] = 0
				}
				for _, wl := range w.out {
					if assigned[wl.to.idx] {
						weight[plan.VertexShard[wl.to.idx]]++
					}
				}
				best := 0
				var ties []int
				for s, cnt := range weight {
					if cnt > best {
						best = cnt
						ties = ties[:0]
					}
					if cnt == best {
						ties = append(ties, s)
					}
				}
				plan.VertexShard[w.idx] = ties[w.idx%len(ties)]
				assigned[w.idx] = true
				next = append(next, w)
			}
		}
		frontier = next
	}
	// Disconnected leftovers (none in the standard topologies) go to 0.

	for _, l := range n.links {
		if plan.VertexShard[l.from.idx] != plan.VertexShard[l.to.idx] {
			plan.CutLinks++
			if plan.Lookahead == 0 || l.params.Latency < plan.Lookahead {
				plan.Lookahead = l.params.Latency
			}
		}
	}
	if plan.Lookahead == 0 {
		// No cut links (single shard): any positive window works; one link
		// latency keeps window sizing uniform with the multi-shard case.
		plan.Lookahead = n.params.Latency
	}
	return plan
}

// ApplyPlan binds the fabric to one engine per shard: every link facility
// moves to the engine firing its reservations (the shard of the link's
// source vertex), and per-shard transit pools, route caches, and cross-
// shard mailboxes replace the single-engine ones. engines[0] must be the
// engine the network was built on; ApplyPlan must run before any traffic.
// Each engine is grown to the fabric's domain space so tiebreak keys agree
// with a serial run no matter where an event fires.
func (n *Network) ApplyPlan(plan Plan, engines []*sim.Engine) {
	if len(engines) != plan.Shards {
		panic(fmt.Sprintf("fabric: plan wants %d shards, got %d engines", plan.Shards, len(engines)))
	}
	if engines[0] != n.eng {
		panic("fabric: ApplyPlan engines[0] must be the construction engine")
	}
	if len(plan.VertexShard) != len(n.verts) {
		panic("fabric: plan does not match this fabric")
	}
	for _, v := range n.verts {
		v.shard = plan.VertexShard[v.idx]
	}
	for _, e := range engines {
		e.GrowDomains(len(n.verts))
	}
	for _, l := range n.links {
		if s := l.from.shard; s != 0 {
			l.fac.Rebind(engines[s])
		}
	}
	n.shards = plan.Shards
	n.lookahead = plan.Lookahead
	n.sh = make([]shardState, plan.Shards)
	for s := range n.sh {
		n.sh[s].id = s
		n.sh[s].eng = engines[s]
		n.sh[s].routeCache = make(map[[2]NodeID][]*Link)
		n.sh[s].out = make([][]crossMsg, plan.Shards)
	}
}

// HostDomain reports the tiebreak-key domain of a host's fabric vertex —
// the domain every event "on" that node (NIC firmware, host processes)
// should be owned by, so keys stay shard-stable.
func (n *Network) HostDomain(id NodeID) uint32 { return n.hosts[id].up.from.domain }

// HostShard reports the shard a host's vertex is assigned to (0 before any
// ApplyPlan).
func (n *Network) HostShard(id NodeID) int { return n.hosts[id].up.from.shard }

// Shards reports how many shards the fabric is partitioned into (1 before
// ApplyPlan).
func (n *Network) Shards() int { return n.shards }

// LinkNow reports the virtual time at the given link — the clock of the
// engine that fires the link's traversal events. Fault-injection hooks
// (DropFn and friends) run inside those events and must read this clock,
// not some other shard's: within a synchronization window the shards'
// clocks legitimately differ.
func (n *Network) LinkNow(l *Link) sim.Time { return n.sh[l.from.shard].eng.Now() }

// Lookahead reports the partition's synchronization window width.
func (n *Network) Lookahead() sim.Time { return n.lookahead }
