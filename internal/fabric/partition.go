package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Plan is a deterministic assignment of fabric vertices to shards, plus the
// conservative-synchronization lookahead the assignment admits. Every event
// of a vertex fires on its shard's engine, so a packet handoff across a cut
// link is the only cross-shard interaction — and it cannot take effect
// sooner than that link's latency after it is sent, which is exactly the
// window width a conservative parallel run may execute without
// synchronizing.
type Plan struct {
	Shards int
	// Lookahead is the minimum cut-link latency over the whole partition —
	// the width of the old lockstep synchronization window, kept as the
	// conservative floor and for reporting.
	Lookahead sim.Time
	// PairLookahead[s][d] is the minimum latency of any cut link from a
	// shard-s vertex to a shard-d vertex, or 0 when no such link exists.
	// The adaptive coordinator turns it into per-shard window bounds
	// (sim.NewShardedMatrix), so a pair joined only by high-latency links —
	// or by no links at all — no longer drags every shard down to the
	// single global minimum.
	PairLookahead [][]sim.Time
	// VertexShard maps vertex index -> shard; HostShard maps host NodeID ->
	// shard (a convenience view of the same assignment).
	VertexShard []int
	HostShard   []int
	// CutLinks counts directed links crossing shards; CutLatency sums their
	// latencies — the quantity the lookahead-maximizing objective drives
	// up per link by preferring to cut slow links.
	CutLinks   int
	CutLatency sim.Time
}

// Objective selects what the partitioning heuristic optimizes when it
// assigns switches to shards.
type Objective int

const (
	// ObjectiveMaxLookahead (the default) places cuts on the
	// highest-latency links: each switch joins the shard it is attached to
	// by the largest total inverse link latency (fast links pull hardest),
	// so the links that do get cut are the slow ones — which directly
	// widens the per-pair conservative windows. Ties break toward the shard
	// with fewer vertices (balance), then rotate by vertex index. On a
	// fabric with uniform link latency the score is proportional to the
	// link count, so it degenerates to min-cut (modulo tie-breaking).
	ObjectiveMaxLookahead Objective = iota
	// ObjectiveMinCut is the original heuristic: each switch joins the
	// shard it has the most links to, minimizing the number of cut links
	// regardless of their latency. Kept as the fallback knob for
	// experiments comparing the two objectives.
	ObjectiveMinCut
)

// String names the objective for reports.
func (o Objective) String() string {
	if o == ObjectiveMinCut {
		return "mincut"
	}
	return "maxlookahead"
}

// Partition assigns the fabric's vertices to the given number of shards
// with the default lookahead-maximizing objective. See PartitionObjective.
func (n *Network) Partition(shards int) Plan {
	return n.PartitionObjective(shards, ObjectiveMaxLookahead)
}

// PartitionObjective assigns the fabric's vertices to the given number of
// shards with a deterministic greedy heuristic:
//
//   - Hosts are split into contiguous balanced blocks (shard =
//     host*shards/hosts). Topology builders lay hosts out so that
//     consecutive IDs share a leaf switch (and, in the fat tree, a pod), so
//     contiguous blocks keep the short host<->leaf links interior.
//   - Each switch then joins a shard scored over its already-assigned
//     neighbors, processed in BFS-from-hosts order so leaves commit before
//     spines. ObjectiveMaxLookahead scores by total inverse link latency
//     into the shard (the fast links pull hardest, so cuts land on the
//     slowest links, widening the conservative windows), tie-breaking by
//     shard balance then vertex-index rotation; ObjectiveMinCut scores by
//     link count with index rotation, the original behavior.
//
// The request is clamped to [1, hosts]: more shards than hosts would leave
// empty engines (the shard-count-exceeds-nodes edge case degenerates to one
// host per shard).
//
// The heuristic is topology-agnostic: it sees only the vertex/link graph,
// so any backend built through the fabric builder API shards the same way.
func (n *Network) PartitionObjective(shards int, obj Objective) Plan {
	if shards < 1 {
		shards = 1
	}
	if h := len(n.hosts); shards > h {
		shards = h
	}
	plan := Plan{
		Shards:      shards,
		VertexShard: make([]int, len(n.verts)),
		HostShard:   make([]int, len(n.hosts)),
	}
	assigned := make([]bool, len(n.verts))
	vcount := make([]int, shards) // vertices per shard, the balance tie-break
	var frontier []*Vertex
	for i := range n.hosts {
		s := i * shards / len(n.hosts)
		plan.HostShard[i] = s
		hv := n.hosts[i].up.from
		plan.VertexShard[hv.idx] = s
		assigned[hv.idx] = true
		vcount[s]++
		frontier = append(frontier, hv)
	}

	// BFS from the hosts so each switch is placed after the neighbors that
	// anchor it; weight[s] scores links into already-assigned members of s
	// (latency-weighted under ObjectiveMaxLookahead, counted under
	// ObjectiveMinCut).
	weight := make([]int64, shards)
	for len(frontier) > 0 {
		var next []*Vertex
		for _, v := range frontier {
			for _, l := range v.out {
				w := l.to
				if assigned[w.idx] {
					continue
				}
				for s := range weight {
					weight[s] = 0
				}
				for _, wl := range w.out {
					if assigned[wl.to.idx] {
						if obj == ObjectiveMaxLookahead {
							// Inverse-latency weight: joining the shard the
							// fast links lead to keeps them interior, so the
							// links that do get cut are the slow ones — which
							// is what widens the windows (lookahead is the
							// minimum latency among cut links). A zero-latency
							// link weighs ~2^40: it must never be cut, since
							// it would zero the lookahead.
							lat := int64(wl.params.Latency)
							if lat < 1 {
								lat = 1
							}
							weight[plan.VertexShard[wl.to.idx]] += (int64(1) << 40) / lat
						} else {
							weight[plan.VertexShard[wl.to.idx]]++
						}
					}
				}
				best := int64(0)
				var ties []int
				for s, sc := range weight {
					if sc > best {
						best = sc
						ties = ties[:0]
					}
					if sc == best {
						ties = append(ties, s)
					}
				}
				if obj == ObjectiveMaxLookahead && len(ties) > 1 {
					// Balance tie-break: keep only the least-loaded tied
					// shards, then rotate among those.
					minC := vcount[ties[0]]
					for _, s := range ties[1:] {
						if vcount[s] < minC {
							minC = vcount[s]
						}
					}
					kept := ties[:0]
					for _, s := range ties {
						if vcount[s] == minC {
							kept = append(kept, s)
						}
					}
					ties = kept
				}
				pick := ties[w.idx%len(ties)]
				plan.VertexShard[w.idx] = pick
				vcount[pick]++
				assigned[w.idx] = true
				next = append(next, w)
			}
		}
		frontier = next
	}
	// Disconnected leftovers (none in the standard topologies) go to 0.

	plan.PairLookahead = make([][]sim.Time, shards)
	for s := range plan.PairLookahead {
		plan.PairLookahead[s] = make([]sim.Time, shards)
	}
	for _, l := range n.links {
		s, d := plan.VertexShard[l.from.idx], plan.VertexShard[l.to.idx]
		if s == d {
			continue
		}
		if l.params.Latency <= 0 {
			panic(fmt.Sprintf("fabric: cut link %v has non-positive latency %v — conservative sync needs positive lookahead",
				l, l.params.Latency))
		}
		plan.CutLinks++
		plan.CutLatency += l.params.Latency
		if plan.Lookahead == 0 || l.params.Latency < plan.Lookahead {
			plan.Lookahead = l.params.Latency
		}
		if cur := plan.PairLookahead[s][d]; cur == 0 || l.params.Latency < cur {
			plan.PairLookahead[s][d] = l.params.Latency
		}
	}
	if plan.Lookahead == 0 {
		// No cut links (single shard): any positive window works; one link
		// latency keeps window sizing uniform with the multi-shard case.
		plan.Lookahead = n.params.Latency
	}
	return plan
}

// ApplyPlan binds the fabric to one engine per shard: every link facility
// moves to the engine firing its reservations (the shard of the link's
// source vertex), and per-shard transit pools, route caches, and cross-
// shard mailboxes replace the single-engine ones. engines[0] must be the
// engine the network was built on; ApplyPlan must run before any traffic.
// Each engine is grown to the fabric's domain space so tiebreak keys agree
// with a serial run no matter where an event fires.
func (n *Network) ApplyPlan(plan Plan, engines []*sim.Engine) {
	if len(engines) != plan.Shards {
		panic(fmt.Sprintf("fabric: plan wants %d shards, got %d engines", plan.Shards, len(engines)))
	}
	if engines[0] != n.eng {
		panic("fabric: ApplyPlan engines[0] must be the construction engine")
	}
	if len(plan.VertexShard) != len(n.verts) {
		panic("fabric: plan does not match this fabric")
	}
	for _, v := range n.verts {
		v.shard = plan.VertexShard[v.idx]
	}
	for _, e := range engines {
		e.GrowDomains(len(n.verts))
	}
	for _, l := range n.links {
		if s := l.from.shard; s != 0 {
			l.fac.Rebind(engines[s])
		}
	}
	n.shards = plan.Shards
	n.lookahead = plan.Lookahead
	n.sh = make([]shardState, plan.Shards)
	for s := range n.sh {
		n.sh[s].id = s
		n.sh[s].eng = engines[s]
		n.sh[s].routeCache = make(map[[2]NodeID][]*Link)
		n.sh[s].out = make([][]crossMsg, plan.Shards)
	}
}

// HostDomain reports the tiebreak-key domain of a host's fabric vertex —
// the domain every event "on" that node (NIC firmware, host processes)
// should be owned by, so keys stay shard-stable.
func (n *Network) HostDomain(id NodeID) uint32 { return n.hosts[id].up.from.domain }

// HostShard reports the shard a host's vertex is assigned to (0 before any
// ApplyPlan).
func (n *Network) HostShard(id NodeID) int { return n.hosts[id].up.from.shard }

// Shards reports how many shards the fabric is partitioned into (1 before
// ApplyPlan).
func (n *Network) Shards() int { return n.shards }

// LinkNow reports the virtual time at the given link — the clock of the
// engine that fires the link's traversal events. Fault-injection hooks
// (DropFn and friends) run inside those events and must read this clock,
// not some other shard's: within a synchronization window the shards'
// clocks legitimately differ.
func (n *Network) LinkNow(l *Link) sim.Time { return n.sh[l.from.shard].eng.Now() }

// Lookahead reports the partition's synchronization window width.
func (n *Network) Lookahead() sim.Time { return n.lookahead }
