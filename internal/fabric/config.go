package fabric

import "repro/internal/sim"

// Config is the single knob surface for choosing and parameterizing a
// fabric backend. Backends publish presets — myrinet.Default(),
// clos.Default() — and the cluster layer consumes the preset verbatim:
//
//	c := cluster.New(256, cluster.WithFabric(clos.Default()))
//
// The zero value means "the default Myrinet fabric" to the cluster layer
// (which cannot import the backend packages' presets from here without a
// cycle), so callers only construct Configs through presets or by editing
// a preset's fields.
type Config struct {
	// Kind names the backend ("myrinet", "clos") for reports and tables.
	Kind string

	// Links are the physical characteristics of every link, including the
	// PFC pause thresholds (zero: backpressure disabled).
	Links LinkParams

	// Radix is the switch port count topology builders size stages with
	// (0: the backend's default — 16 for Myrinet-2000 crossbars, 32 for
	// the datacenter Clos).
	Radix int

	// Build constructs the topology for the given host count. The builder
	// must use cfg.Links and cfg.Radix (not the preset's originals) so
	// per-run overrides of either take effect.
	Build func(eng *sim.Engine, hosts int, cfg Config) *Network

	// Diameter estimates the hop count between the two most distant hosts
	// in the topology Build would produce for the given host count — the
	// postal-model input the analytic optimal-tree construction uses.
	Diameter func(hosts int) int
}

// Valid reports whether the config names a buildable fabric (a zero Config
// is not; the cluster layer substitutes the Myrinet preset).
func (c Config) Valid() bool { return c.Build != nil }
