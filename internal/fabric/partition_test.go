package fabric

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// dumbbell builds the heterogeneous-latency fixture the objective tests
// share: two leaf switches with two hosts each (so two shards split the
// hosts leaf-per-leaf), joined through a middle switch that has one fast
// link pair to leaf 0 and two slow link pairs to leaf 1.
//
//	host0 ─┐                       ┌─ host2
//	       L0 ══fast══ M ──slow×2── L1
//	host1 ─┘                       └─ host3
//
// Min-cut joins M to leaf 1 (two links beat one) and cuts the fast pair;
// max-lookahead joins M to leaf 0 (inverse latency: one fast link outpulls
// two slow ones) and cuts both slow pairs.
func dumbbell(fast, slow sim.Time) *Network {
	base := LinkParams{Latency: fast, NsPerByte: 4.0}
	n := New(sim.NewEngine(), base)
	l0 := n.AddSwitch("L0")
	l1 := n.AddSwitch("L1")
	m := n.AddSwitch("M")
	n.AddHost(0, l0)
	n.AddHost(1, l0)
	n.AddHost(2, l1)
	n.AddHost(3, l1)
	n.ConnectWith(l0, m, base)
	slowP := LinkParams{Latency: slow, NsPerByte: 4.0}
	n.ConnectWith(m, l1, slowP)
	n.ConnectWith(m, l1, slowP)
	n.UseBFSRoute()
	n.SetMetrics(nil)
	return n
}

// TestPartitionObjectivesPlaceCutsDifferently pins the heterogeneous-
// latency behavior of both objectives on the dumbbell: min-cut minimizes
// the number of cut links and lands the cut on the fast pair; the default
// max-lookahead objective keeps the fast pair interior and cuts the slow
// pairs, trading one extra cut link for a 10x wider window.
func TestPartitionObjectivesPlaceCutsDifferently(t *testing.T) {
	const fast, slow = 100 * sim.Nanosecond, 1000 * sim.Nanosecond

	mc := dumbbell(fast, slow).PartitionObjective(2, ObjectiveMinCut)
	if mc.CutLinks != 2 || mc.Lookahead != fast {
		t.Fatalf("mincut: %d cut links, lookahead %v; want 2 cut links at %v",
			mc.CutLinks, mc.Lookahead, fast)
	}

	ml := dumbbell(fast, slow).PartitionObjective(2, ObjectiveMaxLookahead)
	if ml.CutLinks != 4 || ml.Lookahead != slow {
		t.Fatalf("maxlookahead: %d cut links, lookahead %v; want 4 cut links at %v",
			ml.CutLinks, ml.Lookahead, slow)
	}
	if ml.Lookahead <= mc.Lookahead {
		t.Fatalf("maxlookahead window %v not wider than mincut %v", ml.Lookahead, mc.Lookahead)
	}
	// The per-pair matrix carries the directed cut latencies the adaptive
	// coordinator consumes.
	for s := 0; s < 2; s++ {
		for d := 0; d < 2; d++ {
			want := sim.Time(0)
			if s != d {
				want = slow
			}
			if got := ml.PairLookahead[s][d]; got != want {
				t.Fatalf("maxlookahead PairLookahead[%d][%d] = %v, want %v", s, d, got, want)
			}
		}
	}
	if ml.CutLatency != 4*slow {
		t.Fatalf("maxlookahead CutLatency = %v, want %v", ml.CutLatency, 4*slow)
	}
}

// TestPartitionDefaultIsMaxLookahead pins that Partition is the
// max-lookahead objective.
func TestPartitionDefaultIsMaxLookahead(t *testing.T) {
	const fast, slow = 100 * sim.Nanosecond, 1000 * sim.Nanosecond
	def := dumbbell(fast, slow).Partition(2)
	obj := dumbbell(fast, slow).PartitionObjective(2, ObjectiveMaxLookahead)
	if !reflect.DeepEqual(def, obj) {
		t.Fatalf("Partition(2) != PartitionObjective(2, ObjectiveMaxLookahead):\n%+v\nvs\n%+v", def, obj)
	}
	if def.Lookahead != slow {
		t.Fatalf("default objective lookahead = %v, want %v", def.Lookahead, slow)
	}
}

// TestPartitionUniformLatencyObjectivesAgree checks the degenerate case
// that protects every calibrated topology: with one latency everywhere,
// inverse-latency weights are proportional to link counts, so both
// objectives produce the same cut structure (cut counts and lookahead; the
// exact assignment may differ by tie-breaking).
func TestPartitionUniformLatencyObjectivesAgree(t *testing.T) {
	build := func() *Network {
		return SingleSwitch(sim.NewEngine(), 8, DefaultLinkParams())
	}
	a := build().PartitionObjective(4, ObjectiveMaxLookahead)
	b := build().PartitionObjective(4, ObjectiveMinCut)
	if a.Lookahead != b.Lookahead || a.CutLinks != b.CutLinks {
		t.Fatalf("uniform fabric: maxlookahead (%d cuts, %v) vs mincut (%d cuts, %v) disagree",
			a.CutLinks, a.Lookahead, b.CutLinks, b.Lookahead)
	}
}

// TestObjectiveString pins the report labels.
func TestObjectiveString(t *testing.T) {
	if got := ObjectiveMaxLookahead.String(); got != "maxlookahead" {
		t.Fatalf("ObjectiveMaxLookahead = %q", got)
	}
	if got := ObjectiveMinCut.String(); got != "mincut" {
		t.Fatalf("ObjectiveMinCut = %q", got)
	}
}

// TestPartitionHeterogeneousBalanceTieBreak checks the max-lookahead
// tie-break: with symmetric weights, the switch goes to the tied shard
// with fewer vertices.
func TestPartitionHeterogeneousBalanceTieBreak(t *testing.T) {
	params := DefaultLinkParams()
	n := New(sim.NewEngine(), params)
	l0 := n.AddSwitch("L0")
	l1 := n.AddSwitch("L1")
	m := n.AddSwitch("M")
	// Shard 0 gets three hosts, shard 1 gets one (contiguous blocks of 4
	// hosts over 2 shards split 2/2 — so force imbalance with an extra
	// switch on side 0 instead).
	x := n.AddSwitch("X0") // extra interior vertex inflating shard 0
	n.AddHost(0, l0)
	n.AddHost(1, l0)
	n.AddHost(2, l1)
	n.AddHost(3, l1)
	n.Connect(l0, x)
	n.Connect(l0, m)
	n.Connect(m, l1)
	n.UseBFSRoute()
	n.SetMetrics(nil)
	plan := n.PartitionObjective(2, ObjectiveMaxLookahead)
	// M has one equal-latency link to each side; shard 0 holds an extra
	// vertex (X0), so balance sends M to shard 1.
	if got := plan.VertexShard[m.idx]; got != 1 {
		t.Fatalf("tied switch joined shard %d, want 1 (balance tie-break)", got)
	}
}
