package fabric

import (
	"sort"
	"testing"

	"repro/internal/sim"
)

const pfcPkt = 1024

// incast drives hosts 1..senders each injecting msgs packets at host 0
// through one crossbar, stepping the engine manually so per-link queue
// occupancy can be sampled between events. It returns host 0's delivery
// times, the maximum backlog observed on any link, and the total pause
// count, and asserts the run ended clean: nothing parked, nothing queued,
// nothing lost.
func incast(t *testing.T, params LinkParams, senders, msgs int) (deliveries []sim.Time, maxQueued int, pauses uint64) {
	t.Helper()
	eng := sim.NewEngine()
	net := SingleSwitch(eng, senders+1, params)
	net.Iface(0).Deliver = func(*Packet) { deliveries = append(deliveries, eng.Now()) }
	for s := 1; s <= senders; s++ {
		for m := 0; m < msgs; m++ {
			net.Iface(NodeID(s)).Inject(&Packet{Src: NodeID(s), Dst: 0, Size: pfcPkt})
		}
	}
	for eng.Step() {
		for _, l := range net.links {
			if l.queued > maxQueued {
				maxQueued = l.queued
			}
		}
	}
	for _, l := range net.links {
		pauses += l.mPauses.Value()
		if len(l.waiters) != 0 {
			t.Fatalf("link %s finished with %d parked transits", l, len(l.waiters))
		}
		if l.queued != 0 {
			t.Fatalf("link %s finished with %d queued bytes", l, l.queued)
		}
	}
	st := net.Stats()
	if st.Dropped != 0 {
		t.Fatalf("lossless fabric dropped %d packets", st.Dropped)
	}
	if got, want := int(st.Delivered), senders*msgs; got != want {
		t.Fatalf("delivered %d packets, want %d", got, want)
	}
	return deliveries, maxQueued, pauses
}

// TestPFCBoundsBacklogWithoutLoss is the backpressure contract: under an
// incast that overcommits every queue, pause thresholds bound the per-link
// backlog near PauseBytes and every packet still arrives — congestion
// parks senders instead of dropping.
func TestPFCBoundsBacklogWithoutLoss(t *testing.T) {
	params := LinkParams{
		Latency:     100 * sim.Nanosecond,
		NsPerByte:   1,
		PauseBytes:  3 * pfcPkt,
		ResumeBytes: pfcPkt,
	}
	_, maxQueued, pauses := incast(t, params, 6, 8)
	if pauses == 0 {
		t.Fatal("incast past the pause threshold never paused a sender")
	}
	if maxQueued < params.PauseBytes {
		t.Errorf("max backlog %d never reached the pause threshold %d; workload too light to test anything",
			maxQueued, params.PauseBytes)
	}
	if limit := params.PauseBytes + pfcPkt; maxQueued > limit {
		t.Errorf("max backlog %d exceeds pause threshold + one packet (%d)", maxQueued, limit)
	}
}

// TestPFCIsTimingTransparent pins a subtler invariant: on a loss-free
// fabric, flow control changes who waits where but not when bytes move —
// the link facility serializes reservations in the same FIFO order either
// way, so delivery times with pause thresholds enabled must equal the
// uncontrolled run's exactly. Any divergence means parking reordered or
// delayed a reservation.
func TestPFCIsTimingTransparent(t *testing.T) {
	params := LinkParams{Latency: 100 * sim.Nanosecond, NsPerByte: 1}
	free, freeMax, freePauses := incast(t, params, 6, 8)
	if freePauses != 0 || freeMax != 0 {
		t.Fatalf("PauseBytes=0 run tracked flow control: %d pauses, %d max backlog", freePauses, freeMax)
	}

	params.PauseBytes = 3 * pfcPkt
	params.ResumeBytes = pfcPkt
	pfc, _, _ := incast(t, params, 6, 8)

	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	sort.Slice(pfc, func(i, j int) bool { return pfc[i] < pfc[j] })
	if len(free) != len(pfc) {
		t.Fatalf("delivery counts differ: %d free, %d with PFC", len(free), len(pfc))
	}
	for i := range free {
		if free[i] != pfc[i] {
			t.Fatalf("delivery %d at %v with PFC, %v without", i, pfc[i], free[i])
		}
	}
}

// TestPFCDeterministic runs the paused incast twice and requires identical
// event counts and final clocks — drain and wake events draw their
// tiebreak keys from the link's own domain, so flow control must not
// introduce any scheduling nondeterminism.
func TestPFCDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64, int) {
		eng := sim.NewEngine()
		params := LinkParams{
			Latency:     100 * sim.Nanosecond,
			NsPerByte:   1,
			PauseBytes:  2 * pfcPkt,
			ResumeBytes: pfcPkt,
		}
		net := SingleSwitch(eng, 5, params)
		got := 0
		net.Iface(0).Deliver = func(*Packet) { got++ }
		for s := 1; s < 5; s++ {
			for m := 0; m < 6; m++ {
				net.Iface(NodeID(s)).Inject(&Packet{Src: NodeID(s), Dst: 0, Size: pfcPkt})
			}
		}
		eng.Run()
		return eng.Now(), eng.EventsFired(), got
	}
	aEnd, aEv, aGot := run()
	bEnd, bEv, bGot := run()
	if aEnd != bEnd || aEv != bEv || aGot != bGot {
		t.Fatalf("paused incast not reproducible: (%v, %d events, %d delivered) vs (%v, %d events, %d delivered)",
			aEnd, aEv, aGot, bEnd, bEv, bGot)
	}
	if aGot != 24 {
		t.Fatalf("delivered %d packets, want 24", aGot)
	}
}

// TestPFCPauseTimeAccounted checks the pause_ns metric measures real
// parked time: with a backlog forced well past the threshold the summed
// pause time must be positive and no larger than the run's span times the
// number of pauses.
func TestPFCPauseTimeAccounted(t *testing.T) {
	eng := sim.NewEngine()
	params := LinkParams{
		Latency:     100 * sim.Nanosecond,
		NsPerByte:   1,
		PauseBytes:  2 * pfcPkt,
		ResumeBytes: pfcPkt,
	}
	net := SingleSwitch(eng, 3, params)
	net.Iface(0).Deliver = func(*Packet) {}
	for m := 0; m < 10; m++ {
		net.Iface(1).Inject(&Packet{Src: 1, Dst: 0, Size: pfcPkt})
	}
	eng.Run()
	var pauses uint64
	var pauseNs int64
	for _, l := range net.links {
		pauses += l.mPauses.Value()
		pauseNs += int64(l.mPauseNs.Value())
	}
	if pauses == 0 {
		t.Fatal("ten back-to-back packets against a two-packet threshold never paused")
	}
	if pauseNs <= 0 {
		t.Fatalf("%d pauses accounted %d ns of pause time, want > 0", pauses, pauseNs)
	}
	if max := int64(eng.Now()) * int64(pauses); pauseNs > max {
		t.Fatalf("pause time %d ns exceeds run span x pauses (%d)", pauseNs, max)
	}
}
