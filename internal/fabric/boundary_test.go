package fabric_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestLayerBoundary pins the fabric abstraction's layering contract: the
// protocol layers (NIC firmware, GM library, reliability core, membership,
// trees, MPI) depend only on repro/internal/fabric, never on a concrete
// backend. A direct myrinet (or clos) import in any of these packages
// would quietly re-couple the protocol stack to one interconnect.
func TestLayerBoundary(t *testing.T) {
	banned := []string{
		"repro/internal/myrinet",
		"repro/internal/clos",
	}
	layers := []string{"lanai", "gm", "core", "member", "tree", "mpi"}

	fset := token.NewFileSet()
	checked := 0
	for _, pkg := range layers {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			checked++
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
				}
				for _, b := range banned {
					if p == b {
						t.Errorf("%s imports %s; protocol layers must depend on repro/internal/fabric only", path, b)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no files checked; layer directories moved?")
	}
}
