package fabric

import "errors"

// Sentinel errors for API misuse of the fabric layer. Misconfiguration is
// fatal (the fabric cannot limp along without its randomness source), so
// these surface either as returned errors from the validating setters or
// as panics carrying error values: recover the value and test it with
// errors.Is. They live here — not in a backend or in cluster — because
// every fabric shares the same validation rules; the old myrinet/cluster
// names remain as deprecated aliases.
var (
	// ErrLossRateWithoutRNG reports enabling stochastic loss on a fabric
	// that has no randomness source installed (SetRNG).
	ErrLossRateWithoutRNG = errors.New("fabric: LossRate set without SetRNG")
	// ErrBadLossRate reports a loss probability outside [0, 1].
	ErrBadLossRate = errors.New("fabric: loss rate outside [0, 1]")

	// ErrShardsWithLossRate reports a sharded build with stochastic loss
	// enabled: the single RNG's draw order would make cross-shard event
	// order observable, breaking serial/sharded equivalence.
	ErrShardsWithLossRate = errors.New("fabric: stochastic loss requires the serial engine (shared RNG draw order)")
	// ErrShardsWithTrace reports a sharded build with a trace recorder
	// attached: the shared recorder would observe cross-shard order.
	ErrShardsWithTrace = errors.New("fabric: tracing requires the serial engine (shared trace recorder)")
	// ErrShardsStateful reports installing a stateful fault-injection hook
	// (one whose decisions depend on cross-packet state) on a sharded
	// fabric, where packet observation order is not the serial order.
	ErrShardsStateful = errors.New("fabric: stateful fault injection requires the serial engine")
)
