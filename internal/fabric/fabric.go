// Package fabric is the interconnect abstraction the simulated cluster is
// assembled on: a graph of hosts and switches joined by directed FIFO
// links, with virtual-cut-through packet transport, deterministic routing,
// fault-injection hooks, metrics accounting, and a deterministic
// partitioner for the conservative parallel engine.
//
// The package is topology-agnostic: backends (package myrinet's crossbar
// Clos, package clos's RDMA-era datacenter fabric) build a Network out of
// AddSwitch/AddHost/Connect/SetRoute and provide a Config preset; every
// upper layer — NIC hardware, GM firmware, the multicast extension, the
// chaos campaigns — speaks only the types defined here, so a new fabric is
// a new package, not a rewrite.
//
// The fabric is payload-agnostic: it moves Packet values between network
// interfaces, charging per-hop latency and per-link serialization time, and
// optionally dropping packets (bit errors are rare but nonzero; the
// reliability machinery above exists precisely because the network cannot
// be assumed reliable). Protocol content lives in the upper layers.
package fabric

import "fmt"

// NodeID identifies a host/NIC attachment point on the fabric. The paper's
// deadlock-avoidance rule sorts multicast destinations by this "network ID".
type NodeID int

func (id NodeID) String() string { return fmt.Sprintf("n%d", int(id)) }

// Packet is one network packet in flight. Size is the total wire size in
// bytes (headers included) and determines serialization time; Payload is
// the upper-layer frame and is not interpreted by the fabric.
//
// TxDone, when non-nil, fires when the packet's tail leaves the source
// NIC's injection link — the moment the transmit DMA engine is done with
// the packet buffer. This is the hardware hook behind GM-2's per-packet
// descriptor callback handlers, which the paper's multisend exploits to
// rewrite the header and queue the same buffer for another destination.
// It fires even if the packet is later lost downstream.
type Packet struct {
	Src, Dst NodeID
	Size     int
	Payload  any
	TxDone   func()
}

// Stats are fabric-wide packet counters.
type Stats struct {
	Injected  uint64
	Delivered uint64
	Dropped   uint64
}
