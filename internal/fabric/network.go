package fabric

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Network is an assembled fabric: host interfaces, switches, links, and a
// routing function. Backends construct one with New plus the
// AddSwitch/AddHost/Connect/SetRoute builder calls (see package myrinet and
// package clos); SingleSwitch builds the degenerate one-crossbar testbed
// directly.
//
// A fabric always runs partitioned into shards — one by default, several
// after ApplyPlan — with every vertex's events firing on its shard's
// engine. All mutable per-packet state (transit pools, route caches,
// cross-shard outboxes) lives in per-shard slots touched only by that
// shard's goroutine, so a multi-shard run needs no locks: the coordinator's
// window barrier is the only synchronization.
type Network struct {
	eng    *sim.Engine
	params LinkParams
	hosts  []*Iface
	verts  []*Vertex
	links  []*Link

	routeFn func(src, dst NodeID) []*Link

	shards    int
	lookahead sim.Time
	sh        []shardState

	// drainBuf and drainSort are the barrier-time scratch for merging
	// cross-shard mailboxes; reused so steady-state draining allocates
	// nothing per packet.
	drainBuf  []crossMsg
	drainSort crossSorter

	// LossRate is the per-link probability that a packet is corrupted and
	// discarded (models nonzero bit-error rates). Requires SetRNG.
	//
	// Prefer SetLossRate, which validates the rate and the RNG requirement
	// up front; setting the field directly defers the check to the first
	// transmission.
	LossRate float64
	// DropFn, when non-nil, is consulted per link traversal; returning
	// true drops the packet. It is the test hook for targeted loss.
	DropFn func(p *Packet, l *Link) bool
	// DupFn, when non-nil, is consulted once per packet as its final
	// delivery is scheduled; returning true delivers a second copy of the
	// packet one serialization time after the first (a fault-injection
	// hook: real fabrics duplicate under retransmitting switches).
	DupFn func(p *Packet, l *Link) bool
	// DelayFn, when non-nil, reports extra delivery delay for a packet at
	// its destination — the bounded-reordering fault-injection hook. A
	// packet held back long enough for a later one to overtake it arrives
	// out of order without being lost.
	DelayFn func(p *Packet, l *Link) sim.Time

	rng *sim.RNG

	// Cached fabric-wide instruments, set by SetMetrics; nil (no-op)
	// when the registry is disabled.
	mInjected   *metrics.Counter
	mDelivered  *metrics.Counter
	mDropped    *metrics.Counter
	mDuplicated *metrics.Counter
	mLinkBusyNs *metrics.Counter
}

// Iface is a host's attachment to the fabric. The NIC model sets Deliver;
// the fabric calls it when a packet has fully arrived.
type Iface struct {
	net     *Network
	id      NodeID
	up      *Link // host -> first switch
	Deliver func(*Packet)
}

// ID reports the interface's network ID.
func (ifc *Iface) ID() NodeID { return ifc.id }

// Uplink reports the host's injection link into the fabric.
func (ifc *Iface) Uplink() *Link { return ifc.up }

// Engine returns the simulation engine driving the network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Params returns the fabric's link parameters.
func (n *Network) Params() LinkParams { return n.params }

// Hosts reports the number of host interfaces.
func (n *Network) Hosts() int { return len(n.hosts) }

// Iface returns the interface for a node.
func (n *Network) Iface(id NodeID) *Iface { return n.hosts[id] }

// Stats returns a snapshot of fabric counters.
//
// Deprecated: read the metrics registry wired via SetMetrics instead;
// this shim reports zeros when the registry is disabled.
func (n *Network) Stats() Stats {
	return Stats{
		Injected:  n.mInjected.Value(),
		Delivered: n.mDelivered.Value(),
		Dropped:   n.mDropped.Value(),
	}
}

// SetRNG installs the randomness source used for loss injection.
func (n *Network) SetRNG(rng *sim.RNG) { n.rng = rng }

// SetLossRate enables stochastic per-link loss, validating the probability
// and the RNG requirement up front so misconfiguration fails at wiring time
// rather than mid-simulation on the first transmit.
func (n *Network) SetLossRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("%w: %v", ErrBadLossRate, rate)
	}
	if rate > 0 && n.rng == nil {
		return ErrLossRateWithoutRNG
	}
	n.LossRate = rate
	return nil
}

// Links exposes every directed link of the fabric (fault injection and
// diagnostics; the slice is the network's own — do not mutate).
func (n *Network) Links() []*Link { return n.links }

// Route returns the link path from src to dst, caching computed routes.
// Routes are deterministic for a given topology.
func (n *Network) Route(src, dst NodeID) []*Link {
	return n.routeShard(&n.sh[0], src, dst)
}

// routeShard is Route against one shard's private cache. Each shard caches
// the routes it forwards for, so the hot path never shares a map across
// goroutines; the underlying []*Link values are shared read-only.
func (n *Network) routeShard(sh *shardState, src, dst NodeID) []*Link {
	key := [2]NodeID{src, dst}
	if r, ok := sh.routeCache[key]; ok {
		return r
	}
	r := n.routeFn(src, dst)
	if r == nil {
		panic(fmt.Sprintf("fabric: no route %v -> %v", src, dst))
	}
	sh.routeCache[key] = r
	return r
}

// HopCount reports the number of links on the route between two nodes.
func (n *Network) HopCount(src, dst NodeID) int { return len(n.Route(src, dst)) }

// Inject begins transmitting p from its source interface. The caller is
// the NIC transmit engine; the injection link's FIFO discipline serializes
// concurrent transmissions from one NIC. Delivery (or silent loss) happens
// entirely through scheduled events.
func (ifc *Iface) Inject(p *Packet) {
	n := ifc.net
	if p.Src != ifc.id {
		panic(fmt.Sprintf("fabric: packet src %v injected at %v", p.Src, ifc.id))
	}
	if p.Size <= 0 {
		panic("fabric: packet with nonpositive size")
	}
	n.mInjected.Inc()
	srcV := ifc.up.from
	sh := &n.sh[srcV.shard]
	tr := sh.newTransit(n)
	tr.p = p
	tr.route = n.routeShard(sh, p.Src, p.Dst)
	tr.i = 0
	tr.headAt = sh.eng.Now()
	tr.delivering = false
	sh.eng.AtDomain(srcV.domain, tr.headAt, tr.step)
}

// transit is the traversal state of one packet in flight: which hop it is
// on and when its head arrives there. Exactly one event is outstanding per
// transit at any instant — except while parked under PFC backpressure,
// when the link's drain event owns the wakeup — so the state advances in
// place and the same pre-bound step callback serves every hop. A transit
// never migrates: when the packet's next hop belongs to another shard, the
// record is released here and the destination shard re-materializes one
// from its own pool.
type transit struct {
	net        *Network
	sh         *shardState
	p          *Packet
	route      []*Link
	i          int
	headAt     sim.Time
	parkedAt   sim.Time // park timestamp under PFC, for pause_ns accounting
	delivering bool     // final store-and-forward delivery scheduled
	step       func()   // run, bound once when the transit is first created
}

// newTransit recycles a traversal record or creates one (binding its step
// callback exactly once).
func (sh *shardState) newTransit(n *Network) *transit {
	if k := len(sh.transitFree); k > 0 {
		tr := sh.transitFree[k-1]
		sh.transitFree[k-1] = nil
		sh.transitFree = sh.transitFree[:k-1]
		return tr
	}
	tr := &transit{net: n, sh: sh}
	tr.step = tr.run
	return tr
}

// release drops the packet references and returns tr to its shard's pool.
func (tr *transit) release() {
	tr.p = nil
	tr.route = nil
	tr.sh.transitFree = append(tr.sh.transitFree, tr)
}

// run advances the packet onto route[i] (virtual cut-through: the head
// proceeds to the next hop after the link's latency while the tail is
// still serializing behind it), or — in the delivering phase — hands the
// fully-arrived packet to the destination NIC.
func (tr *transit) run() {
	n := tr.net
	if tr.delivering {
		// Final hop: the destination NIC needs the whole packet (its
		// receive DMA is store-and-forward), so this fires at tail arrival.
		p := tr.p
		tr.release()
		n.mDelivered.Inc()
		n.deliver(p)
		return
	}
	p, l := tr.p, tr.route[tr.i]
	if l.params.PauseBytes > 0 && (len(l.waiters) > 0 || l.queued >= l.params.PauseBytes) {
		// PFC pause: the link's backlog is past the pause threshold (or
		// earlier senders are already parked, whom FIFO fairness must not
		// let us overtake). Park without an outstanding event; the link's
		// drain event wakes waiters once the backlog recedes. The backlog
		// always drains — every queued byte has a drain event scheduled —
		// so parking cannot deadlock.
		tr.parkedAt = tr.sh.eng.Now()
		l.waiters = append(l.waiters, tr)
		l.mPauses.Inc()
		return
	}
	ser := l.params.SerializationTime(p.Size)
	start := l.fac.Reserve(ser)
	if stall := start - tr.headAt; stall > 0 {
		l.mStallNs.AddInt(int64(stall))
		l.mContended.Inc()
	}
	l.mTxBytes.Add(uint64(p.Size))
	n.mLinkBusyNs.AddInt(int64(ser))
	if l.params.PauseBytes > 0 {
		l.queued += p.Size
		l.inflight = append(l.inflight, p.Size)
		tr.sh.eng.AtDomain(l.from.domain, start+ser, l.drainFn)
	}
	if tr.i == 0 && p.TxDone != nil {
		// The source NIC's transmit engine finishes with the packet
		// buffer when the tail clears the injection link.
		tr.sh.eng.At(start+ser, p.TxDone)
	}
	if n.dropped(p, l) {
		l.Drops++
		l.mDrops.Inc()
		n.mDropped.Inc()
		tr.release()
		return
	}
	headOut := start + l.params.Latency
	if tr.i+1 < len(tr.route) {
		next := tr.route[tr.i+1].from
		if next.shard == tr.sh.id {
			tr.i++
			tr.headAt = headOut
			tr.sh.eng.AtDomain(next.domain, headOut, tr.step)
		} else {
			tr.post(next, headOut, crossHop, int32(tr.i+1))
		}
		return
	}
	tailIn := headOut + ser
	if n.DelayFn != nil {
		if d := n.DelayFn(p, l); d > 0 {
			tailIn += d
		}
	}
	dstV := n.hosts[p.Dst].up.from
	if n.DupFn != nil && n.DupFn(p, l) {
		// A duplicate copy trails the original by one serialization time,
		// as if a retransmitting switch stage emitted the packet twice.
		// Duplication keeps per-packet state in the injector, so sharded
		// runs reject it up front (cluster validation); the boundary check
		// here is the backstop.
		if dstV.shard != tr.sh.id {
			panic("fabric: duplicate injection across shard boundary unsupported")
		}
		tr.sh.eng.AtDomain(dstV.domain, tailIn+ser, func() {
			n.mDuplicated.Inc()
			n.mDelivered.Inc()
			n.deliver(p)
		})
	}
	if dstV.shard == tr.sh.id {
		tr.delivering = true
		tr.sh.eng.AtDomain(dstV.domain, tailIn, tr.step)
	} else {
		tr.post(dstV, tailIn, crossDeliver, 0)
	}
}

// drain fires one serialization time after each PFC-tracked reservation:
// the packet's tail has left the link, so its bytes no longer occupy the
// sender-side buffer. Once the backlog recedes to the resume threshold,
// parked transits wake in arrival order, inside this event, on the link's
// own domain — so serial and sharded runs draw identical tiebreak keys.
func (l *Link) drain() {
	sz := l.inflight[l.qHead]
	l.inflight[l.qHead] = 0
	l.qHead++
	if l.qHead == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.qHead = 0
	}
	l.queued -= sz
	if l.queued <= l.params.ResumeBytes && len(l.waiters) > 0 {
		w := l.waiters
		l.waiters = l.waiters[:0]
		// Re-parks during the wakeups append into indices already consumed
		// by this loop (a waiter can only re-park after earlier waiters
		// refilled the backlog), so iterating the old slice is safe and
		// FIFO order is preserved.
		for _, tr := range w {
			l.mPauseNs.AddInt(int64(tr.sh.eng.Now() - tr.parkedAt))
			tr.step()
		}
	}
}

// post queues the packet's next event for another shard and retires this
// transit. The tiebreak key is drawn here, on the source engine, from the
// same domain sequence a serial run would use — that key is what makes the
// destination's replay land in exactly the serial position.
func (tr *transit) post(v *Vertex, when sim.Time, kind uint8, hop int32) {
	sh := tr.sh
	key := sh.eng.AllocKey(v.domain)
	sh.out[v.shard] = append(sh.out[v.shard], crossMsg{
		when: when, key: key, owner: v.domain, kind: kind, hop: hop, p: tr.p,
	})
	sh.outPending++
	tr.release()
}

// CrossPending reports how many cross-shard messages are queued in outboxes.
// The shard coordinator reads it at window barriers — when no shard
// goroutine is running, so the per-shard counters are quiescent — to skip
// the drain pass (and the barrier bookkeeping around it) for windows that
// moved nothing across a cut.
func (n *Network) CrossPending() int {
	pending := 0
	for s := range n.sh {
		pending += n.sh[s].outPending
	}
	return pending
}

// DrainCross delivers every queued cross-shard message into its destination
// engine, in (when, key) order per destination, and reports how many were
// delivered. The shard coordinator calls it at window barriers, when no
// shard goroutine is running; outside sharded runs there is nothing to
// drain.
func (n *Network) DrainCross() int {
	if n.CrossPending() == 0 {
		return 0
	}
	total := 0
	for d := range n.sh {
		// One pass finds the non-empty source boxes; a single-source window
		// (the common case under bursty traffic) sorts that box in place and
		// skips the merge copy entirely.
		src, multi := -1, false
		for s := range n.sh {
			if len(n.sh[s].out[d]) == 0 {
				continue
			}
			if src < 0 {
				src = s
			} else {
				multi = true
				break
			}
		}
		if src < 0 {
			continue
		}
		var buf []crossMsg
		if multi {
			buf = n.drainBuf[:0]
			for s := range n.sh {
				box := n.sh[s].out[d]
				if len(box) == 0 {
					continue
				}
				buf = append(buf, box...)
				n.sh[s].out[d] = box[:0]
			}
			n.drainBuf = buf
		} else {
			buf = n.sh[src].out[d]
		}
		n.drainSort.msgs = buf
		sort.Sort(&n.drainSort)
		dst := &n.sh[d]
		for i := range buf {
			m := &buf[i]
			tr := dst.newTransit(n)
			tr.p = m.p
			if m.kind == crossHop {
				tr.route = n.routeShard(dst, m.p.Src, m.p.Dst)
				tr.i = int(m.hop)
				tr.headAt = m.when
				tr.delivering = false
			} else {
				tr.route = nil
				tr.delivering = true
			}
			dst.eng.AtKey(m.when, m.key, m.owner, tr.step)
		}
		total += len(buf)
		if multi {
			n.drainBuf = buf[:0]
		} else {
			n.sh[src].out[d] = buf[:0]
		}
	}
	for s := range n.sh {
		n.sh[s].outPending = 0
	}
	return total
}

// deliver hands a fully-arrived packet to the destination NIC.
func (n *Network) deliver(p *Packet) {
	dst := n.hosts[p.Dst]
	if dst.Deliver == nil {
		panic(fmt.Sprintf("fabric: no receiver attached at %v", p.Dst))
	}
	dst.Deliver(p)
}

func (n *Network) dropped(p *Packet, l *Link) bool {
	if n.DropFn != nil && n.DropFn(p, l) {
		return true
	}
	if n.LossRate > 0 {
		if n.rng == nil {
			// Backstop for direct field assignment that bypassed
			// SetLossRate; the panic value satisfies errors.Is.
			panic(ErrLossRateWithoutRNG)
		}
		return n.rng.Bernoulli(n.LossRate)
	}
	return false
}

// shardState is the per-shard slice of the fabric's mutable state. Only the
// owning shard's goroutine touches it while the simulation runs; the
// coordinator drains out at window barriers, when no shard is running.
type shardState struct {
	id          int
	eng         *sim.Engine
	transitFree []*transit
	routeCache  map[[2]NodeID][]*Link
	out         [][]crossMsg // outboxes, indexed by destination shard
	outPending  int          // total messages queued across out, reset at drains
}

// crossMsg is one packet event crossing a shard boundary: a wormhole hop
// landing on a vertex owned by another engine, or a final store-and-forward
// delivery to a host on another shard. The key was drawn on the source
// engine at the moment a serial run would have scheduled the event, so
// replaying the message with AtKey reproduces the serial timeline exactly.
type crossMsg struct {
	when  sim.Time
	key   uint64
	owner uint32
	kind  uint8 // crossHop or crossDeliver
	hop   int32 // route index to resume at (crossHop)
	p     *Packet
}

const (
	crossHop = uint8(iota)
	crossDeliver
)

// crossSorter orders drained messages by (when, key) — the engine's own
// ordering — via a pre-boxed sort.Interface so draining allocates nothing.
type crossSorter struct{ msgs []crossMsg }

func (s *crossSorter) Len() int      { return len(s.msgs) }
func (s *crossSorter) Swap(i, j int) { s.msgs[i], s.msgs[j] = s.msgs[j], s.msgs[i] }
func (s *crossSorter) Less(i, j int) bool {
	a, b := &s.msgs[i], &s.msgs[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.key < b.key
}

// New allocates the network shell on eng; topology builders fill it in with
// AddSwitch/AddHost/Connect and install routing with SetRoute (or
// UseBFSRoute), then call SetMetrics(nil) to arm the accounting
// instruments.
func New(eng *sim.Engine, params LinkParams) *Network {
	n := &Network{
		eng:    eng,
		params: params,
		shards: 1,
	}
	n.sh = []shardState{{eng: eng, routeCache: make(map[[2]NodeID][]*Link)}}
	return n
}

// AddSwitch adds a switching vertex with the given diagnostic label.
// Vertices must be added in a deterministic order: each one claims the next
// tiebreak-key domain, and serial/sharded equivalence depends on identical
// domain assignment.
func (n *Network) AddSwitch(label string) *Vertex { return n.addVertex(label) }

// AddHost adds host id attached to sw, returning its interface and the
// up (host->switch) and down (switch->host) links. Hosts must be added in
// ascending id order with no gaps; the host's vertex is labeled "host<id>".
func (n *Network) AddHost(id NodeID, sw *Vertex) (ifc *Iface, up, down *Link) {
	if int(id) != len(n.hosts) {
		panic(fmt.Sprintf("fabric: AddHost(%v) out of order, want host %d next", id, len(n.hosts)))
	}
	hv := n.addVertex(fmt.Sprintf("host%d", id))
	hv.host = true
	hv.hostID = id
	up, down = n.Connect(hv, sw)
	ifc = &Iface{net: n, id: id, up: up}
	n.hosts = append(n.hosts, ifc)
	return ifc, up, down
}

// Connect adds a pair of directed links between a and b with the fabric's
// default link parameters.
func (n *Network) Connect(a, b *Vertex) (ab, ba *Link) {
	return n.ConnectWith(a, b, n.params)
}

// ConnectWith adds a pair of directed links between a and b with explicit
// link parameters — the builder hook for heterogeneous fabrics (e.g. long
// inter-rack runs slower than intra-rack links). The partitioner sees the
// per-link latency, so its lookahead matrix and the lookahead-maximizing
// objective work per link, not per fabric.
func (n *Network) ConnectWith(a, b *Vertex, params LinkParams) (ab, ba *Link) {
	ab = &Link{from: a, to: b, params: params,
		fac: sim.NewFacility(n.eng, fmt.Sprintf("link:%s->%s", a.label, b.label))}
	ba = &Link{from: b, to: a, params: params,
		fac: sim.NewFacility(n.eng, fmt.Sprintf("link:%s->%s", b.label, a.label))}
	if params.PauseBytes > 0 {
		ab.drainFn = ab.drain
		ba.drainFn = ba.drain
	}
	a.out = append(a.out, ab)
	b.out = append(b.out, ba)
	n.links = append(n.links, ab, ba)
	return ab, ba
}

// SetRoute installs the topology's routing function. The function must be
// deterministic; the fabric caches its results per (src, dst).
func (n *Network) SetRoute(fn func(src, dst NodeID) []*Link) { n.routeFn = fn }

// UseBFSRoute installs deterministic shortest-path routing computed by BFS
// over the fabric graph — sufficient for topologies without path diversity.
func (n *Network) UseBFSRoute() { n.routeFn = n.bfsRoute }

// SingleSwitch builds a fabric with all hosts on one crossbar — the shape
// of the paper's 16-node testbed (one Myrinet-2000 Xbar16), and the
// standard two-node harness for NIC and firmware unit tests.
func SingleSwitch(eng *sim.Engine, hosts int, params LinkParams) *Network {
	if hosts < 1 {
		panic("fabric: need at least one host")
	}
	n := New(eng, params)
	sw := n.AddSwitch("xbar0")
	for i := 0; i < hosts; i++ {
		n.AddHost(NodeID(i), sw)
	}
	n.UseBFSRoute()
	n.SetMetrics(nil)
	return n
}

func (n *Network) addVertex(label string) *Vertex {
	v := &Vertex{idx: len(n.verts), label: label, domain: uint32(len(n.verts) + 1)}
	n.verts = append(n.verts, v)
	// Every vertex is a tiebreak-key domain, registered up front so serial
	// and sharded runs draw identical keys.
	n.eng.GrowDomains(len(n.verts))
	return v
}

// bfsRoute computes the deterministic shortest link path between hosts.
func (n *Network) bfsRoute(src, dst NodeID) []*Link {
	from := n.hosts[src].up.from
	goal := n.hosts[dst].up.from
	if from == goal {
		panic("fabric: route to self")
	}
	prev := make([]*Link, len(n.verts))
	seen := make([]bool, len(n.verts))
	seen[from.idx] = true
	queue := []*Vertex{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == goal {
			break
		}
		for _, l := range v.out {
			if !seen[l.to.idx] {
				seen[l.to.idx] = true
				prev[l.to.idx] = l
				queue = append(queue, l.to)
			}
		}
	}
	if !seen[goal.idx] {
		return nil
	}
	var rev []*Link
	for v := goal; v != from; v = prev[v.idx].from {
		rev = append(rev, prev[v.idx])
	}
	route := make([]*Link, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		route = append(route, rev[i])
	}
	return route
}
