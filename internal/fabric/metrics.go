package fabric

import "repro/internal/metrics"

// Component is the metrics component name for the fabric layer. Every
// backend shares it: the invariant checkers (chaos campaigns, membership
// scenarios) read injected/delivered/dropped/duplicated under this
// component regardless of which fabric carried the traffic.
const Component = "net"

// SetMetrics wires fabric instrumentation into reg. Instruments are cached
// on the Network and on each Link so the per-packet hot path performs no
// map lookups; with a disabled registry every cached instrument is nil and
// each update is a no-op; a nil registry gets a private always-on one so
// the deprecated Stats accessor keeps counting. Bytes and drops are attributed to the host
// endpoint of host-attached links (trunk links fall to the fabric pseudo
// node); serialization stalls are attributed to the vertex whose output
// port was busy — the injecting host, or the contended switch. PFC pause
// counts and pause time follow the stall attribution.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	reg = metrics.Ensure(reg)
	n.mInjected = reg.Counter(Component, metrics.NodeFabric, "injected")
	n.mDelivered = reg.Counter(Component, metrics.NodeFabric, "delivered")
	n.mDropped = reg.Counter(Component, metrics.NodeFabric, "dropped")
	n.mDuplicated = reg.Counter(Component, metrics.NodeFabric, "duplicated")
	n.mLinkBusyNs = reg.Counter(Component, metrics.NodeFabric, "link_busy_ns")
	for _, l := range n.links {
		switch {
		case l.from.host:
			h := int(l.from.hostID)
			l.mTxBytes = reg.Counter(Component, h, "uplink_tx_bytes")
			l.mDrops = reg.Counter(Component, h, "uplink_drops")
			l.mStallNs = reg.Counter(Component, h, "uplink_stall_ns")
			l.mContended = reg.Counter(Component, h, "uplink_contended")
			l.mPauses = reg.Counter(Component, h, "uplink_pfc_pauses")
			l.mPauseNs = reg.Counter(Component, h, "uplink_pfc_pause_ns")
		case l.to.host:
			h := int(l.to.hostID)
			l.mTxBytes = reg.Counter(Component, h, "downlink_tx_bytes")
			l.mDrops = reg.Counter(Component, h, "downlink_drops")
			l.mStallNs = reg.Counter(Component, l.from.idx, "switch_stall_ns")
			l.mContended = reg.Counter(Component, l.from.idx, "switch_contended")
			l.mPauses = reg.Counter(Component, l.from.idx, "switch_pfc_pauses")
			l.mPauseNs = reg.Counter(Component, l.from.idx, "switch_pfc_pause_ns")
		default:
			l.mTxBytes = reg.Counter(Component, metrics.NodeFabric, "trunk_tx_bytes")
			l.mDrops = reg.Counter(Component, metrics.NodeFabric, "trunk_drops")
			l.mStallNs = reg.Counter(Component, l.from.idx, "switch_stall_ns")
			l.mContended = reg.Counter(Component, l.from.idx, "switch_contended")
			l.mPauses = reg.Counter(Component, l.from.idx, "switch_pfc_pauses")
			l.mPauseNs = reg.Counter(Component, l.from.idx, "switch_pfc_pause_ns")
		}
	}
}
