package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Fatal("empty Min/Max not infinite sentinels")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 5}, {100, 10}, {90, 9},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestFactor(t *testing.T) {
	if Factor(30, 15) != 2 {
		t.Fatal("Factor(30,15) != 2")
	}
	if !math.IsInf(Factor(1, 0), 1) {
		t.Fatal("Factor with zero improved not +Inf")
	}
}

func TestFormatUs(t *testing.T) {
	if got := FormatUs(12.345); got != "12.35µs" {
		t.Fatalf("FormatUs = %q", got)
	}
	if got := FormatUs(2500); got != "2.50ms" {
		t.Fatalf("FormatUs = %q", got)
	}
}

// Property: Min <= Mean <= Max for nonempty input.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return Min(xs) <= m && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
