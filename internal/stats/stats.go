// Package stats provides the small numeric helpers the experiment harness
// uses: summaries and improvement factors.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the largest element (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest element (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Factor returns baseline/improved — the paper's "factor of improvement".
// A factor above 1 means the improved variant is faster.
func Factor(baseline, improved float64) float64 {
	if improved == 0 {
		return math.Inf(1)
	}
	return baseline / improved
}

// FormatUs renders a microsecond quantity compactly.
func FormatUs(us float64) string {
	switch {
	case us >= 1000:
		return fmt.Sprintf("%.2fms", us/1000)
	default:
		return fmt.Sprintf("%.2fµs", us)
	}
}
