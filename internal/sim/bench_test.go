package sim_test

// Event-kernel micro-benchmarks. The bodies live in internal/benchkernel
// so cmd/benchjson records the same workloads into BENCH_sim.json; the
// Legacy variants run the seed's container/heap engine for comparison.
//
//	go test ./internal/sim -bench . -benchmem

import (
	"testing"

	"repro/internal/benchkernel"
)

func BenchmarkSchedule(b *testing.B)               { benchkernel.Schedule(b) }
func BenchmarkLegacySchedule(b *testing.B)         { benchkernel.LegacySchedule(b) }
func BenchmarkCancelReschedule(b *testing.B)       { benchkernel.CancelReschedule(b) }
func BenchmarkLegacyCancelReschedule(b *testing.B) { benchkernel.LegacyCancelReschedule(b) }
func BenchmarkPacketStorm(b *testing.B)            { benchkernel.PacketStorm(b) }
