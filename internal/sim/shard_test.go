package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// TestShardedRunAlignsClocks checks the coordinator's base contract: after
// Run, every engine's clock sits at the global maximum event time, so a
// serial run (one engine doing all the work) and a sharded run end at the
// same Now.
func TestShardedRunAlignsClocks(t *testing.T) {
	a, b := sim.NewEngine(), sim.NewEngine()
	var fired []int
	a.At(10, func() { fired = append(fired, 1) })
	a.At(30, func() { fired = append(fired, 2) })
	b.At(20, func() { fired = append(fired, 3) })
	sh := sim.NewSharded([]*sim.Engine{a, b}, 5, nil)
	sh.Run()
	if a.Now() != b.Now() {
		t.Fatalf("clocks diverge after Run: a=%v b=%v", a.Now(), b.Now())
	}
	if got := sh.Now(); got != 30 {
		t.Fatalf("Now() = %v, want 30", got)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
}

// TestShardedRunUntil checks bounded runs: events beyond the bound stay
// pending, clocks align exactly at the bound.
func TestShardedRunUntil(t *testing.T) {
	a, b := sim.NewEngine(), sim.NewEngine()
	ran := 0
	a.At(10, func() { ran++ })
	b.At(100, func() { ran++ })
	sh := sim.NewSharded([]*sim.Engine{a, b}, 7, nil)
	sh.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran %d events before t=50, want 1", ran)
	}
	if sh.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", sh.Now())
	}
	if sh.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", sh.Pending())
	}
	sh.Run()
	if ran != 2 || sh.Now() != 100 {
		t.Fatalf("after Run: ran=%d now=%v, want 2 events at t=100", ran, sh.Now())
	}
}

// TestShardedCrossEngineHandoff exercises the AllocKey/AtKey handoff the
// fabric uses: an event on engine a posts work to engine b one lookahead
// later via a mailbox drained at window barriers.
func TestShardedCrossEngineHandoff(t *testing.T) {
	const lookahead = sim.Time(10)
	a, b := sim.NewEngine(), sim.NewEngine()
	for _, e := range []*sim.Engine{a, b} {
		e.GrowDomains(2)
	}
	type msg struct {
		when  sim.Time
		key   uint64
		owner uint32
	}
	var box []msg
	var got []sim.Time
	// Chain: a fires at t, posts to b at t+lookahead; b records. Repeat a
	// few generations to cross several windows.
	var post func(t sim.Time, depth int)
	post = func(t sim.Time, depth int) {
		a.AtDomain(1, t, func() {
			box = append(box, msg{when: a.Now() + lookahead, key: a.AllocKey(2), owner: 2})
			if depth > 0 {
				post(a.Now()+lookahead, depth-1)
			}
		})
	}
	post(0, 3)
	drain := func() int {
		n := len(box)
		for _, m := range box {
			m := m
			b.AtKey(m.when, m.key, m.owner, func() { got = append(got, b.Now()) })
		}
		box = box[:0]
		return n
	}
	sh := sim.NewSharded([]*sim.Engine{a, b}, lookahead, drain)
	sh.Run()
	if len(got) != 4 {
		t.Fatalf("b received %d messages, want 4", len(got))
	}
	for i, at := range got {
		if want := sim.Time((i + 1) * int(lookahead)); at != want {
			t.Fatalf("message %d delivered at %v, want %v", i, at, want)
		}
	}
	st := sh.Stats()
	if st.Shards != 2 || st.CrossEvents != 4 || st.Windows == 0 {
		t.Fatalf("stats = %+v, want 2 shards, 4 cross events, >0 windows", st)
	}
	var perShard uint64
	for _, n := range st.Events {
		perShard += n
	}
	if perShard != sh.EventsFired() {
		t.Fatalf("stats events sum %d != EventsFired %d", perShard, sh.EventsFired())
	}
}

// TestShardedDeterministicTimeline runs the same two-engine program twice
// and demands identical fire sequences — the kernel-level determinism the
// cluster equivalence tests rely on.
func TestShardedDeterministicTimeline(t *testing.T) {
	type rec struct {
		when sim.Time
		key  uint64
	}
	run := func() [][]rec {
		a, b := sim.NewEngine(), sim.NewEngine()
		engines := []*sim.Engine{a, b}
		out := make([][]rec, 2)
		for i, e := range engines {
			i := i
			e.GrowDomains(4)
			e.SetFireHook(func(when sim.Time, key uint64) {
				out[i] = append(out[i], rec{when, key})
			})
		}
		for d := uint32(1); d <= 4; d++ {
			d := d
			e := engines[d%2]
			e.AtDomain(d, sim.Time(d), func() {
				e.AtDomain(d, e.Now()+3, func() {})
			})
		}
		sim.NewSharded(engines, 2, nil).Run()
		return out
	}
	x, y := run(), run()
	for s := range x {
		if len(x[s]) != len(y[s]) {
			t.Fatalf("shard %d fired %d vs %d events across runs", s, len(x[s]), len(y[s]))
		}
		for i := range x[s] {
			if x[s][i] != y[s][i] {
				t.Fatalf("shard %d event %d differs across runs: %+v vs %+v", s, i, x[s][i], y[s][i])
			}
		}
	}
}

// TestShardedSingleEngineDegenerate pins the n=1 fast path: no goroutines,
// same semantics.
func TestShardedSingleEngineDegenerate(t *testing.T) {
	e := sim.NewEngine()
	ran := false
	e.At(42, func() { ran = true })
	sh := sim.NewSharded([]*sim.Engine{e}, 3, nil)
	sh.Run()
	if !ran || e.Now() != 42 {
		t.Fatalf("degenerate run: ran=%v now=%v", ran, e.Now())
	}
}

// TestShardedValidation pins constructor contracts.
func TestShardedValidation(t *testing.T) {
	e := sim.NewEngine()
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero lookahead", func() { sim.NewSharded([]*sim.Engine{e}, 0, nil) }},
		{"no engines", func() { sim.NewSharded(nil, 5, nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
