// Package legacy preserves the seed's event engine — container/heap over
// interface-boxed entries, one heap node allocated per scheduled event —
// as a benchmark reference. The live kernel in package sim replaced it
// with a hand-rolled 4-ary heap over a recycling arena; cmd/benchjson runs
// the same workloads against both so the allocation and throughput
// improvement is a recorded number rather than a claim. Nothing outside
// benchmarks may import this package.
package legacy

import (
	"container/heap"

	"repro/internal/sim"
)

// Event is one scheduled callback.
type Event struct {
	when  sim.Time
	seq   uint64
	fn    func()
	index int
}

// When reports the event's scheduled time.
func (ev *Event) When() sim.Time { return ev.when }

// eventHeap orders events by (when, seq): time order with FIFO tie-break.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the reference discrete-event engine.
type Engine struct {
	now  sim.Time
	h    eventHeap
	seq  uint64
	fire uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() sim.Time { return e.now }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.h) }

// At schedules fn at absolute time t.
func (e *Engine) At(t sim.Time, fn func()) *Event {
	if t < e.now {
		panic("legacy: scheduling into the past")
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.h, ev)
	return ev
}

// After schedules fn at now+d.
func (e *Engine) After(d sim.Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Cancel removes a pending event; cancelling a fired event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.h, ev.index)
	ev.fn = nil
}

// Reschedule moves a pending event to a new time.
func (e *Engine) Reschedule(ev *Event, t sim.Time) {
	if ev.index < 0 {
		panic("legacy: reschedule of non-pending event")
	}
	if t < e.now {
		panic("legacy: rescheduling into the past")
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.h, ev.index)
}

// Step fires the earliest event; it reports false on an empty heap.
func (e *Engine) Step() bool {
	if len(e.h) == 0 {
		return false
	}
	ev := heap.Pop(&e.h).(*Event)
	e.now = ev.when
	e.fire++
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}
