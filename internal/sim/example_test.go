package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal simulation: two processes exchange control through a Waiter
// while the virtual clock advances only as far as scheduled work demands.
func Example() {
	eng := sim.NewEngine()
	ready := sim.NewWaiter(eng)
	done := false

	eng.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(40 * sim.Microsecond) // pretend to build something
		done = true
		ready.WakeAll()
	})
	eng.Spawn("consumer", func(p *sim.Proc) {
		for !done {
			ready.Wait(p)
		}
		fmt.Printf("consumed at %v\n", p.Now())
	})
	eng.Run()
	fmt.Printf("simulation ended at %v after %d events\n", eng.Now(), eng.EventsFired())
	// Output:
	// consumed at 40.000µs
	// simulation ended at 40.000µs after 4 events
}

// Facilities model serially-shared resources: reservations queue in FIFO
// order and completions fire as events.
func ExampleFacility() {
	eng := sim.NewEngine()
	dma := sim.NewFacility(eng, "dma")
	eng.At(0, func() {
		dma.Do(10*sim.Microsecond, func() { fmt.Println("first at", eng.Now()) })
		dma.Do(10*sim.Microsecond, func() { fmt.Println("second at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// first at 10.000µs
	// second at 20.000µs
}
