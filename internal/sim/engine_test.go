package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 10, 90, 0} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{0, 10, 10, 30, 50, 90}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 105 {
		t.Fatalf("After fired at %v, want 105", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.At(5, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	// Cancelling again must be a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.At(10, func() { at = e.Now() })
	e.At(5, func() { e.Reschedule(ev, 20) })
	e.Run()
	if at != 20 {
		t.Fatalf("rescheduled event fired at %v, want 20", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 1 {
		t.Fatalf("fired %d events by t=20, want 1", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v, want 20", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestEngineStepReportsExhaustion(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine reported work")
	}
	e.At(1, func() {})
	if !e.Step() {
		t.Fatal("Step with pending event reported no work")
	}
}

// Property: however events are scheduled, they fire in nondecreasing time
// order and the count matches.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, raw := range times {
			e.At(Time(raw), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12 * Microsecond, "12.000µs"},
		{34*Millisecond + 500*Microsecond, "34.500ms"},
		{12 * Second, "12.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestPerByte(t *testing.T) {
	if got := PerByte(4.0, 1000); got != 4000 {
		t.Errorf("PerByte(4, 1000) = %v, want 4000", got)
	}
	if got := PerByte(2.2, 10); got != 22 {
		t.Errorf("PerByte(2.2, 10) = %v, want 22", got)
	}
	if got := PerByte(0.5, 1); got != 1 { // rounds to nearest
		t.Errorf("PerByte(0.5, 1) = %v, want 1", got)
	}
}

func TestMicrosRoundTrip(t *testing.T) {
	d := Micros(7.5)
	if d != 7500*Nanosecond {
		t.Fatalf("Micros(7.5) = %v, want 7500ns", int64(d))
	}
	if d.Micros() != 7.5 {
		t.Fatalf("Micros() = %v, want 7.5", d.Micros())
	}
}
