package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// farFuture is any bound beyond every timestamp used in these tests —
// window ends at or past it mean "unbounded" for assertion purposes.
const farFuture = sim.Time(1) << 40

// bruteEIT computes shard d's earliest-input-time bound by brute force:
// the minimum, over every shard s with pending events and every directed
// path s -> ... -> d through positive pair-matrix entries, of next(s) plus
// the path's total lookahead. Paths from d itself must be non-empty cycles
// (a shard's own events can echo back through intermediates). This is the
// definition the coordinator's Floyd–Warshall closure must agree with.
func bruteEIT(pair [][]sim.Time, next []sim.Time, has []bool, d int) sim.Time {
	n := len(pair)
	best := farFuture * 16
	visited := make([]bool, n)
	var walk func(at int, cost sim.Time, from int)
	walk = func(at int, cost sim.Time, from int) {
		if at == d && (at != from || cost > 0) {
			if b := next[from] + cost; b < best {
				best = b
			}
			return
		}
		for to := 0; to < n; to++ {
			if to == at || pair[at][to] == 0 || visited[to] {
				continue
			}
			if to != d {
				visited[to] = true
			}
			walk(to, cost+pair[at][to], from)
			if to != d {
				visited[to] = false
			}
		}
	}
	for s := 0; s < n; s++ {
		if !has[s] {
			continue
		}
		visited[s] = s != d
		walk(s, 0, s)
		visited[s] = false
	}
	return best
}

// TestWindowEndsMatchEarliestInputBound checks the tentpole safety
// invariant directly: for a mesh of asymmetric pair lookaheads and a
// variety of pending-event placements, every shard's adaptive window end
// equals the brute-force earliest-input-time bound — stretching past the
// lockstep bound is exactly as far as conservatism allows, never further.
func TestWindowEndsMatchEarliestInputBound(t *testing.T) {
	// 0 entries are "no direct interaction": shard 0 reaches shard 3 only
	// through 1 or 2, so the transitive closure is load-bearing here.
	pair := [][]sim.Time{
		{0, 5, 40, 0},
		{9, 0, 11, 30},
		{25, 3, 0, 8},
		{0, 50, 7, 0},
	}
	cases := [][]int64{ // pending event time per shard, -1 = empty queue
		{0, 0, 0, 0},
		{0, 100, 200, 300},
		{1000, 3, 1000, 1000},
		{-1, 7, -1, -1},
		{-1, -1, 12, 900},
		{5, -1, -1, -1},
	}
	for ci, pend := range cases {
		engines := make([]*sim.Engine, len(pair))
		next := make([]sim.Time, len(pair))
		has := make([]bool, len(pair))
		for i := range engines {
			engines[i] = sim.NewEngine()
			if pend[i] >= 0 {
				engines[i].At(sim.Time(pend[i]), func() {})
				next[i], has[i] = sim.Time(pend[i]), true
			}
		}
		sh := sim.NewShardedMatrix(engines, pair, nil)
		ends := sh.WindowEnds()
		for d := range ends {
			want := bruteEIT(pair, next, has, d)
			got := ends[d]
			if want >= farFuture {
				if got < farFuture {
					t.Fatalf("case %d shard %d: end %v bounded, want unbounded", ci, d, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("case %d shard %d: window end %v, brute-force EIT bound %v", ci, d, got, want)
			}
			// The safety direction spelled out: the window may not extend to
			// or past the earliest possible cross-shard input.
			if has[d] && next[d] < got && got > want {
				t.Fatalf("case %d shard %d: stretched window end %v violates EIT bound %v", ci, d, got, want)
			}
		}
	}
}

// TestShardedMatrixTransitiveClosure pins one closure by hand: with no
// direct 0->2 interaction, shard 2's bound from shard 0 is the two-hop
// path through shard 1.
func TestShardedMatrixTransitiveClosure(t *testing.T) {
	pair := [][]sim.Time{
		{0, 5, 0},
		{0, 0, 7},
		{20, 0, 0},
	}
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine(), sim.NewEngine()}
	engines[0].At(100, func() {})
	ends := sim.NewShardedMatrix(engines, pair, nil).WindowEnds()
	if ends[1] != 105 {
		t.Fatalf("end(1) = %v, want 105 (direct 0->1)", ends[1])
	}
	if ends[2] != 112 {
		t.Fatalf("end(2) = %v, want 112 (0->1->2 closure)", ends[2])
	}
	// Shard 0's own events can echo back via 0->1->2->0 (5+7+20).
	if ends[0] != 132 {
		t.Fatalf("end(0) = %v, want 132 (self-echo cycle)", ends[0])
	}
}

// TestShardedWindowStretching checks the adaptive coordinator actually
// stretches: a sparse event chain on one shard of a two-shard pair runs in
// far fewer windows than the lockstep rule would take, and the stats
// record the stretched / inline windows.
func TestShardedWindowStretching(t *testing.T) {
	const look = sim.Time(10)
	a, b := sim.NewEngine(), sim.NewEngine()
	// 8 events, 1000 time units apart; lockstep at width 10 would need
	// ~100 windows per gap just to creep across it.
	for i := 0; i < 8; i++ {
		a.At(sim.Time(i)*1000, func() {})
	}
	sh := sim.NewSharded([]*sim.Engine{a, b}, look, nil)
	sh.Run()
	st := sh.Stats()
	if st.Windows > 16 {
		t.Fatalf("sparse chain took %d windows; adaptive stretching should need ~8", st.Windows)
	}
	if st.Inline == 0 {
		t.Fatalf("stats = %+v: single-busy-shard windows should run inline", st)
	}
	if st.EmptyDrains == 0 {
		// No pending probe is installed, but drain is nil so every barrier
		// drain is a no-op returning 0 — EmptyDrains only counts probe
		// skips. Install a probe and re-check the skip path.
		sh2 := sim.NewSharded([]*sim.Engine{sim.NewEngine(), sim.NewEngine()}, look, func() int { return 0 })
		sh2.SetPending(func() int { return 0 })
		sh2.Engines()[0].At(5, func() {})
		sh2.Run()
		if got := sh2.Stats().EmptyDrains; got == 0 {
			t.Fatalf("pending probe reported 0 but no drain pass was skipped")
		}
	}
}

// TestShardedMatrixValidation pins the matrix constructor's contracts.
func TestShardedMatrixValidation(t *testing.T) {
	mk := func() []*sim.Engine { return []*sim.Engine{sim.NewEngine(), sim.NewEngine()} }
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"negative entry", func() {
			sim.NewShardedMatrix(mk(), [][]sim.Time{{0, -1}, {1, 0}}, nil)
		}},
		{"row count mismatch", func() {
			sim.NewShardedMatrix(mk(), [][]sim.Time{{0, 1}}, nil)
		}},
		{"row width mismatch", func() {
			sim.NewShardedMatrix(mk(), [][]sim.Time{{0, 1}, {1}}, nil)
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
	// Fully disconnected pairs are legal: windows are unbounded and each
	// shard runs to quiescence independently — concurrently, so the
	// counters are per-shard and only summed after the run joins.
	engines := mk()
	var ran [2]int
	engines[0].At(10, func() { ran[0]++ })
	engines[1].At(20, func() { ran[1]++ })
	sh := sim.NewShardedMatrix(engines, [][]sim.Time{{0, 0}, {0, 0}}, nil)
	sh.Run()
	if ran[0]+ran[1] != 2 || sh.Now() != 20 {
		t.Fatalf("disconnected run: ran=%d now=%v, want 2 events, now=20", ran[0]+ran[1], sh.Now())
	}
}
