package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// chooserWorkload schedules a small cross-domain workload with plenty of
// same-timestamp ties: three domains each schedule a chain of events where
// every firing schedules a follow-up at a timestamp shared with the other
// domains. Returns the fired (when, key) timeline.
func chooserWorkload(t *testing.T, choose func(n int) int) []string {
	t.Helper()
	e := NewEngine()
	e.GrowDomains(3)
	var timeline []string
	e.SetFireHook(func(when Time, key uint64) {
		timeline = append(timeline, fmt.Sprintf("%d/%d:%d", when, key>>(64-domainBits), key&(1<<(64-domainBits)-1)))
	})
	if choose != nil {
		e.SetChooser(choose)
	}
	var step func(d uint32, round int)
	step = func(d uint32, round int) {
		if round >= 4 {
			return
		}
		// All domains land on the same timestamps: 10, 20, 30, 40.
		e.AtDomain(d, Time(10*(round+1)), func() { step(d, round+1) })
	}
	for d := uint32(1); d <= 3; d++ {
		e.WithDomain(d, func() { step(d, 0) })
	}
	e.Run()
	return timeline
}

// TestChooserDefaultEquivalent pins that a chooser returning 0 reproduces
// the uncontrolled FIFO timeline bit for bit — the property replay relies on.
func TestChooserDefaultEquivalent(t *testing.T) {
	base := chooserWorkload(t, nil)
	zero := chooserWorkload(t, func(n int) int { return 0 })
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("chooser(0) timeline differs from default:\nbase: %v\nzero: %v", base, zero)
	}
	if len(base) != 12 {
		t.Fatalf("expected 12 fired events, got %d", len(base))
	}
}

// TestChooserPermutesCrossDomainTies pins that a non-default pick reorders
// genuinely concurrent (cross-domain, same-timestamp) events, and that the
// chooser is consulted exactly at the tie points.
func TestChooserPermutesCrossDomainTies(t *testing.T) {
	calls := 0
	perm := chooserWorkload(t, func(n int) int {
		calls++
		return n - 1 // always fire the highest-key candidate
	})
	base := chooserWorkload(t, nil)
	if reflect.DeepEqual(base, perm) {
		t.Fatalf("chooser picking last candidate produced the default timeline")
	}
	if calls == 0 {
		t.Fatalf("chooser was never consulted despite cross-domain ties")
	}
	// Same multiset of events either way: permutation, not mutation.
	seen := map[string]int{}
	for _, s := range base {
		seen[s]++
	}
	for _, s := range perm {
		seen[s]--
	}
	for s, c := range seen {
		if c != 0 {
			t.Fatalf("event %s count differs by %d between schedules", s, c)
		}
	}
}

// TestChooserPreservesDomainFIFO pins the soundness constraint: two events
// of the SAME domain at the same timestamp are never both enabled, so no
// chooser can reorder an entity against itself.
func TestChooserPreservesDomainFIFO(t *testing.T) {
	e := NewEngine()
	e.GrowDomains(2)
	var order []int
	// Domain 1 schedules events A then B at the same timestamp; domain 2
	// one event C at that timestamp. The chooser always picks the last
	// candidate, which must never be B-before-A.
	e.SetChooser(func(n int) int { return n - 1 })
	e.WithDomain(1, func() {
		e.At(5, func() { order = append(order, 1) })
		e.At(5, func() { order = append(order, 2) })
	})
	e.WithDomain(2, func() {
		e.At(5, func() { order = append(order, 3) })
	})
	e.Run()
	if len(order) != 3 {
		t.Fatalf("fired %d events, want 3", len(order))
	}
	posA, posB := -1, -1
	for i, v := range order {
		switch v {
		case 1:
			posA = i
		case 2:
			posB = i
		}
	}
	if posA > posB {
		t.Fatalf("domain-internal FIFO violated: order %v fires B before A", order)
	}
	if order[0] != 3 {
		t.Fatalf("chooser pick ignored: order %v, want domain 2 event first", order)
	}
}

// TestChooserOutOfRangeClamped pins that wild chooser returns are reduced
// into range rather than panicking — schedules encode raw uint32 picks.
func TestChooserOutOfRangeClamped(t *testing.T) {
	for _, wild := range []int{7, 1 << 20, -3} {
		e := NewEngine()
		e.GrowDomains(2)
		fired := 0
		e.SetChooser(func(n int) int { return wild })
		e.WithDomain(1, func() { e.At(5, func() { fired++ }) })
		e.WithDomain(2, func() { e.At(5, func() { fired++ }) })
		e.Run()
		if fired != 2 {
			t.Fatalf("chooser return %d: fired %d events, want 2", wild, fired)
		}
	}
}
