package sim

import (
	"testing"
)

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = p.Now()
	})
	e.Run()
	if wake != 100 {
		t.Fatalf("woke at %v, want 100", wake)
	}
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("%d live procs after completion, want 0", n)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	if len(first) != 9 {
		t.Fatalf("got %d entries, want 9", len(first))
	}
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestWaiterWakeOne(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	var order []string
	for _, name := range []string{"p1", "p2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			w.Wait(p)
			order = append(order, name)
		})
	}
	e.At(50, func() { w.WakeOne() })
	e.At(60, func() { w.WakeOne() })
	e.Run()
	if len(order) != 2 || order[0] != "p1" || order[1] != "p2" {
		t.Fatalf("wake order %v, want [p1 p2]", order)
	}
	e.Kill()
}

func TestWaiterWakeAll(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("p", func(p *Proc) {
			w.Wait(p)
			woken++
		})
	}
	e.At(10, func() { w.WakeAll() })
	e.Run()
	if woken != 5 {
		t.Fatalf("woke %d, want 5", woken)
	}
}

func TestWaiterPredicateLoop(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	ready := false
	var sawReadyAt Time
	e.Spawn("consumer", func(p *Proc) {
		for !ready {
			w.Wait(p)
		}
		sawReadyAt = p.Now()
	})
	// Spurious wake at t=10 with predicate still false.
	e.At(10, func() { w.WakeAll() })
	e.At(20, func() { ready = true; w.WakeAll() })
	e.Run()
	if sawReadyAt != 20 {
		t.Fatalf("consumer proceeded at %v, want 20", sawReadyAt)
	}
}

func TestWaitTimeoutTimesOut(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	var woken bool
	var at Time
	e.Spawn("p", func(p *Proc) {
		woken = w.WaitTimeout(p, 100)
		at = p.Now()
	})
	e.Run()
	if woken {
		t.Fatal("reported woken, want timeout")
	}
	if at != 100 {
		t.Fatalf("resumed at %v, want 100", at)
	}
	if w.Waiting() != 0 {
		t.Fatalf("%d still queued after timeout, want 0", w.Waiting())
	}
}

func TestWaitTimeoutWoken(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	var woken bool
	var at Time
	e.Spawn("p", func(p *Proc) {
		woken = w.WaitTimeout(p, 100)
		at = p.Now()
	})
	e.At(30, func() { w.WakeOne() })
	e.Run()
	if !woken {
		t.Fatal("reported timeout, want woken")
	}
	if at != 30 {
		t.Fatalf("resumed at %v, want 30", at)
	}
}

func TestKillReleasesParkedProcs(t *testing.T) {
	e := NewEngine()
	w := NewWaiter(e)
	finished := false
	e.Spawn("stuck", func(p *Proc) {
		w.Wait(p)
		finished = true // must never run
	})
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want 1", e.LiveProcs())
	}
	e.Kill()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after Kill = %d, want 0", e.LiveProcs())
	}
	if finished {
		t.Fatal("killed process ran past its wait")
	}
}

func TestComputeAccountsBusyTime(t *testing.T) {
	e := NewEngine()
	var p0 *Proc
	e.Spawn("worker", func(p *Proc) {
		p0 = p
		p.Compute(40)
		p.Sleep(60)
		p.Compute(10)
	})
	e.Run()
	if p0.BusyTime() != 50 {
		t.Fatalf("busy time %v, want 50", p0.BusyTime())
	}
}

func TestBlockingCallOutsideProcPanics(t *testing.T) {
	e := NewEngine()
	var p0 *Proc
	e.Spawn("p", func(p *Proc) {
		p0 = p
		p.Sleep(10)
	})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("Sleep from outside process context did not panic")
		}
	}()
	p0.Sleep(1)
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childRan != 15 {
		t.Fatalf("child finished at %v, want 15", childRan)
	}
}

func TestStaleWakeAfterTimeoutIsDropped(t *testing.T) {
	// A WakeOne scheduled at the same instant the timeout fires must not
	// resume the process twice.
	e := NewEngine()
	w := NewWaiter(e)
	resumes := 0
	e.Spawn("p", func(p *Proc) {
		w.WaitTimeout(p, 50)
		resumes++
		p.Sleep(100) // park again; a stray resume here would corrupt timing
		resumes++
	})
	e.At(50, func() { w.WakeAll() })
	e.Run()
	if resumes != 2 {
		t.Fatalf("process resumed %d times, want 2", resumes)
	}
}

func TestFacilityFIFO(t *testing.T) {
	e := NewEngine()
	f := NewFacility(e, "dma")
	var done []Time
	e.At(0, func() {
		f.Do(10, func() { done = append(done, e.Now()) })
		f.Do(10, func() { done = append(done, e.Now()) })
	})
	e.At(5, func() {
		f.Do(10, func() { done = append(done, e.Now()) })
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if f.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", f.Requests())
	}
	if f.BusyTime() != 30 {
		t.Fatalf("busy = %v, want 30", f.BusyTime())
	}
}

func TestFacilityIdleGap(t *testing.T) {
	e := NewEngine()
	f := NewFacility(e, "link")
	var second Time
	e.At(0, func() { f.Do(10, func() {}) })
	e.At(50, func() { f.Do(10, func() { second = e.Now() }) })
	e.Run()
	if second != 60 {
		t.Fatalf("second completion at %v, want 60 (idle gap not preserved)", second)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Intn(1<<30) != c.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSymmetricDuration(t *testing.T) {
	g := NewRNG(7)
	const max = Time(1000)
	var lo, hi bool
	for i := 0; i < 10000; i++ {
		v := g.SymmetricDuration(max)
		if v < -max/2 || v >= max/2 {
			t.Fatalf("value %d outside [-%d, %d)", v, max/2, max/2)
		}
		if v < 0 {
			lo = true
		}
		if v > 0 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("distribution is one-sided")
	}
	if g.SymmetricDuration(0) != 0 {
		t.Fatal("zero max must give zero skew")
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}
