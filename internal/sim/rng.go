package sim

import "math/rand"

// RNG is the simulation's single source of randomness. All stochastic
// behaviour (packet loss, process skew, workload generation) draws from
// one seeded stream so a run is reproducible from its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Duration returns a uniform Time in [0, d).
func (g *RNG) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(g.r.Int63n(int64(d)))
}

// SymmetricDuration returns a uniform Time in [-d/2, +d/2), the paper's
// skew distribution ("a random number between the negative half and the
// positive half of a maximum value").
func (g *RNG) SymmetricDuration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(g.r.Int63n(int64(d))) - d/2
}

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fill fills b with pseudo-random bytes (for payload generation in tests).
func (g *RNG) Fill(b []byte) {
	// rand.Rand.Read never fails.
	g.r.Read(b)
}
