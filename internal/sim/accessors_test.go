package sim

import "testing"

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev := e.At(42, func() {})
	if ev.When() != 42 {
		t.Fatalf("When = %v", ev.When())
	}
	if !ev.Pending() {
		t.Fatal("fresh event not pending")
	}
	e.Run()
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	if e.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d", e.EventsFired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(50, func() { fired++ })
	e.At(150, func() { fired++ })
	e.RunFor(100)
	if fired != 1 || e.Now() != 100 {
		t.Fatalf("fired=%d now=%v after RunFor(100)", fired, e.Now())
	}
	e.RunFor(100)
	if fired != 2 || e.Now() != 200 {
		t.Fatalf("fired=%d now=%v after second RunFor", fired, e.Now())
	}
}

func TestFacilityAccessors(t *testing.T) {
	e := NewEngine()
	f := NewFacility(e, "dma0")
	if f.Name() != "dma0" {
		t.Fatalf("Name = %q", f.Name())
	}
	f.Do(100, func() {})
	if f.FreeAt() != 100 {
		t.Fatalf("FreeAt = %v", f.FreeAt())
	}
	if u := f.Utilization(); u != 0 {
		t.Fatalf("utilization at t=0 should be 0, got %v", u)
	}
	e.Run()
	e.RunUntil(200)
	// 100 busy out of 200 elapsed.
	if u := f.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestFacilityUtilizationExcludesFutureBookings(t *testing.T) {
	e := NewEngine()
	f := NewFacility(e, "x")
	e.At(10, func() { f.Reserve(1000) })
	e.RunUntil(20)
	if u := f.Utilization(); u > 0.51 {
		t.Fatalf("utilization %v counts future booked time", u)
	}
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine()
	var p0 *Proc
	e.Spawn("worker", func(p *Proc) {
		p0 = p
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine mismatch")
		}
		if p.Done() {
			t.Error("running proc reports done")
		}
		p.Sleep(10)
	})
	e.Run()
	if !p0.Done() {
		t.Fatal("finished proc not done")
	}
}

func TestKilledErrorMessage(t *testing.T) {
	err := killedError{name: "proc7"}
	if err.Error() != "sim: process killed: proc7" {
		t.Fatalf("message %q", err.Error())
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		if v := g.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := g.Int63n(50); v < 0 || v >= 50 {
			t.Fatalf("Int63n out of range: %v", v)
		}
		if v := g.Duration(100); v < 0 || v >= 100 {
			t.Fatalf("Duration out of range: %v", v)
		}
	}
	if g.Duration(0) != 0 {
		t.Fatal("Duration(0) != 0")
	}
	p := g.Perm(6)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Perm not a permutation: %v", p)
	}
	b := make([]byte, 64)
	g.Fill(b)
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Fill left the buffer zeroed")
	}
}

func TestNegativeSleepIsImmediate(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("negative sleep resumed at %v", at)
	}
}

func TestReschedulePanicsOnFiredEvent(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("rescheduling a fired event did not panic")
		}
	}()
	e.Reschedule(ev, 10)
}

func TestKillFromInsideProcPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Kill()
	})
	e.Run()
	if !panicked {
		t.Fatal("Kill from inside a process did not panic")
	}
}
