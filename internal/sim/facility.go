package sim

// Facility models a resource that serves requests one at a time in FIFO
// order — a DMA engine, a NIC processor, a link transmitter. Reservations
// are analytic: Reserve returns when service would begin given the queue
// ahead, without creating events; callers schedule their own completion.
type Facility struct {
	eng    *Engine
	name   string
	freeAt Time
	// accounting
	busy     Time
	requests uint64
}

// NewFacility returns a facility bound to e. The name appears in
// diagnostics only.
func NewFacility(e *Engine, name string) *Facility {
	return &Facility{eng: e, name: name}
}

// Name reports the facility's diagnostic name.
func (f *Facility) Name() string { return f.name }

// Rebind moves the facility onto another engine. Shard partitioning uses it
// to hand each boundary resource to the one engine whose events reserve it;
// rebinding a facility with reservations in flight would corrupt its
// accounting, so it must happen before the simulation runs.
func (f *Facility) Rebind(e *Engine) {
	if f.freeAt != 0 || f.requests != 0 {
		panic("sim: Rebind of a facility already in use")
	}
	f.eng = e
}

// Reserve books the facility for a service time of d, returning the time
// service starts (>= now). The facility is busy until start+d.
func (f *Facility) Reserve(d Time) (start Time) {
	if d < 0 {
		d = 0
	}
	start = f.eng.now
	if f.freeAt > start {
		start = f.freeAt
	}
	f.freeAt = start + d
	f.busy += d
	f.requests++
	return start
}

// Do reserves d of service and schedules fn at completion time,
// returning the completion time.
func (f *Facility) Do(d Time, fn func()) Time {
	start := f.Reserve(d)
	end := start + d
	f.eng.At(end, fn)
	return end
}

// FreeAt reports the time at which all currently-reserved work completes.
func (f *Facility) FreeAt() Time { return f.freeAt }

// BusyTime reports the cumulative service time reserved so far.
func (f *Facility) BusyTime() Time { return f.busy }

// Requests reports how many reservations have been made.
func (f *Facility) Requests() uint64 { return f.requests }

// Utilization reports busy time divided by elapsed time, 0 at time zero.
func (f *Facility) Utilization() float64 {
	if f.eng.now == 0 {
		return 0
	}
	b := f.busy
	if f.freeAt > f.eng.now {
		b -= f.freeAt - f.eng.now // don't count booked-but-future time
	}
	return float64(b) / float64(f.eng.now)
}
