package sim

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Sharded runs several engines under adaptive conservative parallel
// discrete-event synchronization. The model partitions the simulated system
// into shards — each engine owns a disjoint set of entities and every event
// touching an entity is scheduled on its owner's engine — and advances the
// engines in synchronization windows. Cross-shard events queue in mailboxes
// owned by the caller and are delivered by the drain callback at the
// barrier between windows.
//
// Window sizing is per shard, from a per-shard-pair lookahead matrix
// L[s][d] — the minimum latency of any direct interaction from shard s to
// shard d (for a network fabric: the minimum latency of a cut link s→d).
// The coordinator closes the matrix transitively (shortest paths, plus the
// shortest cycle back through each shard), so shard d's window end is its
// earliest input time:
//
//	end(d) = min( min_{s≠d} next(s) + dist(s→d),  next(d) + cycle(d) )
//
// where next(s) is shard s's earliest pending timestamp. Any event that can
// ever reach d originates from some event pending now in some shard s and
// pays at least dist(s→d) of link latency on the way — including echoes of
// d's own events, which pay at least cycle(d). Compared to the lockstep
// rule (every shard stops at the global minimum plus the global minimum cut
// latency), windows stretch automatically whenever the shards that could
// feed a shard are idle or far in the future, and shards with nothing to
// fire inside their window skip the dispatch entirely; a window with
// exactly one busy shard runs inline on the coordinator with no barrier at
// all.
//
// Determinism: events carry (time, domain-keyed sequence) keys assigned at
// their logical scheduling point (AllocKey on the source engine for
// cross-shard handoffs), so the union of all shards' timelines is exactly
// the serial engine's timeline — bit-identical, not merely equivalent.
// Window placement affects only when mailboxes drain, never the order
// events fire in.
type Sharded struct {
	engines   []*Engine
	lookahead Time // minimum finite pair lookahead (the lockstep window width)
	// dist[s][d] is the transitive earliest-input bound from s to d
	// (shortest path over the pair matrix); cyc[d] is the shortest cycle
	// d→…→d. Both saturate at infTime for unreachable pairs.
	dist [][]Time
	cyc  []Time

	// drain delivers every queued cross-shard event into its destination
	// engine (via AtKey) and reports how many it delivered. It runs at
	// window barriers only, when no engine goroutine is active. pending,
	// when non-nil, reports how many cross-shard events are queued without
	// delivering them, letting the coordinator skip empty drain passes.
	drain   func() int
	pending func() int

	windows     uint64
	crossEvents uint64
	stretched   uint64 // windows where some busy shard ran past the lockstep bound
	inlineWins  uint64 // single-busy-shard windows run without a barrier
	emptyDrains uint64 // drain passes skipped because no cross events were queued

	// Per-window scratch, reused so steady-state coordination allocates
	// nothing.
	next []Time
	has  []bool
	ends []Time
	busy []bool

	// Wall-clock accounting: per-shard busy time inside windows and the
	// coordinator's total elapsed window time (per-shard wait = wall -
	// busy). Cheap enough to keep always on now that adaptive windows make
	// barriers rare; it never influences simulation results.
	busyNs []int64
	wallNs int64
}

// infTime is the saturation value for unreachable shard pairs — far beyond
// any virtual timestamp, low enough that sums cannot overflow.
const infTime = Time(math.MaxInt64 >> 2)

func satAdd(a, b Time) Time {
	if a >= infTime || b >= infTime {
		return infTime
	}
	if c := a + b; c < infTime {
		return c
	}
	return infTime
}

// NewSharded assembles a coordinator over the given engines with a uniform
// lookahead: every directed shard pair is assumed able to interact with the
// given minimum latency. lookahead must be positive: it is the minimum
// synchronization window width, and a non-positive width means the
// partition has a zero-latency cross-shard interaction, which conservative
// synchronization cannot run in parallel. drain may be nil when the caller
// guarantees no cross-shard events exist (single shard).
func NewSharded(engines []*Engine, lookahead Time, drain func() int) *Sharded {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive lookahead %v", lookahead))
	}
	n := len(engines)
	pair := make([][]Time, n)
	for s := range pair {
		pair[s] = make([]Time, n)
		for d := range pair[s] {
			if s != d {
				pair[s][d] = lookahead
			}
		}
	}
	return NewShardedMatrix(engines, pair, drain)
}

// NewShardedMatrix assembles a coordinator over the given engines with a
// per-shard-pair lookahead matrix: pair[s][d] is the minimum latency of any
// direct cross-shard interaction from shard s to shard d, and 0 means no
// direct interaction exists (the pair's effective lookahead then falls out
// of the transitive closure, or is unbounded when no path exists at all).
// Negative entries panic. drain may be nil when the caller guarantees no
// cross-shard events exist.
func NewShardedMatrix(engines []*Engine, pair [][]Time, drain func() int) *Sharded {
	n := len(engines)
	if n == 0 {
		panic("sim: NewSharded with no engines")
	}
	if len(pair) != n {
		panic(fmt.Sprintf("sim: lookahead matrix has %d rows for %d engines", len(pair), n))
	}
	if drain == nil {
		drain = func() int { return 0 }
	}
	dist := make([][]Time, n)
	for s := range dist {
		if len(pair[s]) != n {
			panic(fmt.Sprintf("sim: lookahead matrix row %d has %d entries for %d engines", s, len(pair[s]), n))
		}
		dist[s] = make([]Time, n)
		for d, l := range pair[s] {
			switch {
			case l < 0:
				panic(fmt.Sprintf("sim: negative pair lookahead %v for shards %d->%d", l, s, d))
			case s == d || l == 0:
				dist[s][d] = infTime
			default:
				dist[s][d] = l
			}
		}
		dist[s][s] = 0
	}
	// Transitive closure (Floyd–Warshall): an event can reach shard d from
	// shard s through intermediates, paying every hop's lookahead on the
	// way. Shard counts are small, so the cubic pass is negligible.
	for k := 0; k < n; k++ {
		for s := 0; s < n; s++ {
			if dist[s][k] >= infTime {
				continue
			}
			for d := 0; d < n; d++ {
				if t := satAdd(dist[s][k], dist[k][d]); t < dist[s][d] {
					dist[s][d] = t
				}
			}
		}
	}
	cyc := make([]Time, n)
	look := infTime
	for d := range cyc {
		cyc[d] = infTime
		for m := 0; m < n; m++ {
			if m == d {
				continue
			}
			if t := satAdd(dist[d][m], dist[m][d]); t < cyc[d] {
				cyc[d] = t
			}
			if dist[d][m] > 0 && dist[d][m] < look {
				look = dist[d][m]
			}
		}
		dist[d][d] = infTime // self-influence goes through cyc, not dist
	}
	if n > 1 && look <= 0 {
		panic(fmt.Sprintf("sim: non-positive effective lookahead %v", look))
	}
	if look >= infTime {
		// Fully independent shards (or a single engine): any positive
		// window width works; windows are unbounded anyway.
		look = 1
	}
	return &Sharded{
		engines:   engines,
		lookahead: look,
		dist:      dist,
		cyc:       cyc,
		drain:     drain,
		next:      make([]Time, n),
		has:       make([]bool, n),
		ends:      make([]Time, n),
		busy:      make([]bool, n),
		busyNs:    make([]int64, n),
	}
}

// SetPending installs a cheap probe for the number of queued cross-shard
// events. When it reports zero at a barrier the coordinator skips the drain
// pass entirely.
func (s *Sharded) SetPending(fn func() int) { s.pending = fn }

// Engines exposes the per-shard engines (index = shard).
func (s *Sharded) Engines() []*Engine { return s.engines }

// Lookahead reports the minimum synchronization window width (the smallest
// finite pair lookahead after transitive closure).
func (s *Sharded) Lookahead() Time { return s.lookahead }

// EnableWallStats is a no-op kept for compatibility: adaptive windows made
// barriers rare enough that wall-clock busy/wait accounting is always on.
//
// Deprecated: wall statistics are collected unconditionally.
func (s *Sharded) EnableWallStats() {}

// windowEnds computes each shard's conservative window end from the
// engines' earliest pending timestamps: the earliest time any cross-shard
// input could still arrive at the shard, per the transitively-closed
// lookahead matrix. It returns the global minimum pending time and whether
// any engine has events at all. Exported indirectly for tests via
// WindowEnds.
func (s *Sharded) windowEnds() (minT Time, any bool) {
	for i, e := range s.engines {
		s.next[i], s.has[i] = e.NextEventTime()
		if s.has[i] && (!any || s.next[i] < minT) {
			minT, any = s.next[i], true
		}
	}
	if !any {
		return 0, false
	}
	for d := range s.engines {
		end := infTime
		for m := range s.engines {
			if !s.has[m] {
				continue
			}
			var bound Time
			if m == d {
				bound = satAdd(s.next[m], s.cyc[m])
			} else {
				bound = satAdd(s.next[m], s.dist[m][d])
			}
			if bound < end {
				end = bound
			}
		}
		s.ends[d] = end
	}
	return minT, true
}

// WindowEnds exposes one window-end computation for tests: given the
// coordinator's engines' current queues, it returns each shard's window end
// (the conservative earliest-input-time bound). The slice is reused across
// calls.
func (s *Sharded) WindowEnds() []Time {
	if _, any := s.windowEnds(); !any {
		for i := range s.ends {
			s.ends[i] = infTime
		}
	}
	return s.ends
}

// Run fires events until the whole system is quiescent — every engine's
// queue empty and every mailbox drained — then aligns all clocks to the
// global maximum, exactly where a serial engine's clock would rest after
// Run.
func (s *Sharded) Run() {
	s.runWindows(0, false)
	target := Time(0)
	for _, e := range s.engines {
		if e.now > target {
			target = e.now
		}
	}
	for _, e := range s.engines {
		e.RunUntil(target)
	}
}

// RunUntil fires every event with timestamp <= t, then aligns all clocks
// to t — the sharded equivalent of Engine.RunUntil.
func (s *Sharded) RunUntil(t Time) {
	s.runWindows(t, true)
	for _, e := range s.engines {
		e.RunUntil(t)
	}
}

// drainBarrier runs the mailbox drain unless the pending probe reports
// there is nothing queued.
func (s *Sharded) drainBarrier() {
	if s.pending != nil && s.pending() == 0 {
		s.emptyDrains++
		return
	}
	s.crossEvents += uint64(s.drain())
}

// runWindows advances all shards window by window; with bounded set it
// stops once no pending event is <= limit.
func (s *Sharded) runWindows(limit Time, bounded bool) {
	n := len(s.engines)
	if n == 1 {
		// Degenerate partition: no parallelism, and windows are unbounded
		// (nothing can feed the lone shard but its own drain callback).
		e := s.engines[0]
		for {
			s.drainBarrier()
			t, ok := e.NextEventTime()
			if !ok || (bounded && t > limit) {
				return
			}
			end := infTime
			if bounded {
				end = limit + 1
			}
			t0 := time.Now()
			e.RunBefore(end)
			s.busyNs[0] += time.Since(t0).Nanoseconds()
			s.windows++
		}
	}

	work := make([]chan Time, n)
	for i := range work {
		work[i] = make(chan Time)
	}
	done := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i, e := range s.engines {
		go func(i int, e *Engine) {
			defer wg.Done()
			for end := range work[i] {
				t0 := time.Now()
				e.RunBefore(end)
				s.busyNs[i] += time.Since(t0).Nanoseconds()
				done <- i
			}
		}(i, e)
	}

	for {
		s.drainBarrier()
		minT, any := s.windowEnds()
		if !any || (bounded && minT > limit) {
			break
		}
		lockstep := minT + s.lookahead // the non-adaptive window bound
		dispatched := 0
		lone := -1
		stretchedThis := false
		for d := range s.engines {
			end := s.ends[d]
			if bounded && end > limit+1 {
				// Clamp so events at exactly limit still fire but nothing
				// beyond it does; Time is integral, so limit+1 is the
				// smallest exclusive bound that includes limit.
				end = limit + 1
			}
			s.ends[d] = end
			s.busy[d] = s.has[d] && s.next[d] < end
			if s.busy[d] {
				dispatched++
				lone = d
				if end > lockstep {
					stretchedThis = true
				}
			}
		}
		if stretchedThis {
			s.stretched++
		}
		t0 := time.Now()
		if dispatched == 1 {
			// One busy shard: no barrier needed — its window cannot observe
			// any other shard, so run it on the coordinator and skip the
			// channel round trip entirely.
			e := s.engines[lone]
			e.RunBefore(s.ends[lone])
			s.busyNs[lone] += time.Since(t0).Nanoseconds()
			s.inlineWins++
		} else {
			for d := range s.engines {
				if s.busy[d] {
					work[d] <- s.ends[d]
				}
			}
			for i := 0; i < dispatched; i++ {
				<-done
			}
		}
		s.wallNs += time.Since(t0).Nanoseconds()
		s.windows++
	}

	for i := range work {
		close(work[i])
	}
	wg.Wait()
}

// Now reports the common clock. Outside windows all engines agree (Run and
// RunUntil align them); it panics if called while they disagree, which
// would mean a driver is reading time mid-window from outside the
// simulation.
func (s *Sharded) Now() Time {
	t := s.engines[0].now
	for _, e := range s.engines[1:] {
		if e.now != t {
			panic("sim: Sharded.Now with unaligned shard clocks")
		}
	}
	return t
}

// Kill unwinds the live processes of every shard.
func (s *Sharded) Kill() {
	for _, e := range s.engines {
		e.Kill()
	}
}

// LiveProcs totals unfinished processes across shards.
func (s *Sharded) LiveProcs() int {
	n := 0
	for _, e := range s.engines {
		n += e.LiveProcs()
	}
	return n
}

// Pending totals scheduled, not-yet-fired events across shards.
func (s *Sharded) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// EventsFired totals fired events across shards.
func (s *Sharded) EventsFired() uint64 {
	n := uint64(0)
	for _, e := range s.engines {
		n += e.EventsFired()
	}
	return n
}

// ShardStats summarizes one coordinator's execution.
type ShardStats struct {
	Shards      int      // number of shards
	LookaheadNs int64    // minimum window width (smallest finite pair lookahead)
	Windows     uint64   // synchronization windows executed
	CrossEvents uint64   // events delivered across shard boundaries
	Stretched   uint64   // windows where a busy shard ran past the lockstep bound
	Inline      uint64   // single-busy-shard windows run without a barrier
	EmptyDrains uint64   // drain passes skipped (no cross events queued)
	Events      []uint64 // per-shard fired-event counts
	// BusyNs and WaitNs are wall-clock (non-deterministic): per-shard time
	// spent executing windows, and per-shard idle time at barriers (window
	// wall time minus busy).
	BusyNs []int64
	WaitNs []int64
	WallNs int64 // total wall time inside windows
}

// BarrierWaitShare reports the fraction of the total window wall time the
// average shard spent waiting at barriers — the headline conservative-sync
// overhead number (0 when nothing ran).
func (st ShardStats) BarrierWaitShare() float64 {
	if st.WallNs <= 0 || len(st.WaitNs) == 0 {
		return 0
	}
	var wait int64
	for _, w := range st.WaitNs {
		wait += w
	}
	return float64(wait) / (float64(st.WallNs) * float64(len(st.WaitNs)))
}

// CrossPerWindow reports the average number of cross-shard events a
// synchronization window moved.
func (st ShardStats) CrossPerWindow() float64 {
	if st.Windows == 0 {
		return 0
	}
	return float64(st.CrossEvents) / float64(st.Windows)
}

// Stats snapshots the coordinator's accounting. Call it between runs, not
// mid-window.
func (s *Sharded) Stats() ShardStats {
	st := ShardStats{
		Shards:      len(s.engines),
		LookaheadNs: int64(s.lookahead),
		Windows:     s.windows,
		CrossEvents: s.crossEvents,
		Stretched:   s.stretched,
		Inline:      s.inlineWins,
		EmptyDrains: s.emptyDrains,
		WallNs:      s.wallNs,
	}
	for i, e := range s.engines {
		st.Events = append(st.Events, e.fired)
		st.BusyNs = append(st.BusyNs, s.busyNs[i])
		wait := s.wallNs - s.busyNs[i]
		if wait < 0 {
			wait = 0
		}
		st.WaitNs = append(st.WaitNs, wait)
	}
	return st
}
