package sim

import (
	"fmt"
	"sync"
	"time"
)

// Sharded runs several engines under conservative parallel discrete-event
// synchronization. The model partitions the simulated system into shards —
// each engine owns a disjoint set of entities and every event touching an
// entity is scheduled on its owner's engine — and advances all engines in
// lockstep windows [T, T+lookahead), where T is the global minimum pending
// timestamp and lookahead is the minimum latency of any cross-shard
// interaction. Within a window the shards are causally independent (no
// cross-shard effect can land before T+lookahead), so each engine fires its
// window on its own goroutine; cross-shard events queue in mailboxes owned
// by the caller and are delivered by the drain callback at the barrier
// between windows.
//
// Determinism: events carry (time, domain-keyed sequence) keys assigned at
// their logical scheduling point (AllocKey on the source engine for
// cross-shard handoffs), so the union of all shards' timelines is exactly
// the serial engine's timeline — bit-identical, not merely equivalent.
type Sharded struct {
	engines   []*Engine
	lookahead Time
	// drain delivers every queued cross-shard event into its destination
	// engine (via AtKey) and reports how many it delivered. It runs at
	// window barriers only, when no engine goroutine is active.
	drain func() int

	windows     uint64
	crossEvents uint64

	// Wall-clock accounting, populated only when EnableWallStats was
	// called: per-shard busy time inside windows, and the coordinator's
	// total elapsed window time (per-shard wait = wall - busy).
	wallStats bool
	busyNs    []int64
	wallNs    int64
}

// NewSharded assembles a coordinator over the given engines. lookahead must
// be positive: it is the width of the synchronization window, and a
// non-positive width means the partition has a zero-latency cross-shard
// interaction, which conservative synchronization cannot run in parallel.
// drain may be nil when the caller guarantees no cross-shard events exist
// (single shard).
func NewSharded(engines []*Engine, lookahead Time, drain func() int) *Sharded {
	if len(engines) == 0 {
		panic("sim: NewSharded with no engines")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive lookahead %v", lookahead))
	}
	if drain == nil {
		drain = func() int { return 0 }
	}
	return &Sharded{
		engines:   engines,
		lookahead: lookahead,
		drain:     drain,
		busyNs:    make([]int64, len(engines)),
	}
}

// Engines exposes the per-shard engines (index = shard).
func (s *Sharded) Engines() []*Engine { return s.engines }

// Lookahead reports the synchronization window width.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// EnableWallStats turns on wall-clock busy/wait accounting (it costs two
// time.Now calls per shard per window, so benchmarks opt in explicitly).
func (s *Sharded) EnableWallStats() { s.wallStats = true }

// Run fires events until the whole system is quiescent — every engine's
// queue empty and every mailbox drained — then aligns all clocks to the
// global maximum, exactly where a serial engine's clock would rest after
// Run.
func (s *Sharded) Run() {
	s.runWindows(0, false)
	target := Time(0)
	for _, e := range s.engines {
		if e.now > target {
			target = e.now
		}
	}
	for _, e := range s.engines {
		e.RunUntil(target)
	}
}

// RunUntil fires every event with timestamp <= t, then aligns all clocks
// to t — the sharded equivalent of Engine.RunUntil.
func (s *Sharded) RunUntil(t Time) {
	s.runWindows(t, true)
	for _, e := range s.engines {
		e.RunUntil(t)
	}
}

// runWindows advances all shards window by window; with bounded set it
// stops once no pending event is <= limit.
func (s *Sharded) runWindows(limit Time, bounded bool) {
	n := len(s.engines)
	if n == 1 {
		// Degenerate partition: no parallelism and no cross-shard events,
		// but keep the same drain/window structure for uniformity.
		e := s.engines[0]
		for {
			s.crossEvents += uint64(s.drain())
			t, ok := e.NextEventTime()
			if !ok || (bounded && t > limit) {
				return
			}
			end := t + s.lookahead
			if bounded && end > limit+1 {
				end = limit + 1
			}
			e.RunBefore(end)
			s.windows++
		}
	}

	work := make([]chan Time, n)
	for i := range work {
		work[i] = make(chan Time)
	}
	done := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i, e := range s.engines {
		go func(i int, e *Engine) {
			defer wg.Done()
			for end := range work[i] {
				if s.wallStats {
					t0 := time.Now()
					e.RunBefore(end)
					s.busyNs[i] += time.Since(t0).Nanoseconds()
				} else {
					e.RunBefore(end)
				}
				done <- i
			}
		}(i, e)
	}

	for {
		s.crossEvents += uint64(s.drain())
		t, ok := s.minNext()
		if !ok || (bounded && t > limit) {
			break
		}
		end := t + s.lookahead
		if bounded && end > limit+1 {
			// Clamp so events at exactly limit still fire but nothing
			// beyond it does; Time is integral, so limit+1 is the
			// smallest exclusive bound that includes limit.
			end = limit + 1
		}
		var t0 time.Time
		if s.wallStats {
			t0 = time.Now()
		}
		for i := range work {
			work[i] <- end
		}
		for i := 0; i < n; i++ {
			<-done
		}
		if s.wallStats {
			s.wallNs += time.Since(t0).Nanoseconds()
		}
		s.windows++
	}

	for i := range work {
		close(work[i])
	}
	wg.Wait()
}

// minNext reports the earliest pending timestamp across all engines.
func (s *Sharded) minNext() (Time, bool) {
	var min Time
	ok := false
	for _, e := range s.engines {
		if t, has := e.NextEventTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// Now reports the common clock. Outside windows all engines agree (Run and
// RunUntil align them); it panics if called while they disagree, which
// would mean a driver is reading time mid-window from outside the
// simulation.
func (s *Sharded) Now() Time {
	t := s.engines[0].now
	for _, e := range s.engines[1:] {
		if e.now != t {
			panic("sim: Sharded.Now with unaligned shard clocks")
		}
	}
	return t
}

// Kill unwinds the live processes of every shard.
func (s *Sharded) Kill() {
	for _, e := range s.engines {
		e.Kill()
	}
}

// LiveProcs totals unfinished processes across shards.
func (s *Sharded) LiveProcs() int {
	n := 0
	for _, e := range s.engines {
		n += e.LiveProcs()
	}
	return n
}

// Pending totals scheduled, not-yet-fired events across shards.
func (s *Sharded) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// EventsFired totals fired events across shards.
func (s *Sharded) EventsFired() uint64 {
	n := uint64(0)
	for _, e := range s.engines {
		n += e.EventsFired()
	}
	return n
}

// ShardStats summarizes one coordinator's execution.
type ShardStats struct {
	Shards      int      // number of shards
	LookaheadNs int64    // window width
	Windows     uint64   // synchronization windows executed
	CrossEvents uint64   // events delivered across shard boundaries
	Events      []uint64 // per-shard fired-event counts
	// BusyNs and WaitNs are wall-clock (non-deterministic) and populated
	// only after EnableWallStats: per-shard time spent executing windows,
	// and per-shard idle time at barriers (window wall time minus busy).
	BusyNs []int64
	WaitNs []int64
	WallNs int64 // total wall time inside windows
}

// Stats snapshots the coordinator's accounting. Call it between runs, not
// mid-window.
func (s *Sharded) Stats() ShardStats {
	st := ShardStats{
		Shards:      len(s.engines),
		LookaheadNs: int64(s.lookahead),
		Windows:     s.windows,
		CrossEvents: s.crossEvents,
		WallNs:      s.wallNs,
	}
	for i, e := range s.engines {
		st.Events = append(st.Events, e.fired)
		if s.wallStats {
			st.BusyNs = append(st.BusyNs, s.busyNs[i])
			wait := s.wallNs - s.busyNs[i]
			if wait < 0 {
				wait = 0
			}
			st.WaitNs = append(st.WaitNs, wait)
		}
	}
	return st
}
