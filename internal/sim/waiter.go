package sim

// Waiter is a FIFO wait queue for processes, the engine's condition
// variable. Processes wait; event callbacks (or other processes) wake them.
// Wake-ups are edge-triggered and scheduled at the current time, after the
// waking work completes, so users re-check their predicate in a loop:
//
//	for !ready() {
//		w.Wait(p)
//	}
type Waiter struct {
	eng   *Engine
	queue []*Proc
}

// NewWaiter returns a wait queue bound to e.
func NewWaiter(e *Engine) *Waiter { return &Waiter{eng: e} }

// Wait parks p until a Wake call releases it.
func (w *Waiter) Wait(p *Proc) {
	p.checkContext()
	w.queue = append(w.queue, p)
	p.park()
}

// Waiting reports how many processes are parked on w.
func (w *Waiter) Waiting() int { return len(w.queue) }

// WakeOne releases the longest-waiting process, if any, and reports
// whether one was released. The process resumes at the current virtual
// time once the currently-running work yields.
func (w *Waiter) WakeOne() bool {
	if len(w.queue) == 0 {
		return false
	}
	p := w.queue[0]
	w.queue = w.queue[1:]
	w.eng.At(w.eng.now, p.resumeFn)
	return true
}

// WakeAll releases every waiting process in FIFO order.
func (w *Waiter) WakeAll() {
	for w.WakeOne() {
	}
}

// WaitTimeout parks p until woken or until d elapses. It reports true if
// woken, false on timeout.
func (w *Waiter) WaitTimeout(p *Proc, d Time) bool {
	p.checkContext()
	woken := false
	fired := false
	w.queue = append(w.queue, p)
	timer := w.eng.After(d, func() {
		fired = true
		// Remove p from the queue so a later Wake doesn't resume a
		// process that already timed out.
		for i, q := range w.queue {
			if q == p {
				w.queue = append(w.queue[:i], w.queue[i+1:]...)
				break
			}
		}
		w.eng.step(p, false)
	})
	// Mark the entry so a Wake cancels the timer. We detect wake-vs-timeout
	// by whether the timer is still pending when we resume.
	p.park()
	if !fired && timer.Pending() {
		w.eng.Cancel(timer)
		woken = true
	}
	return woken
}
