package sim

import "fmt"

// errKilled is the sentinel panic value used to unwind a parked process
// when the engine shuts it down.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: process killed: " + k.name }

// Proc is a simulated process: a goroutine that runs cooperatively under
// the engine. At any instant at most one process (or event callback) is
// executing; a process gives up control by calling Sleep, or by waiting on
// a Waiter, and the engine resumes it at the proper virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan bool // engine -> proc; true means "kill yourself"
	yield  chan struct{}
	done   bool
	parked bool // true while the goroutine is blocked awaiting resume
	// resumeFn is the wake-up callback scheduled every time the process
	// unparks; allocated once at spawn so Sleep and Waiter wake-ups do not
	// allocate a closure per park.
	resumeFn func()
	// busy accumulates time the process spent "computing" via Compute,
	// as opposed to parked; used for host-CPU accounting.
	busy Time
}

// Name reports the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports current virtual time; shorthand for p.Engine().Now().
func (p *Proc) Now() Time { return p.eng.now }

// Spawn starts fn as a simulated process. fn begins executing at the
// current virtual time, after the currently-running work yields.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan bool),
		yield:  make(chan struct{}),
		parked: true, // awaiting its start resume
	}
	p.resumeFn = func() { e.step(p, false) }
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			delete(e.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killedError); ok {
					p.yield <- struct{}{}
					return
				}
				// Re-panicking here would crash an unrelated goroutine
				// stack; surface the failure on the engine side instead.
				p.yield <- struct{}{}
				panic(r)
			}
			p.yield <- struct{}{}
		}()
		if kill := <-p.resume; kill {
			panic(killedError{name})
		}
		fn(p)
	}()
	e.At(e.now, p.resumeFn)
	return p
}

// step hands control to p and blocks until p parks again or finishes.
// A stale wake-up (the process was already resumed by another event at the
// same timestamp) is dropped harmlessly: only parked processes resume.
func (e *Engine) step(p *Proc, kill bool) {
	if p.done || !p.parked {
		return
	}
	prev := e.current
	e.current = p
	p.parked = false
	p.resume <- kill
	<-p.yield
	e.current = prev
}

// park gives control back to the engine and blocks until resumed.
// Must be called from the process's own goroutine.
func (p *Proc) park() {
	p.parked = true
	p.yield <- struct{}{}
	if kill := <-p.resume; kill {
		panic(killedError{p.name})
	}
}

// checkContext panics if called from outside the process's goroutine while
// the engine believes another process is running; it catches the classic
// mistake of calling a blocking Proc method from an event callback.
func (p *Proc) checkContext() {
	if p.eng.current != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its goroutine", p.name))
	}
}

// Sleep parks the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	p.checkContext()
	if d < 0 {
		d = 0
	}
	p.eng.At(p.eng.now+d, p.resumeFn)
	p.park()
}

// Compute is Sleep that also accounts the time as host computation;
// use it to model CPU work performed by the process.
func (p *Proc) Compute(d Time) {
	p.busy += d
	p.Sleep(d)
}

// BusyTime reports the total virtual time the process has spent in Compute.
func (p *Proc) BusyTime() Time { return p.busy }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Kill unwinds all live processes so their goroutines exit. It must be
// called from outside any process (e.g. after Run returns in a test).
func (e *Engine) Kill() {
	if e.current != nil {
		panic("sim: Kill called from inside a process")
	}
	for len(e.procs) > 0 {
		// Take any process; map order is fine since each is killed
		// independently and cannot observe the others.
		var victim *Proc
		for p := range e.procs {
			victim = p
			break
		}
		delete(e.procs, victim)
		victim.kill()
	}
}

func (p *Proc) kill() {
	if p.done {
		return
	}
	p.resume <- true
	<-p.yield
}

// LiveProcs reports how many spawned processes have not yet finished.
func (e *Engine) LiveProcs() int { return len(e.procs) }
