package sim

import "fmt"

// Event is one scheduled callback. Events live in the engine's arena:
// Engine.At hands out a slot (recycling fired and cancelled slots through a
// free list) and the returned handle is guaranteed valid only while the
// event is pending — once it fires or is cancelled, the slot may be reused
// by a later At and the old handle then refers to the new incarnation.
// Callers that retain a handle across firings (retransmit timers and the
// like) must use the generation-checked Timer instead of a raw *Event.
type Event struct {
	when  Time
	seq   uint64 // assignment order; breaks same-timestamp ties FIFO
	fn    func()
	index int32  // position in the heap; -1 once fired or cancelled
	gen   uint32 // bumped on every recycle; Timer handles validate against it
}

// When reports the virtual time at which the event is scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return ev.index >= 0 }

// arenaChunk is the slab size of the event arena. Chunks are never freed
// or moved, so *Event pointers stay valid for the engine's lifetime.
const arenaChunk = 128

// Engine is a discrete-event simulation kernel.
// The zero value is not usable; construct with NewEngine.
//
// The event queue is a hand-rolled 4-ary min-heap of arena-allocated
// events ordered by (time, sequence). Compared to a container/heap binary
// heap of interface-boxed elements, the 4-ary layout halves the tree depth
// (fewer cache misses per sift) and the direct field comparisons avoid
// dynamic dispatch; the arena plus free list means a steady-state
// simulation schedules events without allocating at all.
type Engine struct {
	now   Time
	heap  []*Event
	seq   uint64
	fired uint64

	chunks []*[arenaChunk]Event
	used   int      // slots handed out of the newest chunk
	free   []*Event // recycled slots, reused LIFO

	procs   map[*Proc]struct{}
	current *Proc // process currently executing, if any
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired reports how many events have executed, a cheap progress and
// determinism probe for tests.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc hands out an event slot: a recycled one when available, else the
// next slot of the newest arena chunk.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.chunks) == 0 || e.used == arenaChunk {
		e.chunks = append(e.chunks, new([arenaChunk]Event))
		e.used = 0
	}
	ev := &e.chunks[len(e.chunks)-1][e.used]
	e.used++
	return ev
}

// recycle returns a no-longer-queued slot to the free list. The generation
// bump invalidates Timer handles to the slot's previous incarnation.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// eventLess orders the heap by timestamp, then by scheduling order, so
// same-timestamp events fire FIFO.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// siftUp moves heap[i] toward the root until its parent is not greater.
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].index = int32(i)
		i = p
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

// siftDown moves heap[i] toward the leaves until no child is smaller.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !eventLess(e.heap[best], ev) {
			break
		}
		e.heap[i] = e.heap[best]
		e.heap[i].index = int32(i)
		i = best
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

// heapPush queues ev.
func (e *Engine) heapPush(ev *Event) {
	ev.index = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(int(ev.index))
}

// heapRemove unqueues and returns the event at heap position i.
func (e *Engine) heapRemove(i int) *Event {
	ev := e.heap[i]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	ev.index = -1
	if i < n {
		e.heap[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if int(last.index) == i {
			e.siftUp(i)
		}
	}
	return ev
}

// heapFix restores order after heap[i]'s key changed in place.
func (e *Engine) heapFix(i int) {
	ev := e.heap[i]
	e.siftDown(i)
	if int(ev.index) == i {
		e.siftUp(i)
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = e.seq
	e.seq++
	ev.fn = fn
	e.heapPush(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event and recycles its slot. Cancelling an
// already-fired or already-cancelled event is a no-op — but note the
// handle-validity rule on Event: once the slot has been reused by a later
// At, the stale handle aliases the new event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	e.heapRemove(int(ev.index))
	e.recycle(ev)
}

// Reschedule moves a pending event to time t, pushing it to the back of
// the FIFO among events already scheduled at t. The event must still be
// pending: rescheduling a fired or cancelled event panics, because its
// slot may already belong to an unrelated event (use Timer.Reset for a
// handle that re-arms safely across firings).
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev.index < 0 {
		panic("sim: reschedule of non-pending event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.heapFix(int(ev.index))
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain. The fired slot is recycled
// before the callback runs, so a callback re-arming its own Timer draws a
// fresh incarnation rather than resurrecting the firing one.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heapRemove(0)
	e.now = ev.when
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run fires events until none remain. Parked processes do not keep Run
// going: a simulation that ends with processes still waiting has simply
// gone quiet (use Kill to release their goroutines).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].when <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d more virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
