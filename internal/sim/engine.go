package sim

import "fmt"

// Event is one scheduled callback. Events live in the engine's arena:
// Engine.At hands out a slot (recycling fired and cancelled slots through a
// free list) and the returned handle is guaranteed valid only while the
// event is pending — once it fires or is cancelled, the slot may be reused
// by a later At and the old handle then refers to the new incarnation.
// Callers that retain a handle across firings (retransmit timers and the
// like) must use the generation-checked Timer instead of a raw *Event.
type Event struct {
	when  Time
	seq   uint64 // (domain, local sequence) key; breaks same-timestamp ties
	fn    func()
	index int32  // position in the heap; -1 once fired or cancelled
	gen   uint32 // bumped on every recycle; Timer handles validate against it
	owner uint32 // domain restored as the current domain when the event fires
}

// When reports the virtual time at which the event is scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return ev.index >= 0 }

// arenaChunk is the slab size of the event arena. Chunks are never freed
// or moved, so *Event pointers stay valid for the engine's lifetime.
const arenaChunk = 128

// Engine is a discrete-event simulation kernel.
// The zero value is not usable; construct with NewEngine.
//
// The event queue is a hand-rolled 4-ary min-heap of arena-allocated
// events ordered by (time, sequence). Compared to a container/heap binary
// heap of interface-boxed elements, the 4-ary layout halves the tree depth
// (fewer cache misses per sift) and the direct field comparisons avoid
// dynamic dispatch; the arena plus free list means a steady-state
// simulation schedules events without allocating at all.
type Engine struct {
	now   Time
	heap  []*Event
	fired uint64

	// Tiebreak keys are (domain, per-domain sequence) pairs packed into a
	// uint64: domain in the top domainBits, sequence below. Domain 0 is the
	// ambient domain; an engine with no domains registered degenerates to
	// the classic global-sequence FIFO ordering (domSeq[0] is then the old
	// seq counter, and keys compare exactly as sequence numbers did).
	//
	// Domains make tiebreak order shard-stable: an event's key depends only
	// on the logical schedule order within its source domain, never on how
	// domains are distributed over engines, which is what lets a sharded
	// run reproduce the serial engine's timeline bit for bit.
	domSeq []uint64
	curDom uint32 // domain of the currently-executing event, 0 when idle

	chunks []*[arenaChunk]Event
	used   int      // slots handed out of the newest chunk
	free   []*Event // recycled slots, reused LIFO

	procs   map[*Proc]struct{}
	current *Proc // process currently executing, if any

	// fireHook, when set, observes every fired event's (when, key) — the
	// timeline probe the engine-equivalence tests diff.
	fireHook func(Time, uint64)

	// chooser, when set, picks which same-timestamp enabled event fires
	// next; see SetChooser. cands is its reusable scratch buffer.
	chooser func(n int) int
	cands   []*Event
}

// domainBits is the width of the domain field in an event key; the low
// 64-domainBits bits carry the per-domain sequence (2^48 events per domain
// before overflow — unreachable in practice).
const domainBits = 16

// MaxDomains is the largest domain count an engine supports.
const MaxDomains = 1<<domainBits - 1

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]struct{}), domSeq: make([]uint64, 1)}
}

// GrowDomains ensures domains 0..n are registered. Domains are key
// namespaces for same-timestamp tiebreaks; callers that never grow beyond
// the ambient domain 0 get the legacy global-FIFO ordering.
func (e *Engine) GrowDomains(n int) {
	if n > MaxDomains {
		panic(fmt.Sprintf("sim: domain %d exceeds MaxDomains %d", n, MaxDomains))
	}
	for len(e.domSeq) <= n {
		e.domSeq = append(e.domSeq, 0)
	}
}

// CurrentDomain reports the domain of the currently-executing event (0 when
// none, or when the event was scheduled from ambient context).
func (e *Engine) CurrentDomain() uint32 { return e.curDom }

// WithDomain runs fn with the current domain forced to d, so events fn
// schedules draw keys from (and are owned by) d. It is how setup code —
// which runs outside any event — attributes its scheduling to the entity it
// is wiring, keeping keys identical no matter how entities are later
// distributed over engines.
func (e *Engine) WithDomain(d uint32, fn func()) {
	prev := e.curDom
	e.curDom = d
	fn()
	e.curDom = prev
}

// nextKey draws the next tiebreak key from src's sequence.
func (e *Engine) nextKey(src uint32) uint64 {
	k := uint64(src)<<(64-domainBits) | e.domSeq[src]
	e.domSeq[src]++
	return k
}

// AllocKey draws a tiebreak key exactly as AtDomain(owner, ...) would,
// without scheduling anything: from the current domain when one is
// executing, else from owner. Shard coordinators use it to assign a
// cross-engine event its key on the source engine — the key the serial
// engine would have assigned — before handing the event to the destination
// engine via AtKey.
func (e *Engine) AllocKey(owner uint32) uint64 {
	src := e.curDom
	if src == 0 {
		src = owner
	}
	return e.nextKey(src)
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired reports how many events have executed, a cheap progress and
// determinism probe for tests.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc hands out an event slot: a recycled one when available, else the
// next slot of the newest arena chunk.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.chunks) == 0 || e.used == arenaChunk {
		e.chunks = append(e.chunks, new([arenaChunk]Event))
		e.used = 0
	}
	ev := &e.chunks[len(e.chunks)-1][e.used]
	e.used++
	return ev
}

// recycle returns a no-longer-queued slot to the free list. The generation
// bump invalidates Timer handles to the slot's previous incarnation.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// eventLess orders the heap by timestamp, then by scheduling order, so
// same-timestamp events fire FIFO.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// siftUp moves heap[i] toward the root until its parent is not greater.
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].index = int32(i)
		i = p
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

// siftDown moves heap[i] toward the leaves until no child is smaller.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !eventLess(e.heap[best], ev) {
			break
		}
		e.heap[i] = e.heap[best]
		e.heap[i].index = int32(i)
		i = best
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

// heapPush queues ev.
func (e *Engine) heapPush(ev *Event) {
	ev.index = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(int(ev.index))
}

// heapRemove unqueues and returns the event at heap position i.
func (e *Engine) heapRemove(i int) *Event {
	ev := e.heap[i]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	ev.index = -1
	if i < n {
		e.heap[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if int(last.index) == i {
			e.siftUp(i)
		}
	}
	return ev
}

// heapFix restores order after heap[i]'s key changed in place.
func (e *Engine) heapFix(i int) {
	ev := e.heap[i]
	e.siftDown(i)
	if int(ev.index) == i {
		e.siftUp(i)
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality. The event is owned by the current
// domain (0 outside any event), so work an entity schedules stays
// attributed to that entity.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtDomain(e.curDom, t, fn)
}

// AtDomain schedules fn at t owned by domain owner: when the event fires,
// owner becomes the current domain. The tiebreak key is drawn from the
// current domain when one is executing (the scheduling entity), falling
// back to owner for ambient (setup-time) scheduling — either way the key is
// independent of how domains are assigned to engines.
func (e *Engine) AtDomain(owner uint32, t Time, fn func()) *Event {
	src := e.curDom
	if src == 0 {
		src = owner
	}
	return e.atKey(t, e.nextKey(src), owner, fn)
}

// AtKey schedules fn at t with a caller-supplied key and owner. It is the
// cross-engine handoff primitive: the source engine assigns the key via
// AllocKey, the destination engine queues the event here, and the combined
// timeline sorts exactly as if one engine had scheduled it.
func (e *Engine) AtKey(t Time, key uint64, owner uint32, fn func()) *Event {
	return e.atKey(t, key, owner, fn)
}

func (e *Engine) atKey(t Time, key uint64, owner uint32, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = key
	ev.owner = owner
	ev.fn = fn
	e.heapPush(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event and recycles its slot. Cancelling an
// already-fired or already-cancelled event is a no-op — but note the
// handle-validity rule on Event: once the slot has been reused by a later
// At, the stale handle aliases the new event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	e.heapRemove(int(ev.index))
	e.recycle(ev)
}

// Reschedule moves a pending event to time t, pushing it to the back of
// the FIFO among events already scheduled at t. The event must still be
// pending: rescheduling a fired or cancelled event panics, because its
// slot may already belong to an unrelated event (use Timer.Reset for a
// handle that re-arms safely across firings).
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev.index < 0 {
		panic("sim: reschedule of non-pending event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	src := e.curDom
	if src == 0 {
		src = ev.owner
	}
	ev.when = t
	ev.seq = e.nextKey(src)
	e.heapFix(int(ev.index))
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain. The fired slot is recycled
// before the callback runs, so a callback re-arming its own Timer draws a
// fresh incarnation rather than resurrecting the firing one.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	i := 0
	if e.chooser != nil {
		i = e.chooseIndex()
	}
	ev := e.heapRemove(i)
	e.now = ev.when
	e.fired++
	fn := ev.fn
	owner := ev.owner
	if e.fireHook != nil {
		e.fireHook(ev.when, ev.seq)
	}
	e.recycle(ev)
	prev := e.curDom
	e.curDom = owner
	fn()
	e.curDom = prev
	return true
}

// SetFireHook installs (or, with nil, removes) a callback observing every
// fired event's timestamp and tiebreak key, in fire order — the probe the
// engine-equivalence tests use to diff full timelines across serial,
// legacy, and sharded runs.
func (e *Engine) SetFireHook(fn func(when Time, key uint64)) { e.fireHook = fn }

// SetChooser installs (or, with nil, removes) a controlled scheduler: at
// every Step where more than one event is *enabled*, fn picks which fires.
//
// The enabled set at the earliest pending timestamp t contains, for each
// domain with events at t, only that domain's lowest-key event: per-domain
// order is the FIFO program order of the entity (a NIC processes its own
// work in order; a link delivers in order), so permuting within a domain
// would explore schedules no hardware can produce. Orders *across* domains
// at the same timestamp are genuinely concurrent, and those are exactly the
// orders a chooser can permute. The candidates are presented sorted by key,
// so index 0 is the event the default FIFO schedule would fire — a chooser
// that always returns 0 reproduces the uncontrolled timeline bit for bit.
// fn is only consulted when n >= 2; out-of-range returns are reduced mod n.
//
// The chooser is a model-checking instrument, not a fast path: each choice
// scans the pending queue for ties. It must not be combined with the
// sharded coordinator (shards assume the serial FIFO order when exchanging
// lookahead promises); internal/explore runs serial clusters only.
func (e *Engine) SetChooser(fn func(n int) int) { e.chooser = fn }

// chooseIndex builds the enabled set at the earliest pending timestamp —
// the per-domain minimum-key event of every domain with work at that time,
// sorted by key — and returns the heap position of the chooser's pick.
func (e *Engine) chooseIndex() int {
	t := e.heap[0].when
	cands := e.cands[:0]
	for _, ev := range e.heap {
		if ev.when != t {
			continue
		}
		d := ev.seq >> (64 - domainBits)
		dup := false
		for i, c := range cands {
			if c.seq>>(64-domainBits) == d {
				dup = true
				if ev.seq < c.seq {
					cands[i] = ev
				}
				break
			}
		}
		if !dup {
			cands = append(cands, ev)
		}
	}
	// Insertion sort by key: candidate counts are small (one per busy
	// domain) and the slice is reused, so this stays allocation-free.
	for i := 1; i < len(cands); i++ {
		ev := cands[i]
		j := i - 1
		for j >= 0 && cands[j].seq > ev.seq {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = ev
	}
	e.cands = cands // retain grown capacity
	pick := 0
	if len(cands) >= 2 {
		pick = e.chooser(len(cands))
		pick %= len(cands)
		if pick < 0 {
			pick += len(cands)
		}
	}
	return int(cands[pick].index)
}

// NextEventTime reports the timestamp of the earliest pending event; ok is
// false when the queue is empty. Shard coordinators use it to pick the next
// synchronization window.
func (e *Engine) NextEventTime() (t Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].when, true
}

// RunBefore fires every event with timestamp strictly before end, leaving
// the clock at the last fired event (it does not advance the clock to end).
// It is the inner loop of a conservative synchronization window [T, end):
// the lookahead guarantee is that no other shard can schedule work here
// before end, so everything below end is safe to fire.
func (e *Engine) RunBefore(end Time) {
	for len(e.heap) > 0 && e.heap[0].when < end {
		e.Step()
	}
}

// Run fires events until none remain. Parked processes do not keep Run
// going: a simulation that ends with processes still waiting has simply
// gone quiet (use Kill to release their goroutines).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].when <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d more virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
