package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created with Engine.At or
// Engine.After and may be cancelled before they fire.
type Event struct {
	when  Time
	seq   uint64 // insertion order; breaks ties deterministically
	fn    func()
	index int // position in the heap; -1 once fired or cancelled
}

// When reports the virtual time at which the event is scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return ev.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	fired   uint64
	procs   map[*Proc]struct{}
	current *Proc // process currently executing, if any
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired reports how many events have executed, a cheap progress and
// determinism probe for tests.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Reschedule moves a pending event to time t, or revives a fired/cancelled
// event with the same callback semantics preserved by the caller.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev.index < 0 {
		panic("sim: reschedule of non-pending event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.events, ev.index)
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run fires events until none remain. Parked processes do not keep Run
// going: a simulation that ends with processes still waiting has simply
// gone quiet (use Kill to release their goroutines).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d more virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
