// Package sim provides a deterministic discrete-event simulation engine
// with a cooperative process layer.
//
// The engine maintains a virtual clock and a priority queue of events.
// Exactly one unit of work executes at a time: either an event callback or
// a simulated process (a goroutine that the engine resumes and that parks
// itself back to the engine), so simulations are single-threaded in effect
// and fully deterministic for a given seed.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
// A Time value is also used for durations; the arithmetic is the same.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats t with a unit appropriate to its magnitude.
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// PerByte scales a per-byte cost (in nanoseconds per byte) by a byte count,
// rounding to the nearest nanosecond.
func PerByte(nsPerByte float64, bytes int) Time {
	return Time(nsPerByte*float64(bytes) + 0.5)
}
