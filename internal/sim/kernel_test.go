package sim_test

// Edge cases of the arena/free-list event kernel: handle invalidation
// across slot reuse, same-timestamp ordering, cancellation from inside
// firing callbacks, and the zero-allocation steady state the kernel
// promises.

import (
	"testing"

	"repro/internal/sim"
)

func TestCancelThenReschedulePanics(t *testing.T) {
	e := sim.NewEngine()
	ev := e.At(10, func() {})
	e.Cancel(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule after Cancel did not panic")
		}
	}()
	e.Reschedule(ev, 20)
}

func TestCancelFromInsideFiringCallback(t *testing.T) {
	// An event firing at t=5 cancels another event scheduled for the same
	// instant; the cancelled event must not fire even though it was
	// already due when the cancellation ran.
	e := sim.NewEngine()
	fired := false
	var victim *sim.Event
	e.At(5, func() { e.Cancel(victim) })
	victim = e.At(5, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled by a same-timestamp callback still fired")
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestFIFOAcrossFreeListReuse(t *testing.T) {
	// Fire a batch so their arena slots land on the free list (which
	// recycles LIFO), then schedule a second batch at one shared
	// timestamp. Insertion order must win even though the slots are being
	// reused in reverse.
	e := sim.NewEngine()
	for i := 0; i < 10; i++ {
		e.At(sim.Time(i), func() {})
	}
	e.Run()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	if len(order) != 10 {
		t.Fatalf("fired %d of 10 events", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of insertion order: %v", order)
		}
	}
}

func TestTimerResetInsideOwnCallback(t *testing.T) {
	// A timer re-arming itself from its own callback draws a fresh event
	// incarnation (the fired slot is recycled before the callback runs)
	// and must keep firing.
	e := sim.NewEngine()
	count := 0
	var tm *sim.Timer
	tm = e.NewTimer(func() {
		count++
		if count < 3 {
			tm.ResetAfter(10)
		}
	})
	tm.ResetAfter(10)
	e.Run()
	if count != 3 {
		t.Fatalf("self-rearming timer fired %d times, want 3", count)
	}
	if tm.Pending() {
		t.Fatal("settled timer still pending")
	}
}

func TestTimerStopAfterFireIgnoresReusedSlot(t *testing.T) {
	// After a timer fires, its arena slot can be handed to an unrelated
	// event. The stale timer handle must recognize — via its generation —
	// that it no longer owns the slot: Stop reports false and must not
	// cancel the stranger.
	e := sim.NewEngine()
	tm := e.NewTimer(func() {})
	tm.Reset(5)
	e.Run()
	strangerFired := false
	e.At(10, func() { strangerFired = true })
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
	if tm.Stop() {
		t.Fatal("Stop on a fired timer reported true")
	}
	e.Run()
	if !strangerFired {
		t.Fatal("stale timer Stop cancelled an unrelated event in its reused slot")
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	e := sim.NewEngine()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	tm.Reset(5)
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetMovesDeadline(t *testing.T) {
	e := sim.NewEngine()
	var firedAt sim.Time
	tm := e.NewTimer(func() { firedAt = e.Now() })
	tm.Reset(5)
	tm.Reset(20) // reschedules the pending event in place
	e.Run()
	if firedAt != 20 {
		t.Fatalf("timer fired at %v, want 20", firedAt)
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := sim.NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(sim.Time(i+1), fn)
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Step()
		e.After(64, fn)
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f/op, want 0", avg)
	}
}

func TestTimerChurnDoesNotAllocate(t *testing.T) {
	e := sim.NewEngine()
	tm := e.NewTimer(func() {})
	tm.Reset(1)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		tm.ResetAfter(5)
		tm.ResetAfter(9)
		tm.Stop()
		tm.ResetAfter(3)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("timer arm/rearm/stop churn allocates %.1f/op, want 0", avg)
	}
}
