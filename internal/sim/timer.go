package sim

// Timer is a reusable scheduling handle: the callback is bound once at
// construction, and Reset re-arms it for another firing without allocating
// a closure or an event — the pattern behind every retransmit timer in the
// protocol layers, which arm, cancel, and re-arm on each packet.
//
// Unlike a raw *Event, a Timer is safe to retain across firings: it
// remembers the generation of the arena slot it armed, so once the event
// fires (and the slot is recycled, possibly into an unrelated event) the
// Timer observes itself as no longer pending instead of aliasing the
// slot's next incarnation.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
	gen uint32
}

// NewTimer returns an unarmed timer that runs fn each time it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// active reports whether the armed incarnation is still the queued one.
func (t *Timer) active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.active() }

// When reports the firing time of an armed timer, or 0 when unarmed.
func (t *Timer) When() Time {
	if !t.active() {
		return 0
	}
	return t.ev.when
}

// Reset arms the timer to fire at virtual time at, rescheduling in place
// when already armed. Arming from inside the timer's own callback is
// allowed and schedules the next firing (the firing incarnation was
// already retired by the engine).
func (t *Timer) Reset(at Time) {
	if t.active() {
		t.eng.Reschedule(t.ev, at)
		return
	}
	t.ev = t.eng.At(at, t.fn)
	t.gen = t.ev.gen
}

// ResetAfter arms the timer to fire d after the current time.
func (t *Timer) ResetAfter(d Time) { t.Reset(t.eng.now + d) }

// Stop disarms the timer, reporting whether it was armed. Stopping an
// unarmed (or already-fired) timer is a no-op and never touches whatever
// event may have reused the slot.
func (t *Timer) Stop() bool {
	if !t.active() {
		return false
	}
	t.eng.Cancel(t.ev)
	return true
}
