// Package clos is the datacenter fabric backend: a higher-radix multi-tier
// Clos (ToR, leaf-spine, three-tier) with deterministic ECMP path
// selection, RDMA-era link speeds, and PFC-style link-level backpressure.
//
// It reproduces the environment of Gleam-style RDMA multicast work: the
// same NIC-offloaded replication protocol the paper builds on Myrinet/GM-2
// runs here over a lossless 100 Gb/s fabric, so the chaos campaigns and
// membership scenarios compare the two eras on identical workloads. The
// fabric stays lossless under congestion — pause thresholds park senders
// instead of overflowing buffers — so packet loss comes only from injected
// faults, exactly the RoCE/PFC operating point.
//
// Everything protocol-visible is deterministic: ECMP spreads flows with a
// fixed splitmix64 hash of (src, dst), so a route never depends on load or
// iteration order, and sharded runs replay the serial timeline exactly.
package clos

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// DefaultRadix is the switch port count the topology is sized with — a
// 32-port datacenter switch ASIC (a modest one; the builder doubles the
// radix automatically when the host count outgrows the three-tier fabric).
const DefaultRadix = 32

// DefaultLinkParams returns RDMA-era datacenter link characteristics:
// 100 Gb/s (0.08 ns per byte), ~500 ns per hop (cut-through switch plus
// longer datacenter cable runs), and PFC pause thresholds sized to a few
// dozen MTU-sized packets of per-link headroom with drain/resume
// hysteresis.
func DefaultLinkParams() fabric.LinkParams {
	return fabric.LinkParams{
		Latency:     500 * sim.Nanosecond,
		NsPerByte:   0.08,
		PauseBytes:  256 << 10, // pause a sender queueing past 256 KiB
		ResumeBytes: 192 << 10, // wake once the backlog drains to 192 KiB
	}
}

// Default returns the fabric.Config preset for this backend.
func Default() fabric.Config {
	return fabric.Config{
		Kind:  "clos",
		Links: DefaultLinkParams(),
		Radix: DefaultRadix,
		Build: func(eng *sim.Engine, hosts int, cfg fabric.Config) *fabric.Network {
			ports := cfg.Radix
			if ports == 0 {
				ports = DefaultRadix
			}
			return autoTopology(eng, hosts, ports, cfg.Links)
		},
		Diameter: Diameter,
	}
}

// Diameter reports the worst-case hop count of the topology AutoTopology
// picks for the host count at the default radix: 2 through one ToR, 4
// through leaf-spine, 6 through the three-tier fabric.
func Diameter(hosts int) int {
	switch {
	case hosts <= DefaultRadix:
		return 2
	case hosts <= DefaultRadix*DefaultRadix/2:
		return 4
	default:
		return 6
	}
}

// ecmp is the deterministic flow hash spreading (src, dst) pairs across
// equal-cost paths — splitmix64 finalization over the flow tuple, the
// simulation stand-in for hashing the RoCE 5-tuple. Unlike myrinet's
// (src*31+dst) dispersive hash it decorrelates neighboring node IDs, so
// incast from consecutive senders does not pile onto one spine.
func ecmp(src, dst fabric.NodeID, salt uint64) uint64 {
	x := uint64(uint32(src))<<32 | uint64(uint32(dst))
	x ^= salt
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewToR builds the degenerate single-switch fabric: every host on one
// top-of-rack switch.
func NewToR(eng *sim.Engine, hosts int, params fabric.LinkParams) *fabric.Network {
	if hosts < 1 {
		panic("clos: need at least one host")
	}
	n := fabric.New(eng, params)
	tor := n.AddSwitch("tor0")
	for i := 0; i < hosts; i++ {
		n.AddHost(fabric.NodeID(i), tor)
	}
	n.UseBFSRoute()
	n.SetMetrics(nil)
	return n
}

// NewLeafSpine builds a two-tier Clos: leaves with ports/2 hosts and
// ports/2 spine uplinks, every leaf connected to every spine, cross-leaf
// flows spread over spines by the ECMP hash.
func NewLeafSpine(eng *sim.Engine, hosts, ports int, params fabric.LinkParams) *fabric.Network {
	if ports < 4 || ports%2 != 0 {
		panic("clos: leaf-spine needs an even port count >= 4")
	}
	hostsPerLeaf := ports / 2
	leaves := (hosts + hostsPerLeaf - 1) / hostsPerLeaf
	if leaves <= 1 {
		return NewToR(eng, hosts, params)
	}
	if leaves > ports {
		panic(fmt.Sprintf("clos: %d hosts exceed a %d-port leaf-spine's capacity (%d)",
			hosts, ports, ports*hostsPerLeaf))
	}
	n := fabric.New(eng, params)

	leafV := make([]*fabric.Vertex, leaves)
	for i := range leafV {
		leafV[i] = n.AddSwitch(fmt.Sprintf("leaf%d", i))
	}
	spines := ports / 2
	up := make([][]*fabric.Link, leaves)
	down := make([][]*fabric.Link, spines)
	for s := range down {
		down[s] = make([]*fabric.Link, leaves)
	}
	for l := range up {
		up[l] = make([]*fabric.Link, spines)
	}
	for s := 0; s < spines; s++ {
		sv := n.AddSwitch(fmt.Sprintf("spine%d", s))
		for l := 0; l < leaves; l++ {
			u, d := n.Connect(leafV[l], sv)
			up[l][s] = u
			down[s][l] = d
		}
	}
	hostUp := make([]*fabric.Link, hosts)
	hostDown := make([]*fabric.Link, hosts)
	for i := 0; i < hosts; i++ {
		_, u, d := n.AddHost(fabric.NodeID(i), leafV[i/hostsPerLeaf])
		hostUp[i], hostDown[i] = u, d
	}
	n.SetRoute(func(src, dst fabric.NodeID) []*fabric.Link {
		if src == dst {
			panic("clos: route to self")
		}
		sl, dl := int(src)/hostsPerLeaf, int(dst)/hostsPerLeaf
		if sl == dl {
			return []*fabric.Link{hostUp[src], hostDown[dst]}
		}
		s := int(ecmp(src, dst, 0) % uint64(spines))
		return []*fabric.Link{hostUp[src], up[sl][s], down[s][dl], hostDown[dst]}
	})
	n.SetMetrics(nil)
	return n
}

// NewThreeTier builds a three-tier folded Clos of k-port switches — k
// pods of k/2 leaves (k/2 hosts each) and k/2 pod spines, plus (k/2)²
// core switches — carrying up to k³/4 hosts. The leaf→spine and
// spine→core stages are both spread by the ECMP hash.
func NewThreeTier(eng *sim.Engine, hosts, ports int, params fabric.LinkParams) *fabric.Network {
	if ports < 4 || ports%2 != 0 {
		panic("clos: three-tier needs an even port count >= 4")
	}
	half := ports / 2
	hostsPerLeaf := half
	hostsPerPod := half * hostsPerLeaf
	pods := (hosts + hostsPerPod - 1) / hostsPerPod
	if pods <= 1 {
		return NewLeafSpine(eng, hosts, ports, params)
	}
	if pods > ports {
		panic(fmt.Sprintf("clos: %d hosts exceed a %d-port three-tier fabric's capacity (%d)",
			hosts, ports, ports*hostsPerPod))
	}
	n := fabric.New(eng, params)

	leaves := make([][]*fabric.Vertex, pods)
	spines := make([][]*fabric.Vertex, pods)
	leafUp := make([][][]*fabric.Link, pods)    // [p][l][s]
	spineDown := make([][][]*fabric.Link, pods) // [p][s][l]
	for p := 0; p < pods; p++ {
		leaves[p] = make([]*fabric.Vertex, half)
		spines[p] = make([]*fabric.Vertex, half)
		leafUp[p] = make([][]*fabric.Link, half)
		spineDown[p] = make([][]*fabric.Link, half)
		for l := 0; l < half; l++ {
			leaves[p][l] = n.AddSwitch(fmt.Sprintf("leaf%d.%d", p, l))
			leafUp[p][l] = make([]*fabric.Link, half)
		}
		for s := 0; s < half; s++ {
			spines[p][s] = n.AddSwitch(fmt.Sprintf("spine%d.%d", p, s))
			spineDown[p][s] = make([]*fabric.Link, half)
		}
		for l := 0; l < half; l++ {
			for s := 0; s < half; s++ {
				u, d := n.Connect(leaves[p][l], spines[p][s])
				leafUp[p][l][s] = u
				spineDown[p][s][l] = d
			}
		}
	}

	// Core plane: pod spine s connects to cores [s*half, (s+1)*half).
	cores := make([]*fabric.Vertex, half*half)
	spineUp := make([][][]*fabric.Link, pods) // [p][s][j] to core s*half+j
	coreDown := make([][]*fabric.Link, len(cores))
	for c := range cores {
		cores[c] = n.AddSwitch(fmt.Sprintf("core%d", c))
		coreDown[c] = make([]*fabric.Link, pods)
	}
	for p := 0; p < pods; p++ {
		spineUp[p] = make([][]*fabric.Link, half)
		for s := 0; s < half; s++ {
			spineUp[p][s] = make([]*fabric.Link, half)
			for j := 0; j < half; j++ {
				c := s*half + j
				u, d := n.Connect(spines[p][s], cores[c])
				spineUp[p][s][j] = u
				coreDown[c][p] = d
			}
		}
	}

	hostUp := make([]*fabric.Link, hosts)
	hostDown := make([]*fabric.Link, hosts)
	for i := 0; i < hosts; i++ {
		p := i / hostsPerPod
		l := (i % hostsPerPod) / hostsPerLeaf
		_, u, d := n.AddHost(fabric.NodeID(i), leaves[p][l])
		hostUp[i], hostDown[i] = u, d
	}

	podOf := func(h fabric.NodeID) int { return int(h) / hostsPerPod }
	leafOf := func(h fabric.NodeID) int { return (int(h) % hostsPerPod) / hostsPerLeaf }

	n.SetRoute(func(src, dst fabric.NodeID) []*fabric.Link {
		if src == dst {
			panic("clos: route to self")
		}
		sp, sl := podOf(src), leafOf(src)
		dp, dl := podOf(dst), leafOf(dst)
		h := ecmp(src, dst, 0)
		if sp == dp && sl == dl {
			return []*fabric.Link{hostUp[src], hostDown[dst]}
		}
		if sp == dp {
			s := int(h % uint64(half))
			return []*fabric.Link{hostUp[src], leafUp[sp][sl][s], spineDown[sp][s][dl], hostDown[dst]}
		}
		s := int(h % uint64(half))
		j := int((h >> 32) % uint64(half))
		c := s*half + j
		return []*fabric.Link{
			hostUp[src],
			leafUp[sp][sl][s],
			spineUp[sp][s][j],
			coreDown[c][dp],
			spineDown[dp][s][dl],
			hostDown[dst],
		}
	})
	n.SetMetrics(nil)
	return n
}

// AutoTopology picks the smallest standard fabric for the host count: one
// ToR while every host fits on a single switch, leaf-spine to ports²/2
// hosts, a three-tier Clos beyond. Past the three-tier capacity (ports³/4
// hosts) the radix doubles until the pod count fits — the way datacenter
// fabrics scale by moving to wider switch ASICs.
func AutoTopology(eng *sim.Engine, hosts, ports int, params fabric.LinkParams) *fabric.Network {
	return autoTopology(eng, hosts, ports, params)
}

func autoTopology(eng *sim.Engine, hosts, ports int, params fabric.LinkParams) *fabric.Network {
	switch {
	case hosts <= ports:
		return NewToR(eng, hosts, params)
	case hosts <= ports*ports/2:
		return NewLeafSpine(eng, hosts, ports, params)
	default:
		for hosts > ports*ports*ports/4 {
			ports *= 2
		}
		return NewThreeTier(eng, hosts, ports, params)
	}
}
