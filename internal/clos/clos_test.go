package clos_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/clos"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
)

// switchLabels collects the distinct non-host vertex labels of a network.
func switchLabels(n *fabric.Network) map[string]bool {
	out := map[string]bool{}
	for _, l := range n.Links() {
		for _, lbl := range []string{l.FromLabel(), l.ToLabel()} {
			if !strings.HasPrefix(lbl, "host") {
				out[lbl] = true
			}
		}
	}
	return out
}

// TestAutoTopologyTiers pins which fabric each host count gets and the
// hop counts the tiers promise: 2 through a ToR, 2/4 through leaf-spine,
// 2/4/6 through the three-tier Clos — matching clos.Diameter.
func TestAutoTopologyTiers(t *testing.T) {
	params := clos.DefaultLinkParams()

	tor := clos.AutoTopology(sim.NewEngine(), 16, 32, params)
	if sw := switchLabels(tor); len(sw) != 1 || !sw["tor0"] {
		t.Fatalf("16 hosts on radix 32 built switches %v, want just tor0", sw)
	}
	if hops := tor.HopCount(0, 15); hops != 2 {
		t.Errorf("ToR hop count %d, want 2", hops)
	}

	ls := clos.AutoTopology(sim.NewEngine(), 48, 32, params)
	sw := switchLabels(ls)
	if !sw["leaf0"] || !sw["leaf2"] || !sw["spine0"] {
		t.Fatalf("48 hosts on radix 32 built switches %v, want a leaf-spine", sw)
	}
	if hops := ls.HopCount(0, 1); hops != 2 {
		t.Errorf("same-leaf hop count %d, want 2", hops)
	}
	if hops := ls.HopCount(0, 47); hops != 4 {
		t.Errorf("cross-leaf hop count %d, want 4", hops)
	}

	tt := clos.AutoTopology(sim.NewEngine(), 600, 32, params)
	sw = switchLabels(tt)
	if !sw["leaf0.0"] || !sw["spine1.0"] || !sw["core0"] {
		t.Fatalf("600 hosts on radix 32 built switches %v, want a three-tier Clos", sw)
	}
	if hops := tt.HopCount(0, 1); hops != 2 {
		t.Errorf("same-leaf hop count %d, want 2", hops)
	}
	if hops := tt.HopCount(0, 100); hops != 4 {
		t.Errorf("same-pod hop count %d, want 4", hops)
	}
	if hops := tt.HopCount(0, 599); hops != 6 {
		t.Errorf("cross-pod hop count %d, want 6", hops)
	}

	for _, hosts := range []int{16, 48, 600} {
		want := 2
		switch {
		case hosts > clos.DefaultRadix*clos.DefaultRadix/2:
			want = 6
		case hosts > clos.DefaultRadix:
			want = 4
		}
		if got := clos.Diameter(hosts); got != want {
			t.Errorf("Diameter(%d) = %d, want %d", hosts, got, want)
		}
	}
}

// TestRadixDoubling checks the capacity escape hatch: a host count past
// ports³/4 widens the switches instead of failing, and the result still
// routes everything within six hops.
func TestRadixDoubling(t *testing.T) {
	n := clos.AutoTopology(sim.NewEngine(), 20, 4, clos.DefaultLinkParams())
	for dst := 1; dst < 20; dst++ {
		if hops := n.HopCount(0, fabric.NodeID(dst)); hops < 2 || hops > 6 {
			t.Fatalf("route 0->%d has %d hops, want 2..6", dst, hops)
		}
	}
}

// TestRouteDeterminism builds the same leaf-spine twice and requires
// identical routes for every flow — path choice is a pure hash, never a
// function of construction state or load.
func TestRouteDeterminism(t *testing.T) {
	path := func(n *fabric.Network, src, dst fabric.NodeID) string {
		var b strings.Builder
		for _, l := range n.Route(src, dst) {
			fmt.Fprintf(&b, "%s|", l)
		}
		return b.String()
	}
	a := clos.NewLeafSpine(sim.NewEngine(), 48, 32, clos.DefaultLinkParams())
	b := clos.NewLeafSpine(sim.NewEngine(), 48, 32, clos.DefaultLinkParams())
	spines := map[string]bool{}
	for src := 0; src < 8; src++ {
		for dst := 40; dst < 48; dst++ {
			pa := path(a, fabric.NodeID(src), fabric.NodeID(dst))
			if pb := path(b, fabric.NodeID(src), fabric.NodeID(dst)); pa != pb {
				t.Fatalf("route %d->%d differs between identical builds:\n%s\nvs\n%s", src, dst, pa, pb)
			}
			spines[strings.Split(pa, "|")[1]] = true
		}
	}
	if len(spines) < 8 {
		t.Errorf("64 cross-leaf flows used only %d spine uplinks; ECMP not spreading", len(spines))
	}
}

// closRun drives the full NIC-multicast stack — group install, then
// pipelined root multicasts — on a Clos-backed cluster, returning the
// merged (timestamp, tiebreak key) event timeline and the final clock.
// It is the Clos instantiation of the PDES acceptance probe.
func closRun(t *testing.T, nodes, shards, msgs int, seed int64) ([][2]uint64, sim.Time) {
	t.Helper()
	c := cluster.New(nodes,
		cluster.WithFabric(clos.Default()),
		cluster.WithShards(shards),
		cluster.WithSeed(seed),
	)
	recs := make([][][2]uint64, len(c.Engines()))
	for i, e := range c.Engines() {
		i := i
		e.SetFireHook(func(when sim.Time, key uint64) {
			recs[i] = append(recs[i], [2]uint64{uint64(when), key})
		})
	}
	ports := c.OpenPorts(1)
	ready := c.InstallGroup(7, tree.Binomial(0, c.Members()), 1, 1)
	for i := 1; i < nodes; i++ {
		port := ports[i]
		c.SpawnOn(fabric.NodeID(i), "recv", func(p *sim.Proc) {
			port.ProvideN(msgs+2, 1<<12)
			for got := 0; got < msgs; got++ {
				port.Recv(p)
			}
		})
	}
	c.Run()
	if !ready() {
		t.Fatalf("group install incomplete after quiescence (shards=%d)", shards)
	}
	c.SpawnOn(0, "root", func(p *sim.Proc) {
		ext := c.Nodes[0].Ext
		for i := 0; i < msgs; i++ {
			ext.McastSync(p, ports[0], 7, make([]byte, 2000))
		}
	})
	c.Run()
	end := c.Now()
	c.Kill()

	var all [][2]uint64
	for _, r := range recs {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i][0] != all[j][0] {
			return all[i][0] < all[j][0]
		}
		return all[i][1] < all[j][1]
	})
	return all, end
}

// TestClosShardedEquivalence is the PDES acceptance bar on the new
// backend: on a multi-leaf Clos with real cross-shard trunk traffic, the
// sharded timeline must replay the serial one exactly — every timestamp
// and tiebreak key — across shard counts and seeds.
func TestClosShardedEquivalence(t *testing.T) {
	const nodes, msgs = 40, 4
	for _, seed := range []int64{5, 11, 23} {
		serial, serialEnd := closRun(t, nodes, 1, msgs, seed)
		if len(serial) == 0 {
			t.Fatal("serial Clos run fired no events")
		}
		for _, shards := range []int{2, 4} {
			tl, end := closRun(t, nodes, shards, msgs, seed)
			if end != serialEnd {
				t.Errorf("seed %d shards %d: final clock %v != serial %v", seed, shards, end, serialEnd)
			}
			if len(tl) != len(serial) {
				t.Fatalf("seed %d shards %d: %d events, serial %d", seed, shards, len(tl), len(serial))
			}
			for i := range tl {
				if tl[i] != serial[i] {
					t.Fatalf("seed %d shards %d: timeline diverges at event %d: (%d, %#x) vs serial (%d, %#x)",
						seed, shards, i, tl[i][0], tl[i][1], serial[i][0], serial[i][1])
				}
			}
		}
	}
}

// TestClosTierTrafficSmoke runs the multicast stack serially on each tier
// the auto-topology can pick, requiring full delivery and a reproducible
// clock. The 600-node point doubles as the three-tier construction check
// under a real protocol load.
func TestClosTierTrafficSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("three-tier smoke is slow")
	}
	for _, nodes := range []int{8, 48, 600} {
		a, endA := closRun(t, nodes, 1, 2, 1)
		_, endB := closRun(t, nodes, 1, 2, 1)
		if len(a) == 0 {
			t.Fatalf("%d-node run fired no events", nodes)
		}
		if endA != endB {
			t.Errorf("%d-node run not reproducible: %v vs %v", nodes, endA, endB)
		}
	}
}
