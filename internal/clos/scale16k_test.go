package clos_test

import (
	"testing"

	"repro/internal/clos"
	"repro/internal/sim"
)

// TestAutoTopology16KHosts pins the 16384-host Clos shape behind the
// large benchmark points: the radix doubles from 32 to 64 (the smallest
// three-tier Clos carrying 16K hosts), preserving the 2/4/6 hop tiers,
// and a 4-way partition stays balanced with full-link lookahead on every
// shard pair. Build-only, no traffic.
func TestAutoTopology16KHosts(t *testing.T) {
	const hosts = 16384
	params := clos.DefaultLinkParams()
	n := clos.AutoTopology(sim.NewEngine(), hosts, clos.DefaultRadix, params)
	if got := n.Hosts(); got != hosts {
		t.Fatalf("built %d hosts, want %d", got, hosts)
	}
	// Radix 64 three-tier: 32 hosts per leaf, 1024 per pod.
	if hops := n.HopCount(0, 31); hops != 2 {
		t.Errorf("same-leaf hop count %d, want 2", hops)
	}
	if hops := n.HopCount(0, 1000); hops != 4 {
		t.Errorf("same-pod hop count %d, want 4", hops)
	}
	if hops := n.HopCount(0, hosts-1); hops != 6 {
		t.Errorf("cross-pod hop count %d, want 6", hops)
	}

	const shards = 4
	plan := n.Partition(shards)
	counts := make([]int, shards)
	for _, s := range plan.HostShard {
		counts[s]++
	}
	for s, c := range counts {
		if c != hosts/shards {
			t.Fatalf("shard %d holds %d hosts, want %d", s, c, hosts/shards)
		}
	}
	if plan.Lookahead != params.Latency {
		t.Fatalf("lookahead %v, want the link latency %v", plan.Lookahead, params.Latency)
	}
	for s := 0; s < shards; s++ {
		for d := 0; d < shards; d++ {
			if s != d && plan.PairLookahead[s][d] != params.Latency {
				t.Fatalf("PairLookahead[%d][%d] = %v, want %v",
					s, d, plan.PairLookahead[s][d], params.Latency)
			}
		}
	}
}
