package clos

import (
	"testing"

	"repro/internal/fabric"
)

// TestECMPSpread checks the flow hash actually disperses: across a modest
// set of flows every one of 16 equal-cost paths is chosen, and consecutive
// node IDs — the pattern a binomial multicast tree produces — do not pile
// onto one path the way the myrinet (src*31+dst) hash would.
func TestECMPSpread(t *testing.T) {
	const paths = 16
	hit := make(map[uint64]int, paths)
	for dst := 1; dst <= 256; dst++ {
		hit[ecmp(0, fabric.NodeID(dst), 0)%paths]++
	}
	if len(hit) != paths {
		t.Fatalf("256 flows from one source used %d of %d paths", len(hit), paths)
	}
	for p, n := range hit {
		if n > 64 {
			t.Errorf("path %d carries %d of 256 flows; hash badly skewed", p, n)
		}
	}
}

// TestECMPDeterministicAndSalted pins that the hash is a pure function of
// (src, dst, salt), and that the salt decorrelates the two stage choices
// the three-tier route derives from one hash value.
func TestECMPDeterministicAndSalted(t *testing.T) {
	for src := 0; src < 8; src++ {
		for dst := 8; dst < 16; dst++ {
			a := ecmp(fabric.NodeID(src), fabric.NodeID(dst), 0)
			b := ecmp(fabric.NodeID(src), fabric.NodeID(dst), 0)
			if a != b {
				t.Fatalf("ecmp(%d,%d,0) not deterministic: %#x vs %#x", src, dst, a, b)
			}
		}
	}
	if ecmp(3, 9, 0) == ecmp(3, 9, 1) {
		t.Error("salt does not perturb the hash")
	}
}
