package gm

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// streamMsgs pipelines n async sends of a size-byte payload from node 0 to
// node 1 and counts in-order deliveries.
func streamMsgs(t *testing.T, r *rig, n, size int) int {
	t.Helper()
	delivered := 0
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(n, size+256)
		for i := 0; i < n; i++ {
			if !bytes.Equal(r.ports[1].Recv(p).Data, pattern(size)) {
				t.Errorf("delivery %d corrupted", i)
			}
			delivered++
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.ports[0].Send(p, 1, 1, pattern(size))
		}
		for i := 0; i < n; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	return delivered
}

func TestCoalescedAcksCutAckTraffic(t *testing.T) {
	const msgs = 32
	r := newRig(t, 2, func(c *Config) { c.AckEvery = 4 })
	if got := streamMsgs(t, r, msgs, 64); got != msgs {
		t.Fatalf("delivered %d of %d", got, msgs)
	}
	st := r.nics[1].Stats()
	// Every accepted packet is either acknowledged or folded into a
	// cumulative ack — the economy may never lose one.
	if st.AcksSent+st.AcksSuppressed != msgs {
		t.Fatalf("acks sent %d + suppressed %d != %d packets accepted",
			st.AcksSent, st.AcksSuppressed, msgs)
	}
	if st.AcksSent > msgs/2 {
		t.Fatalf("coalescing sent %d acks for %d packets (expected <= %d)",
			st.AcksSent, msgs, msgs/2)
	}
	if rt := r.nics[0].Stats().Retransmits; rt != 0 {
		t.Fatalf("delayed acks caused %d spurious retransmits", rt)
	}
	if n := r.nics[1].PendingAckTimers(); n != 0 {
		t.Fatalf("%d delayed-ack timers still armed after quiescence", n)
	}
}

func TestPiggybackAcksRideReverseData(t *testing.T) {
	// Request/reply traffic: node 1 answers every 4th message while its
	// coalesce window (AckEvery 8) is still open, so the reply frames must
	// carry the pending cumulative ack instead of a standalone ack packet.
	const msgs, replyEvery = 16, 4
	r := newRig(t, 2, func(c *Config) {
		c.AckEvery = 8
		c.PiggybackAcks = true
	})
	replies := 0
	r.eng.Spawn("echo", func(p *sim.Proc) {
		r.ports[1].ProvideN(msgs, 512)
		for i := 1; i <= msgs; i++ {
			if !bytes.Equal(r.ports[1].Recv(p).Data, pattern(256)) {
				t.Errorf("request %d corrupted", i)
			}
			if i%replyEvery == 0 {
				r.ports[1].Send(p, 0, 1, pattern(32))
			}
		}
		for i := 0; i < msgs/replyEvery; i++ {
			r.ports[1].WaitSendDone(p)
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].ProvideN(msgs/replyEvery, 512)
		for i := 0; i < msgs; i++ {
			r.ports[0].Send(p, 1, 1, pattern(256))
		}
		for i := 0; i < msgs; i++ {
			r.ports[0].WaitSendDone(p)
		}
		for i := 0; i < msgs/replyEvery; i++ {
			r.ports[0].Recv(p)
			replies++
		}
	})
	r.run(t)
	if replies != msgs/replyEvery {
		t.Fatalf("got %d replies, want %d", replies, msgs/replyEvery)
	}
	st1 := r.nics[1].Stats()
	if st1.AcksPiggybacked == 0 {
		t.Fatal("reverse data carried no piggybacked acks")
	}
	if st1.AcksSent+st1.AcksSuppressed != msgs {
		t.Fatalf("acks sent %d + suppressed %d != %d requests accepted",
			st1.AcksSent, st1.AcksSuppressed, msgs)
	}
	for i, nic := range r.nics {
		if rt := nic.Stats().Retransmits; rt != 0 {
			t.Fatalf("node %d: %d spurious retransmits under piggybacking", i, rt)
		}
	}
}

// TestCoalescedRTTEstimatorSane is the delayed-ack RTO property check: on a
// clean pipelined run the estimator must have sampled, the effective timeout
// must stay above the MinRTO+ack-delay floor (no collapse below the lawful
// ack hold time) yet bounded (no runaway from coalesce-inflated samples),
// and backoff must be reset.
func TestCoalescedRTTEstimatorSane(t *testing.T) {
	const msgs = 64
	r := newRig(t, 2, func(c *Config) {
		c.AdaptiveRTO = true
		c.AckEvery = 4
	})
	if got := streamMsgs(t, r, msgs, 64); got != msgs {
		t.Fatalf("delivered %d of %d", got, msgs)
	}
	cfg := r.nics[0].Cfg
	floor := cfg.MinRTO + cfg.EffectiveAckDelay()
	for _, c := range r.nics[0].conns {
		if c.srtt == 0 {
			t.Fatal("estimator never sampled under coalesced acks")
		}
		if got := c.rto(); got < floor {
			t.Fatalf("RTO %v collapsed below the coalescing floor %v", got, floor)
		}
		if got := c.rto(); got > 4*cfg.RetransmitTimeout {
			t.Fatalf("RTO %v ran away (fixed timeout is %v)", got, cfg.RetransmitTimeout)
		}
		if c.backoff != 0 {
			t.Fatalf("backoff %d not reset by ack progress", c.backoff)
		}
	}
	if rt := r.nics[0].Stats().Retransmits; rt != 0 {
		t.Fatalf("clean coalesced run retransmitted %d times (RTO below ack delay?)", rt)
	}
}

// TestCoalescedAdaptiveRTOUnderLoss: sustained loss with both adaptive
// timeouts and the full ack economy still delivers everything exactly once
// and leaves the backoff reset.
func TestCoalescedAdaptiveRTOUnderLoss(t *testing.T) {
	const msgs = 30
	r := newRig(t, 2, func(c *Config) {
		c.AdaptiveRTO = true
		c.AckEvery = 4
		c.PiggybackAcks = true
	})
	r.net.SetRNG(sim.NewRNG(77))
	r.net.LossRate = 0.05
	if got := streamMsgs(t, r, msgs, 3000); got != msgs {
		t.Fatalf("delivered %d of %d under loss", got, msgs)
	}
	for _, c := range r.nics[0].conns {
		if len(c.records) != 0 {
			t.Fatalf("%d send records leaked after recovery", len(c.records))
		}
		if c.backoff != 0 {
			t.Fatalf("backoff %d not reset after recovery", c.backoff)
		}
	}
	if n := r.nics[1].PendingAckTimers(); n != 0 {
		t.Fatalf("%d delayed-ack timers still armed after recovery", n)
	}
}

// TestCumulativeAckSeqWraparound drives the delayed-ack state machine
// across the uint32 sequence boundary: with both ends' serial state pinned
// just below MaxUint32, cumulative acks retire records spanning the wrap
// (SeqBefore/SeqLEQ arithmetic, not magnitude comparison).
func TestCumulativeAckSeqWraparound(t *testing.T) {
	const msgs = 16
	r := newRig(t, 2, func(c *Config) { c.AckEvery = 4 })

	// Establish the connection state with one ordinary message.
	r.eng.Spawn("recv0", func(p *sim.Proc) {
		r.ports[1].Provide(512)
		r.ports[1].Recv(p)
	})
	r.eng.Spawn("send0", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(64))
	})
	r.eng.Run()

	// Jump both ends of the serial space to just below the wrap: the next
	// 16 packets carry seqs 0xfffffffd, 0xfffffffe, 0xffffffff, 0, 1, ...
	jump := ^uint32(0) - 2
	c := r.nics[0].sendConn(1, 1, 1)
	rv := r.nics[1].recvConn(0, 1, 1)
	c.nextSeq = jump
	rv.expect = jump

	delivered := 0
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(msgs, 512)
		for i := 0; i < msgs; i++ {
			if !bytes.Equal(r.ports[1].Recv(p).Data, pattern(64)) {
				t.Errorf("delivery %d corrupted across wraparound", i)
			}
			delivered++
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			r.ports[0].Send(p, 1, 1, pattern(64))
		}
		for i := 0; i < msgs; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.eng.Run()
	r.eng.Kill()

	if delivered != msgs {
		t.Fatalf("delivered %d of %d across the seq wraparound", delivered, msgs)
	}
	want := jump + uint32(msgs) // wraps past zero by construction
	if !SeqBefore(jump, rv.expect) || rv.expect != want {
		t.Fatalf("receiver expect %#x, want %#x (serial advance across wrap)", rv.expect, want)
	}
	if len(c.records) != 0 {
		t.Fatalf("%d send records not retired across wraparound", len(c.records))
	}
	st := r.nics[0].Stats()
	if st.Retransmits != 0 {
		t.Fatalf("%d retransmits on a clean wraparound run", st.Retransmits)
	}
}

// TestAckModeEquivalence runs five workload patterns under the default
// per-packet acks and again under the full ack economy, asserting identical
// per-connection delivery sequences: coalescing may only change when acks
// travel, never what the host observes.
func TestAckModeEquivalence(t *testing.T) {
	type delivery struct {
		MsgID uint64
		Len   int
		Sum   uint32
	}
	checksum := func(b []byte) uint32 {
		var s uint32
		for _, x := range b {
			s = s*31 + uint32(x)
		}
		return s
	}
	economy := func(c *Config) {
		c.AckEvery = 4
		c.PiggybackAcks = true
	}
	// Each pattern returns the per-(receiver, source) delivery log.
	patterns := []struct {
		name string
		run  func(mut func(*Config)) map[string][]delivery
	}{
		{"stream", func(mut func(*Config)) map[string][]delivery {
			r := newRig(t, 2, mut)
			log := map[string][]delivery{}
			r.eng.Spawn("recv", func(p *sim.Proc) {
				r.ports[1].ProvideN(24, 2048)
				for i := 0; i < 24; i++ {
					ev := r.ports[1].Recv(p)
					k := fmt.Sprintf("1<-%v", ev.Src)
					log[k] = append(log[k], delivery{ev.MsgID, len(ev.Data), checksum(ev.Data)})
				}
			})
			r.eng.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < 24; i++ {
					r.ports[0].Send(p, 1, 1, pattern(100+i*13))
				}
				for i := 0; i < 24; i++ {
					r.ports[0].WaitSendDone(p)
				}
			})
			r.run(t)
			return log
		}},
		{"bigmsgs", func(mut func(*Config)) map[string][]delivery {
			r := newRig(t, 2, mut)
			log := map[string][]delivery{}
			r.eng.Spawn("recv", func(p *sim.Proc) {
				r.ports[1].ProvideN(6, 16384)
				for i := 0; i < 6; i++ {
					ev := r.ports[1].Recv(p)
					k := fmt.Sprintf("1<-%v", ev.Src)
					log[k] = append(log[k], delivery{ev.MsgID, len(ev.Data), checksum(ev.Data)})
				}
			})
			r.eng.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < 6; i++ {
					r.ports[0].Send(p, 1, 1, pattern(9000+i*501))
				}
				for i := 0; i < 6; i++ {
					r.ports[0].WaitSendDone(p)
				}
			})
			r.run(t)
			return log
		}},
		{"pingpong", func(mut func(*Config)) map[string][]delivery {
			r := newRig(t, 2, mut)
			log := map[string][]delivery{}
			record := func(who int, ev *RecvEvent) {
				k := fmt.Sprintf("%d<-%v", who, ev.Src)
				log[k] = append(log[k], delivery{ev.MsgID, len(ev.Data), checksum(ev.Data)})
			}
			r.eng.Spawn("a", func(p *sim.Proc) {
				r.ports[0].ProvideN(16, 1024)
				for i := 0; i < 16; i++ {
					r.ports[0].SendSync(p, 1, 1, pattern(64+i))
					record(0, r.ports[0].Recv(p))
				}
			})
			r.eng.Spawn("b", func(p *sim.Proc) {
				r.ports[1].ProvideN(16, 1024)
				for i := 0; i < 16; i++ {
					record(1, r.ports[1].Recv(p))
					r.ports[1].SendSync(p, 0, 1, pattern(200+i))
				}
			})
			r.run(t)
			return log
		}},
		{"fanin", func(mut func(*Config)) map[string][]delivery {
			r := newRig(t, 4, mut)
			log := map[string][]delivery{}
			r.eng.Spawn("recv", func(p *sim.Proc) {
				r.ports[0].ProvideN(36, 2048)
				for i := 0; i < 36; i++ {
					ev := r.ports[0].Recv(p)
					k := fmt.Sprintf("0<-%v", ev.Src)
					log[k] = append(log[k], delivery{ev.MsgID, len(ev.Data), checksum(ev.Data)})
				}
			})
			for s := 1; s <= 3; s++ {
				s := s
				r.eng.Spawn("send", func(p *sim.Proc) {
					for i := 0; i < 12; i++ {
						r.ports[s].Send(p, 0, 1, pattern(80+s*37+i*11))
					}
					for i := 0; i < 12; i++ {
						r.ports[s].WaitSendDone(p)
					}
				})
			}
			r.run(t)
			return log
		}},
		{"lossy", func(mut func(*Config)) map[string][]delivery {
			r := newRig(t, 2, mut)
			r.net.SetRNG(sim.NewRNG(1234))
			r.net.LossRate = 0.03
			log := map[string][]delivery{}
			r.eng.Spawn("recv", func(p *sim.Proc) {
				r.ports[1].ProvideN(20, 8192)
				for i := 0; i < 20; i++ {
					ev := r.ports[1].Recv(p)
					k := fmt.Sprintf("1<-%v", ev.Src)
					log[k] = append(log[k], delivery{ev.MsgID, len(ev.Data), checksum(ev.Data)})
				}
			})
			r.eng.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < 20; i++ {
					r.ports[0].Send(p, 1, 1, pattern(500+i*211))
				}
				for i := 0; i < 20; i++ {
					r.ports[0].WaitSendDone(p)
				}
			})
			r.run(t)
			return log
		}},
	}
	for _, pat := range patterns {
		base := pat.run(nil)
		econ := pat.run(economy)
		if !reflect.DeepEqual(base, econ) {
			t.Errorf("pattern %q: delivery sequences differ between ack modes\n default: %v\n economy: %v",
				pat.name, base, econ)
		}
		if len(base) == 0 {
			t.Errorf("pattern %q recorded no deliveries", pat.name)
		}
	}
}
