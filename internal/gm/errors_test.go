package gm

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// recoverErr runs f and returns the recovered panic value as an error.
func recoverErr(t *testing.T, f func()) (err error) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected a panic")
		}
		e, ok := v.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", v, v)
		}
		err = e
	}()
	f()
	return nil
}

func TestSentinelErrorsAreIsable(t *testing.T) {
	r := newRig(t, 2, nil)
	n := r.nics[0]

	if err := recoverErr(t, func() { n.OpenPort(1) }); !errors.Is(err, ErrPortInUse) {
		t.Errorf("OpenPort twice: got %v, want ErrPortInUse", err)
	}
	if err := recoverErr(t, func() { n.Port(9) }); !errors.Is(err, ErrNoSuchPort) {
		t.Errorf("Port(9): got %v, want ErrNoSuchPort", err)
	}
	if err := recoverErr(t, func() {
		n.Inject(&Frame{SrcNode: 1, DstNode: 0, Kind: KindData}, nil)
	}); !errors.Is(err, ErrForeignSource) {
		t.Errorf("foreign inject: got %v, want ErrForeignSource", err)
	}

	ext := extFunc(func(*Frame) bool { return false })
	n.SetExtension(ext)
	if err := recoverErr(t, func() { n.SetExtension(ext) }); !errors.Is(err, ErrExtensionInstalled) {
		t.Errorf("double SetExtension: got %v, want ErrExtensionInstalled", err)
	}
	if err := recoverErr(t, func() { r.ports[0].DeregisterRegion(RegionID(77)) }); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("deregister unknown: got %v, want ErrNotRegistered", err)
	}
}

func TestTokenExhaustedError(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.RecvTokensMax = 1 })
	p := r.ports[0]
	p.Provide(64)
	if err := recoverErr(t, func() { p.Provide(64) }); !errors.Is(err, ErrTokenExhausted) {
		t.Errorf("over-provide: got %v, want ErrTokenExhausted", err)
	}
}

func TestSelfSendError(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("self", func(p *sim.Proc) {
		if err := recoverErr(t, func() { r.ports[0].Send(p, 0, 1, []byte("x")) }); !errors.Is(err, ErrSelfSend) {
			t.Errorf("self send: got %v, want ErrSelfSend", err)
		}
	})
	r.run(t)
}
