package gm

import "repro/internal/metrics"

// Component is the metrics component name for the GM protocol layer.
const Component = "gm"

// instruments are the protocol counters for one NIC, cached so hot paths
// do no registry lookups. When the stack is wired with a disabled registry
// every field is nil and updates are no-ops; when no registry is wired at
// all, NewNIC falls back to a private enabled registry so the legacy
// Stats accessor still counts.
type instruments struct {
	dataSent         *metrics.Counter
	dataReceived     *metrics.Counter
	acksSent         *metrics.Counter
	acksReceived     *metrics.Counter
	acksSuppressed   *metrics.Counter
	acksPiggybacked  *metrics.Counter
	retransmits      *metrics.Counter
	timeouts         *metrics.Counter
	duplicates       *metrics.Counter
	oooDrops         *metrics.Counter
	noTokenDrops     *metrics.Counter
	nacksSent        *metrics.Counter
	nacksReceived    *metrics.Counter
	directedReceived *metrics.Counter
	directedRefused  *metrics.Counter
	tokenWaitNs      *metrics.Histogram
}

func (n *NIC) initMetrics(reg *metrics.Registry) {
	id := int(n.ID())
	n.m = instruments{
		dataSent:         reg.Counter(Component, id, "data_sent"),
		dataReceived:     reg.Counter(Component, id, "data_received"),
		acksSent:         reg.Counter(Component, id, "acks_sent"),
		acksReceived:     reg.Counter(Component, id, "acks_received"),
		acksSuppressed:   reg.Counter(Component, id, "acks_suppressed"),
		acksPiggybacked:  reg.Counter(Component, id, "acks_piggybacked"),
		retransmits:      reg.Counter(Component, id, "retransmits"),
		timeouts:         reg.Counter(Component, id, "timeouts"),
		duplicates:       reg.Counter(Component, id, "duplicates"),
		oooDrops:         reg.Counter(Component, id, "out_of_order_drops"),
		noTokenDrops:     reg.Counter(Component, id, "no_token_drops"),
		nacksSent:        reg.Counter(Component, id, "nacks_sent"),
		nacksReceived:    reg.Counter(Component, id, "nacks_received"),
		directedReceived: reg.Counter(Component, id, "directed_received"),
		directedRefused:  reg.Counter(Component, id, "directed_refused"),
		tokenWaitNs:      reg.Histogram(Component, id, "token_wait_ns"),
	}
}

// Stats returns a snapshot of protocol counters.
//
// Deprecated: the counters now live in the metrics registry (component
// "gm"); read them through a Snapshot. This accessor remains for callers
// that predate the registry.
func (n *NIC) Stats() Stats {
	return Stats{
		DataSent:         n.m.dataSent.Value(),
		DataReceived:     n.m.dataReceived.Value(),
		AcksSent:         n.m.acksSent.Value(),
		AcksReceived:     n.m.acksReceived.Value(),
		AcksSuppressed:   n.m.acksSuppressed.Value(),
		AcksPiggybacked:  n.m.acksPiggybacked.Value(),
		Retransmits:      n.m.retransmits.Value(),
		Duplicates:       n.m.duplicates.Value(),
		OutOfOrderDrops:  n.m.oooDrops.Value(),
		NoTokenDrops:     n.m.noTokenDrops.Value(),
		NacksSent:        n.m.nacksSent.Value(),
		NacksReceived:    n.m.nacksReceived.Value(),
		DirectedReceived: n.m.directedReceived.Value(),
		DirectedRefused:  n.m.directedRefused.Value(),
	}
}
