package gm

import (
	"fmt"

	"repro/internal/fabric"
)

// Kind discriminates wire frame types.
type Kind uint8

const (
	// KindData is a unicast data packet (one MTU-sized chunk of a message).
	KindData Kind = iota
	// KindAck is a cumulative unicast acknowledgment.
	KindAck
	// KindMcastData is a multicast data packet, handled by the core
	// extension's group machinery.
	KindMcastData
	// KindMcastAck is a per-group cumulative acknowledgment from a child
	// to its parent in the multicast tree.
	KindMcastAck
	// KindNack is a negative acknowledgment: the receiver saw a sequence
	// hole and asks the sender to go back immediately instead of waiting
	// for the timeout (optional fast recovery, Config.EnableNacks).
	KindNack
	// KindMcastNack is the per-group equivalent sent to the tree parent.
	KindMcastNack
	// KindBarrier is a NIC-level barrier round message (core extension):
	// Seq is the barrier instance, Offset the dissemination round.
	KindBarrier
	// KindBarrierAck acknowledges one barrier round message.
	KindBarrierAck
	// KindReduce carries a combined reduction vector up the tree
	// (core extension); KindReduceAck acknowledges it.
	KindReduce
	KindReduceAck
	// KindDirected is a remote-DMA put into a registered region
	// (gm_directed_send); MsgID carries the region id, Offset the write
	// offset. Same reliability as KindData, but no receive token and no
	// receive event.
	KindDirected
	// KindGather carries one chunk of a concatenate-and-forward allgather
	// batch up the tree (internal/coll): Seq is the instance, Offset the
	// byte offset within the batch, MsgLen the batch total. KindGatherAck
	// acknowledges one chunk.
	KindGather
	KindGatherAck
	// KindRing carries one member's vector one hop around the ring in the
	// ring-allgather variant: Seq is the instance, Offset the originating
	// member index. KindRingAck acknowledges it.
	KindRing
	KindRingAck
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	case KindMcastData:
		return "MCAST"
	case KindMcastAck:
		return "MACK"
	case KindNack:
		return "NACK"
	case KindMcastNack:
		return "MNACK"
	case KindBarrier:
		return "BARR"
	case KindBarrierAck:
		return "BARRACK"
	case KindReduce:
		return "RED"
	case KindReduceAck:
		return "REDACK"
	case KindDirected:
		return "DSEND"
	case KindGather:
		return "GATH"
	case KindGatherAck:
		return "GATHACK"
	case KindRing:
		return "RING"
	case KindRingAck:
		return "RINGACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Frame is the protocol header plus payload carried inside a
// fabric.Packet. One frame is one wire packet.
//
// A Frame is immutable once injected except through Clone — the NIC-based
// multisend "changes the packet header and queues it for transmission
// again", which Clone models without aliasing the in-flight copy.
type Frame struct {
	Kind             Kind
	SrcNode, DstNode fabric.NodeID
	SrcPort, DstPort PortID

	// Seq is the connection sequence number (per source port → destination
	// port pair) for unicast, or the group sequence number for multicast.
	Seq uint32
	// Ack is the cumulative acknowledged sequence number (KindAck/McastAck).
	Ack uint32

	// Message framing: a message is MsgLen bytes split into MTU chunks;
	// this frame carries Payload at Offset.
	MsgID  uint64
	MsgLen int
	Offset int

	// Piggy marks a data frame that also carries a cumulative
	// acknowledgment for the reverse direction of its connection in
	// PiggyAck (Config.PiggybackAcks). The value rides in reserved header
	// space, so the wire size is unchanged; a lost frame loses the
	// piggybacked ack with it, and the delayed-ack machinery recovers
	// through the usual duplicate re-ack.
	Piggy    bool
	PiggyAck uint32

	// Group tags multicast traffic. Epoch is the group-table epoch the
	// frame was emitted under (core extension's dynamic membership):
	// multicast data and acks carry it so a stale-epoch frame arriving at
	// a departed or not-yet-joined NIC is rejected instead of delivered.
	// Static groups never leave epoch 0.
	Group GroupID
	Epoch uint32

	Payload []byte
}

// Clone returns a copy of f sharing the payload bytes (the NIC replicates
// the header, not the data, when multisending).
func (f *Frame) Clone() *Frame {
	g := *f
	return &g
}

// packet wraps f for the fabric, computing its wire size.
func (f *Frame) packet(cfg Config, txDone func()) *fabric.Packet {
	size := cfg.WireSize(len(f.Payload))
	switch f.Kind {
	case KindAck, KindMcastAck, KindNack, KindMcastNack, KindBarrier, KindBarrierAck, KindReduceAck, KindGatherAck, KindRingAck:
		size = cfg.AckBytes
	}
	return &fabric.Packet{
		Src:     f.SrcNode,
		Dst:     f.DstNode,
		Size:    size,
		Payload: f,
		TxDone:  txDone,
	}
}

func (f *Frame) String() string {
	s := fmt.Sprintf("%s %v:%d->%v:%d seq=%d ack=%d msg=%d off=%d/%d grp=%d len=%d",
		f.Kind, f.SrcNode, f.SrcPort, f.DstNode, f.DstPort,
		f.Seq, f.Ack, f.MsgID, f.Offset, f.MsgLen, f.Group, len(f.Payload))
	if f.Epoch != 0 {
		s += fmt.Sprintf(" ep=%d", f.Epoch)
	}
	if f.Piggy {
		s += fmt.Sprintf(" pack=%d", f.PiggyAck)
	}
	return s
}
