package gm

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestAdaptiveRTORecoversFasterThanFixed(t *testing.T) {
	// Warm the estimator with clean traffic, then lose one packet: the
	// adaptive sender retries after ~RTT-scaled time, far sooner than the
	// 500µs fixed timer.
	run := func(adaptive bool) sim.Time {
		r := newRig(t, 2, func(c *Config) { c.AdaptiveRTO = adaptive })
		drop := false
		r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
			fr, ok := p.Payload.(*Frame)
			if ok && fr.Kind == KindData && drop {
				drop = false
				return true
			}
			return false
		}
		var at sim.Time
		r.eng.Spawn("recv", func(p *sim.Proc) {
			r.ports[1].ProvideN(11, 256)
			for i := 0; i < 11; i++ {
				r.ports[1].Recv(p)
				at = p.Now()
			}
		})
		r.eng.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < 10; i++ { // warm the RTT estimator
				r.ports[0].SendSync(p, 1, 1, pattern(64))
			}
			drop = true
			r.ports[0].SendSync(p, 1, 1, pattern(64))
		})
		r.run(t)
		return at
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive RTO recovery (%v) not faster than fixed (%v)", adaptive, fixed)
	}
}

func TestAdaptiveRTOFloorsAtMinRTO(t *testing.T) {
	// Even with a microsecond-scale RTT, the timer never drops below
	// MinRTO, so in-flight acks are not retried spuriously.
	r := newRig(t, 2, func(c *Config) { c.AdaptiveRTO = true })
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(20, 256)
		for i := 0; i < 20; i++ {
			got = r.ports[1].Recv(p).Data
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			r.ports[0].SendSync(p, 1, 1, pattern(64))
		}
	})
	r.run(t)
	if !bytes.Equal(got, pattern(64)) {
		t.Fatal("traffic corrupted")
	}
	if rt := r.nics[0].Stats().Retransmits; rt != 0 {
		t.Fatalf("clean adaptive run retransmitted %d times (timer below the RTT?)", rt)
	}
}

func TestKarnsRuleExcludesRetransmittedSamples(t *testing.T) {
	// Delay recovery inflates a retransmitted packet's apparent RTT; with
	// Karn's rule the estimator must stay near the true RTT afterwards.
	r := newRig(t, 2, func(c *Config) { c.AdaptiveRTO = true })
	dropOnce := true
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*Frame)
		if ok && fr.Kind == KindData && fr.Seq == 3 && dropOnce {
			dropOnce = false
			return true
		}
		return false
	}
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(30, 256)
		for i := 0; i < 30; i++ {
			r.ports[1].Recv(p)
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			r.ports[0].SendSync(p, 1, 1, pattern(32))
		}
	})
	r.run(t)
	// Inspect the estimator: a poisoned sample would push SRTT toward the
	// 500µs first-retry latency; the true ack RTT here is ~10µs.
	for _, c := range r.nics[0].conns {
		if c.srtt > 50*sim.Microsecond {
			t.Fatalf("SRTT %v poisoned by a retransmitted sample", c.srtt)
		}
	}
}

func TestAdaptiveRTOUnderSustainedLoss(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.AdaptiveRTO = true })
	r.net.SetRNG(sim.NewRNG(77))
	r.net.LossRate = 0.05
	const count = 30
	delivered := 0
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(count, 8192)
		for i := 0; i < count; i++ {
			r.ports[1].Recv(p)
			delivered++
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r.ports[0].Send(p, 1, 1, pattern(100+i*211))
		}
		for i := 0; i < count; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	if delivered != count {
		t.Fatalf("delivered %d of %d under loss with adaptive RTO", delivered, count)
	}
}
