package gm

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestDirectedSendWritesRemoteRegion(t *testing.T) {
	r := newRig(t, 2, nil)
	var landing []byte
	var rid RegionID
	data := pattern(10000) // multi-packet put
	r.eng.Spawn("recv", func(p *sim.Proc) {
		rid, landing = r.ports[1].RegisterRegion(len(data))
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond) // let registration happen
		r.ports[0].DirectedSendSync(p, 1, 1, 1, 0, data)
	})
	r.run(t)
	if !bytes.Equal(landing, data) {
		t.Fatal("directed write corrupted")
	}
	if got := r.ports[1].RegionWritten(rid); got != len(data) {
		t.Fatalf("region written %d bytes, want %d", got, len(data))
	}
	// Directed sends are silent at the receiver.
	if r.ports[1].PendingRecvs() != 0 {
		t.Fatal("directed send generated a receive event")
	}
}

func TestDirectedSendAtOffset(t *testing.T) {
	r := newRig(t, 2, nil)
	var landing []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		_, landing = r.ports[1].RegisterRegion(100)
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		r.ports[0].DirectedSendSync(p, 1, 1, 1, 40, []byte{7, 8, 9})
	})
	r.run(t)
	if landing[40] != 7 || landing[41] != 8 || landing[42] != 9 {
		t.Fatalf("offset write landed wrong: %v", landing[38:45])
	}
	if landing[0] != 0 || landing[43] != 0 {
		t.Fatal("bytes outside the written range were touched")
	}
}

func TestDirectedSendOutOfBoundsRefused(t *testing.T) {
	// A write past the region's end must be refused, never deposited. The
	// sender's go-back-N keeps retrying, so the send never completes —
	// protection turns a bad peer into a stalled peer, not corruption.
	r := newRig(t, 2, nil)
	completed := false
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].RegisterRegion(50)
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		r.ports[0].DirectedSend(p, 1, 1, 1, 40, pattern(20)) // 40+20 > 50
	})
	r.eng.RunUntil(5 * sim.Millisecond)
	r.eng.Kill()
	if completed {
		t.Fatal("out-of-bounds directed send completed")
	}
	if r.nics[1].Stats().DirectedRefused == 0 {
		t.Fatal("out-of-bounds write not counted as refused")
	}
	if got := r.ports[1].RegionWritten(1); got != 0 {
		t.Fatalf("%d bytes landed outside bounds", got)
	}
}

func TestDirectedSendUnknownRegionRefused(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].DirectedSend(p, 1, 1, 999, 0, pattern(16))
	})
	r.eng.RunUntil(3 * sim.Millisecond)
	r.eng.Kill()
	if r.nics[1].Stats().DirectedRefused == 0 {
		t.Fatal("write to unknown region not refused")
	}
}

func TestDirectedSendUnderLoss(t *testing.T) {
	r := newRig(t, 2, nil)
	r.net.SetRNG(sim.NewRNG(31))
	r.net.LossRate = 0.05
	data := pattern(20000)
	var landing []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		_, landing = r.ports[1].RegisterRegion(len(data))
	})
	done := false
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		r.ports[0].DirectedSendSync(p, 1, 1, 1, 0, data)
		done = true
	})
	r.run(t)
	if !done {
		t.Fatal("directed send never completed under loss")
	}
	if !bytes.Equal(landing, data) {
		t.Fatal("directed write corrupted under loss")
	}
}

func TestDirectedAndNormalSendsShareOrdering(t *testing.T) {
	// Directed and normal traffic between the same ports ride one
	// sequence space; both complete and neither corrupts the other.
	r := newRig(t, 2, nil)
	var landing, msg []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		_, landing = r.ports[1].RegisterRegion(5000)
		r.ports[1].Provide(256)
		msg = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		r.ports[0].DirectedSend(p, 1, 1, 1, 0, pattern(5000))
		r.ports[0].SendSync(p, 1, 1, []byte("after-the-put"))
	})
	r.run(t)
	if string(msg) != "after-the-put" {
		t.Fatalf("normal send corrupted: %q", msg)
	}
	if !bytes.Equal(landing, pattern(5000)) {
		t.Fatal("directed write corrupted")
	}
}

func TestDeregisterRegionRefusesLateWrites(t *testing.T) {
	r := newRig(t, 2, nil)
	var rid RegionID
	r.eng.Spawn("recv", func(p *sim.Proc) {
		rid, _ = r.ports[1].RegisterRegion(100)
		p.Sleep(5 * sim.Microsecond)
		r.ports[1].DeregisterRegion(rid)
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond) // after deregistration
		r.ports[0].DirectedSend(p, 1, 1, rid, 0, pattern(10))
	})
	r.eng.RunUntil(3 * sim.Millisecond)
	r.eng.Kill()
	if r.nics[1].Stats().DirectedRefused == 0 {
		t.Fatal("write to deregistered region not refused")
	}
}

func TestDeregisterUnknownRegionPanics(t *testing.T) {
	r := newRig(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("deregistering unknown region did not panic")
		}
	}()
	r.ports[0].DeregisterRegion(12345)
}

func TestDirectedSendToSelfPanics(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("directed send to self did not panic")
			}
		}()
		r.ports[0].DirectedSend(p, 0, 1, 1, 0, []byte{1})
	})
	r.run(t)
}
