package gm

import "errors"

// Sentinel errors for API misuse of the GM layer. The firmware model
// treats misuse as fatal (a real NIC would wedge), so these surface as
// panics carrying error values: recover the value and test it with
// errors.Is.
var (
	// ErrExtensionInstalled reports a second SetExtension on one NIC.
	ErrExtensionInstalled = errors.New("gm: extension already installed")
	// ErrPortInUse reports opening a port number twice on one NIC.
	ErrPortInUse = errors.New("gm: port already open")
	// ErrNoSuchPort reports looking up a port that was never opened.
	ErrNoSuchPort = errors.New("gm: port not open")
	// ErrForeignSource reports injecting a frame whose source is not the
	// injecting NIC.
	ErrForeignSource = errors.New("gm: frame source is not this NIC")
	// ErrTokenExhausted reports posting more receive tokens than the
	// configured cap allows.
	ErrTokenExhausted = errors.New("gm: receive token limit exceeded")
	// ErrSelfSend reports a send (or directed send) addressed to the
	// sending node itself.
	ErrSelfSend = errors.New("gm: send to self is not supported")
	// ErrNotRegistered reports deregistering (or addressing) a memory
	// region that is not registered.
	ErrNotRegistered = errors.New("gm: region not registered")
	// ErrNegativeOffset reports a directed send with a negative offset.
	ErrNegativeOffset = errors.New("gm: negative directed-send offset")
)
