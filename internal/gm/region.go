package gm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Directed sends — GM's remote-DMA put (gm_directed_send), the transport
// under MPICH-GM's rendezvous protocol. The receiver registers a memory
// region and hands its identifier to the sender out of band (the CTS
// message in MPI); the sender then writes into the region directly, with
// no receive tokens involved and no receive event generated — the silence
// is GM's actual behaviour, which is why MPICH-GM follows the data with a
// FIN message. Reliability rides the ordinary per-connection sequence
// space, so directed and normal traffic between the same ports stay
// mutually ordered.

// RegionID names a registered memory region on a port.
type RegionID uint64

// region is one registered, remotely writable buffer.
type region struct {
	id  RegionID
	buf []byte
	// written counts deposited bytes, a diagnostic for tests; directed
	// sends do not signal the receiving host.
	written int
}

// RegisterRegion pins a buffer of the given size for remote directed
// writes and returns its identifier and the backing memory.
func (p *Port) RegisterRegion(size int) (RegionID, []byte) {
	p.nextRegion++
	id := p.nextRegion
	r := &region{id: id, buf: make([]byte, size)}
	if p.regions == nil {
		p.regions = make(map[RegionID]*region)
	}
	p.regions[id] = r
	return id, r.buf
}

// DeregisterRegion unpins a region. Packets that arrive for it afterwards
// are refused (and recovered by the sender's go-back-N until it stops).
func (p *Port) DeregisterRegion(id RegionID) {
	if _, ok := p.regions[id]; !ok {
		panic(fmt.Errorf("%w: region %d", ErrNotRegistered, id))
	}
	delete(p.regions, id)
}

// RegionWritten reports how many bytes have been deposited into a region
// (testing/diagnostics; the protocol itself never tells the host).
func (p *Port) RegionWritten(id RegionID) int {
	if r, ok := p.regions[id]; ok {
		return r.written
	}
	return 0
}

// DirectedSend writes data into the remote port's registered region at
// the given offset — a remote DMA put. It consumes a host send token like
// any send; completion (all packets acknowledged) is observable via
// WaitSendDone. The remote host is not notified.
func (p *Port) DirectedSend(proc *sim.Proc, dst fabric.NodeID, dstPort PortID, remote RegionID, offset int, data []byte) {
	p.directedSend(proc, dst, dstPort, remote, offset, data, nil)
}

// DirectedSendSync performs a directed send and blocks until the remote
// NIC has acknowledged every packet — the write is then globally visible.
func (p *Port) DirectedSendSync(proc *sim.Proc, dst fabric.NodeID, dstPort PortID, remote RegionID, offset int, data []byte) {
	done := false
	w := sim.NewWaiter(p.nic.Engine())
	p.directedSend(proc, dst, dstPort, remote, offset, data, func() {
		done = true
		w.WakeAll()
	})
	for !done {
		w.Wait(proc)
	}
}

func (p *Port) directedSend(proc *sim.Proc, dst fabric.NodeID, dstPort PortID, remote RegionID, offset int, data []byte, onDone func()) {
	if dst == p.Node() {
		panic(ErrSelfSend)
	}
	if offset < 0 {
		panic(ErrNegativeOffset)
	}
	p.TakeSendToken(proc)
	proc.Compute(p.nic.Cfg.HostSendPost)
	n := p.nic
	n.HW.HostPost(func() {
		n.HW.CPUDo(n.Cfg.SendEventCost, func() {
			c := n.sendConn(p.id, dst, dstPort)
			tok := &sendToken{
				port:     p,
				conn:     c,
				msgID:    n.NewMsgID(),
				data:     data,
				directed: true,
				region:   remote,
				base:     offset,
				onDone: func() {
					p.ReturnSendToken()
					if onDone != nil {
						onDone()
					}
				},
			}
			c.enqueue(tok)
		})
	})
}

// rxDirected handles an arriving directed-write packet: the same sequence
// discipline as normal data, but the deposit goes straight into the
// registered region — no receive token, no assembly, no host event.
// Writes outside the region's bounds are refused: this is the protection
// GM's registered memory provides.
func (n *NIC) rxDirected(fr *Frame) {
	buf, ok := n.HW.RecvBufs.TryAcquire()
	if !ok {
		n.HW.CountRxNoBuffer()
		return
	}
	n.HW.CPUDo(n.Cfg.RecvProcCost, func() {
		r := n.recvConn(fr.SrcNode, fr.SrcPort, fr.DstPort)
		port, open := n.ports[fr.DstPort]
		if !open {
			buf.Release()
			return
		}
		switch {
		case fr.Seq < r.expect:
			n.m.duplicates.Inc()
			n.sendAck(fr, r.expect-1)
			buf.Release()
		case fr.Seq > r.expect:
			n.m.oooDrops.Inc()
			n.traceDrop("directed out-of-order seq=%d expect=%d", fr.Seq, r.expect)
			if n.Cfg.EnableNacks {
				n.sendNack(fr, r.expect-1)
			}
			buf.Release()
		default:
			reg, ok := port.regions[RegionID(fr.MsgID)]
			if !ok || fr.Offset+len(fr.Payload) > len(reg.buf) {
				// Unknown region or out-of-bounds write: refuse without
				// acknowledging. The sender retries; a misprogrammed peer
				// cannot scribble on memory it was not granted.
				n.m.directedRefused.Inc()
				n.traceDrop("directed write refused: region=%d off=%d len=%d",
					fr.MsgID, fr.Offset, len(fr.Payload))
				buf.Release()
				return
			}
			r.expect++
			n.m.directedReceived.Inc()
			n.sendAck(fr, fr.Seq)
			payload, off := fr.Payload, fr.Offset
			n.HW.NICToHost(len(payload), func() {
				copy(reg.buf[off:], payload)
				reg.written += len(payload)
				buf.Release()
			})
		}
	})
}
