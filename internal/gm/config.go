// Package gm implements a GM-2-like user-level message-passing protocol as
// firmware running on the lanai NIC model: ports, send/receive tokens,
// per-connection sequence numbers, send records with ack/timeout go-back-N
// retransmission, 4 KB-MTU packetization, and DMA'd completion events —
// the substrate the paper's NIC-based multicast (package core) is grafted
// onto via firmware extension hooks.
package gm

import "repro/internal/sim"

// PortID identifies a communication endpoint on a NIC. GM protects ports
// from each other; each user process opens its own.
type PortID int

// GroupID identifies a multicast group (used by the core extension; the
// base protocol only routes on it).
type GroupID uint32

// Config holds the protocol constants and firmware costs. Costs are
// charged on the LANai CPU facility, so concurrent work serializes exactly
// as it would on the real 133 MHz processor.
type Config struct {
	// MTU is the maximum packet payload; GM's is 4096 bytes.
	MTU int
	// HeaderBytes is the wire overhead per data packet; AckBytes the wire
	// size of an acknowledgment packet.
	HeaderBytes int
	AckBytes    int
	// SendTokens is the per-port budget of concurrently-outstanding send
	// descriptors; RecvTokensMax bounds posted receive buffers (0 = no cap).
	SendTokens    int
	RecvTokensMax int
	// Window is the per-connection limit of unacknowledged packets.
	Window int
	// RetransmitTimeout is the go-back-N timer. Real GM uses tens of
	// milliseconds; the simulation default is short so loss tests converge
	// quickly, and it stays far above any RTT the fabric produces.
	RetransmitTimeout sim.Time
	// AdaptiveRTO, when set, estimates the retransmission timeout from
	// measured acknowledgment round trips (SRTT + 4*RTTVAR, floored at
	// MinRTO), instead of the fixed RetransmitTimeout. Recovers faster on
	// quiet fabrics and avoids spurious retransmission under load.
	AdaptiveRTO bool
	MinRTO      sim.Time
	// BackoffCap bounds the exponential growth of the retransmission
	// interval: every consecutive timeout on a connection doubles the
	// interval up to RetransmitTimeout*BackoffCap, and any ack progress
	// resets it. Without backoff a saturated receiver melts down under a
	// synchronized retransmit storm. Zero means a cap factor of 64.
	BackoffCap int
	// EnableNacks turns on fast recovery: a receiver that sees a sequence
	// hole sends a negative acknowledgment, and the sender goes back
	// immediately instead of waiting out the timer. NackHoldoff bounds how
	// often a sender honors them (one fast retransmit per holdoff).
	EnableNacks bool
	NackHoldoff sim.Time
	// AckEvery, when > 1, turns on cumulative delayed acknowledgments: a
	// receiver holds its ack until AckEvery in-sequence packets have been
	// accepted or AckDelay has elapsed since the first unacknowledged one,
	// whichever comes first. Duplicates and holes still provoke an
	// immediate (n)ack so recovery latency is unchanged. Zero or one keeps
	// the classic one-ack-per-packet behavior.
	AckEvery int
	// AckDelay bounds how long a coalesced ack may be withheld. Zero means
	// RetransmitTimeout/8, comfortably below any retransmission interval.
	AckDelay sim.Time
	// PiggybackAcks lets a reverse-direction data frame carry the pending
	// cumulative ack in its header (Frame.PiggyAck), suppressing the
	// standalone ack packet entirely. Only does anything when AckEvery > 1
	// leaves acks pending to piggyback.
	PiggybackAcks bool

	// NIC firmware CPU costs.
	SendEventCost  sim.Time // translate a host send event into a send token
	TxSetupCost    sim.Time // queue one staged packet for transmission
	RecvProcCost   sim.Time // process one arriving data packet
	AckProcCost    sim.Time // process one arriving ack
	RetransmitCost sim.Time // per-packet cost of a timeout retransmission

	// Host-side costs.
	HostSendPost sim.Time // build + PIO-post one send event
	HostRecvCost sim.Time // consume one receive event
}

// DefaultConfig returns GM-2/LANai-9.1-era constants, calibrated so the
// small-message one-way latency lands near 7 µs as on the paper's testbed.
func DefaultConfig() Config {
	return Config{
		MTU:               4096,
		HeaderBytes:       24,
		AckBytes:          16,
		SendTokens:        16,
		RecvTokensMax:     0,
		Window:            16,
		RetransmitTimeout: 500 * sim.Microsecond,
		MinRTO:            80 * sim.Microsecond,
		BackoffCap:        64,
		NackHoldoff:       60 * sim.Microsecond,

		SendEventCost:  sim.Micros(1.7),
		TxSetupCost:    sim.Micros(0.3),
		RecvProcCost:   sim.Micros(1.0),
		AckProcCost:    sim.Micros(0.5),
		RetransmitCost: sim.Micros(0.8),

		HostSendPost: sim.Micros(0.4),
		HostRecvCost: sim.Micros(0.3),
	}
}

// AckCoalescing reports whether cumulative delayed acknowledgments are on.
func (c Config) AckCoalescing() bool { return c.AckEvery > 1 }

// EffectiveAckDelay reports the delayed-ack flush bound: AckDelay when
// set, else RetransmitTimeout/8.
func (c Config) EffectiveAckDelay() sim.Time {
	if c.AckDelay > 0 {
		return c.AckDelay
	}
	return c.RetransmitTimeout / 8
}

// ackEconomy reports whether any ack-economy feature is active; the fused
// ack dispatch path keys off it.
func (c Config) ackEconomy() bool { return c.AckCoalescing() || c.PiggybackAcks }

// Packets reports how many MTU-sized packets a message of n bytes needs.
// A zero-byte message still takes one (header-only) packet.
func (c Config) Packets(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + c.MTU - 1) / c.MTU
}

// WireSize reports the on-wire size of a data packet with the given
// payload length.
func (c Config) WireSize(payload int) int { return c.HeaderBytes + payload }
