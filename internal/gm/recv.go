package gm

import "repro/internal/trace"

// traceDrop records a refused packet when tracing is enabled.
func (n *NIC) traceDrop(format string, args ...any) {
	if n.Trace.Enabled() {
		n.Trace.Log(n.Engine().Now(), n.ID(), trace.Drop, format, args...)
	}
}

// Receive-side firmware: sequence checking, receive-token matching,
// RDMA to host memory, and acknowledgment generation.

// rxData handles an arriving unicast data packet. The packet occupies a
// NIC receive buffer from wire arrival until its payload has been RDMA'd
// into the matched host buffer; a NIC with no free receive buffer drops
// the packet at the wire (go-back-N recovers it).
func (n *NIC) rxData(fr *Frame) {
	buf, ok := n.HW.RecvBufs.TryAcquire()
	if !ok {
		n.HW.CountRxNoBuffer()
		return
	}
	n.HW.CPUDo(n.Cfg.RecvProcCost, func() {
		if fr.Piggy {
			// The frame carries the reverse direction's cumulative ack;
			// retire those send records inside this same CPU event — the
			// standalone ack's wire crossing and AckProcCost are the saving.
			n.sendConn(fr.DstPort, fr.SrcNode, fr.SrcPort).handleAck(fr.PiggyAck)
		}
		r := n.recvConn(fr.SrcNode, fr.SrcPort, fr.DstPort)
		port, open := n.ports[fr.DstPort]
		if !open {
			// No such port; silently dropping models a misdirected packet.
			buf.Release()
			return
		}
		switch {
		case SeqBefore(fr.Seq, r.expect):
			// Duplicate of an already-accepted packet (its ack was lost, or
			// go-back-N resent it). Re-ack so the sender advances; the
			// immediate cumulative ack also covers anything coalesced.
			n.m.duplicates.Inc()
			n.traceDrop("duplicate seq=%d expect=%d", fr.Seq, r.expect)
			r.absorbPending()
			n.sendAck(fr, r.expect-1)
			buf.Release()
		case SeqAfter(fr.Seq, r.expect):
			// Hole ahead of us: drop; the sender's timeout resends in
			// order. With fast recovery enabled, tell the sender now.
			n.m.oooDrops.Inc()
			n.traceDrop("out-of-order seq=%d expect=%d", fr.Seq, r.expect)
			if n.Cfg.EnableNacks {
				r.absorbPending()
				n.sendNack(fr, r.expect-1)
			}
			buf.Release()
		default:
			asm, ok := port.matchAssembly(fr.SrcNode, fr.SrcPort, fr.MsgID, fr.MsgLen, fr.Group)
			if !ok {
				// In sequence but the host has posted no receive buffer
				// large enough. Don't ack: the sender will retransmit,
				// and accepting would violate ordered delivery. Providing
				// tokens in time is the client program's responsibility.
				n.m.noTokenDrops.Inc()
				n.traceDrop("no receive token for %d bytes", fr.MsgLen)
				buf.Release()
				return
			}
			r.expect++
			n.m.dataReceived.Inc()
			if n.Trace.Enabled() {
				n.Trace.Log(n.Engine().Now(), n.ID(), trace.RX, "%v", fr)
			}
			if n.Cfg.AckCoalescing() {
				r.noteAccepted()
			} else {
				n.sendAck(fr, fr.Seq)
			}
			payload := fr.Payload
			off := fr.Offset
			n.HW.NICToHost(len(payload), func() {
				buf.Release()
				asm.Deposit(off, payload)
			})
		}
	})
}

// sendAck emits a cumulative acknowledgment for the connection the data
// frame arrived on. Acks are NIC-generated (no host memory touched, no
// send buffer consumed) and ride the same wire as data.
func (n *NIC) sendAck(data *Frame, ack uint32) {
	n.m.acksSent.Inc()
	n.Inject(&Frame{
		Kind:    KindAck,
		SrcNode: n.ID(), DstNode: data.SrcNode,
		SrcPort: data.DstPort, DstPort: data.SrcPort,
		Ack: ack,
	}, nil)
}

// rxAck handles an arriving unicast acknowledgment.
func (n *NIC) rxAck(fr *Frame) {
	if n.Cfg.ackEconomy() {
		n.m.acksReceived.Inc()
		n.fuseAck(fr, false)
		return
	}
	n.HW.CPUDo(n.Cfg.AckProcCost, func() {
		n.m.acksReceived.Inc()
		c := n.sendConn(fr.DstPort, fr.SrcNode, fr.SrcPort)
		c.handleAck(fr.Ack)
	})
}

// fuseAck feeds one arriving (n)ack into the connection's fused dispatch:
// the first arms a single AckProcCost event; any that land while it is
// queued fold in their cumulative values (serial max) and are absorbed
// without a CPU event or an allocation of their own.
func (n *NIC) fuseAck(fr *Frame, nack bool) {
	c := n.sendConn(fr.DstPort, fr.SrcNode, fr.SrcPort)
	if c.ackFuse.Pending() {
		if SeqAfter(fr.Ack, c.fusedAck) {
			c.fusedAck = fr.Ack
		}
		c.fusedNack = c.fusedNack || nack
		return
	}
	c.fusedAck = fr.Ack
	c.fusedNack = nack
	c.ackFuse.Arm(n.Cfg.AckProcCost)
}

// sendNack emits a negative acknowledgment carrying the last in-order
// sequence number, asking the sender to go back without waiting for its
// timer (fast recovery; GM-2 rejects out-of-sequence packets similarly).
func (n *NIC) sendNack(data *Frame, lastGood uint32) {
	n.m.nacksSent.Inc()
	n.Inject(&Frame{
		Kind:    KindNack,
		SrcNode: n.ID(), DstNode: data.SrcNode,
		SrcPort: data.DstPort, DstPort: data.SrcPort,
		Ack: lastGood,
	}, nil)
}

// rxNack handles an arriving negative acknowledgment: retire everything
// the cumulative field covers, then go-back-N immediately (bounded by the
// per-connection holdoff so a burst of nacks triggers one resend).
func (n *NIC) rxNack(fr *Frame) {
	if n.Cfg.ackEconomy() {
		n.m.nacksReceived.Inc()
		n.fuseAck(fr, true)
		return
	}
	n.HW.CPUDo(n.Cfg.AckProcCost, func() {
		n.m.nacksReceived.Inc()
		c := n.sendConn(fr.DstPort, fr.SrcNode, fr.SrcPort)
		c.handleAck(fr.Ack)
		c.fastRetransmit()
	})
}
