package gm

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// lossyRun sends a multi-packet message with the second data packet
// dropped and returns the delivery time.
func lossyRun(t *testing.T, nacks bool) (sim.Time, Stats, Stats) {
	t.Helper()
	r := newRig(t, 2, func(c *Config) { c.EnableNacks = nacks })
	dropped := false
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*Frame)
		if ok && fr.Kind == KindData && fr.Seq == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	msg := pattern(3 * 4096)
	var at sim.Time
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 15)
		got = r.ports[1].Recv(p).Data
		at = p.Now()
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted")
	}
	return at, r.nics[0].Stats(), r.nics[1].Stats()
}

func TestNacksSpeedUpRecovery(t *testing.T) {
	slow, _, _ := lossyRun(t, false)
	fast, sender, receiver := lossyRun(t, true)
	if receiver.NacksSent == 0 || sender.NacksReceived == 0 {
		t.Fatalf("nack counters empty: sent=%d received=%d",
			receiver.NacksSent, sender.NacksReceived)
	}
	if fast >= slow {
		t.Fatalf("nack recovery (%v) not faster than timeout recovery (%v)", fast, slow)
	}
	// Timeout recovery waits out most of the 500µs timer; nack recovery
	// should finish well under half of that.
	if fast > slow/2 {
		t.Fatalf("nack recovery %v too close to timeout recovery %v", fast, slow)
	}
}

func TestNackHoldoffCollapsesBursts(t *testing.T) {
	// Drop one packet of a long stream: the many out-of-order packets
	// behind the hole each provoke a nack, but the sender must perform
	// far fewer fast retransmission rounds than it receives nacks.
	r := newRig(t, 2, func(c *Config) { c.EnableNacks = true })
	dropped := false
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*Frame)
		if ok && fr.Kind == KindData && fr.Seq == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	msg := pattern(10 * 4096)
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 17)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted")
	}
	s := r.nics[1].Stats()
	if s.NacksSent < 2 {
		t.Fatalf("expected a burst of nacks, saw %d", s.NacksSent)
	}
	// Retransmits should be bounded by roughly one window, not
	// nacks × window.
	if r.nics[0].Stats().Retransmits > 2*uint64(r.nics[0].Cfg.Window) {
		t.Fatalf("%d retransmits for %d nacks: holdoff not effective",
			r.nics[0].Stats().Retransmits, s.NacksSent)
	}
}

func TestNacksDisabledByDefault(t *testing.T) {
	_, sender, receiver := lossyRun(t, false)
	if receiver.NacksSent != 0 || sender.NacksReceived != 0 {
		t.Fatal("nacks flowed while disabled")
	}
}

func TestRetransmitBackoffGrows(t *testing.T) {
	// A receiver that never accepts (no tokens, so no acks) forces
	// repeated timeouts; consecutive retransmissions must spread out
	// exponentially rather than fire at a fixed cadence.
	r := newRig(t, 2, nil)
	var sends []sim.Time
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*Frame)
		// Count each transmission once: at the sender's injection link.
		if ok && fr.Kind == KindData && l.String() == "host0->xbar0" {
			sends = append(sends, r.eng.Now())
		}
		return false
	}
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].Send(p, 1, 1, pattern(16))
	})
	r.eng.RunUntil(20 * sim.Millisecond)
	r.eng.Kill()
	if len(sends) < 4 {
		t.Fatalf("only %d transmissions in 20ms", len(sends))
	}
	gap1 := sends[2] - sends[1]
	gapLast := sends[len(sends)-1] - sends[len(sends)-2]
	if gapLast < 2*gap1 {
		t.Fatalf("retransmit gaps did not back off: first %v, last %v", gap1, gapLast)
	}
}

func TestBackoffResetsOnProgress(t *testing.T) {
	// After recovery, a later loss must again be retried at the base
	// timeout, not the backed-off interval.
	r := newRig(t, 2, nil)
	var dataSends []sim.Time
	dropUntil := 3 * sim.Millisecond
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		fr, ok := p.Payload.(*Frame)
		if !ok || fr.Kind != KindData {
			return false
		}
		dataSends = append(dataSends, r.eng.Now())
		return r.eng.Now() < dropUntil
	}
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(2, 64)
		r.ports[1].Recv(p)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(16)) // suffers backed-off retries
		r.ports[0].SendSync(p, 1, 1, []byte{9})   // clean send after recovery
	})
	r.run(t)
	if len(got) != 1 || got[0] != 9 {
		t.Fatal("second message lost")
	}
	// The second message's (single) transmission happened promptly after
	// the first completed — no residual backoff is directly observable,
	// but the connection must have made it through.
	if len(dataSends) < 3 {
		t.Fatalf("expected several transmissions, saw %d", len(dataSends))
	}
}
