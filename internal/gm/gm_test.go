package gm

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/lanai"
	"repro/internal/sim"
)

// rig is a small GM test cluster.
type rig struct {
	eng   *sim.Engine
	net   *fabric.Network
	nics  []*NIC
	ports []*Port
}

func newRig(t *testing.T, nodes int, mut func(*Config)) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, nodes, fabric.DefaultLinkParams())
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	r := &rig{eng: eng, net: net}
	for i := 0; i < nodes; i++ {
		hw := lanai.New(eng, net.Iface(fabric.NodeID(i)), lanai.DefaultParams())
		nic := NewNIC(hw, cfg)
		r.nics = append(r.nics, nic)
		r.ports = append(r.ports, nic.OpenPort(1))
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	r.eng.Run()
	r.eng.Kill()
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

func TestUnicastSmallMessage(t *testing.T) {
	r := newRig(t, 2, nil)
	msg := pattern(64)
	var got []byte
	var at sim.Time
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 14)
		ev := r.ports[1].Recv(p)
		got = ev.Data
		at = p.Now()
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %d bytes, mismatch with sent %d", len(got), len(msg))
	}
	// One-way small-message latency should land in GM territory (5–12 µs).
	us := at.Micros()
	if us < 4 || us > 15 {
		t.Fatalf("one-way latency %.2fµs outside GM-era envelope [4,15]", us)
	}
}

func TestUnicastLargeMessageMultiPacket(t *testing.T) {
	r := newRig(t, 2, nil)
	msg := pattern(3*4096 + 123) // four packets
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 16)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-packet message corrupted")
	}
	if s := r.nics[0].Stats(); s.DataSent != 4 {
		t.Fatalf("sent %d packets, want 4", s.DataSent)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	r := newRig(t, 2, nil)
	delivered := false
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(64)
		ev := r.ports[1].Recv(p)
		delivered = true
		if len(ev.Data) != 0 {
			t.Errorf("zero-length message delivered %d bytes", len(ev.Data))
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, nil)
	})
	r.run(t)
	if !delivered {
		t.Fatal("zero-length message never delivered")
	}
}

func TestMessagesDeliveredInOrder(t *testing.T) {
	r := newRig(t, 2, nil)
	const count = 20
	var order []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(count, 256)
		for i := 0; i < count; i++ {
			ev := r.ports[1].Recv(p)
			order = append(order, ev.Data[0])
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r.ports[0].Send(p, 1, 1, []byte{byte(i), 1, 2, 3})
		}
		for i := 0; i < count; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	if len(order) != count {
		t.Fatalf("delivered %d messages, want %d", len(order), count)
	}
	for i, v := range order {
		if v != byte(i) {
			t.Fatalf("message order %v violated at %d", order, i)
		}
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	r := newRig(t, 2, nil)
	// Drop the first three data packets at the wire.
	drops := 0
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		if fr, ok := p.Payload.(*Frame); ok && fr.Kind == KindData && drops < 3 {
			drops++
			return true
		}
		return false
	}
	msg := pattern(10000)
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 16)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted after loss recovery")
	}
	if r.nics[0].Stats().Retransmits == 0 {
		t.Fatal("loss recovered without any retransmission?")
	}
}

func TestRandomLossManyMessagesAllDelivered(t *testing.T) {
	r := newRig(t, 2, nil)
	r.net.SetRNG(sim.NewRNG(99))
	r.net.LossRate = 0.05
	const count = 50
	var got [][]byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(count, 8192)
		for i := 0; i < count; i++ {
			ev := r.ports[1].Recv(p)
			got = append(got, ev.Data)
		}
	})
	var sent [][]byte
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			msg := pattern(100 + i*137)
			sent = append(sent, msg)
			r.ports[0].Send(p, 1, 1, msg)
		}
		for i := 0; i < count; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	if len(got) != count {
		t.Fatalf("delivered %d of %d under loss", len(got), count)
	}
	for i := range got {
		if !bytes.Equal(got[i], sent[i]) {
			t.Fatalf("message %d corrupted or reordered under loss", i)
		}
	}
}

func TestAckLossTriggersDuplicateHandling(t *testing.T) {
	r := newRig(t, 2, nil)
	dropped := false
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		if fr, ok := p.Payload.(*Frame); ok && fr.Kind == KindAck && !dropped {
			dropped = true
			return true
		}
		return false
	}
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(2, 256)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(32))
	})
	r.run(t)
	if !bytes.Equal(got, pattern(32)) {
		t.Fatal("message lost after ack drop")
	}
	s := r.nics[1].Stats()
	if s.Duplicates == 0 {
		t.Fatal("expected duplicate delivery after ack loss, saw none")
	}
	if r.ports[1].PendingRecvs() != 0 {
		t.Fatal("duplicate was delivered to the host twice")
	}
}

func TestNoReceiveTokenDelaysDelivery(t *testing.T) {
	r := newRig(t, 2, nil)
	var deliveredAt sim.Time
	r.eng.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // post the token late
		r.ports[1].Provide(256)
		r.ports[1].Recv(p)
		deliveredAt = p.Now()
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(16))
	})
	r.run(t)
	if deliveredAt < 2*sim.Millisecond {
		t.Fatalf("delivered at %v before a token existed", deliveredAt)
	}
	if r.nics[1].Stats().NoTokenDrops == 0 {
		t.Fatal("expected tokenless drops, saw none")
	}
}

func TestSendTokenExhaustionBlocksSender(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.SendTokens = 2 })
	var posted int
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(8, 256)
		for i := 0; i < 8; i++ {
			r.ports[1].Recv(p)
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			r.ports[0].Send(p, 1, 1, pattern(16))
			posted++
		}
	})
	r.run(t)
	if posted != 8 {
		t.Fatalf("only %d sends posted; token recycling stuck", posted)
	}
}

func TestWindowLimitsInflightPackets(t *testing.T) {
	var maxInflight int
	r := newRig(t, 2, func(c *Config) { c.Window = 4 })
	// Observe the sender's record count through stats: inflight packets =
	// DataSent - (acks processed). Instead track via DropFn counting
	// simultaneous data packets between send and ack.
	inflight := 0
	r.net.DropFn = func(p *fabric.Packet, l *fabric.Link) bool {
		if fr, ok := p.Payload.(*Frame); ok {
			if fr.Kind == KindData && l.String() == "host0->xbar0" {
				inflight++
				if inflight > maxInflight {
					maxInflight = inflight
				}
			}
			if fr.Kind == KindAck && l.String() == "host1->xbar0" {
				inflight--
			}
		}
		return false
	}
	msg := pattern(40 * 4096) // 40 packets
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(1 << 20)
		r.ports[1].Recv(p)
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg)
	})
	r.run(t)
	if maxInflight > 4+1 { // +1 tolerance for ack-in-flight race in the probe
		t.Fatalf("max inflight %d exceeds window 4", maxInflight)
	}
}

func TestExtensionInterceptsFrames(t *testing.T) {
	r := newRig(t, 2, nil)
	seen := 0
	r.nics[1].SetExtension(extFunc(func(fr *Frame) bool {
		seen++
		return false // pass through
	}))
	var got []byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(256)
		got = r.ports[1].Recv(p).Data
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(16))
	})
	r.run(t)
	if seen == 0 {
		t.Fatal("extension saw no frames")
	}
	if !bytes.Equal(got, pattern(16)) {
		t.Fatal("pass-through extension broke unicast delivery")
	}
}

type extFunc func(*Frame) bool

func (f extFunc) HandleRx(fr *Frame) bool { return f(fr) }

func TestDoubleExtensionPanics(t *testing.T) {
	r := newRig(t, 2, nil)
	r.nics[0].SetExtension(extFunc(func(*Frame) bool { return false }))
	defer func() {
		if recover() == nil {
			t.Error("second SetExtension did not panic")
		}
	}()
	r.nics[0].SetExtension(extFunc(func(*Frame) bool { return false }))
}

func TestBidirectionalTraffic(t *testing.T) {
	r := newRig(t, 2, nil)
	const rounds = 10
	ok0 := 0
	r.eng.Spawn("node0", func(p *sim.Proc) {
		r.ports[0].ProvideN(rounds, 256)
		for i := 0; i < rounds; i++ {
			r.ports[0].Send(p, 1, 1, []byte{byte(i)})
			ev := r.ports[0].Recv(p)
			if ev.Data[0] == byte(i) {
				ok0++
			}
		}
	})
	r.eng.Spawn("node1", func(p *sim.Proc) {
		r.ports[1].ProvideN(rounds, 256)
		for i := 0; i < rounds; i++ {
			ev := r.ports[1].Recv(p)
			r.ports[1].Send(p, 0, 1, ev.Data)
		}
	})
	r.run(t)
	if ok0 != rounds {
		t.Fatalf("ping-pong completed %d/%d rounds", ok0, rounds)
	}
}

func TestManyToOne(t *testing.T) {
	const nodes = 8
	r := newRig(t, nodes, nil)
	received := map[byte]int{}
	r.eng.Spawn("sink", func(p *sim.Proc) {
		r.ports[0].ProvideN((nodes-1)*3, 512)
		for i := 0; i < (nodes-1)*3; i++ {
			ev := r.ports[0].Recv(p)
			received[ev.Data[0]]++
		}
	})
	for i := 1; i < nodes; i++ {
		i := i
		r.eng.Spawn("src", func(p *sim.Proc) {
			for j := 0; j < 3; j++ {
				r.ports[i].SendSync(p, 0, 1, []byte{byte(i), byte(j)})
			}
		})
	}
	r.run(t)
	for i := 1; i < nodes; i++ {
		if received[byte(i)] != 3 {
			t.Fatalf("sink got %d messages from node %d, want 3", received[byte(i)], i)
		}
	}
}

func TestSendToSelfPanics(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send to self did not panic")
			}
		}()
		r.ports[0].Send(p, 0, 1, []byte{1})
	})
	r.run(t)
}

func TestSequencesIndependentPerConnection(t *testing.T) {
	// Messages from node0 to node1 and node2 must not share ordering state.
	r := newRig(t, 3, nil)
	got1, got2 := 0, 0
	r.eng.Spawn("r1", func(p *sim.Proc) {
		r.ports[1].ProvideN(5, 256)
		for i := 0; i < 5; i++ {
			r.ports[1].Recv(p)
			got1++
		}
	})
	r.eng.Spawn("r2", func(p *sim.Proc) {
		r.ports[2].ProvideN(5, 256)
		for i := 0; i < 5; i++ {
			r.ports[2].Recv(p)
			got2++
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.ports[0].Send(p, 1, 1, []byte{1})
			r.ports[0].Send(p, 2, 1, []byte{2})
		}
		for i := 0; i < 10; i++ {
			r.ports[0].WaitSendDone(p)
		}
	})
	r.run(t)
	if got1 != 5 || got2 != 5 {
		t.Fatalf("deliveries %d/%d, want 5/5", got1, got2)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(256)
		r.ports[1].Recv(p)
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, pattern(100))
	})
	r.run(t)
	s0, s1 := r.nics[0].Stats(), r.nics[1].Stats()
	if s0.DataSent != 1 || s1.DataReceived != 1 {
		t.Errorf("data counters: sent=%d received=%d, want 1/1", s0.DataSent, s1.DataReceived)
	}
	if s1.AcksSent != 1 || s0.AcksReceived != 1 {
		t.Errorf("ack counters: sent=%d received=%d, want 1/1", s1.AcksSent, s0.AcksReceived)
	}
	if s0.Retransmits != 0 {
		t.Errorf("lossless run retransmitted %d times", s0.Retransmits)
	}
}

func TestConfigPackets(t *testing.T) {
	c := DefaultConfig()
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {16384, 4}, {16287, 4},
	}
	for _, tc := range cases {
		if got := c.Packets(tc.n); got != tc.want {
			t.Errorf("Packets(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng := sim.NewEngine()
		net := fabric.SingleSwitch(eng, 4, fabric.DefaultLinkParams())
		net.SetRNG(sim.NewRNG(7))
		net.LossRate = 0.02
		cfg := DefaultConfig()
		var nics []*NIC
		var ports []*Port
		for i := 0; i < 4; i++ {
			hw := lanai.New(eng, net.Iface(fabric.NodeID(i)), lanai.DefaultParams())
			nic := NewNIC(hw, cfg)
			nics = append(nics, nic)
			ports = append(ports, nic.OpenPort(1))
		}
		for i := 1; i < 4; i++ {
			i := i
			eng.Spawn("recv", func(p *sim.Proc) {
				ports[i].ProvideN(10, 4096)
				for j := 0; j < 10; j++ {
					ports[i].Recv(p)
				}
			})
		}
		eng.Spawn("send", func(p *sim.Proc) {
			for j := 0; j < 10; j++ {
				for i := 1; i < 4; i++ {
					ports[0].Send(p, fabric.NodeID(i), 1, pattern(200+j))
				}
			}
			for j := 0; j < 30; j++ {
				ports[0].WaitSendDone(p)
			}
		})
		eng.Run()
		eng.Kill()
		return eng.Now(), eng.EventsFired()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("replay diverged: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}
