package gm

import (
	"repro/internal/lanai"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sendToken is the firmware-side descriptor for one outgoing message,
// translated from a host send event — GM's "send token".
type sendToken struct {
	port    *Port
	conn    *conn
	msgID   uint64
	data    []byte
	nextOff int // next byte offset to stage
	pending int // packets staged or in flight, not yet acked
	staged  bool
	// directed marks a remote-DMA put: region names the remote region and
	// base the starting write offset within it.
	directed bool
	region   RegionID
	base     int
	// onDone is posted to the host when every packet is acknowledged
	// (returns the host-level send token).
	onDone func()
}

func (t *sendToken) remaining() int { return len(t.data) - t.nextOff }

// allStaged reports whether every chunk has been handed to the DMA engine.
func (t *sendToken) allStaged() bool {
	return t.staged
}

// sendRecord tracks one transmitted, unacknowledged packet — GM's "send
// record": sequence number plus the time it was sent, kept until the
// acknowledgment arrives, driving timeout retransmission.
type sendRecord struct {
	seq    uint32
	frame  *Frame
	sentAt sim.Time
	tok    *sendToken
	// retransmitted excludes the record from RTT sampling (Karn's rule).
	retransmitted bool
}

// conn is the sender-side reliability state for one connection: FIFO send
// queue, next sequence number, window of send records, retransmit timer.
type conn struct {
	nic     *NIC
	key     connKey
	nextSeq uint32
	queue   []*sendToken
	records []*sendRecord // ordered by seq
	staging int           // packets between staging and record creation
	// timer is the reusable retransmit timer; arming it allocates nothing,
	// which matters because every ack progression re-arms it.
	timer *sim.Timer
	// lastFast is when the last nack-triggered retransmission fired;
	// fastArmed distinguishes "never fired" from "fired at sim time 0"
	// (a bare zero-check would let a t=0 nack burst defeat the holdoff).
	lastFast  sim.Time
	fastArmed bool
	// backoff counts consecutive timeouts; the retransmit interval doubles
	// with each until the configured cap, and resets on ack progress.
	backoff int
	// Round-trip estimation (AdaptiveRTO): smoothed RTT and variance in
	// the style of TCP (Jacobson/Karels).
	srtt, rttvar sim.Time
	// Fused ack dispatch (ack economy): while one AckProcCost CPU event is
	// queued for this connection, later (n)acks fold their cumulative
	// values into fusedAck/fusedNack instead of scheduling more events, so
	// a burst of coalesced acks retires a whole window in one event with
	// no per-ack allocation.
	ackFuse   *lanai.Fuse
	fusedAck  uint32
	fusedNack bool
}

func newConn(n *NIC, k connKey) *conn {
	c := &conn{nic: n, key: k, nextSeq: 1}
	c.timer = n.Engine().NewTimer(c.onTimeout)
	if n.Cfg.ackEconomy() {
		c.ackFuse = lanai.NewFuse(n.HW, c.dispatchFusedAck)
	}
	return c
}

// dispatchFusedAck drains the fused cumulative ack accumulated while the
// AckProcCost event sat in the CPU queue.
func (c *conn) dispatchFusedAck() {
	ack, nack := c.fusedAck, c.fusedNack
	c.fusedNack = false
	c.handleAck(ack)
	if nack {
		c.fastRetransmit()
	}
}

// enqueue admits a token and starts the pump.
func (c *conn) enqueue(t *sendToken) {
	c.queue = append(c.queue, t)
	c.pump()
}

// windowOpen reports whether another packet may enter flight.
func (c *conn) windowOpen() bool {
	return len(c.records)+c.staging < c.nic.Cfg.Window
}

// pump stages packets from the head token while the window allows: acquire
// a send buffer, SDMA the chunk from host memory, then hand the packet to
// the transmit engine. Stages are pipelined — the SDMA engine fills the
// next buffer while the transmit engine drains the previous one.
func (c *conn) pump() {
	for len(c.queue) > 0 && c.windowOpen() {
		t := c.queue[0]
		chunk := t.remaining()
		if chunk > c.nic.Cfg.MTU {
			chunk = c.nic.Cfg.MTU
		}
		fr := &Frame{
			Kind:    KindData,
			SrcNode: c.nic.ID(), DstNode: c.key.Node,
			SrcPort: c.key.LocalP, DstPort: c.key.RemoteP,
			Seq:    c.nextSeq,
			MsgID:  t.msgID,
			MsgLen: len(t.data),
			Offset: t.nextOff,
		}
		if t.directed {
			fr.Kind = KindDirected
			fr.MsgID = uint64(t.region)
			fr.Offset = t.base + t.nextOff
		} else if c.nic.Cfg.PiggybackAcks {
			// Reverse-direction receiver state shares this connection's key
			// (mirrored port pair); a pending coalesced ack rides out in
			// this frame's header instead of a standalone ack packet.
			if r, ok := c.nic.rcvrs[c.key]; ok && r.pending > 0 {
				fr.Piggy = true
				fr.PiggyAck = r.expect - 1
				c.nic.m.acksPiggybacked.Inc()
				c.nic.m.acksSuppressed.Add(uint64(r.pending))
				r.pending = 0
				r.ackTimer.Stop()
			}
		}
		if chunk > 0 {
			fr.Payload = t.data[t.nextOff : t.nextOff+chunk]
		}
		c.nextSeq++
		t.nextOff += chunk
		t.pending++
		if t.remaining() == 0 {
			t.staged = true
			c.queue = c.queue[1:]
		}
		c.staging++
		c.stage(fr, t)
	}
}

// stage moves one packet through buffer acquisition, SDMA, and transmit.
func (c *conn) stage(fr *Frame, t *sendToken) {
	nic := c.nic
	nic.HW.SendBufs.Acquire(func(buf *lanai.Buf) {
		nic.HW.HostToNIC(len(fr.Payload), func() {
			nic.HW.CPUDo(nic.Cfg.TxSetupCost, func() {
				nic.Inject(fr, func() {
					// Transmit engine done with the NIC buffer.
					buf.Release()
					nic.m.dataSent.Inc()
					c.staging--
					c.recordSent(fr, t)
					c.pump()
				})
			})
		})
	})
}

// recordSent files the send record and arms the retransmit timer.
func (c *conn) recordSent(fr *Frame, t *sendToken) {
	c.records = append(c.records, &sendRecord{
		seq: fr.Seq, frame: fr, sentAt: c.nic.Engine().Now(), tok: t,
	})
	c.armTimer()
}

// handleAck retires records with seq <= ack (cumulative), completes tokens
// whose last packet was acknowledged, and reopens the window.
func (c *conn) handleAck(ack uint32) {
	now := c.nic.Engine().Now()
	retired := 0
	// Under ack coalescing one cumulative ack retires several records; take
	// a single RTT sample (the oldest non-retransmitted record) per ack so
	// the estimator sees the coalesce hold time once instead of averaging
	// it down across the batch.
	coalescing := c.nic.Cfg.AckCoalescing()
	sampled := false
	for _, r := range c.records {
		if SeqAfter(r.seq, ack) {
			break
		}
		if c.nic.Cfg.AdaptiveRTO && !r.retransmitted && !(coalescing && sampled) {
			// Karn's rule: never sample retransmitted packets.
			c.observeRTT(now - r.sentAt)
			sampled = true
		}
		retired++
		r.tok.pending--
		if r.tok.allStaged() && r.tok.pending == 0 {
			r.tok.onDone()
		}
	}
	if retired == 0 {
		return
	}
	c.backoff = 0 // forward progress resets the backoff
	c.records = c.records[retired:]
	c.armTimer()
	c.pump()
}

// armTimer (re)sets the retransmit timer to fire when the oldest
// outstanding record expires (with exponential backoff after consecutive
// timeouts), or cancels it when none remain.
func (c *conn) armTimer() {
	eng := c.nic.Engine()
	if len(c.records) == 0 {
		c.timer.Stop()
		c.backoff = 0
		return
	}
	deadline := c.records[0].sentAt + c.rto()
	if deadline < eng.Now() {
		deadline = eng.Now()
	}
	c.timer.Reset(deadline)
}

// rto reports the current retransmission interval under backoff, using
// the measured round-trip estimate when adaptive timeouts are enabled.
func (c *conn) rto() sim.Time {
	base := c.nic.Cfg.RetransmitTimeout
	if c.nic.Cfg.AckCoalescing() {
		// Budget for the receiver's lawful ack hold — without this a
		// configured AckDelay near the fixed timeout turns every coalesced
		// ack into a spurious go-back-N.
		base += c.nic.Cfg.EffectiveAckDelay()
	}
	if c.nic.Cfg.AdaptiveRTO && c.srtt > 0 {
		base = c.srtt + 4*c.rttvar
		floor := c.nic.Cfg.MinRTO
		if c.nic.Cfg.AckCoalescing() {
			// A receiver may lawfully sit on an ack for the full delay;
			// keep the timer above it or clean runs retransmit spuriously.
			floor += c.nic.Cfg.EffectiveAckDelay()
		}
		if base < floor {
			base = floor
		}
	}
	cap := c.nic.Cfg.BackoffCap
	if cap <= 0 {
		cap = 64
	}
	mult := 1 << min(c.backoff, 30)
	if mult > cap {
		mult = cap
	}
	return base * sim.Time(mult)
}

// observeRTT folds one acknowledgment round trip into the estimator
// (alpha 1/8, beta 1/4, the classic constants).
func (c *conn) observeRTT(sample sim.Time) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	diff := c.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	c.rttvar += (diff - c.rttvar) / 4
	c.srtt += (sample - c.srtt) / 8
}

// onTimeout performs go-back-N: retransmit the oldest unacknowledged
// packet and every later one on this connection, in order.
func (c *conn) onTimeout() {
	if len(c.records) == 0 {
		return
	}
	c.backoff++
	nic := c.nic
	nic.m.timeouts.Inc()
	now := nic.Engine().Now()
	for _, r := range c.records {
		r.sentAt = now // pushed forward again below as each re-send completes
		r.retransmitted = true
		fr := r.frame
		nic.m.retransmits.Inc()
		if nic.Trace.Enabled() {
			nic.Trace.Log(nic.Engine().Now(), nic.ID(), trace.Retrans, "go-back-N seq=%d to %v", fr.Seq, fr.DstNode)
		}
		nic.HW.CPUDo(nic.Cfg.RetransmitCost, func() {
			nic.HW.SendBufs.Acquire(func(buf *lanai.Buf) {
				// Retransmission re-reads the message from registered host
				// memory — GM recycles NIC buffers after transmit.
				nic.HW.HostToNIC(len(fr.Payload), func() {
					nic.Inject(fr, func() {
						buf.Release()
						r.sentAt = nic.Engine().Now()
					})
				})
			})
		})
	}
	c.armTimer()
}

// rcvr is the receiver-side state of a connection: the next expected
// sequence number, plus the delayed-ack state when coalescing is on.
type rcvr struct {
	nic    *NIC
	key    connKey
	expect uint32
	// pending counts accepted-but-unacknowledged packets (Config.AckEvery);
	// ackTimer flushes them after the ack delay. The timer exists only when
	// coalescing is configured.
	pending  int
	ackTimer *sim.Timer
}

// noteAccepted runs the delayed-ack state machine for one accepted
// in-sequence packet: flush a cumulative ack at every AckEvery-th packet,
// otherwise hold it and let the delay timer bound the wait.
func (r *rcvr) noteAccepted() {
	r.pending++
	if r.pending >= r.nic.Cfg.AckEvery {
		r.flushAck()
		return
	}
	if !r.ackTimer.Pending() {
		r.ackTimer.ResetAfter(r.nic.Cfg.EffectiveAckDelay())
	}
}

// flushAck emits the cumulative acknowledgment covering every pending
// packet (counting the avoided per-packet acks as suppressed) and disarms
// the delay timer.
func (r *rcvr) flushAck() {
	if r.pending == 0 {
		return
	}
	if r.pending > 1 {
		r.nic.m.acksSuppressed.Add(uint64(r.pending - 1))
	}
	r.pending = 0
	r.ackTimer.Stop()
	r.nic.m.acksSent.Inc()
	r.nic.Inject(&Frame{
		Kind:    KindAck,
		SrcNode: r.nic.ID(), DstNode: r.key.Node,
		SrcPort: r.key.LocalP, DstPort: r.key.RemoteP,
		Ack: r.expect - 1,
	}, nil)
}

// absorbPending folds any pending coalesced ack into an acknowledgment
// the caller is about to send anyway (a duplicate re-ack or a nack, whose
// cumulative field covers the pending packets).
func (r *rcvr) absorbPending() {
	if r.pending == 0 {
		return
	}
	r.nic.m.acksSuppressed.Add(uint64(r.pending))
	r.pending = 0
	r.ackTimer.Stop()
}

// fastRetransmit performs an immediate go-back-N in response to a nack,
// at most once per NackHoldoff so nack bursts collapse into one resend.
func (c *conn) fastRetransmit() {
	now := c.nic.Engine().Now()
	if len(c.records) == 0 {
		return
	}
	if c.fastArmed && now-c.lastFast < c.nic.Cfg.NackHoldoff {
		return
	}
	c.fastArmed = true
	c.lastFast = now
	c.onTimeout()
}
