package gm

import "testing"

// Serial-number arithmetic must stay correct across the uint32 wrap: the
// value after MaxUint32 is 0 (or, for epochs, 1 — the coordinator skips
// the static-reserved 0) and must still compare as "after".
func TestSerialArithmeticAcrossWrap(t *testing.T) {
	const top = ^uint32(0)
	cases := []struct {
		a, b          uint32
		before, after bool
	}{
		{0, 1, true, false},
		{1, 0, false, true},
		{5, 5, false, false},
		{top, 0, true, false}, // wrap: MaxUint32 precedes 0
		{top, 1, true, false}, // wrap: MaxUint32 precedes 1 (0 skipped)
		{0, top, false, true}, // and the reverse orders as after
		{1, top, false, true}, // post-wrap epoch 1 follows MaxUint32
		{top - 3, top, true, false},
		{top, top - 3, false, true},
	}
	for _, c := range cases {
		if got := SeqBefore(c.a, c.b); got != c.before {
			t.Errorf("SeqBefore(%d, %d) = %v, want %v", c.a, c.b, got, c.before)
		}
		if got := SeqAfter(c.a, c.b); got != c.after {
			t.Errorf("SeqAfter(%d, %d) = %v, want %v", c.a, c.b, got, c.after)
		}
		if got := SeqLEQ(c.a, c.b); got != (c.before || c.a == c.b) {
			t.Errorf("SeqLEQ(%d, %d) = %v, want %v", c.a, c.b, got, c.before || c.a == c.b)
		}
		// The epoch-space names are the same comparison; pin the aliasing.
		if got := EpochBefore(c.a, c.b); got != c.before {
			t.Errorf("EpochBefore(%d, %d) = %v, want %v", c.a, c.b, got, c.before)
		}
		if got := EpochAfter(c.a, c.b); got != c.after {
			t.Errorf("EpochAfter(%d, %d) = %v, want %v", c.a, c.b, got, c.after)
		}
	}
}
