package gm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/lanai"
	"repro/internal/sim"
)

type trafficPlan struct {
	src, dst, size int
}

// Property: any workload of random message sizes, from random senders to
// random receivers, over a fabric with or without loss, delivers every
// message intact and in per-sender order.
func TestRandomTrafficIntegrityProperty(t *testing.T) {
	f := func(raw []uint16, seed int64, lossy bool) bool {
		const nodes = 4
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		var plans []trafficPlan
		for i, r := range raw {
			src := int(r) % nodes
			dst := (src + 1 + int(r>>3)%(nodes-1)) % nodes
			plans = append(plans, trafficPlan{src, dst, (int(r)*7%9000 + i)})
		}
		payloadFor := func(pl trafficPlan, i int) []byte {
			msg := make([]byte, pl.size)
			for j := range msg {
				msg[j] = byte(j*31 + pl.src + i)
			}
			return msg
		}

		eng := sim.NewEngine()
		net := fabric.SingleSwitch(eng, nodes, fabric.DefaultLinkParams())
		if lossy {
			net.SetRNG(sim.NewRNG(seed))
			net.LossRate = 0.02
		}
		cfg := DefaultConfig()
		var ports []*Port
		for i := 0; i < nodes; i++ {
			hw := lanai.New(eng, net.Iface(fabric.NodeID(i)), lanai.DefaultParams())
			ports = append(ports, NewNIC(hw, cfg).OpenPort(1))
		}

		// expected[dst][src] is the FIFO of payloads dst must see from src.
		expected := make(map[int]map[int][][]byte)
		counts := make(map[int]int)
		for i, pl := range plans {
			if expected[pl.dst] == nil {
				expected[pl.dst] = make(map[int][][]byte)
			}
			expected[pl.dst][pl.src] = append(expected[pl.dst][pl.src], payloadFor(pl, i))
			counts[pl.dst]++
		}

		ok := true
		for d := 0; d < nodes; d++ {
			d := d
			n := counts[d]
			if n == 0 {
				continue
			}
			eng.Spawn("recv", func(p *sim.Proc) {
				ports[d].ProvideN(n, 1<<14)
				for i := 0; i < n; i++ {
					ev := ports[d].Recv(p)
					q := expected[d][int(ev.Src)]
					if len(q) == 0 || !bytes.Equal(ev.Data, q[0]) {
						ok = false
						continue
					}
					expected[d][int(ev.Src)] = q[1:]
				}
			})
		}
		for s := 0; s < nodes; s++ {
			s := s
			var mine [][]byte
			var dsts []int
			for i, pl := range plans {
				if pl.src == s {
					mine = append(mine, payloadFor(pl, i))
					dsts = append(dsts, pl.dst)
				}
			}
			if len(mine) == 0 {
				continue
			}
			eng.Spawn("send", func(p *sim.Proc) {
				for i := range mine {
					ports[s].Send(p, fabric.NodeID(dsts[i]), 1, mine[i])
				}
				for range mine {
					ports[s].WaitSendDone(p)
				}
			})
		}
		eng.Run()
		stalled := eng.LiveProcs() != 0
		eng.Kill()
		// Every expected queue drained.
		for _, per := range expected {
			for _, q := range per {
				if len(q) != 0 {
					ok = false
				}
			}
		}
		return ok && !stalled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fabric conserves packets — everything injected is either
// delivered or counted as dropped once the simulation drains.
func TestPacketConservationProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		const nodes = 5
		eng := sim.NewEngine()
		net := fabric.SingleSwitch(eng, nodes, fabric.DefaultLinkParams())
		net.SetRNG(sim.NewRNG(seed))
		net.LossRate = 0.1
		delivered := uint64(0)
		for i := 0; i < nodes; i++ {
			net.Iface(fabric.NodeID(i)).Deliver = func(p *fabric.Packet) { delivered++ }
		}
		eng.At(0, func() {
			for i, r := range raw {
				src := fabric.NodeID(int(r) % nodes)
				dst := fabric.NodeID((int(r) + 1 + i) % nodes)
				if src == dst {
					continue
				}
				net.Iface(src).Inject(&fabric.Packet{Src: src, Dst: dst, Size: int(r) + 1})
			}
		})
		eng.Run()
		st := net.Stats()
		return st.Injected == st.Delivered+st.Dropped && st.Delivered == delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
