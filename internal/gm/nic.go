package gm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/lanai"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Extension is the firmware extension hook. The paper's contribution is a
// modification of GM firmware; package core implements this interface and
// installs itself with NIC.SetExtension, leaving the unicast paths of the
// base protocol untouched.
type Extension interface {
	// HandleRx sees every frame arriving from the wire before the base
	// protocol does. Returning true consumes the frame.
	HandleRx(fr *Frame) bool
}

// Stats count protocol-level incidents on one NIC.
type Stats struct {
	DataSent     uint64
	DataReceived uint64
	AcksSent     uint64
	AcksReceived uint64
	// AcksSuppressed counts per-packet acknowledgments avoided by the
	// coalescing/piggyback economy; AcksPiggybacked counts data frames
	// that carried one.
	AcksSuppressed  uint64
	AcksPiggybacked uint64
	Retransmits     uint64
	Duplicates      uint64 // in-window duplicates re-acked
	OutOfOrderDrops uint64
	NoTokenDrops    uint64 // in-sequence packets dropped: no receive token
	NacksSent       uint64
	NacksReceived   uint64
	// DirectedReceived counts accepted remote-DMA writes; DirectedRefused
	// counts writes refused for unknown regions or bounds violations.
	DirectedReceived uint64
	DirectedRefused  uint64
}

// NIC is the GM firmware state for one lanai NIC.
type NIC struct {
	HW  *lanai.NIC
	Cfg Config

	// Trace, when non-nil, records protocol events for timeline rendering.
	Trace *trace.Recorder

	ports map[PortID]*Port
	conns map[connKey]*conn // sender-side connections
	rcvrs map[connKey]*rcvr // receiver-side connection state
	ext   Extension
	m     instruments

	nextMsgID uint64
}

// connKey identifies a connection endpoint pair. On the send side Node is
// the remote destination; on the receive side it is the remote source.
type connKey struct {
	Node            fabric.NodeID
	LocalP, RemoteP PortID
}

// NewNIC loads the GM firmware onto a hardware NIC. Protocol counters go
// to the registry wired via hw.SetMetrics; when none is wired, a private
// always-on registry backs the legacy Stats accessor.
func NewNIC(hw *lanai.NIC, cfg Config) *NIC {
	n := &NIC{
		HW:    hw,
		Cfg:   cfg,
		ports: make(map[PortID]*Port),
		conns: make(map[connKey]*conn),
		rcvrs: make(map[connKey]*rcvr),
	}
	n.initMetrics(metrics.Ensure(hw.Registry()))
	hw.RxDispatch = n.rxDispatch
	return n
}

// ID reports the NIC's network ID.
func (n *NIC) ID() fabric.NodeID { return n.HW.ID }

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.HW.Eng }

// SetExtension installs a firmware extension (at most one).
func (n *NIC) SetExtension(e Extension) {
	if n.ext != nil {
		panic(ErrExtensionInstalled)
	}
	n.ext = e
}

// Extension returns the installed firmware extension, if any.
func (n *NIC) Extension() Extension { return n.ext }

// OpenPort creates a host communication endpoint. Each simulated process
// opens its own port; GM's memory protection between ports is implicit in
// the model (ports share nothing).
func (n *NIC) OpenPort(id PortID) *Port {
	if _, ok := n.ports[id]; ok {
		panic(fmt.Errorf("%w: port %d on %v", ErrPortInUse, id, n.ID()))
	}
	p := newPort(n, id)
	n.ports[id] = p
	return p
}

// Port returns an open port.
func (n *NIC) Port(id PortID) *Port {
	p, ok := n.ports[id]
	if !ok {
		panic(fmt.Errorf("%w: port %d on %v", ErrNoSuchPort, id, n.ID()))
	}
	return p
}

// OutstandingRecords reports unacknowledged send records summed over every
// sender-side connection — zero once all transmitted packets are acked.
// Invariant checkers use it to prove recovery actually completed.
func (n *NIC) OutstandingRecords() int {
	total := 0
	for _, c := range n.conns {
		total += len(c.records) + c.staging
	}
	return total
}

// PendingRetransmitTimers reports how many connection retransmit timers are
// armed — nonzero after quiescence means a leaked timer.
func (n *NIC) PendingRetransmitTimers() int {
	armed := 0
	for _, c := range n.conns {
		if c.timer.Pending() {
			armed++
		}
	}
	return armed
}

// PendingAckTimers reports how many receiver-side delayed-ack timers are
// armed — nonzero after quiescence means a coalesced ack was never
// flushed (a leaked timer under Config.AckEvery).
func (n *NIC) PendingAckTimers() int {
	armed := 0
	for _, r := range n.rcvrs {
		if r.ackTimer != nil && r.ackTimer.Pending() {
			armed++
		}
	}
	return armed
}

// NewMsgID allocates a node-unique message identifier.
func (n *NIC) NewMsgID() uint64 {
	n.nextMsgID++
	return n.nextMsgID
}

// Inject wraps fr in a wire packet and starts transmitting it. txDone
// (optional) fires when the transmit engine releases the packet buffer.
// Exposed for the core extension, which transmits through the same engine.
func (n *NIC) Inject(fr *Frame, txDone func()) {
	if fr.SrcNode != n.ID() {
		panic(fmt.Errorf("%w: frame src %v injected at %v", ErrForeignSource, fr.SrcNode, n.ID()))
	}
	if n.Trace.Enabled() {
		n.Trace.Log(n.Engine().Now(), n.ID(), trace.TX, "%v", fr)
	}
	n.HW.Ifc.Inject(fr.packet(n.Cfg, txDone))
}

// rxDispatch is the wire entry point: every arriving packet lands here.
func (n *NIC) rxDispatch(pkt *fabric.Packet) {
	fr, ok := pkt.Payload.(*Frame)
	if !ok {
		panic(fmt.Sprintf("gm: non-frame payload %T at %v", pkt.Payload, n.ID()))
	}
	if n.ext != nil && n.ext.HandleRx(fr) {
		return
	}
	switch fr.Kind {
	case KindData:
		n.rxData(fr)
	case KindAck:
		n.rxAck(fr)
	case KindNack:
		n.rxNack(fr)
	case KindDirected:
		n.rxDirected(fr)
	default:
		panic(fmt.Sprintf("gm: unhandled frame kind %v at %v (no extension?)", fr.Kind, n.ID()))
	}
}

// sendConn returns (creating on demand) the sender-side connection for the
// (local port, destination node, destination port) triple.
func (n *NIC) sendConn(localP PortID, dst fabric.NodeID, dstP PortID) *conn {
	k := connKey{Node: dst, LocalP: localP, RemoteP: dstP}
	c, ok := n.conns[k]
	if !ok {
		c = newConn(n, k)
		n.conns[k] = c
	}
	return c
}

// recvConn returns (creating on demand) the receiver-side state for a
// (source node, source port, local port) triple.
func (n *NIC) recvConn(src fabric.NodeID, srcP, localP PortID) *rcvr {
	k := connKey{Node: src, LocalP: localP, RemoteP: srcP}
	r, ok := n.rcvrs[k]
	if !ok {
		r = &rcvr{nic: n, key: k, expect: 1}
		if n.Cfg.AckCoalescing() {
			r.ackTimer = n.Engine().NewTimer(r.flushAck)
		}
		n.rcvrs[k] = r
	}
	return r
}
