package gm

// Serial-number arithmetic (RFC 1982 style) over the protocol's uint32
// sequence space. Ordered comparisons on raw sequence numbers break the
// moment a long-lived connection or group wraps past MaxUint32: the packet
// after 0xFFFFFFFF is 0, which every `<` in an ack path would treat as
// ancient. These helpers compare by signed distance instead, which is
// correct whenever the live window spans less than 2^31 sequence numbers —
// astronomically beyond the protocol's Window of in-flight packets.

// SeqBefore reports whether a precedes b in sequence space.
func SeqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// SeqAfter reports whether a follows b in sequence space.
func SeqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// SeqLEQ reports whether a precedes or equals b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
