package gm

// Serial-number arithmetic (RFC 1982 style) over the protocol's uint32
// sequence space. Ordered comparisons on raw sequence numbers break the
// moment a long-lived connection or group wraps past MaxUint32: the packet
// after 0xFFFFFFFF is 0, which every `<` in an ack path would treat as
// ancient. These helpers compare by signed distance instead, which is
// correct whenever the live window spans less than 2^31 sequence numbers —
// astronomically beyond the protocol's Window of in-flight packets.

// SeqBefore reports whether a precedes b in sequence space.
func SeqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// SeqAfter reports whether a follows b in sequence space.
func SeqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// SeqLEQ reports whether a precedes or equals b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// Group epochs live in the same uint32 serial-number space as sequence
// numbers and wrap the same way: a group that rolls epochs for long enough
// passes MaxUint32 and continues at 1 (epoch 0 is reserved for static
// groups — the membership coordinator skips it when allocating). The NIC
// rx path classifies an epoch-mismatched frame as stale (acked-as-dropped
// so the sender's window advances past a departed node) or future
// (silently dropped until this NIC commits); getting that classification
// backwards across the wrap would deadlock the sender, so the comparisons
// must be serial-number ones. These are those comparisons, named for the
// epoch space; correct while fewer than 2^31 epochs are in flight at once
// (the protocol keeps exactly two: current and staged).

// EpochBefore reports whether epoch a precedes b in epoch space.
func EpochBefore(a, b uint32) bool { return SeqBefore(a, b) }

// EpochAfter reports whether epoch a follows b in epoch space.
func EpochAfter(a, b uint32) bool { return SeqAfter(a, b) }
