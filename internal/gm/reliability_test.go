package gm

// Regression tests for the sender-side recovery path: the nack-holdoff
// fix at t=0, Karn's rule under adaptive timeouts, backoff reset
// semantics, and sequence-number wraparound under loss.

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// fakeToken returns a minimal unstaged token: handleAck can decrement
// pending without ever completing it.
func fakeToken(pending int) *sendToken {
	return &sendToken{pending: pending}
}

// fakeRecord builds a send record whose retransmissions land on a closed
// port at the destination, so running the engine after a forced go-back-N
// is harmless.
func fakeRecord(seq uint32, tok *sendToken) *sendRecord {
	return &sendRecord{
		seq: seq, tok: tok,
		frame: &Frame{
			Kind: KindData, SrcNode: 0, DstNode: 1,
			SrcPort: 1, DstPort: 99, Seq: seq,
		},
	}
}

// TestFastRetransmitHoldoffAtTimeZero pins the holdoff fix: a nack burst
// arriving at simulation time zero must still collapse into ONE go-back-N
// round. The pre-fix code tracked holdoff arming with `lastFast != 0`,
// which reads a t=0 retransmission as "never happened" and lets every
// nack of the burst trigger its own full-window resend.
func TestFastRetransmitHoldoffAtTimeZero(t *testing.T) {
	r := newRig(t, 2, nil)
	c := r.nics[0].sendConn(1, 1, 1)
	c.records = append(c.records, fakeRecord(1, fakeToken(1)))
	if now := r.eng.Now(); now != 0 {
		t.Fatalf("test requires virtual time 0, engine at %v", now)
	}
	c.fastRetransmit()
	c.fastRetransmit() // the second nack of the burst, same instant
	if got := r.nics[0].m.timeouts.Value(); got != 1 {
		t.Fatalf("t=0 nack burst triggered %d go-back-N rounds, want 1 (holdoff ignored at time zero)", got)
	}
}

// TestFastRetransmitHoldoffExpiry verifies the other side of the fix: the
// holdoff suppresses nacks only within NackHoldoff, and a later nack
// triggers a fresh recovery round.
func TestFastRetransmitHoldoffExpiry(t *testing.T) {
	r := newRig(t, 2, nil)
	c := r.nics[0].sendConn(1, 1, 1)
	c.records = append(c.records, fakeRecord(1, fakeToken(1)))
	hold := r.nics[0].Cfg.NackHoldoff
	r.eng.At(0, c.fastRetransmit)
	r.eng.At(hold/2, c.fastRetransmit)               // inside the holdoff: suppressed
	r.eng.At(hold+sim.Microsecond, c.fastRetransmit) // past it: fires
	r.eng.RunUntil(hold + 2*sim.Microsecond)
	if got := r.nics[0].m.timeouts.Value(); got != 2 {
		t.Fatalf("go-back-N rounds = %d, want 2 (one at t=0, one after the holdoff expired)", got)
	}
	r.eng.Kill()
}

// TestKarnRuleSkipsRetransmitRTTSample drops a message's first copy so the
// ack that finally arrives belongs to a retransmission. Karn's rule says
// that ack must NOT feed the RTT estimator — the measured "round trip"
// would include the timeout and poison the adaptive RTO. A clean follow-up
// message must then prime the estimator normally.
func TestKarnRuleSkipsRetransmitRTTSample(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.AdaptiveRTO = true })
	dropOnce := true
	r.net.DropFn = func(p *fabric.Packet, _ *fabric.Link) bool {
		if fr, ok := p.Payload.(*Frame); ok && fr.Kind == KindData && dropOnce {
			dropOnce = false
			return true
		}
		return false
	}
	msg := pattern(256)
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(2, 1<<14)
		r.ports[1].Recv(p)
		r.ports[1].Recv(p)
	})
	var srttAfterRetransmit sim.Time
	c := r.nics[0].sendConn(1, 1, 1)
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[0].SendSync(p, 1, 1, msg) // lost, recovered by timeout
		srttAfterRetransmit = c.srtt
		r.ports[0].SendSync(p, 1, 1, msg) // clean: first legitimate sample
	})
	r.run(t)
	if got := r.nics[0].m.timeouts.Value(); got == 0 {
		t.Fatal("the drop never forced a timeout — the test exercised nothing")
	}
	if srttAfterRetransmit != 0 {
		t.Fatalf("retransmitted packet's ack was RTT-sampled: srtt=%v, want 0 (Karn's rule)", srttAfterRetransmit)
	}
	if c.srtt == 0 {
		t.Fatal("clean send produced no RTT sample — estimator never primes")
	}
}

// TestBackoffResetsOnlyOnAckProgress pins the backoff-reset rule: a
// duplicate ack that retires nothing preserves the exponential backoff,
// and only forward progress resets it. Resetting on every ack would let
// duplicate-ack chatter defeat the backoff during congestion.
func TestBackoffResetsOnlyOnAckProgress(t *testing.T) {
	r := newRig(t, 2, nil)
	c := r.nics[0].sendConn(1, 1, 1)
	tok := fakeToken(2)
	c.records = append(c.records, fakeRecord(1, tok), fakeRecord(2, tok))
	c.nextSeq = 3
	c.backoff = 3

	c.handleAck(0) // duplicate ack: retires nothing
	if c.backoff != 3 {
		t.Fatalf("no-progress ack changed backoff to %d, want 3 preserved", c.backoff)
	}
	c.handleAck(1) // retires seq 1: forward progress
	if c.backoff != 0 {
		t.Fatalf("forward-progress ack left backoff at %d, want 0", c.backoff)
	}
	if len(c.records) != 1 || c.records[0].seq != 2 {
		t.Fatalf("cumulative ack 1 left records %v, want exactly seq 2", len(c.records))
	}
	r.eng.Kill()
}

// TestSequenceWraparoundUnderLoss drives a connection across the uint32
// sequence wrap with deterministic packet loss. Ordered comparisons on
// raw sequence numbers deadlock here (records past the wrap are "smaller"
// than the cumulative ack); serial-number arithmetic must carry the
// stream through unharmed.
func TestSequenceWraparoundUnderLoss(t *testing.T) {
	r := newRig(t, 2, nil)
	const start = uint32(0xFFFFFFFA) // six packets before the wrap
	c := r.nics[0].sendConn(1, 1, 1)
	c.nextSeq = start
	r.nics[1].recvConn(0, 1, 1).expect = start

	traversals := 0
	r.net.DropFn = func(p *fabric.Packet, _ *fabric.Link) bool {
		if fr, ok := p.Payload.(*Frame); ok && fr.Kind == KindData {
			traversals++
			return traversals%5 == 0 // deterministic loss straddling the wrap
		}
		return false
	}

	const msgs = 5
	msg := pattern(3 * 4096) // three packets per message: 15 packets total
	var got [][]byte
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].ProvideN(msgs, 3*4096)
		for i := 0; i < msgs; i++ {
			got = append(got, r.ports[1].Recv(p).Data)
		}
	})
	r.eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			r.ports[0].SendSync(p, 1, 1, msg)
		}
	})
	// Bounded run: the pre-fix comparison bug retransmits forever instead
	// of failing, so Run() would hang the test suite.
	r.eng.RunUntil(sim.Second)
	live := r.eng.LiveProcs()
	r.eng.Kill()
	if live != 0 {
		t.Fatalf("%d processes still blocked after 1s — transfer deadlocked at the wrap", live)
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d messages, want %d", len(got), msgs)
	}
	for i, g := range got {
		if !bytes.Equal(g, msg) {
			t.Fatalf("message %d corrupted across the wrap", i)
		}
	}
	if c.nextSeq >= start {
		t.Fatalf("stream never wrapped: nextSeq=%d still >= start", c.nextSeq)
	}
	if len(c.records) != 0 {
		t.Fatalf("%d send records leaked across the wrap", len(c.records))
	}
}
